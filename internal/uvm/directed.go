package uvm

// Coverage-directed stimulus. Random vectors exercise a DUT's easy
// structure quickly but plateau: equality branches, rare case arms and
// deep FSM states need specific values that a uniform draw over a wide
// input space almost never produces. The directed layer closes the loop
// the paper's fixed-budget UVM stage leaves open — it watches the
// structural coverage map grow, keeps the stimulus snippets that grew it
// (a corpus scheduled by new-coverage gain, in the AFL tradition), and
// generates candidates by mutating saved seeds and by drawing boundary
// values and design constants instead of uniform randoms.

import (
	"fmt"
	"math/rand"

	"uvllm/internal/cover"
	"uvllm/internal/sim"
)

// StimConfig configures one coverage measurement run (random or
// directed) over a compiled program.
type StimConfig struct {
	// Clock is the clock input name ("" for combinational DUTs).
	Clock string
	// Cycles is the stimulus budget: the number of harness cycles driven
	// after reset. Random and directed runs with equal Cycles are
	// directly comparable.
	Cycles int
	// Seed feeds the deterministic stimulus RNG.
	Seed int64
	// Cover selects the coverage models; the zero value means CoverAll.
	Cover sim.CoverOptions
	// SnippetLen is the length in cycles of one directed stimulus
	// snippet (default 5). Shorter snippets give finer gain attribution;
	// longer ones reach deeper sequential behavior.
	SnippetLen int
	// Lanes selects the batched candidate scorer: values > 1 make
	// CoverageDirected evaluate that many candidate snippets per round in
	// one sim.Batch (fused sweeps, shared schedule decode) and continue
	// from the best, under the same total cycle budget. 0 or 1 keeps the
	// sequential loop.
	Lanes int
	// BitLanes selects the bit-parallel candidate scorer instead: each
	// round screens up to 64 candidate snippets one-bit-per-word on the
	// blasted cycle AIG (internal/psim), ranked by toggle-activity
	// novelty, and replays only the winner on the scalar coverage
	// harness. Coverage sampling stays scalar, so Cycles counts replayed
	// (coverage-collecting) cycles only. Lanes bounds the per-round
	// candidate count (default and cap 64); designs outside the
	// bit-parallel subset fall back to the sim.Batch scorer.
	BitLanes bool
}

func (c StimConfig) cover() sim.CoverOptions {
	if c.Cover.Any() {
		return c.Cover
	}
	return sim.CoverAll()
}

func (c StimConfig) snippetLen() int {
	if c.SnippetLen > 0 {
		return c.SnippetLen
	}
	return 5
}

// CorpusEntry is one saved stimulus snippet and the new-coverage gain it
// produced when first executed.
type CorpusEntry struct {
	Vectors []map[string]uint64
	Gain    int
}

// Corpus is the set of coverage-raising stimulus snippets a directed run
// accumulated. Entries are scheduled for mutation with probability
// proportional to their recorded gain.
type Corpus struct {
	Entries []CorpusEntry
}

// totalGain sums the recorded gains (the mutation lottery's ticket count).
func (c *Corpus) totalGain() int {
	n := 0
	for _, e := range c.Entries {
		n += e.Gain
	}
	return n
}

// pick draws a corpus entry gain-weighted, or nil when the corpus is
// empty.
func (c *Corpus) pick(rng *rand.Rand) *CorpusEntry {
	total := c.totalGain()
	if total == 0 {
		return nil
	}
	t := rng.Intn(total)
	for i := range c.Entries {
		t -= c.Entries[i].Gain
		if t < 0 {
			return &c.Entries[i]
		}
	}
	return &c.Entries[len(c.Entries)-1]
}

// CoverageRandom measures the structural coverage a plain
// constrained-random run reaches: cfg.Cycles uniform vectors over the
// non-clock inputs with the reset held inactive — exactly the stimulus
// RandomSequence drives — after a 2-cycle reset phase.
func CoverageRandom(p *sim.Program, cfg StimConfig) (*cover.Map, error) {
	h, err := coverHarness(p, cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ports := stimPorts(p.Design(), cfg.Clock)
	rstName, activeLow := sim.FindReset(p.Design())
	for i := 0; i < cfg.Cycles; i++ {
		in := map[string]uint64{}
		for _, pt := range ports {
			in[pt.Name] = rng.Uint64() & maskW(pt.Width)
		}
		holdResetInactive(in, rstName, activeLow)
		if _, err := h.Cycle(in); err != nil {
			return h.Coverage(), err
		}
	}
	return h.Coverage(), nil
}

// CoverageDirected measures the structural coverage the
// coverage-directed loop reaches under the same cycle budget as
// CoverageRandom, returning the final map and the corpus of
// coverage-raising snippets. The loop runs snippet by snippet: each
// candidate is either a mutation of a gain-weighted corpus seed or a
// fresh snippet drawn from the boundary/constant-biased value
// distribution, and any snippet that hits new points joins the corpus.
func CoverageDirected(p *sim.Program, cfg StimConfig) (*cover.Map, *Corpus, error) {
	if cfg.BitLanes {
		return CoverageDirectedBitLanes(p, cfg)
	}
	if cfg.Lanes > 1 {
		return CoverageDirectedBatch(p, cfg)
	}
	h, err := coverHarness(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := p.Design()
	ports := stimPorts(d, cfg.Clock)
	rstName, activeLow := sim.FindReset(d)
	// Zero is already a boundary draw; keeping it in the dictionary would
	// only double its weight.
	var dict []uint64
	for _, c := range d.Constants() {
		if c != 0 {
			dict = append(dict, c)
		}
	}

	m := h.Coverage()
	corpus := &Corpus{}
	remaining := cfg.Cycles
	for remaining > 0 {
		k := cfg.snippetLen()
		if k > remaining {
			k = remaining
		}
		snippet := nextCandidate(corpus, rng, ports, dict, rstName, activeLow, k)
		before := m.Hit()
		for _, in := range snippet {
			if _, err := h.Cycle(in); err != nil {
				return m, corpus, err
			}
			remaining--
		}
		if gain := m.Hit() - before; gain > 0 {
			corpus.Entries = append(corpus.Entries, CorpusEntry{Vectors: snippet, Gain: gain})
		}
	}
	return m, corpus, nil
}

// CoverageDirectedBatch is the lane-parallel directed loop: each round
// restores cfg.Lanes instances of one sim.Batch to the committed state,
// drives one candidate snippet per lane in fused sweeps, scores every
// candidate's coverage gain against the accumulated map, and continues
// from the best candidate's post-snippet state. All simulated cycles
// count against cfg.Cycles (L lanes × k-cycle snippets consume L·k), so
// runs stay budget-comparable with CoverageRandom and the sequential
// CoverageDirected; every lane's observed coverage is merged — a losing
// candidate's points were still genuinely exercised.
func CoverageDirectedBatch(p *sim.Program, cfg StimConfig) (*cover.Map, *Corpus, error) {
	lanes := cfg.Lanes
	if lanes < 2 {
		lanes = 2
	}
	b, err := sim.NewBatch(p, lanes, cfg.Clock)
	if err != nil {
		return nil, nil, err
	}
	if err := b.EnableCover(cfg.cover()); err != nil {
		return nil, nil, err
	}
	if err := b.ApplyReset(2); err != nil {
		return nil, nil, fmt.Errorf("uvm: cover reset: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := p.Design()
	ports := stimPorts(d, cfg.Clock)
	rstName, activeLow := sim.FindReset(d)
	var dict []uint64
	for _, c := range d.Constants() {
		if c != 0 {
			dict = append(dict, c)
		}
	}

	m := b.Coverage(0).Clone() // reset-phase coverage, identical on every lane
	cur := b.Lane(0).Snapshot()
	corpus := &Corpus{}
	ins := make([]map[string]uint64, lanes)
	remaining := cfg.Cycles
	for remaining > 0 {
		k := cfg.snippetLen()
		if k > remaining {
			k = remaining
		}
		live := remaining / k // candidates this round within budget
		if live < 1 {
			live = 1
		}
		if live > lanes {
			live = lanes
		}
		candidates := make([][]map[string]uint64, live)
		for l := range candidates {
			candidates[l] = nextCandidate(corpus, rng, ports, dict, rstName, activeLow, k)
		}
		for l := 0; l < live; l++ {
			// Fresh per-round map first, then restore: the rewind lands the
			// FSM sampler history in the new collector, so each lane's map
			// holds exactly this snippet's coverage.
			if err := b.EnableCoverLane(l, cfg.cover()); err != nil {
				return m, corpus, err
			}
			if err := b.Lane(l).Restore(cur); err != nil {
				return m, corpus, err
			}
		}
		for c := 0; c < k; c++ {
			for l := range ins {
				if l < live {
					ins[l] = candidates[l][c]
				} else {
					ins[l] = nil
				}
			}
			if err := b.CycleMaps(ins); err != nil {
				return m, corpus, err
			}
		}
		best, bestGain := -1, -1
		for l := 0; l < live; l++ {
			if b.Err(l) != nil {
				continue
			}
			if gain := m.Gain(b.Coverage(l)); gain > bestGain {
				best, bestGain = l, gain
			}
		}
		if best < 0 {
			return m, corpus, b.Err(0)
		}
		for l := 0; l < live; l++ {
			if b.Err(l) != nil {
				continue
			}
			if gain := m.Gain(b.Coverage(l)); gain > 0 {
				corpus.Entries = append(corpus.Entries, CorpusEntry{Vectors: candidates[l], Gain: gain})
			}
			m.Merge(b.Coverage(l))
		}
		cur = b.Lane(best).Snapshot()
		remaining -= live * k
	}
	return m, corpus, nil
}

// coverHarness compiles nothing: it instantiates the program, enables
// coverage (harness-clock excluded) and applies the reset phase.
func coverHarness(p *sim.Program, cfg StimConfig) (*sim.Harness, error) {
	inst, err := p.NewInstance()
	if err != nil {
		return nil, err
	}
	h := sim.NewHarness(inst, cfg.Clock)
	if err := h.EnableCover(cfg.cover()); err != nil {
		return nil, err
	}
	if err := h.ApplyReset(2); err != nil {
		return nil, fmt.Errorf("uvm: cover reset: %w", err)
	}
	return h, nil
}

// stimPorts returns the drivable inputs (everything but the clock).
func stimPorts(d *sim.Design, clock string) []sim.PortInfo {
	var out []sim.PortInfo
	for _, pt := range d.Inputs() {
		if pt.Name == clock {
			continue
		}
		out = append(out, pt)
	}
	return out
}

func holdResetInactive(in map[string]uint64, rstName string, activeLow bool) {
	if rstName == "" {
		return
	}
	if activeLow {
		in[rstName] = 1
	} else {
		in[rstName] = 0
	}
}

// nextCandidate produces the next snippet to try. The mix matters: pure
// uniform snippets keep the per-bit entropy (and with it the toggle
// coverage rate) at the random baseline, biased snippets reach equality
// branches and case arms uniform draws almost never hit, and mutations
// of gain-weighted corpus seeds re-enter the rare states those snippets
// discovered.
func nextCandidate(corpus *Corpus, rng *rand.Rand, ports []sim.PortInfo, dict []uint64, rstName string, activeLow bool, k int) []map[string]uint64 {
	switch rng.Intn(5) {
	case 0:
		if e := corpus.pick(rng); e != nil {
			return mutateSnippet(rng, e.Vectors, ports, dict, rstName, activeLow, k)
		}
	case 1, 2:
		return freshSnippet(rng, ports, dict, rstName, activeLow, k)
	}
	return uniformSnippet(rng, ports, rstName, activeLow, k)
}

// uniformSnippet draws k cycles of plain uniform vectors — the random
// baseline's own distribution.
func uniformSnippet(rng *rand.Rand, ports []sim.PortInfo, rstName string, activeLow bool, k int) []map[string]uint64 {
	out := make([]map[string]uint64, k)
	for i := range out {
		in := map[string]uint64{}
		for _, pt := range ports {
			in[pt.Name] = rng.Uint64() & maskW(pt.Width)
		}
		holdResetInactive(in, rstName, activeLow)
		out[i] = in
	}
	return out
}

// freshSnippet draws k cycles of boundary/constant-biased vectors with
// the reset held inactive — the initial reset phase already exercises
// the reset branches, and mid-run resets would keep clearing the
// accumulated state whose high bits are the hardest toggle points.
func freshSnippet(rng *rand.Rand, ports []sim.PortInfo, dict []uint64, rstName string, activeLow bool, k int) []map[string]uint64 {
	out := make([]map[string]uint64, k)
	for i := range out {
		in := map[string]uint64{}
		for _, pt := range ports {
			in[pt.Name] = biasedValue(rng, pt.Width, dict)
		}
		holdResetInactive(in, rstName, activeLow)
		out[i] = in
	}
	return out
}

// mutateSnippet copies a corpus seed, resizes it to k cycles and rewrites
// a few (cycle, port) positions with biased values or single-bit flips.
// The reset port is never a mutation target: every snippet generator
// holds reset inactive, and a flipped reset would re-clear exactly the
// deep state the corpus seed was saved for reaching.
func mutateSnippet(rng *rand.Rand, seed []map[string]uint64, ports []sim.PortInfo, dict []uint64, rstName string, activeLow bool, k int) []map[string]uint64 {
	out := make([]map[string]uint64, k)
	for i := range out {
		src := seed[i%len(seed)]
		in := make(map[string]uint64, len(src))
		for kk, vv := range src {
			in[kk] = vv
		}
		holdResetInactive(in, rstName, activeLow)
		out[i] = in
	}
	var mutable []sim.PortInfo
	for _, pt := range ports {
		if pt.Name != rstName {
			mutable = append(mutable, pt)
		}
	}
	if len(mutable) == 0 {
		return out
	}
	muts := 1 + rng.Intn(3)
	for i := 0; i < muts; i++ {
		cyc := rng.Intn(k)
		pt := mutable[rng.Intn(len(mutable))]
		if rng.Intn(2) == 0 {
			out[cyc][pt.Name] = biasedValue(rng, pt.Width, dict)
		} else {
			out[cyc][pt.Name] ^= 1 << uint(rng.Intn(pt.Width)) // bit flip
			out[cyc][pt.Name] &= maskW(pt.Width)
		}
	}
	return out
}

// biasedValue draws one input value from the coverage-seeking
// distribution: boundary values (0, max), walking single bits, design
// constants, and a fat uniform tail — the tail keeps per-cycle entropy
// (and with it toggle coverage) close to the pure-random baseline, while
// the biased half reaches the equality branches and case arms uniform
// draws almost never hit.
func biasedValue(rng *rand.Rand, width int, dict []uint64) uint64 {
	max := maskW(width)
	// Narrow ports: uniform draws already cover the value space densely;
	// biasing them only skews duty cycles (a slower enable, a stickier
	// select) without reaching anything new.
	if width <= 2 {
		return rng.Uint64() & max
	}
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return max
	case 2:
		return (1 << uint(rng.Intn(width))) & max
	case 3, 4:
		if len(dict) > 0 {
			return dict[rng.Intn(len(dict))] & max
		}
		return rng.Uint64() & max
	default:
		return rng.Uint64() & max
	}
}
