package exp

import (
	"strings"
	"testing"

	"uvllm/internal/sim"
)

func TestCoverageStudy(t *testing.T) {
	s := NewSession(sim.BackendCompiled)
	rows, err := s.CoverageStudy(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("coverage study covered %d modules, want 27", len(rows))
	}
	wins, losses := 0, 0
	for _, r := range rows {
		if r.Points <= 0 {
			t.Fatalf("%s: empty point universe", r.Module)
		}
		for _, pct := range []float64{r.RandomPct, r.DirectedPct} {
			if pct <= 0 || pct > 100 {
				t.Fatalf("%s: coverage percent %v out of range", r.Module, pct)
			}
		}
		if r.DirectedPct > r.RandomPct {
			wins++
		} else if r.DirectedPct < r.RandomPct {
			losses++
		}
	}
	// Directed stimulus must come out ahead on the benchmark overall.
	if wins <= losses {
		t.Fatalf("directed wins %d vs losses %d; expected a net win", wins, losses)
	}

	// The study is deterministic: same session, same rows.
	again, err := s.CoverageStudy(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("study not deterministic at %s: %+v vs %+v", rows[i].Module, rows[i], again[i])
		}
	}

	out := FormatCoverage(rows, 0)
	if !strings.Contains(out, "directed higher on") || !strings.Contains(out, "accu") {
		t.Fatalf("FormatCoverage output malformed:\n%s", out)
	}
}

func TestCoverageStudyCrossBackend(t *testing.T) {
	// The study numbers are a pure function of the stimulus and the
	// design, not of the engine: both backends must report identical rows.
	rc, err := NewSession(sim.BackendCompiled).CoverageStudy(32)
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewSession(sim.BackendEventDriven).CoverageStudy(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc) != len(re) {
		t.Fatalf("row counts differ: %d vs %d", len(rc), len(re))
	}
	for i := range rc {
		if rc[i] != re[i] {
			t.Fatalf("row %s differs across backends: %+v vs %+v", rc[i].Module, rc[i], re[i])
		}
	}
}
