package rtlgen

// Batch-execution differential gate. The backend oracle (DiffBackends)
// establishes that the two engines agree lane by lane; DiffBatchLanes
// extends the same discipline to the batch scheduler: K lanes of one
// Program fused into a sim.Batch must be byte-identical — per-cycle
// outputs, per-lane errors at the same cycle with the same message,
// waveform, VCD rendering, structural coverage encoding and final
// internal state — to K standalone Harness runs under the same per-lane
// stimulus streams. Any divergence is a bug in the fused sweep.

import (
	"bytes"
	"fmt"
	"math/rand"

	"uvllm/internal/sim"
)

// DiffBatchLanes runs `lanes` lanes of src for `cycles` cycles, each
// lane under its own seeded stimulus stream (seed+lane), once inside a
// sim.Batch and once as standalone harnesses, and compares every
// observable per lane. Sources that do not elaborate are vacuously fine
// (DiffBackends owns construction errors). A non-nil error is a genuine
// batch-vs-standalone divergence.
func DiffBatchLanes(src, top, clock string, lanes, cycles int, seed int64) error {
	p, err := diffCache.Compile(src, top, sim.BackendCompiled)
	if err != nil {
		return nil
	}
	b, err := sim.NewBatch(p, lanes, clock)
	if err != nil {
		// Standalone construction succeeds exactly when NewInstance does;
		// the batch failing to construct the same instances is a divergence.
		return fmt.Errorf("batch construction: %v", err)
	}
	if err := b.EnableCover(sim.CoverAll()); err != nil {
		return fmt.Errorf("batch cover: %v", err)
	}
	refs := make([]*sim.Harness, lanes)
	refErrs := make([]error, lanes)
	for k := range refs {
		inst, err := p.NewInstance()
		if err != nil {
			return fmt.Errorf("lane %d standalone instance: %v", k, err)
		}
		refs[k] = sim.NewHarness(inst, clock)
		if err := refs[k].EnableCover(sim.CoverAll()); err != nil {
			return fmt.Errorf("lane %d cover: %v", k, err)
		}
	}

	if err := b.ApplyReset(2); err != nil {
		return fmt.Errorf("batch reset: %v", err)
	}
	for k, h := range refs {
		refErrs[k] = h.ApplyReset(2)
		if !errEqual(refErrs[k], b.Err(k)) {
			return fmt.Errorf("lane %d reset diverged: batch=%v standalone=%v", k, b.Err(k), refErrs[k])
		}
	}

	// Per-lane stimulus streams, deterministic per lane (not shared), so
	// lanes exercise genuinely distinct trajectories through the design.
	rngs := make([]*rand.Rand, lanes)
	for k := range rngs {
		rngs[k] = rand.New(rand.NewSource(seed + int64(k)))
	}
	inputs := p.Design().Inputs()
	ins := make([]map[string]uint64, lanes)
	for cyc := 0; cyc < cycles; cyc++ {
		for k := range ins {
			ins[k] = nil
			if refErrs[k] != nil {
				continue // dead lane: masked in the batch, skipped standalone
			}
			in := map[string]uint64{}
			for _, pt := range inputs {
				if pt.Name == clock {
					continue
				}
				in[pt.Name] = rngs[k].Uint64() & maskW(pt.Width)
			}
			ins[k] = in
		}
		if err := b.CycleMaps(ins); err != nil {
			return fmt.Errorf("cycle %d: %v", cyc, err)
		}
		for k, h := range refs {
			if ins[k] == nil {
				continue
			}
			out, cerr := h.Cycle(ins[k])
			refErrs[k] = cerr
			if !errEqual(cerr, b.Err(k)) {
				return fmt.Errorf("lane %d cycle %d diverged: batch=%v standalone=%v", k, cyc, b.Err(k), cerr)
			}
			if cerr != nil {
				continue
			}
			got := b.Outputs(k)
			for sigName, v := range out {
				if got[sigName] != v {
					return fmt.Errorf("lane %d cycle %d signal %s: batch=0x%x standalone=0x%x",
						k, cyc, sigName, got[sigName], v)
				}
			}
		}
	}

	for k, h := range refs {
		bw, hw := b.Wave(k), h.Wave
		if bw.Cycles() != hw.Cycles() {
			return fmt.Errorf("lane %d waveform length: batch=%d standalone=%d", k, bw.Cycles(), hw.Cycles())
		}
		for _, n := range hw.Names() {
			for cyc := 0; cyc < hw.Cycles(); cyc++ {
				if bw.At(n, cyc) != hw.At(n, cyc) {
					return fmt.Errorf("lane %d waveform %s@%d: batch=0x%x standalone=0x%x",
						k, n, cyc, bw.At(n, cyc), hw.At(n, cyc))
				}
			}
		}
		var vcdB, vcdH bytes.Buffer
		if err := sim.WriteVCD(&vcdB, bw, b.Lane(k).Design(), top); err != nil {
			return fmt.Errorf("lane %d vcd: %v", k, err)
		}
		if err := sim.WriteVCD(&vcdH, hw, h.Sim.Design(), top); err != nil {
			return fmt.Errorf("lane %d vcd: %v", k, err)
		}
		if !bytes.Equal(vcdB.Bytes(), vcdH.Bytes()) {
			return fmt.Errorf("lane %d VCD output differs", k)
		}
		encB, encH := b.Coverage(k).Encode(), h.Coverage().Encode()
		if !bytes.Equal(encB, encH) {
			return fmt.Errorf("lane %d structural coverage maps differ:\n--- batch ---\n%s--- standalone ---\n%s", k, encB, encH)
		}
		if refErrs[k] != nil {
			continue // dead lanes: trace prefix and error already compared
		}
		for _, n := range p.Design().SignalNames() {
			if b.Lane(k).Get(n) != h.Sim.Get(n) {
				return fmt.Errorf("lane %d internal signal %s: batch=0x%x standalone=0x%x",
					k, n, b.Lane(k).Get(n), h.Sim.Get(n))
			}
		}
	}
	return nil
}
