package verilog

import (
	"fmt"
	"strings"
)

// Print renders a source file back to Verilog text. The output is
// canonically formatted; it is used by the script-template repairs in the
// pre-processing stage, which rewrite the AST and re-emit source.
func Print(f *SourceFile) string {
	var b strings.Builder
	for i, m := range f.Modules {
		if i > 0 {
			b.WriteString("\n")
		}
		printModule(&b, m)
	}
	return b.String()
}

// PrintModule renders a single module.
func PrintModule(m *Module) string {
	var b strings.Builder
	printModule(&b, m)
	return b.String()
}

func printModule(b *strings.Builder, m *Module) {
	fmt.Fprintf(b, "module %s(\n", m.Name)
	for i, p := range m.Ports {
		b.WriteString("    ")
		b.WriteString(p.Dir.String())
		if p.IsReg {
			b.WriteString(" reg")
		}
		if p.Signed {
			b.WriteString(" signed")
		}
		if p.Range != nil {
			fmt.Fprintf(b, " [%s:%s]", ExprString(p.Range.MSB), ExprString(p.Range.LSB))
		}
		b.WriteString(" " + p.Name)
		if i < len(m.Ports)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString(");\n")
	for _, it := range m.Items {
		printItem(b, it, 1)
	}
	b.WriteString("endmodule\n")
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func printItem(b *strings.Builder, it Item, depth int) {
	switch v := it.(type) {
	case *ParamDecl:
		indent(b, depth)
		kw := "parameter"
		if v.Local {
			kw = "localparam"
		}
		fmt.Fprintf(b, "%s %s = %s;\n", kw, v.Name, ExprString(v.Value))
	case *NetDecl:
		indent(b, depth)
		b.WriteString(v.Kind.String())
		if v.Signed {
			b.WriteString(" signed")
		}
		if v.Range != nil {
			fmt.Fprintf(b, " [%s:%s]", ExprString(v.Range.MSB), ExprString(v.Range.LSB))
		}
		for i, n := range v.Names {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(" " + n.Name)
			if n.ArrayRange != nil {
				fmt.Fprintf(b, " [%s:%s]", ExprString(n.ArrayRange.MSB), ExprString(n.ArrayRange.LSB))
			}
			if n.Init != nil {
				fmt.Fprintf(b, " = %s", ExprString(n.Init))
			}
		}
		b.WriteString(";\n")
	case *ContAssign:
		indent(b, depth)
		fmt.Fprintf(b, "assign %s = %s;\n", ExprString(v.LHS), ExprString(v.RHS))
	case *AlwaysBlock:
		indent(b, depth)
		b.WriteString("always " + sensString(v.Sens) + " ")
		printStmt(b, v.Body, depth, true)
	case *InitialBlock:
		indent(b, depth)
		b.WriteString("initial ")
		printStmt(b, v.Body, depth, true)
	case *Instance:
		indent(b, depth)
		b.WriteString(v.ModName)
		if len(v.Params) > 0 {
			b.WriteString(" #(")
			printConns(b, v.Params)
			b.WriteString(")")
		}
		fmt.Fprintf(b, " %s(", v.InstName)
		printConns(b, v.Conns)
		b.WriteString(");\n")
	}
}

func printConns(b *strings.Builder, conns []PortConn) {
	for i, c := range conns {
		if i > 0 {
			b.WriteString(", ")
		}
		if strings.HasPrefix(c.Port, "$") {
			if c.Expr != nil {
				b.WriteString(ExprString(c.Expr))
			}
			continue
		}
		fmt.Fprintf(b, ".%s(", c.Port)
		if c.Expr != nil {
			b.WriteString(ExprString(c.Expr))
		}
		b.WriteString(")")
	}
}

func sensString(s *SensList) string {
	if s == nil {
		return "@(*)"
	}
	if s.Star {
		return "@(*)"
	}
	var parts []string
	for _, it := range s.Items {
		if it.Edge == EdgeNone {
			parts = append(parts, it.Signal)
		} else {
			parts = append(parts, it.Edge.String()+" "+it.Signal)
		}
	}
	return "@(" + strings.Join(parts, " or ") + ")"
}

// printStmt prints a statement. inline indicates the statement continues a
// line already carrying indentation (e.g. after "always @(...) ").
func printStmt(b *strings.Builder, s Stmt, depth int, inline bool) {
	if !inline {
		indent(b, depth)
	}
	switch v := s.(type) {
	case nil:
		b.WriteString(";\n")
	case *Block:
		b.WriteString("begin\n")
		for _, st := range v.Stmts {
			printStmt(b, st, depth+1, false)
		}
		indent(b, depth)
		b.WriteString("end\n")
	case *Assign:
		op := "="
		if !v.Blocking {
			op = "<="
		}
		fmt.Fprintf(b, "%s %s %s;\n", ExprString(v.LHS), op, ExprString(v.RHS))
	case *If:
		fmt.Fprintf(b, "if (%s) ", ExprString(v.Cond))
		printStmt(b, v.Then, depth, true)
		if v.Else != nil {
			indent(b, depth)
			b.WriteString("else ")
			printStmt(b, v.Else, depth, true)
		}
	case *Case:
		fmt.Fprintf(b, "%s (%s)\n", v.Kind, ExprString(v.Expr))
		for _, it := range v.Items {
			indent(b, depth+1)
			if it.Exprs == nil {
				b.WriteString("default: ")
			} else {
				var labels []string
				for _, e := range it.Exprs {
					labels = append(labels, ExprString(e))
				}
				b.WriteString(strings.Join(labels, ", ") + ": ")
			}
			printStmt(b, it.Body, depth+1, true)
		}
		indent(b, depth)
		b.WriteString("endcase\n")
	case *For:
		fmt.Fprintf(b, "for (%s; %s; %s) ",
			assignString(v.Init), ExprString(v.Cond), assignString(v.Step))
		printStmt(b, v.Body, depth, true)
	case *NullStmt:
		b.WriteString(";\n")
	default:
		b.WriteString(";\n")
	}
}

func assignString(a *Assign) string {
	if a == nil {
		return ""
	}
	op := "="
	if !a.Blocking {
		op = "<="
	}
	return fmt.Sprintf("%s %s %s", ExprString(a.LHS), op, ExprString(a.RHS))
}

// ExprString renders an expression to Verilog text.
func ExprString(e Expr) string {
	switch v := e.(type) {
	case nil:
		return ""
	case *Ident:
		return v.Name
	case *Number:
		return v.Text
	case *Unary:
		return v.Op + parenIfBinary(v.X)
	case *Binary:
		return fmt.Sprintf("%s %s %s", parenIfLower(v.X, v.Op), v.Op, parenIfLowerEq(v.Y, v.Op))
	case *Ternary:
		return fmt.Sprintf("(%s) ? (%s) : (%s)", ExprString(v.Cond), ExprString(v.Then), ExprString(v.Else))
	case *Index:
		return fmt.Sprintf("%s[%s]", parenIfNotPostfix(v.X), ExprString(v.Index))
	case *PartSelect:
		return fmt.Sprintf("%s[%s:%s]", parenIfNotPostfix(v.X), ExprString(v.MSB), ExprString(v.LSB))
	case *Concat:
		var parts []string
		for _, p := range v.Parts {
			parts = append(parts, ExprString(p))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Repl:
		return fmt.Sprintf("{%s{%s}}", ExprString(v.Count), ExprString(v.Value))
	}
	return "?"
}

// parenIfNotPostfix parenthesizes select bases that would not reparse as
// the base of a postfix [] — e.g. (a + b)[0] must not print as a + b[0].
func parenIfNotPostfix(e Expr) string {
	switch e.(type) {
	case *Ident, *Index, *PartSelect, *Concat, *Repl:
		return ExprString(e)
	}
	return "(" + ExprString(e) + ")"
}

func parenIfBinary(e Expr) string {
	switch e.(type) {
	case *Binary, *Ternary:
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}

func parenIfLower(e Expr, op string) string {
	if b, ok := e.(*Binary); ok && binaryPrec[b.Op] < binaryPrec[op] {
		return "(" + ExprString(e) + ")"
	}
	if _, ok := e.(*Ternary); ok {
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}

func parenIfLowerEq(e Expr, op string) string {
	if b, ok := e.(*Binary); ok && binaryPrec[b.Op] <= binaryPrec[op] {
		return "(" + ExprString(e) + ")"
	}
	if _, ok := e.(*Ternary); ok {
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}
