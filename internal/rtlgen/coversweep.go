package rtlgen

// Coverage-directed fuzzing mode: instead of diffing backends under
// blind random stimulus, CoverSweep measures how much of each generated
// design's structure the stimulus actually reaches, compares random
// against coverage-directed generation at an equal cycle budget, and
// keeps the (design, corpus) pairs that raise cumulative generator-shape
// coverage — a progress metric for the differential fuzzer, which
// otherwise cannot tell whether seed 10000 still exercises anything seed
// 100 did not.

import (
	"fmt"
	"strings"

	"uvllm/internal/cover"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// CoverRun is the coverage evaluation of one generated design.
type CoverRun struct {
	Design      *Design
	RandomPct   float64     // structural coverage of uniform random stimulus
	DirectedPct float64     // structural coverage of directed stimulus, same budget
	Corpus      *uvm.Corpus // coverage-raising snippets the directed run saved
	NewPoints   int         // shape points this design added to the cumulative map
	Kept        bool        // NewPoints > 0: the design joins the corpus
}

// CoverSweep generates designs for seeds seed..seed+n-1 and evaluates
// each with both stimulus generators at an equal cycle budget. Designs
// are scored against a cumulative map of generator-shape points (the
// generator's deterministic naming makes structurally analogous points —
// "p3.s1.then", "w2[5]" — comparable across designs): a design is kept
// when its directed run hits shapes no kept design has hit before, so
// the retained set grows only while the design space still yields new
// structure. The cumulative map is returned alongside the runs.
func CoverSweep(seed int64, n, cycles int) ([]CoverRun, *cover.Map, error) {
	return CoverSweepLanes(seed, n, cycles, 0)
}

// CoverSweepLanes is CoverSweep with the directed stimulus run through
// the lane-parallel batch scorer (uvm.CoverageDirectedBatch) when lanes
// > 1; lanes <= 1 keeps the sequential directed loop. The retention rule
// and the cycle budget accounting are unchanged.
func CoverSweepLanes(seed int64, n, cycles, lanes int) ([]CoverRun, *cover.Map, error) {
	cum := cover.New()
	runs, err := coverSweepInto(cum, seed, n, cycles, lanes)
	return runs, cum, err
}

// coverSweepInto runs the sweep against an existing cumulative map, so
// repeated shapes stop being kept once the map has absorbed them.
func coverSweepInto(cum *cover.Map, seed int64, n, cycles, lanes int) ([]CoverRun, error) {
	runs := make([]CoverRun, 0, n)
	for i := 0; i < n; i++ {
		d := Generate(seed + int64(i))
		run, err := coverOne(d, cycles, lanes)
		if err != nil {
			return runs, fmt.Errorf("seed %d: %w", d.Seed, err)
		}
		dirMap := run.dirMap
		run.CoverRun.NewPoints = cum.Gain(dirMap)
		run.CoverRun.Kept = run.CoverRun.NewPoints > 0
		if run.CoverRun.Kept {
			cum.Merge(dirMap)
		}
		runs = append(runs, run.CoverRun)
	}
	return runs, nil
}

type coverOneResult struct {
	CoverRun
	dirMap *cover.Map
}

func coverOne(d *Design, cycles, lanes int) (coverOneResult, error) {
	var out coverOneResult
	out.Design = d
	p, err := sim.CompileSource(d.Source, d.Top, sim.BackendCompiled)
	if err != nil {
		return out, err
	}
	cfg := uvm.StimConfig{Clock: d.Clock, Cycles: cycles, Seed: d.Seed, Lanes: lanes}
	mr, err := uvm.CoverageRandom(p, cfg)
	if err != nil {
		return out, err
	}
	md, corpus, err := uvm.CoverageDirected(p, cfg)
	if err != nil {
		return out, err
	}
	out.RandomPct = mr.Percent()
	out.DirectedPct = md.Percent()
	out.Corpus = corpus
	out.dirMap = md
	return out, nil
}

// FormatCoverSweep renders a sweep as a table plus the cumulative
// summary line the CLI prints.
func FormatCoverSweep(runs []CoverRun, cum *cover.Map) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-20s %9s %9s %6s %5s\n", "seed", "flavor", "random%", "direct%", "new", "kept")
	kept := 0
	for _, r := range runs {
		k := "-"
		if r.Kept {
			k = "keep"
			kept++
		}
		fmt.Fprintf(&b, "%-14d %-20s %9.1f %9.1f %6d %5s\n",
			r.Design.Seed, r.Design.Flavor, r.RandomPct, r.DirectedPct, r.NewPoints, k)
	}
	fmt.Fprintf(&b, "kept %d/%d designs; cumulative shape coverage %d points hit\n", kept, len(runs), cum.Hit())
	return b.String()
}
