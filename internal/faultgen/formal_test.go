package faultgen

import (
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/formal"
	"uvllm/internal/sim"
)

// TestClassifyBoundedDetectable classifies real benchmark faults: on a
// supported module, functional faults the simulation oracle validated as
// triggerable must classify as detectable with a counterexample that
// replays, or k-equivalent only when the fault genuinely needs a deeper
// run than the bound to surface.
func TestClassifyBoundedDetectable(t *testing.T) {
	m := dataset.ByName("counter_12bit")
	if m == nil {
		t.Skip("counter_12bit not in dataset")
	}
	faults := Generate(m, FuncLogic)
	if len(faults) == 0 {
		t.Skip("no FuncLogic variants on counter_12bit")
	}
	const k = 6
	detectable := 0
	for _, f := range faults {
		verdict, cex := ClassifyBounded(f, k)
		switch verdict {
		case FormalDetectable:
			detectable++
			if cex == nil {
				t.Fatalf("%s: detectable without counterexample", f.ID)
			}
			div, cyc, err := formal.ReplayCex(f.Golden, f.Source, m.Top, m.Clock, cex, sim.BackendCompiled)
			if err != nil {
				t.Fatalf("%s: replay: %v", f.ID, err)
			}
			if !div || cyc != cex.Cycle {
				t.Fatalf("%s: cex did not replay (div=%v cycle=%d want %d)", f.ID, div, cyc, cex.Cycle)
			}
		case FormalKEquivalent, FormalUnsupported:
			// Fine: deep faults and non-blastable variants exist.
		}
	}
	if detectable == 0 {
		t.Fatalf("no FuncLogic fault on counter_12bit classified detectable at depth %d", k)
	}
}

// TestClassifyBoundedEquivalent pins the k-equivalent verdict on a
// semantically identical rewrite, and the unsupported verdict on a
// syntax-class fault that does not parse.
func TestClassifyBoundedEquivalent(t *testing.T) {
	m := dataset.ByName("adder_8bit")
	if m == nil {
		t.Skip("adder_8bit not in dataset")
	}
	reassoc := `module adder_8bit(
    input [7:0] a,
    input [7:0] b,
    input cin,
    output [7:0] sum,
    output cout
);
    assign {cout, sum} = {7'd0, cin} + b + a;
endmodule
`
	f := &Fault{ID: "adder_8bit/reassoc", Module: m.Name, Golden: m.Source, Source: reassoc}
	verdict, cex := ClassifyBounded(f, 3)
	if verdict != FormalKEquivalent || cex != nil {
		t.Fatalf("reassociated adder: verdict %s (cex %v), want k-equivalent", verdict, cex)
	}

	syn := &Fault{ID: "adder_8bit/broken", Module: m.Name, Golden: m.Source, Source: "module adder_8bit(input a; endmodule"}
	if verdict, _ := ClassifyBounded(syn, 3); verdict != FormalUnsupported {
		t.Fatalf("unparseable mutant: verdict %s, want unsupported", verdict)
	}
}
