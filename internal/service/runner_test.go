package service

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// stubExec is a controllable Runner.exec replacement: every invocation
// reports itself on started, then blocks until release is closed (or
// proceeds immediately when release is nil).
type stubExec struct {
	started chan string   // receives the job's tenant per invocation
	release chan struct{} // close to let blocked invocations finish
}

func newStubExec(buffered int, blocking bool) *stubExec {
	s := &stubExec{started: make(chan string, buffered)}
	if blocking {
		s.release = make(chan struct{})
	}
	return s
}

func (s *stubExec) exec(_ context.Context, spec JobSpec, _ Services, _ func(Event)) Result {
	s.started <- spec.Tenant
	if s.release != nil {
		<-s.release
	}
	return Result{Success: true, Stage: "stub"}
}

// testSpec is a minimal valid spec (the runner validates against the
// real dataset even with a stubbed executor).
func testSpec(tenant string) JobSpec {
	return JobSpec{Module: "adder_8bit", Tenant: tenant}
}

func waitStatus(t *testing.T, j *Job, want Status) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		evs, more, _ := j.EventsSince(0)
		_ = evs
		if j.Status() == want {
			return
		}
		select {
		case <-more:
		case <-deadline:
			t.Fatalf("job %s stuck in %s, want %s", j.ID, j.Status(), want)
		}
	}
}

// TestRunnerBackpressure checks the bounded-queue contract: submissions
// beyond the limit fail fast with ErrQueueFull and are accepted again
// once the queue drains.
func TestRunnerBackpressure(t *testing.T) {
	stub := newStubExec(8, true)
	r := NewRunner(RunnerConfig{Workers: 1, QueueLimit: 2})
	r.exec = stub.exec
	defer r.Drain(context.Background())

	if _, err := r.Submit(testSpec("a")); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-stub.started // the single worker is now occupied

	for i := 0; i < 2; i++ {
		if _, err := r.Submit(testSpec("a")); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if _, err := r.Submit(testSpec("a")); err != ErrQueueFull {
		t.Fatalf("over-limit submit: err = %v, want ErrQueueFull", err)
	}

	// Unblock everything (a closed release channel never blocks again);
	// once the queue drains, submissions are accepted again.
	close(stub.release)
	deadline := time.After(5 * time.Second)
	for r.QueueDepth() > 0 {
		select {
		case <-deadline:
			t.Fatalf("queue never drained (depth %d)", r.QueueDepth())
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := r.Submit(testSpec("a")); err != nil {
		t.Fatalf("post-drain submit rejected: %v", err)
	}
}

// TestRunnerFairness checks round-robin tenant scheduling: with one
// worker and queues pre-loaded while the worker is blocked, execution
// interleaves tenants instead of draining the largest queue first.
func TestRunnerFairness(t *testing.T) {
	stub := newStubExec(16, true)
	r := NewRunner(RunnerConfig{Workers: 1, QueueLimit: 16})
	r.exec = stub.exec

	blocker, err := r.Submit(testSpec("blocker"))
	if err != nil {
		t.Fatalf("blocker submit: %v", err)
	}
	<-stub.started // worker occupied; everything below queues up

	for i := 0; i < 4; i++ {
		if _, err := r.Submit(testSpec("alice")); err != nil {
			t.Fatalf("alice %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Submit(testSpec("bob")); err != nil {
			t.Fatalf("bob %d: %v", i, err)
		}
	}

	close(stub.release)
	var order []string
	for i := 0; i < 6; i++ {
		select {
		case tenant := <-stub.started:
			order = append(order, tenant)
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 6 queued jobs ran: %v", i, order)
		}
	}
	want := []string{"alice", "bob", "alice", "bob", "alice", "alice"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want round-robin %v", order, want)
	}
	waitStatus(t, blocker, StatusDone)
	r.Drain(context.Background())
}

// TestRunnerDrain checks the graceful-drain contract: in-flight jobs
// finish, queued jobs terminate in the drained state without running,
// and new submissions are refused with ErrDraining.
func TestRunnerDrain(t *testing.T) {
	stub := newStubExec(8, true)
	r := NewRunner(RunnerConfig{Workers: 1, QueueLimit: 8})
	r.exec = stub.exec

	inflight, err := r.Submit(testSpec("a"))
	if err != nil {
		t.Fatalf("inflight submit: %v", err)
	}
	<-stub.started
	queued, err := r.Submit(testSpec("a"))
	if err != nil {
		t.Fatalf("queued submit: %v", err)
	}

	drained := make(chan error, 1)
	go func() { drained <- r.Drain(context.Background()) }()

	// The queued job must terminate as drained without ever executing.
	waitStatus(t, queued, StatusDrained)
	if _, ok := queued.Result(); ok {
		t.Fatal("drained job has a result; it must never have run")
	}
	if _, err := r.Submit(testSpec("b")); err != ErrDraining {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}

	// Drain must wait for the in-flight job.
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) before the in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(stub.release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitStatus(t, inflight, StatusDone)
	if res, ok := inflight.Result(); !ok || !res.Success {
		t.Fatalf("in-flight job result = %+v ok=%v, want success", res, ok)
	}

	// Drain is idempotent, and a cancelled context reports cleanly.
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestRunnerDrainTimeout checks that a drain bounded by an expiring
// context returns the context error while a job is still stuck.
func TestRunnerDrainTimeout(t *testing.T) {
	stub := newStubExec(8, true)
	r := NewRunner(RunnerConfig{Workers: 1, QueueLimit: 8})
	r.exec = stub.exec
	if _, err := r.Submit(testSpec("a")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-stub.started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain err = %v, want DeadlineExceeded", err)
	}
	close(stub.release)
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("final drain: %v", err)
	}
}

// TestRunnerRejectsInvalidSpec checks that validation failures surface
// at submission and leave no job behind.
func TestRunnerRejectsInvalidSpec(t *testing.T) {
	r := NewRunner(RunnerConfig{Workers: 1, QueueLimit: 2})
	r.exec = newStubExec(1, false).exec
	defer r.Drain(context.Background())

	if _, err := r.Submit(JobSpec{Module: "warp_core"}); err == nil {
		t.Fatal("unknown module accepted")
	}
	if _, err := r.Submit(JobSpec{Module: "adder_8bit", Options: Options{Lanes: -1}}); err == nil {
		t.Fatal("invalid options accepted")
	}
	if depth := r.QueueDepth(); depth != 0 {
		t.Fatalf("rejected submissions left %d jobs queued", depth)
	}
}

// TestJobEventSequence checks the dense per-job Seq numbering and the
// EventsSince resume contract a reconnecting stream consumer relies on.
func TestJobEventSequence(t *testing.T) {
	stub := newStubExec(1, false)
	r := NewRunner(RunnerConfig{Workers: 1, QueueLimit: 2})
	r.exec = stub.exec
	defer r.Drain(context.Background())

	j, err := r.Submit(testSpec("a"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := j.WaitTerminal(context.Background()); err != nil {
		t.Fatalf("wait: %v", err)
	}
	evs, _, terminal := j.EventsSince(0)
	if !terminal {
		t.Fatal("terminal job reported as live")
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d; numbering must be dense from 0", i, ev.Seq)
		}
	}
	if evs[0].Kind != EventQueued || evs[len(evs)-1].Kind != EventTerminal {
		t.Fatalf("event kinds = %v, want queued..terminal", kinds(evs))
	}
	// Resume from a mid-stream offset: no duplicates, no gaps.
	tail, _, _ := j.EventsSince(1)
	if len(tail) != len(evs)-1 || tail[0].Seq != 1 {
		t.Fatalf("EventsSince(1) returned %d events starting at %d", len(tail), tail[0].Seq)
	}
}

func kinds(evs []Event) []string {
	var out []string
	for _, ev := range evs {
		out = append(out, ev.Kind)
	}
	return out
}

// TestRunnerStageStats checks that queue-wait and run samples are
// recorded for executed jobs — the feed of the metrics percentiles.
func TestRunnerStageStats(t *testing.T) {
	stub := newStubExec(4, false)
	r := NewRunner(RunnerConfig{Workers: 2, QueueLimit: 8})
	r.exec = stub.exec
	for i := 0; i < 3; i++ {
		j, err := r.Submit(testSpec("a"))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if _, err := j.WaitTerminal(context.Background()); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	r.Drain(context.Background())
	stats := r.StageStats()
	if len(stats["queue_wait"]) != 3 || len(stats["run"]) != 3 {
		t.Fatalf("stage samples = %d wait / %d run, want 3 / 3",
			len(stats["queue_wait"]), len(stats["run"]))
	}
}

// TestRunnerResultTTL pins the terminal-result garbage collection under a
// fake clock: a finished job stays addressable within its TTL, and a
// lookup after the TTL elapses reports not-found — the HTTP layer's 404.
// Live jobs are never collected, whatever the clock says.
func TestRunnerResultTTL(t *testing.T) {
	clock := struct {
		mu  chan struct{}
		now time.Time
	}{mu: make(chan struct{}, 1), now: time.Unix(1_000_000, 0)}
	clock.mu <- struct{}{}
	read := func() time.Time {
		<-clock.mu
		n := clock.now
		clock.mu <- struct{}{}
		return n
	}
	advance := func(d time.Duration) {
		<-clock.mu
		clock.now = clock.now.Add(d)
		clock.mu <- struct{}{}
	}

	stub := newStubExec(8, false)
	r := NewRunner(RunnerConfig{Workers: 1, ResultTTL: time.Minute})
	r.exec = stub.exec
	r.now = read
	defer r.Drain(context.Background())

	j, err := r.Submit(testSpec("a"))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusDone)

	// Inside the TTL the job and its result remain addressable.
	advance(59 * time.Second)
	if _, ok := r.Job(j.ID); !ok {
		t.Fatal("terminal job vanished before its TTL")
	}
	if _, ok := j.Result(); !ok {
		t.Fatal("terminal job lost its result")
	}

	// Crossing the TTL, the next lookup collects it: not-found, exactly
	// like an unknown ID.
	advance(2 * time.Second)
	if _, ok := r.Job(j.ID); ok {
		t.Fatal("terminal job still addressable past its TTL")
	}

	// A live (blocked) job is immune to the TTL no matter the clock.
	blocked := newStubExec(1, true)
	r.exec = blocked.exec
	j2, err := r.Submit(testSpec("a"))
	if err != nil {
		t.Fatal(err)
	}
	<-blocked.started
	advance(time.Hour)
	if _, ok := r.Job(j2.ID); !ok {
		t.Fatal("running job was garbage-collected")
	}
	close(blocked.release)
	waitStatus(t, j2, StatusDone)
}

// TestRunnerCancel covers both cancellation shapes: a queued job goes
// terminal immediately and is skipped by the worker that eventually
// pops it; a running job has its context cancelled and lands cancelled
// when the executor returns a Cancelled result. Cancelling terminal or
// unknown jobs is a no-op.
func TestRunnerCancel(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	r := NewRunner(RunnerConfig{Workers: 1, QueueLimit: 8})
	r.exec = func(ctx context.Context, spec JobSpec, _ Services, _ func(Event)) Result {
		started <- spec.Tenant
		select {
		case <-ctx.Done():
			return Result{Cancelled: true, Stage: "verify"}
		case <-release:
			return Result{Success: true, Stage: "stub"}
		}
	}

	running, err := r.Submit(testSpec("a"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	queued, err := r.Submit(testSpec("a"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Queued: terminal immediately, the worker never runs it.
	if _, ok := r.Cancel(queued.ID); !ok {
		t.Fatal("cancel of a queued job reported unknown")
	}
	if queued.Status() != StatusCancelled {
		t.Fatalf("queued job status = %s, want cancelled immediately", queued.Status())
	}
	if _, hasResult := queued.Result(); hasResult {
		t.Fatal("never-ran job has a result")
	}

	// Running: cancellation propagates through the context; the worker
	// lands the terminal state with the executor's (cancelled) result.
	if _, ok := r.Cancel(running.ID); !ok {
		t.Fatal("cancel of a running job reported unknown")
	}
	waitStatus(t, running, StatusCancelled)
	res, ok := running.Result()
	if !ok || !res.Cancelled {
		t.Fatalf("running job result = %+v (ok=%v), want cancelled", res, ok)
	}

	// Terminal: idempotent no-op; unknown: not found.
	if j, ok := r.Cancel(running.ID); !ok || j.Status() != StatusCancelled {
		t.Fatal("re-cancel of a terminal job must be a found no-op")
	}
	if _, ok := r.Cancel("job-999"); ok {
		t.Fatal("cancel of an unknown job reported found")
	}

	if got := r.jobsCancelled.Value(); got != 2 {
		t.Fatalf("jobs_cancelled_total = %d, want 2", got)
	}
	close(release)
	r.Drain(context.Background())
}

// TestRunnerTraceSpans checks that a trace-enabled job streams span
// events carrying a root "job" span, and that an untraced job streams
// none.
func TestRunnerTraceSpans(t *testing.T) {
	stub := newStubExec(2, false)
	r := NewRunner(RunnerConfig{Workers: 1, QueueLimit: 4})
	r.exec = stub.exec
	defer r.Drain(context.Background())

	spec := testSpec("a")
	spec.Options.Trace = true
	traced, err := r.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, traced, StatusDone)
	evs, _, _ := traced.EventsSince(0)
	var spans int
	for _, ev := range evs {
		if ev.Kind == EventSpan {
			spans++
			if ev.Span == nil || ev.Span.Name != "job" {
				t.Fatalf("span event payload = %+v, want the root job span", ev.Span)
			}
		}
	}
	if spans != 1 {
		t.Fatalf("traced stub job streamed %d span events, want 1 (the root)", spans)
	}

	plain, err := r.Submit(testSpec("a"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, plain, StatusDone)
	evs, _, _ = plain.EventsSince(0)
	for _, ev := range evs {
		if ev.Kind == EventSpan {
			t.Fatal("untraced job streamed a span event")
		}
	}
}
