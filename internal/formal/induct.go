package formal

import "fmt"

import "uvllm/internal/sim"

// InductionEquiv proves or refutes equivalence with Sheeran-style
// k-induction under default options: the bounded base case of BMCEquiv
// plus an inductive step over an arbitrary-state window, upgrading
// "equivalent to depth k" into "equivalent for all time" whenever the
// step closes.
func InductionEquiv(a, b *sim.Program, clock string, k int) (EquivResult, error) {
	return InductionEquivOpts(a, b, clock, k, Options{})
}

// InductionEquivOpts interleaves an incremental BMC base case with an
// incremental inductive step, one round per depth:
//
//   - Base (depth t): the standard concrete-init unrolling. A SAT answer
//     is a genuine counterexample (minimized under Options.MinimizeCex);
//     UNSAT is strengthened into a permanent ¬bad_t fact.
//   - Step (window r = t+1): a second unrolling of the same shared AIG
//     that starts from a fully symbolic product state (every register and
//     memory word of both models a free variable — a sound
//     over-approximation of reachability). Round r asks whether the
//     miter can first diverge at the r-th cycle of the window. The
//     hypotheses — ¬bad at window cycles 1..r-1 and pairwise distinctness
//     of the first r product register states (the loop-free path
//     constraint that makes k-induction complete, restricted to
//     registers/memories because combinational signals are functions of
//     them) — grow monotonically with r, so each is committed as a
//     permanent unit clause and each round solves under the single
//     assumption bad_r.
//
// An UNSAT step at round r, combined with the base UNSAT answers at
// depths 0..r-1 from the same loop iteration, yields Equivalent=true,
// Unbounded=true, Depth=r: any reachable divergence would embed a
// loop-free window satisfying the round-r query (shorten the path across
// repeated register states otherwise). If the step side exhausts its
// conflict budget it degrades to plain bounded BMC for the remaining
// depths rather than failing the whole check; a base-side exhaustion is
// ErrBudget as in BMCEquivOpts. Options.FromScratch is ignored here —
// induction is inherently incremental.
func InductionEquivOpts(a, b *sim.Program, clock string, k int, opts Options) (EquivResult, error) {
	var res EquivResult
	g := NewAIG()
	opts.Clock = clock
	u, err := newMiter(g, a, b, opts)
	if err != nil {
		return res, err
	}
	if err := u.init(); err != nil {
		return res, err
	}
	// The induction window: same models, same graph, symbolic start.
	w := &miter{g: g, ma: u.ma, mb: u.mb}
	w.sta, w.stb = u.ma.FreeState(), u.mb.FreeState()

	sBase := NewSolver(0)
	sBase.MaxConflicts = opts.MaxConflicts
	tiB := NewIncTseitin(g, sBase)
	sInd := NewSolver(0)
	sInd.MaxConflicts = opts.MaxConflicts
	tiI := NewIncTseitin(g, sInd)

	stA := u.ma.StateSignals()
	stB := u.mb.StateSignals()
	winA := []*State{w.sta} // window product states u_0 .. u_t
	winB := []*State{w.stb}
	prevIndBad := False // bad literal of the previous round's window cycle
	inductionAlive := true

	for t := 0; t < k; t++ {
		if err := opts.cancelled(t); err != nil {
			return res, err
		}
		// ---- base case, depth t ----
		bad, diffs, err := u.step()
		if err != nil {
			return res, err
		}
		res.Stats.AIGNodes = g.NumNodes()
		if c, v := g.IsConst(bad); !c || v {
			badLit := tiB.Lit(bad)
			dSp := opts.Span.Child("induct_base")
			dSp.SetArg("depth", fmt.Sprintf("%d", t))
			sat := sBase.SolveAssuming(badLit)
			dSp.End()
			res.Stats.Solves = append(res.Stats.Solves, sBase.CallStats())
			if sBase.Exhausted() {
				return res, fmt.Errorf("%w: depth %d after %d conflicts", ErrBudget, t, sBase.Stats().Conflicts)
			}
			if sat {
				res.Depth = t
				res.Cex = extractCex(u.ma, u.inputs, tiB.Vars(), sBase, diffs, t)
				if opts.MinimizeCex {
					res.RawCex = res.Cex
					minimizeModel(sBase, tiB, badLit, u.inputs)
					res.Cex = extractCex(u.ma, u.inputs, tiB.Vars(), sBase, diffs, t)
				}
				return res, nil
			}
			sBase.AddClause(-badLit)
		}

		// ---- inductive step, window r = t+1 ----
		if !inductionAlive {
			continue
		}
		if t > 0 {
			// Commit the monotone hypotheses that round t established:
			// the window cannot first diverge at cycle t, and the window
			// state u_t is distinct from every earlier window state.
			if c, _ := g.IsConst(prevIndBad); !c {
				sInd.AddClause(-tiI.Lit(prevIndBad))
			}
			for i := 0; i < t; i++ {
				d := g.Or(
					stateDiff(g, u.ma, winA[i], winA[t], stA),
					stateDiff(g, u.mb, winB[i], winB[t], stB),
				)
				sInd.AddClause(tiI.Lit(d))
			}
		}
		indBad, _, err := w.step()
		if err != nil {
			inductionAlive = false
			continue
		}
		winA = append(winA, w.sta)
		winB = append(winB, w.stb)
		if c, v := g.IsConst(indBad); c {
			if v {
				// Structurally bad from an arbitrary state: the hypothesis
				// set is contradictory from here on, so the step can never
				// soundly close — degrade to bounded BMC. (The base case
				// refutes such a pair at this very depth anyway.)
				inductionAlive = false
				continue
			}
			// Structurally impossible to first diverge at cycle t+1 of an
			// arbitrary-state window: the step closes without a solve.
			res.Equivalent = true
			res.Unbounded = true
			res.Depth = t + 1
			return res, nil
		}
		indBadLit := tiI.Lit(indBad)
		wSp := opts.Span.Child("induct_step")
		wSp.SetArg("window", fmt.Sprintf("%d", t+1))
		sat := sInd.SolveAssuming(indBadLit)
		wSp.End()
		res.Stats.Solves = append(res.Stats.Solves, sInd.CallStats())
		if sInd.Exhausted() {
			inductionAlive = false
			continue
		}
		if !sat {
			res.Equivalent = true
			res.Unbounded = true
			res.Depth = t + 1
			res.Stats.AIGNodes = g.NumNodes()
			return res, nil
		}
		prevIndBad = indBad
	}
	res.Equivalent = true
	res.Depth = k
	res.Stats.AIGNodes = g.NumNodes()
	return res, nil
}

// stateDiff is the "these two window snapshots differ" literal over one
// model's sequential state: some register or memory word among sigs
// differs between si and sj.
func stateDiff(g *AIG, m *Model, si, sj *State, sigs []int) Lit {
	d := False
	for _, idx := range sigs {
		if m.sigs[idx].IsMem {
			for wd := range si.mems[idx] {
				d = g.Or(d, g.EqVec(si.mems[idx][wd], sj.mems[idx][wd]).Not())
			}
			continue
		}
		d = g.Or(d, g.EqVec(si.vals[idx], sj.vals[idx]).Not())
	}
	return d
}
