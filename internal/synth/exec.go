package synth

import (
	"fmt"

	"uvllm/internal/verilog"
)

// symEnv is the symbolic-execution state inside one always block.
type symEnv struct {
	b        *builder
	vals     map[string]int   // blocking writes visible to later reads
	nba      map[string]int   // pending non-blocking writes
	concrete map[string]int64 // loop variables with known constant values
}

func newSymEnv(b *builder) *symEnv {
	return &symEnv{b: b, vals: map[string]int{}, nba: map[string]int{}, concrete: map[string]int64{}}
}

func (e *symEnv) clone() *symEnv {
	c := newSymEnv(e.b)
	for k, v := range e.vals {
		c.vals[k] = v
	}
	for k, v := range e.nba {
		c.nba[k] = v
	}
	for k, v := range e.concrete {
		c.concrete[k] = v
	}
	return c
}

// read resolves a signal to a node: concrete loop constants, then local
// blocking writes, then the module environment (inputs, registers,
// previously synthesized combinational signals), then parameters.
func (e *symEnv) read(name string, line int) (int, error) {
	if v, ok := e.concrete[name]; ok {
		return e.b.nl.konst(uint64(v), 32), nil
	}
	if id, ok := e.vals[name]; ok {
		return id, nil
	}
	if id, ok := e.b.env[name]; ok {
		return id, nil
	}
	if v, ok := e.b.params[name]; ok {
		return e.b.nl.konst(uint64(v), 32), nil
	}
	return 0, fmt.Errorf("synth: read of unresolved signal %q (line %d)", name, line)
}

// constEnv merges parameters and concrete loop variables for constant
// evaluation of loop bounds and selects.
func (e *symEnv) constEnv() verilog.ConstEnv {
	env := verilog.ConstEnv{}
	for k, v := range e.b.params {
		env[k] = v
	}
	for k, v := range e.concrete {
		env[k] = v
	}
	return env
}

// synthCombItem synthesizes a continuous assignment or a combinational
// always block into the module environment.
func (b *builder) synthCombItem(it verilog.Item) error {
	switch v := it.(type) {
	case *verilog.ContAssign:
		env := newSymEnv(b)
		ctxW := b.lhsWidth(v.LHS, env)
		if w := b.selfWidth(v.RHS, env); w > ctxW {
			ctxW = w
		}
		node, err := b.synthExpr(v.RHS, env, ctxW)
		if err != nil {
			return err
		}
		return b.writeGlobal(v.LHS, env, node)
	case *verilog.AlwaysBlock:
		env := newSymEnv(b)
		if err := b.exec(v.Body, env, nil); err != nil {
			return err
		}
		for name, node := range env.vals {
			if _, isInt := env.concrete[name]; isInt {
				continue
			}
			b.env[name] = b.fitWidth(node, b.widths[name])
		}
		return nil
	}
	return fmt.Errorf("synth: unsupported combinational item %T", it)
}

// synthSeqBlock synthesizes an edge-triggered always block: its
// non-blocking writes become register next-state functions.
func (b *builder) synthSeqBlock(ab *verilog.AlwaysBlock) error {
	env := newSymEnv(b)
	if err := b.exec(ab.Body, env, nil); err != nil {
		return err
	}
	for name, node := range env.nba {
		found := false
		for i := range b.nl.Regs {
			if b.nl.Regs[i].Name == name {
				b.nl.Regs[i].Next = b.fitWidth(node, b.widths[name])
				found = true
			}
		}
		if !found {
			return fmt.Errorf("synth: non-blocking write to unregistered %q", name)
		}
	}
	// Blocking writes inside a sequential block behave as registered
	// temporaries; treat them as regs updated with the computed value.
	for name, node := range env.vals {
		for i := range b.nl.Regs {
			if b.nl.Regs[i].Name == name {
				b.nl.Regs[i].Next = b.fitWidth(node, b.widths[name])
			}
		}
	}
	return nil
}

// fitWidth truncates a node to w bits when it is wider.
func (b *builder) fitWidth(id, w int) int {
	if b.nl.Nodes[id].Width <= w {
		return id
	}
	return b.nl.add(&Node{Kind: OpSlice, Width: w, Args: []int{id}, Lo: 0, Hi: w - 1})
}

// exec symbolically executes one statement. kind==nil means default
// handling of blocking/non-blocking per the assignment operator.
func (b *builder) exec(s verilog.Stmt, env *symEnv, _ interface{}) error {
	switch v := s.(type) {
	case nil, *verilog.NullStmt:
		return nil
	case *verilog.Block:
		for _, st := range v.Stmts {
			if err := b.exec(st, env, nil); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Assign:
		return b.execAssign(v, env)
	case *verilog.If:
		return b.execIf(v.Cond, v.Then, v.Else, env)
	case *verilog.Case:
		return b.execCase(v, env)
	case *verilog.For:
		return b.execFor(v, env)
	}
	return fmt.Errorf("synth: unsupported statement %T", s)
}

func (b *builder) execAssign(a *verilog.Assign, env *symEnv) error {
	if a == nil {
		return nil
	}
	// Integer loop variables with constant RHS stay concrete.
	if id, ok := a.LHS.(*verilog.Ident); ok {
		if v, err := verilog.EvalConst(a.RHS, env.constEnv()); err == nil {
			if _, isConc := env.concrete[id.Name]; isConc {
				env.concrete[id.Name] = v
				return nil
			}
		}
	}
	ctxW := b.lhsWidth(a.LHS, env)
	if w := b.selfWidth(a.RHS, env); w > ctxW {
		ctxW = w
	}
	node, err := b.synthExpr(a.RHS, env, ctxW)
	if err != nil {
		return err
	}
	return b.writeLocal(a.LHS, env, node, a.Blocking)
}

func (b *builder) execIf(cond verilog.Expr, then, els verilog.Stmt, env *symEnv) error {
	// Constant conditions (loop-unrolled selects) take one branch.
	if cv, err := verilog.EvalConst(cond, env.constEnv()); err == nil {
		if cv != 0 {
			return b.exec(then, env, nil)
		}
		return b.exec(els, env, nil)
	}
	condNode, err := b.synthExpr(cond, env, b.selfWidth(cond, env))
	if err != nil {
		return err
	}
	condBit := b.boolNode(condNode)
	thenEnv := env.clone()
	elseEnv := env.clone()
	if err := b.exec(then, thenEnv, nil); err != nil {
		return err
	}
	if els != nil {
		if err := b.exec(els, elseEnv, nil); err != nil {
			return err
		}
	}
	return b.merge(env, condBit, thenEnv, elseEnv)
}

// boolNode reduces a multi-bit node to one bit of truthiness.
func (b *builder) boolNode(id int) int {
	if b.nl.Nodes[id].Width == 1 {
		return id
	}
	return b.nl.add(&Node{Kind: OpRedOr, Width: 1, Args: []int{id}})
}

// merge folds two branch environments back into env with mux trees.
func (b *builder) merge(env *symEnv, cond int, thenEnv, elseEnv *symEnv) error {
	mergeMap := func(get func(*symEnv) map[string]int, fallback func(string) (int, bool)) error {
		names := map[string]bool{}
		for n := range get(thenEnv) {
			names[n] = true
		}
		for n := range get(elseEnv) {
			names[n] = true
		}
		for name := range names {
			tv, tok := get(thenEnv)[name]
			ev, eok := get(elseEnv)[name]
			if !tok || !eok {
				fb, fok := fallback(name)
				if !fok {
					return fmt.Errorf("synth: latch inferred for %q (not assigned on all paths)", name)
				}
				if !tok {
					tv = fb
				}
				if !eok {
					ev = fb
				}
			}
			if tv == ev {
				get(env)[name] = tv
				continue
			}
			w := b.nl.Nodes[tv].Width
			if ew := b.nl.Nodes[ev].Width; ew > w {
				w = ew
			}
			get(env)[name] = b.nl.add(&Node{Kind: OpMux, Width: w, Args: []int{cond, tv, ev}})
		}
		return nil
	}
	if err := mergeMap(func(e *symEnv) map[string]int { return e.vals },
		func(name string) (int, bool) {
			if id, ok := env.vals[name]; ok {
				return id, true
			}
			id, ok := b.env[name]
			return id, ok
		}); err != nil {
		return err
	}
	return mergeMap(func(e *symEnv) map[string]int { return e.nba },
		func(name string) (int, bool) {
			if id, ok := env.nba[name]; ok {
				return id, true
			}
			// Hold semantics: a register keeps its value when a branch
			// does not assign it.
			id, ok := b.env[name]
			return id, ok
		})
}

func (b *builder) execCase(c *verilog.Case, env *symEnv) error {
	// Desugar to an if/else chain, default last.
	var arms []verilog.CaseItem
	var def verilog.Stmt
	for _, it := range c.Items {
		if it.Exprs == nil {
			def = it.Body
			continue
		}
		arms = append(arms, it)
	}
	var build func(i int) (verilog.Stmt, error)
	build = func(i int) (verilog.Stmt, error) {
		if i == len(arms) {
			return def, nil
		}
		rest, err := build(i + 1)
		if err != nil {
			return nil, err
		}
		cond := caseCond(c.Expr, arms[i].Exprs)
		return &verilog.If{Cond: cond, Then: arms[i].Body, Else: rest, Line: arms[i].Line}, nil
	}
	chain, err := build(0)
	if err != nil {
		return err
	}
	return b.exec(chain, env, nil)
}

func caseCond(sel verilog.Expr, labels []verilog.Expr) verilog.Expr {
	var cond verilog.Expr
	for _, l := range labels {
		eq := &verilog.Binary{Op: "==", X: sel, Y: l}
		if cond == nil {
			cond = eq
		} else {
			cond = &verilog.Binary{Op: "||", X: cond, Y: eq}
		}
	}
	return cond
}

const maxUnroll = 256

func (b *builder) execFor(f *verilog.For, env *symEnv) error {
	if f.Init == nil || f.Step == nil {
		return fmt.Errorf("synth: for loop without init/step (line %d)", f.Line)
	}
	varName := ""
	if id, ok := f.Init.LHS.(*verilog.Ident); ok {
		varName = id.Name
	}
	if varName == "" {
		return fmt.Errorf("synth: for loop with complex induction variable (line %d)", f.Line)
	}
	init, err := verilog.EvalConst(f.Init.RHS, env.constEnv())
	if err != nil {
		return fmt.Errorf("synth: non-constant loop init (line %d): %w", f.Line, err)
	}
	env.concrete[varName] = init
	for iter := 0; ; iter++ {
		if iter > maxUnroll {
			return fmt.Errorf("synth: loop unroll limit exceeded (line %d)", f.Line)
		}
		cond, err := verilog.EvalConst(f.Cond, env.constEnv())
		if err != nil {
			return fmt.Errorf("synth: non-constant loop bound (line %d): %w", f.Line, err)
		}
		if cond == 0 {
			break
		}
		if err := b.exec(f.Body, env, nil); err != nil {
			return err
		}
		step, err := verilog.EvalConst(f.Step.RHS, env.constEnv())
		if err != nil {
			return fmt.Errorf("synth: non-constant loop step (line %d): %w", f.Line, err)
		}
		env.concrete[varName] = step
	}
	delete(env.concrete, varName)
	return nil
}

// writeGlobal stores a continuous assignment's value into the module
// environment (splitting concatenation LHS).
func (b *builder) writeGlobal(lhs verilog.Expr, env *symEnv, node int) error {
	switch l := lhs.(type) {
	case *verilog.Ident:
		b.env[l.Name] = b.fitWidth(node, b.widths[l.Name])
		return nil
	case *verilog.Concat:
		return b.splitConcat(l, env, node, func(name string, part int) {
			b.env[name] = part
		})
	case *verilog.PartSelect, *verilog.Index:
		return fmt.Errorf("synth: partial continuous assignment unsupported")
	}
	return fmt.Errorf("synth: unsupported assign target %T", lhs)
}

// writeLocal stores a procedural assignment into the symbolic environment.
func (b *builder) writeLocal(lhs verilog.Expr, env *symEnv, node int, blocking bool) error {
	store := func(name string, v int) {
		v = b.fitWidth(v, b.widths[name])
		if blocking {
			env.vals[name] = v
		} else {
			env.nba[name] = v
		}
	}
	switch l := lhs.(type) {
	case *verilog.Ident:
		store(l.Name, node)
		return nil
	case *verilog.Concat:
		return b.splitConcat(l, env, node, store)
	case *verilog.Index:
		return b.readModifyWrite(l.X, env, node, l.Index, l.Index, blocking, store)
	case *verilog.PartSelect:
		return b.readModifyWrite(l.X, env, node, l.MSB, l.LSB, blocking, store)
	}
	return fmt.Errorf("synth: unsupported assignment target %T", lhs)
}

// readModifyWrite implements bit/part-select writes: the target keeps its
// other bits.
func (b *builder) readModifyWrite(base verilog.Expr, env *symEnv, val int,
	msbE, lsbE verilog.Expr, blocking bool, store func(string, int)) error {

	id, ok := base.(*verilog.Ident)
	if !ok {
		return fmt.Errorf("synth: nested select targets unsupported")
	}
	msb, err1 := verilog.EvalConst(msbE, env.constEnv())
	lsb, err2 := verilog.EvalConst(lsbE, env.constEnv())
	if err1 != nil || err2 != nil {
		return fmt.Errorf("synth: non-constant select write to %q", id.Name)
	}
	if msb < lsb {
		msb, lsb = lsb, msb
	}
	w := b.widths[id.Name]
	fieldW := int(msb-lsb) + 1
	// Previous value: local if present, else pending NBA, else global.
	prev, ok := env.vals[id.Name]
	if !ok {
		if p, pok := env.nba[id.Name]; pok && !blocking {
			prev = p
			ok = true
		}
	}
	if !ok {
		var perr error
		prev, perr = env.read(id.Name, 0)
		if perr != nil {
			return perr
		}
	}
	mask := maskW(fieldW) << uint(lsb)
	notMask := b.nl.konst(^mask&maskW(w), w)
	cleared := b.nl.add(&Node{Kind: OpAnd, Width: w, Args: []int{prev, notMask}})
	valMasked := b.fitWidth(val, fieldW)
	shifted := valMasked
	if lsb > 0 {
		shAmt := b.nl.konst(uint64(lsb), 32)
		wide := b.nl.add(&Node{Kind: OpShl, Width: w, Args: []int{valMasked, shAmt}})
		shifted = wide
	} else if b.nl.Nodes[valMasked].Width < w {
		shifted = valMasked
	}
	merged := b.nl.add(&Node{Kind: OpOr, Width: w, Args: []int{cleared, shifted}})
	store(id.Name, merged)
	return nil
}

// splitConcat distributes a value across the parts of a concatenation
// target, MSB first.
func (b *builder) splitConcat(l *verilog.Concat, env *symEnv, node int, store func(string, int)) error {
	total := 0
	widths := make([]int, len(l.Parts))
	for i, p := range l.Parts {
		id, ok := p.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("synth: concatenation targets must be identifiers")
		}
		widths[i] = b.widths[id.Name]
		total += widths[i]
	}
	shift := total
	for i, p := range l.Parts {
		shift -= widths[i]
		id := p.(*verilog.Ident)
		part := b.nl.add(&Node{Kind: OpSlice, Width: widths[i], Args: []int{node},
			Lo: shift, Hi: shift + widths[i] - 1})
		store(id.Name, part)
	}
	return nil
}
