package uvllm_test

// These examples are the former examples/quickstart and
// examples/benchmark_sweep programs, converted to testable Example
// functions: `go test` compiles them and diffs their output on every
// run, so they cannot silently rot, and pkg.go.dev renders them as the
// package's usage documentation.

import (
	"context"
	"fmt"
	"strings"

	"uvllm/internal/core"
	"uvllm/internal/dataset"
	"uvllm/internal/exp"
	"uvllm/internal/faultgen"
	"uvllm/internal/formal"
	"uvllm/internal/llm"
	"uvllm/internal/sim"
)

// Example_quickstart injects a realistic human-style fault into a
// verified RTL module, then lets the UVLLM pipeline find and repair it.
func Example_quickstart() {
	// 1. Pick a verified benchmark module (an 8-bit accumulator).
	m := dataset.ByName("accu")

	// 2. Inject a logic error (paper Table I: operator/value/variable
	//    misuse) with the paradigm error generator.
	f := faultgen.Generate(m, faultgen.FuncLogic)[0]
	fmt.Printf("injected: %s\n", f.ID)

	// 3. The repair agent. Offline, the GPT-4-turbo stand-in is the
	//    calibrated oracle; with API access you would plug in any client
	//    implementing llm.Client here (the paper's modularity property).
	client := llm.NewOracle(llm.Knowledge{
		FaultID: f.ID, Golden: f.Golden, Class: string(f.Class),
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, llm.DefaultProfile(), 3)

	// 4. Run the four-stage pipeline: pre-processing, UVM testing,
	//    localization, repair — iterating with rollback.
	res := core.Verify(context.Background(), core.Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: client,
		Opts: core.Options{Seed: 3},
	})
	fmt.Printf("success=%v fixed-in=%s iterations=%d pass_rate=%.1f%%\n",
		res.Success, res.FixedStage, res.Iterations, res.PassRate*100)

	// 5. Show what changed.
	if res.Success {
		orig, patched, _ := llm.LineDiff(f.Source, res.Final)
		fmt.Printf("- %s\n+ %s\n", strings.TrimSpace(orig), strings.TrimSpace(patched))
	}

	// Output:
	// injected: accu/FuncLogic-0
	// success=true fixed-in=repair-ms iterations=2 pass_rate=100.0%
	// - sum <= sum - {8'd0, d};
	// + sum <= sum + {8'd0, d};
}

// Example_benchmarkSweep evaluates UVLLM and the MEIC baseline over a
// slice of the 331-instance error benchmark — the workload the paper's
// evaluation section is built on — and prints the aggregate fix counts.
func Example_benchmarkSweep() {
	// One instance of every fault class on the Control group modules.
	var subset []*faultgen.Fault
	seen := map[string]bool{}
	for _, f := range faultgen.Benchmark() {
		if f.Meta().Category != "Control" {
			continue
		}
		key := f.Module + "/" + string(f.Class)
		if seen[key] {
			continue
		}
		seen[key] = true
		subset = append(subset, f)
	}

	recs := exp.Run(exp.Config{Seed: 1, Instances: subset})

	uvllmFix, meicFix := 0, 0
	for _, r := range recs {
		if r.UVLLMFix {
			uvllmFix++
		}
		if r.MEICFix {
			meicFix++
		}
	}
	fmt.Printf("instances=%d\n", len(recs))
	fmt.Printf("UVLLM fixed %d, MEIC fixed %d\n", uvllmFix, meicFix)

	// Output:
	// instances=46
	// UVLLM fixed 35, MEIC fixed 22
}

// Example_formalEquivalence proves a repair correct instead of testing
// it: the formal engine bit-blasts a benchmark module and a hand-mutated
// copy, refutes their equivalence with a concrete counterexample, and —
// after the repair — proves the fixed source equivalent to the golden
// for every stimulus up to the unrolling depth. Simulation samples
// stimulus; the third oracle exhausts it.
func Example_formalEquivalence() {
	// The 12-bit counter, and a copy with a hand-planted deep bug: once
	// the count reaches 6 it skips to 8. No stimulus shorter than seven
	// enabled cycles can observe it — exactly the kind of fault a short
	// directed testbench misses.
	m := dataset.ByName("counter_12bit")
	buggy := strings.Replace(m.Source,
		"count <= count + 12'd1;",
		"count <= (count == 12'd6) ? 12'd8 : (count + 12'd1);", 1)

	golden, _ := sim.CompileSource(m.Source, m.Top, sim.BackendCompiled)
	mutant, _ := sim.CompileSource(buggy, m.Top, sim.BackendCompiled)

	// Bounded model check: unroll both transition relations from the
	// concrete reset state and ask the SAT solver for any distinguishing
	// stimulus. Four cycles cannot reach the bug; eight can.
	res, _ := formal.BMCEquiv(golden, mutant, m.Clock, 4)
	fmt.Printf("buggy vs golden, depth 4: equivalent=%v\n", res.Equivalent)
	res, _ = formal.BMCEquiv(golden, mutant, m.Clock, 8)
	fmt.Printf("buggy vs golden, depth 8: equivalent=%v, counterexample at cycle %d on %q\n",
		res.Equivalent, res.Cex.Cycle, res.Cex.Signal)

	// Every refutation must replay in concrete simulation — the bridge
	// from the SAT model back into the testbench world (the same vectors
	// convert to a uvm sequence via &uvm.DirectedSequence{Vectors:
	// res.Cex.Vectors()}).
	div, cyc, _ := formal.ReplayCex(m.Source, buggy, m.Top, m.Clock, res.Cex, sim.BackendCompiled)
	fmt.Printf("replayed in simulation: diverged=%v at cycle %d\n", div, cyc)

	// The repair (written differently from the golden — an equivalence,
	// not an identity): now the engine returns a *proof*, not a sample.
	fixed := strings.Replace(buggy,
		"count <= (count == 12'd6) ? 12'd8 : (count + 12'd1);",
		"count <= (count + 12'd2) - 12'd1;", 1)
	repaired, _ := sim.CompileSource(fixed, m.Top, sim.BackendCompiled)
	res, _ = formal.BMCEquiv(golden, repaired, m.Clock, 8)
	fmt.Printf("repaired vs golden, depth 8: equivalent=%v (real CDCL search: %v)\n",
		res.Equivalent, res.Stats.Conflicts() > 0)

	// Output:
	// buggy vs golden, depth 4: equivalent=true
	// buggy vs golden, depth 8: equivalent=false, counterexample at cycle 6 on "count"
	// replayed in simulation: diverged=true at cycle 6
	// repaired vs golden, depth 8: equivalent=true (real CDCL search: true)
}
