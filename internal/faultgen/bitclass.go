package faultgen

// Bit-parallel fault classification. ObserveLanes answers "did the golden
// testbench's stimulus catch this mutant" one scalar lane per seed;
// ClassifyBitParallel asks the wider sampling question — does any of up
// to 64 random stimulus streams observe a divergence, and at which cycle
// — without paying 64 simulations. Golden and mutant are blasted into
// ONE and-inverter graph with shared per-cycle input variables
// (formal.NewCircuitShared), so structural hashing folds everything the
// mutation did not touch into common nodes: a single bit-parallel sweep
// (internal/psim's Machine) evaluates both designs for all lanes at
// once, and the divergence check is a word XOR over the output roots.
// The verdict is a sampled lower bound — a fault can escape random
// stimulus — which is exactly its role: a cheap concrete-witness screen
// in front of the SAT classifier's exhaustive-but-expensive bounded
// verdicts.

import (
	"math/rand"

	"uvllm/internal/formal"
	"uvllm/internal/psim"
	"uvllm/internal/sim"
)

// BitVerdict is the bit-parallel classifier's result.
type BitVerdict struct {
	// Supported is false when the pair is outside the bit-blastable
	// subset (or does not compile); the other fields are then zero and
	// the observation/SAT classifiers own the fault.
	Supported bool
	// Detected reports whether any lane observed golden and mutant
	// diverge on an output; Lane/Cycle/Signal locate the first hit
	// (lowest lane of the earliest post-reset cycle).
	Detected bool
	Lane     int
	Cycle    int
	Signal   string
	// DetectedLanes counts lanes that observed a divergence at any
	// cycle — the fault's visibility to random stimulus, out of Lanes.
	DetectedLanes int
	Lanes         int
	// GateOps is the AND-gate count of the shared golden+mutant
	// machine; with structural sharing it sits well below the sum of
	// two standalone circuits.
	GateOps int
}

// ClassifyBitParallel classifies one benchmark fault against its golden
// module by bit-parallel random simulation: lanes (1..64) independent
// stimulus streams of the given cycle count after a reset preamble.
func ClassifyBitParallel(f *Fault, lanes, cycles int, seed int64) (BitVerdict, error) {
	m := f.Meta()
	if m == nil {
		return BitVerdict{}, nil
	}
	return ClassifyBitParallelSource(f.Golden, f.Source, m.Top, m.Clock, lanes, cycles, seed)
}

// ClassifyBitParallelSource is ClassifyBitParallel over raw sources. Both
// designs see the same stimulus: formal.ResetCycles cycles with the
// conventional reset asserted and every other input zero, then `cycles`
// cycles of per-lane random vectors (lane k draws from seed+k) with the
// reset held deasserted. Supported=false with a nil error means the pair
// is outside the bit-parallel subset.
func ClassifyBitParallelSource(golden, mutant, top, clock string, lanes, cycles int, seed int64) (BitVerdict, error) {
	if lanes < 1 || lanes > 64 {
		lanes = 64
	}
	pg, err := sim.SharedCache().Compile(golden, top, sim.BackendCompiled)
	if err != nil {
		return BitVerdict{}, nil
	}
	pm, err := sim.SharedCache().Compile(mutant, top, sim.BackendCompiled)
	if err != nil {
		return BitVerdict{}, nil
	}
	g := formal.NewAIG()
	cg, err := formal.NewCircuitShared(g, nil, pg, clock, formal.Options{})
	if err != nil {
		return BitVerdict{}, nil
	}
	shared := map[string]formal.Vec{}
	for i, pt := range cg.Free {
		shared[pt.Name] = cg.In[i]
	}
	cm, err := formal.NewCircuitShared(g, shared, pm, clock, formal.Options{})
	if err != nil {
		return BitVerdict{}, nil
	}
	// One machine over the shared graph evaluates both circuits per sweep;
	// build it after both so it covers every node.
	eng := psim.NewMachine(g)
	sg, sm := newPairState(cg, pg), newPairState(cm, pm)
	if sg == nil || sm == nil {
		return BitVerdict{}, nil
	}

	// Output pairs compared each cycle, matched by port name (mutations
	// never change the port list; anything unmatched is simply skipped).
	type outPair struct {
		name   string
		gv, mv formal.Vec
	}
	var outs []outPair
	for _, pt := range pg.Design().Outputs() {
		gi, ok1 := pg.Design().SignalIndex(pt.Name)
		mi, ok2 := pm.Design().SignalIndex(pt.Name)
		if !ok1 || !ok2 {
			continue
		}
		outs = append(outs, outPair{pt.Name, cg.Next[gi], cm.Next[mi]})
	}

	active := ^uint64(0)
	if lanes < 64 {
		active = 1<<uint(lanes) - 1
	}
	rstName, activeLow := sim.FindReset(pg.Design())
	assert, deassert := uint64(1), uint64(0)
	if activeLow {
		assert, deassert = 0, 1
	}
	rngs := make([]*rand.Rand, lanes)
	for k := range rngs {
		rngs[k] = rand.New(rand.NewSource(seed + int64(k)))
	}
	resetCycles := 0
	if rstName != "" {
		resetCycles = formal.ResetCycles
	}

	v := BitVerdict{Supported: true, Lanes: lanes, GateOps: eng.Ops(), Lane: -1, Cycle: -1}
	var caught uint64
	var col [64]uint64
	for cyc := 0; cyc < resetCycles+cycles; cyc++ {
		sg.load(eng)
		sm.load(eng)
		for i, pt := range cg.Free {
			for k := range col {
				col[k] = 0
			}
			switch {
			case pt.Name == rstName:
				w := deassert
				if cyc < resetCycles {
					w = assert
				}
				for k := 0; k < lanes; k++ {
					col[k] = w
				}
			case cyc >= resetCycles:
				mask := bitMask(pt.Width)
				for k := 0; k < lanes; k++ {
					col[k] = rngs[k].Uint64() & mask
				}
			}
			psim.Transpose64(&col)
			for b, l := range cg.In[i] {
				eng.SetVar(l, col[b])
			}
		}
		eng.Sweep()
		sg.commit(eng)
		sm.commit(eng)
		if cyc < resetCycles {
			continue
		}
		for _, op := range outs {
			var diff uint64
			n := len(op.gv)
			if len(op.mv) < n {
				n = len(op.mv)
			}
			for b := 0; b < n; b++ {
				diff |= eng.Word(op.gv[b]) ^ eng.Word(op.mv[b])
			}
			diff &= active &^ caught
			if diff == 0 {
				continue
			}
			if !v.Detected {
				v.Detected = true
				v.Cycle = cyc - resetCycles
				v.Signal = op.name
				for k := 0; k < lanes; k++ {
					if diff>>uint(k)&1 == 1 {
						v.Lane = k
						break
					}
				}
			}
			caught |= diff
		}
	}
	for k := 0; k < lanes; k++ {
		if caught>>uint(k)&1 == 1 {
			v.DetectedLanes++
		}
	}
	return v, nil
}

// bitMask is the low-w-bits mask (full word at 64 and beyond).
func bitMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// pairState is one side's bit-sliced architectural state: the values the
// circuit's previous-state variables take before each sweep.
type pairState struct {
	c     *formal.Circuit
	state [][]uint64
	mems  [][][]uint64
}

// newPairState allocates one side's state, broadcasting the initial arena
// of a fresh instance (initial blocks applied) across all 64 lanes. Nil
// if instantiation fails.
func newPairState(c *formal.Circuit, p *sim.Program) *pairState {
	inst, err := p.NewInstance()
	if err != nil {
		return nil
	}
	s := &pairState{c: c, state: make([][]uint64, len(c.Sigs)), mems: make([][][]uint64, len(c.Sigs))}
	for i, sv := range c.Sigs {
		s.state[i] = make([]uint64, len(c.State[i]))
		broadcastWord(s.state[i], inst.Get(sv.Name))
		if sv.IsMem {
			s.mems[i] = make([][]uint64, sv.Depth)
			for dw := 0; dw < sv.Depth; dw++ {
				s.mems[i][dw] = make([]uint64, len(c.StateMem[i][dw]))
				broadcastWord(s.mems[i][dw], inst.GetMem(sv.Name, dw))
			}
		}
	}
	return s
}

// broadcastWord spreads a concrete value across all 64 lanes, bit-sliced:
// word b is all-ones iff bit b of v is set.
func broadcastWord(dst []uint64, v uint64) {
	for b := range dst {
		dst[b] = -(v >> uint(b) & 1)
	}
}

// load writes the side's previous state into its circuit variables.
func (s *pairState) load(m *psim.Machine) {
	for i := range s.c.Sigs {
		for b, l := range s.c.State[i] {
			m.SetVar(l, s.state[i][b])
		}
		if mem := s.c.StateMem[i]; mem != nil {
			for dw := range mem {
				for b, l := range mem[dw] {
					m.SetVar(l, s.mems[i][dw][b])
				}
			}
		}
	}
}

// commit reads the side's post-cycle roots back into its state.
func (s *pairState) commit(m *psim.Machine) {
	for i := range s.c.Sigs {
		for b, l := range s.c.Next[i] {
			s.state[i][b] = m.Word(l)
		}
		if mem := s.c.NextMem[i]; mem != nil {
			for dw := range mem {
				for b, l := range mem[dw] {
					s.mems[i][dw][b] = m.Word(l)
				}
			}
		}
	}
}
