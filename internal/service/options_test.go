package service

import (
	"strings"
	"testing"

	"uvllm/internal/core"
	"uvllm/internal/exp"
	"uvllm/internal/formal"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// TestOptionsValidate is the table test for the single shared validation
// path: every front-end (both CLIs and the HTTP server) rejects exactly
// these values with messages naming the offending knob.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		o       Options
		wantErr string // "" = valid
	}{
		{"zero value", Options{}, ""},
		{"explicit compiled", Options{Backend: "compiled"}, ""},
		{"event backend", Options{Backend: "event"}, ""},
		{"event-driven alias", Options{Backend: "event-driven"}, ""},
		{"everything on", Options{Backend: "event", Cover: true, Formal: true, FormalDepth: 40, Lanes: 8, Workers: 4}, ""},
		{"unknown backend", Options{Backend: "verilator"}, "backend"},
		{"negative formal depth", Options{FormalDepth: -1}, "formal-depth"},
		{"negative lanes", Options{Lanes: -3}, "lanes"},
		{"negative workers", Options{Workers: -1}, "workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.o.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending knob %q", err, tc.wantErr)
			}
		})
	}
}

// TestOptionsAdapters checks that the thin adapters fill exactly the
// shared knobs into the legacy config structs and leave every
// job-specific field of the base untouched.
func TestOptionsAdapters(t *testing.T) {
	o := Options{Backend: "event", Cover: true, Lanes: 8, Workers: 3}

	co := o.Core(core.Options{Seed: 7, MaxIterations: 5})
	if co.Backend != sim.BackendEventDriven || !co.Cover.Any() {
		t.Fatalf("Core adapter dropped shared knobs: %+v", co)
	}
	if co.Seed != 7 || co.MaxIterations != 5 {
		t.Fatalf("Core adapter clobbered base fields: %+v", co)
	}

	ec := o.Exp(exp.Config{Seed: 9})
	if ec.Backend != sim.BackendEventDriven || ec.Workers != 3 || ec.Seed != 9 {
		t.Fatalf("Exp adapter wrong: %+v", ec)
	}

	uc := o.UVM(uvm.Config{Seed: 11})
	if uc.Backend != sim.BackendEventDriven || !uc.Cover.Any() || uc.Seed != 11 {
		t.Fatalf("UVM adapter wrong: %+v", uc)
	}

	sc := o.Stim(uvm.StimConfig{Cycles: 13})
	if sc.Lanes != 8 || !sc.Cover.Any() || sc.Cycles != 13 {
		t.Fatalf("Stim adapter wrong: %+v", sc)
	}
}

// TestOptionsBMCDepth checks the effective-depth resolution.
func TestOptionsBMCDepth(t *testing.T) {
	if got := (Options{}).BMCDepth(); got != formal.DefaultBMCDepth {
		t.Fatalf("zero depth = %d, want engine default %d", got, formal.DefaultBMCDepth)
	}
	if got := (Options{FormalDepth: 23}).BMCDepth(); got != 23 {
		t.Fatalf("explicit depth = %d, want 23", got)
	}
}

// TestOptionsMerge checks the server-default merging semantics: zero
// knobs inherit, booleans or-combine, explicit values win.
func TestOptionsMerge(t *testing.T) {
	def := Options{Backend: "event", Cover: true, FormalDepth: 16, Lanes: 4, Workers: 2}

	got := Options{}.merge(def)
	if got != def {
		t.Fatalf("zero spec should inherit all defaults: %+v", got)
	}

	got = Options{Backend: "compiled", FormalDepth: 8, Formal: true}.merge(def)
	if got.Backend != "compiled" || got.FormalDepth != 8 {
		t.Fatalf("explicit knobs overridden by defaults: %+v", got)
	}
	if !got.Cover || !got.Formal {
		t.Fatalf("boolean knobs must or-combine: %+v", got)
	}
	if got.Lanes != 4 || got.Workers != 2 {
		t.Fatalf("zero knobs must inherit: %+v", got)
	}
}
