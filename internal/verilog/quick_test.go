package verilog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genExpr builds a random well-formed expression of bounded depth over the
// given identifiers.
func genExpr(r *rand.Rand, depth int, idents []string) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return &Ident{Name: idents[r.Intn(len(idents))]}
		}
		w := []int{0, 1, 4, 8}[r.Intn(4)]
		v := r.Uint64()
		if w > 0 {
			v &= (1 << uint(w)) - 1
			return &Number{Text: numText(w, v), Width: w, Value: v}
		}
		v &= 0xFFFF
		return &Number{Text: numText(0, v), Value: v}
	}
	switch r.Intn(6) {
	case 0:
		ops := []string{"!", "~", "-", "&", "|", "^"}
		return &Unary{Op: ops[r.Intn(len(ops))], X: genExpr(r, depth-1, idents)}
	case 1, 2:
		ops := []string{"+", "-", "*", "/", "&", "|", "^", "==", "!=", "<", ">", "<<", ">>", "&&", "||"}
		return &Binary{Op: ops[r.Intn(len(ops))], X: genExpr(r, depth-1, idents), Y: genExpr(r, depth-1, idents)}
	case 3:
		return &Ternary{Cond: genExpr(r, depth-1, idents), Then: genExpr(r, depth-1, idents), Else: genExpr(r, depth-1, idents)}
	case 4:
		parts := []Expr{genExpr(r, depth-1, idents)}
		for i := r.Intn(3); i > 0; i-- {
			parts = append(parts, genExpr(r, depth-1, idents))
		}
		return &Concat{Parts: parts}
	default:
		return &Index{X: &Ident{Name: idents[r.Intn(len(idents))]}, Index: genExpr(r, depth-1, idents)}
	}
}

func numText(w int, v uint64) string {
	if w == 0 {
		return ExprString(&Number{Width: 0, Value: v, Text: ""})
	}
	return ExprString(&Number{Width: w, Value: v, Text: ""})
}

func init() {
	// Numbers carry their text; synthesize canonical decimal text.
}

// TestQuickExprRoundTrip: printing a random expression and re-parsing it
// yields a tree that prints identically (print-parse-print fixpoint).
func TestQuickExprRoundTrip(t *testing.T) {
	idents := []string{"a", "b", "sel", "count"}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		e := genExpr(r, 3, idents)
		fixNumberText(e)
		s1 := ExprString(e)
		src := "module m(input a, input b, input sel, input count, output w);\nassign w = " + s1 + ";\nendmodule"
		f, errs := Parse(src)
		if len(errs) != 0 {
			t.Fatalf("generated expression does not parse: %q: %v", s1, errs[0])
		}
		ca, ok := f.Modules[0].Items[0].(*ContAssign)
		if !ok {
			t.Fatalf("no assign for %q", s1)
		}
		s2 := ExprString(ca.RHS)
		src2 := "module m(input a, input b, input sel, input count, output w);\nassign w = " + s2 + ";\nendmodule"
		f2, errs2 := Parse(src2)
		if len(errs2) != 0 {
			t.Fatalf("reprint does not parse: %q", s2)
		}
		s3 := ExprString(f2.Modules[0].Items[0].(*ContAssign).RHS)
		if s2 != s3 {
			t.Fatalf("print not a fixpoint:\n%s\n%s", s2, s3)
		}
	}
}

// fixNumberText fills canonical text for synthesized numbers.
func fixNumberText(e Expr) {
	WalkExpr(e, func(x Expr) bool {
		if n, ok := x.(*Number); ok && n.Text == "" {
			if n.Width == 0 {
				n.Text = ExprString(&Number{Text: decText(n.Value)})
			} else {
				n.Text = decWidthText(n.Width, n.Value)
			}
		}
		return true
	})
}

func decText(v uint64) string {
	return fmtUint(v)
}

func decWidthText(w int, v uint64) string {
	return fmtUint(uint64(w)) + "'d" + fmtUint(v)
}

func fmtUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestQuickLexerTotal: the lexer terminates and produces position-monotonic
// tokens for arbitrary byte strings (it must never panic on broken input —
// UVLLM lints deliberately corrupted code).
func TestQuickLexerTotal(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			n := r.Intn(200)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(r.Intn(128))
			}
			vs[0] = reflect.ValueOf(string(b))
		},
	}
	prop := func(s string) bool {
		toks := Lex(s)
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			return false
		}
		lastLine, lastCol := 0, 0
		for _, tk := range toks {
			if tk.Line < lastLine || (tk.Line == lastLine && tk.Col < lastCol) {
				return false
			}
			lastLine, lastCol = tk.Line, tk.Col
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickParserTotal: the parser never panics and always terminates on
// arbitrary keyword soup.
func TestQuickParserTotal(t *testing.T) {
	words := []string{"module", "endmodule", "input", "output", "assign",
		"always", "begin", "end", "if", "else", "case", "endcase", "wire",
		"reg", "(", ")", ";", ",", "[", "]", "=", "<=", "a", "b", "8'hFF",
		"@", "posedge", "{", "}", "?", ":", "+", "1"}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		var b []byte
		for j := r.Intn(60); j > 0; j-- {
			b = append(b, []byte(words[r.Intn(len(words))])...)
			b = append(b, ' ')
		}
		Parse(string(b)) // must not panic or hang
	}
}

// TestQuickNumberLiteralMask: parsed sized literals always fit their width.
func TestQuickNumberLiteralMask(t *testing.T) {
	prop := func(w8 uint8, v uint64) bool {
		w := int(w8%63) + 1
		text := decWidthText(w, v%1000000)
		gw, gv, _, err := ParseNumberLiteral(text)
		if err != nil {
			return false
		}
		if gw != w {
			return false
		}
		return gv <= (uint64(1)<<uint(w))-1 || w == 64
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
