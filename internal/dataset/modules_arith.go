package dataset

func init() {
	register(&Module{
		Name: "accu", Category: Arithmetic, Top: "accu",
		Clock: "clk", HasReset: true, Complexity: 2,
		Spec: `accu is an 8-bit input accumulator. On every rising clock edge
with en high, the 8-bit input d is added into the 16-bit register sum.
An active-low asynchronous reset rst_n clears sum to zero. When en is low
the accumulated value holds.`,
		Source: `module accu(
    input clk,
    input rst_n,
    input en,
    input [7:0] d,
    output reg [15:0] sum
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            sum <= 16'd0;
        end else if (en) begin
            sum <= sum + {8'd0, d};
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "adder_8bit", Category: Arithmetic, Top: "adder_8bit",
		Complexity: 1,
		Spec: `adder_8bit is a combinational 8-bit full adder. It adds the
8-bit operands a and b with the carry-in bit cin, producing the 8-bit
result sum and the carry-out bit cout.`,
		Source: `module adder_8bit(
    input [7:0] a,
    input [7:0] b,
    input cin,
    output [7:0] sum,
    output cout
);
    assign {cout, sum} = a + b + {7'd0, cin};
endmodule
`,
	})

	register(&Module{
		Name: "adder_16bit", Category: Arithmetic, Top: "adder_16bit",
		Complexity: 2,
		Spec: `adder_16bit is a combinational 16-bit ripple adder built from
two adder_8bit slices. It adds a and b with carry-in cin, producing the
16-bit sum and carry-out cout. The low slice's carry-out feeds the high
slice's carry-in.`,
		Source: `module adder_8bit(
    input [7:0] a,
    input [7:0] b,
    input cin,
    output [7:0] sum,
    output cout
);
    assign {cout, sum} = a + b + {7'd0, cin};
endmodule

module adder_16bit(
    input [15:0] a,
    input [15:0] b,
    input cin,
    output [15:0] sum,
    output cout
);
    wire c_mid;
    adder_8bit lo (.a(a[7:0]), .b(b[7:0]), .cin(cin), .sum(sum[7:0]), .cout(c_mid));
    adder_8bit hi (.a(a[15:8]), .b(b[15:8]), .cin(c_mid), .sum(sum[15:8]), .cout(cout));
endmodule
`,
	})

	register(&Module{
		Name: "adder_32bit", Category: Arithmetic, Top: "adder_32bit",
		Complexity: 3,
		Spec: `adder_32bit is a combinational 32-bit ripple adder built
hierarchically from two 16-bit adders, each of which is built from two
8-bit slices. It adds a and b with carry-in cin, producing the 32-bit sum
and carry-out cout.`,
		Source: `module adder_8bit(
    input [7:0] a,
    input [7:0] b,
    input cin,
    output [7:0] sum,
    output cout
);
    assign {cout, sum} = a + b + {7'd0, cin};
endmodule

module adder_16bit(
    input [15:0] a,
    input [15:0] b,
    input cin,
    output [15:0] sum,
    output cout
);
    wire c_mid;
    adder_8bit lo (.a(a[7:0]), .b(b[7:0]), .cin(cin), .sum(sum[7:0]), .cout(c_mid));
    adder_8bit hi (.a(a[15:8]), .b(b[15:8]), .cin(c_mid), .sum(sum[15:8]), .cout(cout));
endmodule

module adder_32bit(
    input [31:0] a,
    input [31:0] b,
    input cin,
    output [31:0] sum,
    output cout
);
    wire c_mid;
    adder_16bit lo (.a(a[15:0]), .b(b[15:0]), .cin(cin), .sum(sum[15:0]), .cout(c_mid));
    adder_16bit hi (.a(a[31:16]), .b(b[31:16]), .cin(c_mid), .sum(sum[31:16]), .cout(cout));
endmodule
`,
	})

	register(&Module{
		Name: "multi_8bit", Category: Arithmetic, Top: "multi_8bit",
		Complexity: 3,
		Spec: `multi_8bit is a combinational 8x8 shift-and-add multiplier.
For each set bit i of operand b, operand a shifted left by i is added into
the 16-bit product p.`,
		Source: `module multi_8bit(
    input [7:0] a,
    input [7:0] b,
    output reg [15:0] p
);
    integer i;
    always @(*) begin
        p = 16'd0;
        for (i = 0; i < 8; i = i + 1) begin
            if (b[i]) begin
                p = p + ({8'd0, a} << i);
            end
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "multi_16bit", Category: Arithmetic, Top: "multi_16bit",
		Clock: "clk", HasReset: true, Complexity: 3,
		Spec: `multi_16bit is a registered 16x16 multiplier. On a rising
clock edge with en high it captures p = a * b (32 bits) and raises done
for that cycle; with en low, done is low and p holds its value. rst_n is
an active-low asynchronous reset clearing p and done.`,
		Source: `module multi_16bit(
    input clk,
    input rst_n,
    input en,
    input [15:0] a,
    input [15:0] b,
    output reg [31:0] p,
    output reg done
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            p <= 32'd0;
            done <= 1'b0;
        end else if (en) begin
            p <= a * b;
            done <= 1'b1;
        end else begin
            done <= 1'b0;
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "div_8bit", Category: Arithmetic, Top: "div_8bit",
		Complexity: 3,
		Spec: `div_8bit is a combinational 8-bit unsigned divider producing
quotient q = a / b and remainder r = a % b. When the divisor b is zero,
the divide-by-zero flag dbz is raised and both q and r are forced to 0.`,
		Source: `module div_8bit(
    input [7:0] a,
    input [7:0] b,
    output [7:0] q,
    output [7:0] r,
    output dbz
);
    assign dbz = (b == 8'd0) ? 1'b1 : 1'b0;
    assign q = dbz ? 8'd0 : a / b;
    assign r = dbz ? 8'd0 : a % b;
endmodule
`,
	})

	register(&Module{
		Name: "alu", Category: Arithmetic, Top: "alu",
		Complexity: 3,
		Spec: `alu is a combinational 8-bit arithmetic logic unit. The 3-bit
opcode op selects: 0 add, 1 subtract, 2 bitwise and, 3 bitwise or,
4 bitwise xor, 5 set-less-than (y = 1 if a < b else 0), 6 logical shift
left by b[2:0], 7 logical shift right by b[2:0]. The zero flag is high
when the result y is zero.`,
		Source: `module alu(
    input [7:0] a,
    input [7:0] b,
    input [2:0] op,
    output reg [7:0] y,
    output zero
);
    localparam OP_ADD = 3'd0;
    localparam OP_SUB = 3'd1;
    localparam OP_AND = 3'd2;
    localparam OP_OR = 3'd3;
    localparam OP_XOR = 3'd4;
    localparam OP_SLT = 3'd5;
    localparam OP_SHL = 3'd6;
    localparam OP_SHR = 3'd7;
    always @(*) begin
        case (op)
            OP_ADD: y = a + b;
            OP_SUB: y = a - b;
            OP_AND: y = a & b;
            OP_OR: y = a | b;
            OP_XOR: y = a ^ b;
            OP_SLT: y = (a < b) ? 8'd1 : 8'd0;
            OP_SHL: y = a << b[2:0];
            OP_SHR: y = a >> b[2:0];
            default: y = 8'd0;
        endcase
    end
    assign zero = (y == 8'd0) ? 1'b1 : 1'b0;
endmodule
`,
	})
}
