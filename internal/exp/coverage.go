package exp

import (
	"fmt"
	"strings"

	"uvllm/internal/dataset"
	"uvllm/internal/uvm"
)

// CoverageRow compares random and coverage-directed stimulus on one
// benchmark module at an equal cycle budget.
type CoverageRow struct {
	Module      string
	Points      int     // structural point universe size
	RandomPct   float64 // structural coverage of uniform random stimulus
	DirectedPct float64 // structural coverage of directed stimulus
	CorpusLen   int     // coverage-raising snippets the directed run kept
}

// DefaultCoverageBudget is the per-module cycle budget of the
// random-vs-directed study. It is deliberately small: both generators
// saturate the easy structure of the benchmark modules within a few
// hundred cycles, and the study measures how fast each climbs, not where
// both plateau.
const DefaultCoverageBudget = 64

// CoverageStudy runs the random-vs-directed structural coverage
// comparison over the 27 golden benchmark modules on the session's
// backend, compiling through the session cache. cycles <= 0 uses
// DefaultCoverageBudget.
func (s *Session) CoverageStudy(cycles int) ([]CoverageRow, error) {
	if cycles <= 0 {
		cycles = DefaultCoverageBudget
	}
	var rows []CoverageRow
	for _, m := range dataset.All() {
		p, err := s.Cache.Compile(m.Source, m.Top, s.Backend)
		if err != nil {
			return rows, fmt.Errorf("exp: coverage: %s: %w", m.Name, err)
		}
		cfg := uvm.StimConfig{Clock: m.Clock, Cycles: cycles, Seed: 1}
		mr, err := uvm.CoverageRandom(p, cfg)
		if err != nil {
			return rows, fmt.Errorf("exp: coverage: %s (random): %w", m.Name, err)
		}
		md, corpus, err := uvm.CoverageDirected(p, cfg)
		if err != nil {
			return rows, fmt.Errorf("exp: coverage: %s (directed): %w", m.Name, err)
		}
		rows = append(rows, CoverageRow{
			Module:      m.Name,
			Points:      md.Len(),
			RandomPct:   mr.Percent(),
			DirectedPct: md.Percent(),
			CorpusLen:   len(corpus.Entries),
		})
	}
	return rows, nil
}

// FormatCoverage renders the study as the EXPERIMENTS.md table.
func FormatCoverage(rows []CoverageRow, cycles int) string {
	if cycles <= 0 {
		cycles = DefaultCoverageBudget
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Structural coverage, random vs directed stimulus (%d cycles each)\n", cycles)
	fmt.Fprintf(&b, "%-18s %7s %9s %9s %7s %7s\n", "module", "points", "random%", "direct%", "delta", "corpus")
	var sumR, sumD float64
	wins := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %7d %9.1f %9.1f %+7.1f %7d\n",
			r.Module, r.Points, r.RandomPct, r.DirectedPct, r.DirectedPct-r.RandomPct, r.CorpusLen)
		sumR += r.RandomPct
		sumD += r.DirectedPct
		if r.DirectedPct > r.RandomPct {
			wins++
		}
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-18s %7s %9.1f %9.1f %+7.1f (directed higher on %d/%d)\n",
			"mean", "", sumR/float64(len(rows)), sumD/float64(len(rows)),
			(sumD-sumR)/float64(len(rows)), wins, len(rows))
	}
	return b.String()
}
