package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// testServer builds a Server whose runner uses test-local services (no
// shared process state) and, when stub is non-nil, the stubbed executor.
func testServer(t *testing.T, cfg RunnerConfig, stub *stubExec) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Services.Cache == nil {
		cfg.Services = testServices()
	}
	s := NewServer(cfg)
	if stub != nil {
		s.runner.exec = stub.exec
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (*http.Response, submitResponse) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var sub submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, sub
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func pollTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var view JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &view); code != http.StatusOK {
			t.Fatalf("status for %s: HTTP %d", id, code)
		}
		if view.Status.Terminal() {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobView{}
}

// TestServerSubmitStatusResult drives one real verification job through
// the HTTP API and checks the verdict matches a direct Execute of the
// same spec — the CLI/server parity the CI smoke job relies on.
func TestServerSubmitStatusResult(t *testing.T) {
	_, ts := testServer(t, RunnerConfig{Workers: 2, QueueLimit: 8}, nil)
	spec := JobSpec{Module: "adder_8bit", Inject: "FuncLogic"}

	resp, sub := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	if sub.ID == "" || sub.Status != StatusQueued {
		t.Fatalf("submit response %+v", sub)
	}
	view := pollTerminal(t, ts, sub.ID)
	if view.Status != StatusDone || view.Result == nil || !view.Result.Success {
		t.Fatalf("job ended %s with result %+v", view.Status, view.Result)
	}

	want := Execute(spec, testServices(), nil)
	gotJSON, _ := json.Marshal(view.Result)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("server result diverges from direct Execute:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestServerRejections covers the 4xx surface: bad JSON, a spec the
// shared validation path rejects, an oversized body, and unknown job
// IDs.
func TestServerRejections(t *testing.T) {
	_, ts := testServer(t, RunnerConfig{Workers: 1, QueueLimit: 2}, newStubExec(4, false))

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: HTTP %d, want 400", resp.StatusCode)
	}

	resp, _ = postJob(t, ts, JobSpec{Module: "adder_8bit", Options: Options{Backend: "spice"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid options: HTTP %d, want 400", resp.StatusCode)
	}

	huge := JobSpec{Module: "adder_8bit", Source: strings.Repeat("x", maxRequestBody+1)}
	resp, _ = postJob(t, ts, huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/job-999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999/events", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job stream: HTTP %d, want 404", code)
	}
}

// TestServerBackpressure checks the 429 + Retry-After contract and that
// the server accepts submissions again after the queue drains.
func TestServerBackpressure(t *testing.T) {
	stub := newStubExec(8, true)
	_, ts := testServer(t, RunnerConfig{Workers: 1, QueueLimit: 1}, stub)

	if resp, _ := postJob(t, ts, testSpec("a")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	<-stub.started
	if resp, _ := postJob(t, ts, testSpec("a")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: HTTP %d", resp.StatusCode)
	}

	resp, _ := postJob(t, ts, testSpec("a"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(stub.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, sub := postJob(t, ts, testSpec("a"))
		if resp.StatusCode == http.StatusAccepted {
			pollTerminal(t, ts, sub.ID)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server kept rejecting after queue drained: HTTP %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerDrain checks the graceful shutdown sequence over HTTP:
// in-flight jobs finish, queued jobs end drained, new submissions get
// 503, and /healthz flips to draining.
func TestServerDrain(t *testing.T) {
	stub := newStubExec(8, true)
	s, ts := testServer(t, RunnerConfig{Workers: 1, QueueLimit: 8}, stub)

	_, inflight := postJob(t, ts, testSpec("a"))
	<-stub.started
	_, queued := postJob(t, ts, testSpec("a"))

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Queued job must land in drained; health must report draining; new
	// submissions must get 503. (Drain flips the flag before it waits.)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var view JobView
		getJSON(t, ts.URL+"/v1/jobs/"+queued.ID, &view)
		if view.Status == StatusDrained {
			if view.Result != nil {
				t.Fatalf("drained job has a result: %+v", view.Result)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued job stuck in %s, want drained", view.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var health healthBody
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("healthz during drain: HTTP %d %+v", code, health)
	}
	if resp, _ := postJob(t, ts, testSpec("b")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}

	close(stub.release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	view := pollTerminal(t, ts, inflight.ID)
	if view.Status != StatusDone {
		t.Fatalf("in-flight job ended %s, want done", view.Status)
	}
}

// TestServerEventsStream reads the SSE stream of a real job end to end:
// well-formed frames, dense sequence numbers, the queued → started →
// iteration… → terminal shape, and stream close after the terminal
// event.
func TestServerEventsStream(t *testing.T) {
	_, ts := testServer(t, RunnerConfig{Workers: 1, QueueLimit: 4}, nil)
	_, sub := postJob(t, ts, JobSpec{Module: "adder_8bit", Inject: "FuncLogic", Options: Options{Formal: true}})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	// The server closes the stream after the terminal event; the scanner
	// simply runs out of input.
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(evs) < 4 {
		t.Fatalf("only %d events streamed: %v", len(evs), kinds(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d; replay must be dense from 0", i, ev.Seq)
		}
	}
	if evs[0].Kind != EventQueued || evs[1].Kind != EventStarted {
		t.Fatalf("stream starts %v, want queued, started", kinds(evs[:2]))
	}
	last := evs[len(evs)-1]
	if last.Kind != EventTerminal || last.Status != StatusDone {
		t.Fatalf("stream ends %+v, want terminal/done", last)
	}
	sawIteration, sawFormal := false, false
	for _, ev := range evs {
		sawIteration = sawIteration || ev.Kind == EventIteration
		sawFormal = sawFormal || ev.Kind == EventFormal
	}
	if !sawIteration || !sawFormal {
		t.Fatalf("stream %v missing iteration or formal events", kinds(evs))
	}
}

// TestServerModulesAndMetrics checks the catalog endpoint and that a
// completed job surfaces in the metrics scrape: status counts, stage
// percentiles, endpoint accounting and non-zero cache counters.
func TestServerModulesAndMetrics(t *testing.T) {
	_, ts := testServer(t, RunnerConfig{Workers: 1, QueueLimit: 4}, nil)

	var mods []moduleView
	if code := getJSON(t, ts.URL+"/v1/modules", &mods); code != http.StatusOK {
		t.Fatalf("modules: HTTP %d", code)
	}
	if len(mods) < 20 {
		t.Fatalf("catalog lists %d modules, want the full benchmark", len(mods))
	}

	_, sub := postJob(t, ts, JobSpec{Module: "adder_8bit", Inject: "FuncLogic"})
	pollTerminal(t, ts, sub.ID)

	var m MetricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if m.Workers != 1 || m.QueueLimit != 4 || m.Draining {
		t.Fatalf("metrics shape wrong: %+v", m)
	}
	if m.JobsByStatus[StatusDone] != 1 {
		t.Fatalf("jobs_by_status = %v, want one done", m.JobsByStatus)
	}
	if m.Stages["run"].Count != 1 || m.Stages["run"].P50 <= 0 {
		t.Fatalf("run stage summary = %+v", m.Stages["run"])
	}
	if m.Endpoints["POST /v1/jobs"].Latency.Count == 0 {
		t.Fatalf("endpoint accounting missing: %v", m.Endpoints)
	}
	if m.Caches.Compile.Hits+m.Caches.Compile.Misses == 0 {
		t.Fatal("compile cache counters untouched after a verification")
	}
	if m.Caches.TraceMemoHitRate < 0 || m.Caches.TraceMemoHitRate > 100 {
		t.Fatalf("trace memo hit rate %f out of range", m.Caches.TraceMemoHitRate)
	}
}

// testServices returns fresh, test-local simulation state so server
// tests cannot observe (or pollute) the process-wide shared caches.
func testServices() Services {
	return Services{Cache: sim.NewCache(), Memo: uvm.NewTraceMemo()}
}

// TestServerCancel drives the DELETE /v1/jobs/{id} surface: a queued
// job reports cancelled with 202, re-cancel is an idempotent 202, an
// unknown ID is 404, and the cancellation shows up in both metrics
// surfaces (JSON status counts and the Prometheus counter).
func TestServerCancel(t *testing.T) {
	stub := newStubExec(8, true)
	s, ts := testServer(t, RunnerConfig{Workers: 1, QueueLimit: 8}, stub)

	_, blockSub := postJob(t, ts, testSpec("a"))
	<-stub.started
	_, sub := postJob(t, ts, testSpec("a"))

	del := func(id string) (int, JobView) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE: %v", err)
		}
		defer resp.Body.Close()
		var view JobView
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				t.Fatalf("decode cancel response: %v", err)
			}
		}
		return resp.StatusCode, view
	}

	code, view := del(sub.ID)
	if code != http.StatusAccepted || view.Status != StatusCancelled {
		t.Fatalf("cancel queued job: HTTP %d, status %s", code, view.Status)
	}
	if code, view = del(sub.ID); code != http.StatusAccepted || view.Status != StatusCancelled {
		t.Fatalf("re-cancel: HTTP %d, status %s; want idempotent 202", code, view.Status)
	}
	if code, _ = del("job-999"); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job: HTTP %d, want 404", code)
	}

	close(stub.release)
	pollTerminal(t, ts, blockSub.ID)

	var m MetricsSnapshot
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.JobsByStatus[StatusCancelled] != 1 {
		t.Fatalf("jobs_by_status = %v, want one cancelled", m.JobsByStatus)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 2",
		"jobs_cancelled_total 1",
		`jobs_by_status_total{status="cancelled"} 1`,
		`cache_hits{cache="compile"}`,
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="run",le="+Inf"}`,
		`http_request_seconds_count{endpoint="POST /v1/jobs"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
	_ = s
}
