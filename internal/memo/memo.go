// Package memo provides the one bounded, single-flight, counter-bearing
// memo table behind every content-addressed cache in the pipeline: the
// compile cache (sim.Cache), the golden-trace memo (uvm.TraceMemo) and
// the data-flow-graph memo (locate.DFGFor). Keeping the eviction,
// single-flight and statistics semantics in one place means a fix to any
// of them applies to all three.
package memo

import "sync"

// M is a bounded single-flight memo: Do computes each key's value at
// most once (concurrent callers on one key share the result, including
// errors), counts hits and misses, and evicts the oldest half of the
// entries when the limit is reached. Values are treated as immutable by
// all readers. M is safe for concurrent use; the zero value is not
// usable — construct with New.
type M[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]
	order   []K // insertion order, for bounded eviction
	limit   int

	hits      int64
	misses    int64
	evictions int64
}

type entry[V any] struct {
	once sync.Once
	val  V
	err  error
	hits int64 // guarded by M.mu
}

// New returns an empty memo holding at most limit entries (limit must be
// positive).
func New[K comparable, V any](limit int) *M[K, V] {
	if limit <= 0 {
		panic("memo: non-positive limit")
	}
	return &M[K, V]{entries: map[K]*entry[V]{}, limit: limit}
}

// Do returns the memoized value for k, running compute on first use.
// Errors are memoized too: deterministic failures are part of a key's
// identity and replays share them.
func (m *M[K, V]) Do(k K, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	e, ok := m.entries[k]
	if ok {
		m.hits++
		e.hits++
	} else {
		m.misses++
		if len(m.entries) >= m.limit {
			m.evictLocked()
		}
		e = &entry[V]{}
		m.entries[k] = e
		m.order = append(m.order, k)
	}
	m.mu.Unlock()
	e.once.Do(func() {
		e.val, e.err = compute()
	})
	return e.val, e.err
}

// evictLocked drops the oldest half of the entries. Called with mu held.
// An in-flight computation on an evicted entry still completes for its
// callers; the result just stops being cached.
func (m *M[K, V]) evictLocked() {
	n := len(m.order) / 2
	if n == 0 {
		n = 1
	}
	for _, k := range m.order[:n] {
		if _, ok := m.entries[k]; ok {
			delete(m.entries, k)
			m.evictions++
		}
	}
	m.order = append(m.order[:0], m.order[n:]...)
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Stats returns the memo counters.
func (m *M[K, V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Hits: m.hits, Misses: m.misses, Evictions: m.evictions, Entries: len(m.entries)}
}

// EntryHits reports whether k is resident and how many hits it has
// served.
func (m *M[K, V]) EntryHits(k K) (hits int64, resident bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[k]; ok {
		return e.hits, true
	}
	return 0, false
}
