package service

import (
	"strings"
	"testing"
)

// TestExecuteInduction pins the induction knob end to end through the
// shared Execute path: a golden-source job with Induction on (Formal
// off — induction implies the proof) must come back "proved" with an
// all-time detail, and the same job through plain -formal must stay a
// bounded proof, so the two modes are observably different at the
// service surface while keeping the same three status strings.
func TestExecuteInduction(t *testing.T) {
	svc := DefaultServices()
	spec := JobSpec{Module: "counter_12bit", Options: Options{Induction: true}}
	res := Execute(spec, svc, nil)
	if res.Error != "" || !res.Success {
		t.Fatalf("golden job failed: success=%v err=%q", res.Success, res.Error)
	}
	if res.Formal != "proved" {
		t.Fatalf("induction proof: formal=%q detail=%q", res.Formal, res.FormalDetail)
	}
	if !strings.Contains(res.FormalDetail, "for all time") {
		t.Fatalf("induction detail does not claim an unbounded proof: %q", res.FormalDetail)
	}

	spec.Options = Options{Formal: true}
	res = Execute(spec, svc, nil)
	if res.Formal != "proved" || strings.Contains(res.FormalDetail, "for all time") {
		t.Fatalf("plain BMC must stay bounded: formal=%q detail=%q", res.Formal, res.FormalDetail)
	}
}

// TestOptionsMergeInduction checks the server-default or-semantics of
// the induction knob: a server started with -induction proves every job
// by induction, and a job can still opt in on its own.
func TestOptionsMergeInduction(t *testing.T) {
	if got := (Options{}).merge(Options{Induction: true}); !got.Induction {
		t.Fatal("server default -induction did not propagate to the job")
	}
	if got := (Options{Induction: true}).merge(Options{}); !got.Induction {
		t.Fatal("job-level induction lost in merge")
	}
}
