package sim

import "uvllm/internal/verilog"

// This file is the read-only "elaborated netlist view" of a Design: the
// exported window through which the formal engine (internal/formal) walks
// the same signal table, process list and per-instance scopes the two
// simulation backends execute. The view deliberately exposes the elaborated
// form — after parameter evaluation, hierarchy flattening and port-
// connection synthesis — so a consumer that mirrors the simulator's
// scheduling semantics over it (phase by phase, process by process) is
// bit-blasting exactly the design the simulator runs, not a re-derivation
// of it.

// ProcKind classifies an elaborated process for view consumers.
type ProcKind int

// Process kinds, mirroring the scheduler's classification.
const (
	// ProcComb is a continuous assignment, synthesized port connection or
	// level-sensitive always block.
	ProcComb ProcKind = iota
	// ProcSeq is an edge-triggered always block.
	ProcSeq
	// ProcInit is an initial block (runs once at instance creation).
	ProcInit
)

// String implements fmt.Stringer.
func (k ProcKind) String() string {
	switch k {
	case ProcComb:
		return "comb"
	case ProcSeq:
		return "seq"
	case ProcInit:
		return "initial"
	}
	return "proc?"
}

// SignalView describes one elaborated signal (net, variable or memory).
type SignalView struct {
	Index int    // position in the signal arena
	Name  string // hierarchical name, e.g. "u1.sum"
	Width int    // vector width in bits (word width for memories)
	IsMem bool   // true for memories (reg [..] m [0:D-1])
	Depth int    // word count for memories, 0 otherwise
}

// EdgeView is one edge-trigger of a sequential process.
type EdgeView struct {
	Sig int  // arena index of the trigger signal
	Pos bool // true for posedge, false for negedge
}

// ScopeView resolves identifiers of one module instance to arena indices
// and parameter values, exactly as the interpreter and compiler do.
type ScopeView struct {
	sc *scope
}

// Lookup resolves a signal name in this scope to its arena index.
func (v ScopeView) Lookup(name string) (int, bool) {
	if v.sc == nil {
		return 0, false
	}
	idx, ok := v.sc.names[name]
	return idx, ok
}

// Param resolves a parameter name in this scope to its elaborated value.
func (v ScopeView) Param(name string) (int64, bool) {
	if v.sc == nil {
		return 0, false
	}
	val, ok := v.sc.env[name]
	return val, ok
}

// Params returns the scope's parameter environment for constant
// evaluation (verilog.EvalConst). The returned map is shared with the
// simulator and must not be modified.
func (v ScopeView) Params() verilog.ConstEnv {
	if v.sc == nil {
		return nil
	}
	return v.sc.env
}

// ProcView describes one elaborated process. Exactly one of Body or
// ConnRHS is non-nil: always/initial bodies carry Body (resolved through
// Scope), synthesized connection assignments carry ConnLHS/ConnRHS with
// their own scopes (a port connection straddles two instances).
type ProcView struct {
	Index int
	Kind  ProcKind

	Body  verilog.Stmt
	Scope ScopeView

	ConnLHS      verilog.Expr
	ConnLHSScope ScopeView
	ConnRHS      verilog.Expr
	ConnRHSScope ScopeView

	// Edges are the edge triggers of a ProcSeq process (and the explicit
	// level-sensitivity list of a non-star combinational block, with
	// Pos=false).
	Edges []EdgeView
}

// NumSignals returns the arena size.
func (d *Design) NumSignals() int { return len(d.sigs) }

// Signal returns the view of one signal by arena index.
func (d *Design) Signal(i int) SignalView {
	s := d.sigs[i]
	return SignalView{Index: i, Name: s.name, Width: s.width, IsMem: s.isMem, Depth: s.depth}
}

// SignalIndex resolves a hierarchical signal name to its arena index.
func (d *Design) SignalIndex(name string) (int, bool) {
	idx, ok := d.byName[name]
	return idx, ok
}

// NumProcs returns the number of elaborated processes.
func (d *Design) NumProcs() int { return len(d.procs) }

// Proc returns the view of one process by index.
func (d *Design) Proc(i int) ProcView {
	p := d.procs[i]
	v := ProcView{
		Index:        p.idx,
		Body:         p.body,
		Scope:        ScopeView{sc: p.sc},
		ConnLHS:      p.connLHS,
		ConnLHSScope: ScopeView{sc: p.connLHSsc},
		ConnRHS:      p.connRHS,
		ConnRHSScope: ScopeView{sc: p.connRHSsc},
	}
	switch p.kind {
	case procComb:
		v.Kind = ProcComb
	case procSeq:
		v.Kind = ProcSeq
	case procInit:
		v.Kind = ProcInit
	}
	for _, ed := range p.edges {
		v.Edges = append(v.Edges, EdgeView{Sig: ed.sig, Pos: ed.pos})
	}
	return v
}

// EdgeProcsOf returns, in trigger order, the indices of the sequential
// processes sensitive to the given edge of signal sig — the exact order
// the event scheduler enqueues them when the signal toggles, which is the
// order a cycle-accurate symbolic model must execute them in.
func (d *Design) EdgeProcsOf(sig int, pos bool) []int {
	var out []int
	for _, ew := range d.edgeOf[sig] {
		if ew.pos == pos {
			out = append(out, ew.proc)
		}
	}
	return out
}

// CombOrder returns the topological evaluation order of the combinational
// processes when the program is cleanly levelized (one pass over this
// order reaches the combinational fixpoint), or nil on the event-driven
// backend and for designs that fell back to event scheduling.
func (p *Program) CombOrder() []int {
	if p.code == nil || !p.levelized {
		return nil
	}
	return append([]int(nil), p.code.order...)
}
