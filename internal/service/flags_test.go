package service

import (
	"flag"
	"strings"
	"testing"
)

// TestBindMask checks that each selector registers exactly its canonical
// flags, so a command binding a subset neither gains surprise flags nor
// loses the ones it historically had.
func TestBindMask(t *testing.T) {
	cases := []struct {
		name string
		mask FlagMask
		want []string
	}{
		{"backend only", FlagBackend, []string{"backend"}},
		{"formal set", FlagFormal, []string{"formal", "formal-depth", "induction"}},
		{"lanes only", FlagLanes, []string{"lanes"}},
		{"cli set", FlagBackend | FlagCover | FlagFormal, []string{"backend", "cover", "formal", "formal-depth", "induction"}},
		{"all", FlagAll, []string{"backend", "cover", "formal", "formal-depth", "induction", "lanes", "workers"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			Bind(fs, tc.mask)
			var got []string
			fs.VisitAll(func(f *flag.Flag) { got = append(got, f.Name) })
			if len(got) != len(tc.want) {
				t.Fatalf("registered %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("registered %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestFlagsOptions checks the parse-then-validate round trip: canonical
// defaults, explicit values, and rejection with the offending flag named.
func TestFlagsOptions(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    Options
		wantErr string
	}{
		{"defaults", nil, Options{Backend: "compiled"}, ""},
		{"full set", []string{"-backend=event", "-cover", "-formal", "-induction", "-formal-depth=32", "-lanes=8", "-workers=4"},
			Options{Backend: "event", Cover: true, Formal: true, Induction: true, FormalDepth: 32, Lanes: 8, Workers: 4}, ""},
		{"bad backend", []string{"-backend=ncsim"}, Options{}, "backend"},
		{"bad depth", []string{"-formal-depth=-2"}, Options{}, "formal-depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			f := Bind(fs, FlagAll)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse: %v", err)
			}
			got, err := f.Options()
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("valid flags rejected: %v", err)
			}
			if got != tc.want {
				t.Fatalf("Options = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestUnboundKnobsZero checks that knobs outside the mask resolve to the
// usable zero value (compiled backend via the unparsed default).
func TestUnboundKnobsZero(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Bind(fs, FlagLanes)
	if err := fs.Parse([]string{"-lanes=2"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	o, err := f.Options()
	if err != nil {
		t.Fatalf("Options: %v", err)
	}
	if o.Lanes != 2 || o.Cover || o.Formal || o.Workers != 0 {
		t.Fatalf("unbound knobs leaked values: %+v", o)
	}
	if o.SimBackend().String() != "compiled" {
		t.Fatalf("unbound backend should default to compiled, got %s", o.SimBackend())
	}
}
