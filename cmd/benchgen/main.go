// Command benchgen materializes the 331-instance error dataset (paper
// Sec. III-E) to a directory tree:
//
//	out/<module>/<class>-<variant>/dut.v      the faulty design
//	out/<module>/<class>-<variant>/golden.v   the verified design
//	out/<module>/<class>-<variant>/meta.txt   class, category, description
//	out/index.tsv                             one line per instance
//
// Run with -stats to print the composition without writing files.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
)

func main() {
	var (
		out   = flag.String("out", "benchmark_out", "output directory")
		stats = flag.Bool("stats", false, "print composition statistics only")
	)
	flag.Parse()

	faults := faultgen.Benchmark()
	if *stats {
		printStats(faults)
		return
	}

	// Create the output root up front so every later write (including an
	// index for an empty benchmark) has a directory to land in.
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// The index streams through a bufio.Writer, which latches the first
	// write error; the checked Flush/Close below turn any failure into a
	// non-zero exit instead of a silently truncated index.tsv.
	idxFile, err := os.Create(filepath.Join(*out, "index.tsv"))
	if err != nil {
		fatal(err)
	}
	index := bufio.NewWriter(idxFile)
	fmt.Fprintf(index, "id\tmodule\tcategory\tclass\tkind\tdescription\n")
	for _, f := range faults {
		m := f.Meta()
		dir := filepath.Join(*out, f.Module, fmt.Sprintf("%s-%d", f.Class, f.Variant))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		write(filepath.Join(dir, "dut.v"), f.Source)
		write(filepath.Join(dir, "golden.v"), f.Golden)
		kind := "functional"
		if f.Class.IsSyntax() {
			kind = "syntax"
		}
		meta := fmt.Sprintf("id: %s\nmodule: %s\ncategory: %s\nclass: %s\nkind: %s\ninjected: %s\nspec: |\n  %s\n",
			f.ID, f.Module, m.Category, f.Class, kind,
			f.Descr, strings.ReplaceAll(strings.TrimSpace(m.Spec), "\n", "\n  "))
		write(filepath.Join(dir, "meta.txt"), meta)
		fmt.Fprintf(index, "%s\t%s\t%s\t%s\t%s\t%s\n",
			f.ID, f.Module, m.Category, f.Class, kind, f.Descr)
	}
	if err := index.Flush(); err != nil {
		fatal(err)
	}
	if err := idxFile.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("benchgen: wrote %d instances under %s\n", len(faults), *out)
}

func printStats(faults []*faultgen.Fault) {
	byClass := map[faultgen.Class]int{}
	byCat := map[dataset.Category]int{}
	syn, fn := 0, 0
	for _, f := range faults {
		byClass[f.Class]++
		byCat[f.Meta().Category]++
		if f.Class.IsSyntax() {
			syn++
		} else {
			fn++
		}
	}
	fmt.Printf("total: %d instances (%d syntax, %d functional)\n", len(faults), syn, fn)
	fmt.Println("by class:")
	for _, c := range faultgen.Classes() {
		fmt.Printf("  %-22s %d\n", c, byClass[c])
	}
	fmt.Println("by category:")
	for _, c := range dataset.Categories() {
		fmt.Printf("  %-16s %d\n", c, byCat[c])
	}
}

func write(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
