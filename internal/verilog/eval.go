package verilog

import "fmt"

// ConstEnv maps parameter names to values for constant evaluation.
type ConstEnv map[string]int64

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// EvalConst evaluates a compile-time constant expression (parameter values,
// range bounds). It returns an error for anything not constant.
func EvalConst(e Expr, env ConstEnv) (int64, error) {
	switch v := e.(type) {
	case *Number:
		return int64(v.Value), nil
	case *Ident:
		if val, ok := env[v.Name]; ok {
			return val, nil
		}
		return 0, fmt.Errorf("verilog: %q is not a constant (line %d)", v.Name, v.Line)
	case *Unary:
		x, err := EvalConst(v.X, env)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -x, nil
		case "+":
			return x, nil
		case "~":
			return ^x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("verilog: unary %q not constant-foldable (line %d)", v.Op, v.Line)
	case *Binary:
		x, err := EvalConst(v.X, env)
		if err != nil {
			return 0, err
		}
		y, err := EvalConst(v.Y, env)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, fmt.Errorf("verilog: constant division by zero (line %d)", v.Line)
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, fmt.Errorf("verilog: constant modulo by zero (line %d)", v.Line)
			}
			return x % y, nil
		case "<<":
			return x << uint(y&63), nil
		case ">>":
			return x >> uint(y&63), nil
		case "&":
			return x & y, nil
		case "|":
			return x | y, nil
		case "^":
			return x ^ y, nil
		case "==":
			return b2i(x == y), nil
		case "!=":
			return b2i(x != y), nil
		case "<":
			return b2i(x < y), nil
		case ">":
			return b2i(x > y), nil
		case "<=":
			return b2i(x <= y), nil
		case ">=":
			return b2i(x >= y), nil
		case "&&":
			return b2i(x != 0 && y != 0), nil
		case "||":
			return b2i(x != 0 || y != 0), nil
		}
		return 0, fmt.Errorf("verilog: binary %q not constant-foldable (line %d)", v.Op, v.Line)
	case *Ternary:
		c, err := EvalConst(v.Cond, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return EvalConst(v.Then, env)
		}
		return EvalConst(v.Else, env)
	}
	return 0, fmt.Errorf("verilog: expression is not constant")
}

// RangeWidth computes the bit width of a [MSB:LSB] range under env.
// A nil range is width 1.
func RangeWidth(r *Range, env ConstEnv) (int, error) {
	if r == nil {
		return 1, nil
	}
	msb, err := EvalConst(r.MSB, env)
	if err != nil {
		return 0, err
	}
	lsb, err := EvalConst(r.LSB, env)
	if err != nil {
		return 0, err
	}
	w := msb - lsb
	if w < 0 {
		w = -w
	}
	w++
	if w > 64 {
		return 0, fmt.Errorf("verilog: range width %d exceeds 64-bit simulator limit", w)
	}
	return int(w), nil
}

// WalkExpr calls fn for e and every sub-expression, pre-order. fn returning
// false prunes the subtree.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch v := e.(type) {
	case *Unary:
		WalkExpr(v.X, fn)
	case *Binary:
		WalkExpr(v.X, fn)
		WalkExpr(v.Y, fn)
	case *Ternary:
		WalkExpr(v.Cond, fn)
		WalkExpr(v.Then, fn)
		WalkExpr(v.Else, fn)
	case *Index:
		WalkExpr(v.X, fn)
		WalkExpr(v.Index, fn)
	case *PartSelect:
		WalkExpr(v.X, fn)
		WalkExpr(v.MSB, fn)
		WalkExpr(v.LSB, fn)
	case *Concat:
		for _, p := range v.Parts {
			WalkExpr(p, fn)
		}
	case *Repl:
		WalkExpr(v.Count, fn)
		WalkExpr(v.Value, fn)
	}
}

// WalkStmt calls fn for s and every sub-statement, pre-order. fn returning
// false prunes the subtree.
func WalkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch v := s.(type) {
	case *Block:
		for _, st := range v.Stmts {
			WalkStmt(st, fn)
		}
	case *If:
		WalkStmt(v.Then, fn)
		WalkStmt(v.Else, fn)
	case *Case:
		for _, it := range v.Items {
			WalkStmt(it.Body, fn)
		}
	case *For:
		WalkStmt(v.Body, fn)
	}
}

// ExprIdents collects the distinct identifier names referenced by e, in
// first-appearance order.
func ExprIdents(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	WalkExpr(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			names = append(names, id.Name)
		}
		return true
	})
	return names
}

// LHSTargets returns the signal names assigned by an l-value expression
// (identifier, bit/part select target, or each element of a concatenation).
func LHSTargets(e Expr) []string {
	switch v := e.(type) {
	case *Ident:
		return []string{v.Name}
	case *Index:
		return LHSTargets(v.X)
	case *PartSelect:
		return LHSTargets(v.X)
	case *Concat:
		var out []string
		for _, p := range v.Parts {
			out = append(out, LHSTargets(p)...)
		}
		return out
	}
	return nil
}

// ModuleParams evaluates all parameter declarations of m in order,
// returning the resulting constant environment.
func ModuleParams(m *Module) (ConstEnv, error) {
	env := ConstEnv{}
	for _, it := range m.Items {
		if pd, ok := it.(*ParamDecl); ok {
			v, err := EvalConst(pd.Value, env)
			if err != nil {
				return env, fmt.Errorf("verilog: parameter %s: %w", pd.Name, err)
			}
			env[pd.Name] = v
		}
	}
	return env, nil
}
