package faultgen

import (
	"testing"

	"uvllm/internal/dataset"
)

// functionalFault returns a functional mutant with sequential-observable
// behavior for the batch-observation tests.
func functionalFault(t *testing.T) *Fault {
	t.Helper()
	for _, m := range dataset.All() {
		for _, c := range Classes() {
			if c.IsSyntax() {
				continue
			}
			for _, f := range Generate(m, c) {
				if rate, err := observe(f); err == nil && rate < 1.0 {
					return f
				}
			}
		}
	}
	t.Fatal("no simulation-observable functional fault in the dataset")
	return nil
}

// TestObserveLanesMatchesSequential pins lane 0 of the batched observer
// to the sequential observe() pass rate: same seed, same stimulus
// protocol, same golden trace, same score.
func TestObserveLanesMatchesSequential(t *testing.T) {
	f := functionalFault(t)
	want, err := observe(f)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := ObserveLanes(f, []int64{1}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != want {
		t.Fatalf("%s: batched rate %.4f != sequential rate %.4f", f.ID, rates[0], want)
	}
}

// TestObserveLanesMultiSeed checks the multi-seed sweep: the golden
// source passes every seed perfectly, a mutant stays below 1.0 on at
// least the seed that classified it, and per-seed rates are independent.
func TestObserveLanesMultiSeed(t *testing.T) {
	f := functionalFault(t)
	seeds := []int64{1, 2, 3, 4}
	golden := &Fault{ID: f.ID + "/golden", Module: f.Module, Class: f.Class,
		Source: f.Golden, Golden: f.Golden}
	gr, err := ObserveLanes(golden, seeds, 120)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range gr {
		if r != 1.0 {
			t.Fatalf("golden %s seed %d scored %.4f, want 1.0", f.Module, seeds[k], r)
		}
	}
	mr, err := ObserveLanes(f, seeds, 300)
	if err != nil {
		t.Fatal(err)
	}
	if mr[0] >= 1.0 {
		t.Fatalf("%s: classifying seed no longer observes the fault (%.4f)", f.ID, mr[0])
	}
	// Re-running must be deterministic.
	mr2, err := ObserveLanes(f, seeds, 300)
	if err != nil {
		t.Fatal(err)
	}
	for k := range mr {
		if mr[k] != mr2[k] {
			t.Fatalf("seed %d rate not deterministic: %.4f vs %.4f", seeds[k], mr[k], mr2[k])
		}
	}
}
