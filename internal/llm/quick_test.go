package llm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickExtractJSONTotal: the JSON extractor must never panic and must
// only return balanced objects, whatever bytes a model emits.
func TestQuickExtractJSONTotal(t *testing.T) {
	alphabet := []byte(`{}[]"\,:abc 01{"x":`)
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		n := r.Intn(120)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet))]
		}
		blob, err := extractJSONObject(string(b))
		if err != nil {
			continue
		}
		if !strings.HasPrefix(blob, "{") || !strings.HasSuffix(blob, "}") {
			t.Fatalf("unbalanced extraction %q from %q", blob, string(b))
		}
	}
}

// TestQuickLineDiffReconstructs: for random single- and multi-line edits
// of a source, applying the LineDiff pair reconstructs the original.
func TestQuickLineDiffReconstructs(t *testing.T) {
	golden := strings.Join([]string{
		"module m(", "    input a,", "    input b,", "    output y", ");",
		"    wire t1;", "    wire t2;", "    assign t1 = a & b;",
		"    assign t2 = a | b;", "    assign y = t1 ^ t2;", "endmodule",
	}, "\n")
	lines := strings.Split(golden, "\n")
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		cp := append([]string(nil), lines...)
		// Random edit: mutate, delete or duplicate 1-2 lines.
		edits := 1 + r.Intn(2)
		for e := 0; e < edits; e++ {
			li := 1 + r.Intn(len(cp)-2)
			switch r.Intn(3) {
			case 0:
				cp[li] = cp[li] + " // x"
			case 1:
				cp = append(cp[:li], cp[li+1:]...)
			default:
				cp = append(cp[:li+1], cp[li:]...)
			}
		}
		cur := strings.Join(cp, "\n")
		orig, patched, nd := LineDiff(cur, golden)
		if cur == golden {
			if nd != 0 {
				t.Fatalf("diff reported on identical inputs")
			}
			continue
		}
		if nd == 0 {
			t.Fatalf("no diff reported for edited source")
		}
		if strings.Count(cur, orig) != 1 {
			// The expansion must have hit a boundary; applying the first
			// occurrence must still work or the oracle would corrupt code.
			t.Logf("ambiguous orig (boundary case): %q", orig)
		}
		if got := strings.Replace(cur, orig, patched, 1); got != golden {
			t.Fatalf("reconstruction failed\ncur:\n%s\norig %q patched %q", cur, orig, patched)
		}
	}
}

// TestQuickParseIteration: the iteration scraper is total.
func TestQuickParseIteration(t *testing.T) {
	prop := func(n uint8, junk string) bool {
		text := junk + "(iteration " + itoa(int(n)) + ")" + junk
		return parseIteration(text) == maxi(int(n), 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if parseIteration("no marker") != 1 {
		t.Error("missing marker should default to 1")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
