package main

import (
	"flag"
	"strings"
	"testing"

	"uvllm/internal/service"
)

// TestBuildSpec is the table test for the up-front validation path:
// nonsense flag values must be rejected with a clear message before any
// pipeline stage runs. The check itself lives in the service layer
// (service.Flags.Options + service.JobSpec.Validate), shared with
// cmd/uvllmd — this exercises it through the CLI assembly.
func TestBuildSpec(t *testing.T) {
	cases := []struct {
		name    string
		args    []string // service flag args, e.g. -formal-depth=40
		module  string
		inject  string
		variant int
		mode    string
		wantErr string // "" = valid
	}{
		{"defaults", nil, "counter_12bit", "", 0, "pair", ""},
		{"complete mode", []string{"-backend=event", "-formal-depth=40"}, "counter_12bit", "FuncLogic", 3, "complete", ""},
		{"negative variant", nil, "counter_12bit", "", -1, "pair", "variant"},
		{"negative formal depth", []string{"-formal-depth=-5"}, "counter_12bit", "", 0, "pair", "formal-depth"},
		{"unknown mode", nil, "counter_12bit", "", 0, "partial", "mode"},
		{"unknown backend", []string{"-backend=quantum"}, "counter_12bit", "", 0, "pair", "backend"},
		{"unknown module", nil, "warp_core", "", 0, "pair", "-list"},
		{"unknown fault class", nil, "counter_12bit", "Gremlins", 0, "pair", "fault class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			knobs := service.Bind(fs, service.FlagBackend|service.FlagCover|service.FlagFormal)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse flags: %v", err)
			}
			_, err := buildSpec(knobs, tc.module, tc.inject, tc.variant, "", 1, tc.mode)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending input %q", err, tc.wantErr)
			}
		})
	}
}
