package synth

import "fmt"

// Optimize runs constant folding, common subexpression elimination and
// dead code elimination to a (bounded) fixpoint, returning the number of
// logic cells removed. DCE runs inside the loop so that aliased cells are
// physically deleted before the next round re-examines them.
func (n *Netlist) Optimize() int {
	before := n.CellCount()
	for round := 0; round < 8; round++ {
		changed := n.ConstFold()
		changed += n.CSE()
		n.DCE()
		if changed == 0 {
			break
		}
	}
	return before - n.CellCount()
}

// ConstFold replaces cells whose operands are all constants with constant
// cells, and resolves constant-select muxes and full-width slices to
// aliases. Returns the number of cells changed.
func (n *Netlist) ConstFold() int {
	changed := 0
	alias := map[int]int{}
	re := func(id int) int {
		for {
			a, ok := alias[id]
			if !ok {
				return id
			}
			id = a
		}
	}
	vals := make([]uint64, len(n.Nodes))
	for _, nd := range n.Nodes {
		for i := range nd.Args {
			nd.Args[i] = re(nd.Args[i])
		}
		switch nd.Kind {
		case OpConst:
			vals[nd.ID] = nd.Value & maskW(nd.Width)
			continue
		case OpInput, OpReg:
			continue
		}
		allConst := true
		for _, a := range nd.Args {
			if n.Nodes[a].Kind != OpConst {
				allConst = false
				break
			}
		}
		if allConst && len(nd.Args) > 0 {
			v, err := n.evalNode(nd, vals, nil, nil)
			if err == nil {
				nd.Kind = OpConst
				nd.Value = v
				nd.Args = nil
				vals[nd.ID] = v
				changed++
				continue
			}
		}
		// Mux with constant select collapses to one branch.
		if nd.Kind == OpMux && n.Nodes[nd.Args[0]].Kind == OpConst {
			target := nd.Args[2]
			if n.Nodes[nd.Args[0]].Value != 0 {
				target = nd.Args[1]
			}
			if n.Nodes[target].Width >= nd.Width {
				alias[nd.ID] = target
				changed++
				continue
			}
		}
		// Mux with identical branches is a wire.
		if nd.Kind == OpMux && nd.Args[1] == nd.Args[2] {
			alias[nd.ID] = nd.Args[1]
			changed++
			continue
		}
		// Full-range slice of a same-width node is a wire.
		if nd.Kind == OpSlice && nd.Lo == 0 && nd.Hi == n.Nodes[nd.Args[0]].Width-1 {
			alias[nd.ID] = nd.Args[0]
			changed++
			continue
		}
	}
	n.applyAlias(func(id int) int { return re(id) })
	return changed
}

// CSE merges structurally identical cells. Returns merges performed.
func (n *Netlist) CSE() int {
	seen := map[string]int{}
	alias := map[int]int{}
	re := func(id int) int {
		for {
			a, ok := alias[id]
			if !ok {
				return id
			}
			id = a
		}
	}
	merged := 0
	for _, nd := range n.Nodes {
		for i := range nd.Args {
			nd.Args[i] = re(nd.Args[i])
		}
		var key string
		switch nd.Kind {
		case OpInput, OpReg:
			continue // named cells are unique
		default:
			key = fmt.Sprintf("%d|%d|%d|%d|%d|%v", nd.Kind, nd.Width, nd.Value, nd.Lo, nd.Hi, nd.Args)
		}
		if prev, ok := seen[key]; ok {
			alias[nd.ID] = prev
			merged++
			continue
		}
		seen[key] = nd.ID
	}
	n.applyAlias(re)
	return merged
}

// DCE removes cells not reachable from outputs or register next-state
// functions, compacting node IDs. Returns cells removed.
func (n *Netlist) DCE() int {
	live := make([]bool, len(n.Nodes))
	var mark func(int)
	mark = func(id int) {
		if live[id] {
			return
		}
		live[id] = true
		for _, a := range n.Nodes[id].Args {
			mark(a)
		}
	}
	for _, id := range n.Outputs {
		mark(id)
	}
	for _, r := range n.Regs {
		mark(r.Node)
		mark(r.Next)
	}
	for _, id := range n.Inputs {
		mark(id) // keep the interface intact
	}
	remap := make([]int, len(n.Nodes))
	var kept []*Node
	for _, nd := range n.Nodes {
		if !live[nd.ID] {
			remap[nd.ID] = -1
			continue
		}
		remap[nd.ID] = len(kept)
		nd.ID = len(kept)
		kept = append(kept, nd)
	}
	removed := len(n.Nodes) - len(kept)
	n.Nodes = kept
	for _, nd := range n.Nodes {
		for i := range nd.Args {
			nd.Args[i] = remap[nd.Args[i]]
		}
	}
	n.applyRemap(remap)
	return removed
}

func (n *Netlist) applyAlias(re func(int) int) {
	for name, id := range n.Outputs {
		n.Outputs[name] = re(id)
	}
	for i := range n.Regs {
		n.Regs[i].Next = re(n.Regs[i].Next)
	}
	for _, nd := range n.Nodes {
		for i := range nd.Args {
			nd.Args[i] = re(nd.Args[i])
		}
	}
}

func (n *Netlist) applyRemap(remap []int) {
	for name, id := range n.Outputs {
		n.Outputs[name] = remap[id]
	}
	for name, id := range n.Inputs {
		n.Inputs[name] = remap[id]
	}
	for i := range n.Regs {
		n.Regs[i].Node = remap[n.Regs[i].Node]
		n.Regs[i].Next = remap[n.Regs[i].Next]
	}
}
