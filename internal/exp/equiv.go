package exp

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/formal"
	"uvllm/internal/metrics"
	"uvllm/internal/sim"
)

// DefaultEquivDepth is the unrolling depth of the bounded-equivalence
// study and of ExpertPassFormal — the formal engine's conventional
// depth (formal.DefaultBMCDepth).
const DefaultEquivDepth = formal.DefaultBMCDepth

// equivBudget bounds each study solve (deterministic cutoff; miters that
// exhaust it are reported as skipped, not guessed).
const equivBudget = 50000

// EquivRow is one benchmark module's equivalence study entry.
type EquivRow struct {
	Module        string
	Supported     bool
	Reason        string // why the module is outside the blastable subset
	AIGNodes      int    // graph size of the golden-vs-golden unrolling
	SelfEquiv     bool   // golden vs golden UNSAT through the study depth
	SelfUnbounded bool   // golden vs golden closed by the inductive step
	Mutants       int    // functional benchmark faults checked
	Detected      int    // SAT verdicts, every one replayed in simulation
	KEquiv        int    // UNSAT-to-depth verdicts, probed by random simulation
	Unbounded     int    // of KEquiv: proved for all time by k-induction
	Skipped       int    // mutants outside the subset or over budget
	Conflicts     int    // total solver conflicts across the module's checks
}

// EquivStudyResult is the full study: per-module rows plus the flat
// solver-work samples the -v statistics (percentiles, histogram) draw
// from.
type EquivStudyResult struct {
	Depth        int
	Rows         []EquivRow
	SolveStats   []formal.SolveStats // every SAT solve of the study
	RefuteDepths []float64           // divergence cycle of each detected mutant
}

// Mismatch counting: the study *gates* formal-vs-simulation agreement —
// any disagreement is returned as an error, so the caller (test or CLI)
// fails loudly rather than printing a wrong table.

// EquivStudy runs the equivalence study over the 27 benchmark modules on
// the session's cache: golden proved self-equivalent, then every
// functional benchmark fault of the module classified and cross-checked
// against simulation (SAT verdicts replayed, UNSAT verdicts probed with
// seeded random stimulus). Checks run through k-induction
// (formal.InductionEquivOpts), so an UNSAT verdict is either bounded
// ("equivalent through the study depth") or unbounded ("equivalent for
// all time" — the inductive step closed); unbounded verdicts are probed
// with deeper random runs, since they make the stronger claim.
// maxPerModule caps the mutants per module (0 = 3); depth <= 0 uses
// DefaultEquivDepth.
func (s *Session) EquivStudy(depth, maxPerModule int) (*EquivStudyResult, error) {
	if depth <= 0 {
		depth = DefaultEquivDepth
	}
	if maxPerModule <= 0 {
		maxPerModule = 3
	}
	study := &EquivStudyResult{Depth: depth}
	byModule := faultgen.BenchmarkByModule()
	for _, m := range dataset.All() {
		row := EquivRow{Module: m.Name}
		golden, err := s.Cache.Compile(m.Source, m.Top, sim.BackendCompiled)
		if err != nil {
			return study, fmt.Errorf("exp: equiv: %s: golden does not compile: %w", m.Name, err)
		}
		opts := formal.Options{Clock: m.Clock, MaxConflicts: equivBudget}
		res, err := formal.InductionEquivOpts(golden, golden, m.Clock, depth, opts)
		if err != nil {
			if errors.Is(err, formal.ErrUnsupported) || errors.Is(err, formal.ErrBudget) {
				row.Reason = trimReason(err)
				study.Rows = append(study.Rows, row)
				continue
			}
			return study, fmt.Errorf("exp: equiv: %s: %w", m.Name, err)
		}
		row.Supported = true
		row.SelfEquiv = res.Equivalent
		row.SelfUnbounded = res.Unbounded
		row.AIGNodes = res.Stats.AIGNodes
		row.Conflicts += res.Stats.Conflicts()
		study.SolveStats = append(study.SolveStats, res.Stats.Solves...)
		if !row.SelfEquiv {
			return study, fmt.Errorf("exp: equiv: %s refuted against itself at depth %d", m.Name, res.Depth)
		}

		var functional []*faultgen.Fault
		for _, f := range byModule[m.Name] {
			if !f.Class.IsSyntax() {
				functional = append(functional, f)
			}
		}
		if len(functional) > maxPerModule {
			functional = functional[:maxPerModule]
		}
		for _, f := range functional {
			mutant, err := s.Cache.Compile(f.Source, m.Top, sim.BackendCompiled)
			if err != nil {
				row.Skipped++
				continue
			}
			mres, err := formal.InductionEquivOpts(golden, mutant, m.Clock, depth, opts)
			if err != nil {
				if errors.Is(err, formal.ErrUnsupported) || errors.Is(err, formal.ErrBudget) {
					row.Skipped++
					continue
				}
				return study, fmt.Errorf("exp: equiv: %s: %w", f.ID, err)
			}
			row.Mutants++
			row.Conflicts += mres.Stats.Conflicts()
			study.SolveStats = append(study.SolveStats, mres.Stats.Solves...)
			if mres.Cex != nil {
				div, cyc, err := formal.ReplayCex(m.Source, f.Source, m.Top, m.Clock, mres.Cex, s.Backend)
				if err != nil {
					return study, fmt.Errorf("exp: equiv: %s: replay: %w", f.ID, err)
				}
				if !div {
					return study, fmt.Errorf("exp: equiv: %s: formal refuted at depth %d but simulation does not diverge", f.ID, mres.Depth)
				}
				if cyc != mres.Cex.Cycle {
					return study, fmt.Errorf("exp: equiv: %s: replay diverged at %d, formal predicted %d", f.ID, cyc, mres.Cex.Cycle)
				}
				row.Detected++
				study.RefuteDepths = append(study.RefuteDepths, float64(mres.Cex.Cycle))
			} else {
				// Unbounded proofs claim every depth, so probe them beyond
				// the study's unrolling; bounded proofs are probed at the
				// depth they actually cover.
				probeDepth := depth
				if mres.Unbounded {
					probeDepth = 2*depth + 5
					row.Unbounded++
				}
				if err := probeEquivalence(golden.Design(), m, f, probeDepth, s.Backend); err != nil {
					return study, fmt.Errorf("exp: equiv: %s: %w", f.ID, err)
				}
				row.KEquiv++
			}
		}
		study.Rows = append(study.Rows, row)
	}
	return study, nil
}

// probeEquivalence cross-checks an UNSAT verdict: seeded random
// simulation of the same depth under the formal stimulus protocol must
// not distinguish the designs either. d is the already-compiled golden
// design (port list and reset convention).
func probeEquivalence(d *sim.Design, m *dataset.Module, f *faultgen.Fault, depth int, backend sim.Backend) error {
	for probe := int64(1); probe <= 3; probe++ {
		cex := randomProtocolStimulus(d, m.Clock, depth, probe)
		div, cyc, err := formal.ReplayCex(m.Source, f.Source, m.Top, m.Clock, cex, backend)
		if err != nil {
			return err
		}
		if div {
			return fmt.Errorf("formal proved %d-cycle equivalence but probe %d diverged at cycle %d", depth, probe, cyc)
		}
	}
	return nil
}

// randomProtocolStimulus builds a random stimulus under the frozen-reset
// protocol, packaged as a Counterexample so ReplayCex can drive it.
func randomProtocolStimulus(d *sim.Design, clock string, cycles int, seed int64) *formal.Counterexample {
	rstName, rstVal := sim.FindResetDeassert(d)
	rng := rand.New(rand.NewSource(seed))
	cex := &formal.Counterexample{}
	for c := 0; c < cycles; c++ {
		in := map[string]uint64{}
		for _, p := range d.Inputs() {
			switch p.Name {
			case clock:
			case rstName:
				in[p.Name] = rstVal
			default:
				in[p.Name] = rng.Uint64() & maskOf(p.Width)
			}
		}
		cex.Inputs = append(cex.Inputs, in)
	}
	return cex
}

func maskOf(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

func trimReason(err error) string {
	s := err.Error()
	if i := strings.LastIndex(s, ": "); i >= 0 {
		return s[i+2:]
	}
	return s
}

// FormatEquiv renders the study as the EXPERIMENTS.md table, including
// the induction-outcome column: "unbnd" counts the UNSAT mutants whose
// proof the inductive step upgraded from depth-bounded to all-time.
func FormatEquiv(st *EquivStudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Equivalence study (formal engine, k-induction), depth %d\n", st.Depth)
	fmt.Fprintf(&b, "%-18s %9s %8s %8s %7s %7s %7s %7s %9s\n",
		"module", "supported", "aig", "mutants", "SAT", "UNSAT", "unbnd", "skip", "conflicts")
	supported, selfOK, selfUnb, mutants, detected, keq, unb := 0, 0, 0, 0, 0, 0, 0
	for _, r := range st.Rows {
		if !r.Supported {
			fmt.Fprintf(&b, "%-18s %9s %s\n", r.Module, "no", r.Reason)
			continue
		}
		supported++
		if r.SelfEquiv {
			selfOK++
		}
		if r.SelfUnbounded {
			selfUnb++
		}
		mutants += r.Mutants
		detected += r.Detected
		keq += r.KEquiv
		unb += r.Unbounded
		fmt.Fprintf(&b, "%-18s %9s %8d %8d %7d %7d %7d %7d %9d\n",
			r.Module, "yes", r.AIGNodes, r.Mutants, r.Detected, r.KEquiv, r.Unbounded, r.Skipped, r.Conflicts)
	}
	fmt.Fprintf(&b, "%d/%d modules supported; golden self-equivalent %d/%d (%d unbounded); %d mutants: %d refuted (all replayed), %d proved %d-cycle equivalent (%d for all time by induction)\n",
		supported, len(st.Rows), selfOK, supported, selfUnb, mutants, detected, keq, st.Depth, unb)
	return b.String()
}

// FormatEquivStats renders the solver-work statistics of a study run:
// conflict percentiles and a histogram, plus refutation-depth spread —
// the cmd/experiments -v view built on metrics.Percentile and
// metrics.Histogram.
func FormatEquivStats(st *EquivStudyResult) string {
	var b strings.Builder
	var conflicts []float64
	maxC := 0.0
	for _, sv := range st.SolveStats {
		c := float64(sv.Conflicts)
		conflicts = append(conflicts, c)
		if c > maxC {
			maxC = c
		}
	}
	fmt.Fprintf(&b, "Formal solver statistics (%d SAT solves)\n", len(conflicts))
	fmt.Fprintf(&b, "  conflicts: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
		metrics.Percentile(conflicts, 50), metrics.Percentile(conflicts, 90),
		metrics.Percentile(conflicts, 99), maxC)
	h := metrics.NewHistogram(0, maxC+1, 8)
	for _, c := range conflicts {
		h.Add(c)
	}
	b.WriteString(h.Format(32))
	if len(st.RefuteDepths) > 0 {
		fmt.Fprintf(&b, "  refutation cycle: p50=%.0f p90=%.0f max=%.0f over %d refuted mutants\n",
			metrics.Percentile(st.RefuteDepths, 50), metrics.Percentile(st.RefuteDepths, 90),
			metrics.Percentile(st.RefuteDepths, 100), len(st.RefuteDepths))
	}
	return b.String()
}
