package exp

// Concurrency guards for the evaluation harness: the worker pool plus the
// compiled simulation backend run under `go test -race` in CI, and the
// paper's tables depend on Run being bitwise reproducible regardless of
// the worker count.

import (
	"reflect"
	"runtime"
	"testing"

	"uvllm/internal/faultgen"
	"uvllm/internal/sim"
)

// TestRunParallelSmall exercises the parallel worker pool on a small
// instance slice with the default compiled backend — a race-detector
// target for the shared compiled-program state and the records slice.
func TestRunParallelSmall(t *testing.T) {
	instances := faultgen.Benchmark()
	if len(instances) > 4 {
		instances = instances[:4]
	}
	recs := Run(Config{Seed: 3, Workers: 4, SkipBaselines: true, Instances: instances})
	if len(recs) != len(instances) {
		t.Fatalf("got %d records, want %d", len(recs), len(instances))
	}
	for i, r := range recs {
		if r == nil {
			t.Fatalf("record %d missing", i)
		}
		if r.Fault != instances[i] {
			t.Fatalf("record %d out of order", i)
		}
	}
}

// TestRunDeterministicAcrossWorkers asserts that a serial run and a fully
// parallel run of the same configuration produce identical Record values
// (UVLLM results, baseline outcomes, modeled times, logs — everything).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	instances := faultgen.Benchmark()
	if len(instances) > 3 {
		instances = instances[:3]
	}
	cfg := Config{Seed: 7, Instances: instances}
	cfg.Workers = 1
	serial := Run(cfg)
	cfg.Workers = runtime.NumCPU()
	parallel := Run(cfg)
	if len(serial) != len(parallel) {
		t.Fatalf("record counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("instance %s: records differ between Workers=1 and Workers=%d",
				serial[i].Fault.ID, runtime.NumCPU())
		}
	}
}

// TestRunBackendsAgreeOnOutcomes asserts the evaluation harness reaches
// the same verdicts on both simulation backends (the pipeline consumes
// only port-level observations, which the differential suite pins down to
// bit equality).
func TestRunBackendsAgreeOnOutcomes(t *testing.T) {
	instances := faultgen.Benchmark()
	if len(instances) > 3 {
		instances = instances[:3]
	}
	compiled := Run(Config{Seed: 5, Instances: instances, SkipBaselines: true, Backend: sim.BackendCompiled})
	event := Run(Config{Seed: 5, Instances: instances, SkipBaselines: true, Backend: sim.BackendEventDriven})
	for i := range compiled {
		c, e := compiled[i], event[i]
		if c.UVLLM.Success != e.UVLLM.Success ||
			c.UVLLM.PassRate != e.UVLLM.PassRate ||
			c.UVLLM.Iterations != e.UVLLM.Iterations ||
			c.UVLLM.Final != e.UVLLM.Final ||
			c.UVLLMFix != e.UVLLMFix {
			t.Errorf("instance %s: backends disagree (compiled success=%v rate=%v iters=%d; event success=%v rate=%v iters=%d)",
				c.Fault.ID, c.UVLLM.Success, c.UVLLM.PassRate, c.UVLLM.Iterations,
				e.UVLLM.Success, e.UVLLM.PassRate, e.UVLLM.Iterations)
		}
	}
}
