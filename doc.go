// Package uvllm is a from-scratch Go reproduction of "UVLLM: An Automated
// Universal RTL Verification Framework using LLMs" (DAC 2025,
// arXiv:2411.16238).
//
// The framework couples a UVM-style testbench with LLM repair agents to
// verify and repair error-prone RTL designs end to end: lint-based
// pre-processing (Algorithm 1), UVM testing against LLM-generated
// reference models, log post-processing with a dynamic-slicing
// localization engine (Algorithm 2), and iterative LLM repair guarded by a
// score-register rollback mechanism.
//
// Everything the paper depends on is built in this module from the
// standard library only: a Verilog frontend (internal/verilog), a
// Verilator-style linter (internal/lint), a two-backend RTL simulator —
// a compiled, levelized engine differentially tested against an
// event-driven reference, with structural coverage instrumentation
// (internal/sim, internal/cover) — the UVM components including
// coverage-directed stimulus (internal/uvm), golden reference models
// (internal/refmodel), the paradigm error generator and the
// 331-instance benchmark (internal/faultgen), a random-RTL differential
// fuzzer (internal/rtlgen), a formal engine — bit-blasting to an AIG, a
// CDCL SAT solver and bounded equivalence checking as the exhaustive
// third verification oracle (internal/formal) — the pipeline itself
// (internal/preproc, internal/locate, internal/repair, internal/core),
// the comparison baselines (internal/baseline) and the experiment
// harness that regenerates every figure and table of the evaluation
// (internal/exp).
//
// See DESIGN.md for the system inventory and the documented substitutions
// (most importantly: GPT-4-turbo is simulated by a calibrated stochastic
// oracle, since this repository is offline), and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate
// each experiment; `go run ./cmd/experiments` prints them all.
package uvllm
