package uvm

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sort"

	"uvllm/internal/memo"
	"uvllm/internal/refmodel"
)

// Materialize expands a Sequence into its concrete stimulus vectors using
// the deterministic RNG the environment would drive it with. The resulting
// slice is what a run actually applies, and — being plain data — what the
// golden-trace memo can content-address.
func Materialize(seq Sequence, seed int64) []map[string]uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]map[string]uint64, 0, seq.Len())
	for {
		in, ok := seq.Next(rng)
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

// TraceMemo memoizes golden reference traces: the expected output vectors
// a reference model produces for one concrete stimulus stream. The
// evaluation pipeline replays identical streams constantly — every repair
// iteration of a job, every baseline's re-check, every ExpertPass of the
// ~12 benchmark instances that share a module — and the reference answer
// depends only on (model, reset phase, stimulus), so it is computed once
// and shared. Keys are content-addressed (sha256 over the model name, the
// reset flag and the full vector stream), making a hit impossible unless
// the stimulus is bit-identical.
//
// The memo is safe for concurrent use; computation is single-flight and
// the stored traces are treated as immutable by all readers.
type TraceMemo struct {
	m *memo.M[[sha256.Size]byte, []map[string]uint64]
}

// DefaultTraceMemoLimit bounds a memo built with NewTraceMemo.
const DefaultTraceMemoLimit = 4096

// NewTraceMemo returns an empty memo with the default entry limit.
func NewTraceMemo() *TraceMemo { return NewTraceMemoLimit(DefaultTraceMemoLimit) }

// NewTraceMemoLimit returns an empty memo holding at most limit traces
// (limit <= 0 means the default).
func NewTraceMemoLimit(limit int) *TraceMemo {
	if limit <= 0 {
		limit = DefaultTraceMemoLimit
	}
	return &TraceMemo{m: memo.New[[sha256.Size]byte, []map[string]uint64](limit)}
}

var sharedMemo = NewTraceMemo()

// SharedTraceMemo returns the process-wide golden-trace memo used by the
// evaluation harness and the CLIs.
func SharedTraceMemo() *TraceMemo { return sharedMemo }

// traceKey hashes the full identity of a golden trace.
func traceKey(refName string, reset bool, vectors []map[string]uint64) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(refName))
	if reset {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	var buf [8]byte
	names := make([]string, 0, 8)
	for _, in := range vectors {
		h.Write([]byte{0xff})
		names = names[:0]
		for n := range in {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h.Write([]byte(n))
			h.Write([]byte{0})
			binary.LittleEndian.PutUint64(buf[:], in[n])
			h.Write(buf[:])
		}
	}
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// Expected returns the reference model's output for every vector of the
// stream, computing and memoizing it on first use. reset mirrors the UVM
// environment's reset phase (the model is Reset before stepping when the
// DUT has a reset). The returned slice and maps are fresh copies owned
// by the caller: mutating them cannot poison the memoized trace for
// later hits, and concurrent batch lanes can each take and edit their
// own view of one golden trace.
func (tm *TraceMemo) Expected(refName string, reset bool, vectors []map[string]uint64) ([]map[string]uint64, error) {
	trace, err := tm.expectedShared(refName, reset, vectors)
	if err != nil {
		return nil, err
	}
	// Defensive copy: the memoized trace is the canonical artifact shared
	// by every future hit (and, under sim.Batch, by concurrent lanes); a
	// caller writing through the returned maps must never reach it.
	out := make([]map[string]uint64, len(trace))
	for i, row := range trace {
		cp := make(map[string]uint64, len(row))
		for k, v := range row {
			cp[k] = v
		}
		out[i] = cp
	}
	return out, nil
}

// expectedShared returns the canonical memoized trace without copying.
// In-package callers on the hot path (Env.Run scores one comparison per
// cycle) use it and MUST treat the slice and its maps as frozen; the
// exported Expected wraps it in a defensive copy.
func (tm *TraceMemo) expectedShared(refName string, reset bool, vectors []map[string]uint64) ([]map[string]uint64, error) {
	return tm.m.Do(traceKey(refName, reset, vectors), func() ([]map[string]uint64, error) {
		model, err := refmodel.New(refName)
		if err != nil {
			return nil, err
		}
		if reset {
			model.Reset()
		}
		expected := make([]map[string]uint64, len(vectors))
		for i, in := range vectors {
			expected[i] = model.Step(in)
		}
		return expected, nil
	})
}

// TraceMemoStats is a point-in-time counter snapshot.
type TraceMemoStats = memo.Stats

// Stats returns the memo counters.
func (tm *TraceMemo) Stats() TraceMemoStats { return tm.m.Stats() }
