package llm

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// Knowledge is what the Oracle knows about one benchmark instance: the
// golden source and the injected fault's metadata. The Oracle never leaks
// this through the Client interface — it only uses it to decide whether a
// given prompt succeeds and to synthesize the repair text, the same way a
// real LLM's weights encode "knowledge" the pipeline cannot inspect.
type Knowledge struct {
	FaultID    string // unique benchmark-instance identifier
	Golden     string // the verified source the fault was injected into
	Class      string // fault class name (Syn*/Func*)
	Complexity int    // module complexity 1..5
	IsFSM      bool
}

// Profile holds the calibrated success probabilities of the simulated
// GPT-4-turbo. The defaults are tuned so that the benchmark harness
// reproduces the per-stage fix-rate structure of paper Table II; see
// EXPERIMENTS.md for the calibration record.
type Profile struct {
	// Per-stage base probability of a correct repair, split by error kind.
	SyntaxLint float64 // syntax fix given linter findings (pre-processing)
	SyntaxMS   float64 // syntax leftovers in mismatch-signal mode
	SyntaxSL   float64 // syntax leftovers in suspicious-line mode
	FuncLint   float64 // functional fix from lint info alone (rare)
	FuncMS     float64 // functional fix in mismatch-signal mode
	FuncSL     float64 // functional fix escalated to suspicious lines
	MEICSyntax float64 // MEIC baseline agent, syntax errors
	MEICFunc   float64 // MEIC baseline agent, functional errors
	RawSyntax  float64 // raw one-shot LLM, syntax errors
	RawFunc    float64 // raw one-shot LLM, functional errors

	SyntaxComplexityPenalty float64 // per complexity level above 1
	FuncComplexityPenalty   float64
	FSMPenalty              float64 // extra factor for functional FSM repair
	CompleteModeFactor      float64 // Table III: whole-code regeneration
	IterationBonus          float64 // marginal gain per extra iteration
	MEICIterationBonus      float64 // MEIC's long loop gains more per iteration
	HallucinationRate       float64 // failed attempts that damage the code
	DamagePenalty           float64 // per extra differing region vs golden

	// ClassFactor adjusts individual fault classes around the base.
	ClassFactor map[string]float64
}

// DefaultProfile returns the calibrated GPT-4-turbo profile.
func DefaultProfile() Profile {
	return Profile{
		SyntaxLint: 0.74,
		SyntaxMS:   0.42,
		SyntaxSL:   0.06,
		FuncLint:   0.08,
		FuncMS:     0.67,
		FuncSL:     0.20,
		MEICSyntax: 0.26,
		MEICFunc:   0.14,
		RawSyntax:  0.52,
		RawFunc:    0.26,

		SyntaxComplexityPenalty: 0.97,
		FuncComplexityPenalty:   0.84,
		FSMPenalty:              0.50,
		CompleteModeFactor:      0.75,
		IterationBonus:          0.05,
		MEICIterationBonus:      0.38,
		HallucinationRate:       0.55,
		DamagePenalty:           0.72,

		ClassFactor: map[string]float64{
			"SynMissingSemi":      1.05,
			"SynKeywordTypo":      1.05,
			"SynBadOperator":      1.00,
			"SynUndeclared":       1.05,
			"SynMalformedLiteral": 1.00,
			"FuncDeclType":        0.80,
			"FuncCondition":       1.00,
			"FuncBitwidth":        1.00,
			"FuncLogic":           1.20,
		},
	}
}

// Prob resolves the success probability for one attempt.
func (p Profile) Prob(stage Stage, mode GenMode, k Knowledge, iteration int) float64 {
	syntax := strings.HasPrefix(k.Class, "Syn")
	var base float64
	switch stage {
	case StageLint:
		base = pick2(syntax, p.SyntaxLint, p.FuncLint)
	case StageMS:
		base = pick2(syntax, p.SyntaxMS, p.FuncMS)
	case StageSL:
		base = pick2(syntax, p.SyntaxSL, p.FuncSL)
	case StageMEIC:
		base = pick2(syntax, p.MEICSyntax, p.MEICFunc)
	default:
		base = pick2(syntax, p.RawSyntax, p.RawFunc)
	}
	if f, ok := p.ClassFactor[k.Class]; ok {
		base *= f
	}
	pen := p.FuncComplexityPenalty
	if syntax {
		pen = p.SyntaxComplexityPenalty
	}
	for i := 1; i < k.Complexity; i++ {
		base *= pen
	}
	if !syntax && k.IsFSM {
		base *= p.FSMPenalty
	}
	if mode == ModeComplete {
		base *= p.CompleteModeFactor
	}
	if iteration > 1 {
		bonus := p.IterationBonus
		if stage == StageMEIC {
			bonus = p.MEICIterationBonus
		}
		base *= 1 + bonus*float64(iteration-1)
	}
	if base > 0.99 {
		base = 0.99
	}
	return base
}

func pick2(c bool, a, b float64) float64 {
	if c {
		return a
	}
	return b
}

// Oracle is the simulated repair LLM. Whether a given (instance, stage)
// pair is solvable is a deterministic hash draw — re-asking the model in
// the same situation gives correlated answers, as with a real LLM at low
// temperature — while hallucination content is drawn from a seeded rng.
type Oracle struct {
	Know    Knowledge
	Profile Profile
	seed    int64
	rng     *rand.Rand
	tried   map[string]bool // wrong patches already emitted (don't repeat)
}

// NewOracle builds an oracle for one benchmark instance.
func NewOracle(k Knowledge, prof Profile, seed int64) *Oracle {
	return &Oracle{
		Know:    k,
		Profile: prof,
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed ^ int64(hash64(k.FaultID)))),
		tried:   map[string]bool{},
	}
}

// Complete implements Client.
func (o *Oracle) Complete(req Request) (Response, error) {
	text := req.Text()
	stage := DetectStage(req)
	mode := ModePair
	if strings.Contains(text, `"complete":`) && !strings.Contains(text, `"correct":`) {
		mode = ModeComplete
	}
	iteration := parseIteration(text)
	cur := extractDUT(text)
	if cur == "" {
		cur = o.Know.Golden
	}

	reply := o.reply(cur, stage, mode, iteration)
	content := FormatReply(reply)
	if stage == StageMEIC {
		// MEIC does not constrain the output format, and models ramble:
		// long chain-of-thought prose around the eventual JSON. This is
		// the output-token inefficiency that UVLLM's Structured Outputs
		// requirement eliminates (paper Sec. III-D).
		content = meicProse + content + meicEpilogue
	}
	return Response{
		Content:      content,
		InputTokens:  CountTokens(text),
		OutputTokens: CountTokens(content),
	}, nil
}

func (o *Oracle) reply(cur string, stage Stage, mode GenMode, iteration int) *RepairReply {
	orig, patched, ndiff := LineDiff(cur, o.Know.Golden)
	name := o.Know.FaultID
	if i := strings.IndexByte(name, '/'); i > 0 {
		name = name[:i]
	}

	if ndiff == 0 {
		return &RepairReply{
			ModuleName: name,
			Analysis:   "The DUT already matches the specified behavior; no repair is necessary.",
		}
	}

	p := o.Profile.Prob(stage, mode, o.Know, iteration)
	// Accumulated damage makes the repair target harder to see: each extra
	// differing line region beyond the original fault lowers the odds.
	// This is what the rollback mechanism protects against.
	if ndiff > 1 && o.Profile.DamagePenalty > 0 {
		extra := ndiff - 1
		if extra > 4 {
			extra = 4
		}
		for i := 0; i < extra; i++ {
			p *= o.Profile.DamagePenalty
		}
	}
	draw := hash01(fmt.Sprintf("%d|%s|%s|%d", o.seed, o.Know.FaultID, stage, mode))
	if draw < p {
		// Correct repair.
		if mode == ModeComplete {
			return &RepairReply{
				ModuleName: name,
				Analysis:   fmt.Sprintf("The error is caused by a %s defect; regenerating the corrected module.", o.Know.Class),
				Complete:   o.Know.Golden,
			}
		}
		return &RepairReply{
			ModuleName: name,
			Analysis:   fmt.Sprintf("The error is caused by a %s defect in the highlighted region.", o.Know.Class),
			Correct:    []PatchPair{{Original: orig, Patched: patched}},
		}
	}

	// Failed attempt. In the pre-processing stage the model usually
	// silences the lint error while getting the semantics wrong — the
	// repaired code compiles, misbehaves under the UVM testbench, and is
	// then caught by the MS-mode repair loop (paper Result 4: syntax-only
	// errors persisting into the repair stage).
	if stage == StageLint && o.rng.Float64() < 0.8 {
		if mutated := semanticMutation(patched, o.rng); mutated != "" && mutated != patched {
			return &RepairReply{
				ModuleName: name,
				Analysis:   "Fixed the reported syntax error.",
				Correct:    []PatchPair{{Original: orig, Patched: mutated}},
			}
		}
	}
	// Otherwise hallucinate a damaging patch or return a harmless
	// (wrong but neutral) one.
	if o.rng.Float64() < o.Profile.HallucinationRate {
		if bad := o.hallucinate(cur, orig, patched); bad != nil {
			if mode == ModeComplete {
				return &RepairReply{
					ModuleName: name,
					Analysis:   "The root cause appears to be an incorrect expression; rewriting the module.",
					Complete:   strings.Replace(cur, bad.Original, bad.Patched, 1),
				}
			}
			return &RepairReply{
				ModuleName: name,
				Analysis:   "The root cause appears to be an incorrect expression on the suspicious path.",
				Correct:    []PatchPair{*bad},
			}
		}
	}
	// Harmless failure: restate a line unchanged (a no-op "repair").
	line := firstNonEmptyLine(cur)
	if mode == ModeComplete {
		return &RepairReply{
			ModuleName: name,
			Analysis:   "Unable to localize the defect with confidence; returning the reviewed code.",
			Complete:   cur,
		}
	}
	return &RepairReply{
		ModuleName: name,
		Analysis:   "Unable to localize the defect with confidence.",
		Correct:    []PatchPair{{Original: line, Patched: line}},
	}
}

// semanticMutation applies one meaning-changing, syntax-preserving edit to
// a snippet (used for the lint-silencing-but-wrong repair path).
func semanticMutation(snippet string, rng *rand.Rand) string {
	muts := []struct{ from, to string }{
		{" + ", " - "}, {" - ", " + "}, {" & ", " | "}, {" | ", " & "},
		{" ^ ", " & "}, {"1'b1", "1'b0"}, {"1'b0", "1'b1"}, {"==", "!="},
		{" < ", " > "}, {"d1", "d2"}, {"d0", "d1"},
	}
	start := rng.Intn(len(muts))
	for i := 0; i < len(muts); i++ {
		mu := muts[(start+i)%len(muts)]
		if strings.Contains(snippet, mu.from) {
			return strings.Replace(snippet, mu.from, mu.to, 1)
		}
	}
	return ""
}

// hallucinate fabricates a plausible-but-wrong patch on the current source,
// avoiding the true fix and anything already tried.
func (o *Oracle) hallucinate(cur, trueOrig, truePatched string) *PatchPair {
	lines := strings.Split(cur, "\n")
	var candidates []int
	for i, ln := range lines {
		t := strings.TrimSpace(ln)
		if strings.Contains(t, "=") && !strings.HasPrefix(t, "//") && len(t) > 4 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	muts := []struct{ from, to string }{
		{" + ", " - "},
		{" - ", " + "},
		{" & ", " | "},
		{" | ", " & "},
		{"1'b1", "1'b0"},
		{"1'b0", "1'b1"},
		{"==", "!="},
		{" < ", " <= "},
		{"d1", "d2"},
	}
	for attempt := 0; attempt < 16; attempt++ {
		li := candidates[o.rng.Intn(len(candidates))]
		ln := lines[li]
		mu := muts[o.rng.Intn(len(muts))]
		if !strings.Contains(ln, mu.from) {
			continue
		}
		mutated := strings.Replace(ln, mu.from, mu.to, 1)
		if mutated == ln {
			continue
		}
		pp := PatchPair{Original: ln, Patched: mutated}
		key := pp.Original + "\x00" + pp.Patched
		if o.tried[key] {
			continue
		}
		// Never emit the genuine fix by accident.
		if strings.TrimSpace(pp.Original) == strings.TrimSpace(trueOrig) &&
			strings.TrimSpace(pp.Patched) == strings.TrimSpace(truePatched) {
			continue
		}
		o.tried[key] = true
		return &pp
	}
	return nil
}

// LineDiff computes the minimal differing line region between cur and
// golden after trimming the common prefix and suffix, then expands the
// region with context lines until the replacement pair is unambiguous:
// the original text must be non-empty, occur exactly once in cur, and the
// patched text must not silently leave blank lines behind (pure
// insertions and deletions get an anchor line). Applying the returned
// pair with a single string replacement reconstructs golden exactly.
func LineDiff(cur, golden string) (orig, patched string, ndiff int) {
	a := strings.Split(cur, "\n")
	b := strings.Split(golden, "\n")
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	s := 0
	for s < len(a)-p && s < len(b)-p && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	ndiff = len(a) - p - s
	if n := len(b) - p - s; n > ndiff {
		ndiff = n
	}
	if ndiff == 0 {
		return "", "", 0
	}
	loA, hiA := p, len(a)-s
	loB, hiB := p, len(b)-s
	build := func() (string, string) {
		return strings.Join(a[loA:hiA], "\n"), strings.Join(b[loB:hiB], "\n")
	}
	orig, patched = build()
	for {
		ok := strings.TrimSpace(orig) != "" &&
			strings.TrimSpace(patched) != "" &&
			strings.Count(cur, orig) == 1
		if ok {
			break
		}
		switch {
		case loA > 0:
			loA--
			loB--
		case hiA < len(a) && hiB < len(b):
			hiA++
			hiB++
		default:
			// Cannot disambiguate further; return what we have.
			return orig, patched, ndiff
		}
		orig, patched = build()
	}
	return orig, patched, ndiff
}

func extractDUT(text string) string {
	const open = "=== DUT ===\n"
	i := strings.Index(text, open)
	if i < 0 {
		return ""
	}
	rest := text[i+len(open):]
	j := strings.Index(rest, "\n=== Error Information")
	if j < 0 {
		return rest
	}
	return rest[:j]
}

func parseIteration(text string) int {
	i := strings.Index(text, "(iteration ")
	if i < 0 {
		return 1
	}
	n := 0
	for _, c := range text[i+len("(iteration "):] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	if n == 0 {
		return 1
	}
	return n
}

const meicProse = `Let me work through this carefully, step by step.

First, I will read the specification to understand the intended behavior
of the module, paying attention to the port directions, the bit widths of
each signal, the reset polarity and the clocking discipline. Second, I
will trace the simulation log to find the first cycle where the design
under test diverges from the expected values, because the earliest
divergence usually points closest to the root cause. Third, I will walk
backward from the mismatching output through every assignment that can
drive it, checking each operator, each constant, and each condition
against the specification. Fourth, I will consider common Verilog
pitfalls: blocking versus non-blocking assignment, incomplete sensitivity
lists, accidental width truncation, operator precedence surprises, and
reset values that do not match the documented power-on state. Fifth, I
will form a hypothesis about the defect and double-check that the
proposed change cannot break any of the passing test cases before
committing to it.

Having followed this procedure on the provided design and log, my
conclusion is below.

`

const meicEpilogue = `

To summarize the reasoning: the simulation divergence, combined with the
specification's description of the expected behavior, points to the
repair given above. If this does not resolve all failures, the next most
likely candidates would be the reset branch and the width of the
intermediate expressions, which I recommend reviewing in a follow-up
iteration with a fresh simulation log.`

func firstNonEmptyLine(src string) string {
	for _, ln := range strings.Split(src, "\n") {
		if strings.TrimSpace(ln) != "" {
			return ln
		}
	}
	return src
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// hash01 maps a string deterministically to [0,1).
func hash01(s string) float64 {
	return float64(hash64(s)%1_000_000) / 1_000_000
}
