package refmodel

func init() {
	register("accu", func() Model { return &accuModel{} })
	register("adder_8bit", func() Model { return combModel(adder8) })
	register("adder_16bit", func() Model { return combModel(adder16) })
	register("adder_32bit", func() Model { return combModel(adder32) })
	register("multi_8bit", func() Model { return combModel(multi8) })
	register("multi_16bit", func() Model { return &multi16Model{} })
	register("div_8bit", func() Model { return combModel(div8) })
	register("alu", func() Model { return combModel(aluFn) })
}

// combModel adapts a pure function to the Model interface.
type combModel func(map[string]uint64) map[string]uint64

func (f combModel) Reset() {}
func (f combModel) Step(in map[string]uint64) map[string]uint64 {
	return f(in)
}

type accuModel struct {
	sum uint64
}

func (m *accuModel) Reset() { m.sum = 0 }

func (m *accuModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.sum = 0
	} else if in["en"] != 0 {
		m.sum = mask(m.sum+mask(in["d"], 8), 16)
	}
	return map[string]uint64{"sum": m.sum}
}

func adder8(in map[string]uint64) map[string]uint64 {
	t := mask(in["a"], 8) + mask(in["b"], 8) + (in["cin"] & 1)
	return map[string]uint64{"sum": mask(t, 8), "cout": (t >> 8) & 1}
}

func adder16(in map[string]uint64) map[string]uint64 {
	t := mask(in["a"], 16) + mask(in["b"], 16) + (in["cin"] & 1)
	return map[string]uint64{"sum": mask(t, 16), "cout": (t >> 16) & 1}
}

func adder32(in map[string]uint64) map[string]uint64 {
	t := mask(in["a"], 32) + mask(in["b"], 32) + (in["cin"] & 1)
	return map[string]uint64{"sum": mask(t, 32), "cout": (t >> 32) & 1}
}

func multi8(in map[string]uint64) map[string]uint64 {
	p := mask(in["a"], 8) * mask(in["b"], 8)
	return map[string]uint64{"p": mask(p, 16)}
}

type multi16Model struct {
	p    uint64
	done uint64
}

func (m *multi16Model) Reset() { m.p, m.done = 0, 0 }

func (m *multi16Model) Step(in map[string]uint64) map[string]uint64 {
	switch {
	case in["rst_n"] == 0:
		m.p, m.done = 0, 0
	case in["en"] != 0:
		m.p = mask(mask(in["a"], 16)*mask(in["b"], 16), 32)
		m.done = 1
	default:
		m.done = 0
	}
	return map[string]uint64{"p": m.p, "done": m.done}
}

func div8(in map[string]uint64) map[string]uint64 {
	a, b := mask(in["a"], 8), mask(in["b"], 8)
	if b == 0 {
		return map[string]uint64{"q": 0, "r": 0, "dbz": 1}
	}
	return map[string]uint64{"q": a / b, "r": a % b, "dbz": 0}
}

func aluFn(in map[string]uint64) map[string]uint64 {
	a, b := mask(in["a"], 8), mask(in["b"], 8)
	var y uint64
	switch in["op"] & 7 {
	case 0:
		y = mask(a+b, 8)
	case 1:
		y = mask(a-b, 8)
	case 2:
		y = a & b
	case 3:
		y = a | b
	case 4:
		y = a ^ b
	case 5:
		y = b2u(a < b)
	case 6:
		y = mask(a<<(b&7), 8)
	case 7:
		y = a >> (b & 7)
	}
	return map[string]uint64{"y": y, "zero": b2u(y == 0)}
}
