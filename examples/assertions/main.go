// assertions: the paper's extensibility hook (Sec. III-B) — automatically
// generated assertions checked inside the UVM environment. Properties are
// mined from the golden reference model's behavior (one-hot, mutual
// exclusion, reset values, bounds), attached to the testbench, and shown
// catching an injected bug with a *named* property. The run's waveform is
// dumped as a standard VCD file.
//
//	go run ./examples/assertions
package main

import (
	"fmt"
	"os"
	"strings"

	"uvllm/internal/assert"
	"uvllm/internal/dataset"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

func main() {
	m := dataset.ByName("traffic_light")

	// Mine candidate properties from the golden model's trace.
	s, err := sim.CompileAndNew(m.Source, m.Top)
	if err != nil {
		panic(err)
	}
	var ports []assert.PortShape
	for _, p := range s.Design().Inputs() {
		if p.Name == m.Clock {
			continue
		}
		ports = append(ports, assert.PortShape{Name: p.Name, Width: p.Width, Input: true})
	}
	for _, p := range s.Design().Outputs() {
		ports = append(ports, assert.PortShape{Name: p.Name, Width: p.Width})
	}
	mined, err := assert.Miner{}.Mine(m.Name, ports, m.HasReset, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mined %d properties for %s:\n%s\n", len(mined), m.Name, assert.Describe(mined))

	// Check them inside the UVM environment against a broken DUT whose
	// yellow lamp sticks on together with red.
	buggy := strings.Replace(m.Source,
		"yellow = (state == S_YELLOW) ? 1'b1 : 1'b0;",
		"yellow = (state == S_YELLOW) ? 1'b1 : red;", 1)
	env, err := uvm.NewEnv(uvm.Config{
		Source: buggy, Top: m.Top, Clock: m.Clock, RefName: m.Name,
		Seed: 7, Assertions: mined,
	})
	if err != nil {
		panic(err)
	}
	rate := env.Run(&uvm.RandomSequence{N: 40, ResetName: "rst_n"})
	fmt.Printf("buggy DUT: scoreboard pass rate %.1f%%, assertion failures: %v\n\n",
		rate*100, env.Asserts.Failed())

	for i, v := range env.Asserts.Violations {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  cycle %d: %s  (%s)\n", v.Cycle, v.Assertion, v.Detail)
	}

	// Dump the waveform for a viewer.
	f, err := os.CreateTemp("", "traffic_light_*.vcd")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := sim.WriteVCD(f, env.Waveform(), env.DUT.Sim.Design(), m.Top); err != nil {
		panic(err)
	}
	fmt.Printf("\nwaveform dumped to %s\n", f.Name())
}
