package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): `# HELP` / `# TYPE` headers
// per family, histogram series expanded into `_bucket{le=...}`, `_sum`
// and `_count`. Output is deterministic (families by name, series by
// label set). Safe on a nil receiver (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.Snapshot() {
		if fam.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Kind); err != nil {
			return err
		}
		for _, s := range fam.Series {
			if fam.Kind == "histogram" {
				if err := writeHistogram(w, fam.Name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam.Name, renderLabels(s.Labels, "", 0), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram emits one histogram series as cumulative le-buckets
// plus _sum and _count.
func writeHistogram(w io.Writer, name string, s SeriesSnapshot) error {
	for i, b := range s.Bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.Labels, "le", b), s.Cumulative[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.Labels, "le", math.Inf(1)), s.Count); err != nil {
		return err
	}
	base := renderLabels(s.Labels, "", 0)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, base, formatValue(s.Sum), name, base, s.Count); err != nil {
		return err
	}
	return nil
}

// renderLabels renders a label set as `{k="v",...}`, optionally with a
// trailing `le` label (used for histogram buckets); returns "" for an
// empty set with no le.
func renderLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, leKey, formatLe(le))
	}
	b.WriteByte('}')
	return b.String()
}

// formatLe renders a bucket bound ("+Inf" for the infinity bucket).
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatValue(v)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// escapeLabel escapes a label value per the exposition format
// (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// escapeHelp escapes help text per the exposition format (backslash,
// newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}
