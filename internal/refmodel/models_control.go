package refmodel

func init() {
	register("counter_12bit", func() Model { return &counter12Model{} })
	register("updown_counter", func() Model { return &updownModel{} })
	register("ring_counter", func() Model { return &ringModel{q: 1} })
	register("seq_detector", func() Model { return &seqDetModel{} })
	register("traffic_light", func() Model { return &trafficModel{} })
	register("vending_machine", func() Model { return &vendingModel{} })
}

type counter12Model struct {
	count uint64
}

func (m *counter12Model) Reset() { m.count = 0 }

func (m *counter12Model) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.count = 0
	} else if in["en"] != 0 {
		m.count = mask(m.count+1, 12)
	}
	return map[string]uint64{"count": m.count, "carry": b2u(m.count == 0xFFF)}
}

type updownModel struct {
	q uint64
}

func (m *updownModel) Reset() { m.q = 0 }

func (m *updownModel) Step(in map[string]uint64) map[string]uint64 {
	switch {
	case in["rst_n"] == 0:
		m.q = 0
	case in["load"] != 0:
		m.q = mask(in["d"], 8)
	case in["up"] != 0:
		m.q = mask(m.q+1, 8)
	default:
		m.q = mask(m.q-1, 8)
	}
	return map[string]uint64{"q": m.q}
}

type ringModel struct {
	q uint64
}

func (m *ringModel) Reset() { m.q = 1 }

func (m *ringModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.q = 1
	} else {
		m.q = mask(m.q<<1, 4) | (m.q >> 3 & 1)
	}
	return map[string]uint64{"q": m.q}
}

// seqDetModel mirrors the FSM table in the seq_detector specification:
// Moore machine for the overlapping pattern 1011.
type seqDetModel struct {
	state uint64
}

func (m *seqDetModel) Reset() { m.state = 0 }

func (m *seqDetModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.state = 0
	} else {
		x := in["x"] & 1
		switch m.state {
		case 0:
			m.state = pick(x, 1, 0)
		case 1:
			m.state = pick(x, 1, 2)
		case 2:
			m.state = pick(x, 3, 0)
		case 3:
			m.state = pick(x, 4, 2)
		case 4:
			m.state = pick(x, 1, 2)
		default:
			m.state = 0
		}
	}
	return map[string]uint64{"z": b2u(m.state == 4)}
}

func pick(x, ifOne, ifZero uint64) uint64 {
	if x != 0 {
		return ifOne
	}
	return ifZero
}

type trafficModel struct {
	state uint64 // 0 green, 1 yellow, 2 red
	timer uint64
}

func (m *trafficModel) Reset() { m.state, m.timer = 0, 0 }

func (m *trafficModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.state, m.timer = 0, 0
	} else {
		var limit uint64
		switch m.state {
		case 0:
			limit = 5
		case 1:
			limit = 2
		default:
			limit = 4
		}
		if m.timer == limit-1 {
			m.timer = 0
			m.state = (m.state + 1) % 3
		} else {
			m.timer = mask(m.timer+1, 4)
		}
	}
	return map[string]uint64{
		"green":  b2u(m.state == 0),
		"yellow": b2u(m.state == 1),
		"red":    b2u(m.state == 2),
	}
}

type vendingModel struct {
	total    uint64
	dispense uint64
	change   uint64
}

func (m *vendingModel) Reset() { m.total, m.dispense, m.change = 0, 0, 0 }

func (m *vendingModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.total, m.dispense, m.change = 0, 0, 0
	} else {
		var value uint64
		switch in["coin"] & 3 {
		case 1:
			value = 5
		case 2:
			value = 10
		case 3:
			value = 25
		}
		if m.total+value >= 20 {
			m.dispense = 1
			m.change = mask(m.total+value-20, 6)
			m.total = 0
		} else {
			m.dispense = 0
			m.change = 0
			m.total += value
		}
	}
	return map[string]uint64{"dispense": m.dispense, "change": m.change}
}
