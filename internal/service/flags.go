package service

import "flag"

// FlagMask selects which of the shared knobs a command binds. Each
// command registers only the flags it historically had; the names, help
// strings, defaults and validation come from one place so the CLIs and
// the server cannot drift.
type FlagMask uint

// Flag selectors.
const (
	// FlagBackend binds -backend.
	FlagBackend FlagMask = 1 << iota
	// FlagCover binds -cover.
	FlagCover
	// FlagFormal binds -formal, -induction and -formal-depth.
	FlagFormal
	// FlagLanes binds -lanes.
	FlagLanes
	// FlagWorkers binds -workers.
	FlagWorkers
	// FlagAll binds every shared knob.
	FlagAll = FlagBackend | FlagCover | FlagFormal | FlagLanes | FlagWorkers
)

// Flags holds the bound flag targets between Bind (at init) and Options
// (after fs.Parse). Unbound knobs resolve to their zero value.
type Flags struct {
	mask        FlagMask
	backend     string
	cover       bool
	formalOn    bool
	induction   bool
	formalDepth int
	lanes       int
	workers     int
}

// Bind registers the selected shared knobs on fs with their canonical
// names, defaults and help text. Call before fs.Parse; read the result
// with Options after.
func Bind(fs *flag.FlagSet, mask FlagMask) *Flags {
	f := &Flags{mask: mask, backend: "compiled"}
	if mask&FlagBackend != 0 {
		fs.StringVar(&f.backend, "backend", "compiled", "simulation backend: compiled or event")
	}
	if mask&FlagCover != 0 {
		fs.BoolVar(&f.cover, "cover", false, "collect structural coverage (statements, branches, toggles, FSM) during UVM runs")
	}
	if mask&FlagFormal != 0 {
		fs.BoolVar(&f.formalOn, "formal", false, "after verification, bounded-prove the final source equivalent to the golden (refutation fails the run)")
		fs.BoolVar(&f.induction, "induction", false, "prove by k-induction instead of plain BMC, upgrading closed proofs to unbounded (implies -formal)")
		fs.IntVar(&f.formalDepth, "formal-depth", 0, "formal unrolling depth in cycles (0 = default)")
	}
	if mask&FlagLanes != 0 {
		fs.IntVar(&f.lanes, "lanes", 0, "batched simulation lanes where supported (0 or 1 = sequential)")
	}
	if mask&FlagWorkers != 0 {
		fs.IntVar(&f.workers, "workers", 0, "worker pool size (0 = NumCPU; results are identical for any value)")
	}
	return f
}

// Options validates the parsed flag values through the one shared path
// and returns them as the unified options type.
func (f *Flags) Options() (Options, error) {
	o := Options{
		Backend:     f.backend,
		Cover:       f.cover,
		Formal:      f.formalOn,
		Induction:   f.induction,
		FormalDepth: f.formalDepth,
		Lanes:       f.lanes,
		Workers:     f.workers,
	}
	if err := o.Validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}
