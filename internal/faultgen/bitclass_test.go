package faultgen

import (
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/formal"
	"uvllm/internal/psim"
	"uvllm/internal/sim"
)

// TestClassifyBitParallelDetects: a simulation-observable functional
// mutant must be caught by 64 random stimulus lanes, with a plausible
// witness location.
func TestClassifyBitParallelDetects(t *testing.T) {
	f := functionalFault(t)
	v, err := ClassifyBitParallel(f, 64, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Supported {
		t.Fatalf("observable fault %s outside the bit-parallel subset", f.ID)
	}
	if !v.Detected {
		t.Fatalf("observable fault %s escaped 64 random lanes", f.ID)
	}
	if v.Lane < 0 || v.Lane >= 64 || v.Cycle < 0 || v.Cycle >= 300 || v.Signal == "" {
		t.Fatalf("implausible witness: lane=%d cycle=%d signal=%q", v.Lane, v.Cycle, v.Signal)
	}
	if v.DetectedLanes < 1 || v.DetectedLanes > 64 {
		t.Fatalf("bad detected-lane count %d", v.DetectedLanes)
	}
	v2, err := ClassifyBitParallel(f, 64, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != v2 {
		t.Fatalf("classifier is not deterministic: %+v vs %+v", v, v2)
	}
}

// TestClassifyBitParallelGoldenUndetected: a design can never diverge
// from itself — every golden-vs-golden pair must classify clean, and
// every dataset module must be inside the subset.
func TestClassifyBitParallelGoldenUndetected(t *testing.T) {
	for _, m := range dataset.All() {
		v, err := ClassifyBitParallelSource(m.Source, m.Source, m.Top, m.Clock, 32, 60, 7)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !v.Supported {
			t.Fatalf("%s left the bit-parallel subset", m.Name)
		}
		if v.Detected {
			t.Fatalf("%s diverged from itself at lane %d cycle %d signal %s",
				m.Name, v.Lane, v.Cycle, v.Signal)
		}
	}
}

// TestClassifyBitParallelSharing pins the point of the shared graph: a
// golden-vs-golden pair over shared input variables must strash-collapse
// to strictly fewer gates than two standalone circuits. (It does not
// collapse all the way to one circuit: each side keeps its own
// previous-state variables, so only the input-only cones merge.)
func TestClassifyBitParallelSharing(t *testing.T) {
	m := dataset.ByName("mux4")
	if m == nil {
		t.Fatal("mux4 missing from the dataset")
	}
	p, err := sim.SharedCache().Compile(m.Source, m.Top, sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := formal.NewCircuit(p, m.Clock, formal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	soloOps := psim.NewMachine(solo.G).Ops()
	v, err := ClassifyBitParallelSource(m.Source, m.Source, m.Top, m.Clock, 64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Supported {
		t.Fatal("mux4 pair unsupported")
	}
	if v.GateOps >= 2*soloOps {
		t.Fatalf("golden-vs-golden pair shared nothing: pair %d gates, solo %d", v.GateOps, soloOps)
	}
	t.Logf("shared pair: %d gates vs %d solo (2x = %d)", v.GateOps, soloOps, 2*soloOps)
}

// TestClassifyBitParallelAgreesWithBounded: a concrete divergence
// witness at cycle c is a satisfying assignment of the depth-(c+1)
// miter, so the SAT classifier must call the same fault detectable.
func TestClassifyBitParallelAgreesWithBounded(t *testing.T) {
	f := functionalFault(t)
	v, err := ClassifyBitParallel(f, 64, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Detected || v.Cycle >= formal.DefaultBMCDepth {
		t.Skipf("no witness within BMC depth (detected=%v cycle=%d)", v.Detected, v.Cycle)
	}
	verdict, cex := ClassifyBounded(f, formal.DefaultBMCDepth)
	if verdict == FormalUnsupported {
		t.Skip("bounded classifier out of budget on this fault")
	}
	if verdict != FormalDetectable {
		t.Fatalf("bit-parallel witness at cycle %d but bounded verdict %s", v.Cycle, verdict)
	}
	if cex == nil || cex.Cycle > v.Cycle {
		t.Fatalf("bounded counterexample at cycle %v, bit-parallel witnessed cycle %d", cex, v.Cycle)
	}
}
