// Package llm provides the LLM-agent layer of UVLLM: a chat-completions-
// shaped client interface, the repair prompt formats of paper Fig. 4, the
// Structured-Outputs JSON parsing of agent replies, and two client
// implementations — a Scripted client for tests and a calibrated stochastic
// Oracle that stands in for GPT-4-turbo (see DESIGN.md: the repository is
// offline, so the text generator is simulated while every byte of pipeline
// code around it is real).
package llm

import (
	"fmt"
	"strings"
)

// Message is one chat turn.
type Message struct {
	Role    string // "system", "user", "assistant"
	Content string
}

// Request is a chat-completion request in the OpenAI API's shape.
type Request struct {
	Model          string
	Messages       []Message
	ResponseFormat string // "json_object" activates structured outputs
	Temperature    float64
	MaxTokens      int
}

// Text concatenates all message contents (used for marker detection and
// token accounting).
func (r Request) Text() string {
	var b strings.Builder
	for _, m := range r.Messages {
		b.WriteString(m.Content)
		b.WriteString("\n")
	}
	return b.String()
}

// Response is a chat-completion response with usage accounting.
type Response struct {
	Content      string
	InputTokens  int
	OutputTokens int
}

// Client is anything that can answer a chat request. Swapping the model is
// a one-line change (the paper's "Modularization" property).
type Client interface {
	Complete(req Request) (Response, error)
}

// CountTokens estimates the token count of s with the 4-chars-per-token
// rule of thumb used for GPT-family cost planning.
func CountTokens(s string) int {
	n := (len(s) + 3) / 4
	if n == 0 && len(s) > 0 {
		n = 1
	}
	return n
}

// Usage accumulates token usage across calls, for the cost model.
type Usage struct {
	Calls        int
	InputTokens  int
	OutputTokens int
}

// Add accounts one response.
func (u *Usage) Add(resp Response) {
	u.Calls++
	u.InputTokens += resp.InputTokens
	u.OutputTokens += resp.OutputTokens
}

// Metered wraps a client and accumulates usage on every call.
type Metered struct {
	Inner Client
	Usage Usage
}

// Complete implements Client.
func (m *Metered) Complete(req Request) (Response, error) {
	resp, err := m.Inner.Complete(req)
	if err == nil {
		m.Usage.Add(resp)
	}
	return resp, err
}

// Scripted replays canned responses in order; it is the deterministic
// test double for pipeline unit tests.
type Scripted struct {
	Responses []string
	pos       int
}

// Complete implements Client.
func (s *Scripted) Complete(req Request) (Response, error) {
	if s.pos >= len(s.Responses) {
		return Response{}, fmt.Errorf("llm: scripted client exhausted after %d responses", s.pos)
	}
	content := s.Responses[s.pos]
	s.pos++
	return Response{
		Content:      content,
		InputTokens:  CountTokens(req.Text()),
		OutputTokens: CountTokens(content),
	}, nil
}
