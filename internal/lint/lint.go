// Package lint is a static Verilog linter playing the role Verilator plays
// in the UVLLM paper (Sec. III-A): it reports syntax errors and a set of
// Verilator-style warnings, several of which ("focused timing-related
// warnings") are mechanically fixable by the pre-processing script
// templates of Algorithm 1.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"uvllm/internal/verilog"
)

// Severity distinguishes errors (must be repaired by the LLM) from
// warnings (candidates for script templates).
type Severity int

// Severities.
const (
	SevError Severity = iota
	SevWarning
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == SevError {
		return "Error"
	}
	return "Warning"
}

// Diagnostic codes, mirroring Verilator's naming where one exists.
const (
	CodeSyntax     = "SYNTAX"     // parse error
	CodeUndeclared = "UNDECLARED" // identifier used without declaration
	CodeRedeclared = "REDECLARED" // name declared twice
	CodeCombDelay  = "COMBDLY"    // non-blocking assignment in combinational block
	CodeBlockSeq   = "BLKSEQ"     // blocking assignment in sequential block
	CodeWidth      = "WIDTH"      // assignment width mismatch
	CodeLatch      = "LATCH"      // inferred latch in combinational block
	CodeCaseDef    = "CASEINCOMPLETE"
	CodeSens       = "INCOMPLETESENS" // combinational list missing a read signal
	CodeSyncAsync  = "SYNCASYNC"      // async-style reset missing from edge list
	CodeMultiDrive = "MULTIDRIVEN"
	CodeUndriven   = "UNDRIVEN"
	CodeUnused     = "UNUSED"
	CodeProcWire   = "PROCASSWIRE" // procedural assignment to a wire
	CodeContReg    = "CONTASSREG"  // continuous assignment to a reg
	CodePinUnknown = "PINNOTFOUND" // instance pin does not exist on module
	CodePinMissing = "PINMISSING"  // module port left unconnected
	CodePinWidth   = "PINWIDTH"    // instance pin width mismatch
)

// Diag is one linter finding.
type Diag struct {
	Severity Severity
	Code     string
	Line     int
	Col      int
	Signal   string // primary signal involved, if any
	Msg      string
}

// String renders the diagnostic in Verilator's %Severity-Code format.
func (d Diag) String() string {
	return fmt.Sprintf("%%%s-%s: %d:%d: %s", d.Severity, d.Code, d.Line, d.Col, d.Msg)
}

// Report is the result of linting one source file.
type Report struct {
	Diags []Diag
}

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []Diag { return r.filter(SevError) }

// Warnings returns the warning-severity diagnostics.
func (r *Report) Warnings() []Diag { return r.filter(SevWarning) }

func (r *Report) filter(sev Severity) []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Severity == sev {
			out = append(out, d)
		}
	}
	return out
}

// Clean reports whether there are no errors and no focused warnings.
func (r *Report) Clean() bool {
	return len(r.Errors()) == 0 && len(r.FocusedWarnings()) == 0
}

// FocusedWarnings returns the timing-related warnings that Algorithm 1
// repairs with script templates (the paper's running example is COMBDLY:
// "<=" in combinational logic replaced by "=").
func (r *Report) FocusedWarnings() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Severity != SevWarning {
			continue
		}
		switch d.Code {
		case CodeCombDelay, CodeBlockSeq, CodeSens, CodeSyncAsync:
			out = append(out, d)
		}
	}
	return out
}

// Format renders the report as a Verilator-like log, one line per finding.
func (r *Report) Format() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Lint parses and checks src, returning all diagnostics.
func Lint(src string) *Report {
	f, perrs := verilog.Parse(src)
	r := &Report{}
	for _, e := range perrs {
		r.Diags = append(r.Diags, Diag{
			Severity: SevError, Code: CodeSyntax,
			Line: e.Line, Col: e.Col, Msg: e.Msg,
		})
	}
	// Semantic checks only make sense on a syntactically valid file: a
	// recovered AST after errors produces noisy follow-on findings that a
	// real linter would suppress too.
	if len(perrs) == 0 {
		for _, m := range f.Modules {
			lintModule(r, f, m)
		}
	}
	sortDiags(r.Diags)
	return r
}

// LintFile checks an already-parsed file (no syntax errors assumed).
func LintFile(f *verilog.SourceFile) *Report {
	r := &Report{}
	for _, m := range f.Modules {
		lintModule(r, f, m)
	}
	sortDiags(r.Diags)
	return r
}

func sortDiags(ds []Diag) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		if ds[i].Col != ds[j].Col {
			return ds[i].Col < ds[j].Col
		}
		return ds[i].Code < ds[j].Code
	})
}

// symKind classifies a declared name.
type symKind int

const (
	symWire symKind = iota
	symReg
	symInteger
	symParam
)

type symbol struct {
	name  string
	kind  symKind
	width int
	isMem bool
	port  *verilog.Port // nil for non-ports
	line  int
}

type modScope struct {
	mod  *verilog.Module
	env  verilog.ConstEnv
	syms map[string]*symbol
}

func buildScope(r *Report, m *verilog.Module) *modScope {
	sc := &modScope{mod: m, syms: map[string]*symbol{}}
	env, err := verilog.ModuleParams(m)
	if err != nil {
		env = verilog.ConstEnv{}
	}
	sc.env = env

	declare := func(s *symbol) {
		if old, dup := sc.syms[s.name]; dup {
			// A port redeclared as reg/wire in the body is normal
			// Verilog-1995 style, not a redeclaration.
			if old.port != nil && s.port == nil {
				old.kind = s.kind
				if s.width > 1 || old.width == 0 {
					old.width = s.width
				}
				return
			}
			r.Diags = append(r.Diags, Diag{
				Severity: SevError, Code: CodeRedeclared, Line: s.line,
				Signal: s.name,
				Msg:    fmt.Sprintf("%q previously declared at line %d", s.name, old.line),
			})
			return
		}
		sc.syms[s.name] = s
	}

	for _, p := range m.Ports {
		w, werr := verilog.RangeWidth(p.Range, env)
		if werr != nil {
			w = 1
		}
		kind := symWire
		if p.IsReg {
			kind = symReg
		}
		declare(&symbol{name: p.Name, kind: kind, width: w, port: p, line: p.Line})
	}
	for _, it := range m.Items {
		switch v := it.(type) {
		case *verilog.ParamDecl:
			declare(&symbol{name: v.Name, kind: symParam, width: 32, line: v.Line})
		case *verilog.NetDecl:
			w, werr := verilog.RangeWidth(v.Range, env)
			if werr != nil {
				w = 1
			}
			kind := symWire
			switch v.Kind {
			case verilog.KindReg:
				kind = symReg
			case verilog.KindInteger:
				kind = symInteger
				w = 32
			}
			for _, n := range v.Names {
				declare(&symbol{
					name: n.Name, kind: kind, width: w,
					isMem: n.ArrayRange != nil, line: n.Line,
				})
			}
		}
	}
	return sc
}

func lintModule(r *Report, f *verilog.SourceFile, m *verilog.Module) {
	sc := buildScope(r, m)

	reads := map[string]int{}    // name -> first read line
	drives := map[string][]int{} // name -> driver lines

	noteRead := func(e verilog.Expr) {
		verilog.WalkExpr(e, func(x verilog.Expr) bool {
			if id, ok := x.(*verilog.Ident); ok {
				if _, ok := sc.syms[id.Name]; !ok {
					r.Diags = append(r.Diags, Diag{
						Severity: SevError, Code: CodeUndeclared,
						Line: id.Line, Signal: id.Name,
						Msg: fmt.Sprintf("signal %q is used but not declared", id.Name),
					})
					// Declare it to suppress repeats.
					sc.syms[id.Name] = &symbol{name: id.Name, kind: symWire, width: 1, line: id.Line}
					return true
				}
				if _, seen := reads[id.Name]; !seen {
					reads[id.Name] = id.Line
				}
			}
			return true
		})
	}
	noteDrive := func(e verilog.Expr, line int) {
		for _, name := range verilog.LHSTargets(e) {
			if _, ok := sc.syms[name]; !ok {
				r.Diags = append(r.Diags, Diag{
					Severity: SevError, Code: CodeUndeclared,
					Line: line, Signal: name,
					Msg: fmt.Sprintf("signal %q is assigned but not declared", name),
				})
				sc.syms[name] = &symbol{name: name, kind: symReg, width: 1, line: line}
				continue
			}
			drives[name] = append(drives[name], line)
		}
		// Index/part-select expressions on the LHS are reads.
		switch v := e.(type) {
		case *verilog.Index:
			noteRead(v.Index)
		case *verilog.PartSelect:
			noteRead(v.MSB)
			noteRead(v.LSB)
		case *verilog.Concat:
			for _, p := range v.Parts {
				switch pv := p.(type) {
				case *verilog.Index:
					noteRead(pv.Index)
				case *verilog.PartSelect:
					noteRead(pv.MSB)
					noteRead(pv.LSB)
				}
			}
		}
	}

	for _, it := range m.Items {
		switch v := it.(type) {
		case *verilog.NetDecl:
			for _, n := range v.Names {
				if n.Init != nil {
					noteRead(n.Init)
					drives[n.Name] = append(drives[n.Name], n.Line)
				}
			}
		case *verilog.ContAssign:
			lintContAssign(r, sc, v)
			noteDrive(v.LHS, v.Line)
			noteRead(v.RHS)
		case *verilog.AlwaysBlock:
			lintAlways(r, sc, v, noteRead, noteDrive)
		case *verilog.InitialBlock:
			verilog.WalkStmt(v.Body, func(s verilog.Stmt) bool {
				if a, ok := s.(*verilog.Assign); ok {
					noteDrive(a.LHS, a.Line)
					noteRead(a.RHS)
				}
				return true
			})
		case *verilog.Instance:
			lintInstance(r, f, sc, v, noteRead, noteDrive)
		}
	}

	lintDrivers(r, sc, m, reads, drives)
}

func lintContAssign(r *Report, sc *modScope, a *verilog.ContAssign) {
	for _, name := range verilog.LHSTargets(a.LHS) {
		if s, ok := sc.syms[name]; ok && s.kind == symReg {
			r.Diags = append(r.Diags, Diag{
				Severity: SevError, Code: CodeContReg, Line: a.Line, Signal: name,
				Msg: fmt.Sprintf("continuous assignment to reg %q (declare it as wire)", name),
			})
		}
	}
	checkAssignWidth(r, sc, a.LHS, a.RHS, a.Line)
}

func lintAlways(r *Report, sc *modScope, ab *verilog.AlwaysBlock,
	noteRead func(verilog.Expr), noteDrive func(verilog.Expr, int)) {

	edged := ab.Sens != nil && ab.Sens.Edged()

	// Collect reads/drives and assignment-style findings.
	verilog.WalkStmt(ab.Body, func(s verilog.Stmt) bool {
		switch v := s.(type) {
		case *verilog.Assign:
			noteDrive(v.LHS, v.Line)
			noteRead(v.RHS)
			targets := verilog.LHSTargets(v.LHS)
			var first string
			if len(targets) > 0 {
				first = targets[0]
			}
			for _, name := range targets {
				if sym, ok := sc.syms[name]; ok && sym.kind == symWire {
					r.Diags = append(r.Diags, Diag{
						Severity: SevError, Code: CodeProcWire, Line: v.Line, Signal: name,
						Msg: fmt.Sprintf("procedural assignment to wire %q (declare it as reg)", name),
					})
				}
			}
			if !edged && !v.Blocking {
				r.Diags = append(r.Diags, Diag{
					Severity: SevWarning, Code: CodeCombDelay, Line: v.Line, Signal: first,
					Msg: "non-blocking assignment '<=' in combinational block (use '=')",
				})
			}
			if edged && v.Blocking {
				// Loop-index updates are conventional blocking even in
				// sequential blocks; only flag non-integer targets.
				if sym, ok := sc.syms[first]; !ok || sym.kind != symInteger {
					r.Diags = append(r.Diags, Diag{
						Severity: SevWarning, Code: CodeBlockSeq, Line: v.Line, Signal: first,
						Msg: "blocking assignment '=' in sequential block (use '<=')",
					})
				}
			}
			checkAssignWidth(r, sc, v.LHS, v.RHS, v.Line)
		case *verilog.If:
			noteRead(v.Cond)
		case *verilog.Case:
			noteRead(v.Expr)
			for _, it := range v.Items {
				for _, e := range it.Exprs {
					noteRead(e)
				}
			}
			if !hasDefault(v) && !edged {
				r.Diags = append(r.Diags, Diag{
					Severity: SevWarning, Code: CodeCaseDef, Line: v.Line,
					Msg: "case statement without default in combinational block",
				})
			}
		case *verilog.For:
			if v.Init != nil {
				noteDrive(v.Init.LHS, v.Init.Line)
				noteRead(v.Init.RHS)
			}
			noteRead(v.Cond)
			if v.Step != nil {
				noteRead(v.Step.RHS)
			}
		}
		return true
	})

	if !edged {
		lintCombSensitivity(r, sc, ab)
		lintLatch(r, sc, ab)
	} else {
		lintAsyncReset(r, sc, ab)
	}
}

func hasDefault(c *verilog.Case) bool {
	for _, it := range c.Items {
		if it.Exprs == nil {
			return true
		}
	}
	return false
}

// lintCombSensitivity flags combinational blocks with explicit sensitivity
// lists that omit a signal read inside the body.
func lintCombSensitivity(r *Report, sc *modScope, ab *verilog.AlwaysBlock) {
	if ab.Sens == nil || ab.Sens.Star {
		return
	}
	listed := map[string]bool{}
	for _, it := range ab.Sens.Items {
		listed[it.Signal] = true
	}
	// Signals read by the body.
	read := map[string]int{}
	assigned := map[string]bool{}
	verilog.WalkStmt(ab.Body, func(s verilog.Stmt) bool {
		switch v := s.(type) {
		case *verilog.Assign:
			for _, n := range verilog.LHSTargets(v.LHS) {
				assigned[n] = true
			}
			noteExprReads(sc, v.RHS, read)
		case *verilog.If:
			noteExprReads(sc, v.Cond, read)
		case *verilog.Case:
			noteExprReads(sc, v.Expr, read)
		case *verilog.For:
			noteExprReads(sc, v.Cond, read)
		}
		return true
	})
	var missing []string
	for name, line := range read {
		if !listed[name] && !assigned[name] {
			missing = append(missing, fmt.Sprintf("%s(line %d)", name, line))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		r.Diags = append(r.Diags, Diag{
			Severity: SevWarning, Code: CodeSens, Line: ab.Line,
			Msg: fmt.Sprintf("sensitivity list missing signals read in block: %s (use @(*))",
				strings.Join(missing, ", ")),
		})
	}
}

func noteExprReads(sc *modScope, e verilog.Expr, read map[string]int) {
	verilog.WalkExpr(e, func(x verilog.Expr) bool {
		if id, ok := x.(*verilog.Ident); ok {
			if s, ok := sc.syms[id.Name]; ok && s.kind != symParam && s.kind != symInteger {
				if _, seen := read[id.Name]; !seen {
					read[id.Name] = id.Line
				}
			}
		}
		return true
	})
}

// lintLatch reports combinational blocks where a target is assigned in some
// but not all branches of a top-level if without else.
func lintLatch(r *Report, sc *modScope, ab *verilog.AlwaysBlock) {
	assignedAlways := stmtAssignsAll(ab.Body)
	assignedSomewhere := map[string]int{}
	verilog.WalkStmt(ab.Body, func(s verilog.Stmt) bool {
		if a, ok := s.(*verilog.Assign); ok {
			for _, n := range verilog.LHSTargets(a.LHS) {
				if _, seen := assignedSomewhere[n]; !seen {
					assignedSomewhere[n] = a.Line
				}
			}
		}
		return true
	})
	var names []string
	for n := range assignedSomewhere {
		if !assignedAlways[n] {
			if s, ok := sc.syms[n]; ok && s.kind == symInteger {
				continue
			}
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		r.Diags = append(r.Diags, Diag{
			Severity: SevWarning, Code: CodeLatch, Line: assignedSomewhere[n], Signal: n,
			Msg: fmt.Sprintf("latch inferred for %q (not assigned in all paths of combinational block)", n),
		})
	}
}

// stmtAssignsAll computes the set of signals assigned on every control path
// through s.
func stmtAssignsAll(s verilog.Stmt) map[string]bool {
	switch v := s.(type) {
	case *verilog.Assign:
		out := map[string]bool{}
		for _, n := range verilog.LHSTargets(v.LHS) {
			out[n] = true
		}
		return out
	case *verilog.Block:
		out := map[string]bool{}
		for _, st := range v.Stmts {
			for n := range stmtAssignsAll(st) {
				out[n] = true
			}
		}
		return out
	case *verilog.If:
		if v.Else == nil {
			return map[string]bool{}
		}
		a, b := stmtAssignsAll(v.Then), stmtAssignsAll(v.Else)
		out := map[string]bool{}
		for n := range a {
			if b[n] {
				out[n] = true
			}
		}
		return out
	case *verilog.Case:
		var sets []map[string]bool
		hasDef := false
		for _, it := range v.Items {
			sets = append(sets, stmtAssignsAll(it.Body))
			if it.Exprs == nil {
				hasDef = true
			}
		}
		if !hasDef || len(sets) == 0 {
			return map[string]bool{}
		}
		out := sets[0]
		for _, s2 := range sets[1:] {
			for n := range out {
				if !s2[n] {
					delete(out, n)
				}
			}
		}
		return out
	case *verilog.For:
		// Loop bodies are conservatively treated as always executing once
		// (benchmark loops have constant bounds > 0).
		return stmtAssignsAll(v.Body)
	}
	return map[string]bool{}
}

// lintAsyncReset flags sequential blocks whose body tests a reset-style
// signal that is not in the edge sensitivity list — the "wrong sensitivity"
// fault of paper Table I (always @(posedge clk) with if (!rst_n) ...).
func lintAsyncReset(r *Report, sc *modScope, ab *verilog.AlwaysBlock) {
	inList := map[string]bool{}
	for _, it := range ab.Sens.Items {
		inList[it.Signal] = true
	}
	body := ab.Body
	if blk, ok := body.(*verilog.Block); ok && len(blk.Stmts) > 0 {
		body = blk.Stmts[0]
	}
	iff, ok := body.(*verilog.If)
	if !ok {
		return
	}
	sig, active := resetCondSignal(iff.Cond)
	if sig == "" || inList[sig] {
		return
	}
	if !looksLikeReset(sig) {
		return
	}
	edge := "negedge"
	if active {
		edge = "posedge"
	}
	r.Diags = append(r.Diags, Diag{
		Severity: SevWarning, Code: CodeSyncAsync, Line: ab.Line, Signal: sig,
		Msg: fmt.Sprintf("reset %q tested in sequential block but missing from sensitivity list (add %s %s)", sig, edge, sig),
	})
}

// resetCondSignal recognizes !sig, ~sig, sig==0 (active-low, returns false)
// and bare sig or sig==1 (active-high, returns true).
func resetCondSignal(e verilog.Expr) (string, bool) {
	switch v := e.(type) {
	case *verilog.Unary:
		if v.Op == "!" || v.Op == "~" {
			if id, ok := v.X.(*verilog.Ident); ok {
				return id.Name, false
			}
		}
	case *verilog.Binary:
		if v.Op == "==" {
			id, ok1 := v.X.(*verilog.Ident)
			num, ok2 := v.Y.(*verilog.Number)
			if ok1 && ok2 {
				return id.Name, num.Value != 0
			}
		}
	case *verilog.Ident:
		return v.Name, true
	}
	return "", false
}

func looksLikeReset(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "rst") || strings.Contains(n, "reset") || strings.Contains(n, "clear")
}

// lintInstance checks named connections against the instantiated module.
func lintInstance(r *Report, f *verilog.SourceFile, sc *modScope, inst *verilog.Instance,
	noteRead func(verilog.Expr), noteDrive func(verilog.Expr, int)) {

	target := f.Module(inst.ModName)
	if target == nil {
		r.Diags = append(r.Diags, Diag{
			Severity: SevError, Code: CodePinUnknown, Line: inst.Line,
			Msg: fmt.Sprintf("instantiated module %q not found", inst.ModName),
		})
		return
	}
	env, err := verilog.ModuleParams(target)
	if err != nil {
		env = verilog.ConstEnv{}
	}
	connected := map[string]bool{}
	for _, c := range inst.Conns {
		if strings.HasPrefix(c.Port, "$") {
			// Ordinal connection: map by position.
			idx := 0
			fmt.Sscanf(c.Port, "$%d", &idx)
			if idx < len(target.Ports) {
				checkPin(r, sc, env, target.Ports[idx], c, inst, noteRead, noteDrive)
				connected[target.Ports[idx].Name] = true
			}
			continue
		}
		port := target.Port(c.Port)
		if port == nil {
			r.Diags = append(r.Diags, Diag{
				Severity: SevError, Code: CodePinUnknown, Line: c.Line, Signal: c.Port,
				Msg: fmt.Sprintf("module %q has no port %q", inst.ModName, c.Port),
			})
			continue
		}
		connected[port.Name] = true
		checkPin(r, sc, env, port, c, inst, noteRead, noteDrive)
	}
	for _, p := range target.Ports {
		if !connected[p.Name] {
			r.Diags = append(r.Diags, Diag{
				Severity: SevWarning, Code: CodePinMissing, Line: inst.Line, Signal: p.Name,
				Msg: fmt.Sprintf("port %q of %s left unconnected", p.Name, inst.ModName),
			})
		}
	}
}

func checkPin(r *Report, sc *modScope, env verilog.ConstEnv, port *verilog.Port,
	c verilog.PortConn, inst *verilog.Instance,
	noteRead func(verilog.Expr), noteDrive func(verilog.Expr, int)) {

	if c.Expr == nil {
		return
	}
	if port.Dir == verilog.DirOutput {
		noteDrive(c.Expr, c.Line)
	} else {
		noteRead(c.Expr)
	}
	pw, err := verilog.RangeWidth(port.Range, env)
	if err != nil {
		return
	}
	ew := exprWidth(sc, c.Expr)
	if ew > 0 && ew != pw {
		r.Diags = append(r.Diags, Diag{
			Severity: SevWarning, Code: CodePinWidth, Line: c.Line, Signal: port.Name,
			Msg: fmt.Sprintf("port %q of %s is %d bits but connection is %d bits",
				port.Name, inst.ModName, pw, ew),
		})
	}
}

// lintDrivers reports multiply-driven, undriven and unused signals.
func lintDrivers(r *Report, sc *modScope, m *verilog.Module, reads map[string]int, drives map[string][]int) {
	var names []string
	for n := range sc.syms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := sc.syms[n]
		if s.kind == symParam {
			continue
		}
		isInput := s.port != nil && s.port.Dir == verilog.DirInput
		isOutput := s.port != nil && s.port.Dir == verilog.DirOutput
		dl := drives[n]
		_, isRead := reads[n]

		if !isInput && len(dl) == 0 && (isRead || isOutput) {
			r.Diags = append(r.Diags, Diag{
				Severity: SevWarning, Code: CodeUndriven, Line: s.line, Signal: n,
				Msg: fmt.Sprintf("signal %q is read but never driven", n),
			})
		}
		if !isRead && !isOutput && len(dl) > 0 && s.kind != symInteger {
			r.Diags = append(r.Diags, Diag{
				Severity: SevWarning, Code: CodeUnused, Line: s.line, Signal: n,
				Msg: fmt.Sprintf("signal %q is driven but never read", n),
			})
		}
		if isInput && len(dl) > 0 {
			r.Diags = append(r.Diags, Diag{
				Severity: SevError, Code: CodeMultiDrive, Line: dl[0], Signal: n,
				Msg: fmt.Sprintf("input port %q is driven inside the module", n),
			})
		}
	}
}

// exprWidth computes the bit width of e under the module scope, or 0 when
// indeterminate (unsized literals, unknown signals).
func exprWidth(sc *modScope, e verilog.Expr) int {
	switch v := e.(type) {
	case *verilog.Number:
		return v.Width
	case *verilog.Ident:
		if s, ok := sc.syms[v.Name]; ok {
			if s.kind == symParam {
				return 0 // parameters adapt to context
			}
			return s.width
		}
		return 0
	case *verilog.Unary:
		switch v.Op {
		case "!", "&", "|", "^", "~&", "~|", "~^":
			return 1
		}
		return exprWidth(sc, v.X)
	case *verilog.Binary:
		switch v.Op {
		case "==", "!=", "===", "!==", "<", ">", "<=", ">=", "&&", "||":
			return 1
		case "<<", ">>", "<<<", ">>>":
			return exprWidth(sc, v.X)
		}
		a, b := exprWidth(sc, v.X), exprWidth(sc, v.Y)
		if a == 0 || b == 0 {
			return 0
		}
		if a > b {
			return a
		}
		return b
	case *verilog.Ternary:
		a, b := exprWidth(sc, v.Then), exprWidth(sc, v.Else)
		if a == 0 || b == 0 {
			return 0
		}
		if a > b {
			return a
		}
		return b
	case *verilog.Index:
		if id, ok := v.X.(*verilog.Ident); ok {
			if s, ok := sc.syms[id.Name]; ok && s.isMem {
				return s.width
			}
		}
		return 1
	case *verilog.PartSelect:
		msb, err1 := verilog.EvalConst(v.MSB, sc.env)
		lsb, err2 := verilog.EvalConst(v.LSB, sc.env)
		if err1 != nil || err2 != nil {
			return 0
		}
		w := msb - lsb
		if w < 0 {
			w = -w
		}
		return int(w) + 1
	case *verilog.Concat:
		total := 0
		for _, p := range v.Parts {
			w := exprWidth(sc, p)
			if w == 0 {
				return 0
			}
			total += w
		}
		return total
	case *verilog.Repl:
		n, err := verilog.EvalConst(v.Count, sc.env)
		if err != nil {
			return 0
		}
		w := exprWidth(sc, v.Value)
		if w == 0 {
			return 0
		}
		return int(n) * w
	}
	return 0
}

// checkAssignWidth emits a WIDTH warning when both sides have known,
// different widths. Single-bit vs unsized and parameter-typed operands are
// exempt, matching Verilator's pragmatic defaults.
func checkAssignWidth(r *Report, sc *modScope, lhs, rhs verilog.Expr, line int) {
	lw := exprWidth(sc, lhs)
	rw := exprWidth(sc, rhs)
	if lw == 0 || rw == 0 || lw == rw {
		return
	}
	// Adding two N-bit values into an N-bit target is idiomatic RTL; only
	// report when widths differ by declaration, i.e. both sides are simple
	// signals/selects, or the RHS is wider than the LHS by a literal's
	// declared width.
	if !simpleOperand(rhs) && rw <= lw {
		return
	}
	if !simpleOperand(rhs) && !simpleOperand(lhs) {
		return
	}
	var sig string
	if t := verilog.LHSTargets(lhs); len(t) > 0 {
		sig = t[0]
	}
	r.Diags = append(r.Diags, Diag{
		Severity: SevWarning, Code: CodeWidth, Line: line, Signal: sig,
		Msg: fmt.Sprintf("assignment width mismatch: LHS is %d bits, RHS is %d bits", lw, rw),
	})
}

func simpleOperand(e verilog.Expr) bool {
	switch e.(type) {
	case *verilog.Ident, *verilog.Number, *verilog.Index, *verilog.PartSelect:
		return true
	}
	return false
}
