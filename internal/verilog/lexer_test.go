package verilog

import "testing"

func lexKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks := Lex(src)
	if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
		t.Fatalf("Lex(%q) did not end with EOF", src)
	}
	return toks[:len(toks)-1]
}

func TestLexIdentifiersAndKeywords(t *testing.T) {
	toks := lexKinds(t, "module adder_8bit; wire _w1; endmodule")
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "module"}, {TokIdent, "adder_8bit"}, {TokPunct, ";"},
		{TokKeyword, "wire"}, {TokIdent, "_w1"}, {TokPunct, ";"},
		{TokKeyword, "endmodule"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %s %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
		text string
	}{
		{"42", TokNumber, "42"},
		{"8'hFF", TokNumber, "8'hFF"},
		{"4'b1010", TokNumber, "4'b1010"},
		{"12'd0", TokNumber, "12'd0"},
		{"'b101", TokNumber, "'b101"},
		{"32'hDEAD_BEEF", TokNumber, "32'hDEAD_BEEF"},
		{"8'bxxxx_zzzz", TokNumber, "8'bxxxx_zzzz"},
		{"8'q3", TokError, "8'q3"}, // malformed base: data-handling fault class
	}
	for _, c := range cases {
		toks := lexKinds(t, c.src)
		if len(toks) != 1 {
			t.Errorf("Lex(%q) = %v, want single token", c.src, toks)
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("Lex(%q) = %v, want %s %q", c.src, toks[0], c.kind, c.text)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexKinds(t, "a <= b == c != d && e || f << 2 >> 1 === g")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokOp {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<=", "==", "!=", "&&", "||", "<<", ">>", "==="}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "a // line comment\n /* block\ncomment */ b")
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if toks[1].Line != 3 {
		t.Errorf("token b on line %d, want 3", toks[1].Line)
	}
}

func TestLexDirectivesSkipped(t *testing.T) {
	toks := lexKinds(t, "`timescale 1ns/1ps\nmodule")
	if len(toks) != 1 || toks[0].Text != "module" {
		t.Fatalf("directive not skipped: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, "ab\n  cd")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("ab at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("cd at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestLexString(t *testing.T) {
	toks := lexKinds(t, `"hello world"`)
	if len(toks) != 1 || toks[0].Kind != TokString || toks[0].Text != "hello world" {
		t.Fatalf("string lexing failed: %v", toks)
	}
}

func TestParseNumberLiteral(t *testing.T) {
	cases := []struct {
		text  string
		width int
		value uint64
		hasXZ bool
		ok    bool
	}{
		{"42", 0, 42, false, true},
		{"8'hFF", 8, 255, false, true},
		{"4'b1010", 4, 10, false, true},
		{"12'd100", 12, 100, false, true},
		{"8'b1010_1010", 8, 0xAA, false, true},
		{"4'bxx10", 4, 2, true, true},
		{"2'd7", 2, 3, false, true}, // truncated to width
		{"8'q3", 0, 0, false, false},
		{"'hZZ", 0, 0, true, true},
	}
	for _, c := range cases {
		w, v, xz, err := ParseNumberLiteral(c.text)
		if c.ok && err != nil {
			t.Errorf("ParseNumberLiteral(%q) error: %v", c.text, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseNumberLiteral(%q) succeeded, want error", c.text)
			}
			continue
		}
		if w != c.width || v != c.value || xz != c.hasXZ {
			t.Errorf("ParseNumberLiteral(%q) = (%d, %d, %v), want (%d, %d, %v)",
				c.text, w, v, xz, c.width, c.value, c.hasXZ)
		}
	}
}
