package core

import (
	"context"
	"strings"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
	"uvllm/internal/uvm"
)

// verifyFault runs the pipeline on one injected fault with the oracle as
// the LLM.
func verifyFault(t *testing.T, f *faultgen.Fault, seed int64, opts Options) Result {
	t.Helper()
	m := f.Meta()
	oracle := llm.NewOracle(llm.Knowledge{
		FaultID: f.ID, Golden: f.Golden, Class: string(f.Class),
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, llm.DefaultProfile(), seed)
	opts.Seed = seed
	return Verify(context.Background(), Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: oracle, Opts: opts,
	})
}

func pickFault(t *testing.T, module string, class faultgen.Class) *faultgen.Fault {
	t.Helper()
	m := dataset.ByName(module)
	fs := faultgen.Generate(m, class)
	if len(fs) == 0 {
		t.Fatalf("no %s fault for %s", class, module)
	}
	return fs[0]
}

// expertPass is the independent validation used in these tests: a fresh
// UVM environment with a different seed and more vectors.
func expertPass(t *testing.T, source, module string) bool {
	t.Helper()
	m := dataset.ByName(module)
	env, err := uvm.NewEnv(uvm.Config{
		Source: source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 999,
	})
	if err != nil {
		return false
	}
	seq := randomSeq(env, 600)
	return env.Run(seq) == 1.0
}

func TestVerifyFixesFunctionalFault(t *testing.T) {
	f := pickFault(t, "counter_12bit", faultgen.FuncLogic)
	fixed := false
	for seed := int64(1); seed <= 12 && !fixed; seed++ {
		res := verifyFault(t, f, seed, Options{})
		if !res.Success {
			continue
		}
		fixed = true
		if res.FixedStage != StageMS && res.FixedStage != StageSL {
			t.Errorf("functional fault fixed in stage %s", res.FixedStage)
		}
		if !expertPass(t, res.Final, f.Module) {
			t.Errorf("repair overfits: fails expert validation\n%s", res.Final)
		}
		if res.Times.Total() <= 0 {
			t.Error("no execution time modeled")
		}
		if res.Usage.Calls == 0 {
			t.Error("no LLM usage recorded for a functional repair")
		}
	}
	if !fixed {
		t.Fatal("no seed fixed an easy counter fault in 12 tries; pipeline broken")
	}
}

func TestVerifyFixesSyntaxFaultInPreproc(t *testing.T) {
	f := pickFault(t, "adder_8bit", faultgen.SynKeywordTypo)
	fixed := false
	for seed := int64(1); seed <= 12 && !fixed; seed++ {
		res := verifyFault(t, f, seed, Options{})
		if res.Success && res.FixedStage == StagePre {
			fixed = true
			if !expertPass(t, res.Final, f.Module) {
				t.Error("preproc repair fails expert validation")
			}
			if res.Times.Pre <= 0 {
				t.Error("preprocessing time not attributed")
			}
		}
	}
	if !fixed {
		t.Fatal("no seed fixed a keyword typo in pre-processing; Alg. 1 path broken")
	}
}

func TestVerifyTemplateFixesSensitivityWithoutLLM(t *testing.T) {
	m := dataset.ByName("edge_detector")
	var fault *faultgen.Fault
	for _, f := range faultgen.Generate(m, faultgen.FuncCondition) {
		if strings.Contains(f.Descr, "negedge rst_n") {
			fault = f
		}
	}
	if fault == nil {
		t.Fatal("no sensitivity fault generated")
	}
	res := verifyFault(t, fault, 3, Options{})
	if !res.Success {
		t.Fatalf("sensitivity fault not fixed: %v", res.Log)
	}
	if res.FixedStage != StagePre {
		t.Errorf("fixed in %s, want pre-processing (script template)", res.FixedStage)
	}
	if res.Usage.Calls != 0 {
		t.Errorf("template fix consumed %d LLM calls, want 0", res.Usage.Calls)
	}
	if !expertPass(t, res.Final, fault.Module) {
		t.Error("template repair fails expert validation")
	}
}

func TestVerifyUnfixableExhaustsIterations(t *testing.T) {
	// An FSM functional fault at an unsolvable seed must run the full
	// budget, keep the best version via rollback, and report failure.
	m := dataset.ByName("seq_detector")
	fs := faultgen.Generate(m, faultgen.FuncLogic)
	if len(fs) == 0 {
		t.Skip("no FSM logic faults")
	}
	f := fs[0]
	for seed := int64(1); seed <= 25; seed++ {
		res := verifyFault(t, f, seed, Options{})
		if res.Success {
			continue
		}
		if res.Iterations != 5 {
			t.Errorf("iterations = %d, want 5 (full budget)", res.Iterations)
		}
		if res.Final == "" {
			t.Error("no final source on failure")
		}
		if res.PassRate >= 1.0 {
			t.Error("failure with pass rate 1.0 is contradictory")
		}
		return
	}
	t.Skip("all 25 seeds solved the FSM fault (profile very generous); acceptable")
}

func TestVerifyRollbackRecordsDamage(t *testing.T) {
	// Across seeds, at least one run of a hard fault must trigger a
	// rollback (hallucinated patch lowered the score).
	m := dataset.ByName("vending_machine")
	fs := faultgen.Generate(m, faultgen.FuncLogic)
	if len(fs) == 0 {
		t.Skip("no faults")
	}
	for seed := int64(1); seed <= 30; seed++ {
		res := verifyFault(t, fs[0], seed, Options{})
		for _, line := range res.Log {
			if strings.Contains(line, "rollback") {
				return // observed
			}
		}
	}
	t.Error("no rollback observed across 30 seeds; damage-repair path never exercised")
}

func TestVerifyCleanDUTPassesImmediately(t *testing.T) {
	m := dataset.ByName("mux4")
	oracle := llm.NewOracle(llm.Knowledge{
		FaultID: "clean", Golden: m.Source, Class: "FuncLogic", Complexity: 1,
	}, llm.DefaultProfile(), 1)
	res := Verify(context.Background(), Input{
		Source: m.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: oracle,
	})
	if !res.Success {
		t.Fatalf("clean DUT failed: %v", res.Log)
	}
	if res.FixedStage != StageNone {
		t.Errorf("clean DUT attributed to stage %s", res.FixedStage)
	}
	if res.Usage.Calls != 0 {
		t.Errorf("clean DUT consumed %d LLM calls", res.Usage.Calls)
	}
	if res.Coverage <= 0 {
		t.Error("coverage not collected")
	}
}

func TestVerifyCompleteMode(t *testing.T) {
	f := pickFault(t, "gray_code", faultgen.FuncLogic)
	fixed := false
	for seed := int64(1); seed <= 15 && !fixed; seed++ {
		res := verifyFault(t, f, seed, Options{Mode: llm.ModeComplete})
		if res.Success {
			fixed = true
			if !expertPass(t, res.Final, f.Module) {
				t.Error("complete-mode repair fails expert validation")
			}
		}
	}
	if !fixed {
		t.Fatal("complete mode never fixed an easy fault")
	}
}

func TestVerifySLModeEngages(t *testing.T) {
	// With SLThreshold=1, the first repair already uses suspicious lines.
	f := pickFault(t, "accu", faultgen.FuncLogic)
	res := verifyFault(t, f, 2, Options{SLThreshold: 1, MaxIterations: 3})
	usedSL := res.Times.SL > 0
	if !usedSL {
		t.Errorf("SL stage never engaged: times=%+v log=%v", res.Times, res.Log)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIterations != 5 || o.SLThreshold != 4 || o.UVMVectors != 500 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.Cost.LLMBaseSeconds == 0 {
		t.Error("cost model not defaulted")
	}
}
