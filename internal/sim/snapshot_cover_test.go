package sim

// Regression tests for the Snapshot/Restore × coverage contract: the
// accumulated map survives a restore untouched (coverage is
// observational), but the FSM sampler's transition history must rewind
// with the instance — otherwise the first post-restore sample records a
// transition out of the pre-restore state that no timeline ever took.

import (
	"fmt"
	"testing"

	"uvllm/internal/cover"
)

// transPoint names an inferred-FSM transition point the way the cover
// plan registers them.
func transPoint(sig string, a, b uint64) cover.Point {
	return cover.Point{Kind: cover.KindTrans, Name: fmt.Sprintf("%s:%d->%d", sig, a, b)}
}

// TestSnapshotRestoreCoverageNoPhantomTransition rewinds a covering
// instance from state 2 back to state 1 and then steps to state 0. The
// recorded transition must be 1->0 (the restored timeline), never 2->0
// (stale pre-restore history).
func TestSnapshotRestoreCoverageNoPhantomTransition(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			p, err := CompileSource(coverFSMSrc, "cfsm", be)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := p.NewInstance()
			if err != nil {
				t.Fatal(err)
			}
			h := NewHarness(inst, "clk")
			if err := h.EnableCover(CoverAll()); err != nil {
				t.Fatal(err)
			}
			if err := h.ApplyReset(2); err != nil {
				t.Fatal(err)
			}
			step := func(in uint64) {
				t.Helper()
				if _, err := h.Cycle(map[string]uint64{"rst_n": 1, "in": in}); err != nil {
					t.Fatal(err)
				}
			}
			step(1) // state 0 -> 1
			sn := inst.Snapshot()
			step(1) // state 1 -> 2
			if got := inst.Get("state"); got != 2 {
				t.Fatalf("state=%d, want 2", got)
			}
			m := h.Coverage()
			hitBefore := m.Hit()
			if err := inst.Restore(sn); err != nil {
				t.Fatal(err)
			}
			if got := inst.Get("state"); got != 1 {
				t.Fatalf("restored state=%d, want 1", got)
			}
			if h.Coverage() != m || m.Hit() != hitBefore {
				t.Fatal("restore must not reset or swap the accumulated coverage map")
			}
			step(0) // restored timeline: state 1 -> 0
			if got := m.Count(transPoint("state", 2, 0)); got != 0 {
				t.Fatalf("phantom transition 2->0 recorded %d times; no timeline took it", got)
			}
			if got := m.Count(transPoint("state", 1, 0)); got != 1 {
				t.Fatalf("real transition 1->0 recorded %d times, want 1", got)
			}
		})
	}
}

// TestSnapshotWithoutCoverageRestoresCleanly restores a snapshot that
// predates EnableCover into a covering instance: the unknown transition
// history must be cleared, so the first post-restore sample records
// occupancy only — never a transition fabricated from stale history.
func TestSnapshotWithoutCoverageRestoresCleanly(t *testing.T) {
	p, err := CompileSource(coverFSMSrc, "cfsm", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := p.NewInstance()
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(inst, "clk")
	sn0 := inst.Snapshot() // coverage not yet enabled
	if err := h.EnableCover(CoverAll()); err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	step := func(in uint64) {
		t.Helper()
		if _, err := h.Cycle(map[string]uint64{"rst_n": 1, "in": in}); err != nil {
			t.Fatal(err)
		}
	}
	step(1) // 0 -> 1
	step(1) // 1 -> 2; sampler history now ends at state 2
	if err := inst.Restore(sn0); err != nil {
		t.Fatal(err)
	}
	m := h.Coverage()
	before := m.Count(transPoint("state", 2, 1))
	step(1) // fresh timeline: 0 -> 1; first sample after a cleared history
	if got := m.Count(transPoint("state", 2, 1)); got != before {
		t.Fatalf("restore from a pre-coverage snapshot fabricated transition 2->1 (%d)", got)
	}
	step(1) // 1 -> 2 must record normally again
	if got := m.Count(transPoint("state", 1, 2)); got < 2 {
		t.Fatalf("transition sampling did not resume after restore: 1->2 count=%d", got)
	}
}
