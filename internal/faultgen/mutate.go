package faultgen

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"uvllm/internal/verilog"
)

// mutation is one candidate source transformation.
type mutation struct {
	src   string // mutated source
	descr string // human-readable record for the error dataset
}

// Mutation is one candidate source transformation of a fault class, exposed
// for callers that inject faults into sources outside the curated dataset
// (the rtlgen differential fuzzer mutates generated designs and checks that
// every mutant still diverges observably from its golden original).
type Mutation struct {
	Source string // mutated source
	Descr  string // what was injected
}

// MutateSource applies one fault class to an arbitrary Verilog source and
// returns every structurally applicable candidate, unvalidated and in a
// deterministic order. Unlike Generate it does not require the source to be
// a registered dataset module and does not run the triggerability check.
func MutateSource(src string, class Class) []Mutation {
	var out []Mutation
	seen := map[string]bool{src: true}
	for _, mu := range mutate(src, class) {
		if seen[mu.src] {
			continue
		}
		seen[mu.src] = true
		out = append(out, Mutation{Source: mu.src, Descr: mu.descr})
	}
	return out
}

// mutate returns the candidate mutations of one class applied to src, in a
// deterministic order. An empty slice marks the class as structurally
// inapplicable to the module (an "×" cell in Fig. 7).
func mutate(src string, class Class) []mutation {
	switch class {
	case SynMissingSemi:
		return mutMissingSemi(src)
	case SynUndeclared:
		return mutUndeclared(src)
	case SynBadOperator:
		return mutBadOperator(src)
	case SynKeywordTypo:
		return mutKeywordTypo(src)
	case SynMalformedLiteral:
		return mutMalformedLiteral(src)
	case FuncDeclType:
		return mutDeclType(src)
	case FuncCondition:
		return mutCondition(src)
	case FuncBitwidth:
		return mutBitwidth(src)
	case FuncLogic:
		return mutLogic(src)
	}
	return nil
}

// replaceNth replaces the n-th (0-based) occurrence of old in s.
func replaceNth(s, old, new string, n int) (string, bool) {
	idx := 0
	for i := 0; ; i++ {
		j := strings.Index(s[idx:], old)
		if j < 0 {
			return s, false
		}
		if i == n {
			at := idx + j
			return s[:at] + new + s[at+len(old):], true
		}
		idx += j + len(old)
	}
}

func lines(src string) []string { return strings.Split(src, "\n") }

func joinLines(ls []string) string { return strings.Join(ls, "\n") }

// --- Syntax classes -------------------------------------------------------

func mutMissingSemi(src string) []mutation {
	var out []mutation
	// Variant: drop the semicolon of the middle statement-like line.
	ls := lines(src)
	var stmtIdx []int
	for i, ln := range ls {
		t := strings.TrimSpace(ln)
		if strings.HasSuffix(t, ";") && (strings.Contains(t, "<=") || strings.Contains(t, "assign") ||
			(strings.Contains(t, "=") && !strings.HasPrefix(t, "parameter") && !strings.HasPrefix(t, "localparam"))) {
			stmtIdx = append(stmtIdx, i)
		}
	}
	if len(stmtIdx) > 0 {
		i := stmtIdx[len(stmtIdx)/2]
		cp := append([]string(nil), ls...)
		cp[i] = strings.TrimSuffix(strings.TrimRight(cp[i], " "), ";")
		out = append(out, mutation{joinLines(cp), fmt.Sprintf("dropped ';' on line %d", i+1)})
	}
	// Variant: drop the first standalone 'end'.
	for i, ln := range ls {
		if strings.TrimSpace(ln) == "end" {
			cp := append([]string(nil), ls[:i]...)
			cp = append(cp, ls[i+1:]...)
			out = append(out, mutation{joinLines(cp), fmt.Sprintf("dropped 'end' on line %d", i+1)})
			break
		}
	}
	// Variant: drop the final 'endmodule'.
	if i := strings.LastIndex(src, "endmodule"); i >= 0 {
		out = append(out, mutation{src[:i] + src[i+len("endmodule"):], "dropped final 'endmodule'"})
	}
	return out
}

var declLineRe = regexp.MustCompile(`(?m)^\s*(wire|reg|integer)\b[^;]*;\s*$`)

func mutUndeclared(src string) []mutation {
	// Delete the first internal declaration line. Modules without internal
	// signals cannot express this class.
	loc := declLineRe.FindStringIndex(src)
	if loc == nil {
		return nil
	}
	line := src[loc[0]:loc[1]]
	end := loc[1]
	if end < len(src) && src[end] == '\n' {
		end++ // remove the whole line, newline included
	}
	mutated := src[:loc[0]] + src[end:]
	return []mutation{{mutated, fmt.Sprintf("deleted declaration %q", strings.TrimSpace(line))}}
}

func mutBadOperator(src string) []mutation {
	var out []mutation
	if s, ok := replaceNth(src, "<=", "=<", 0); ok && strings.Contains(src, "always") {
		// Only inside procedural code does '=<' parse as a malformed
		// assignment; "a <= b" in an assign is a comparison. Restrict to
		// sources with always blocks where the first '<=' is procedural.
		firstAlways := strings.Index(src, "always")
		firstNB := strings.Index(src, "<=")
		if firstAlways >= 0 && firstNB > firstAlways {
			out = append(out, mutation{s, "replaced '<=' with malformed '=<'"})
		}
	}
	if m := regexp.MustCompile(`assign (\w+) =`).FindStringSubmatchIndex(src); m != nil {
		s := src[:m[0]] + "assign " + src[m[2]:m[3]] + " ==" + src[m[1]:]
		out = append(out, mutation{s, "replaced assign '=' with '=='"})
	}
	if s, ok := replaceNth(src, " ? ", " ?? ", 0); ok {
		out = append(out, mutation{s, "duplicated ternary '?' operator"})
	}
	return out
}

func mutKeywordTypo(src string) []mutation {
	var out []mutation
	try := func(old, new, what string) {
		if s, ok := replaceNth(src, old, new, 0); ok {
			out = append(out, mutation{s, what})
		}
	}
	try("always @", "alway @", "misspelled keyword 'always'")
	try("assign ", "asign ", "misspelled keyword 'assign'")
	try("begin", "begn", "misspelled keyword 'begin'")
	try("endmodule", "endmodul", "misspelled keyword 'endmodule'")
	return out
}

var basedLiteralRe = regexp.MustCompile(`(\d+)'([bdh])`)

func mutMalformedLiteral(src string) []mutation {
	m := basedLiteralRe.FindStringSubmatchIndex(src)
	if m == nil {
		return nil
	}
	s := src[:m[4]] + "q" + src[m[5]:]
	return []mutation{{s, fmt.Sprintf("corrupted literal base %q to 'q'", src[m[0]:m[1]])}}
}

// --- Functional classes ----------------------------------------------------

var declWidthRe = regexp.MustCompile(`(output reg |output |reg )\[(\d+):0\]`)

func mutDeclType(src string) []mutation {
	var out []mutation
	// Variant: narrow a declared vector by one bit (silent truncation).
	if m := declWidthRe.FindStringSubmatchIndex(src); m != nil {
		n, _ := strconv.Atoi(src[m[4]:m[5]])
		if n >= 2 {
			s := src[:m[4]] + strconv.Itoa(n-1) + src[m[5]:]
			out = append(out, mutation{s, fmt.Sprintf("narrowed declaration [%d:0] to [%d:0]", n, n-1)})
		}
	}
	// Variant: drop 'reg' from an output declaration (type misuse).
	if s, ok := replaceNth(src, "output reg ", "output ", 0); ok {
		out = append(out, mutation{s, "dropped 'reg' from output declaration"})
	}
	return out
}

var (
	forBoundRe = regexp.MustCompile(`< (\d+); \w+ = \w+ \+ 1`)
	eqHexRe    = regexp.MustCompile(`== (\d+)'h([0-9A-Fa-f]+)`)
	eqDecRe    = regexp.MustCompile(`== (\d+)'d(\d+)`)
	timerRe    = regexp.MustCompile(`([A-Z_]+_T) - 1`)
	binConstRe = regexp.MustCompile(`(\d+)'b([01]+)`)
)

func mutCondition(src string) []mutation {
	var out []mutation
	// Variant: wrong judgment value (Table I: for(i<7) vs for(i<15)).
	switch {
	case forBoundRe.MatchString(src):
		m := forBoundRe.FindStringSubmatchIndex(src)
		n, _ := strconv.Atoi(src[m[2]:m[3]])
		if n > 1 {
			s := src[:m[2]] + strconv.Itoa(n-1) + src[m[3]:]
			out = append(out, mutation{s, fmt.Sprintf("changed loop bound %d to %d", n, n-1)})
		}
	case timerRe.MatchString(src):
		m := timerRe.FindStringSubmatchIndex(src)
		s := src[:m[0]] + src[m[2]:m[3]] + " - 2" + src[m[1]:]
		out = append(out, mutation{s, "changed timer comparison from -1 to -2"})
	case eqHexRe.MatchString(src):
		m := eqHexRe.FindStringSubmatchIndex(src)
		v, _ := strconv.ParseUint(src[m[4]:m[5]], 16, 64)
		s := src[:m[4]] + strconv.FormatUint(v>>1, 16) + src[m[5]:]
		out = append(out, mutation{s, "halved comparison constant"})
	case eqDecRe.MatchString(src):
		m := eqDecRe.FindStringSubmatchIndex(src)
		v, _ := strconv.ParseUint(src[m[4]:m[5]], 10, 64)
		s := src[:m[4]] + strconv.FormatUint(v+1, 10) + src[m[5]:]
		out = append(out, mutation{s, "incremented comparison constant"})
	}
	// Variant: wrong sensitivity (Table I): drop the async reset edge or
	// narrow a @(*) list.
	if s, ok := replaceNth(src, " or negedge rst_n", "", 0); ok {
		out = append(out, mutation{s, "removed 'or negedge rst_n' from sensitivity list"})
	} else if strings.Contains(src, "@(*)") {
		if name := firstBodySignal(src); name != "" {
			s, _ := replaceNth(src, "@(*)", "@("+name+")", 0)
			out = append(out, mutation{s, fmt.Sprintf("narrowed @(*) to @(%s)", name)})
		}
	}
	// Variant: assignment timing misuse (blocking vs non-blocking), the
	// COMBDLY/BLKSEQ warnings the pre-processing templates repair.
	firstEdge := strings.Index(src, "posedge")
	firstNB := strings.Index(src, " <= ")
	if firstEdge >= 0 && firstNB > firstEdge {
		s, _ := replaceNth(src, " <= ", " = ", 0)
		out = append(out, mutation{s, "used blocking '=' in sequential block"})
	} else if at := strings.Index(src, "@(*)"); at >= 0 {
		// Swap the first blocking assignment inside a @(*) block.
		if i := strings.Index(src[at:], " = "); i > 0 {
			s := src[:at+i] + " <= " + src[at+i+len(" = "):]
			out = append(out, mutation{s, "used non-blocking '<=' in combinational block"})
		}
	}
	return out
}

// firstBodySignal finds an identifier read inside the module body to use
// as a deliberately-too-narrow sensitivity list.
func firstBodySignal(src string) string {
	m := regexp.MustCompile(`case \((\w+)\)`).FindStringSubmatch(src)
	if m != nil {
		return m[1]
	}
	m = regexp.MustCompile(`if \((\w+)\)`).FindStringSubmatch(src)
	if m != nil {
		return m[1]
	}
	m = regexp.MustCompile(`= (\w+) `).FindStringSubmatch(src)
	if m != nil {
		return m[1]
	}
	return ""
}

var partSelRe = regexp.MustCompile(`(\w+)\[(\d+):(\d+)\]`)

func mutBitwidth(src string) []mutation {
	// Narrow the first part-select appearing on the right of an '=' or in
	// an instance connection (declaration ranges are excluded by requiring
	// the line not to start with a declaration keyword).
	var out []mutation
	for _, m := range partSelRe.FindAllStringSubmatchIndex(src, -1) {
		lineStart := strings.LastIndexByte(src[:m[0]], '\n') + 1
		line := src[lineStart:]
		if i := strings.IndexByte(line, '\n'); i >= 0 {
			line = line[:i]
		}
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "input") || strings.HasPrefix(t, "output") ||
			strings.HasPrefix(t, "wire") || strings.HasPrefix(t, "reg") ||
			strings.HasPrefix(t, "integer") || strings.HasPrefix(t, "module") {
			continue
		}
		msb, _ := strconv.Atoi(src[m[4]:m[5]])
		lsb, _ := strconv.Atoi(src[m[6]:m[7]])
		if msb <= lsb {
			continue
		}
		s := src[:m[4]] + strconv.Itoa(msb-1) + src[m[5]:]
		out = append(out, mutation{s, fmt.Sprintf("narrowed part-select [%d:%d] to [%d:%d]", msb, lsb, msb-1, lsb)})
		break
	}
	return out
}

func mutLogic(src string) []mutation {
	var out []mutation
	// Variant: variable name misuse (Table I: r1_temp vs r2_temp). Listed
	// first: it is the logic-error shape that template-search tools cannot
	// express with operator/constant swap tables, so the benchmark keeps
	// it when cells are trimmed.
	if vm := mutVariableMisuse(src); vm != nil {
		out = append(out, *vm)
	}
	// Variant: operator misuse (Table I: result = a+b vs a-b), up to two
	// distinct sites inside behavioral code (after the port list).
	opSwaps := []struct{ from, to string }{
		{" + ", " - "}, {" - ", " + "}, {" & ", " | "}, {" | ", " & "},
		{" ^ ", " & "}, {" < ", " > "}, {" > ", " < "},
	}
	body := strings.Index(src, ");")
	if body < 0 {
		body = 0
	}
	sites := 0
	for _, sw := range opSwaps {
		for n := 0; sites < 2; n++ {
			s, ok := replaceNth(src[body:], sw.from, sw.to, n)
			if !ok {
				break
			}
			out = append(out, mutation{src[:body] + s, fmt.Sprintf(
				"operator misuse: %q changed to %q (site %d)",
				strings.TrimSpace(sw.from), strings.TrimSpace(sw.to), n)})
			sites++
		}
		if sites >= 2 {
			break
		}
	}
	// Variant: value misuse (Table I: 32'b0 vs 32'b1), up to two literal
	// sites.
	values := 0
	for _, m := range binConstRe.FindAllStringSubmatchIndex(src, -1) {
		if values >= 2 {
			break
		}
		digits := src[m[4]:m[5]]
		var flipped string
		if strings.ContainsRune(digits, '0') {
			flipped = strings.Replace(digits, "0", "1", 1)
		} else {
			flipped = strings.Replace(digits, "1", "0", 1)
		}
		s := src[:m[4]] + flipped + src[m[5]:]
		out = append(out, mutation{s, fmt.Sprintf("value misuse: '%s changed to '%s", digits, flipped)})
		values++
	}
	if values == 0 {
		for _, m := range regexp.MustCompile(`(\d+)'d(\d+)`).FindAllStringSubmatchIndex(src, -1) {
			if values >= 2 {
				break
			}
			v, _ := strconv.ParseUint(src[m[4]:m[5]], 10, 64)
			s := src[:m[4]] + strconv.FormatUint(v+1, 10) + src[m[5]:]
			out = append(out, mutation{s, "value misuse: constant incremented"})
			values++
		}
	}
	return out
}

// mutVariableMisuse replaces one use of a signal with a different,
// same-width signal (Table I: assign r1 = r1_temp vs r2_temp). It prefers
// swapping two same-width input ports — the classic copy-paste mistake —
// falling back to sibling operands in one expression.
func mutVariableMisuse(src string) *mutation {
	if mu := mutPortMisuse(src); mu != nil {
		return mu
	}
	re := regexp.MustCompile(`([a-z_][a-z0-9_]*) (\+|-|&|\||\^|/|%|\*) ([a-z_][a-z0-9_]*)`)
	for _, m := range re.FindAllStringSubmatchIndex(src, -1) {
		x := src[m[2]:m[3]]
		y := src[m[6]:m[7]]
		if x == y || isVerilogKeywordWord(x) || isVerilogKeywordWord(y) {
			continue
		}
		s := src[:m[2]] + y + src[m[3]:]
		return &mutation{s, fmt.Sprintf("variable misuse: %q replaced with %q", x, y)}
	}
	return nil
}

// mutPortMisuse swaps a body use of one input port for another input port
// of the same width, using the parsed port list of the top (last) module.
func mutPortMisuse(src string) *mutation {
	f, perrs := verilog.Parse(src)
	if len(perrs) > 0 || len(f.Modules) == 0 {
		return nil
	}
	top := f.Modules[len(f.Modules)-1]
	env, err := verilog.ModuleParams(top)
	if err != nil {
		env = verilog.ConstEnv{}
	}
	// Group input ports by width; skip clock/reset-style controls whose
	// misuse would usually be a different fault class.
	byWidth := map[int][]string{}
	for _, pt := range top.InputPorts() {
		switch pt.Name {
		case "clk", "clock", "rst_n", "rst", "reset":
			continue
		}
		w, werr := verilog.RangeWidth(pt.Range, env)
		if werr != nil {
			continue
		}
		byWidth[w] = append(byWidth[w], pt.Name)
	}
	var x, y string
	for _, w := range []int{8, 16, 32, 4, 2, 1, 3, 12, 6, 5, 7} {
		if g := byWidth[w]; len(g) >= 2 {
			x, y = g[0], g[1]
			break
		}
	}
	if x == "" {
		return nil
	}
	// Replace one RHS use of x with y in a behavioral line.
	wordRe := regexp.MustCompile(`\b` + regexp.QuoteMeta(x) + `\b`)
	ls := strings.Split(src, "\n")
	body := false
	for li, line := range ls {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, ");") || t == ");" {
			body = true
			continue
		}
		if !body {
			continue
		}
		if strings.HasPrefix(t, "input") || strings.HasPrefix(t, "output") ||
			strings.HasPrefix(t, "wire") || strings.HasPrefix(t, "reg") ||
			strings.HasPrefix(t, "module") || strings.HasPrefix(t, "//") {
			continue
		}
		loc := wordRe.FindStringIndex(line)
		if loc == nil {
			continue
		}
		// Only replace reads: require the occurrence after an '=' or
		// inside a condition/connection.
		eq := strings.IndexByte(line, '=')
		if eq >= 0 && loc[0] < eq && !strings.Contains(line[:loc[0]], "if") &&
			!strings.Contains(line[:loc[0]], "(") {
			continue
		}
		if eq < 0 && !strings.Contains(line, "(") {
			continue
		}
		mutated := line[:loc[0]] + y + line[loc[1]:]
		cp := append([]string(nil), ls...)
		cp[li] = mutated
		return &mutation{strings.Join(cp, "\n"),
			fmt.Sprintf("variable misuse: %q replaced with %q on line %d", x, y, li+1)}
	}
	return nil
}

func isVerilogKeywordWord(s string) bool {
	switch s {
	case "begin", "end", "if", "else", "posedge", "negedge", "or", "assign", "case":
		return true
	}
	return false
}
