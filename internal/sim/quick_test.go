package sim

import (
	"testing"
	"testing/quick"
)

// Property-based cross-checks of the simulator's arithmetic against Go's:
// the evaluation core must agree with two's-complement 64-bit arithmetic
// masked at declared widths.

func TestQuickAdderMatchesGo(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input [7:0] b, input cin, output [7:0] sum, output cout);
assign {cout, sum} = a + b + {7'd0, cin};
endmodule`, "m")
	prop := func(a, b uint8, cin bool) bool {
		c := uint64(0)
		if cin {
			c = 1
		}
		s.Set("a", uint64(a))
		s.Set("b", uint64(b))
		s.Set("cin", c)
		if err := s.Settle(); err != nil {
			return false
		}
		total := uint64(a) + uint64(b) + c
		return s.Get("sum") == total&0xFF && s.Get("cout") == total>>8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtractionWraps(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input [7:0] b, output [7:0] d);
assign d = a - b;
endmodule`, "m")
	prop := func(a, b uint8) bool {
		s.Set("a", uint64(a))
		s.Set("b", uint64(b))
		if err := s.Settle(); err != nil {
			return false
		}
		return s.Get("d") == uint64(a-b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDivIdentity(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input [7:0] b, output [15:0] p, output [7:0] q, output [7:0] r);
assign p = a * b;
assign q = (b == 8'd0) ? 8'd0 : a / b;
assign r = (b == 8'd0) ? 8'd0 : a % b;
endmodule`, "m")
	prop := func(a, b uint8) bool {
		s.Set("a", uint64(a))
		s.Set("b", uint64(b))
		if err := s.Settle(); err != nil {
			return false
		}
		if s.Get("p") != uint64(a)*uint64(b) {
			return false
		}
		if b == 0 {
			return s.Get("q") == 0 && s.Get("r") == 0
		}
		// Division identity: a == q*b + r.
		return s.Get("q")*uint64(b)+s.Get("r") == uint64(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftConsistency(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r);
assign l = a << n;
assign r = a >> n;
endmodule`, "m")
	prop := func(a uint8, n3 uint8) bool {
		n := uint64(n3 % 8)
		s.Set("a", uint64(a))
		s.Set("n", n)
		if err := s.Settle(); err != nil {
			return false
		}
		return s.Get("l") == (uint64(a)<<n)&0xFF && s.Get("r") == uint64(a)>>n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickReductionsMatchBitLoop(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, output x_and, output x_or, output x_xor);
assign x_and = &a;
assign x_or = |a;
assign x_xor = ^a;
endmodule`, "m")
	prop := func(a uint8) bool {
		s.Set("a", uint64(a))
		if err := s.Settle(); err != nil {
			return false
		}
		and, or, xor := uint64(1), uint64(0), uint64(0)
		for i := 0; i < 8; i++ {
			bit := uint64(a>>i) & 1
			and &= bit
			or |= bit
			xor ^= bit
		}
		return s.Get("x_and") == and && s.Get("x_or") == or && s.Get("x_xor") == xor
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickWidthMask(t *testing.T) {
	prop := func(w8 uint8) bool {
		w := int(w8 % 65)
		m := widthMask(w)
		if w >= 64 {
			return m == ^uint64(0)
		}
		return m == (uint64(1)<<uint(w))-1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCounterNeverSkips: sequential invariant under random enables —
// the counter changes by exactly 0 or 1 (mod 4096) each cycle.
func TestQuickCounterNeverSkips(t *testing.T) {
	m := `module c(input clk, input rst_n, input en, output reg [11:0] count);
always @(posedge clk or negedge rst_n) begin
    if (!rst_n) count <= 12'd0;
    else if (en) count <= count + 12'd1;
end
endmodule`
	s := mustSim(t, m, "c")
	h := NewHarness(s, "clk")
	if err := h.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	prop := func(en bool) bool {
		before := s.Get("count")
		e := uint64(0)
		if en {
			e = 1
		}
		if _, err := h.Cycle(map[string]uint64{"en": e, "rst_n": 1}); err != nil {
			return false
		}
		after := s.Get("count")
		return after == (before+e)&0xFFF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
