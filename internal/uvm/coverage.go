package uvm

import (
	"fmt"
	"sort"
	"strings"

	"uvllm/internal/sim"
)

// Coverage collects the two coverage models the paper's UVM stage relies
// on for its "nearly 100% test coverage" claim:
//
//   - functional input coverage: four value bins per input port
//     (zero, max, low half, high half);
//   - toggle coverage: every output bit observed at both 0 and 1.
type Coverage struct {
	inputs  []sim.PortInfo
	outputs []sim.PortInfo
	bins    map[string][4]bool // per input: zero/max/low/high hit
	seen0   map[string]uint64  // per output: bits seen at 0
	seen1   map[string]uint64  // per output: bits seen at 1
}

// NewCoverage builds a collector for the design's top-level ports.
func NewCoverage(d *sim.Design) *Coverage {
	c := &Coverage{
		bins:  map[string][4]bool{},
		seen0: map[string]uint64{},
		seen1: map[string]uint64{},
	}
	c.inputs = append(c.inputs, d.Inputs()...)
	c.outputs = append(c.outputs, d.Outputs()...)
	return c
}

// Sample records one transaction's input and output values.
func (c *Coverage) Sample(in, out map[string]uint64) {
	for _, p := range c.inputs {
		v, ok := in[p.Name]
		if !ok {
			continue
		}
		max := maskW(p.Width)
		b := c.bins[p.Name]
		switch {
		case v == 0:
			b[0] = true
		case v == max:
			b[1] = true
		}
		if v <= max/2 {
			b[2] = true
		} else {
			b[3] = true
		}
		c.bins[p.Name] = b
	}
	for _, p := range c.outputs {
		v := out[p.Name]
		m := maskW(p.Width)
		c.seen1[p.Name] |= v & m
		c.seen0[p.Name] |= ^v & m
	}
}

// Percent returns combined coverage in [0,100]: the average of input bin
// coverage and output toggle coverage.
func (c *Coverage) Percent() float64 {
	binTotal, binHit := 0, 0
	for _, p := range c.inputs {
		b := c.bins[p.Name]
		n := 4
		if p.Width == 1 {
			n = 2 // zero/max only for single-bit ports
		}
		binTotal += n
		for i := 0; i < n; i++ {
			if b[i] {
				binHit++
			}
		}
	}
	togTotal, togHit := 0, 0
	for _, p := range c.outputs {
		togTotal += 2 * p.Width
		m := maskW(p.Width)
		togHit += popcount(c.seen0[p.Name]&m) + popcount(c.seen1[p.Name]&m)
	}
	total := binTotal + togTotal
	if total == 0 {
		return 0
	}
	return 100 * float64(binHit+togHit) / float64(total)
}

// Report renders a human-readable coverage table.
func (c *Coverage) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coverage: %.1f%%\n", c.Percent())
	var names []string
	for _, p := range c.inputs {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		bin := c.bins[n]
		fmt.Fprintf(&b, "  input %-12s bins[zero=%v max=%v low=%v high=%v]\n", n, bin[0], bin[1], bin[2], bin[3])
	}
	return b.String()
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
