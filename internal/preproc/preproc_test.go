package preproc

import (
	"strings"
	"testing"

	"uvllm/internal/lint"
	"uvllm/internal/llm"
)

func TestTemplateCombDelay(t *testing.T) {
	src := `module m(input a, input b, output reg y);
always @(*) begin
    y <= a & b;
end
endmodule`
	rep := lint.Lint(src)
	out, fixes := ApplyTemplates(src, rep.FocusedWarnings())
	if len(fixes) != 1 || !strings.Contains(fixes[0], "COMBDLY") {
		t.Fatalf("fixes = %v", fixes)
	}
	if !strings.Contains(out, "y = a & b;") {
		t.Errorf("template did not rewrite:\n%s", out)
	}
	if !lint.Lint(out).Clean() {
		t.Errorf("result not clean:\n%s", lint.Lint(out).Format())
	}
}

func TestTemplateBlockSeq(t *testing.T) {
	src := `module m(input clk, input d, output reg q);
always @(posedge clk) begin
    q = d;
end
endmodule`
	rep := lint.Lint(src)
	out, fixes := ApplyTemplates(src, rep.FocusedWarnings())
	if len(fixes) != 1 {
		t.Fatalf("fixes = %v", fixes)
	}
	if !strings.Contains(out, "q <= d;") {
		t.Errorf("template did not rewrite:\n%s", out)
	}
}

func TestTemplateSensitivity(t *testing.T) {
	src := `module m(input a, input b, output reg y);
always @(a) begin
    y = a & b;
end
endmodule`
	rep := lint.Lint(src)
	out, _ := ApplyTemplates(src, rep.FocusedWarnings())
	if !strings.Contains(out, "@(*)") {
		t.Errorf("sensitivity not fixed:\n%s", out)
	}
	if !lint.Lint(out).Clean() {
		t.Errorf("result not clean:\n%s", lint.Lint(out).Format())
	}
}

func TestTemplateSyncAsyncReset(t *testing.T) {
	src := `module m(input clk, input rst_n, input d, output reg q);
always @(posedge clk) begin
    if (!rst_n) begin
        q <= 1'b0;
    end else begin
        q <= d;
    end
end
endmodule`
	rep := lint.Lint(src)
	out, fixes := ApplyTemplates(src, rep.FocusedWarnings())
	if len(fixes) != 1 {
		t.Fatalf("fixes = %v", fixes)
	}
	if !strings.Contains(out, "posedge clk or negedge rst_n") {
		t.Errorf("reset edge not added:\n%s", out)
	}
	if !lint.Lint(out).Clean() {
		t.Errorf("result not clean:\n%s", lint.Lint(out).Format())
	}
}

func TestRunPureTemplatesNoLLM(t *testing.T) {
	src := `module m(input a, input b, output reg y);
always @(*) begin
    y <= a & b;
end
endmodule`
	// A client that fails loudly if consulted.
	client := &llm.Scripted{}
	res := Run(src, "spec", "m", client, Options{}, nil)
	if !res.Clean {
		t.Fatalf("not clean: %v", res.Log)
	}
	if res.LLMCalls != 0 {
		t.Errorf("templates should not consume LLM calls, got %d", res.LLMCalls)
	}
	if len(res.TemplateFixes) == 0 {
		t.Error("no template fixes recorded")
	}
}

func TestRunLLMFixesSyntax(t *testing.T) {
	src := `module m(input a, output w);
asign w = a;
endmodule`
	reply := llm.FormatReply(&llm.RepairReply{
		ModuleName: "m",
		Analysis:   "keyword typo",
		Correct:    []llm.PatchPair{{Original: "asign w = a;", Patched: "assign w = a;"}},
	})
	client := &llm.Scripted{Responses: []string{reply}}
	usage := llm.Usage{}
	res := Run(src, "spec", "m", client, Options{}, &usage)
	if !res.Clean {
		t.Fatalf("not clean after LLM fix: %v", res.Log)
	}
	if res.LLMCalls != 1 || usage.Calls != 1 {
		t.Errorf("LLM calls = %d (usage %d), want 1", res.LLMCalls, usage.Calls)
	}
	if !strings.Contains(res.Source, "assign w = a;") {
		t.Errorf("source not fixed:\n%s", res.Source)
	}
}

func TestRunGivesUpAfterBudget(t *testing.T) {
	src := `module m(input a, output w);
asign w = a;
endmodule`
	// The client keeps returning an unusable reply.
	bad := llm.FormatReply(&llm.RepairReply{ModuleName: "m", Analysis: "hmm",
		Correct: []llm.PatchPair{{Original: "not in source", Patched: "x"}}})
	client := &llm.Scripted{Responses: []string{bad, bad, bad, bad, bad}}
	res := Run(src, "spec", "m", client, Options{MaxIterations: 3}, nil)
	if res.Clean {
		t.Error("cannot be clean with useless patches")
	}
	if res.LLMCalls != 3 {
		t.Errorf("LLM calls = %d, want 3", res.LLMCalls)
	}
}

func TestBlockingAssignIndex(t *testing.T) {
	cases := []struct {
		line string
		want bool
	}{
		{"q = d;", true},
		{"q <= d;", false},
		{"if (a == b) q = d;", true},
		{"x != y;", false},
		{"a >= b;", false},
	}
	for _, c := range cases {
		got := blockingAssignIndex(c.line) >= 0
		if got != c.want {
			t.Errorf("blockingAssignIndex(%q) found=%v, want %v", c.line, got, c.want)
		}
	}
}
