package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"uvllm/internal/cover"
)

// coverFSMSrc is a small Moore machine exercising every coverage model:
// statements, if/case branches, toggles and FSM state/transition
// inference on the "state" register.
const coverFSMSrc = `
module cfsm(clk, rst_n, in, out);
  input clk;
  input rst_n;
  input in;
  output out;
  reg out;
  reg [1:0] state;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) state <= 2'd0;
    else begin
      case (state)
        2'd0: if (in) state <= 2'd1;
        2'd1: begin
          if (in) state <= 2'd2;
          else state <= 2'd0;
        end
        2'd2: state <= 2'd0;
        default: state <= 2'd0;
      endcase
    end
  end
  always @(*) begin
    out = 1'b0;
    if (state == 2'd2) out = 1'b1;
  end
endmodule
`

func coverRun(t *testing.T, backend Backend, cycles int, seed int64) *cover.Map {
	t.Helper()
	s, err := CompileAndNewBackend(coverFSMSrc, "cfsm", backend)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	h := NewHarness(s, "clk")
	if err := h.EnableCover(CoverAll()); err != nil {
		t.Fatalf("EnableCover: %v", err)
	}
	if err := h.ApplyReset(2); err != nil {
		t.Fatalf("reset: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < cycles; i++ {
		if _, err := h.Cycle(map[string]uint64{"rst_n": 1, "in": rng.Uint64() & 1}); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	return h.Coverage()
}

func TestCoverageDisabledByDefault(t *testing.T) {
	s, err := CompileAndNew(coverFSMSrc, "cfsm")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(s, "clk")
	if h.Coverage() != nil || s.CoverEnabled() {
		t.Fatal("coverage must be off by default")
	}
	if _, err := h.Cycle(map[string]uint64{"rst_n": 1, "in": 1}); err != nil {
		t.Fatal(err)
	}
	if h.Coverage() != nil {
		t.Fatal("cycling must not enable coverage")
	}
}

func TestCoverageUniverseAndHits(t *testing.T) {
	m := coverRun(t, BackendCompiled, 40, 7)
	if m == nil {
		t.Fatal("nil coverage map")
	}
	// The universe must be registered up front: FSM states 0,1,2 and the
	// 9 transitions, branch arms for the if/case, statements, toggles.
	for _, p := range []cover.Point{
		{Kind: cover.KindState, Name: "state=0"},
		{Kind: cover.KindState, Name: "state=2"},
		{Kind: cover.KindTrans, Name: "state:1->2"},
		{Kind: cover.KindTrans, Name: "state:2->2"}, // declared, never taken
		{Kind: cover.KindToggle0, Name: "state[1]"},
		{Kind: cover.KindToggle1, Name: "out[0]"},
	} {
		found := false
		for _, q := range m.Points() {
			if q == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %s missing from universe\n%s", p, m.Encode())
		}
	}
	// 40 random cycles on a 3-state machine must occupy every state and
	// hit the 2->2 self-loop never (state 2 always exits to 0).
	if m.Count(cover.Point{Kind: cover.KindState, Name: "state=2"}) == 0 {
		t.Fatalf("state 2 never occupied:\n%s", m.Report(50))
	}
	if m.Count(cover.Point{Kind: cover.KindTrans, Name: "state:2->2"}) != 0 {
		t.Fatal("impossible self-loop 2->2 recorded")
	}
	// The clock is excluded from the toggle universe by the harness.
	for _, q := range m.Points() {
		if q.Name == "clk[0]" {
			t.Fatal("harness clock must be excluded from the toggle universe")
		}
	}
	if m.Percent() <= 0 || m.Percent() > 100 {
		t.Fatalf("Percent out of range: %v", m.Percent())
	}
}

func TestCoverageCrossBackendByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		mC := coverRun(t, BackendCompiled, 50, seed)
		mE := coverRun(t, BackendEventDriven, 50, seed)
		if !bytes.Equal(mC.Encode(), mE.Encode()) {
			t.Fatalf("seed %d: coverage maps differ across backends:\n--- compiled ---\n%s--- event ---\n%s",
				seed, mC.Encode(), mE.Encode())
		}
	}
}

func TestCoverageOptionsSubset(t *testing.T) {
	s, err := CompileAndNew(coverFSMSrc, "cfsm")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(s, "clk")
	if err := h.EnableCover(CoverOptions{Toggles: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Cycle(map[string]uint64{"rst_n": 1, "in": 1}); err != nil {
		t.Fatal(err)
	}
	m := h.Coverage()
	for _, p := range m.Points() {
		if p.Kind != cover.KindToggle0 && p.Kind != cover.KindToggle1 {
			t.Fatalf("toggle-only universe contains %s", p)
		}
	}
	// Disabling drops the map.
	if err := h.EnableCover(CoverOptions{}); err != nil {
		t.Fatal(err)
	}
	if h.Coverage() != nil {
		t.Fatal("zero CoverOptions must disable coverage")
	}
}

func TestCoverageSharedProgramIndependentInstances(t *testing.T) {
	p, err := CompileSource(coverFSMSrc, "cfsm", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cycles int) *cover.Map {
		inst, err := p.NewInstance()
		if err != nil {
			t.Fatal(err)
		}
		h := NewHarness(inst, "clk")
		if err := h.EnableCover(CoverAll()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cycles; i++ {
			if _, err := h.Cycle(map[string]uint64{"rst_n": 1, "in": uint64(i) & 1}); err != nil {
				t.Fatal(err)
			}
		}
		return h.Coverage()
	}
	m1 := run(10)
	m2 := run(1)
	if m1.Hit() <= m2.Hit() {
		t.Fatalf("instances share counters? 10-cycle hit %d <= 1-cycle hit %d", m1.Hit(), m2.Hit())
	}
	// Merging is monotone and idempotent on the universe.
	merged := m2.Clone().Merge(m1)
	if merged.Len() != m1.Len() {
		t.Fatalf("merged universe %d != %d", merged.Len(), m1.Len())
	}
	if merged.Hit() < m1.Hit() {
		t.Fatal("merge lost hits")
	}
}
