package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Status is a job's lifecycle state. Terminal states are StatusDone,
// StatusFailed and StatusDrained.
type Status string

// Job lifecycle states.
const (
	// StatusQueued means the job is waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning means a worker is executing the job.
	StatusRunning Status = "running"
	// StatusDone means the job finished with a passing verdict.
	StatusDone Status = "done"
	// StatusFailed means the job finished with a failing verdict or
	// could not run.
	StatusFailed Status = "failed"
	// StatusDrained means the job was still queued when the runner
	// drained; it never ran.
	StatusDrained Status = "drained"
)

// Terminal reports whether the status is a terminal state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusDrained
}

// Event is one progress record on a job's stream: the queue transitions,
// core.Verify's per-iteration verdicts, the formal outcome and the
// terminal state. Seq is assigned per job, densely from 0, so a stream
// consumer can resume from any offset.
type Event struct {
	// Seq is the dense per-job sequence number.
	Seq int `json:"seq"`
	// Kind discriminates the event payload.
	Kind string `json:"kind"`
	// Iteration is the repair iteration for iteration events (0 =
	// pre-processing).
	Iteration int `json:"iteration,omitempty"`
	// Stage is the active pipeline segment.
	Stage string `json:"stage,omitempty"`
	// Score is the scoreboard pass rate of this iteration (0..1).
	Score float64 `json:"score,omitempty"`
	// Best is the best pass rate seen so far.
	Best float64 `json:"best,omitempty"`
	// Coverage is the port-level coverage percent of this iteration.
	Coverage float64 `json:"coverage,omitempty"`
	// StructCoverage is the structural coverage percent of this
	// iteration (when the cover knob is on).
	StructCoverage float64 `json:"struct_coverage,omitempty"`
	// Rollback marks an iteration whose candidate was rejected by the
	// score register.
	Rollback bool `json:"rollback,omitempty"`
	// Formal is the proof outcome on formal events.
	Formal string `json:"formal,omitempty"`
	// Status is the job status on terminal and transition events.
	Status Status `json:"status,omitempty"`
	// Message is free-form human-readable detail.
	Message string `json:"message,omitempty"`
}

// Event kinds.
const (
	// EventQueued is emitted at submission.
	EventQueued = "queued"
	// EventStarted is emitted when a worker picks the job up.
	EventStarted = "started"
	// EventIteration carries one core.Progress record.
	EventIteration = "iteration"
	// EventFormal carries the bounded-proof outcome.
	EventFormal = "formal"
	// EventTerminal closes the stream with the final status.
	EventTerminal = "terminal"
)

// Job is one submitted verification job and its event history. All
// methods are safe for concurrent use.
type Job struct {
	// ID is the runner-assigned job identifier.
	ID string
	// Spec is the submitted job spec (post default-merging).
	Spec JobSpec

	mu       sync.Mutex
	status   Status
	events   []Event
	notify   chan struct{} // closed and replaced on every append
	result   *Result
	queuedAt time.Time
	doneAt   time.Time // terminal-transition instant; zero while live
	ranFor   time.Duration
	waited   time.Duration
}

func newJob(id string, spec JobSpec, now time.Time) *Job {
	j := &Job{ID: id, Spec: spec, status: StatusQueued, notify: make(chan struct{}), queuedAt: now}
	j.append(Event{Kind: EventQueued, Status: StatusQueued})
	return j
}

// append records one event, stamping Seq and waking stream readers.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the terminal result, ok=false while the job is live.
func (j *Job) Result() (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return Result{}, false
	}
	return *j.result, true
}

// EventsSince returns a copy of the events from seq onward, plus a
// channel that is closed when more events arrive and whether the job has
// reached a terminal state. The triple lets a streamer loop without
// missing or duplicating events.
func (j *Job) EventsSince(seq int) (evs []Event, more <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	return evs, j.notify, j.status.Terminal()
}

// WaitTerminal blocks until the job reaches a terminal state or the
// context is cancelled, returning the final status.
func (j *Job) WaitTerminal(ctx context.Context) (Status, error) {
	seq := 0
	for {
		evs, more, terminal := j.EventsSince(seq)
		seq += len(evs)
		if terminal {
			return j.Status(), nil
		}
		select {
		case <-more:
		case <-ctx.Done():
			return j.Status(), ctx.Err()
		}
	}
}

// setStatus transitions the lifecycle state (non-terminal transitions).
func (j *Job) setStatus(s Status) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// finish moves the job to a terminal state at the given instant and
// emits the closing event.
func (j *Job) finish(s Status, res *Result, msg string, at time.Time) {
	j.mu.Lock()
	j.status = s
	j.result = res
	j.doneAt = at
	j.mu.Unlock()
	j.append(Event{Kind: EventTerminal, Status: s, Message: msg})
}

// doneSince returns the terminal instant, ok=false while the job is live.
func (j *Job) doneSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneAt, j.status.Terminal() && !j.doneAt.IsZero()
}

// Submission and drain errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity; the HTTP layer maps it to 429 with Retry-After.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining is returned by Submit once Drain has begun; the HTTP
	// layer maps it to 503.
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// RunnerConfig sizes a Runner.
type RunnerConfig struct {
	// Workers is the worker pool size (0 = NumCPU).
	Workers int
	// QueueLimit bounds the total queued (not yet running) jobs across
	// all tenants (0 = DefaultQueueLimit).
	QueueLimit int
	// Services is the simulation state jobs run against; the zero value
	// resolves to DefaultServices.
	Services Services
	// Defaults are server-level option defaults merged into every
	// submitted spec (zero-valued knobs inherit, booleans or-combine).
	Defaults Options
	// ResultTTL bounds how long a terminal job (and its result and event
	// history) stays addressable after finishing; expired jobs are
	// garbage-collected opportunistically on submissions and lookups, so
	// a lookup past the TTL reports not-found (HTTP 404). 0 keeps
	// terminal jobs forever — the pre-TTL behavior.
	ResultTTL time.Duration
}

// DefaultQueueLimit bounds the queue when RunnerConfig.QueueLimit is 0.
const DefaultQueueLimit = 256

// Runner is the bounded worker pool over core.Verify behind the server:
// submissions enter per-tenant FIFO queues scheduled round-robin (one
// tenant flooding the queue cannot starve another), a fixed worker pool
// executes jobs through the shared Execute path, and Drain stops intake,
// fails over queued jobs to the drained state and waits for in-flight
// jobs to finish.
type Runner struct {
	cfg  RunnerConfig
	svc  Services
	exec func(JobSpec, Services, func(Event)) Result // test seam; Execute by default
	now  func() time.Time                            // test seam; time.Now by default

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]*Job // per-tenant FIFO
	ring     []string          // round-robin tenant order
	next     int               // ring cursor
	queued   int
	running  int
	draining bool
	seq      int
	jobs     map[string]*Job
	wg       sync.WaitGroup

	stages *stageRecorder
}

// NewRunner starts the worker pool and returns the runner.
func NewRunner(cfg RunnerConfig) *Runner {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	svc := cfg.Services
	if svc.Cache == nil || svc.Memo == nil {
		def := DefaultServices()
		if svc.Cache == nil {
			svc.Cache = def.Cache
		}
		if svc.Memo == nil {
			svc.Memo = def.Memo
		}
	}
	r := &Runner{
		cfg: cfg, svc: svc, exec: Execute, now: time.Now,
		queues: map[string][]*Job{},
		jobs:   map[string]*Job{},
		stages: newStageRecorder(),
	}
	r.cond = sync.NewCond(&r.mu)
	for w := 0; w < cfg.Workers; w++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// Workers returns the worker pool size.
func (r *Runner) Workers() int { return r.cfg.Workers }

// Services returns the simulation state jobs run against.
func (r *Runner) Services() Services { return r.svc }

// Submit validates, defaults and enqueues one job. It returns
// ErrDraining after Drain has begun and ErrQueueFull when the bounded
// queue is at capacity; both leave no trace in the job table.
func (r *Runner) Submit(spec JobSpec) (*Job, error) {
	spec.Options = spec.Options.merge(r.cfg.Defaults)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gcLocked()
	if r.draining {
		return nil, ErrDraining
	}
	if r.queued >= r.cfg.QueueLimit {
		return nil, ErrQueueFull
	}
	r.seq++
	j := newJob(fmt.Sprintf("job-%d", r.seq), spec, r.now())
	tenant := spec.Tenant
	if _, ok := r.queues[tenant]; !ok {
		r.ring = append(r.ring, tenant)
	}
	r.queues[tenant] = append(r.queues[tenant], j)
	r.queued++
	r.jobs[j.ID] = j
	r.cond.Signal()
	return j, nil
}

// Job looks a job up by ID. Terminal jobs past the configured ResultTTL
// are gone: the lookup reports not-found exactly like an unknown ID.
func (r *Runner) Job(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gcLocked()
	j, ok := r.jobs[id]
	return j, ok
}

// gcLocked removes terminal jobs whose ResultTTL has elapsed. Called with
// mu held; a no-op when no TTL is configured.
func (r *Runner) gcLocked() {
	ttl := r.cfg.ResultTTL
	if ttl <= 0 {
		return
	}
	now := r.now()
	for id, j := range r.jobs {
		if at, ok := j.doneSince(); ok && now.Sub(at) >= ttl {
			delete(r.jobs, id)
		}
	}
}

// QueueDepth returns the number of queued (not running) jobs.
func (r *Runner) QueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queued
}

// Draining reports whether Drain has begun.
func (r *Runner) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Snapshot returns per-tenant queue depths and job counts by status —
// the runner's contribution to the metrics endpoint.
func (r *Runner) Snapshot() (tenantDepth map[string]int, byStatus map[Status]int, running int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tenantDepth = map[string]int{}
	for t, q := range r.queues {
		if len(q) > 0 {
			tenantDepth[t] = len(q)
		}
	}
	byStatus = map[Status]int{}
	for _, j := range r.jobs {
		byStatus[j.Status()]++
	}
	return tenantDepth, byStatus, r.running
}

// popLocked removes and returns the next job under round-robin tenant
// order, or nil when the queue is empty. Called with mu held.
func (r *Runner) popLocked() *Job {
	for range r.ring {
		if len(r.ring) == 0 {
			return nil
		}
		r.next %= len(r.ring)
		tenant := r.ring[r.next]
		q := r.queues[tenant]
		if len(q) == 0 {
			// Tenant went idle: drop it from the ring (it re-registers on
			// its next submission) without advancing the cursor.
			delete(r.queues, tenant)
			r.ring = append(r.ring[:r.next], r.ring[r.next+1:]...)
			continue
		}
		j := q[0]
		r.queues[tenant] = q[1:]
		r.queued--
		r.next++
		return j
	}
	return nil
}

// worker is one pool goroutine: pop fair-scheduled jobs until drain.
func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for r.queued == 0 && !r.draining {
			r.cond.Wait()
		}
		if r.queued == 0 && r.draining {
			r.mu.Unlock()
			return
		}
		j := r.popLocked()
		r.running++
		r.mu.Unlock()
		if j != nil {
			r.run(j)
		}
		r.mu.Lock()
		r.running--
		r.mu.Unlock()
	}
}

// run executes one job end to end, recording queue-wait and run-time
// stage samples.
func (r *Runner) run(j *Job) {
	start := r.now()
	wait := start.Sub(j.queuedAt)
	r.stages.observe("queue_wait", wait)
	j.mu.Lock()
	j.waited = wait
	j.mu.Unlock()

	j.setStatus(StatusRunning)
	j.append(Event{Kind: EventStarted, Status: StatusRunning})
	res := r.exec(j.Spec, r.svc, j.append)
	ran := r.now().Sub(start)
	r.stages.observe("run", ran)
	j.mu.Lock()
	j.ranFor = ran
	j.mu.Unlock()

	status, msg := StatusDone, "verification passed"
	if res.Failed() {
		status = StatusFailed
		switch {
		case res.Error != "":
			msg = res.Error
		case res.Formal == "refuted":
			msg = "formal refutation: " + res.FormalDetail
		default:
			msg = fmt.Sprintf("verification failed (best pass rate %.2f)", res.PassRate)
		}
	}
	j.finish(status, &res, msg, r.now())
}

// Drain stops intake, terminates every still-queued job with the drained
// status, and waits (bounded by ctx) for in-flight jobs and the worker
// pool to finish. Safe to call more than once.
func (r *Runner) Drain(ctx context.Context) error {
	r.mu.Lock()
	if !r.draining {
		r.draining = true
		for {
			j := r.popLocked()
			if j == nil {
				break
			}
			j.finish(StatusDrained, nil, "server drained before the job ran", r.now())
		}
	}
	r.cond.Broadcast()
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StageStats returns the recorded per-stage latency samples (seconds),
// keyed by stage name ("queue_wait", "run").
func (r *Runner) StageStats() map[string][]float64 { return r.stages.snapshot() }

// stageRecorder keeps bounded per-stage latency samples.
type stageRecorder struct {
	mu      sync.Mutex
	samples map[string][]float64
}

const maxStageSamples = 4096

func newStageRecorder() *stageRecorder {
	return &stageRecorder{samples: map[string][]float64{}}
}

func (s *stageRecorder) observe(stage string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	xs := s.samples[stage]
	if len(xs) >= maxStageSamples {
		// Keep the newest half: percentiles should reflect recent load.
		xs = append(xs[:0], xs[len(xs)/2:]...)
	}
	s.samples[stage] = append(xs, d.Seconds())
}

func (s *stageRecorder) snapshot() map[string][]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string][]float64{}
	for k, v := range s.samples {
		out[k] = append([]float64(nil), v...)
	}
	return out
}
