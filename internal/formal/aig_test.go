package formal

import (
	"math/rand"
	"testing"
)

// TestAIGBasics pins the constant/idempotence simplification rules and
// structural hashing.
func TestAIGBasics(t *testing.T) {
	g := NewAIG()
	a, b := g.NewVar(), g.NewVar()
	if g.And(a, False) != False || g.And(True, b) != b || g.And(a, a) != a {
		t.Fatal("constant/idempotence simplification broken")
	}
	if g.And(a, a.Not()) != False {
		t.Fatal("a AND ~a must fold to false")
	}
	if g.And(a, b) != g.And(b, a) {
		t.Fatal("structural hashing must canonicalize operand order")
	}
	if g.Xor(a, a) != False || g.Xor(a, a.Not()) != True {
		t.Fatal("xor folding broken")
	}
	if g.Mux(True, a, b) != a || g.Mux(False, a, b) != b || g.Mux(a, b, b) != b {
		t.Fatal("mux folding broken")
	}
}

// evalVec decodes a vector under a concrete variable assignment.
func evalVec(g *AIG, assign map[uint32]bool, v Vec) uint64 {
	bits := g.Eval(func(n uint32) bool { return assign[n] }, v)
	var out uint64
	for i, b := range bits {
		if b {
			out |= 1 << uint(i)
		}
	}
	return out
}

// TestVecOpsAgainstConcrete cross-checks every word-level operator against
// its uint64 reference on random operands — the same relationship the
// bit-blaster later relies on against the simulator.
func TestVecOpsAgainstConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		w := 1 + rng.Intn(16)
		mask := uint64(1)<<uint(w) - 1
		g := NewAIG()
		xv, yv := g.VarVec(w), g.VarVec(w)
		x, y := rng.Uint64()&mask, rng.Uint64()&mask
		assign := map[uint32]bool{}
		for i := 0; i < w; i++ {
			assign[xv[i].Node()] = x>>uint(i)&1 == 1
			assign[yv[i].Node()] = y>>uint(i)&1 == 1
		}
		check := func(name string, got Vec, want uint64) {
			t.Helper()
			if gv := evalVec(g, assign, got); gv != want&mask {
				t.Fatalf("w=%d x=%#x y=%#x: %s = %#x, want %#x", w, x, y, name, gv, want&mask)
			}
		}
		check("add", g.AddVec(xv, yv), x+y)
		check("sub", g.SubVec(xv, yv), x-y)
		check("neg", g.NegVec(xv), -x)
		check("mul", g.MulVec(xv, yv), x*y)
		check("and", g.AndVec(xv, yv), x&y)
		check("or", g.OrVec(xv, yv), x|y)
		check("xor", g.XorVec(xv, yv), x^y)
		check("not", g.NotVec(xv), ^x)
		quo, rem := g.DivModVec(xv, yv)
		if y == 0 {
			check("div0", quo, 0)
			check("mod0", rem, 0)
		} else {
			check("div", quo, x/y)
			check("mod", rem, x%y)
		}
		shAmt := rng.Uint64() & 0x1f
		sh := g.ConstVec(shAmt, 6)
		wantShl := uint64(0)
		wantShr := uint64(0)
		if shAmt < 64 {
			wantShl = x << shAmt
			wantShr = x >> shAmt
		}
		check("shl", g.ShlVec(xv, sh), wantShl)
		check("shr", g.ShrVec(xv, sh), wantShr)

		eqGot := g.Eval(func(n uint32) bool { return assign[n] }, []Lit{
			g.EqVec(xv, yv), g.UltVec(xv, yv), g.UleVec(xv, yv),
			g.RedOr(xv), g.RedAnd(xv), g.RedXor(xv), g.EqConst(xv, x),
		})
		wantBools := []bool{x == y, x < y, x <= y, x != 0, x == mask,
			parity(x), true}
		for i, want := range wantBools {
			if eqGot[i] != want {
				t.Fatalf("w=%d x=%#x y=%#x: predicate %d = %v, want %v", w, x, y, i, eqGot[i], want)
			}
		}
	}
}

func parity(x uint64) bool {
	p := false
	for ; x != 0; x &= x - 1 {
		p = !p
	}
	return p
}

// TestShiftBySymbolicAmount drives the barrel shifters with symbolic
// amounts, including the >= 64 overflow convention of the simulator.
func TestShiftBySymbolicAmount(t *testing.T) {
	g := NewAIG()
	const w = 8
	xv := g.VarVec(w)
	nv := g.VarVec(8) // wide enough to express overflow amounts
	shl, shr := g.ShlVec(xv, nv), g.ShrVec(xv, nv)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		x := rng.Uint64() & 0xff
		n := rng.Uint64() & 0xff
		assign := map[uint32]bool{}
		for i := 0; i < w; i++ {
			assign[xv[i].Node()] = x>>uint(i)&1 == 1
		}
		for i := 0; i < 8; i++ {
			assign[nv[i].Node()] = n>>uint(i)&1 == 1
		}
		wantL, wantR := uint64(0), uint64(0)
		if n < 64 {
			wantL = (x << n) & 0xff
			wantR = x >> n
		}
		if got := evalVec(g, assign, shl); got != wantL {
			t.Fatalf("x=%#x n=%d: shl=%#x want %#x", x, n, got, wantL)
		}
		if got := evalVec(g, assign, shr); got != wantR {
			t.Fatalf("x=%#x n=%d: shr=%#x want %#x", x, n, got, wantR)
		}
	}
}
