package rtlgen

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"uvllm/internal/faultgen"
	"uvllm/internal/formal"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
	"uvllm/internal/verilog"
)

// DiffReport summarizes one cross-backend differential run.
type DiffReport struct {
	Elaborated     bool   // both backends constructed successfully
	Levelized      bool   // the compiled backend ran the levelized sweep
	FallbackReason string // why not, when it did not
	Cycles         int    // cycles actually compared
}

// diffCache amortizes compilation across the differential pipeline: the
// golden design is recompiled for every mutant in DiffMutants, and the
// 330-seed sweep replays designs the fuzz corpus already contains. The
// limit is deliberately small — fuzzing feeds an endless stream of
// distinct sources, and evicted entries just recompile.
var diffCache = sim.NewCacheLimit(512)

// newSim compiles src through the shared cache and allocates an instance,
// preserving CompileAndNewBackend's construction-error surface (parse and
// elaboration errors from the cached compile, reset-time errors from the
// fresh instance).
func newSim(src, top string, backend sim.Backend) (*sim.Simulator, error) {
	return diffCache.Instance(src, top, backend)
}

// DiffBackends simulates src on the event-driven and compiled backends
// under an identical seeded stimulus stream and compares every observable:
// per-cycle output ports, the full recorded waveform, its VCD rendering,
// coverage counts and the final internal signal state. A non-nil error is a
// genuine divergence (the bug case); designs that fail identically on both
// backends — elaboration errors, oscillation — agree by definition.
func DiffBackends(src, top, clock string, cycles int, seed int64) (DiffReport, error) {
	var rep DiffReport
	sE, errE := newSim(src, top, sim.BackendEventDriven)
	sC, errC := newSim(src, top, sim.BackendCompiled)
	if (errE == nil) != (errC == nil) {
		return rep, fmt.Errorf("construction diverged: event=%v compiled=%v", errE, errC)
	}
	if errE != nil {
		if errE.Error() != errC.Error() {
			return rep, fmt.Errorf("construction errors differ:\n event:    %v\n compiled: %v", errE, errC)
		}
		return rep, nil
	}
	rep.Elaborated = true
	rep.Levelized = sC.Levelized()
	rep.FallbackReason = sC.FallbackReason()

	hE := sim.NewHarness(sE, clock)
	hC := sim.NewHarness(sC, clock)
	covE := uvm.NewCoverage(sE.Design())
	covC := uvm.NewCoverage(sC.Design())
	// Structural coverage joins the observable set: the encoded maps must
	// be byte-identical across backends, which additionally cross-checks
	// the compiled condition probes against the interpreter's evaluator.
	if err := hE.EnableCover(sim.CoverAll()); err != nil {
		return rep, fmt.Errorf("cover (event): %v", err)
	}
	if err := hC.EnableCover(sim.CoverAll()); err != nil {
		return rep, fmt.Errorf("cover (compiled): %v", err)
	}

	rstE := hE.ApplyReset(2)
	rstC := hC.ApplyReset(2)
	if !errEqual(rstE, rstC) {
		return rep, fmt.Errorf("reset diverged: event=%v compiled=%v", rstE, rstC)
	}
	if rstE != nil {
		return rep, nil
	}

	rng := rand.New(rand.NewSource(seed))
	inputs := sE.Design().Inputs()
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]uint64{}
		for _, p := range inputs {
			if p.Name == clock {
				continue
			}
			in[p.Name] = rng.Uint64() & maskW(p.Width)
		}
		outE, cerrE := hE.Cycle(in)
		outC, cerrC := hC.Cycle(in)
		if !errEqual(cerrE, cerrC) {
			return rep, fmt.Errorf("cycle %d diverged: event=%v compiled=%v", cyc, cerrE, cerrC)
		}
		if cerrE != nil {
			return rep, nil // both died identically; trace prefix already compared
		}
		for sigName, v := range outE {
			if outC[sigName] != v {
				return rep, fmt.Errorf("cycle %d signal %s: event=0x%x compiled=0x%x", cyc, sigName, v, outC[sigName])
			}
		}
		covE.Sample(in, outE)
		covC.Sample(in, outC)
		rep.Cycles++
	}

	if hE.Wave.Cycles() != hC.Wave.Cycles() {
		return rep, fmt.Errorf("waveform length: event=%d compiled=%d", hE.Wave.Cycles(), hC.Wave.Cycles())
	}
	for _, n := range hE.Wave.Names() {
		for cyc := 0; cyc < hE.Wave.Cycles(); cyc++ {
			if hE.Wave.At(n, cyc) != hC.Wave.At(n, cyc) {
				return rep, fmt.Errorf("waveform %s@%d: event=0x%x compiled=0x%x",
					n, cyc, hE.Wave.At(n, cyc), hC.Wave.At(n, cyc))
			}
		}
	}
	var vcdE, vcdC bytes.Buffer
	if err := sim.WriteVCD(&vcdE, hE.Wave, sE.Design(), top); err != nil {
		return rep, fmt.Errorf("vcd: %v", err)
	}
	if err := sim.WriteVCD(&vcdC, hC.Wave, sC.Design(), top); err != nil {
		return rep, fmt.Errorf("vcd: %v", err)
	}
	if !bytes.Equal(vcdE.Bytes(), vcdC.Bytes()) {
		return rep, errors.New("VCD output differs")
	}
	if covE.Percent() != covC.Percent() || covE.Report() != covC.Report() {
		return rep, fmt.Errorf("coverage diverged: event=%.4f compiled=%.4f", covE.Percent(), covC.Percent())
	}
	encE, encC := hE.Coverage().Encode(), hC.Coverage().Encode()
	if !bytes.Equal(encE, encC) {
		return rep, fmt.Errorf("structural coverage maps differ:\n--- event ---\n%s--- compiled ---\n%s", encE, encC)
	}
	for _, n := range sE.Design().SignalNames() {
		if sE.Get(n) != sC.Get(n) {
			return rep, fmt.Errorf("internal signal %s: event=0x%x compiled=0x%x", n, sE.Get(n), sC.Get(n))
		}
	}
	return rep, nil
}

// ErrUnparseable marks round-trip inputs the parser rejects; callers
// (fuzzers especially) skip these rather than failing.
var ErrUnparseable = errors.New("rtlgen: source does not parse")

// RoundTrip checks printer/parser stability: a parseable source, once
// canonically printed, must reparse without errors and reprint to the
// identical bytes (AST-stable fixpoint after one canonicalization pass).
func RoundTrip(src string) error {
	f, errs := verilog.Parse(src)
	if len(errs) > 0 {
		return fmt.Errorf("%w: %v", ErrUnparseable, errs[0])
	}
	p1 := verilog.Print(f)
	f1, errs := verilog.Parse(p1)
	if len(errs) > 0 {
		return fmt.Errorf("printed form does not reparse: %v\n--- printed ---\n%s", errs[0], p1)
	}
	p2 := verilog.Print(f1)
	if p1 != p2 {
		return fmt.Errorf("print not stable after reparse:\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
	}
	return nil
}

// MutantStats aggregates the third oracle over one design's mutants.
type MutantStats struct {
	Total    int // parseable functional mutants diffed
	Diverged int // mutants observably different from their golden original
}

// DiffMutants applies every functional fault class to a generated design
// and checks two properties per parseable mutant: the two backends must
// agree on the mutant (the backend oracle extends to broken designs), and
// divergence from the golden original is recorded — a mutation that no
// longer changes observable behavior on any stimulus would mean faultgen's
// classes stopped biting on generated RTL. maxPerClass bounds work.
func DiffMutants(d *Design, cycles int, maxPerClass int) (MutantStats, error) {
	var st MutantStats
	for _, class := range faultgen.FunctionalClasses() {
		muts := faultgen.MutateSource(d.Source, class)
		if len(muts) > maxPerClass {
			muts = muts[:maxPerClass]
		}
		for _, mu := range muts {
			if _, errs := verilog.Parse(mu.Source); len(errs) > 0 {
				continue // functional classes can still yield broken text on exotic shapes
			}
			if _, err := DiffBackends(mu.Source, d.Top, d.Clock, cycles, d.Seed); err != nil {
				return st, fmt.Errorf("%s mutant (%s) backends diverged: %w", class, mu.Descr, err)
			}
			st.Total++
			div, err := tracesDiverge(d.Source, mu.Source, d.Top, d.Clock, cycles, d.Seed)
			if err != nil {
				return st, fmt.Errorf("%s mutant (%s): %w", class, mu.Descr, err)
			}
			if div {
				st.Diverged++
			}
		}
	}
	return st, nil
}

// tracesDiverge runs golden and mutant on the reference event-driven
// backend under identical stimulus and reports whether any observable
// differs. A mutant that fails to elaborate or dies mid-run while the
// golden does not is observably divergent.
func tracesDiverge(golden, mutant, top, clock string, cycles int, seed int64) (bool, error) {
	div, _, err := tracesDivergeOn(golden, mutant, top, clock, cycles, seed, sim.BackendEventDriven, nil)
	return div, err
}

// tracesDivergeOn is the shared divergence oracle: golden and mutant on
// one backend under identical seeded random stimulus, with any inputs
// named in frozen pinned to the given constant value each cycle. It
// reports whether any observable differed and at which cycle.
func tracesDivergeOn(golden, mutant, top, clock string, cycles int, seed int64, backend sim.Backend, frozen map[string]uint64) (bool, int, error) {
	sG, errG := newSim(golden, top, backend)
	if errG != nil {
		return false, 0, fmt.Errorf("golden failed to elaborate: %v", errG)
	}
	sM, errM := newSim(mutant, top, backend)
	if errM != nil {
		return true, 0, nil
	}
	hG := sim.NewHarness(sG, clock)
	hM := sim.NewHarness(sM, clock)
	if errEqual(hG.ApplyReset(2), hM.ApplyReset(2)) == false {
		return true, 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := sG.Design().Inputs()
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]uint64{}
		for _, p := range inputs {
			if p.Name == clock {
				continue
			}
			if v, ok := frozen[p.Name]; ok {
				in[p.Name] = v
				continue
			}
			in[p.Name] = rng.Uint64() & maskW(p.Width)
		}
		outG, cerrG := hG.Cycle(in)
		outM, cerrM := hM.Cycle(copyIn(in, sM))
		if !errEqual(cerrG, cerrM) {
			return true, cyc, nil
		}
		if cerrG != nil {
			return false, 0, nil // both died identically
		}
		for sigName, v := range outG {
			if outM[sigName] != v {
				return true, cyc, nil
			}
		}
	}
	return false, 0, nil
}

// FormalReport summarizes the fourth oracle on one design: the formal
// engine's equivalence verdicts checked for agreement with simulation.
type FormalReport struct {
	Supported   bool   // the design is inside the bit-blastable subset
	Reason      string // why not, when it is not
	Mutants     int    // functional mutants formally checked
	Refuted     int    // SAT verdicts (each replayed in simulation)
	KEquivalent int    // UNSAT-to-depth-k verdicts (each probed by random simulation)
	Unbounded   int    // of KEquivalent: proved for all time by k-induction
}

// formalBudget bounds each SAT solve of the fourth oracle: generated
// designs occasionally wrap a multiplier or divider into the checksum
// cone, and those miters' UNSAT proofs can cost seconds each. The
// deterministic conflict cutoff keeps the sweep's formal pass bounded
// while still exercising the engine on the overwhelming majority of
// levelized designs. MinimizeCex routes every refutation through
// counterexample minimization, so each replay also exercises the
// shrinking path (formalAgreeMutant checks weight monotonicity).
var formalBudget = formal.Options{MaxConflicts: 500, MinimizeCex: true}

// DiffFormal is the fourth differential oracle: on bit-blastable designs
// the formal engine's verdicts must agree with simulation in both
// directions. The golden design must be provably equivalent to itself;
// for each functional mutant, a SAT verdict must come with a minimized
// counterexample that concrete simulation reproduces at the predicted
// cycle (and whose weight the minimizer did not increase), and an UNSAT
// verdict must survive random simulation probes under the same stimulus
// protocol (reset held deasserted after the preamble) — deeper probes
// when k-induction upgraded the proof to all-time, since that verdict
// claims every depth. A non-nil error is a genuine formal-vs-simulation
// disagreement — a bug in one of the engines.
func DiffFormal(d *Design, k, maxPerClass int) (FormalReport, error) {
	var rep FormalReport
	golden, err := diffCache.Compile(d.Source, d.Top, sim.BackendCompiled)
	if err != nil {
		return rep, nil // not elaborable: DiffBackends owns this case
	}
	res, err := formal.InductionEquivOpts(golden, golden, d.Clock, k, formalBudget)
	if err != nil {
		if errors.Is(err, formal.ErrUnsupported) || errors.Is(err, formal.ErrBudget) {
			rep.Reason = err.Error()
			return rep, nil
		}
		return rep, fmt.Errorf("golden blast: %w", err)
	}
	rep.Supported = true
	if !res.Equivalent {
		return rep, fmt.Errorf("golden design refuted against itself at depth %d", res.Depth)
	}
	for _, class := range faultgen.FunctionalClasses() {
		muts := faultgen.MutateSource(d.Source, class)
		if len(muts) > maxPerClass {
			muts = muts[:maxPerClass]
		}
		for _, mu := range muts {
			checked, refuted, unbounded, err := formalAgreeMutant(d, mu.Source, k)
			if err != nil {
				return rep, fmt.Errorf("%s mutant (%s): %w", class, mu.Descr, err)
			}
			if !checked {
				continue
			}
			rep.Mutants++
			switch {
			case refuted:
				rep.Refuted++
			default:
				rep.KEquivalent++
				if unbounded {
					rep.Unbounded++
				}
			}
		}
	}
	return rep, nil
}

// formalAgreeMutant checks one (golden, mutant) pair for agreement
// between the formal verdict and simulation. checked=false means the
// mutant fell outside the comparable set (does not parse/elaborate, or
// left the blastable subset). A SAT verdict must replay at the predicted
// cycle with a minimized trace no heavier or longer than the raw one; an
// UNSAT verdict must survive seeded random probes — of depth k when
// bounded, of depth 3k when the inductive step upgraded it to an
// all-time proof.
func formalAgreeMutant(d *Design, mutantSrc string, k int) (checked, refuted, unbounded bool, err error) {
	if _, errs := verilog.Parse(mutantSrc); len(errs) > 0 {
		return false, false, false, nil
	}
	golden, err := diffCache.Compile(d.Source, d.Top, sim.BackendCompiled)
	if err != nil {
		return false, false, false, nil
	}
	mutant, err := diffCache.Compile(mutantSrc, d.Top, sim.BackendCompiled)
	if err != nil {
		return false, false, false, nil // elaboration-failing mutants are the sim oracle's case
	}
	res, err := formal.InductionEquivOpts(golden, mutant, d.Clock, k, formalBudget)
	if err != nil {
		if errors.Is(err, formal.ErrUnsupported) || errors.Is(err, formal.ErrBudget) {
			return false, false, false, nil // non-blastable construct, or a miter out of budget
		}
		return false, false, false, err
	}
	if res.Cex != nil {
		if res.RawCex != nil {
			if len(res.Cex.Inputs) > len(res.RawCex.Inputs) {
				return true, true, false, fmt.Errorf("minimized cex longer than raw: %d vs %d cycles", len(res.Cex.Inputs), len(res.RawCex.Inputs))
			}
			if res.Cex.Weight() > res.RawCex.Weight() {
				return true, true, false, fmt.Errorf("minimized cex heavier than raw: %d vs %d set bits", res.Cex.Weight(), res.RawCex.Weight())
			}
		}
		div, cyc, err := formal.ReplayCex(d.Source, mutantSrc, d.Top, d.Clock, res.Cex, sim.BackendCompiled)
		if err != nil {
			return true, true, false, fmt.Errorf("cex replay: %w", err)
		}
		if !div {
			return true, true, false, fmt.Errorf("formal refuted at depth %d but simulation does not reproduce the divergence", res.Depth)
		}
		if cyc != res.Cex.Cycle {
			return true, true, false, fmt.Errorf("cex diverged at cycle %d, formal predicted %d", cyc, res.Cex.Cycle)
		}
		return true, true, false, nil
	}
	// UNSAT: no qualifying stimulus under the frozen-reset protocol may
	// distinguish the designs in simulation either. An unbounded proof
	// claims every depth, so probe it well past the base unrolling.
	probeDepth := k
	if res.Unbounded {
		probeDepth = 3 * k
	}
	for probe := int64(0); probe < 3; probe++ {
		div, cyc, err := tracesDivergeFrozen(d.Source, mutantSrc, d.Top, d.Clock, probeDepth, d.Seed+probe)
		if err != nil {
			return true, false, res.Unbounded, err
		}
		if div {
			return true, false, res.Unbounded, fmt.Errorf("formal proved %d-cycle equivalence (unbounded=%v) but random simulation diverged at cycle %d (probe %d)", k, res.Unbounded, cyc, probe)
		}
	}
	return true, false, res.Unbounded, nil
}

// inductionAgreesWithBMC is the fuzz oracle behind
// FuzzInductionAgreesWithBMC: run one (golden, mutant) pair through
// k-induction at depth k and cross-examine the verdict with the
// strongest independent checks available — an unbounded proof must
// survive *deeper* plain BMC (depth 3k+2) and deeper random simulation,
// a refutation must match plain BMC's verdict and depth exactly and
// replay in simulation, and a bounded UNSAT must agree with plain BMC.
// Pairs outside the blastable subset (or over budget on either path)
// are skipped, not failed.
func inductionAgreesWithBMC(d *Design, mutantSrc string, k int) error {
	if _, errs := verilog.Parse(mutantSrc); len(errs) > 0 {
		return nil
	}
	golden, err := diffCache.Compile(d.Source, d.Top, sim.BackendCompiled)
	if err != nil {
		return nil
	}
	mutant, err := diffCache.Compile(mutantSrc, d.Top, sim.BackendCompiled)
	if err != nil {
		return nil
	}
	ind, err := formal.InductionEquivOpts(golden, mutant, d.Clock, k, formalBudget)
	if err != nil {
		if errors.Is(err, formal.ErrUnsupported) || errors.Is(err, formal.ErrBudget) {
			return nil
		}
		return err
	}
	bmcDepth := k
	if ind.Unbounded {
		bmcDepth = 3*k + 2
	}
	bmc, err := formal.BMCEquivOpts(golden, mutant, d.Clock, bmcDepth, formalBudget)
	if err != nil {
		if errors.Is(err, formal.ErrUnsupported) || errors.Is(err, formal.ErrBudget) {
			return nil // the deeper unrolling ran out of budget: no verdict to compare
		}
		return err
	}
	if ind.Unbounded && !bmc.Equivalent {
		return fmt.Errorf("UNSOUND: induction proved unbounded equivalence but BMC refutes at depth %d", bmc.Depth)
	}
	if ind.Equivalent != bmc.Equivalent && !ind.Unbounded {
		return fmt.Errorf("induction (eq=%v depth=%d) disagrees with BMC (eq=%v depth=%d)",
			ind.Equivalent, ind.Depth, bmc.Equivalent, bmc.Depth)
	}
	if !ind.Equivalent {
		if bmc.Depth != ind.Depth {
			return fmt.Errorf("refutation depth mismatch: induction %d, BMC %d", ind.Depth, bmc.Depth)
		}
		div, cyc, err := formal.ReplayCex(d.Source, mutantSrc, d.Top, d.Clock, ind.Cex, sim.BackendCompiled)
		if err != nil {
			return fmt.Errorf("cex replay: %w", err)
		}
		if !div || cyc != ind.Cex.Cycle {
			return fmt.Errorf("induction cex: diverged=%v at cycle %d, predicted %d", div, cyc, ind.Cex.Cycle)
		}
		return nil
	}
	if ind.Unbounded {
		for probe := int64(0); probe < 3; probe++ {
			div, cyc, err := tracesDivergeFrozen(d.Source, mutantSrc, d.Top, d.Clock, 3*k, d.Seed+probe)
			if err != nil {
				return err
			}
			if div {
				return fmt.Errorf("UNSOUND: induction proved unbounded equivalence but simulation diverged at cycle %d (probe %d)", cyc, probe)
			}
		}
	}
	return nil
}

// tracesDivergeFrozen is tracesDiverge under the formal stimulus
// protocol: compiled backend, reset preamble, then random data inputs
// with the reset input held at its deasserted value.
func tracesDivergeFrozen(golden, mutant, top, clock string, cycles int, seed int64) (bool, int, error) {
	frozen := map[string]uint64{}
	if prog, err := diffCache.Compile(golden, top, sim.BackendCompiled); err == nil {
		if rstName, v := sim.FindResetDeassert(prog.Design()); rstName != "" {
			frozen[rstName] = v
		}
	}
	return tracesDivergeOn(golden, mutant, top, clock, cycles, seed, sim.BackendCompiled, frozen)
}

// copyIn filters a stimulus map down to inputs the (possibly mutated)
// design still has, so renamed/deleted ports do not error the harness.
func copyIn(in map[string]uint64, s *sim.Simulator) map[string]uint64 {
	out := make(map[string]uint64, len(in))
	for k, v := range in {
		if s.Has(k) {
			out[k] = v
		}
	}
	return out
}

func errEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}
