package sim

import (
	"fmt"
	"sort"

	"uvllm/internal/cover"
	"uvllm/internal/obs"
)

// Waveform records cycle-sampled values of named signals, the simulator's
// stand-in for a VCD dump. The localization engine reads input values at
// mismatch timestamps out of it (Algorithm 2's getInputValue). Storage is
// columnar: one slice per signal, indexed once by name at construction, so
// the per-cycle hot loop appends without map traffic.
type Waveform struct {
	names  []string
	index  map[string]int
	cols   [][]uint64
	cycles int
}

// NewWaveform creates an empty waveform for the given signal names.
func NewWaveform(names []string) *Waveform {
	w := &Waveform{index: map[string]int{}}
	w.names = append(w.names, names...)
	sort.Strings(w.names)
	w.cols = make([][]uint64, len(w.names))
	for i, n := range w.names {
		w.index[n] = i
	}
	return w
}

// Names returns the recorded signal names, sorted.
func (w *Waveform) Names() []string { return w.names }

// Cycles returns the number of recorded cycles.
func (w *Waveform) Cycles() int { return w.cycles }

// Record appends one cycle of values.
func (w *Waveform) Record(vals map[string]uint64) {
	for i, n := range w.names {
		w.cols[i] = append(w.cols[i], vals[n])
	}
	w.cycles++
}

// recordRow appends one cycle of values aligned with Names() order — the
// allocation-free fast path used by the harness.
func (w *Waveform) recordRow(row []uint64) {
	for i, v := range row {
		w.cols[i] = append(w.cols[i], v)
	}
	w.cycles++
}

// RecordRow appends one cycle of values aligned with Names() order — the
// allocation-free alternative to Record for callers that maintain the
// sorted layout themselves (the bit-parallel lane engine's per-lane rows).
func (w *Waveform) RecordRow(row []uint64) { w.recordRow(row) }

// At returns the value of name at cycle, or 0 when out of range.
func (w *Waveform) At(name string, cycle int) uint64 {
	i, ok := w.index[name]
	if !ok || cycle < 0 || cycle >= len(w.cols[i]) {
		return 0
	}
	return w.cols[i][cycle]
}

// ValuesAt returns every recorded signal's value at cycle.
func (w *Waveform) ValuesAt(cycle int) map[string]uint64 {
	out := make(map[string]uint64, len(w.names))
	for _, n := range w.names {
		out[n] = w.At(n, cycle)
	}
	return out
}

// portRef is a top-level port resolved to its arena index once.
type portRef struct {
	name string
	idx  int
}

// Harness drives a simulator with a cycle-based protocol: apply inputs,
// let combinational logic settle, pulse the clock, sample outputs. It is
// the glue between the Go UVM components and the RTL simulator. Port
// arena indices are resolved at construction so per-cycle sampling does
// no name lookups.
type Harness struct {
	Sim   *Simulator
	Clock string // clock input name; empty for purely combinational DUTs
	Wave  *Waveform
	cycle int

	outPorts []portRef       // top-level outputs
	recIdx   []int           // arena index per recorded port, in Wave.Names() order (-1 = unknown)
	recRow   []uint64        // scratch row reused every cycle
	inputSet map[string]bool // top-level input names
	cycles   *obs.Counter    // optional per-cycle counter; nil = untracked
}

// ObserveCycles attaches a registry counter incremented once per Cycle,
// the simulation loop's contribution to the observability layer. A nil
// counter (the default) keeps the hot loop at its uninstrumented cost —
// the increment degrades to obs.Counter's nil-receiver fast path, which
// the BenchmarkSimCompiled / BenchmarkSimCompiledObs benchguard pair
// holds to within noise of each other.
func (h *Harness) ObserveCycles(c *obs.Counter) { h.cycles = c }

// sortedExtraKeys returns the stimulus keys that are not top-level inputs
// (nor the clock), sorted for deterministic application order.
func sortedExtraKeys(inputs map[string]uint64, inputSet map[string]bool, clock string) []string {
	var extra []string
	for name := range inputs {
		if name == clock || inputSet[name] {
			continue
		}
		extra = append(extra, name)
	}
	sort.Strings(extra)
	return extra
}

// NewHarness wraps sim with the given clock input (may be ""). All
// top-level ports are recorded in the waveform.
func NewHarness(s *Simulator, clock string) *Harness {
	var names []string
	for _, p := range s.Design().Inputs() {
		names = append(names, p.Name)
	}
	for _, p := range s.Design().Outputs() {
		names = append(names, p.Name)
	}
	h := &Harness{Sim: s, Clock: clock, Wave: NewWaveform(names), inputSet: map[string]bool{}}
	for _, p := range s.Design().Inputs() {
		h.inputSet[p.Name] = true
	}
	for _, p := range s.Design().Outputs() {
		if idx, ok := s.d.byName[p.Name]; ok {
			h.outPorts = append(h.outPorts, portRef{name: p.Name, idx: idx})
		}
	}
	for _, n := range h.Wave.Names() {
		idx := -1
		if i, ok := s.d.byName[n]; ok {
			idx = i
		}
		h.recIdx = append(h.recIdx, idx)
	}
	h.recRow = make([]uint64, len(h.recIdx))
	return h
}

// Cycle applies inputs, advances one clock cycle (or just settles for
// combinational designs), records the waveform sample and returns the
// top-level output values.
//
// Inputs are applied in port declaration order, not map order: on designs
// whose comb state is glitch-count sensitive (self-read @(*) blocks), the
// Set sequence determines the event queue's walk, and Go's randomized map
// iteration would make identical stimulus produce different traces from
// run to run (found by the rtlgen differential fuzzer).
func (h *Harness) Cycle(inputs map[string]uint64) (map[string]uint64, error) {
	applied := 0
	for _, p := range h.Sim.Design().Inputs() {
		v, ok := inputs[p.Name]
		if !ok || p.Name == h.Clock {
			continue
		}
		applied++
		if err := h.Sim.Set(p.Name, v); err != nil {
			return nil, err
		}
	}
	expect := len(inputs)
	if h.Clock != "" {
		if _, ok := inputs[h.Clock]; ok {
			expect--
		}
	}
	if applied != expect {
		// Leftover keys name internal signals (still honored, in sorted
		// order) or unknown signals (still an error).
		for _, name := range sortedExtraKeys(inputs, h.inputSet, h.Clock) {
			if err := h.Sim.Set(name, inputs[name]); err != nil {
				return nil, err
			}
		}
	}
	if err := h.Sim.Settle(); err != nil {
		return nil, err
	}
	if h.Sim.cov != nil {
		// Pre-edge instant: inputs applied, combinational logic settled —
		// the state every posedge process observes. Statement and branch
		// coverage samples here.
		h.Sim.coverSampleExec()
	}
	if h.Clock != "" {
		if err := h.Sim.Set(h.Clock, 1); err != nil {
			return nil, err
		}
		if err := h.Sim.Settle(); err != nil {
			return nil, err
		}
		if err := h.Sim.Set(h.Clock, 0); err != nil {
			return nil, err
		}
		if err := h.Sim.Settle(); err != nil {
			return nil, err
		}
	}
	if h.Sim.cov != nil {
		// Post-cycle instant: NBAs committed, everything settled. Toggle
		// and FSM occupancy coverage samples here.
		h.Sim.coverSampleState()
	}
	outs := make(map[string]uint64, len(h.outPorts))
	for _, p := range h.outPorts {
		outs[p.name] = h.Sim.vals[p.idx]
	}
	for i, idx := range h.recIdx {
		if idx >= 0 {
			h.recRow[i] = h.Sim.vals[idx]
		} else {
			h.recRow[i] = 0
		}
	}
	h.Wave.recordRow(h.recRow)
	h.cycle++
	h.cycles.Inc()
	return outs, nil
}

// CycleCount returns the number of cycles driven so far.
func (h *Harness) CycleCount() int { return h.cycle }

// EnableCover switches structural coverage collection on for the
// harnessed instance, automatically excluding the harness clock from the
// toggle universe (the clock is low at both sample instants, so its high
// phase is unobservable by construction). A zero CoverOptions disables
// collection.
func (h *Harness) EnableCover(opts CoverOptions) error {
	if opts.Any() && h.Clock != "" {
		opts.ExcludeSignals = append(append([]string(nil), opts.ExcludeSignals...), h.Clock)
	}
	return h.Sim.EnableCover(opts)
}

// Coverage returns the accumulated structural coverage map, or nil when
// coverage is not enabled.
func (h *Harness) Coverage() *cover.Map { return h.Sim.Coverage() }

// Outputs samples the current top-level outputs without advancing time.
func (h *Harness) Outputs() map[string]uint64 {
	outs := make(map[string]uint64, len(h.outPorts))
	for _, p := range h.outPorts {
		outs[p.name] = h.Sim.vals[p.idx]
	}
	return outs
}

// FindClock guesses the clock input of a design by conventional names.
func FindClock(d *Design) string {
	for _, cand := range []string{"clk", "clock", "clk_in", "i_clk"} {
		for _, p := range d.Inputs() {
			if p.Name == cand {
				return p.Name
			}
		}
	}
	return ""
}

// FindResetDeassert returns the conventional reset input together with
// the value that deasserts it, or "" when the design has none. This is
// the single definition of the frozen-reset protocol value shared by
// the formal engine and its simulation agreement probes.
func FindResetDeassert(d *Design) (string, uint64) {
	name, activeLow := FindReset(d)
	if name == "" {
		return "", 0
	}
	if activeLow {
		return name, 1
	}
	return name, 0
}

// FindReset returns the reset input name and whether it is active low,
// guessed by conventional names.
func FindReset(d *Design) (string, bool) {
	for _, p := range d.Inputs() {
		switch p.Name {
		case "rst_n", "rstn", "reset_n", "nrst", "arstn":
			return p.Name, true
		}
	}
	for _, p := range d.Inputs() {
		switch p.Name {
		case "rst", "reset", "arst":
			return p.Name, false
		}
	}
	return "", false
}

// ApplyReset drives the reset sequence: assert reset for cycles clock
// edges, then deassert.
func (h *Harness) ApplyReset(cycles int) error {
	name, activeLow := FindReset(h.Sim.Design())
	if name == "" {
		return nil
	}
	assert, deassert := uint64(1), uint64(0)
	if activeLow {
		assert, deassert = 0, 1
	}
	for i := 0; i < cycles; i++ {
		if _, err := h.Cycle(map[string]uint64{name: assert}); err != nil {
			return fmt.Errorf("sim: reset: %w", err)
		}
	}
	if err := h.Sim.Set(name, deassert); err != nil {
		return err
	}
	return h.Sim.Settle()
}
