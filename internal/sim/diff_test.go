package sim_test

// Differential testing harness: the compiled backend must be bit-identical
// to the event-driven reference on port traces, VCD dumps and coverage
// counts — over every dataset module and a seeded sample of faultgen
// mutants (which inject exactly the constructs the levelizer must detect
// and route to the event-scheduler fallback: incomplete sensitivity lists,
// NBAs in combinational blocks, combinational loops).

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// diffBackends simulates src on both backends with an identical random
// stimulus stream and fails on the first observable divergence. It returns
// whether the compiled simulator ran levelized (false also when the source
// does not elaborate, in which case both backends must agree on the error).
func diffBackends(t *testing.T, name, src, top, clock string, cycles int, seed int64) bool {
	t.Helper()
	sE, errE := sim.CompileAndNewBackend(src, top, sim.BackendEventDriven)
	sC, errC := sim.CompileAndNewBackend(src, top, sim.BackendCompiled)
	if (errE == nil) != (errC == nil) {
		t.Fatalf("%s: construction diverged: event=%v compiled=%v", name, errE, errC)
	}
	if errE != nil {
		if errE.Error() != errC.Error() {
			t.Fatalf("%s: construction errors differ:\n event:    %v\n compiled: %v", name, errE, errC)
		}
		return false
	}

	hE := sim.NewHarness(sE, clock)
	hC := sim.NewHarness(sC, clock)
	covE := uvm.NewCoverage(sE.Design())
	covC := uvm.NewCoverage(sC.Design())

	rstE := hE.ApplyReset(2)
	rstC := hC.ApplyReset(2)
	if !errEqual(rstE, rstC) {
		t.Fatalf("%s: reset diverged: event=%v compiled=%v", name, rstE, rstC)
	}
	if rstE != nil {
		return sC.Levelized()
	}

	rng := rand.New(rand.NewSource(seed))
	inputs := sE.Design().Inputs()
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]uint64{}
		for _, p := range inputs {
			if p.Name == clock {
				continue
			}
			in[p.Name] = rng.Uint64() & maskW(p.Width)
		}
		outE, cerrE := hE.Cycle(in)
		outC, cerrC := hC.Cycle(in)
		if !errEqual(cerrE, cerrC) {
			t.Fatalf("%s: cycle %d diverged: event=%v compiled=%v", name, cyc, cerrE, cerrC)
		}
		if cerrE != nil {
			return sC.Levelized() // both died identically; trace prefix already compared
		}
		for sig, v := range outE {
			if outC[sig] != v {
				t.Fatalf("%s: cycle %d signal %s: event=0x%x compiled=0x%x", name, cyc, sig, v, outC[sig])
			}
		}
		covE.Sample(in, outE)
		covC.Sample(in, outC)
	}

	// Full recorded waveform, its VCD rendering, coverage and the complete
	// internal signal state must all agree byte for byte.
	if hE.Wave.Cycles() != hC.Wave.Cycles() {
		t.Fatalf("%s: waveform length: event=%d compiled=%d", name, hE.Wave.Cycles(), hC.Wave.Cycles())
	}
	for _, n := range hE.Wave.Names() {
		for cyc := 0; cyc < hE.Wave.Cycles(); cyc++ {
			if hE.Wave.At(n, cyc) != hC.Wave.At(n, cyc) {
				t.Fatalf("%s: waveform %s@%d: event=0x%x compiled=0x%x",
					name, n, cyc, hE.Wave.At(n, cyc), hC.Wave.At(n, cyc))
			}
		}
	}
	var vcdE, vcdC bytes.Buffer
	if err := sim.WriteVCD(&vcdE, hE.Wave, sE.Design(), top); err != nil {
		t.Fatalf("%s: vcd: %v", name, err)
	}
	if err := sim.WriteVCD(&vcdC, hC.Wave, sC.Design(), top); err != nil {
		t.Fatalf("%s: vcd: %v", name, err)
	}
	if !bytes.Equal(vcdE.Bytes(), vcdC.Bytes()) {
		t.Fatalf("%s: VCD output differs", name)
	}
	if covE.Percent() != covC.Percent() || covE.Report() != covC.Report() {
		t.Fatalf("%s: coverage diverged: event=%.4f compiled=%.4f", name, covE.Percent(), covC.Percent())
	}
	for _, n := range sE.Design().SignalNames() {
		if sE.Get(n) != sC.Get(n) {
			t.Fatalf("%s: internal signal %s: event=0x%x compiled=0x%x", name, n, sE.Get(n), sC.Get(n))
		}
	}
	return sC.Levelized()
}

func errEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// TestDifferentialDatasetModules diffs every golden benchmark module over
// several seeds, and requires that all of them take the levelized fast
// path (a fallback on golden RTL is a performance regression).
func TestDifferentialDatasetModules(t *testing.T) {
	for _, m := range dataset.All() {
		for seed := int64(1); seed <= 3; seed++ {
			lev := diffBackends(t, fmt.Sprintf("%s/seed%d", m.Name, seed), m.Source, m.Top, m.Clock, 200, seed)
			if !lev {
				s, _ := sim.CompileAndNew(m.Source, m.Top)
				t.Errorf("%s: golden module not levelized: %s", m.Name, s.FallbackReason())
			}
		}
	}
}

// TestDifferentialGlitchDerivedClock pins the one construct where the
// levelized sweep provably cannot match event scheduling: a gated clock
// that glitches. Event order runs `g = x & ~b` with stale b when x rises,
// producing a transient posedge; topological order computes b first and
// never pulses g. The levelizer must therefore refuse such designs and
// the compiled backend must fall back to event scheduling — this test
// fails with divergent q values if it does not.
func TestDifferentialGlitchDerivedClock(t *testing.T) {
	src := `module glitch(input x, output reg q);
  wire g, b;
  assign g = x & ~b;
  assign b = x;
  always @(posedge g) q <= 1'b1;
endmodule`
	diffBackends(t, "glitch-derived-clock", src, "glitch", "", 20, 1)
	s, err := sim.CompileAndNew(src, "glitch")
	if err != nil {
		t.Fatal(err)
	}
	if s.Levelized() {
		t.Fatal("glitch-prone derived clock must not take the levelized path")
	}
}

// TestDifferentialHugeMemIndex pins the unsigned bounds handling of
// memory accesses: a 64-bit index with bit 63 set (here via ~addr) must
// read 0 / drop the write on both backends instead of wrapping negative
// past the bounds check and panicking.
func TestDifferentialHugeMemIndex(t *testing.T) {
	src := `module hugeidx(input clk, input [63:0] addr, input [7:0] din, output reg [7:0] dout);
  reg [7:0] mem [0:15];
  always @(posedge clk) begin
    mem[~addr] <= din;
    dout <= mem[~addr] + mem[addr];
  end
endmodule`
	diffBackends(t, "huge-mem-index", src, "hugeidx", "clk", 50, 1)
}

// TestDifferentialFaultgenMutants diffs a deterministic sample of the
// released error benchmark — including syntax-broken instances (both
// backends must report the same elaboration error) and functional mutants
// that exercise the event-scheduler fallback paths.
func TestDifferentialFaultgenMutants(t *testing.T) {
	bench := faultgen.Benchmark()
	sampled, levelized := 0, 0
	for i := 0; i < len(bench); i += 3 {
		f := bench[i]
		m := f.Meta()
		sampled++
		if diffBackends(t, f.ID, f.Source, m.Top, m.Clock, 80, 1) {
			levelized++
		}
	}
	if sampled < 100 {
		t.Fatalf("mutant sample too small: %d < 100", sampled)
	}
	t.Logf("diffed %d mutants (%d levelized, %d event-fallback/broken)", sampled, levelized, sampled-levelized)
}
