package uvllm

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the ablations DESIGN.md calls out and
// microbenchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The figure/table benchmarks measure the cost of regenerating the
// artifact from the (cached) full 331-instance evaluation; the *Repair
// benchmarks measure one pipeline run per iteration, which is the unit of
// work the evaluation scales by.

import (
	"context"
	"testing"

	"uvllm/internal/baseline"
	"uvllm/internal/core"
	"uvllm/internal/dataset"
	"uvllm/internal/exp"
	"uvllm/internal/faultgen"
	"uvllm/internal/formal"
	"uvllm/internal/lint"
	"uvllm/internal/llm"
	"uvllm/internal/obs"
	"uvllm/internal/psim"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
	"uvllm/internal/verilog"
)

func oracleFor(f *faultgen.Fault, seed int64) llm.Client {
	m := f.Meta()
	return llm.NewOracle(llm.Knowledge{
		FaultID: f.ID, Golden: f.Golden, Class: string(f.Class),
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, llm.DefaultProfile(), seed)
}

func verifyOne(f *faultgen.Fault, seed int64) core.Result {
	m := f.Meta()
	return core.Verify(context.Background(), core.Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: oracleFor(f, seed),
		Opts: core.Options{Seed: seed},
	})
}

func firstOfKind(b *testing.B, syntax bool) *faultgen.Fault {
	b.Helper()
	for _, f := range faultgen.Benchmark() {
		if f.Class.IsSyntax() == syntax {
			return f
		}
	}
	b.Fatal("no instance found")
	return nil
}

// BenchmarkFig5SyntaxRepair measures one UVLLM pipeline run on a syntax
// instance — the per-instance unit behind Fig. 5.
func BenchmarkFig5SyntaxRepair(b *testing.B) {
	f := firstOfKind(b, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		verifyOne(f, int64(i+1))
	}
}

// BenchmarkFig6FunctionalRepair measures one UVLLM pipeline run on a
// functional instance — the per-instance unit behind Fig. 6.
func BenchmarkFig6FunctionalRepair(b *testing.B) {
	f := firstOfKind(b, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		verifyOne(f, int64(i+1))
	}
}

// BenchmarkFig7HeatMap regenerates the 27x9 heat map from the cached
// full-benchmark evaluation (the first iteration pays for the full run).
func BenchmarkFig7HeatMap(b *testing.B) {
	recs := exp.SharedSession(sim.BackendCompiled).Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig7(recs)
		if len(rows) != 27 {
			b.Fatal("heat map wrong shape")
		}
	}
}

// BenchmarkTable2Segmented regenerates Table II (stage contributions and
// the MEIC speedup) from the cached evaluation.
func BenchmarkTable2Segmented(b *testing.B) {
	recs := exp.SharedSession(sim.BackendCompiled).Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := exp.Table2(recs)
		if len(rows) != 11 {
			b.Fatal("table wrong shape")
		}
	}
}

// BenchmarkTable3Ablation measures one complete-code-mode pipeline run —
// the per-instance unit behind the Table III comparison row.
func BenchmarkTable3Ablation(b *testing.B) {
	f := firstOfKind(b, false)
	m := f.Meta()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Verify(context.Background(), core.Input{
			Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
			RefName: m.Name, ModuleName: m.Name, Client: oracleFor(f, int64(i+1)),
			Opts: core.Options{Seed: int64(i + 1), Mode: llm.ModeComplete},
		})
	}
}

// BenchmarkAblationRollback measures a pipeline run with rollback disabled
// (DESIGN.md design-choice ablation).
func BenchmarkAblationRollback(b *testing.B) {
	f := firstOfKind(b, false)
	m := f.Meta()
	for i := 0; i < b.N; i++ {
		core.Verify(context.Background(), core.Input{
			Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
			RefName: m.Name, ModuleName: m.Name, Client: oracleFor(f, int64(i+1)),
			Opts: core.Options{Seed: int64(i + 1), DisableRollback: true},
		})
	}
}

// BenchmarkAblationLocalization measures a pipeline run with SL mode
// engaged from iteration 1 (no MS->SL escalation).
func BenchmarkAblationLocalization(b *testing.B) {
	f := firstOfKind(b, false)
	m := f.Meta()
	for i := 0; i < b.N; i++ {
		core.Verify(context.Background(), core.Input{
			Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
			RefName: m.Name, ModuleName: m.Name, Client: oracleFor(f, int64(i+1)),
			Opts: core.Options{Seed: int64(i + 1), SLThreshold: 1},
		})
	}
}

// BenchmarkMEICBaseline measures one MEIC baseline run per iteration.
func BenchmarkMEICBaseline(b *testing.B) {
	f := firstOfKind(b, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baseline.NewMEIC(oracleFor(f, int64(i+1))).Repair(f)
	}
}

// BenchmarkStriderBaseline measures one template-search run per iteration.
func BenchmarkStriderBaseline(b *testing.B) {
	f := firstOfKind(b, false)
	for i := 0; i < b.N; i++ {
		baseline.NewStrider().Repair(f)
	}
}

// --- Substrate microbenchmarks ---------------------------------------------

// BenchmarkVerilogParse measures frontend throughput on a realistic module.
func BenchmarkVerilogParse(b *testing.B) {
	src := dataset.ByName("fifo_sync").Source
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, errs := verilog.Parse(src); len(errs) != 0 {
			b.Fatal("parse errors")
		}
	}
}

// BenchmarkLint measures full linter passes.
func BenchmarkLint(b *testing.B) {
	src := dataset.ByName("traffic_light").Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := lint.Lint(src); len(r.Diags) != 0 {
			b.Fatal("golden lints dirty")
		}
	}
}

// BenchmarkSimulatorCycles measures simulated clock cycles per second on a
// sequential design (default compiled backend).
func BenchmarkSimulatorCycles(b *testing.B) {
	m := dataset.ByName("counter_12bit")
	s, err := sim.CompileAndNew(m.Source, m.Top)
	if err != nil {
		b.Fatal(err)
	}
	h := sim.NewHarness(s, m.Clock)
	if err := h.ApplyReset(2); err != nil {
		b.Fatal(err)
	}
	in := map[string]uint64{"en": 1, "rst_n": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Cycle(in); err != nil {
			b.Fatal(err)
		}
	}
}

// simHotLoopModules is the representative DUT mix for the backend
// comparison pair: a sequential FIFO (memories, NBA traffic), a
// combinational ALU, an FSM, and a hierarchical ripple-carry adder
// (deep port-connection network).
var simHotLoopModules = []string{"fifo_sync", "alu", "traffic_light", "adder_32bit"}

// benchSimBackend drives the UVM per-cycle hot loop (Harness.Cycle: apply
// inputs, settle, pulse clock, sample, record) for 500-cycle runs on each
// module of the mix. One b.N iteration = one full run over the mix.
func benchSimBackend(b *testing.B, backend sim.Backend, cycles *obs.Counter) {
	type dut struct {
		m *dataset.Module
		s *sim.Simulator
	}
	var duts []dut
	for _, name := range simHotLoopModules {
		m := dataset.ByName(name)
		s, err := sim.CompileAndNewBackend(m.Source, m.Top, backend)
		if err != nil {
			b.Fatal(err)
		}
		duts = append(duts, dut{m: m, s: s})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range duts {
			h := sim.NewHarness(d.s, d.m.Clock)
			h.ObserveCycles(cycles)
			if err := h.ApplyReset(2); err != nil {
				b.Fatal(err)
			}
			in := map[string]uint64{}
			ins := d.s.Design().Inputs()
			for c := 0; c < 500; c++ {
				for _, p := range ins {
					if p.Name == d.m.Clock {
						continue
					}
					in[p.Name] = uint64(c*31+i+len(p.Name)) & maskBits(p.Width)
				}
				if d.m.HasReset {
					in["rst_n"] = 1
				}
				if _, err := h.Cycle(in); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func maskBits(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// BenchmarkSimEventDriven measures the reference event-queue interpreter
// on the UVM per-cycle hot loop.
func BenchmarkSimEventDriven(b *testing.B) { benchSimBackend(b, sim.BackendEventDriven, nil) }

// BenchmarkSimCompiled measures the compiled levelized backend on the same
// loop; the CI smoke run and DESIGN.md track the >=2x speedup.
func BenchmarkSimCompiled(b *testing.B) { benchSimBackend(b, sim.BackendCompiled, nil) }

// BenchmarkSimCompiledObs is BenchmarkSimCompiled with a live registry
// counter attached to the harness — the instrumented side of the
// zero-overhead pair. cmd/benchguard holds its ns/op to within noise of
// the uninstrumented run, which is the enforced form of the obs
// package's "provably free when disabled, one atomic when enabled"
// claim on the hottest loop in the system.
func BenchmarkSimCompiledObs(b *testing.B) {
	reg := obs.NewRegistry()
	benchSimBackend(b, sim.BackendCompiled, reg.Counter("sim_cycles_total", "cycles driven by the harness"))
}

// batchBenchLanes is K for the batch-vs-sequential benchmark pair; the
// acceptance bar (guarded by cmd/benchguard) is a per-lane cost at least
// 1.5x cheaper batched than K standalone instances.
const batchBenchLanes = 8

// benchBatchPrograms compiles the hot-loop module mix once.
func benchBatchPrograms(b *testing.B) []struct {
	m *dataset.Module
	p *sim.Program
} {
	b.Helper()
	var out []struct {
		m *dataset.Module
		p *sim.Program
	}
	for _, name := range simHotLoopModules {
		m := dataset.ByName(name)
		p, err := sim.CompileSource(m.Source, m.Top, sim.BackendCompiled)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, struct {
			m *dataset.Module
			p *sim.Program
		}{m, p})
	}
	return out
}

// BenchmarkBatchLanes drives the per-cycle hot loop as one 8-lane
// sim.Batch per module (row stimulus API, fused levelized sweeps,
// pooled arena) — the batched side of the pair. One iteration = 8 lanes
// x 500 cycles over the module mix, including batch construction.
func BenchmarkBatchLanes(b *testing.B) {
	progs := benchBatchPrograms(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pm := range progs {
			bt, err := sim.NewBatch(pm.p, batchBenchLanes, pm.m.Clock)
			if err != nil {
				b.Fatal(err)
			}
			if err := bt.ApplyReset(2); err != nil {
				b.Fatal(err)
			}
			ports := bt.Ports()
			rstIdx := -1
			for pi, pt := range ports {
				if pm.m.HasReset && pt.Name == "rst_n" {
					rstIdx = pi
				}
			}
			rows := make([][]uint64, batchBenchLanes)
			for k := range rows {
				rows[k] = make([]uint64, len(ports))
			}
			for c := 0; c < 500; c++ {
				for k := range rows {
					for pi, pt := range ports {
						rows[k][pi] = uint64(c*31+k*7+i+len(pt.Name)) & maskBits(pt.Width)
					}
					if rstIdx >= 0 {
						rows[k][rstIdx] = 1
					}
				}
				if err := bt.Cycle(rows); err != nil {
					b.Fatal(err)
				}
			}
			for k := 0; k < batchBenchLanes; k++ {
				if err := bt.Err(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkBatchVsSequential is the sequential side of the pair: the
// identical total work — 8 lanes x 500 cycles per module, same per-lane
// stimulus — run as 8 standalone instances the way every consumer did
// before sim.Batch (fresh Instance + Harness + map stimulus per lane).
// benchguard requires BenchmarkBatchLanes to stay at least 1.5x below
// this number.
func BenchmarkBatchVsSequential(b *testing.B) {
	progs := benchBatchPrograms(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pm := range progs {
			for k := 0; k < batchBenchLanes; k++ {
				inst, err := pm.p.NewInstance()
				if err != nil {
					b.Fatal(err)
				}
				h := sim.NewHarness(inst, pm.m.Clock)
				if err := h.ApplyReset(2); err != nil {
					b.Fatal(err)
				}
				in := map[string]uint64{}
				ins := pm.p.Design().Inputs()
				for c := 0; c < 500; c++ {
					for _, pt := range ins {
						if pt.Name == pm.m.Clock {
							continue
						}
						in[pt.Name] = uint64(c*31+k*7+i+len(pt.Name)) & maskBits(pt.Width)
					}
					if pm.m.HasReset {
						in["rst_n"] = 1
					}
					if _, err := h.Cycle(in); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// bitSimLanes is K for the bit-parallel benchmark: the full word width,
// one lane per bit. benchguard compares it per-lane against
// BenchmarkBatchLanes' per-lane cost and requires at least a 4x
// improvement.
const bitSimLanes = 64

// BenchmarkBitSimLanes drives the same per-cycle hot loop as the batch
// pair through the bit-parallel engine: 64 lanes x 500 cycles per module
// of the mix as word-level AIG sweeps, including engine construction
// (blasting the cycle circuit and compiling the op list) and the
// per-cycle packing of row stimulus into bit-sliced form. Recording is
// off — this is the configuration the throughput-critical consumers run
// (the directed-stimulus candidate scorer and the bit-parallel fault
// classifier screen lanes without waveforms; the differential oracle,
// which does record, is correctness-gated rather than benchmark-gated).
func BenchmarkBitSimLanes(b *testing.B) {
	progs := benchBatchPrograms(b)
	for _, pm := range progs {
		if err := psim.Supported(pm.p, pm.m.Clock); err != nil {
			b.Fatalf("%s left the bit-parallel subset: %v", pm.m.Name, err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pm := range progs {
			eng, err := psim.NewEngine(pm.p, bitSimLanes, pm.m.Clock)
			if err != nil {
				b.Fatal(err)
			}
			eng.SetRecord(false)
			if err := eng.ApplyReset(2); err != nil {
				b.Fatal(err)
			}
			ports := eng.Ports()
			rstIdx := -1
			for pi, pt := range ports {
				if pm.m.HasReset && pt.Name == "rst_n" {
					rstIdx = pi
				}
			}
			rows := make([][]uint64, bitSimLanes)
			for k := range rows {
				rows[k] = make([]uint64, len(ports))
			}
			for c := 0; c < 500; c++ {
				for k := range rows {
					for pi, pt := range ports {
						rows[k][pi] = uint64(c*31+k*7+i+len(pt.Name)) & maskBits(pt.Width)
					}
					if rstIdx >= 0 {
						rows[k][rstIdx] = 1
					}
				}
				if err := eng.Cycle(rows); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkBitSimTranspose measures the 64x64 bit-matrix transpose that
// converts between the engine's lane-sliced and bit-sliced layouts — the
// fixed per-cycle overhead every stimulus row and recorded waveform row
// pays.
func BenchmarkBitSimTranspose(b *testing.B) {
	var m [64]uint64
	for i := range m {
		m[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.SetBytes(64 * 8)
	for i := 0; i < b.N; i++ {
		psim.Transpose64(&m)
	}
}

// BenchmarkPipelineVerify measures one end-to-end core.Verify on a
// representative functional fault the way the evaluation harness runs it:
// every simulation routed through one shared compile cache and
// golden-trace memo. The first iteration pays the cold compiles; steady
// state is the warm path the 331-instance evaluation actually lives on,
// which is what cmd/benchguard pins against BENCH_baseline.json.
func BenchmarkPipelineVerify(b *testing.B) {
	f := firstOfKind(b, false)
	m := f.Meta()
	cache := sim.NewCache()
	memo := uvm.NewTraceMemo()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Verify(context.Background(), core.Input{
			Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
			RefName: m.Name, ModuleName: m.Name, Client: oracleFor(f, 1),
			Opts: core.Options{Seed: 1, Cache: cache, Memo: memo},
		})
		if !res.Success {
			b.Fatal("pipeline failed on the representative fault")
		}
	}
}

// BenchmarkPipelineVerifyCold is the same pipeline run with a fresh cache
// and memo every iteration — the pre-amortization cost, kept as the
// denominator of the cold/warm comparison EXPERIMENTS.md records.
func BenchmarkPipelineVerifyCold(b *testing.B) {
	f := firstOfKind(b, false)
	m := f.Meta()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Verify(context.Background(), core.Input{
			Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
			RefName: m.Name, ModuleName: m.Name, Client: oracleFor(f, 1),
			Opts: core.Options{Seed: 1, Cache: sim.NewCache(), Memo: uvm.NewTraceMemo()},
		})
		if !res.Success {
			b.Fatal("pipeline failed on the representative fault")
		}
	}
}

// BenchmarkProgramNewInstance measures the cost the Program/Instance
// split leaves on the per-run path: allocating and resetting fresh
// simulation state against an already-compiled program.
func BenchmarkProgramNewInstance(b *testing.B) {
	m := dataset.ByName("fifo_sync")
	p, err := sim.CompileSource(m.Source, m.Top, sim.BackendCompiled)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.NewInstance(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileCold measures a full cold compile (parse, elaborate,
// lower, levelize) of the same module — the cost the cache amortizes.
func BenchmarkCompileCold(b *testing.B) {
	m := dataset.ByName("fifo_sync")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.CompileSource(m.Source, m.Top, sim.BackendCompiled); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUVMRun measures a 100-transaction UVM run end to end.
func BenchmarkUVMRun(b *testing.B) {
	m := dataset.ByName("alu")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := uvm.NewEnv(uvm.Config{
			Source: m.Source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		var ports []sim.PortInfo
		ports = append(ports, env.DUT.Sim.Design().Inputs()...)
		if rate := env.Run(&uvm.RandomSequence{Ports: ports, N: 100}); rate != 1.0 {
			b.Fatal("golden ALU mismatched")
		}
	}
}

// BenchmarkFaultGeneration measures the paradigm error generator on one
// module across all classes.
func BenchmarkFaultGeneration(b *testing.B) {
	m := dataset.ByName("traffic_light")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, c := range faultgen.Classes() {
			n += len(faultgen.Generate(m, c))
		}
		if n == 0 {
			b.Fatal("no faults generated")
		}
	}
}

// BenchmarkBitBlast measures the formal engine's front half in
// isolation: bit-blasting one representative sequential module (FIFO:
// registers, a memory, symbolic-address muxes) and unrolling its
// transition relation 8 cycles into the AIG. This is the cost every
// bounded check pays before the first SAT clause exists, guarded by
// benchguard against the event-driven reference.
func BenchmarkBitBlast(b *testing.B) {
	m := dataset.ByName("fifo_sync")
	p, err := sim.CompileSource(m.Source, m.Top, sim.BackendCompiled)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := formal.NewModelOpts(p, formal.Options{Clock: m.Clock})
		if err != nil {
			b.Fatal(err)
		}
		st, err := model.InitState()
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 8; c++ {
			if st, err = model.Step(st, model.FreshInputs()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSATSolve measures the CDCL core on a fixed genuinely hard
// UNSAT instance (12-bit adder reassociation miter through Tseitin):
// pure propagate/analyze/backjump work, no blasting.
func BenchmarkSATSolve(b *testing.B) {
	g := formal.NewAIG()
	const w = 12
	x, y, z := g.VarVec(w), g.VarVec(w), g.VarVec(w)
	miter := g.EqVec(g.AddVec(g.AddVec(x, y), z), g.AddVec(x, g.AddVec(y, z))).Not()
	cnf, _ := g.Tseitin([]formal.Lit{miter})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := formal.NewSolverCNF(cnf)
		if s.Solve() {
			b.Fatal("reassociation miter must be UNSAT")
		}
	}
}

// bmcBenchPair compiles the accumulator pair both BMC benchmarks share:
// two syntactically different but equivalent 4-bit accumulators, so the
// solver proves UNSAT at every depth — the workload where clause
// retention pays (refutations stop at the first SAT depth and barely
// reuse anything).
func bmcBenchPair(b *testing.B) (golden, mutant *sim.Program) {
	b.Helper()
	const srcAdd = `module acc(input clk, input rst_n, input [3:0] d, output reg [3:0] q);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 4'd0; else q <= q + d;
endmodule`
	const srcSub = `module acc(input clk, input rst_n, input [3:0] d, output reg [3:0] q);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 4'd0; else q <= q - (4'd0 - d);
endmodule`
	golden, err := sim.CompileSource(srcAdd, "acc", sim.BackendCompiled)
	if err != nil {
		b.Fatal(err)
	}
	mutant, err = sim.CompileSource(srcSub, "acc", sim.BackendCompiled)
	if err != nil {
		b.Fatal(err)
	}
	return golden, mutant
}

// bmcBenchDepth is the unrolling depth of the BMCEquiv benchmark pair —
// deep enough that per-depth re-solving dominates the from-scratch loop.
const bmcBenchDepth = 8

// BenchmarkBMCEquiv measures one full bounded-equivalence proof end to
// end on the from-scratch path — blast, unroll, Tseitin and a fresh
// solver at every depth — the engine as it stood before the incremental
// interface. Paired with BenchmarkBMCEquivIncremental under a benchguard
// pair rule: the incremental path must stay strictly faster.
func BenchmarkBMCEquiv(b *testing.B) {
	golden, mutant := bmcBenchPair(b)
	opts := formal.Options{Clock: "clk", FromScratch: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := formal.BMCEquivOpts(golden, mutant, "clk", bmcBenchDepth, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Equivalent {
			b.Fatal("accumulator pair unexpectedly refuted")
		}
	}
}

// BenchmarkBMCEquivIncremental measures the same proof on the default
// incremental path: one solver and one Tseitin emission across all
// depths, learned clauses and earlier ¬bad units retained. The
// benchguard pair rule requires this to beat BenchmarkBMCEquiv.
func BenchmarkBMCEquivIncremental(b *testing.B) {
	golden, mutant := bmcBenchPair(b)
	opts := formal.Options{Clock: "clk"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := formal.BMCEquivOpts(golden, mutant, "clk", bmcBenchDepth, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Equivalent {
			b.Fatal("accumulator pair unexpectedly refuted")
		}
	}
}
