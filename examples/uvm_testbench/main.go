// uvm_testbench: use the UVM substrate directly — environment, sequences,
// scoreboard, coverage — to verify an ALU against its reference model,
// then watch the same testbench expose an injected bug.
//
//	go run ./examples/uvm_testbench
package main

import (
	"fmt"
	"strings"

	"uvllm/internal/dataset"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

func main() {
	m := dataset.ByName("alu")

	// A UVM environment wires the DUT harness, the reference model and
	// the scoreboard together (paper Fig. 3).
	env, err := uvm.NewEnv(uvm.Config{
		Source: m.Source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 42,
	})
	if err != nil {
		panic(err)
	}

	// Constrained-random sequence over all input ports.
	var ports []sim.PortInfo
	for _, p := range env.DUT.Sim.Design().Inputs() {
		ports = append(ports, p)
	}
	rate := env.Run(&uvm.RandomSequence{Ports: ports, N: 400})
	fmt.Printf("golden ALU: pass rate %.1f%%, coverage %.1f%%\n", rate*100, env.Cov.Percent())
	fmt.Println(env.Cov.Report())

	// Now the same testbench on a subtly broken ALU (SUB wired as ADD).
	buggy := strings.Replace(m.Source, "OP_SUB: y = a - b;", "OP_SUB: y = a + b;", 1)
	env2, err := uvm.NewEnv(uvm.Config{
		Source: buggy, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	rate = env2.Run(&uvm.RandomSequence{Ports: ports, N: 400})
	fmt.Printf("buggy ALU: pass rate %.1f%%, %d mismatches recorded\n",
		rate*100, len(env2.Score.Mismatches))

	fmt.Println("\nfirst UVM log lines:")
	lines := strings.Split(env2.Log(), "\n")
	for i, ln := range lines {
		if i > 4 {
			break
		}
		fmt.Println(" ", ln)
	}
}
