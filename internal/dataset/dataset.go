// Package dataset holds the 27 verified benchmark modules the UVLLM
// evaluation is run against (paper Sec. IV, Fig. 7). The modules follow the
// RTLLM benchmark's flavor — small, idiomatic, frequently reimplemented RTL
// blocks — grouped into the four categories of paper Table II. Every module
// ships with a natural-language specification (the framework's Spec input)
// and is verified against a golden Go reference model in internal/refmodel.
package dataset

import (
	"fmt"
	"sort"
)

// Category is a module group from paper Table II.
type Category string

// Categories.
const (
	Arithmetic    Category = "Arithmetic"
	Control       Category = "Control"
	Memory        Category = "Memory"
	Miscellaneous Category = "Miscellaneous"
)

// Categories lists all categories in the paper's table order.
func Categories() []Category {
	return []Category{Arithmetic, Control, Memory, Miscellaneous}
}

// Module is one verified benchmark design.
type Module struct {
	Name       string
	Category   Category
	Spec       string // natural-language specification fed to LLM prompts
	Source     string // golden Verilog (may contain submodules)
	Top        string // top-level module name
	Clock      string // clock input name, "" for combinational designs
	HasReset   bool   // has an active-low rst_n input
	Complexity int    // 1 (trivial) .. 5 (hard); drives repair difficulty
	IsFSM      bool
}

var registry []*Module
var byName = map[string]*Module{}

func register(m *Module) {
	if _, dup := byName[m.Name]; dup {
		panic(fmt.Sprintf("dataset: duplicate module %q", m.Name))
	}
	registry = append(registry, m)
	byName[m.Name] = m
}

// All returns every benchmark module, in registration (paper table) order.
func All() []*Module {
	out := make([]*Module, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the module with the given name, or nil.
func ByName(name string) *Module { return byName[name] }

// ByCategory returns the modules of one category, in order.
func ByCategory(c Category) []*Module {
	var out []*Module
	for _, m := range registry {
		if m.Category == c {
			out = append(out, m)
		}
	}
	return out
}

// Names returns all module names, sorted.
func Names() []string {
	var out []string
	for _, m := range registry {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}
