package exp

import (
	"strings"
	"testing"

	"uvllm/internal/baseline"
	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/sim"
)

// testSession is the shared compiled-backend session all shape tests draw
// their cached full-benchmark records from.
func testSession() *Session { return SharedSession(sim.BackendCompiled) }

// The tests in this file assert the qualitative structure of the paper's
// results — who wins, where the gaps are, how the stages split — on the
// cached full-benchmark run. Exact values are recorded in EXPERIMENTS.md;
// here we pin the shape with tolerant bands so the suite stays stable.

func TestHeadlineBands(t *testing.T) {
	h := testSession().ComputeHeadline()
	if h.SyntaxFR < 80 || h.SyntaxFR > 95 {
		t.Errorf("syntax FR %.2f outside band [80,95] (paper 86.99)", h.SyntaxFR)
	}
	if h.FuncFR < 62 || h.FuncFR > 80 {
		t.Errorf("functional FR %.2f outside band [62,80] (paper 71.92)", h.FuncFR)
	}
	if h.OverallFR < 72 || h.OverallFR > 88 {
		t.Errorf("overall FR %.2f outside band [72,88] (paper 79.75)", h.OverallFR)
	}
	if h.Speedup < 5 || h.Speedup > 25 {
		t.Errorf("speedup %.2fx outside band [5,25] (paper 10.42x)", h.Speedup)
	}
	if h.SyntaxHRFRGap > 2 {
		t.Errorf("UVLLM syntax HR-FR gap %.2f, paper reports none", h.SyntaxHRFRGap)
	}
	if h.FuncHRFRGap > 8 {
		t.Errorf("UVLLM functional HR-FR gap %.2f too large (paper 1.4)", h.FuncHRFRGap)
	}
	if h.MeanCoverage < 80 {
		t.Errorf("coverage %.1f%% too low for the high-coverage claim", h.MeanCoverage)
	}
}

func TestFig5Shape(t *testing.T) {
	rows := Fig5(testSession().Records())
	if len(rows) != 6 {
		t.Fatalf("Fig5 has %d rows, want 5 categories + average", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Category != "Average" {
		t.Fatal("last row must be the average")
	}
	// UVLLM wins every syntax category (paper Result 1).
	for _, r := range rows {
		if r.UVLLM.N == 0 {
			t.Errorf("category %q has no instances", r.Category)
			continue
		}
		if r.UVLLM.FR < r.MEIC.FR {
			t.Errorf("%s: UVLLM %.1f < MEIC %.1f", r.Category, r.UVLLM.FR, r.MEIC.FR)
		}
		if r.UVLLM.FR < r.Raw.FR {
			t.Errorf("%s: UVLLM %.1f < raw GPT %.1f", r.Category, r.UVLLM.FR, r.Raw.FR)
		}
		// UVLLM shows no HR-FR deviation on syntax (paper Result 2).
		if r.UVLLM.HR != r.UVLLM.FR {
			t.Errorf("%s: UVLLM HR %.1f != FR %.1f on syntax", r.Category, r.UVLLM.HR, r.UVLLM.FR)
		}
	}
	if avg.MEIC.FR <= avg.Raw.FR {
		t.Errorf("MEIC average %.1f should beat raw GPT %.1f", avg.MEIC.FR, avg.Raw.FR)
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(testSession().Records())
	if len(rows) != 5 {
		t.Fatalf("Fig6 has %d rows, want 4 categories + average", len(rows))
	}
	avg := rows[len(rows)-1]
	// UVLLM leads every method on average and is never strictly below any
	// method per category (a tie is tolerated on one cell).
	below := 0
	for _, r := range rows[:4] {
		for name, fr := range map[string]float64{
			"MEIC": r.MEIC.FR, "raw": r.Raw.FR, "Strider": r.Strider.FR, "RTLrepair": r.RTLRepair.FR,
		} {
			if r.UVLLM.FR < fr {
				below++
				t.Logf("note: %s beats UVLLM on %s (%.1f vs %.1f)", name, r.Category, fr, r.UVLLM.FR)
			}
		}
	}
	if below > 1 {
		t.Errorf("UVLLM strictly below a baseline in %d category cells", below)
	}
	for name, fr := range map[string]float64{
		"MEIC": avg.MEIC.FR, "raw": avg.Raw.FR, "Strider": avg.Strider.FR, "RTLrepair": avg.RTLRepair.FR,
	} {
		if avg.UVLLM.FR <= fr {
			t.Errorf("average: UVLLM %.1f not above %s %.1f", avg.UVLLM.FR, name, fr)
		}
	}
	// Baselines overfit on functional errors: MEIC's HR-FR deviation must
	// clearly exceed UVLLM's (paper Result 2).
	uvGap := avg.UVLLM.HR - avg.UVLLM.FR
	meicGap := avg.MEIC.HR - avg.MEIC.FR
	if meicGap <= uvGap {
		t.Errorf("MEIC HR-FR gap %.1f not above UVLLM's %.1f", meicGap, uvGap)
	}
	// RTLrepair is the best template tool on bitwidth (paper Result 1).
	for _, r := range rows[:4] {
		if r.Category == "Incorrect bitwidth" && r.RTLRepair.FR < r.Strider.FR {
			t.Errorf("RTLrepair %.1f below Strider %.1f on its specialty", r.RTLRepair.FR, r.Strider.FR)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	rows := Fig7(testSession().Records())
	if len(rows) != 27 {
		t.Fatalf("Fig7 has %d modules, want 27", len(rows))
	}
	crosses, cells := 0, 0
	var synSimple, synFSM, funcSimple, funcFSM []float64
	for _, r := range rows {
		for _, c := range faultgen.Classes() {
			cells++
			if !r.Cells[c].Applicable {
				crosses++
			}
		}
		m := dataset.ByName(r.Module)
		if m.IsFSM {
			synFSM = append(synFSM, r.Syntax.FR)
			funcFSM = append(funcFSM, r.Function.FR)
		} else if m.Complexity == 1 {
			synSimple = append(synSimple, r.Syntax.FR)
			funcSimple = append(funcSimple, r.Function.FR)
		}
		// Syntax FR >= functional FR per module type on the whole
		// benchmark (paper Result 3) — check at the aggregate below.
	}
	if crosses == 0 {
		t.Error("heat map has no x cells; paper's Fig. 7 has several")
	}
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// Simple modules beat FSMs on functional repairs (paper Result 3:
	// counters ~95%, FSMs ~32%).
	if mean(funcSimple) <= mean(funcFSM) {
		t.Errorf("functional FR: simple %.2f not above FSM %.2f", mean(funcSimple), mean(funcFSM))
	}
	// Syntax consistently above functional.
	if mean(synFSM) <= mean(funcFSM) {
		t.Errorf("FSM: syntax %.2f not above functional %.2f", mean(synFSM), mean(funcFSM))
	}
	out := FormatFig7(rows)
	if !strings.Contains(out, "x") {
		t.Error("formatted heat map missing x marks")
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(testSession().Records())
	if len(rows) != 11 {
		t.Fatalf("Table2 has %d rows, want 8 groups + 3 aggregates", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Group] = r
	}
	syn, fn, all := byName["Syntax"], byName["Function"], byName["Overall"]
	// Pre-processing dominates syntax repair; MS mode dominates functional
	// (paper Result 4).
	if !(syn.PreFR > syn.MSFR && syn.MSFR > syn.SLFR) {
		t.Errorf("syntax stage ordering wrong: pre %.1f ms %.1f sl %.1f", syn.PreFR, syn.MSFR, syn.SLFR)
	}
	if !(fn.MSFR > fn.PreFR && fn.MSFR > fn.SLFR) {
		t.Errorf("functional stage ordering wrong: pre %.1f ms %.1f sl %.1f", fn.PreFR, fn.MSFR, fn.SLFR)
	}
	// Stage FRs sum to the total.
	for _, r := range []Table2Row{syn, fn, all} {
		if diff := r.PreFR + r.MSFR + r.SLFR - r.FR; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: stage FRs sum %.2f != total %.2f", r.Group, r.PreFR+r.MSFR+r.SLFR, r.FR)
		}
		if r.T <= 0 || r.MEICT <= 0 {
			t.Errorf("%s: missing time accounting", r.Group)
		}
	}
	// UVLLM beats MEIC in FR and speed everywhere (paper Result 5).
	for _, r := range rows {
		if r.N == 0 {
			continue
		}
		if r.FR < r.MEICFR {
			t.Errorf("%s: UVLLM FR %.1f below MEIC %.1f", r.Group, r.FR, r.MEICFR)
		}
		if r.Speedup < 1 {
			t.Errorf("%s: UVLLM slower than MEIC (%.2fx)", r.Group, r.Speedup)
		}
	}
	// Pre-processing is cheaper than MS-mode repair for functional errors
	// (paper Result 4's efficiency note).
	if fn.PreT >= fn.MST {
		t.Errorf("functional: preproc time %.1f not below MS time %.1f", fn.PreT, fn.MST)
	}
}

func TestTable3Shape(t *testing.T) {
	rows := testSession().Table3()
	if len(rows) != 2 {
		t.Fatalf("Table3 has %d rows", len(rows))
	}
	pair, comp := rows[0], rows[1]
	// Pair mode is more accurate and faster (paper Table III).
	if pair.SynFR <= comp.SynFR {
		t.Errorf("pair syntax FR %.1f not above complete %.1f", pair.SynFR, comp.SynFR)
	}
	if pair.FuncFR <= comp.FuncFR {
		t.Errorf("pair functional FR %.1f not above complete %.1f", pair.FuncFR, comp.FuncFR)
	}
	if pair.SynT >= comp.SynT || pair.FuncT >= comp.FuncT {
		t.Errorf("pair mode must be faster: %+v vs %+v", pair, comp)
	}
}

func TestExpertPassJudgments(t *testing.T) {
	m := dataset.ByName("counter_12bit")
	if !ExpertPass(m.Source, m, baseline.SimServices{}) {
		t.Error("expert rejects the golden source")
	}
	buggy := strings.Replace(m.Source, "count + 12'd1", "count + 12'd2", 1)
	if ExpertPass(buggy, m, baseline.SimServices{}) {
		t.Error("expert accepts a buggy counter")
	}
	if ExpertPass("", m, baseline.SimServices{}) {
		t.Error("expert accepts empty source")
	}
	if ExpertPass("module counter_12bit(input clk; endmodule", m, baseline.SimServices{}) {
		t.Error("expert accepts syntax-broken source")
	}
}

func TestRunSubsetRespectsInstances(t *testing.T) {
	sub := faultgen.Benchmark()[:6]
	recs := Run(Config{Seed: 1, SkipBaselines: true, Instances: sub, Workers: 2})
	if len(recs) != 6 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Fault != sub[i] {
			t.Fatal("record order does not match instance order")
		}
		if r.MEIC.Hit || r.MEIC.Usage.Calls > 0 {
			t.Error("baselines ran despite SkipBaselines")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	sub := faultgen.Benchmark()[:8]
	a := Run(Config{Seed: 7, SkipBaselines: true, Instances: sub})
	b := Run(Config{Seed: 7, SkipBaselines: true, Instances: sub, Workers: 1})
	for i := range a {
		if a[i].UVLLM.Success != b[i].UVLLM.Success ||
			a[i].UVLLMFix != b[i].UVLLMFix ||
			a[i].UVLLM.Times.Total() != b[i].UVLLM.Times.Total() {
			t.Errorf("instance %s not deterministic across runs", a[i].Fault.ID)
		}
	}
}

func TestFullReportMentionsEverything(t *testing.T) {
	rep := testSession().FullReport()
	for _, want := range []string{"Fig. 5", "Fig. 6", "Fig. 7", "Table II", "Table III", "Headline"} {
		if !strings.Contains(rep, want) {
			t.Errorf("full report missing %q", want)
		}
	}
}

func TestPassAtKStudyShape(t *testing.T) {
	r := testSession().PassAtKStudy(30, 3)
	if r.Instances != 30 || len(r.PassAt) != 3 {
		t.Fatalf("shape = %+v", r)
	}
	for i, p := range r.PassAt {
		if p < 0 || p > 100 {
			t.Errorf("pass@%d = %f out of range", i+1, p)
		}
		if i > 0 && p < r.PassAt[i-1]-1e-9 {
			t.Errorf("pass@k not monotone: %v", r.PassAt)
		}
	}
	if !strings.Contains(FormatPassAtK(r), "pass@3") {
		t.Error("format missing pass@3")
	}
}
