// Package core implements the UVLLM framework pipeline of paper Fig. 2:
// pre-processing (Alg. 1), UVM processing, post-processing localization
// (Alg. 2) and the LLM repair stage, iterated under the score-register
// rollback mechanism until the DUT passes its UVM testbench or the
// iteration budget is exhausted.
package core

import (
	"context"
	"fmt"
	"strings"

	"uvllm/internal/lint"
	"uvllm/internal/llm"
	"uvllm/internal/locate"
	"uvllm/internal/metrics"
	"uvllm/internal/obs"
	"uvllm/internal/preproc"
	"uvllm/internal/repair"
	"uvllm/internal/sim"
	"uvllm/internal/synth"
	"uvllm/internal/uvm"
)

// Stage identifies which pipeline segment produced the final fix — the
// accounting axis of paper Table II.
type Stage string

// Stages.
const (
	StageNone Stage = "none"
	StagePre  Stage = "pre-processing"
	StageMS   Stage = "repair-ms"
	StageSL   Stage = "repair-sl"
)

// Options tunes the pipeline.
type Options struct {
	MaxIterations   int         // UVM/repair loop budget; paper uses 5
	SLThreshold     int         // iteration at which SL mode engages (Alg. 2's TH)
	Mode            llm.GenMode // pair (default) or complete (Table III ablation)
	UVMVectors      int         // transactions per UVM run
	Seed            int64
	DisableRollback bool        // ablation: accept every candidate
	Backend         sim.Backend // simulation engine (zero value: compiled)
	Cost            metrics.CostModel
	// Cover enables structural coverage collection (statements, branches,
	// toggles, FSM occupancy) during every UVM evaluation of the job. The
	// zero value keeps it off; it costs nothing then.
	Cover sim.CoverOptions

	// Cache is the compile cache every simulation of the job goes
	// through: the candidate of each repair iteration (and the final
	// re-evaluation, which replays a cached source) compiles once. nil
	// gets a fresh per-job cache; the evaluation harness passes its
	// process-wide one so golden modules are shared across jobs.
	Cache *sim.Cache
	// Memo serves the scoreboard's golden traces; nil gets a fresh
	// per-job memo (the 5-iteration loop replays the same stimulus).
	Memo *uvm.TraceMemo

	// OnProgress, when set, is called synchronously from the verifying
	// goroutine after every UVM evaluation of the repair loop (and once
	// after pre-processing, with Iteration 0). It exists so a serving
	// front-end can stream per-iteration verdicts; the callback must be
	// fast, must not block, and must not retain the Progress value's
	// maps past the call. It has no effect on the verdict.
	OnProgress func(Progress)
}

// Progress is one repair-loop progress event, emitted through
// Options.OnProgress. Iteration 0 reports the pre-processing outcome;
// iterations 1..MaxIterations report each UVM evaluation.
type Progress struct {
	Iteration int     // 0 = pre-processing, then 1-based repair iterations
	Stage     Stage   // pipeline segment active at this point
	Score     float64 // scoreboard pass rate of this iteration's evaluation
	Best      float64 // best pass rate seen so far in the job
	Coverage  float64 // port-level coverage percent of this evaluation
	// StructCoverage is the structural coverage percent of this
	// evaluation (0 unless Options.Cover is set).
	StructCoverage float64
	// Rollback reports that the score register rejected this iteration's
	// candidate and the loop reverted to the best source.
	Rollback bool
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 5
	}
	if o.SLThreshold == 0 {
		o.SLThreshold = 4
	}
	if o.UVMVectors == 0 {
		o.UVMVectors = 500
	}
	if o.Cost == (metrics.CostModel{}) {
		o.Cost = metrics.DefaultCostModel()
	}
	if o.Cache == nil {
		o.Cache = sim.NewCache()
	}
	if o.Memo == nil {
		o.Memo = uvm.NewTraceMemo()
	}
	return o
}

// Input is one verification job.
type Input struct {
	Source     string // the DUT as received
	Spec       string // design specification
	Top        string // top module name
	Clock      string // clock input ("" for combinational)
	RefName    string // reference model name
	ModuleName string
	Client     llm.Client
	Opts       Options
}

// StageTimes is the modeled execution-time split across pipeline segments.
type StageTimes struct {
	Pre float64
	MS  float64
	SL  float64
}

// Total is the end-to-end modeled execution time.
func (t StageTimes) Total() float64 { return t.Pre + t.MS + t.SL }

// Result is the pipeline outcome for one DUT.
type Result struct {
	Success    bool    // final UVM testbench passes (drives HR)
	PassRate   float64 // best scoreboard pass rate reached
	FinalScore float64 // scoreboard pass rate of the Final source
	FixedStage Stage   // segment whose repair produced the passing code
	Final      string  // final source
	Iterations int
	Times      StageTimes
	Usage      llm.Usage
	Coverage   float64 // best port-level (bin/toggle) coverage percent
	// StructCoverage is the best structural coverage percent observed
	// across evaluations; collected only when Options.Cover is set.
	StructCoverage float64
	// Cancelled reports that the caller's context was cancelled and the
	// repair loop stopped at an iteration boundary; the Result carries
	// whatever progress was made, but Success is necessarily false and
	// the final re-evaluation is skipped.
	Cancelled bool
	Log       []string
}

type evalResult struct {
	score float64
	log   string
	wave  *sim.Waveform
	cov   float64
	scov  float64 // structural coverage percent (0 when not collected)
	err   error
}

// Verify runs the full UVLLM pipeline on one DUT. Cancellation of ctx
// is honoured at iteration boundaries: the loop finishes the phase in
// flight, then returns with Result.Cancelled set. If ctx carries an
// obs.Span (obs.ContextWith), each pipeline phase is traced as a child
// span; with no span in the context tracing costs one nil check per
// phase.
func Verify(ctx context.Context, in Input) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	opts := in.Opts.withDefaults()
	res := Result{Final: in.Source, FixedStage: StageNone}
	job := obs.FromContext(ctx)

	// Step 1: pre-processing (Alg. 1).
	preSp := job.Child("preprocess")
	preUsage := llm.Usage{}
	pres := preproc.Run(in.Source, in.Spec, in.ModuleName, in.Client, preproc.Options{Mode: opts.Mode}, &preUsage)
	preSp.End()
	res.Usage.Calls += preUsage.Calls
	res.Usage.InputTokens += preUsage.InputTokens
	res.Usage.OutputTokens += preUsage.OutputTokens
	res.Times.Pre += opts.Cost.Lint(pres.LintRuns) + llmTime(opts.Cost, preUsage)
	res.Log = append(res.Log, pres.Log...)
	cur := pres.Source
	lastStage := StageNone
	if pres.Changed {
		lastStage = StagePre
	}
	if opts.OnProgress != nil {
		opts.OnProgress(Progress{Iteration: 0, Stage: StagePre})
	}

	reg := repair.ScoreRegister{Disabled: opts.DisableRollback}
	var lastPairs []llm.PatchPair
	var bestEval evalResult

	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if ctx.Err() != nil {
			res.Cancelled = true
			res.Log = append(res.Log, fmt.Sprintf("iter %d: cancelled before evaluation: %v", iter, ctx.Err()))
			res.Final = bestSource(reg, cur, opts)
			return res
		}
		res.Iterations = iter
		stage, llmStage := StageMS, llm.StageMS
		if iter >= opts.SLThreshold {
			stage, llmStage = StageSL, llm.StageSL
		}
		iterSp := job.Child("iteration")
		iterSp.SetArg("iter", fmt.Sprintf("%d", iter))
		iterSp.SetArg("stage", string(stage))

		// Step 2: UVM processing.
		ev := evaluate(iterSp, cur, in, opts)
		res.Times.MS += opts.Cost.Sim(opts.UVMVectors) // testing time accrues to the repair loop
		if ev.cov > res.Coverage {
			res.Coverage = ev.cov
		}
		if ev.scov > res.StructCoverage {
			res.StructCoverage = ev.scov
		}
		if ev.err != nil {
			res.Log = append(res.Log, fmt.Sprintf("iter %d: simulation failed: %v", iter, ev.err))
		}
		if ev.score > res.PassRate {
			res.PassRate = ev.score
		}
		prog := Progress{
			Iteration: iter, Stage: stage, Score: ev.score,
			Coverage: ev.cov, StructCoverage: ev.scov,
		}
		if ev.score == 1.0 {
			res.Success = true
			res.FixedStage = lastStage
			res.Final = cur
			res.FinalScore = 1.0
			if opts.OnProgress != nil {
				prog.Best = res.PassRate
				opts.OnProgress(prog)
			}
			iterSp.End()
			return res
		}

		// Rollback check (Sec. III-C).
		next, accepted := reg.Offer(cur, ev.score, lastPairs)
		if accepted || reg.Disabled {
			bestEval = ev
		}
		if !accepted {
			res.Log = append(res.Log, fmt.Sprintf("iter %d: rollback (score %.2f < best %.2f)", iter, ev.score, reg.Best().Score))
			cur = next
			ev = bestEval
			prog.Rollback = true
		}
		if opts.OnProgress != nil {
			prog.Best = res.PassRate
			opts.OnProgress(prog)
		}
		iterSp.End()

		if iter == opts.MaxIterations {
			break
		}

		// Step 3: post-processing localization (Alg. 2).
		locSp := job.Child("locate")
		locSp.SetArg("iter", fmt.Sprintf("%d", iter))
		info := locate.ErrInfoFetch(cur, ev.log, ev.wave, iter, opts.SLThreshold)
		errText := info.Format(cur)
		if ev.err != nil {
			errText = "simulation error: " + ev.err.Error() + "\n" + errText
		}
		locSp.End()

		// Step 4: repair agent (Sec. III-D).
		req := llm.BuildRepairRequest(llm.RepairContext{
			ModuleName:    in.ModuleName,
			Spec:          in.Spec,
			Source:        cur,
			Stage:         llmStage,
			ErrorInfo:     errText,
			DamageRepairs: reg.Damage,
			Iteration:     iter,
			Mode:          opts.Mode,
		})
		llmSp := job.Child("llm")
		llmSp.SetArg("iter", fmt.Sprintf("%d", iter))
		resp, err := in.Client.Complete(req)
		llmSp.End()
		if err != nil {
			res.Log = append(res.Log, fmt.Sprintf("iter %d: LLM error: %v", iter, err))
			continue
		}
		res.Usage.Add(resp)
		callTime := opts.Cost.LLMCall(resp.InputTokens, resp.OutputTokens)
		if stage == StageSL {
			res.Times.SL += callTime
		} else {
			res.Times.MS += callTime
		}
		reply, err := llm.ParseRepairReply(resp.Content)
		if err != nil {
			res.Log = append(res.Log, fmt.Sprintf("iter %d: unparseable reply: %v", iter, err))
			continue
		}
		cand, err := repair.ApplyReply(cur, reply, opts.Mode)
		if err != nil {
			res.Log = append(res.Log, fmt.Sprintf("iter %d: %v", iter, err))
			continue
		}
		if cand == cur {
			res.Log = append(res.Log, fmt.Sprintf("iter %d: no-op repair", iter))
			continue
		}

		// Synthesis check (paper Fig. 2: the repaired DUT "is then
		// synthesized as the stage output"): a patch that re-introduces
		// syntax errors is routed back through pre-processing (paper
		// Result 4: "new syntax issues ... addressed by the
		// pre-processor"), and a patch that breaks synthesizability
		// (combinational cycles, latches) is discarded outright.
		if rep := lint.Lint(cand); len(rep.Errors()) > 0 {
			fixUsage := llm.Usage{}
			p2 := preproc.Run(cand, in.Spec, in.ModuleName, in.Client, preproc.Options{Mode: opts.Mode}, &fixUsage)
			res.Usage.Calls += fixUsage.Calls
			res.Usage.InputTokens += fixUsage.InputTokens
			res.Usage.OutputTokens += fixUsage.OutputTokens
			res.Times.Pre += opts.Cost.Lint(p2.LintRuns) + llmTime(opts.Cost, fixUsage)
			if !p2.Clean {
				res.Log = append(res.Log, fmt.Sprintf("iter %d: candidate unsalvageable, discarded", iter))
				continue
			}
			cand = p2.Source
		}
		if err := synthGate(cand, in.Top); err != nil {
			res.Log = append(res.Log, fmt.Sprintf("iter %d: synthesis rejected candidate: %v", iter, err))
			continue
		}
		cur = cand
		lastStage = stage
		lastPairs = reply.Correct
	}

	res.Final = bestSource(reg, cur, opts)
	if ctx.Err() != nil {
		// Cancelled between the last iteration and the final
		// re-evaluation: deliver progress without spending more sim time.
		res.Cancelled = true
		return res
	}
	finSp := job.Child("final_eval")
	fe := evaluate(finSp, res.Final, in, opts)
	finSp.End()
	res.FinalScore = fe.score
	return res
}

// bestSource is the source the pipeline delivers when it stops without
// a pass: the score register's best, unless rollback is disabled (then
// whatever the last iteration left behind).
func bestSource(reg repair.ScoreRegister, cur string, opts Options) string {
	best := reg.Best().Source
	if best == "" || opts.DisableRollback {
		return cur
	}
	return best
}

// synthGate runs the synthesis step on a candidate. Constructs outside
// the synthesizer's scope (hierarchy, memories) pass the gate — those
// designs are validated by simulation alone, as the unsupported-construct
// errors are properties of the synthesizer, not of the candidate.
func synthGate(src, top string) error {
	_, err := synth.SynthesizeSource(src, top)
	if err == nil {
		return nil
	}
	if strings.Contains(err.Error(), "unsupported") {
		return nil
	}
	return err
}

// evaluate runs one UVM evaluation of src, tracing the compile and run
// phases as children of sp (a nil sp traces nothing).
func evaluate(sp *obs.Span, src string, in Input, opts Options) evalResult {
	cSp := sp.Child("uvm_compile")
	env, err := uvm.NewEnv(uvm.Config{
		Source: src, Top: in.Top, Clock: in.Clock, RefName: in.RefName, Seed: opts.Seed,
		Backend: opts.Backend, Cache: opts.Cache, Memo: opts.Memo, Cover: opts.Cover,
	})
	cSp.End()
	if err != nil {
		return evalResult{err: err, log: "UVM_FATAL @ 0: elaboration failed: " + err.Error()}
	}
	rSp := sp.Child("uvm_run")
	score := env.Run(randomSeq(env, opts.UVMVectors))
	rSp.End()
	ev := evalResult{
		score: score,
		log:   env.Log(),
		wave:  env.Waveform(),
		cov:   env.Cov.Percent(),
		err:   env.Fatal(),
	}
	if m := env.StructCoverage(); m != nil {
		ev.scov = m.Percent()
	}
	return ev
}

func randomSeq(env *uvm.Env, n int) *uvm.RandomSequence {
	var ports []sim.PortInfo
	for _, p := range env.DUT.Sim.Design().Inputs() {
		if p.Name == env.DUT.Clock {
			continue
		}
		ports = append(ports, p)
	}
	name, _ := sim.FindReset(env.DUT.Sim.Design())
	return &uvm.RandomSequence{Ports: ports, N: n, ResetName: name, ResetEvery: 50}
}

func llmTime(c metrics.CostModel, u llm.Usage) float64 {
	return float64(u.Calls)*c.LLMBaseSeconds +
		c.LLMPerKInputTok*float64(u.InputTokens)/1000 +
		c.LLMPerKOutputTok*float64(u.OutputTokens)/1000
}
