package exp

import (
	"uvllm/internal/baseline"
	"uvllm/internal/dataset"
	"uvllm/internal/lint"
)

// ExpertPass is the independent validation behind the Fix Rate (paper
// Eq. 2): "after expert review, if the fix is confirmed effective across
// additional scenarios". The expert is simulated by a validation suite no
// method sees during repair:
//
//   - the linter must report no errors;
//   - a long constrained-random regression (800 vectors, a seed none of
//     the methods use) must pass against the golden model;
//   - the directed corner vectors must pass as well.
//
// The validation simulations run on the same backend as the evaluation
// they validate, so `-backend event` really is an end-to-end cross-check.
// The golden module compiles through the bundle's cache (once per
// process, not once per validation) and the 800-vector golden trace
// comes from the memo — the ~12 instances sharing a module replay the
// identical reference stream.
func ExpertPass(source string, m *dataset.Module, svc baseline.SimServices) bool {
	if source == "" {
		return false
	}
	rep := lint.Lint(source)
	if len(rep.Errors()) > 0 {
		return false
	}
	ok, _, _ := baseline.RandomOwnBench(source, m, 800, 987654, svc)
	if !ok {
		return false
	}
	golden, err := svc.Compile(m.Source, m.Top)
	if err != nil {
		return false
	}
	ok, _, _ = baseline.RunOwnBench(source, m, baseline.WeakBench(m, golden.Design()), svc)
	return ok
}
