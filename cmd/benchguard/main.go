// Command benchguard is the CI bench-regression gate for the compiled
// simulation hot loop and the end-to-end verification pipeline. It parses
// `go test -bench` output, reduces each benchmark to its best (minimum
// ns/op) run across -count repetitions, and compares against the
// committed BENCH_baseline.json:
//
//	go test -run XXX -bench 'Benchmark(Sim(EventDriven|Compiled)|PipelineVerify)$' -count=5 . | tee bench.txt
//	go run ./cmd/benchguard -bench bench.txt -baseline BENCH_baseline.json
//
// Raw ns/op is machine-dependent, so every guarded quantity is a ratio
// against BenchmarkSimEventDriven measured in the same run — the
// reference interpreter cancels the host's absolute speed:
//
//   - compiled/event must stay within -tolerance of the baseline ratio
//     and strictly below 1.0 (the compiled backend must stay faster);
//   - pipeline/event (BenchmarkPipelineVerify, one warm-cache core.Verify)
//     must stay within -tolerance of its baseline ratio, pinning the
//     Program-reuse and trace-memo amortization end to end. This check is
//     skipped when the baseline file predates the pipeline benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Baseline is the committed reference measurement.
type Baseline struct {
	Note       string             `json:"note"`
	Machine    string             `json:"machine"`
	Tolerance  float64            `json:"tolerance"`  // allowed relative ratio regression, e.g. 0.20
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op on the reference machine
}

const (
	benchEvent    = "BenchmarkSimEventDriven"
	benchCompiled = "BenchmarkSimCompiled"
	benchPipeline = "BenchmarkPipelineVerify"
)

func main() {
	var (
		benchPath    = flag.String("bench", "", "go test -bench output file (default stdin)")
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
		tolerance    = flag.Float64("tolerance", 0, "override the baseline tolerance (0 = use file)")
	)
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	tol := base.Tolerance
	if *tolerance > 0 {
		tol = *tolerance
	}
	if tol <= 0 {
		tol = 0.20
	}

	in := os.Stdin
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	best, err := parseBench(in)
	if err != nil {
		fatal(err)
	}

	ev, okE := best[benchEvent]
	cp, okC := best[benchCompiled]
	if !okE || !okC {
		fatal(fmt.Errorf("bench output missing %s or %s (got %v)", benchEvent, benchCompiled, names(best)))
	}
	baseEv, okE := base.Benchmarks[benchEvent]
	baseCp, okC := base.Benchmarks[benchCompiled]
	if !okE || !okC || baseEv <= 0 || baseCp <= 0 {
		fatal(fmt.Errorf("baseline missing %s or %s", benchEvent, benchCompiled))
	}

	ratio := cp / ev
	baseRatio := baseCp / baseEv
	fmt.Printf("benchguard: event %.0f ns/op, compiled %.0f ns/op, ratio %.3f (baseline %.3f, tolerance %.0f%%)\n",
		ev, cp, ratio, baseRatio, tol*100)

	if ratio >= 1.0 {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL: compiled backend is no longer faster than event-driven (ratio %.3f)\n", ratio)
		os.Exit(1)
	}
	if ratio > baseRatio*(1+tol) {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL: compiled hot loop regressed: ratio %.3f vs baseline %.3f (>%.0f%% slower relative to the event backend)\n",
			ratio, baseRatio, tol*100)
		os.Exit(1)
	}

	if basePl, ok := base.Benchmarks[benchPipeline]; ok && basePl > 0 {
		pl, okP := best[benchPipeline]
		if !okP {
			fatal(fmt.Errorf("baseline guards %s but the bench output does not contain it", benchPipeline))
		}
		plRatio := pl / ev
		basePlRatio := basePl / baseEv
		fmt.Printf("benchguard: pipeline %.0f ns/op, ratio %.3f vs event (baseline %.3f)\n", pl, plRatio, basePlRatio)
		if plRatio > basePlRatio*(1+tol) {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL: end-to-end pipeline regressed: ratio %.3f vs baseline %.3f (>%.0f%% slower relative to the event backend)\n",
				plRatio, basePlRatio, tol*100)
			os.Exit(1)
		}
	}
	fmt.Println("benchguard: OK")
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// parseBench extracts min ns/op per benchmark from `go test -bench` output
// lines of the form "BenchmarkName-8   100   123456 ns/op ...". The -N
// GOMAXPROCS suffix is stripped.
func parseBench(f *os.File) (map[string]float64, error) {
	best := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, tok := range fields {
			if tok == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		if cur, ok := best[name]; !ok || ns < cur {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return best, nil
}

func names(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
