package assert

import (
	"fmt"
	"math/rand"
	"sort"

	"uvllm/internal/refmodel"
)

// Miner proposes candidate assertions from observed golden behavior —
// the offline stand-in for the paper's "AI-driven assertions": instead of
// asking a model to write SVA from the specification, properties are
// mined from the reference model's trace and kept only if they hold on
// every observed cycle (Daikon-style invariant detection).
type Miner struct {
	Cycles int // trace length (default 2000)
}

// PortShape describes one DUT port for the miner.
type PortShape struct {
	Name  string
	Width int
	Input bool
}

// Mine drives the golden reference model with constrained-random stimulus
// and returns every candidate assertion that survived the whole trace.
func (mn Miner) Mine(modelName string, ports []PortShape, hasReset bool, seed int64) ([]Assertion, error) {
	cycles := mn.Cycles
	if cycles == 0 {
		cycles = 2000
	}
	model, err := refmodel.New(modelName)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	var outputs []PortShape
	for _, p := range ports {
		if !p.Input {
			outputs = append(outputs, p)
		}
	}

	// Candidate pool, pruned as the trace disproves them.
	type candState struct {
		a     Assertion
		alive bool
	}
	var cands []*candState
	add := func(a Assertion) { cands = append(cands, &candState{a: a, alive: true}) }

	// Bounds start at 0 and grow to the observed maximum; emitted later.
	maxSeen := map[string]uint64{}

	for _, o := range outputs {
		if o.Width >= 2 && o.Width <= 16 {
			add(OneHot{Signal: o.Name})
			add(OneHot{Signal: o.Name, AllowZero: true})
		}
	}
	// Mutex candidates over all 1-bit output pairs.
	var bits1 []string
	for _, o := range outputs {
		if o.Width == 1 {
			bits1 = append(bits1, o.Name)
		}
	}
	sort.Strings(bits1)
	for i := 0; i < len(bits1); i++ {
		for j := i + 1; j < len(bits1); j++ {
			add(Mutex{A: bits1[i], B: bits1[j]})
		}
	}

	// Reset-value candidates: probe the model once under reset.
	resetVals := map[string]uint64{}
	if hasReset {
		probe, err := refmodel.New(modelName)
		if err == nil {
			in := map[string]uint64{}
			for _, p := range ports {
				if p.Input {
					in[p.Name] = 0
				}
			}
			in["rst_n"] = 0
			out := probe.Step(in)
			for name, v := range out {
				resetVals[name] = v
				add(ResetValue{Reset: "rst_n", Signal: name, Value: v})
			}
		}
	}

	// Drive the trace.
	model.Reset()
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]uint64{}
		for _, p := range ports {
			if !p.Input {
				continue
			}
			in[p.Name] = rng.Uint64() & mask(p.Width)
		}
		if hasReset {
			if cyc < 2 || cyc%173 == 91 {
				in["rst_n"] = 0
			} else {
				in["rst_n"] = 1
			}
		}
		out := model.Step(in)
		all := map[string]uint64{}
		for k, v := range in {
			all[k] = v
		}
		for k, v := range out {
			all[k] = v
		}
		for name, v := range out {
			if v > maxSeen[name] {
				maxSeen[name] = v
			}
		}
		for _, c := range cands {
			if c.alive && !c.a.Check(nil, all) {
				c.alive = false
			}
		}
	}

	var mined []Assertion
	for _, c := range cands {
		if c.alive {
			mined = append(mined, c.a)
		}
	}
	// Bound assertions: only interesting when the observed maximum is
	// strictly below the type's range (i.e., the invariant carries
	// information), with headroom doubled to avoid overfitting the trace.
	for _, o := range outputs {
		m := maxSeen[o.Name]
		full := mask(o.Width)
		if m < full/2 && o.Width >= 3 {
			limit := m*2 + 1
			if limit < full {
				mined = append(mined, Bound{Signal: o.Name, Limit: limit})
			}
		}
	}
	sort.Slice(mined, func(i, j int) bool { return mined[i].Name() < mined[j].Name() })
	return mined, nil
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// Describe renders a mined assertion set as an SVA-flavored block.
func Describe(as []Assertion) string {
	out := ""
	for _, a := range as {
		out += fmt.Sprintf("// %s\n%s\n", a.Name(), a.Describe())
	}
	return out
}
