package main

import (
	"flag"
	"strings"
	"testing"

	"uvllm/internal/service"
)

// TestSharedFlagValidation is the table test for the experiments CLI's
// up-front flag validation, which now lives in the shared service layer
// (service.Bind + Options.Validate) used identically by cmd/uvllm and
// cmd/uvllmd.
func TestSharedFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = valid
	}{
		{"defaults", nil, ""},
		{"explicit workers and lanes", []string{"-workers=4", "-lanes=8", "-backend=event"}, ""},
		{"negative workers", []string{"-workers=-2"}, "workers"},
		{"negative lanes", []string{"-lanes=-1"}, "lanes"},
		{"unknown backend", []string{"-backend=verilator"}, "backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			knobs := service.Bind(fs, service.FlagBackend|service.FlagWorkers|service.FlagLanes)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse flags: %v", err)
			}
			_, err := knobs.Options()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
