package dataset

func init() {
	register(&Module{
		Name: "mux4", Category: Miscellaneous, Top: "mux4",
		Complexity: 1,
		Spec: `mux4 is a combinational 4-to-1 multiplexer for 8-bit data.
The 2-bit select sel routes one of d0, d1, d2, d3 to the output y.`,
		Source: `module mux4(
    input [1:0] sel,
    input [7:0] d0,
    input [7:0] d1,
    input [7:0] d2,
    input [7:0] d3,
    output reg [7:0] y
);
    always @(*) begin
        case (sel)
            2'd0: y = d0;
            2'd1: y = d1;
            2'd2: y = d2;
            default: y = d3;
        endcase
    end
endmodule
`,
	})

	register(&Module{
		Name: "demux4", Category: Miscellaneous, Top: "demux4",
		Complexity: 1,
		Spec: `demux4 is a combinational 1-to-4 demultiplexer for 8-bit
data. The input d is routed to the output selected by sel (y0 for 0
through y3 for 3); the other outputs are zero.`,
		Source: `module demux4(
    input [1:0] sel,
    input [7:0] d,
    output reg [7:0] y0,
    output reg [7:0] y1,
    output reg [7:0] y2,
    output reg [7:0] y3
);
    always @(*) begin
        y0 = 8'd0;
        y1 = 8'd0;
        y2 = 8'd0;
        y3 = 8'd0;
        case (sel)
            2'd0: y0 = d;
            2'd1: y1 = d;
            2'd2: y2 = d;
            default: y3 = d;
        endcase
    end
endmodule
`,
	})

	register(&Module{
		Name: "decoder3to8", Category: Miscellaneous, Top: "decoder3to8",
		Complexity: 1,
		Spec: `decoder3to8 is a combinational 3-to-8 one-hot decoder with an
enable. When en is high, output bit a of y is set and all others are
clear; when en is low, y is all zeros.`,
		Source: `module decoder3to8(
    input en,
    input [2:0] a,
    output reg [7:0] y
);
    always @(*) begin
        if (en) begin
            y = 8'd1 << a;
        end else begin
            y = 8'd0;
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "priority_encoder", Category: Miscellaneous, Top: "priority_encoder",
		Complexity: 2,
		Spec: `priority_encoder is a combinational 8-to-3 priority encoder.
out is the index of the highest set bit of in, and valid indicates that
at least one input bit is set. With in == 0, out is 0 and valid is low.`,
		Source: `module priority_encoder(
    input [7:0] in,
    output reg [2:0] out,
    output reg valid
);
    integer i;
    always @(*) begin
        out = 3'd0;
        valid = 1'b0;
        for (i = 0; i < 8; i = i + 1) begin
            if (in[i]) begin
                out = i[2:0];
                valid = 1'b1;
            end
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "comparator_4bit", Category: Miscellaneous, Top: "comparator_4bit",
		Complexity: 1,
		Spec: `comparator_4bit is a combinational 4-bit unsigned magnitude
comparator with three one-hot outputs: gt when a > b, eq when a == b and
lt when a < b.`,
		Source: `module comparator_4bit(
    input [3:0] a,
    input [3:0] b,
    output gt,
    output eq,
    output lt
);
    assign gt = (a > b) ? 1'b1 : 1'b0;
    assign eq = (a == b) ? 1'b1 : 1'b0;
    assign lt = (a < b) ? 1'b1 : 1'b0;
endmodule
`,
	})

	register(&Module{
		Name: "parity_gen", Category: Miscellaneous, Top: "parity_gen",
		Complexity: 1,
		Spec: `parity_gen computes the parity bit of an 8-bit data word.
With odd_sel low it outputs even parity (XOR of all bits); with odd_sel
high it outputs odd parity (the complement).`,
		Source: `module parity_gen(
    input [7:0] data,
    input odd_sel,
    output parity
);
    assign parity = odd_sel ? ~(^data) : (^data);
endmodule
`,
	})

	register(&Module{
		Name: "gray_code", Category: Miscellaneous, Top: "gray_code",
		Complexity: 1,
		Spec: `gray_code is a combinational 4-bit binary to Gray code
converter: gray = bin XOR (bin >> 1).`,
		Source: `module gray_code(
    input [3:0] bin,
    output [3:0] gray
);
    assign gray = bin ^ (bin >> 1);
endmodule
`,
	})

	register(&Module{
		Name: "edge_detector", Category: Miscellaneous, Top: "edge_detector",
		Clock: "clk", HasReset: true, Complexity: 2,
		Spec: `edge_detector registers the input sig and produces one-cycle
pulses: rise is high the cycle after a 0-to-1 transition of sig, fall
the cycle after a 1-to-0 transition. rst_n is an active-low asynchronous
reset clearing the history and both outputs.`,
		Source: `module edge_detector(
    input clk,
    input rst_n,
    input sig,
    output reg rise,
    output reg fall
);
    reg prev;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            prev <= 1'b0;
            rise <= 1'b0;
            fall <= 1'b0;
        end else begin
            rise <= sig & ~prev;
            fall <= ~sig & prev;
            prev <= sig;
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "clk_divider", Category: Miscellaneous, Top: "clk_divider",
		Clock: "clk", HasReset: true, Complexity: 2,
		Spec: `clk_divider divides the input clock with a free-running 3-bit
counter. Outputs div2, div4 and div8 are the counter bits 0, 1 and 2,
toggling at 1/2, 1/4 and 1/8 of the clock rate. rst_n is an active-low
asynchronous reset clearing the counter.`,
		Source: `module clk_divider(
    input clk,
    input rst_n,
    output div2,
    output div4,
    output div8
);
    reg [2:0] cnt;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            cnt <= 3'd0;
        end else begin
            cnt <= cnt + 3'd1;
        end
    end
    assign div2 = cnt[0];
    assign div4 = cnt[1];
    assign div8 = cnt[2];
endmodule
`,
	})
}
