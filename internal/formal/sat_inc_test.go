package formal

import (
	"math/rand"
	"testing"
)

// randomCNF builds a random 3-SAT-ish instance around the phase
// transition, small enough for brute force.
func randomCNF(rng *rand.Rand) *CNF {
	nVars := 4 + rng.Intn(9) // 4..12
	nClauses := 2 + rng.Intn(6*nVars)
	c := &CNF{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		var cl []int
		for j := 0; j < 3; j++ {
			v := 1 + rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl = append(cl, v)
		}
		c.AddClause(cl...)
	}
	return c
}

// modelSatisfies checks the solver's captured model against a clause set
// plus extra unit literals.
func modelSatisfies(t *testing.T, s *Solver, c *CNF, units []int) {
	t.Helper()
	check := func(cl []int) bool {
		for _, l := range cl {
			if l > 0 && s.Value(l) || l < 0 && !s.Value(-l) {
				return true
			}
		}
		return false
	}
	for _, cl := range c.Clauses {
		if !check(cl) {
			t.Fatalf("model does not satisfy clause %v", cl)
		}
	}
	for _, u := range units {
		if !check([]int{u}) {
			t.Fatalf("model does not satisfy assumption %d", u)
		}
	}
}

// TestSolveAssumingMatchesUnitClauses is the property pinning the
// assumption interface: for random instances and random assumption sets,
// SolveAssuming on one long-lived solver must agree — SAT/UNSAT status
// and model validity — with a fresh solver given the assumptions as unit
// clauses. Several assumption sets are run against the same incremental
// instance so the learned clauses and saved phases of earlier calls are
// live during later ones.
func TestSolveAssumingMatchesUnitClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		c := randomCNF(rng)
		inc := NewSolverCNF(c)
		for call := 0; call < 4; call++ {
			nAssume := rng.Intn(c.NumVars + 1)
			var assume []int
			seen := map[int]bool{}
			for len(assume) < nAssume {
				v := 1 + rng.Intn(c.NumVars)
				if seen[v] {
					continue
				}
				seen[v] = true
				if rng.Intn(2) == 0 {
					v = -v
				}
				assume = append(assume, v)
			}
			fresh := NewSolverCNF(c)
			for _, a := range assume {
				fresh.AddClause(a)
			}
			want := fresh.Solve()
			got := inc.SolveAssuming(assume...)
			if got != want {
				t.Fatalf("trial %d call %d assume %v: incremental=%v fresh-with-units=%v",
					trial, call, assume, got, want)
			}
			if got {
				modelSatisfies(t, inc, c, assume)
			}
		}
	}
}

// TestUnsatCoreSoundAndMinimal spot-checks final-conflict extraction on
// random instances: whenever an assumption set fails, the reported core
// must (a) be a subset of the assumptions, (b) be jointly unsatisfiable
// with the clause set on a fresh solver, and (c) after MinimizeCore,
// be 1-minimal — dropping any single literal flips the remainder to SAT.
func TestUnsatCoreSoundAndMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cores := 0
	for trial := 0; trial < 400 && cores < 40; trial++ {
		c := randomCNF(rng)
		s := NewSolverCNF(c)
		// A full random phase assignment over all variables: SAT instances
		// then fail on their assumptions often enough to harvest cores.
		var assume []int
		for v := 1; v <= c.NumVars; v++ {
			if rng.Intn(2) == 0 {
				assume = append(assume, v)
			} else {
				assume = append(assume, -v)
			}
		}
		if s.SolveAssuming(assume...) {
			continue
		}
		core := s.UnsatCore()
		if core == nil {
			// The clause set alone is UNSAT; no final conflict to check.
			continue
		}
		cores++
		inAssume := map[int]bool{}
		for _, a := range assume {
			inAssume[a] = true
		}
		for _, l := range core {
			if !inAssume[l] {
				t.Fatalf("trial %d: core literal %d is not an assumption (%v)", trial, l, core)
			}
		}
		checkUnsatWithUnits := func(units []int) bool {
			f := NewSolverCNF(c)
			for _, u := range units {
				f.AddClause(u)
			}
			return !f.Solve()
		}
		if !checkUnsatWithUnits(core) {
			t.Fatalf("trial %d: core %v is not actually unsatisfiable with the clauses", trial, core)
		}
		min := s.MinimizeCore()
		if !checkUnsatWithUnits(min) {
			t.Fatalf("trial %d: minimized core %v is not unsatisfiable", trial, min)
		}
		for i := range min {
			rest := make([]int, 0, len(min)-1)
			rest = append(rest, min[:i]...)
			rest = append(rest, min[i+1:]...)
			if checkUnsatWithUnits(rest) {
				t.Fatalf("trial %d: dropping %d from minimized core %v stays UNSAT — not minimal",
					trial, min[i], min)
			}
		}
	}
	if cores < 10 {
		t.Fatalf("only %d assumption failures harvested: the core path went untested", cores)
	}
}

// TestSolverResumeAfterExhausted pins the resume semantics of a budgeted
// give-up: each new call gets a fresh MaxConflicts budget and continues
// the search with learned clauses intact, Stats() stays cumulative, and
// the eventual verdict matches an unbudgeted run.
func TestSolverResumeAfterExhausted(t *testing.T) {
	s := NewSolverCNF(pigeonhole(7, 6))
	s.MaxConflicts = 50
	calls := 0
	var sat bool
	for {
		calls++
		if calls > 10000 {
			t.Fatal("PHP(7,6) did not finish after 10000 resumed calls")
		}
		sat = s.Solve()
		cs := s.CallStats()
		if cs.Conflicts > s.MaxConflicts {
			t.Fatalf("call %d spent %d conflicts against a budget of %d", calls, cs.Conflicts, s.MaxConflicts)
		}
		if !s.Exhausted() {
			break
		}
	}
	if sat {
		t.Fatal("PHP(7,6) must be UNSAT")
	}
	if calls < 2 {
		t.Fatalf("PHP(7,6) finished in %d call(s) under a 50-conflict budget: resume path untested", calls)
	}
	if total := s.Stats().Conflicts; total <= s.MaxConflicts {
		t.Fatalf("cumulative Stats().Conflicts = %d, want more than one budget's worth", total)
	}
}

// TestSolverIncrementalClauseAddition checks that clauses (and variables)
// added between calls behave exactly as if present from the start, on
// both sides of a SAT-to-UNSAT flip.
func TestSolverIncrementalClauseAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		c := randomCNF(rng)
		half := len(c.Clauses) / 2
		inc := NewSolver(c.NumVars)
		for _, cl := range c.Clauses[:half] {
			inc.AddClause(cl...)
		}
		inc.Solve() // learn something over the prefix
		for _, cl := range c.Clauses[half:] {
			inc.AddClause(cl...)
		}
		want := bruteForceSAT(c)
		if got := inc.Solve(); got != want {
			t.Fatalf("trial %d: after staged clause addition solver=%v brute=%v", trial, got, want)
		}
	}
	// Variables allocated after a satisfiable call read false until the
	// next model capture, and NewVar grows a solver created empty.
	s := NewSolver(0)
	v1 := s.NewVar()
	s.AddClause(v1)
	if !s.Solve() || !s.Value(v1) {
		t.Fatal("unit clause over a NewVar variable must solve to true")
	}
	v2 := s.NewVar()
	if s.Value(v2) {
		t.Fatal("a variable allocated after the model capture must read false")
	}
	s.AddClause(-v2)
	if !s.Solve() || s.Value(v2) || !s.Value(v1) {
		t.Fatal("model after growth must satisfy both unit clauses")
	}
}

// TestSolverModelSurvivesFailedProbe pins the contract minimization
// relies on: a failed (UNSAT or assumption-failed) call must not clobber
// the model captured by the last satisfiable call.
func TestSolverModelSurvivesFailedProbe(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(1, 2)
	s.AddClause(-1, 2) // forces x2 under x1; x2 alone also fine
	if !s.SolveAssuming(1) {
		t.Fatal("satisfiable instance reported UNSAT")
	}
	if !s.Value(1) || !s.Value(2) {
		t.Fatalf("model: x1=%v x2=%v, want true/true", s.Value(1), s.Value(2))
	}
	if s.SolveAssuming(1, -2) {
		t.Fatal("x1 ∧ ¬x2 must fail")
	}
	if !s.Value(1) || !s.Value(2) {
		t.Fatal("failed probe clobbered the captured model")
	}
	if core := s.UnsatCore(); core == nil {
		t.Fatal("assumption failure must produce a final-conflict core")
	}
}
