// Package assert implements the assertion extension the UVLLM paper calls
// out under "Extensibility" (Sec. III-B): UVM's structured environment is
// "optimally configured to incorporate ... AI-driven assertions". Here the
// AI assertion writer is replaced by an invariant miner: candidate
// assertions are proposed from the golden reference model's behavior on a
// random trace (the same substitution pattern as the reference models
// themselves), then checked cycle by cycle inside the UVM monitor.
//
// Supported assertion forms:
//
//   - Invariant:   a predicate over current-cycle signal values
//   - ResetValue:  a signal's value whenever reset is asserted
//   - OneHot:      exactly one bit of a signal set (optionally allowing 0)
//   - Bound:       signal value never exceeds a constant
//   - Mutex:       two 1-bit signals never high together
//   - Implication: antecedent now implies consequent now (combinational)
package assert

import (
	"fmt"
	"math/bits"
	"sort"
)

// Assertion is a checkable property over cycle-sampled signal values.
type Assertion interface {
	// Name is a short stable identifier.
	Name() string
	// Describe renders an SVA-flavored description.
	Describe() string
	// Check evaluates the property on one cycle's values (prev is the
	// previous cycle's values, nil on the first cycle).
	Check(prev, cur map[string]uint64) bool
}

// Violation records one failed assertion check.
type Violation struct {
	Assertion string
	Cycle     int
	Detail    string
}

// Checker evaluates a set of assertions against a cycle stream.
type Checker struct {
	Assertions []Assertion
	Violations []Violation
	Max        int // cap on recorded violations (default 32)
	cycle      int
	prev       map[string]uint64
	failed     map[string]int // per-assertion failure counts
}

// NewChecker builds a checker over the given assertions.
func NewChecker(as []Assertion) *Checker {
	return &Checker{Assertions: as, Max: 32, failed: map[string]int{}}
}

// Sample checks one cycle of values, recording violations.
func (c *Checker) Sample(cur map[string]uint64) {
	for _, a := range c.Assertions {
		if !a.Check(c.prev, cur) {
			c.failed[a.Name()]++
			if len(c.Violations) < c.Max {
				c.Violations = append(c.Violations, Violation{
					Assertion: a.Name(), Cycle: c.cycle, Detail: a.Describe(),
				})
			}
		}
	}
	cp := make(map[string]uint64, len(cur))
	for k, v := range cur {
		cp[k] = v
	}
	c.prev = cp
	c.cycle++
}

// Failed returns the names of assertions that failed at least once,
// sorted.
func (c *Checker) Failed() []string {
	var out []string
	for n := range c.failed {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Passed reports whether no assertion failed.
func (c *Checker) Passed() bool { return len(c.failed) == 0 }

// ---------------------------------------------------------------------------
// Assertion forms

// OneHot asserts that exactly one bit of Signal is set (or zero bits when
// AllowZero is set).
type OneHot struct {
	Signal    string
	AllowZero bool
}

// Name implements Assertion.
func (a OneHot) Name() string { return "onehot_" + a.Signal }

// Describe implements Assertion.
func (a OneHot) Describe() string {
	if a.AllowZero {
		return fmt.Sprintf("assert property ($onehot0(%s));", a.Signal)
	}
	return fmt.Sprintf("assert property ($onehot(%s));", a.Signal)
}

// Check implements Assertion.
func (a OneHot) Check(_, cur map[string]uint64) bool {
	n := bits.OnesCount64(cur[a.Signal])
	return n == 1 || (a.AllowZero && n == 0)
}

// Bound asserts Signal <= Limit.
type Bound struct {
	Signal string
	Limit  uint64
}

// Name implements Assertion.
func (a Bound) Name() string { return "bound_" + a.Signal }

// Describe implements Assertion.
func (a Bound) Describe() string {
	return fmt.Sprintf("assert property (%s <= %d);", a.Signal, a.Limit)
}

// Check implements Assertion.
func (a Bound) Check(_, cur map[string]uint64) bool { return cur[a.Signal] <= a.Limit }

// Mutex asserts two signals are never nonzero together.
type Mutex struct {
	A, B string
}

// Name implements Assertion.
func (a Mutex) Name() string { return "mutex_" + a.A + "_" + a.B }

// Describe implements Assertion.
func (a Mutex) Describe() string {
	return fmt.Sprintf("assert property (!(%s && %s));", a.A, a.B)
}

// Check implements Assertion.
func (a Mutex) Check(_, cur map[string]uint64) bool {
	return cur[a.A] == 0 || cur[a.B] == 0
}

// ResetValue asserts Signal == Value on any cycle where the (active-low)
// reset input is asserted.
type ResetValue struct {
	Reset  string // reset input name (active low)
	Signal string
	Value  uint64
}

// Name implements Assertion.
func (a ResetValue) Name() string { return "reset_" + a.Signal }

// Describe implements Assertion.
func (a ResetValue) Describe() string {
	return fmt.Sprintf("assert property (!%s |-> %s == %d);", a.Reset, a.Signal, a.Value)
}

// Check implements Assertion.
func (a ResetValue) Check(_, cur map[string]uint64) bool {
	if cur[a.Reset] != 0 {
		return true
	}
	return cur[a.Signal] == a.Value
}

// Implication asserts that Antecedent(cur) implies Consequent(cur).
type Implication struct {
	Label      string
	Antecedent func(map[string]uint64) bool
	Consequent func(map[string]uint64) bool
	Text       string
}

// Name implements Assertion.
func (a Implication) Name() string { return "impl_" + a.Label }

// Describe implements Assertion.
func (a Implication) Describe() string { return a.Text }

// Check implements Assertion.
func (a Implication) Check(_, cur map[string]uint64) bool {
	if !a.Antecedent(cur) {
		return true
	}
	return a.Consequent(cur)
}

// Invariant asserts a free-form predicate over current values.
type Invariant struct {
	Label string
	Pred  func(map[string]uint64) bool
	Text  string
}

// Name implements Assertion.
func (a Invariant) Name() string { return "inv_" + a.Label }

// Describe implements Assertion.
func (a Invariant) Describe() string { return a.Text }

// Check implements Assertion.
func (a Invariant) Check(_, cur map[string]uint64) bool { return a.Pred(cur) }
