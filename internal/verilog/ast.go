package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// SourceFile is the root of a parsed Verilog file.
type SourceFile struct {
	Modules []*Module
}

// Module finds a module by name, or nil.
func (f *SourceFile) Module(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	DirInput PortDir = iota
	DirOutput
	DirInout
)

// String implements fmt.Stringer.
func (d PortDir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	}
	return "dir?"
}

// Module is a Verilog module declaration.
type Module struct {
	Name  string
	Line  int
	Ports []*Port
	Items []Item
}

// Port returns the module port named name, or nil.
func (m *Module) Port(name string) *Port {
	for _, p := range m.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// InputPorts returns the input ports in declaration order.
func (m *Module) InputPorts() []*Port {
	var out []*Port
	for _, p := range m.Ports {
		if p.Dir == DirInput {
			out = append(out, p)
		}
	}
	return out
}

// OutputPorts returns the output ports in declaration order.
func (m *Module) OutputPorts() []*Port {
	var out []*Port
	for _, p := range m.Ports {
		if p.Dir == DirOutput {
			out = append(out, p)
		}
	}
	return out
}

// Port is a module port (ANSI style).
type Port struct {
	Dir    PortDir
	IsReg  bool
	Signed bool
	Range  *Range // nil means 1-bit
	Name   string
	Line   int
}

// Range is a [MSB:LSB] vector or array range.
type Range struct {
	MSB Expr
	LSB Expr
}

// Item is a module-level item.
type Item interface {
	ItemLine() int
	itemNode()
}

// NetKind distinguishes net/variable declarations.
type NetKind int

// Net kinds.
const (
	KindWire NetKind = iota
	KindReg
	KindInteger
)

// String implements fmt.Stringer.
func (k NetKind) String() string {
	switch k {
	case KindWire:
		return "wire"
	case KindReg:
		return "reg"
	case KindInteger:
		return "integer"
	}
	return "net?"
}

// DeclName is one name within a declaration list, optionally an array
// (memory) with an initializer (wire only).
type DeclName struct {
	Name       string
	ArrayRange *Range // non-nil for memories: reg [7:0] mem [0:255]
	Init       Expr   // wire w = expr
	Line       int
}

// NetDecl declares wires, regs or integers.
type NetDecl struct {
	Kind   NetKind
	Signed bool
	Range  *Range
	Names  []DeclName
	Line   int
}

// ParamDecl declares a parameter or localparam.
type ParamDecl struct {
	Local bool
	Name  string
	Value Expr
	Line  int
}

// ContAssign is a continuous assignment: assign LHS = RHS.
type ContAssign struct {
	LHS  Expr
	RHS  Expr
	Line int
}

// EdgeKind is a sensitivity edge.
type EdgeKind int

// Edge kinds.
const (
	EdgeNone EdgeKind = iota // level sensitivity
	EdgePos
	EdgeNeg
)

// String implements fmt.Stringer.
func (e EdgeKind) String() string {
	switch e {
	case EdgePos:
		return "posedge"
	case EdgeNeg:
		return "negedge"
	}
	return ""
}

// SensItem is one entry of a sensitivity list.
type SensItem struct {
	Edge   EdgeKind
	Signal string
	Line   int
}

// SensList is an always-block sensitivity list. Star means @(*) or @*.
type SensList struct {
	Star  bool
	Items []SensItem
}

// Edged reports whether any item is edge-triggered (a sequential block).
func (s *SensList) Edged() bool {
	for _, it := range s.Items {
		if it.Edge != EdgeNone {
			return true
		}
	}
	return false
}

// AlwaysBlock is an always construct.
type AlwaysBlock struct {
	Sens *SensList
	Body Stmt
	Line int
}

// InitialBlock is an initial construct (executed once at time zero).
type InitialBlock struct {
	Body Stmt
	Line int
}

// PortConn is a named connection .Port(Expr) for instances and parameter
// overrides. Expr may be nil for an unconnected port: .p().
type PortConn struct {
	Port string
	Expr Expr
	Line int
}

// Instance is a module instantiation.
type Instance struct {
	ModName  string
	InstName string
	Params   []PortConn
	Conns    []PortConn
	Line     int
}

// ItemLine implements Item.
func (d *NetDecl) ItemLine() int { return d.Line }

// ItemLine implements Item.
func (d *ParamDecl) ItemLine() int { return d.Line }

// ItemLine implements Item.
func (a *ContAssign) ItemLine() int { return a.Line }

// ItemLine implements Item.
func (a *AlwaysBlock) ItemLine() int { return a.Line }

// ItemLine implements Item.
func (i *InitialBlock) ItemLine() int { return i.Line }

// ItemLine implements Item.
func (i *Instance) ItemLine() int { return i.Line }

func (d *NetDecl) itemNode()      {}
func (d *ParamDecl) itemNode()    {}
func (a *ContAssign) itemNode()   {}
func (a *AlwaysBlock) itemNode()  {}
func (i *InitialBlock) itemNode() {}
func (i *Instance) itemNode()     {}

// Stmt is a procedural statement.
type Stmt interface {
	StmtLine() int
	stmtNode()
}

// Block is begin ... end.
type Block struct {
	Stmts []Stmt
	Line  int
}

// Assign is a procedural assignment. Blocking selects "=" vs "<=".
type Assign struct {
	LHS      Expr
	RHS      Expr
	Blocking bool
	Line     int
}

// If is an if/else statement. Else may be nil.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Line int
}

// CaseItem is one arm of a case statement; Exprs nil means default.
type CaseItem struct {
	Exprs []Expr
	Body  Stmt
	Line  int
}

// Case is case/casez/casex.
type Case struct {
	Kind  string // "case", "casez", "casex"
	Expr  Expr
	Items []CaseItem
	Line  int
}

// For is a for loop with assignment init and step.
type For struct {
	Init *Assign
	Cond Expr
	Step *Assign
	Body Stmt
	Line int
}

// NullStmt is a bare semicolon.
type NullStmt struct {
	Line int
}

// StmtLine implements Stmt.
func (b *Block) StmtLine() int { return b.Line }

// StmtLine implements Stmt.
func (a *Assign) StmtLine() int { return a.Line }

// StmtLine implements Stmt.
func (i *If) StmtLine() int { return i.Line }

// StmtLine implements Stmt.
func (c *Case) StmtLine() int { return c.Line }

// StmtLine implements Stmt.
func (f *For) StmtLine() int { return f.Line }

// StmtLine implements Stmt.
func (n *NullStmt) StmtLine() int { return n.Line }

func (b *Block) stmtNode()    {}
func (a *Assign) stmtNode()   {}
func (i *If) stmtNode()       {}
func (c *Case) stmtNode()     {}
func (f *For) stmtNode()      {}
func (n *NullStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface {
	ExprLine() int
	exprNode()
}

// Ident is a signal or parameter reference.
type Ident struct {
	Name string
	Line int
}

// Number is a literal. Width 0 means unsized (32-bit by convention).
type Number struct {
	Text  string
	Width int
	Value uint64
	HasXZ bool
	Line  int
}

// Unary is a prefix operation, including reductions (&, |, ^, ~&, ~|, ~^).
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is an infix operation.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
	Line             int
}

// Index is a bit-select or memory word select: x[i].
type Index struct {
	X     Expr
	Index Expr
	Line  int
}

// PartSelect is a constant part select: x[msb:lsb].
type PartSelect struct {
	X        Expr
	MSB, LSB Expr
	Line     int
}

// Concat is {a, b, c}.
type Concat struct {
	Parts []Expr
	Line  int
}

// Repl is a replication {n{expr}}.
type Repl struct {
	Count Expr
	Value Expr
	Line  int
}

// ExprLine implements Expr.
func (e *Ident) ExprLine() int { return e.Line }

// ExprLine implements Expr.
func (e *Number) ExprLine() int { return e.Line }

// ExprLine implements Expr.
func (e *Unary) ExprLine() int { return e.Line }

// ExprLine implements Expr.
func (e *Binary) ExprLine() int { return e.Line }

// ExprLine implements Expr.
func (e *Ternary) ExprLine() int { return e.Line }

// ExprLine implements Expr.
func (e *Index) ExprLine() int { return e.Line }

// ExprLine implements Expr.
func (e *PartSelect) ExprLine() int { return e.Line }

// ExprLine implements Expr.
func (e *Concat) ExprLine() int { return e.Line }

// ExprLine implements Expr.
func (e *Repl) ExprLine() int { return e.Line }

func (e *Ident) exprNode()      {}
func (e *Number) exprNode()     {}
func (e *Unary) exprNode()      {}
func (e *Binary) exprNode()     {}
func (e *Ternary) exprNode()    {}
func (e *Index) exprNode()      {}
func (e *PartSelect) exprNode() {}
func (e *Concat) exprNode()     {}
func (e *Repl) exprNode()       {}

// ParseNumberLiteral decodes a Verilog number token into width, value and
// whether it contained x/z digits (which our 2-state evaluation maps to 0).
func ParseNumberLiteral(text string) (width int, value uint64, hasXZ bool, err error) {
	s := strings.ReplaceAll(text, "_", "")
	tick := strings.IndexByte(s, '\'')
	if tick < 0 {
		v, perr := strconv.ParseUint(s, 10, 64)
		if perr != nil {
			return 0, 0, false, fmt.Errorf("verilog: bad number %q", text)
		}
		return 0, v, false, nil
	}
	width = 0
	if tick > 0 {
		w, perr := strconv.Atoi(s[:tick])
		if perr != nil || w <= 0 || w > 64 {
			return 0, 0, false, fmt.Errorf("verilog: bad width in %q", text)
		}
		width = w
	}
	rest := s[tick+1:]
	if rest != "" && (rest[0] == 's' || rest[0] == 'S') {
		rest = rest[1:]
	}
	if rest == "" {
		return 0, 0, false, fmt.Errorf("verilog: missing base in %q", text)
	}
	base := rest[0]
	digits := rest[1:]
	var radix int
	switch base {
	case 'b', 'B':
		radix = 2
	case 'o', 'O':
		radix = 8
	case 'd', 'D':
		radix = 10
	case 'h', 'H':
		radix = 16
	default:
		return 0, 0, false, fmt.Errorf("verilog: bad base %q in %q", string(base), text)
	}
	// Map x/z/? digits to 0, flagging them.
	clean := make([]byte, 0, len(digits))
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?' {
			hasXZ = true
			clean = append(clean, '0')
		} else {
			clean = append(clean, c)
		}
	}
	if len(clean) == 0 {
		return 0, 0, false, fmt.Errorf("verilog: no digits in %q", text)
	}
	v, perr := strconv.ParseUint(string(clean), radix, 64)
	if perr != nil {
		return 0, 0, false, fmt.Errorf("verilog: bad digits in %q", text)
	}
	if width > 0 && width < 64 {
		v &= (1 << uint(width)) - 1
	}
	return width, v, hasXZ, nil
}
