package formal

// Vec is a little-endian bit vector of AIG literals: Vec[0] is bit 0. The
// word-level operators in this file mirror the 2-state semantics of
// internal/sim's expression evaluator bit for bit — 64-bit arithmetic with
// masking at context-width boundaries, logical shifts, unsigned compares,
// division-by-zero yielding zero — so a symbolic evaluation and a concrete
// simulation of the same expression can never disagree.
type Vec []Lit

// ConstVec builds a constant vector of width w from the low bits of v.
func (g *AIG) ConstVec(v uint64, w int) Vec {
	out := make(Vec, w)
	for i := 0; i < w; i++ {
		if v>>uint(i)&1 == 1 {
			out[i] = True
		} else {
			out[i] = False
		}
	}
	return out
}

// VarVec allocates w fresh input variables.
func (g *AIG) VarVec(w int) Vec {
	out := make(Vec, w)
	for i := range out {
		out[i] = g.NewVar()
	}
	return out
}

// ConstVal reports whether every bit of the vector is constant and, if
// so, its value.
func (g *AIG) ConstVal(x Vec) (uint64, bool) {
	var v uint64
	for i, l := range x {
		c, b := g.IsConst(l)
		if !c {
			return 0, false
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v, true
}

// Resize truncates or zero-extends x to width w (the &mask of the
// simulator's context-width boundaries).
func (g *AIG) Resize(x Vec, w int) Vec {
	if len(x) == w {
		return x
	}
	out := make(Vec, w)
	for i := 0; i < w; i++ {
		if i < len(x) {
			out[i] = x[i]
		} else {
			out[i] = False
		}
	}
	return out
}

// NotVec complements every bit.
func (g *AIG) NotVec(x Vec) Vec {
	out := make(Vec, len(x))
	for i, l := range x {
		out[i] = l.Not()
	}
	return out
}

// AndVec is the bitwise AND of equal-width vectors.
func (g *AIG) AndVec(x, y Vec) Vec {
	out := make(Vec, len(x))
	for i := range x {
		out[i] = g.And(x[i], y[i])
	}
	return out
}

// OrVec is the bitwise OR of equal-width vectors.
func (g *AIG) OrVec(x, y Vec) Vec {
	out := make(Vec, len(x))
	for i := range x {
		out[i] = g.Or(x[i], y[i])
	}
	return out
}

// XorVec is the bitwise XOR of equal-width vectors.
func (g *AIG) XorVec(x, y Vec) Vec {
	out := make(Vec, len(x))
	for i := range x {
		out[i] = g.Xor(x[i], y[i])
	}
	return out
}

// MuxVec selects t when c is true, e otherwise (equal widths).
func (g *AIG) MuxVec(c Lit, t, e Vec) Vec {
	if c == True {
		return t
	}
	if c == False {
		return e
	}
	out := make(Vec, len(t))
	for i := range t {
		out[i] = g.Mux(c, t[i], e[i])
	}
	return out
}

// AddVec is the ripple-carry sum of equal-width vectors, carry-out
// discarded (the simulator masks at context width).
func (g *AIG) AddVec(x, y Vec) Vec {
	out := make(Vec, len(x))
	c := False
	for i := range x {
		s := g.Xor(x[i], y[i])
		out[i] = g.Xor(s, c)
		c = g.Or(g.And(x[i], y[i]), g.And(s, c))
	}
	return out
}

// SubVec is x - y in two's complement at the vectors' width.
func (g *AIG) SubVec(x, y Vec) Vec {
	out := make(Vec, len(x))
	c := True // plus one: x + ~y + 1
	for i := range x {
		yi := y[i].Not()
		s := g.Xor(x[i], yi)
		out[i] = g.Xor(s, c)
		c = g.Or(g.And(x[i], yi), g.And(s, c))
	}
	return out
}

// NegVec is two's-complement negation.
func (g *AIG) NegVec(x Vec) Vec {
	return g.SubVec(g.ConstVec(0, len(x)), x)
}

// MulVec is the shift-and-add product at the vectors' width (high half
// discarded, matching the masked 64-bit multiply of the simulator).
func (g *AIG) MulVec(x, y Vec) Vec {
	w := len(x)
	acc := g.ConstVec(0, w)
	for i := 0; i < w; i++ {
		// Partial product: (x << i) gated by y[i], added into acc.
		if y[i] == False {
			continue
		}
		pp := make(Vec, w)
		for j := 0; j < w; j++ {
			if j < i {
				pp[j] = False
			} else {
				pp[j] = g.And(x[j-i], y[i])
			}
		}
		acc = g.AddVec(acc, pp)
	}
	return acc
}

// DivModVec builds a restoring divider returning (x / y, x % y) at the
// vectors' width, with the Verilog-2-state convention that division or
// modulo by zero yields zero.
func (g *AIG) DivModVec(x, y Vec) (quo, rem Vec) {
	w := len(x)
	q := make(Vec, w)
	r := g.ConstVec(0, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		shifted := make(Vec, w)
		shifted[0] = x[i]
		for j := 1; j < w; j++ {
			shifted[j] = r[j-1]
		}
		// The shift-out bit of r makes the partial remainder w+1 bits
		// wide; if it is set the subtraction always fits.
		hi := r[w-1]
		diff := g.SubVec(shifted, y)
		ge := g.Or(hi, g.UleVec(y, shifted))
		q[i] = ge
		r = g.MuxVec(ge, diff, shifted)
	}
	zero := g.EqVec(y, g.ConstVec(0, w))
	quo = g.MuxVec(zero, g.ConstVec(0, w), q)
	rem = g.MuxVec(zero, g.ConstVec(0, w), r)
	return quo, rem
}

// EqVec is the 1-bit equality of equal-width vectors.
func (g *AIG) EqVec(x, y Vec) Lit {
	out := True
	for i := range x {
		out = g.And(out, g.Xor(x[i], y[i]).Not())
	}
	return out
}

// EqConst compares a vector against a constant.
func (g *AIG) EqConst(x Vec, v uint64) Lit {
	out := True
	for i := range x {
		if v>>uint(i)&1 == 1 {
			out = g.And(out, x[i])
		} else {
			out = g.And(out, x[i].Not())
		}
	}
	if v>>uint(len(x)) != 0 {
		return False // constant does not fit in the vector's width
	}
	return out
}

// UltVec is the 1-bit unsigned x < y over equal-width vectors.
func (g *AIG) UltVec(x, y Vec) Lit {
	lt := False
	for i := 0; i < len(x); i++ {
		bitLT := g.And(x[i].Not(), y[i])
		bitEQ := g.Xor(x[i], y[i]).Not()
		lt = g.Or(bitLT, g.And(bitEQ, lt))
	}
	return lt
}

// UleVec is the 1-bit unsigned x <= y over equal-width vectors.
func (g *AIG) UleVec(x, y Vec) Lit { return g.UltVec(y, x).Not() }

// RedOr is the reduction OR (the simulator's "value != 0" test).
func (g *AIG) RedOr(x Vec) Lit {
	out := False
	for _, l := range x {
		out = g.Or(out, l)
	}
	return out
}

// RedAnd is the reduction AND.
func (g *AIG) RedAnd(x Vec) Lit {
	out := True
	for _, l := range x {
		out = g.And(out, l)
	}
	return out
}

// RedXor is the reduction XOR (parity).
func (g *AIG) RedXor(x Vec) Lit {
	out := False
	for _, l := range x {
		out = g.Xor(out, l)
	}
	return out
}

// ShlVec is the logical left shift of x by the (self-determined-width)
// amount n, a barrel shifter over n's bits. Amounts at or above 64 yield
// zero, mirroring the simulator's uint64 arithmetic; amounts at or above
// len(x) zero the vector naturally.
func (g *AIG) ShlVec(x Vec, n Vec) Vec {
	out := x
	overflow := False
	for i, nl := range n {
		if i >= 6 {
			// Bit weights >= 64: any set bit forces the zero result.
			overflow = g.Or(overflow, nl)
			continue
		}
		sh := 1 << uint(i)
		shifted := make(Vec, len(x))
		for j := range shifted {
			if j >= sh {
				shifted[j] = out[j-sh]
			} else {
				shifted[j] = False
			}
		}
		out = g.MuxVec(nl, shifted, out)
	}
	return g.MuxVec(overflow, g.ConstVec(0, len(x)), out)
}

// ShrVec is the logical right shift of x by amount n, with the same
// overflow convention as ShlVec.
func (g *AIG) ShrVec(x Vec, n Vec) Vec {
	out := x
	overflow := False
	for i, nl := range n {
		if i >= 6 {
			overflow = g.Or(overflow, nl)
			continue
		}
		sh := 1 << uint(i)
		shifted := make(Vec, len(x))
		for j := range shifted {
			if j+sh < len(x) {
				shifted[j] = out[j+sh]
			} else {
				shifted[j] = False
			}
		}
		out = g.MuxVec(nl, shifted, out)
	}
	return g.MuxVec(overflow, g.ConstVec(0, len(x)), out)
}

// BitLit turns a boolean literal into a 1-bit vector.
func (g *AIG) BitLit(l Lit) Vec { return Vec{l} }
