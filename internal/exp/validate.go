package exp

import (
	"errors"

	"uvllm/internal/baseline"
	"uvllm/internal/dataset"
	"uvllm/internal/formal"
	"uvllm/internal/lint"
	"uvllm/internal/sim"
)

// ExpertPass is the independent validation behind the Fix Rate (paper
// Eq. 2): "after expert review, if the fix is confirmed effective across
// additional scenarios". The expert is simulated by a validation suite no
// method sees during repair:
//
//   - the linter must report no errors;
//   - a long constrained-random regression (800 vectors, a seed none of
//     the methods use) must pass against the golden model;
//   - the directed corner vectors must pass as well.
//
// The validation simulations run on the same backend as the evaluation
// they validate, so `-backend event` really is an end-to-end cross-check.
// The golden module compiles through the bundle's cache (once per
// process, not once per validation) and the 800-vector golden trace
// comes from the memo — the ~12 instances sharing a module replay the
// identical reference stream.
func ExpertPass(source string, m *dataset.Module, svc baseline.SimServices) bool {
	if source == "" {
		return false
	}
	rep := lint.Lint(source)
	if len(rep.Errors()) > 0 {
		return false
	}
	ok, _, _ := baseline.RandomOwnBench(source, m, 800, 987654, svc)
	if !ok {
		return false
	}
	golden, err := svc.Compile(m.Source, m.Top)
	if err != nil {
		return false
	}
	ok, _, _ = baseline.RunOwnBench(source, m, baseline.WeakBench(m, golden.Design()), svc)
	return ok
}

// ExpertPassFormal is ExpertPass's bounded-proof mode (the -formal flag
// of cmd/uvllm): the simulation-based validation runs first, and when
// the module is inside the formal engine's blastable subset the
// candidate must additionally be *provably* equivalent to the golden for
// every post-reset stimulus up to depth cycles — the expert stops
// sampling scenarios and exhausts them. It returns the verdict and
// whether a bounded proof actually contributed (false when the design is
// outside the subset or the miter exhausted its budget, in which case
// the verdict is ExpertPass's alone). A non-nil error is a genuine
// formal-engine failure, never a subset/budget skip — the same
// discrimination the other agreement gates apply. depth <= 0 uses
// DefaultEquivDepth.
func ExpertPassFormal(source string, m *dataset.Module, svc baseline.SimServices, depth int) (pass, proved bool, err error) {
	if !ExpertPass(source, m, svc) {
		return false, false, nil
	}
	if depth <= 0 {
		depth = DefaultEquivDepth
	}
	golden, err := sim.SharedCache().Compile(m.Source, m.Top, sim.BackendCompiled)
	if err != nil {
		return true, false, nil // golden outside the sim subset: nothing to prove against
	}
	cand, err := sim.SharedCache().Compile(source, m.Top, sim.BackendCompiled)
	if err != nil {
		return true, false, nil
	}
	res, err := formal.BMCEquivOpts(golden, cand, m.Clock, depth,
		formal.Options{MaxConflicts: equivBudget})
	if err != nil {
		if errors.Is(err, formal.ErrUnsupported) || errors.Is(err, formal.ErrBudget) {
			return true, false, nil // outside the blastable subset (or over budget)
		}
		return false, false, err
	}
	return res.Equivalent, true, nil
}
