package psim

// Transpose64 transposes the 64x64 bit matrix held in a, in place: bit j
// of word i moves to bit i of word j. This is the recursive block-swap of
// Hacker's Delight figure 7-3 widened to 64 bits — six rounds of
// half-size swaps instead of 64*64 single-bit moves — and it is the only
// conversion between the engine's two layouts: lane-sliced (word i = lane
// i's value) and bit-sliced (word j = bit j across all 64 lanes). The
// matrix transpose is its own inverse, so the same routine converts both
// directions. It is exported for drivers that run their own machines over
// shared circuits (faultgen's pair classifier) and for the benchmarks.
func Transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>j ^ a[k+j]) & m
			a[k] ^= t << j
			a[k+j] ^= t
		}
		// The halved mask pairs with the halved stride: update m with the
		// new j (the C original's comma sequence), not the one just used.
		j >>= 1
		m ^= m << j
	}
}
