package rtlgen

import "testing"

// TestDiffBatchLanesOverStridedSeeds is the batch-vs-sequential
// byte-identity gate over generated designs: a strided subset of the
// rtlgen seed space (hitting every generator flavor mix) must produce
// identical traces, VCD bytes, coverage encodings and error surfaces
// whether the lanes run fused in one sim.Batch or as standalone
// harnesses.
func TestDiffBatchLanesOverStridedSeeds(t *testing.T) {
	const stride, count = 17, 12
	for i := 0; i < count; i++ {
		d := Generate(int64(1 + i*stride))
		if err := DiffBatchLanes(d.Source, d.Top, d.Clock, 6, 30, d.Seed); err != nil {
			t.Fatalf("seed %d (%s): batch diverged from standalone: %v\n%s", d.Seed, d.Flavor, err, d.Source)
		}
	}
}

// TestDiffBatchLanesSkipsUnelaborable pins the vacuous path: sources the
// compiler rejects are DiffBackends' case, not a batch divergence.
func TestDiffBatchLanesSkipsUnelaborable(t *testing.T) {
	if err := DiffBatchLanes("module broken(", "broken", "clk", 4, 10, 1); err != nil {
		t.Fatalf("unelaborable source must be vacuously fine, got %v", err)
	}
}
