package exp

import (
	"fmt"
	"strings"
	"sync"

	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// Session binds one evaluation configuration — simulation backend, worker
// count and the shared compile cache / golden-trace memo — to its cached
// full-benchmark record sets. It replaces the old package-global Records
// cache and its mutable RecordsBackend variable: sessions for different
// backends coexist (keyed by SharedSession), nothing panics, and every
// derived artifact (figures, tables, ablations, the pass@k study) is a
// method so the configuration cannot drift mid-report.
type Session struct {
	Backend sim.Backend
	// Workers is the pool size for runs this session starts (0 = NumCPU).
	// Results are worker-count independent; set it before the first
	// Records call if you want it to apply to the cached run.
	Workers int
	Cache   *sim.Cache
	Memo    *uvm.TraceMemo

	mu     sync.Mutex
	byMode map[llm.GenMode]*sessionRecs
}

type sessionRecs struct {
	once sync.Once
	recs []*Record
}

// NewSession returns a session on the given backend using the
// process-wide compile cache and trace memo. Tests that assert counters
// can swap in fresh ones before the first run.
func NewSession(backend sim.Backend) *Session {
	return &Session{
		Backend: backend,
		Cache:   sim.SharedCache(),
		Memo:    uvm.SharedTraceMemo(),
		byMode:  map[llm.GenMode]*sessionRecs{},
	}
}

var (
	sessionsMu sync.Mutex
	sessions   = map[sim.Backend]*Session{}
)

// SharedSession returns the process-wide session for one backend — the
// per-backend keyed record cache behind the CLI and the benchmarks.
func SharedSession(backend sim.Backend) *Session {
	sessionsMu.Lock()
	defer sessionsMu.Unlock()
	s, ok := sessions[backend]
	if !ok {
		s = NewSession(backend)
		sessions[backend] = s
	}
	return s
}

func (s *Session) config() Config {
	return Config{Seed: 1, Backend: s.Backend, Workers: s.Workers, Cache: s.Cache, Memo: s.Memo}
}

func (s *Session) recordsFor(mode llm.GenMode) []*Record {
	s.mu.Lock()
	if s.byMode == nil {
		s.byMode = map[llm.GenMode]*sessionRecs{}
	}
	e, ok := s.byMode[mode]
	if !ok {
		e = &sessionRecs{}
		s.byMode[mode] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		cfg := s.config()
		cfg.Mode = mode
		if mode == llm.ModeComplete {
			cfg.SkipBaselines = true
		}
		e.recs = Run(cfg)
	})
	return e.recs
}

// Records returns the cached full-benchmark evaluation at the default
// configuration (seed 1, pair mode, all baselines), computing it on first
// use.
func (s *Session) Records() []*Record { return s.recordsFor(llm.ModePair) }

// CompleteModeRecords returns the cached full-benchmark run with the
// complete-code generation mode, UVLLM only (the Table III ablation).
func (s *Session) CompleteModeRecords() []*Record { return s.recordsFor(llm.ModeComplete) }

// SyntaxRecords filters the cached records to syntax-class instances.
func (s *Session) SyntaxRecords() []*Record {
	var out []*Record
	for _, r := range s.Records() {
		if r.Fault.Class.IsSyntax() {
			out = append(out, r)
		}
	}
	return out
}

// FunctionalRecords filters the cached records to functional instances.
func (s *Session) FunctionalRecords() []*Record {
	var out []*Record
	for _, r := range s.Records() {
		if !r.Fault.Class.IsSyntax() {
			out = append(out, r)
		}
	}
	return out
}

// Table3 computes the ablation table from the two cached runs.
func (s *Session) Table3() []Table3Row {
	return []Table3Row{
		table3Row("UVLLM_pair", s.Records()),
		table3Row("UVLLM_comp", s.CompleteModeRecords()),
	}
}

// AblationRollback re-runs a slice of the benchmark with the rollback
// mechanism disabled (UVLLM only) and reports the FR with and without it
// — the design-choice bench DESIGN.md calls out. instances caps the
// subset size (0 = full benchmark).
func (s *Session) AblationRollback(instances int) (withFR, withoutFR, withQuality, withoutQuality float64) {
	recs := s.Records()
	if instances > 0 && instances < len(recs) {
		recs = recs[:instances]
	}
	var faults []*faultgen.Fault
	fixed, failN := 0, 0
	for _, r := range recs {
		faults = append(faults, r.Fault)
		if r.UVLLMFix {
			fixed++
		}
		if !r.UVLLM.Success {
			withQuality += r.UVLLM.FinalScore
			failN++
		}
	}
	withFR = 100 * float64(fixed) / float64(len(recs))
	if failN > 0 {
		withQuality = 100 * withQuality / float64(failN)
	}

	cfg := s.config()
	cfg.SkipBaselines = true
	cfg.DisableRollback = true
	cfg.Instances = faults
	raw := Run(cfg)
	fixed, failN = 0, 0
	for _, r := range raw {
		if r.UVLLMFix {
			fixed++
		}
		if !r.UVLLM.Success {
			withoutQuality += r.UVLLM.FinalScore
			failN++
		}
	}
	withoutFR = 100 * float64(fixed) / float64(len(raw))
	if failN > 0 {
		withoutQuality = 100 * withoutQuality / float64(failN)
	}
	return withFR, withoutFR, withQuality, withoutQuality
}

// AblationLocalization re-runs a slice of the benchmark with SL mode
// engaged from the first iteration versus the default MS→SL escalation,
// reporting (escalated FR, immediate-SL FR, escalated mean Texec,
// immediate-SL mean Texec).
func (s *Session) AblationLocalization(instances int) (escFR, slFR, escT, slT float64) {
	recs := s.Records()
	if instances > 0 && instances < len(recs) {
		recs = recs[:instances]
	}
	var faults []*faultgen.Fault
	fixed := 0
	for _, r := range recs {
		faults = append(faults, r.Fault)
		if r.UVLLMFix {
			fixed++
		}
		escT += r.UVLLM.Times.Total()
	}
	escFR = 100 * float64(fixed) / float64(len(recs))
	escT /= float64(len(recs))

	cfg := s.config()
	cfg.SkipBaselines = true
	cfg.SLThreshold = 1
	cfg.Instances = faults
	raw := Run(cfg)
	fixed = 0
	for _, r := range raw {
		if r.UVLLMFix {
			fixed++
		}
		slT += r.UVLLM.Times.Total()
	}
	slFR = 100 * float64(fixed) / float64(len(raw))
	slT /= float64(len(raw))
	return escFR, slFR, escT, slT
}

// PassAtKStudy evaluates the first `instances` benchmark entries with
// `samples` seeds each (UVLLM only, expert-validated fixes).
func (s *Session) PassAtKStudy(instances, samples int) PassAtKResult {
	return passAtKStudy(s, instances, samples)
}

// StatsReport renders the session's amortization counters: compile-cache
// and golden-trace-memo hits, misses and occupancy.
func (s *Session) StatsReport() string {
	cs := s.Cache.Stats()
	ms := s.Memo.Stats()
	var b strings.Builder
	b.WriteString("Amortization stats\n")
	fmt.Fprintf(&b, "  compile cache:    %d hits / %d misses (%.1f%% hit rate), %d programs resident, %d evicted\n",
		cs.Hits, cs.Misses, hitRate(cs.Hits, cs.Misses), cs.Entries, cs.Evictions)
	fmt.Fprintf(&b, "  golden-trace memo: %d hits / %d misses (%.1f%% hit rate), %d traces resident, %d evicted\n",
		ms.Hits, ms.Misses, hitRate(ms.Hits, ms.Misses), ms.Entries, ms.Evictions)
	return b.String()
}

func hitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
