// Package synth implements the synthesis step of the UVLLM pipeline
// (paper Fig. 2: "The repaired DUT code is then synthesized as the stage
// output"). It elaborates a single Verilog module into a word-level
// dataflow netlist — the moral equivalent of Yosys's RTLIL before
// technology mapping — by symbolically executing the behavioral code:
// combinational always blocks become mux trees, edge-triggered blocks
// become registers with next-state functions, for loops are unrolled.
//
// The netlist can be evaluated (cycle-accurately, for equivalence checking
// against the event-driven simulator), optimized (constant folding, common
// subexpression elimination, dead code elimination) and reported (cell
// statistics).
//
// Unsupported constructs — module instances and memories — return errors;
// the pipeline only needs synthesis as a structural sanity gate, and the
// hierarchical/memory modules keep using the simulator path.
package synth

import (
	"fmt"
	"sort"

	"uvllm/internal/verilog"
)

// OpKind is a netlist cell type.
type OpKind int

// Cell kinds.
const (
	OpConst OpKind = iota
	OpInput
	OpReg
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpXnor
	OpNot
	OpNeg
	OpRedAnd
	OpRedOr
	OpRedXor
	OpLogAnd
	OpLogOr
	OpLogNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpShl
	OpShr
	OpMux // Args: sel, then, else
	OpConcat
	OpSlice // bits [Lo..Hi] of Args[0]
)

var opNames = map[OpKind]string{
	OpConst: "const", OpInput: "input", OpReg: "reg",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpXnor: "xnor", OpNot: "not",
	OpNeg: "neg", OpRedAnd: "redand", OpRedOr: "redor", OpRedXor: "redxor",
	OpLogAnd: "logand", OpLogOr: "logor", OpLogNot: "lognot",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpShl: "shl", OpShr: "shr", OpMux: "mux", OpConcat: "concat", OpSlice: "slice",
}

// String implements fmt.Stringer.
func (k OpKind) String() string { return opNames[k] }

// Node is one cell of the netlist.
type Node struct {
	ID    int
	Kind  OpKind
	Width int
	Args  []int
	Value uint64 // OpConst
	Name  string // OpInput / OpReg
	Lo    int    // OpSlice low bit
	Hi    int    // OpSlice high bit
}

// RegInfo describes one state element.
type RegInfo struct {
	Name string
	Node int // the OpReg node (current value)
	Next int // next-state function
	Init uint64
}

// Netlist is a synthesized module.
type Netlist struct {
	Top     string
	Nodes   []*Node
	Inputs  map[string]int
	Outputs map[string]int
	Regs    []RegInfo
}

func (n *Netlist) add(node *Node) int {
	node.ID = len(n.Nodes)
	n.Nodes = append(n.Nodes, node)
	return node.ID
}

func (n *Netlist) konst(v uint64, w int) int {
	return n.add(&Node{Kind: OpConst, Width: w, Value: v & maskW(w)})
}

// Stats counts cells by kind name (constants, inputs and regs included).
func (n *Netlist) Stats() map[string]int {
	out := map[string]int{}
	for _, nd := range n.Nodes {
		out[nd.Kind.String()]++
	}
	return out
}

// CellCount is the number of logic cells (everything except constants,
// inputs and register outputs).
func (n *Netlist) CellCount() int {
	c := 0
	for _, nd := range n.Nodes {
		switch nd.Kind {
		case OpConst, OpInput, OpReg:
		default:
			c++
		}
	}
	return c
}

// FormatStats renders a synthesis report.
func (n *Netlist) FormatStats() string {
	st := n.Stats()
	var kinds []string
	for k := range st {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := fmt.Sprintf("module %s: %d nodes, %d logic cells, %d registers\n",
		n.Top, len(n.Nodes), n.CellCount(), len(n.Regs))
	for _, k := range kinds {
		out += fmt.Sprintf("  %-8s %d\n", k, st[k])
	}
	return out
}

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// Synthesize builds a netlist for module top in f. Instances and memories
// are not supported.
func Synthesize(f *verilog.SourceFile, top string) (*Netlist, error) {
	m := f.Module(top)
	if m == nil {
		return nil, fmt.Errorf("synth: module %q not found", top)
	}
	b := &builder{
		nl:  &Netlist{Top: top, Inputs: map[string]int{}, Outputs: map[string]int{}},
		mod: m,
		env: map[string]int{},
	}
	if err := b.run(); err != nil {
		return nil, err
	}
	return b.nl, nil
}

// SynthesizeSource parses src and synthesizes top.
func SynthesizeSource(src, top string) (*Netlist, error) {
	f, errs := verilog.Parse(src)
	if len(errs) > 0 {
		return nil, fmt.Errorf("synth: %s", errs[0].Error())
	}
	return Synthesize(f, top)
}

type builder struct {
	nl     *Netlist
	mod    *verilog.Module
	params verilog.ConstEnv
	widths map[string]int
	env    map[string]int // signal -> node currently driving it
	isReg  map[string]bool
}

func (b *builder) run() error {
	env, err := verilog.ModuleParams(b.mod)
	if err != nil {
		return fmt.Errorf("synth: %w", err)
	}
	b.params = env
	b.widths = map[string]int{}
	b.isReg = map[string]bool{}

	// Declare widths for ports and nets; reject memories and instances.
	declare := func(name string, rng *verilog.Range) error {
		w, err := verilog.RangeWidth(rng, env)
		if err != nil {
			return fmt.Errorf("synth: %s: %w", name, err)
		}
		b.widths[name] = w
		return nil
	}
	for _, p := range b.mod.Ports {
		if err := declare(p.Name, p.Range); err != nil {
			return err
		}
	}
	seqTargets := map[string]bool{}
	for _, it := range b.mod.Items {
		switch v := it.(type) {
		case *verilog.Instance:
			return fmt.Errorf("synth: module instances unsupported (%s)", v.InstName)
		case *verilog.NetDecl:
			rng := v.Range
			if v.Kind == verilog.KindInteger {
				rng = &verilog.Range{MSB: &verilog.Number{Value: 31, Text: "31"}, LSB: &verilog.Number{Value: 0, Text: "0"}}
			}
			for _, n := range v.Names {
				if n.ArrayRange != nil {
					return fmt.Errorf("synth: memory %q unsupported", n.Name)
				}
				if err := declare(n.Name, rng); err != nil {
					return err
				}
			}
		case *verilog.AlwaysBlock:
			if v.Sens != nil && v.Sens.Edged() {
				verilog.WalkStmt(v.Body, func(s verilog.Stmt) bool {
					if a, ok := s.(*verilog.Assign); ok {
						for _, t := range verilog.LHSTargets(a.LHS) {
							seqTargets[t] = true
						}
					}
					return true
				})
			}
		}
	}

	// Inputs.
	for _, p := range b.mod.Ports {
		if p.Dir == verilog.DirInput {
			id := b.nl.add(&Node{Kind: OpInput, Width: b.widths[p.Name], Name: p.Name})
			b.nl.Inputs[p.Name] = id
			b.env[p.Name] = id
		}
	}
	// Registers (targets of edge-triggered blocks).
	var regNames []string
	for name := range seqTargets {
		regNames = append(regNames, name)
	}
	sort.Strings(regNames)
	for _, name := range regNames {
		w, ok := b.widths[name]
		if !ok {
			return fmt.Errorf("synth: sequential target %q not declared", name)
		}
		id := b.nl.add(&Node{Kind: OpReg, Width: w, Name: name})
		b.env[name] = id
		b.isReg[name] = true
		b.nl.Regs = append(b.nl.Regs, RegInfo{Name: name, Node: id, Next: -1})
	}

	// Resolve combinational items to convergence.
	type combItem struct {
		item    verilog.Item
		targets []string
		reads   []string
	}
	var pending []*combItem
	var seqBlocks []*verilog.AlwaysBlock
	for _, it := range b.mod.Items {
		switch v := it.(type) {
		case *verilog.ContAssign:
			pending = append(pending, &combItem{
				item:    v,
				targets: verilog.LHSTargets(v.LHS),
				reads:   verilog.ExprIdents(v.RHS),
			})
		case *verilog.AlwaysBlock:
			if v.Sens != nil && v.Sens.Edged() {
				seqBlocks = append(seqBlocks, v)
				continue
			}
			ci := &combItem{item: v}
			verilog.WalkStmt(v.Body, func(s verilog.Stmt) bool {
				switch st := s.(type) {
				case *verilog.Assign:
					ci.targets = append(ci.targets, verilog.LHSTargets(st.LHS)...)
					ci.reads = append(ci.reads, verilog.ExprIdents(st.RHS)...)
				case *verilog.If:
					ci.reads = append(ci.reads, verilog.ExprIdents(st.Cond)...)
				case *verilog.Case:
					ci.reads = append(ci.reads, verilog.ExprIdents(st.Expr)...)
				case *verilog.For:
					ci.reads = append(ci.reads, verilog.ExprIdents(st.Cond)...)
					// Loop induction variables are local to the block.
					if st.Init != nil {
						ci.targets = append(ci.targets, verilog.LHSTargets(st.Init.LHS)...)
					}
				}
				return true
			})
			pending = append(pending, ci)
		case *verilog.InitialBlock:
			// Initial blocks set register init values.
			verilog.WalkStmt(v.Body, func(s verilog.Stmt) bool {
				if a, ok := s.(*verilog.Assign); ok {
					if id, iok := a.LHS.(*verilog.Ident); iok {
						if val, cerr := verilog.EvalConst(a.RHS, b.params); cerr == nil {
							for i := range b.nl.Regs {
								if b.nl.Regs[i].Name == id.Name {
									b.nl.Regs[i].Init = uint64(val)
								}
							}
						}
					}
				}
				return true
			})
		}
	}

	for len(pending) > 0 {
		progressed := false
		var next []*combItem
		for _, ci := range pending {
			ready := true
			for _, r := range ci.reads {
				if _, isParam := b.params[r]; isParam {
					continue
				}
				if _, ok := b.env[r]; !ok {
					// Self-reads of the item's own targets are fine for
					// read-modify style comb blocks that assign first.
					if !contains(ci.targets, r) {
						ready = false
						break
					}
				}
			}
			if !ready {
				next = append(next, ci)
				continue
			}
			if err := b.synthCombItem(ci.item); err != nil {
				return err
			}
			progressed = true
		}
		if !progressed {
			var names []string
			for _, ci := range next {
				names = append(names, ci.targets...)
			}
			return fmt.Errorf("synth: combinational cycle or undriven dependency around %v", names)
		}
		pending = next
	}

	// Sequential next-state functions.
	for _, ab := range seqBlocks {
		if err := b.synthSeqBlock(ab); err != nil {
			return err
		}
	}
	for i := range b.nl.Regs {
		if b.nl.Regs[i].Next < 0 {
			// Register never assigned (possible on recovered ASTs): holds.
			b.nl.Regs[i].Next = b.nl.Regs[i].Node
		}
	}

	// Outputs.
	for _, p := range b.mod.Ports {
		if p.Dir != verilog.DirOutput {
			continue
		}
		id, ok := b.env[p.Name]
		if !ok {
			return fmt.Errorf("synth: output %q is undriven", p.Name)
		}
		b.nl.Outputs[p.Name] = id
	}
	return nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
