package uvm

// Bit-parallel candidate screening. The batch scorer buys its candidate
// throughput with real simulated cycles: L lanes of k-cycle snippets
// consume L·k of the coverage budget. The BitLanes scorer instead screens
// up to 64 candidates one-bit-per-word on the blasted cycle AIG
// (internal/psim) — one sweep advances all of them a cycle, at roughly
// the cost of a single scalar lane — and spends real simulation only on
// the winner, replayed on the scalar coverage harness. Coverage sampling
// stays scalar: the engine lanes carry no collectors, so the scorer
// ranks them by a toggle-activity novelty proxy (state bits a candidate
// flipped that no committed cycle has flipped yet), and cfg.Cycles
// counts exactly the replayed, coverage-collecting cycles — the merged
// map's sample counts line up with CoverageRandom's, like the
// sequential loop's.

import (
	"math/bits"
	"math/rand"

	"uvllm/internal/cover"
	"uvllm/internal/psim"
	"uvllm/internal/sim"
)

// CoverageDirectedBitLanes is the bit-parallel directed loop: each round
// broadcasts the committed harness state into a psim engine, drives one
// candidate snippet per lane in bit-sliced sweeps, scores every
// candidate by toggle novelty, and replays only the best candidate on
// the coverage harness — which is also the committed state the next
// round speculates from. Designs outside the bit-parallel subset fall
// back to CoverageDirectedBatch; cfg.Lanes bounds the per-round
// candidate count (default and cap 64).
func CoverageDirectedBitLanes(p *sim.Program, cfg StimConfig) (*cover.Map, *Corpus, error) {
	if psim.Supported(p, cfg.Clock) != nil {
		return CoverageDirectedBatch(p, cfg)
	}
	lanes := cfg.Lanes
	if lanes < 2 || lanes > 64 {
		lanes = 64
	}
	eng, err := psim.NewEngine(p, lanes, cfg.Clock)
	if err != nil {
		return nil, nil, err
	}
	eng.SetRecord(false) // speculative lanes: no waveforms
	h, err := coverHarness(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := p.Design()
	ports := stimPorts(d, cfg.Clock)
	rstName, activeLow := sim.FindReset(d)
	var dict []uint64
	for _, c := range d.Constants() {
		if c != 0 {
			dict = append(dict, c)
		}
	}

	m := h.Coverage()
	corpus := &Corpus{}
	// Toggle bits the committed trajectory has already exercised, per
	// arena signal: bit b of seen01[i] set means signal i's bit b has
	// risen on the committed path. Candidates score by what they flip
	// beyond this.
	seen01 := make([]uint64, d.NumSignals())
	seen10 := make([]uint64, d.NumSignals())
	ins := make([]map[string]uint64, lanes)
	remaining := cfg.Cycles
	for remaining > 0 {
		k := cfg.snippetLen()
		if k > remaining {
			k = remaining
		}
		candidates := make([][]map[string]uint64, lanes)
		for l := range candidates {
			candidates[l] = nextCandidate(corpus, rng, ports, dict, rstName, activeLow, k)
		}
		eng.Broadcast(h.Sim)
		eng.StartActivity()
		for c := 0; c < k; c++ {
			for l := range ins {
				ins[l] = candidates[l][c]
			}
			if err := eng.CycleMaps(ins); err != nil {
				return m, corpus, err
			}
		}
		best, bestScore := 0, -1
		for l := 0; l < lanes; l++ {
			score := 0
			for i := 0; i < d.NumSignals(); i++ {
				t01, t10 := eng.Activity(i)
				score += bits.OnesCount64(laneBits(t01, l) &^ seen01[i])
				score += bits.OnesCount64(laneBits(t10, l) &^ seen10[i])
			}
			if score > bestScore {
				best, bestScore = l, score
			}
		}
		// Replay the winner on the scalar coverage harness: real coverage
		// for the map and the corpus, and the committed state the next
		// round's broadcast starts from.
		before := m.Hit()
		for _, in := range candidates[best] {
			if _, err := h.Cycle(in); err != nil {
				return m, corpus, err
			}
			remaining--
		}
		if gain := m.Hit() - before; gain > 0 {
			corpus.Entries = append(corpus.Entries, CorpusEntry{Vectors: candidates[best], Gain: gain})
		}
		for i := 0; i < d.NumSignals(); i++ {
			t01, t10 := eng.Activity(i)
			seen01[i] |= laneBits(t01, best)
			seen10[i] |= laneBits(t10, best)
		}
	}
	return m, corpus, nil
}

// laneBits extracts lane l's toggle mask from a bit-sliced activity
// vector: bit b of the result is word b's lane-l bit.
func laneBits(words []uint64, l int) uint64 {
	var v uint64
	for b, w := range words {
		v |= (w >> uint(l) & 1) << uint(b)
	}
	return v
}
