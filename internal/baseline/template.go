package baseline

import (
	"regexp"
	"strconv"
	"strings"

	"uvllm/internal/faultgen"
	"uvllm/internal/lint"
	"uvllm/internal/locate"
	"uvllm/internal/metrics"
)

// Strider reimplements the mechanism of Strider (Yang et al., TCAD 2024):
// signal-value-transition-guided defect repair. It localizes suspicious
// lines from observed mismatches (reusing the same dynamic-slicing engine
// UVLLM uses), then searches template mutations of those lines, accepting
// the first candidate that passes its own random testbench. It handles
// functional defects only — syntax-broken input cannot be simulated.
type Strider struct {
	Cost   metrics.CostModel
	Budget int // candidate mutations to try
	BenchN int // vectors in its acceptance bench
	Sim    SimServices
}

// NewStrider builds the baseline with defaults.
func NewStrider() *Strider {
	return &Strider{Cost: defaultCost, Budget: 16, BenchN: 8}
}

// Repair runs the search on one benchmark instance.
func (x *Strider) Repair(f *faultgen.Fault) Outcome {
	return templateSearch(f, x.Budget, x.BenchN, x.Cost, false, x.Sim)
}

// RTLRepair reimplements the mechanism of RTL-Repair (Laeufer et al.,
// ASPLOS 2024): template-based repair with a small solver-guided search.
// Its template set additionally covers declaration widths and part-select
// bounds, which is why the paper finds it strongest on bitwidth defects.
type RTLRepair struct {
	Cost   metrics.CostModel
	Budget int
	BenchN int
	Sim    SimServices
}

// NewRTLRepair builds the baseline with defaults.
func NewRTLRepair() *RTLRepair {
	return &RTLRepair{Cost: defaultCost, Budget: 28, BenchN: 8}
}

// Repair runs the search on one benchmark instance.
func (x *RTLRepair) Repair(f *faultgen.Fault) Outcome {
	return templateSearch(f, x.Budget, x.BenchN, x.Cost, true, x.Sim)
}

func templateSearch(f *faultgen.Fault, budget, benchN int, cost metrics.CostModel, declTemplates bool, svc SimServices) Outcome {
	m := f.Meta()
	out := Outcome{Final: f.Source}

	// Template tools cannot start from code that does not compile.
	if rep := lint.Lint(f.Source); hasSyntaxErr(rep) {
		return out
	}
	pass, log, n := RandomOwnBench(f.Source, m, benchN, 5, svc)
	out.Seconds += cost.Sim(n)
	if pass {
		out.Hit = true // escaped detection: counts as a hit, not a fix
		return out
	}

	// Localize suspicious lines from the mismatch log. Template tools use
	// a depth-1 localization (direct definitions of the mismatching
	// signals) -- shallower than UVLLM's transitive dynamic slice, which
	// is part of why their repair scope is narrower.
	_, ms, _ := locate.ErrChk(log, nil)
	suspicious := map[int]bool{}
	if g := locate.DFGFor(f.Source); g != nil && len(ms) > 0 {
		for _, sig := range ms {
			for _, def := range g.Defs[sig] {
				suspicious[def.Line] = true
			}
		}
	}

	tried := 0
	for _, cand := range enumerateMutations(f.Source, suspicious, declTemplates) {
		if tried >= budget {
			break
		}
		tried++
		if rep := lint.Lint(cand); hasSyntaxErr(rep) {
			continue
		}
		ok, _, n := RandomOwnBench(cand, m, benchN, 5, svc)
		out.Seconds += cost.Sim(n)
		if ok {
			out.Hit = true
			out.Final = cand
			return out
		}
	}
	return out
}

func hasSyntaxErr(rep *lint.Report) bool {
	for _, d := range rep.Errors() {
		if d.Code == lint.CodeSyntax {
			return true
		}
	}
	return false
}

var (
	decConstTplRe = regexp.MustCompile(`(\d+)'d(\d+)`)
	binConstTplRe = regexp.MustCompile(`(\d+)'b([01]+)`)
	rangeTplRe    = regexp.MustCompile(`\[(\d+):(\d+)\]`)
)

// enumerateMutations yields candidate repairs: operator swaps, constant
// tweaks and (for RTL-Repair) range adjustments, applied to suspicious
// lines first and the rest of the behavioral code after.
func enumerateMutations(src string, suspicious map[int]bool, declTemplates bool) []string {
	ls := strings.Split(src, "\n")
	order := make([]int, 0, len(ls))
	for i := range ls {
		if suspicious[i+1] {
			order = append(order, i)
		}
	}
	for i := range ls {
		if !suspicious[i+1] {
			order = append(order, i)
		}
	}
	var out []string
	emitLine := func(li int, newLine string) {
		cp := append([]string(nil), ls...)
		cp[li] = newLine
		out = append(out, strings.Join(cp, "\n"))
	}
	opSwaps := []struct{ from, to string }{
		{" + ", " - "}, {" - ", " + "}, {" & ", " | "}, {" | ", " & "},
		{" ^ ", " | "}, {" & ", " ^ "}, {" < ", " > "}, {" > ", " < "},
		{" < ", " <= "}, {"==", "!="}, {"!=", "=="},
	}
	for _, li := range order {
		line := ls[li]
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") || strings.HasPrefix(t, "module") {
			continue
		}
		isDecl := strings.HasPrefix(t, "input") || strings.HasPrefix(t, "output") ||
			strings.HasPrefix(t, "wire") || strings.HasPrefix(t, "reg")
		if !isDecl {
			for _, sw := range opSwaps {
				if i := strings.Index(line, sw.from); i >= 0 {
					emitLine(li, line[:i]+sw.to+line[i+len(sw.from):])
				}
			}
			// Constant tweaks: V-1, V+1, 0<->1.
			if mt := decConstTplRe.FindStringSubmatchIndex(line); mt != nil {
				v, _ := strconv.ParseUint(line[mt[4]:mt[5]], 10, 64)
				if v > 0 {
					emitLine(li, line[:mt[4]]+strconv.FormatUint(v-1, 10)+line[mt[5]:])
				}
				emitLine(li, line[:mt[4]]+strconv.FormatUint(v+1, 10)+line[mt[5]:])
			}
			if mt := binConstTplRe.FindStringSubmatchIndex(line); mt != nil {
				digits := line[mt[4]:mt[5]]
				for bit := 0; bit < len(digits); bit++ {
					fl := []byte(digits)
					if fl[bit] == '0' {
						fl[bit] = '1'
					} else {
						fl[bit] = '0'
					}
					emitLine(li, line[:mt[4]]+string(fl)+line[mt[5]:])
				}
			}
			// Sensitivity repair template.
			if strings.Contains(line, "@(posedge clk)") && strings.Contains(src, "rst_n") {
				emitLine(li, strings.Replace(line, "@(posedge clk)", "@(posedge clk or negedge rst_n)", 1))
			}
		}
		if declTemplates {
			// RTL-Repair's width templates on any line with a range.
			for _, mt := range rangeTplRe.FindAllStringSubmatchIndex(line, -1) {
				msb, _ := strconv.Atoi(line[mt[2]:mt[3]])
				emitLine(li, line[:mt[2]]+strconv.Itoa(msb+1)+line[mt[3]:])
				if msb > 1 {
					emitLine(li, line[:mt[2]]+strconv.Itoa(msb-1)+line[mt[3]:])
				}
			}
		}
	}
	return out
}
