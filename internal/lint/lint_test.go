package lint

import (
	"strings"
	"testing"
)

func hasCode(t *testing.T, r *Report, code string) bool {
	t.Helper()
	for _, d := range r.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

func codes(r *Report) []string {
	var out []string
	for _, d := range r.Diags {
		out = append(out, d.Code)
	}
	return out
}

const cleanCounter = `
module counter(
    input clk,
    input rst_n,
    input en,
    output reg [7:0] count
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            count <= 8'd0;
        end else if (en) begin
            count <= count + 8'd1;
        end
    end
endmodule
`

func TestLintCleanModule(t *testing.T) {
	r := Lint(cleanCounter)
	if len(r.Diags) != 0 {
		t.Fatalf("clean module produced diagnostics: %v", r.Diags)
	}
	if !r.Clean() {
		t.Error("Clean() = false for clean module")
	}
}

func TestLintSyntaxError(t *testing.T) {
	r := Lint("module m(input a, output w);\nassign w = a\nendmodule")
	if !hasCode(t, r, CodeSyntax) {
		t.Fatalf("no SYNTAX diag: %v", r.Diags)
	}
	if len(r.Errors()) == 0 {
		t.Error("syntax error not severity Error")
	}
	if r.Clean() {
		t.Error("Clean() with syntax errors")
	}
}

func TestLintUndeclared(t *testing.T) {
	r := Lint(`module m(input a, output w);
assign w = a & undeclared_sig;
endmodule`)
	if !hasCode(t, r, CodeUndeclared) {
		t.Fatalf("no UNDECLARED: %v", r.Diags)
	}
}

func TestLintCombDelay(t *testing.T) {
	r := Lint(`module m(input a, input b, output reg y);
always @(*) begin
    y <= a & b;
end
endmodule`)
	if !hasCode(t, r, CodeCombDelay) {
		t.Fatalf("no COMBDLY: %v", r.Diags)
	}
	if len(r.FocusedWarnings()) != 1 {
		t.Errorf("COMBDLY should be a focused warning: %v", r.FocusedWarnings())
	}
}

func TestLintBlockSeq(t *testing.T) {
	r := Lint(`module m(input clk, input d, output reg q);
always @(posedge clk) begin
    q = d;
end
endmodule`)
	if !hasCode(t, r, CodeBlockSeq) {
		t.Fatalf("no BLKSEQ: %v", r.Diags)
	}
}

func TestLintBlockSeqAllowsIntegerLoopVar(t *testing.T) {
	r := Lint(`module m(input clk, input [3:0] d, output reg [3:0] q);
integer i;
always @(posedge clk) begin
    for (i = 0; i < 4; i = i + 1) begin
        q[i] <= d[i];
    end
end
endmodule`)
	if hasCode(t, r, CodeBlockSeq) {
		t.Fatalf("loop index update flagged as BLKSEQ: %v", r.Diags)
	}
}

func TestLintIncompleteSensitivity(t *testing.T) {
	r := Lint(`module m(input a, input b, output reg y);
always @(a) begin
    y = a & b;
end
endmodule`)
	if !hasCode(t, r, CodeSens) {
		t.Fatalf("no INCOMPLETESENS: %v", r.Diags)
	}
}

func TestLintSyncAsyncReset(t *testing.T) {
	r := Lint(`module m(input clk, input rst_n, input d, output reg q);
always @(posedge clk) begin
    if (!rst_n) begin
        q <= 1'b0;
    end else begin
        q <= d;
    end
end
endmodule`)
	if !hasCode(t, r, CodeSyncAsync) {
		t.Fatalf("no SYNCASYNC: %v", r.Diags)
	}
	var d Diag
	for _, x := range r.Diags {
		if x.Code == CodeSyncAsync {
			d = x
		}
	}
	if d.Signal != "rst_n" || !strings.Contains(d.Msg, "negedge rst_n") {
		t.Errorf("SYNCASYNC details wrong: %+v", d)
	}
}

func TestLintNoSyncAsyncWhenListed(t *testing.T) {
	r := Lint(cleanCounter)
	if hasCode(t, r, CodeSyncAsync) {
		t.Fatalf("false SYNCASYNC: %v", r.Diags)
	}
}

func TestLintLatch(t *testing.T) {
	r := Lint(`module m(input en, input d, output reg q);
always @(*) begin
    if (en) begin
        q = d;
    end
end
endmodule`)
	if !hasCode(t, r, CodeLatch) {
		t.Fatalf("no LATCH: %v", r.Diags)
	}
}

func TestLintNoLatchWithElse(t *testing.T) {
	r := Lint(`module m(input en, input d, output reg q);
always @(*) begin
    if (en) begin
        q = d;
    end else begin
        q = 1'b0;
    end
end
endmodule`)
	if hasCode(t, r, CodeLatch) {
		t.Fatalf("false LATCH: %v", r.Diags)
	}
}

func TestLintCaseWithoutDefault(t *testing.T) {
	r := Lint(`module m(input [1:0] s, output reg y);
always @(*) begin
    case (s)
        2'b00: y = 1'b0;
        2'b01: y = 1'b1;
        2'b10: y = 1'b0;
        2'b11: y = 1'b1;
    endcase
end
endmodule`)
	if !hasCode(t, r, CodeCaseDef) {
		t.Fatalf("no CASEINCOMPLETE: %v", r.Diags)
	}
	// Full case still gets flagged (Verilator needs pragma); latch must not
	// fire for exhaustively assigned q... but we accept conservative LATCH
	// here because the case has no default.
}

func TestLintWidthMismatch(t *testing.T) {
	r := Lint(`module m(input [8:0] a, output reg [7:0] y);
always @(*) begin
    y = a;
end
endmodule`)
	if !hasCode(t, r, CodeWidth) {
		t.Fatalf("no WIDTH: %v", r.Diags)
	}
}

func TestLintProcAssignToWire(t *testing.T) {
	r := Lint(`module m(input a, output y);
always @(*) begin
    y = a;
end
endmodule`)
	if !hasCode(t, r, CodeProcWire) {
		t.Fatalf("no PROCASSWIRE: %v", r.Diags)
	}
}

func TestLintContAssignToReg(t *testing.T) {
	r := Lint(`module m(input a, output reg y);
assign y = a;
endmodule`)
	if !hasCode(t, r, CodeContReg) {
		t.Fatalf("no CONTASSREG: %v", r.Diags)
	}
}

func TestLintUndriven(t *testing.T) {
	r := Lint(`module m(input a, output w);
wire mid;
assign w = mid & a;
endmodule`)
	if !hasCode(t, r, CodeUndriven) {
		t.Fatalf("no UNDRIVEN: %v", r.Diags)
	}
}

func TestLintUnused(t *testing.T) {
	r := Lint(`module m(input a, output w);
wire mid;
assign mid = a;
assign w = a;
endmodule`)
	if !hasCode(t, r, CodeUnused) {
		t.Fatalf("no UNUSED: %v", r.Diags)
	}
}

func TestLintInstancePinNotFound(t *testing.T) {
	r := Lint(`module top(input x, output y);
sub u1 (.a(x), .bogus(y));
endmodule
module sub(input a, output b);
assign b = a;
endmodule`)
	if !hasCode(t, r, CodePinUnknown) {
		t.Fatalf("no PINNOTFOUND: %v", r.Diags)
	}
}

func TestLintInstancePinMissing(t *testing.T) {
	r := Lint(`module top(input x, output y);
sub u1 (.a(x));
endmodule
module sub(input a, output b);
assign b = a;
endmodule`)
	if !hasCode(t, r, CodePinMissing) {
		t.Fatalf("no PINMISSING: %v", r.Diags)
	}
	// y is undriven too since sub's b is unconnected.
	if !hasCode(t, r, CodeUndriven) {
		t.Errorf("expected UNDRIVEN for y: %v", r.Diags)
	}
}

func TestLintInstancePinWidth(t *testing.T) {
	r := Lint(`module top(input [3:0] x, output [7:0] y);
sub u1 (.a(x), .b(y));
endmodule
module sub(input [7:0] a, output [7:0] b);
assign b = a;
endmodule`)
	if !hasCode(t, r, CodePinWidth) {
		t.Fatalf("no PINWIDTH: %v", r.Diags)
	}
}

func TestLintRedeclared(t *testing.T) {
	r := Lint(`module m(input a, output w);
wire mid;
wire mid;
assign mid = a;
assign w = mid;
endmodule`)
	if !hasCode(t, r, CodeRedeclared) {
		t.Fatalf("no REDECLARED: %v", r.Diags)
	}
}

func TestLintPortBodyRedeclNotError(t *testing.T) {
	// Verilog-1995 style: port direction in header, reg in body.
	r := Lint(`module m(input clk, output q);
reg q;
always @(posedge clk) begin
    q <= 1'b1;
end
endmodule`)
	if hasCode(t, r, CodeRedeclared) {
		t.Fatalf("false REDECLARED for 1995-style port: %v", r.Diags)
	}
}

func TestLintFormatAndStrings(t *testing.T) {
	r := Lint(`module m(input a, input b, output reg y);
always @(*) begin
    y <= a & b;
end
endmodule`)
	log := r.Format()
	if !strings.Contains(log, "COMBDLY") || !strings.Contains(log, "Warning") {
		t.Errorf("Format output missing fields:\n%s", log)
	}
}

func TestLintDiagsSorted(t *testing.T) {
	r := Lint(`module m(input a, input b, output reg y, output reg z);
always @(*) begin
    z <= b;
    y <= a;
end
endmodule`)
	last := 0
	for _, d := range r.Diags {
		if d.Line < last {
			t.Fatalf("diags not sorted by line: %v", codes(r))
		}
		last = d.Line
	}
}

func TestLintInputDriven(t *testing.T) {
	r := Lint(`module m(input a, output w);
assign a = 1'b0;
assign w = a;
endmodule`)
	if !hasCode(t, r, CodeMultiDrive) {
		t.Fatalf("no MULTIDRIVEN for driven input: %v", r.Diags)
	}
}
