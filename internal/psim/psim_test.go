package psim

import (
	"math/rand"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/formal"
	"uvllm/internal/sim"
)

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// TestTranspose64 checks the block transpose against the naive bit-by-bit
// definition and the involution property.
func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, orig [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
		orig[i] = a[i]
	}
	var want [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			want[j] |= (orig[i] >> uint(j) & 1) << uint(i)
		}
	}
	Transpose64(&a)
	if a != want {
		t.Fatal("Transpose64 disagrees with the naive transpose")
	}
	Transpose64(&a)
	if a != orig {
		t.Fatal("Transpose64 is not an involution")
	}
}

// TestMachineAgreesWithEval cross-checks the word evaluator against
// AIG.Eval on a random circuit: 64 random assignments per sweep, every
// lane must match the per-assignment reference evaluation.
func TestMachineAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := formal.NewAIG()
	vars := make([]formal.Lit, 24)
	for i := range vars {
		vars[i] = g.NewVar()
	}
	pool := append([]formal.Lit{formal.False, formal.True}, vars...)
	for i := 0; i < 400; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		l := g.And(a, b)
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		pool = append(pool, l)
	}
	roots := pool[len(pool)-32:]

	m := NewMachine(g)
	words := make([]uint64, len(vars))
	for i := range words {
		words[i] = rng.Uint64()
		m.SetVar(vars[i], words[i])
	}
	m.Sweep()
	for lane := 0; lane < 64; lane++ {
		ref := g.Eval(func(node uint32) bool {
			for i, v := range vars {
				if v.Node() == node {
					return words[i]>>uint(lane)&1 == 1
				}
			}
			return false
		}, roots)
		for ri, r := range roots {
			got := m.Word(r)>>uint(lane)&1 == 1
			if got != ref[ri] {
				t.Fatalf("lane %d root %d: machine=%v eval=%v", lane, ri, got, ref[ri])
			}
		}
	}
}

// TestEngineMatchesHarness drives every supported dataset module with 16
// lanes of random full-row stimulus, bit-parallel and standalone, and
// requires byte-identical outputs, waveforms and final state (signals and
// memories). This is the in-package identity check; the adversarial
// differential gate over generated designs lives in rtlgen (DiffBitSim).
func TestEngineMatchesHarness(t *testing.T) {
	supported := 0
	for _, mod := range dataset.All() {
		p, err := sim.CompileSource(mod.Source, mod.Top, sim.BackendCompiled)
		if err != nil {
			t.Fatalf("%s: compile: %v", mod.Name, err)
		}
		if err := Supported(p, mod.Clock); err != nil {
			continue
		}
		supported++
		const lanes, cycles = 16, 24
		e, err := NewEngine(p, lanes, mod.Clock)
		if err != nil {
			t.Fatalf("%s: engine: %v", mod.Name, err)
		}
		refs := make([]*sim.Harness, lanes)
		for k := range refs {
			inst, err := p.NewInstance()
			if err != nil {
				t.Fatalf("%s: instance: %v", mod.Name, err)
			}
			refs[k] = sim.NewHarness(inst, mod.Clock)
		}
		if err := e.ApplyReset(2); err != nil {
			t.Fatalf("%s: engine reset: %v", mod.Name, err)
		}
		for k, h := range refs {
			if err := h.ApplyReset(2); err != nil {
				t.Fatalf("%s lane %d: harness reset: %v", mod.Name, k, err)
			}
		}
		ports := e.Ports()
		rngs := make([]*rand.Rand, lanes)
		for k := range rngs {
			rngs[k] = rand.New(rand.NewSource(900 + int64(k)))
		}
		rows := make([][]uint64, lanes)
		for cyc := 0; cyc < cycles; cyc++ {
			for k := range rows {
				row := make([]uint64, len(ports))
				for i, pt := range ports {
					row[i] = rngs[k].Uint64() & maskW(pt.Width)
				}
				rows[k] = row
			}
			if err := e.Cycle(rows); err != nil {
				t.Fatalf("%s cycle %d: %v", mod.Name, cyc, err)
			}
			for k, h := range refs {
				in := map[string]uint64{}
				for i, pt := range ports {
					in[pt.Name] = rows[k][i]
				}
				out, err := h.Cycle(in)
				if err != nil {
					t.Fatalf("%s lane %d cycle %d: harness: %v", mod.Name, k, cyc, err)
				}
				got := e.Outputs(k)
				for name, v := range out {
					if got[name] != v {
						t.Fatalf("%s lane %d cycle %d output %s: psim=0x%x harness=0x%x",
							mod.Name, k, cyc, name, got[name], v)
					}
				}
			}
		}
		for k, h := range refs {
			ew, hw := e.Wave(k), h.Wave
			if ew.Cycles() != hw.Cycles() {
				t.Fatalf("%s lane %d: wave cycles psim=%d harness=%d", mod.Name, k, ew.Cycles(), hw.Cycles())
			}
			for _, n := range hw.Names() {
				for cyc := 0; cyc < hw.Cycles(); cyc++ {
					if ew.At(n, cyc) != hw.At(n, cyc) {
						t.Fatalf("%s lane %d wave %s@%d: psim=0x%x harness=0x%x",
							mod.Name, k, n, cyc, ew.At(n, cyc), hw.At(n, cyc))
					}
				}
			}
			d := p.Design()
			for i := 0; i < d.NumSignals(); i++ {
				sv := d.Signal(i)
				if e.Get(k, sv.Name) != h.Sim.Get(sv.Name) {
					t.Fatalf("%s lane %d signal %s: psim=0x%x harness=0x%x",
						mod.Name, k, sv.Name, e.Get(k, sv.Name), h.Sim.Get(sv.Name))
				}
				for dw := 0; dw < sv.Depth; dw++ {
					if e.GetMem(k, sv.Name, dw) != h.Sim.GetMem(sv.Name, dw) {
						t.Fatalf("%s lane %d mem %s[%d]: psim=0x%x harness=0x%x",
							mod.Name, k, sv.Name, dw, e.GetMem(k, sv.Name, dw), h.Sim.GetMem(sv.Name, dw))
					}
				}
			}
		}
	}
	if supported < 10 {
		t.Fatalf("only %d dataset modules in the bit-parallel subset; expected a substantial majority", supported)
	}
	t.Logf("bit-parallel subset: %d/%d dataset modules", supported, len(dataset.All()))
}

// TestCycleMapsHoldSemantics checks the per-lane hold path: inputs absent
// from a stimulus map keep their previous value, exactly like the
// standalone harness.
func TestCycleMapsHoldSemantics(t *testing.T) {
	mod := dataset.ByName("fifo_sync")
	if mod == nil {
		t.Skip("fifo_sync not in dataset")
	}
	p, err := sim.CompileSource(mod.Source, mod.Top, sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if err := Supported(p, mod.Clock); err != nil {
		t.Skipf("fifo_sync unsupported: %v", err)
	}
	const lanes = 4
	e, err := NewEngine(p, lanes, mod.Clock)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*sim.Harness, lanes)
	for k := range refs {
		inst, _ := p.NewInstance()
		refs[k] = sim.NewHarness(inst, mod.Clock)
	}
	if err := e.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	for _, h := range refs {
		if err := h.ApplyReset(2); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	ports := e.Ports()
	for cyc := 0; cyc < 30; cyc++ {
		ins := make([]map[string]uint64, lanes)
		for k := range ins {
			in := map[string]uint64{}
			for _, pt := range ports {
				if rng.Intn(3) == 0 {
					continue // hold this input on this lane
				}
				in[pt.Name] = rng.Uint64() & maskW(pt.Width)
			}
			ins[k] = in
		}
		if err := e.CycleMaps(ins); err != nil {
			t.Fatal(err)
		}
		for k, h := range refs {
			out, err := h.Cycle(ins[k])
			if err != nil {
				t.Fatal(err)
			}
			got := e.Outputs(k)
			for name, v := range out {
				if got[name] != v {
					t.Fatalf("cycle %d lane %d output %s: psim=0x%x harness=0x%x", cyc, k, name, got[name], v)
				}
			}
		}
	}
}

// TestRunRetirement drives lanes of different lengths through Run and
// checks each lane's waveform stops at its own stream length.
func TestRunRetirement(t *testing.T) {
	mod := dataset.ByName("fifo_sync")
	if mod == nil {
		t.Skip("fifo_sync not in dataset")
	}
	p, err := sim.CompileSource(mod.Source, mod.Top, sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLanes(p, 1, mod.Clock)
	if err != nil {
		t.Fatal(err)
	}
	ports := l.Ports()
	rng := rand.New(rand.NewSource(3))
	const lanes = 70 // exercises engine chunking too (two engines)
	stim := make([][][]uint64, lanes)
	for k := range stim {
		n := 5 + k%7
		stim[k] = make([][]uint64, n)
		for c := range stim[k] {
			row := make([]uint64, len(ports))
			for i, pt := range ports {
				row[i] = rng.Uint64() & maskW(pt.Width)
			}
			stim[k][c] = row
		}
	}
	run, err := Run(p, mod.Clock, stim)
	if err != nil {
		t.Fatal(err)
	}
	resetRows := 0
	if name, _ := sim.FindReset(p.Design()); name != "" {
		resetRows = ResetCycles
	}
	for k := range stim {
		if got, want := run.Wave(k).Cycles(), resetRows+len(stim[k]); got != want {
			t.Fatalf("lane %d: wave cycles %d, want %d", k, got, want)
		}
	}
	// Each lane's trace must match a standalone run of the same stream.
	for _, k := range []int{0, 3, 64, 69} {
		inst, _ := p.NewInstance()
		h := sim.NewHarness(inst, mod.Clock)
		if err := h.ApplyReset(ResetCycles); err != nil {
			t.Fatal(err)
		}
		for _, row := range stim[k] {
			in := map[string]uint64{}
			for i, pt := range ports {
				in[pt.Name] = row[i]
			}
			if _, err := h.Cycle(in); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range h.Wave.Names() {
			for cyc := 0; cyc < h.Wave.Cycles(); cyc++ {
				if run.Wave(k).At(n, cyc) != h.Wave.At(n, cyc) {
					t.Fatalf("lane %d wave %s@%d diverges from standalone", k, n, cyc)
				}
			}
		}
	}
}

// TestFallbackUnsupported checks that a design outside the subset (an
// edge trigger on a data strobe, which is neither the clock nor the
// conventional reset) transparently falls back to sim.Batch and still
// produces harness-identical traces.
func TestFallbackUnsupported(t *testing.T) {
	src := `module ff(input clk, input strobe, input d, output reg q);
always @(posedge strobe) q <= d;
endmodule`
	p, err := sim.CompileSource(src, "ff", sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if err := Supported(p, "clk"); err == nil {
		t.Fatal("strobe-triggered design unexpectedly supported")
	}
	l, err := NewLanes(p, 3, "clk")
	if err != nil {
		t.Fatal(err)
	}
	if l.BitParallel() {
		t.Fatal("expected sim.Batch fallback")
	}
	if err := l.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	rows := [][]uint64{{1, 1}, {1, 0}, {0, 1}}
	// Ports are strobe, d in declaration order.
	if got := l.Ports(); len(got) != 2 || got[0].Name != "strobe" || got[1].Name != "d" {
		t.Fatalf("unexpected port layout: %+v", got)
	}
	if err := l.Cycle(rows); err != nil {
		t.Fatal(err)
	}
	if q := l.Outputs(0)["q"]; q != 1 {
		t.Fatalf("lane 0 q=%d, want 1", q)
	}
	if q := l.Outputs(1)["q"]; q != 0 {
		t.Fatalf("lane 1 q=%d, want 0", q)
	}
}
