package rtlgen

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"uvllm/internal/faultgen"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
	"uvllm/internal/verilog"
)

// DiffReport summarizes one cross-backend differential run.
type DiffReport struct {
	Elaborated     bool   // both backends constructed successfully
	Levelized      bool   // the compiled backend ran the levelized sweep
	FallbackReason string // why not, when it did not
	Cycles         int    // cycles actually compared
}

// diffCache amortizes compilation across the differential pipeline: the
// golden design is recompiled for every mutant in DiffMutants, and the
// 330-seed sweep replays designs the fuzz corpus already contains. The
// limit is deliberately small — fuzzing feeds an endless stream of
// distinct sources, and evicted entries just recompile.
var diffCache = sim.NewCacheLimit(512)

// newSim compiles src through the shared cache and allocates an instance,
// preserving CompileAndNewBackend's construction-error surface (parse and
// elaboration errors from the cached compile, reset-time errors from the
// fresh instance).
func newSim(src, top string, backend sim.Backend) (*sim.Simulator, error) {
	return diffCache.Instance(src, top, backend)
}

// DiffBackends simulates src on the event-driven and compiled backends
// under an identical seeded stimulus stream and compares every observable:
// per-cycle output ports, the full recorded waveform, its VCD rendering,
// coverage counts and the final internal signal state. A non-nil error is a
// genuine divergence (the bug case); designs that fail identically on both
// backends — elaboration errors, oscillation — agree by definition.
func DiffBackends(src, top, clock string, cycles int, seed int64) (DiffReport, error) {
	var rep DiffReport
	sE, errE := newSim(src, top, sim.BackendEventDriven)
	sC, errC := newSim(src, top, sim.BackendCompiled)
	if (errE == nil) != (errC == nil) {
		return rep, fmt.Errorf("construction diverged: event=%v compiled=%v", errE, errC)
	}
	if errE != nil {
		if errE.Error() != errC.Error() {
			return rep, fmt.Errorf("construction errors differ:\n event:    %v\n compiled: %v", errE, errC)
		}
		return rep, nil
	}
	rep.Elaborated = true
	rep.Levelized = sC.Levelized()
	rep.FallbackReason = sC.FallbackReason()

	hE := sim.NewHarness(sE, clock)
	hC := sim.NewHarness(sC, clock)
	covE := uvm.NewCoverage(sE.Design())
	covC := uvm.NewCoverage(sC.Design())
	// Structural coverage joins the observable set: the encoded maps must
	// be byte-identical across backends, which additionally cross-checks
	// the compiled condition probes against the interpreter's evaluator.
	if err := hE.EnableCover(sim.CoverAll()); err != nil {
		return rep, fmt.Errorf("cover (event): %v", err)
	}
	if err := hC.EnableCover(sim.CoverAll()); err != nil {
		return rep, fmt.Errorf("cover (compiled): %v", err)
	}

	rstE := hE.ApplyReset(2)
	rstC := hC.ApplyReset(2)
	if !errEqual(rstE, rstC) {
		return rep, fmt.Errorf("reset diverged: event=%v compiled=%v", rstE, rstC)
	}
	if rstE != nil {
		return rep, nil
	}

	rng := rand.New(rand.NewSource(seed))
	inputs := sE.Design().Inputs()
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]uint64{}
		for _, p := range inputs {
			if p.Name == clock {
				continue
			}
			in[p.Name] = rng.Uint64() & maskW(p.Width)
		}
		outE, cerrE := hE.Cycle(in)
		outC, cerrC := hC.Cycle(in)
		if !errEqual(cerrE, cerrC) {
			return rep, fmt.Errorf("cycle %d diverged: event=%v compiled=%v", cyc, cerrE, cerrC)
		}
		if cerrE != nil {
			return rep, nil // both died identically; trace prefix already compared
		}
		for sigName, v := range outE {
			if outC[sigName] != v {
				return rep, fmt.Errorf("cycle %d signal %s: event=0x%x compiled=0x%x", cyc, sigName, v, outC[sigName])
			}
		}
		covE.Sample(in, outE)
		covC.Sample(in, outC)
		rep.Cycles++
	}

	if hE.Wave.Cycles() != hC.Wave.Cycles() {
		return rep, fmt.Errorf("waveform length: event=%d compiled=%d", hE.Wave.Cycles(), hC.Wave.Cycles())
	}
	for _, n := range hE.Wave.Names() {
		for cyc := 0; cyc < hE.Wave.Cycles(); cyc++ {
			if hE.Wave.At(n, cyc) != hC.Wave.At(n, cyc) {
				return rep, fmt.Errorf("waveform %s@%d: event=0x%x compiled=0x%x",
					n, cyc, hE.Wave.At(n, cyc), hC.Wave.At(n, cyc))
			}
		}
	}
	var vcdE, vcdC bytes.Buffer
	if err := sim.WriteVCD(&vcdE, hE.Wave, sE.Design(), top); err != nil {
		return rep, fmt.Errorf("vcd: %v", err)
	}
	if err := sim.WriteVCD(&vcdC, hC.Wave, sC.Design(), top); err != nil {
		return rep, fmt.Errorf("vcd: %v", err)
	}
	if !bytes.Equal(vcdE.Bytes(), vcdC.Bytes()) {
		return rep, errors.New("VCD output differs")
	}
	if covE.Percent() != covC.Percent() || covE.Report() != covC.Report() {
		return rep, fmt.Errorf("coverage diverged: event=%.4f compiled=%.4f", covE.Percent(), covC.Percent())
	}
	encE, encC := hE.Coverage().Encode(), hC.Coverage().Encode()
	if !bytes.Equal(encE, encC) {
		return rep, fmt.Errorf("structural coverage maps differ:\n--- event ---\n%s--- compiled ---\n%s", encE, encC)
	}
	for _, n := range sE.Design().SignalNames() {
		if sE.Get(n) != sC.Get(n) {
			return rep, fmt.Errorf("internal signal %s: event=0x%x compiled=0x%x", n, sE.Get(n), sC.Get(n))
		}
	}
	return rep, nil
}

// ErrUnparseable marks round-trip inputs the parser rejects; callers
// (fuzzers especially) skip these rather than failing.
var ErrUnparseable = errors.New("rtlgen: source does not parse")

// RoundTrip checks printer/parser stability: a parseable source, once
// canonically printed, must reparse without errors and reprint to the
// identical bytes (AST-stable fixpoint after one canonicalization pass).
func RoundTrip(src string) error {
	f, errs := verilog.Parse(src)
	if len(errs) > 0 {
		return fmt.Errorf("%w: %v", ErrUnparseable, errs[0])
	}
	p1 := verilog.Print(f)
	f1, errs := verilog.Parse(p1)
	if len(errs) > 0 {
		return fmt.Errorf("printed form does not reparse: %v\n--- printed ---\n%s", errs[0], p1)
	}
	p2 := verilog.Print(f1)
	if p1 != p2 {
		return fmt.Errorf("print not stable after reparse:\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
	}
	return nil
}

// MutantStats aggregates the third oracle over one design's mutants.
type MutantStats struct {
	Total    int // parseable functional mutants diffed
	Diverged int // mutants observably different from their golden original
}

// DiffMutants applies every functional fault class to a generated design
// and checks two properties per parseable mutant: the two backends must
// agree on the mutant (the backend oracle extends to broken designs), and
// divergence from the golden original is recorded — a mutation that no
// longer changes observable behavior on any stimulus would mean faultgen's
// classes stopped biting on generated RTL. maxPerClass bounds work.
func DiffMutants(d *Design, cycles int, maxPerClass int) (MutantStats, error) {
	var st MutantStats
	for _, class := range faultgen.FunctionalClasses() {
		muts := faultgen.MutateSource(d.Source, class)
		if len(muts) > maxPerClass {
			muts = muts[:maxPerClass]
		}
		for _, mu := range muts {
			if _, errs := verilog.Parse(mu.Source); len(errs) > 0 {
				continue // functional classes can still yield broken text on exotic shapes
			}
			if _, err := DiffBackends(mu.Source, d.Top, d.Clock, cycles, d.Seed); err != nil {
				return st, fmt.Errorf("%s mutant (%s) backends diverged: %w", class, mu.Descr, err)
			}
			st.Total++
			div, err := tracesDiverge(d.Source, mu.Source, d.Top, d.Clock, cycles, d.Seed)
			if err != nil {
				return st, fmt.Errorf("%s mutant (%s): %w", class, mu.Descr, err)
			}
			if div {
				st.Diverged++
			}
		}
	}
	return st, nil
}

// tracesDiverge runs golden and mutant on the reference event-driven
// backend under identical stimulus and reports whether any observable
// differs. A mutant that fails to elaborate or dies mid-run while the
// golden does not is observably divergent.
func tracesDiverge(golden, mutant, top, clock string, cycles int, seed int64) (bool, error) {
	sG, errG := newSim(golden, top, sim.BackendEventDriven)
	if errG != nil {
		return false, fmt.Errorf("golden failed to elaborate: %v", errG)
	}
	sM, errM := newSim(mutant, top, sim.BackendEventDriven)
	if errM != nil {
		return true, nil
	}
	hG := sim.NewHarness(sG, clock)
	hM := sim.NewHarness(sM, clock)
	if errEqual(hG.ApplyReset(2), hM.ApplyReset(2)) == false {
		return true, nil
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := sG.Design().Inputs()
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]uint64{}
		for _, p := range inputs {
			if p.Name == clock {
				continue
			}
			in[p.Name] = rng.Uint64() & maskW(p.Width)
		}
		outG, cerrG := hG.Cycle(in)
		outM, cerrM := hM.Cycle(copyIn(in, sM))
		if !errEqual(cerrG, cerrM) {
			return true, nil
		}
		if cerrG != nil {
			return false, nil // both died identically
		}
		for sigName, v := range outG {
			if outM[sigName] != v {
				return true, nil
			}
		}
	}
	return false, nil
}

// copyIn filters a stimulus map down to inputs the (possibly mutated)
// design still has, so renamed/deleted ports do not error the harness.
func copyIn(in map[string]uint64, s *sim.Simulator) map[string]uint64 {
	out := make(map[string]uint64, len(in))
	for k, v := range in {
		if s.Has(k) {
			out[k] = v
		}
	}
	return out
}

func errEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}
