// Package verilog implements a lexer, parser, AST and source printer for
// the synthesizable Verilog-2001 subset used by the UVLLM benchmark
// modules. The parser recovers from errors and reports them with line and
// column information so the linter can surface Verilator-style diagnostics
// for broken input.
package verilog

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Operators carry their exact text in Token.Text.
const (
	TokEOF TokenKind = iota
	TokError
	TokIdent
	TokNumber  // 42, 8'hFF, 4'b1010, 'd7
	TokString  // "..."
	TokKeyword // module, endmodule, ...
	TokPunct   // ( ) [ ] { } ; , . : # @ ?
	TokOp      // + - * / % = <= == != < > && || ! & | ^ ~ << >> === !== etc.
)

// String implements fmt.Stringer.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokError:
		return "error"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokPunct:
		return "punctuation"
	case TokOp:
		return "operator"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with source position (1-based).
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// String renders the token with its position, for parser debugging.
func (t Token) String() string {
	return fmt.Sprintf("%s %q @%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// keywords is the set of reserved words recognized by the lexer. A word not
// in this set lexes as an identifier, which lets the parser produce a good
// diagnostic for keyword typos like "alway" or "moduel".
var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "integer": true,
	"parameter": true, "localparam": true, "assign": true, "always": true,
	"initial": true, "begin": true, "end": true, "if": true, "else": true,
	"case": true, "casez": true, "casex": true, "endcase": true,
	"default": true, "for": true, "while": true, "posedge": true,
	"negedge": true, "or": true, "and": true, "not": true, "generate": true,
	"endgenerate": true, "genvar": true, "function": true,
	"endfunction": true, "signed": true, "unsigned": true,
}

// IsKeyword reports whether s is a reserved Verilog word in our subset.
func IsKeyword(s string) bool { return keywords[s] }
