package verilog

import (
	"strings"
	"testing"
)

const goodAdder = `
module adder_8bit(
    input clk,
    input rst_n,
    input [7:0] a,
    input [7:0] b,
    output reg [7:0] sum,
    output reg carry
);
    wire [8:0] full;
    assign full = a + b;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            sum <= 8'b0;
            carry <= 1'b0;
        end else begin
            sum <= full[7:0];
            carry <= full[8];
        end
    end
endmodule
`

func TestParseGoodModule(t *testing.T) {
	f, errs := Parse(goodAdder)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(f.Modules) != 1 {
		t.Fatalf("got %d modules, want 1", len(f.Modules))
	}
	m := f.Modules[0]
	if m.Name != "adder_8bit" {
		t.Errorf("module name = %q", m.Name)
	}
	if len(m.Ports) != 6 {
		t.Fatalf("got %d ports, want 6: %+v", len(m.Ports), m.Ports)
	}
	if p := m.Port("sum"); p == nil || p.Dir != DirOutput || !p.IsReg || p.Range == nil {
		t.Errorf("port sum parsed wrong: %+v", p)
	}
	if got := len(m.InputPorts()); got != 4 {
		t.Errorf("inputs = %d, want 4", got)
	}
	var always *AlwaysBlock
	var assign *ContAssign
	for _, it := range m.Items {
		switch v := it.(type) {
		case *AlwaysBlock:
			always = v
		case *ContAssign:
			assign = v
		}
	}
	if assign == nil {
		t.Fatal("missing continuous assignment")
	}
	if always == nil || !always.Sens.Edged() {
		t.Fatal("missing edged always block")
	}
	blk, ok := always.Body.(*Block)
	if !ok || len(blk.Stmts) != 1 {
		t.Fatalf("always body shape wrong: %#v", always.Body)
	}
	iff, ok := blk.Stmts[0].(*If)
	if !ok || iff.Else == nil {
		t.Fatalf("if/else shape wrong: %#v", blk.Stmts[0])
	}
}

func TestParseParametersAndInstances(t *testing.T) {
	src := `
module top(input [7:0] x, output [7:0] y);
    parameter WIDTH = 8;
    localparam DEPTH = WIDTH * 2;
    wire [WIDTH-1:0] mid;
    sub #(.W(WIDTH)) u1 (.a(x), .b(mid));
    sub u2 (.a(mid), .b(y));
endmodule
module sub(input [7:0] a, output [7:0] b);
    parameter W = 8;
    assign b = a;
endmodule
`
	f, errs := Parse(src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(f.Modules) != 2 {
		t.Fatalf("got %d modules, want 2", len(f.Modules))
	}
	top := f.Module("top")
	var insts []*Instance
	for _, it := range top.Items {
		if in, ok := it.(*Instance); ok {
			insts = append(insts, in)
		}
	}
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want 2", len(insts))
	}
	if insts[0].ModName != "sub" || insts[0].InstName != "u1" {
		t.Errorf("instance 0 = %s %s", insts[0].ModName, insts[0].InstName)
	}
	if len(insts[0].Params) != 1 || insts[0].Params[0].Port != "W" {
		t.Errorf("instance params wrong: %+v", insts[0].Params)
	}
	env, err := ModuleParams(top)
	if err != nil {
		t.Fatalf("ModuleParams: %v", err)
	}
	if env["WIDTH"] != 8 || env["DEPTH"] != 16 {
		t.Errorf("params = %v", env)
	}
}

func TestParseCaseAndFor(t *testing.T) {
	src := `
module m(input [1:0] sel, input [3:0] d, output reg q);
    integer i;
    always @(*) begin
        case (sel)
            2'b00: q = d[0];
            2'b01, 2'b10: q = d[1];
            default: q = d[3];
        endcase
        for (i = 0; i < 4; i = i + 1) begin
            q = q ^ d[i];
        end
    end
endmodule
`
	f, errs := Parse(src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	m := f.Modules[0]
	ab, ok := m.Items[1].(*AlwaysBlock)
	if !ok {
		t.Fatalf("item 1 is %T", m.Items[1])
	}
	blk := ab.Body.(*Block)
	cs, ok := blk.Stmts[0].(*Case)
	if !ok || len(cs.Items) != 3 {
		t.Fatalf("case shape wrong: %#v", blk.Stmts[0])
	}
	if cs.Items[2].Exprs != nil {
		t.Error("third case item should be default")
	}
	if len(cs.Items[1].Exprs) != 2 {
		t.Error("second case item should have two labels")
	}
	if _, ok := blk.Stmts[1].(*For); !ok {
		t.Fatalf("statement 1 is %T, want For", blk.Stmts[1])
	}
}

func TestParseExpressionsPrecedence(t *testing.T) {
	src := `module m(input a, input b, input c, output w);
assign w = a + b * c;
endmodule`
	f, errs := Parse(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	ca := f.Modules[0].Items[0].(*ContAssign)
	add, ok := ca.RHS.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("top op = %#v, want +", ca.RHS)
	}
	mul, ok := add.Y.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("rhs of + is %#v, want *", add.Y)
	}
}

func TestParseConcatReplTernary(t *testing.T) {
	src := `module m(input [3:0] a, output [7:0] y, output [7:0] z, output p);
assign y = {a, 4'b0};
assign z = {2{a}};
assign p = (a == 4'd0) ? 1'b1 : 1'b0;
endmodule`
	f, errs := Parse(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	items := f.Modules[0].Items
	if _, ok := items[0].(*ContAssign).RHS.(*Concat); !ok {
		t.Errorf("y rhs = %#v, want Concat", items[0].(*ContAssign).RHS)
	}
	if _, ok := items[1].(*ContAssign).RHS.(*Repl); !ok {
		t.Errorf("z rhs = %#v, want Repl", items[1].(*ContAssign).RHS)
	}
	if _, ok := items[2].(*ContAssign).RHS.(*Ternary); !ok {
		t.Errorf("p rhs = %#v, want Ternary", items[2].(*ContAssign).RHS)
	}
}

func TestParseMemoryDecl(t *testing.T) {
	src := `module m(input clk);
reg [7:0] mem [0:255];
endmodule`
	f, errs := Parse(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	nd := f.Modules[0].Items[0].(*NetDecl)
	if nd.Names[0].ArrayRange == nil {
		t.Fatal("memory array range missing")
	}
	w, err := RangeWidth(nd.Range, nil)
	if err != nil || w != 8 {
		t.Errorf("word width = %d (%v), want 8", w, err)
	}
}

// --- Error recovery: every syntax fault class must yield at least one
// diagnostic while still producing a usable AST. ---

func TestParseMissingSemicolon(t *testing.T) {
	src := `module m(input a, output w);
assign w = a
endmodule`
	_, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("missing semicolon not reported")
	}
	if !strings.Contains(errs[0].Msg, "missing ';'") {
		t.Errorf("unexpected message: %v", errs[0])
	}
}

func TestParseMissingEnd(t *testing.T) {
	src := `module m(input clk, output reg q);
always @(posedge clk) begin
    q <= 1'b1;
endmodule`
	_, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("missing 'end' not reported")
	}
}

func TestParseMissingEndmodule(t *testing.T) {
	src := `module m(input a, output w);
assign w = a;
`
	_, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("missing 'endmodule' not reported")
	}
}

func TestParseKeywordTypo(t *testing.T) {
	src := `module m(input a, output w);
asign w = a;
endmodule`
	f, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("keyword typo not reported")
	}
	if !strings.Contains(errs[0].Msg, "typo") && !strings.Contains(errs[0].Msg, "unknown") {
		t.Errorf("unexpected message: %v", errs[0])
	}
	if len(f.Modules) != 1 {
		t.Fatal("module lost during recovery")
	}
}

func TestParseMalformedOperator(t *testing.T) {
	src := `module m(input clk, output reg q);
always @(posedge clk) begin
    q =< 1'b1;
end
endmodule`
	_, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("malformed operator not reported")
	}
	found := false
	for _, e := range errs {
		if strings.Contains(e.Msg, "=<") {
			found = true
		}
	}
	if !found {
		t.Errorf("no '=<' diagnostic in %v", errs)
	}
}

func TestParseMalformedLiteral(t *testing.T) {
	src := `module m(output [7:0] w);
assign w = 8'q3;
endmodule`
	_, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("malformed literal not reported")
	}
}

func TestParseRecoveryKeepsLaterItems(t *testing.T) {
	src := `module m(input a, input b, output w, output v);
assign w = ((a;
assign v = b;
endmodule`
	f, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("expected errors")
	}
	// The second assign must survive recovery.
	count := 0
	for _, it := range f.Modules[0].Items {
		if _, ok := it.(*ContAssign); ok {
			count++
		}
	}
	if count < 1 {
		t.Errorf("no assigns recovered, items=%d", len(f.Modules[0].Items))
	}
}

func TestParseErrorPositions(t *testing.T) {
	src := "module m(input a, output w);\nassign w = a\nendmodule"
	_, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("expected error")
	}
	if errs[0].Line != 3 { // reported at the endmodule that follows
		t.Errorf("error line = %d, want 3 (diagnostic: %v)", errs[0].Line, errs[0])
	}
}

func TestPrintRoundTrip(t *testing.T) {
	f, errs := Parse(goodAdder)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	out := Print(f)
	f2, errs2 := Parse(out)
	if len(errs2) != 0 {
		t.Fatalf("reparse errors: %v\nprinted:\n%s", errs2, out)
	}
	if len(f2.Modules) != 1 || f2.Modules[0].Name != "adder_8bit" {
		t.Fatal("round trip lost module")
	}
	if len(f2.Modules[0].Ports) != len(f.Modules[0].Ports) {
		t.Errorf("ports %d != %d after round trip", len(f2.Modules[0].Ports), len(f.Modules[0].Ports))
	}
	out2 := Print(f2)
	if out != out2 {
		t.Errorf("print not idempotent:\n%s\n---\n%s", out, out2)
	}
}

func TestExprHelpers(t *testing.T) {
	src := `module m(input [3:0] a, input [3:0] b, output [3:0] y);
assign y = (a & b) | {a[0], b[3:1]};
endmodule`
	f, errs := Parse(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	ca := f.Modules[0].Items[0].(*ContAssign)
	ids := ExprIdents(ca.RHS)
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("ExprIdents = %v", ids)
	}
	if tg := LHSTargets(ca.LHS); len(tg) != 1 || tg[0] != "y" {
		t.Errorf("LHSTargets = %v", tg)
	}
}

func TestLooksLikeKeywordTypo(t *testing.T) {
	cases := []struct {
		ident, kw string
		want      bool
	}{
		{"alway", "always", true},
		{"moduel", "module", false}, // transposition is distance 2 in our scan
		{"asign", "assign", true},
		{"always", "always", false},
		{"foo", "module", false},
		{"modul", "module", true},
		{"modulee", "module", true},
	}
	for _, c := range cases {
		if got := looksLikeKeywordTypo(c.ident, c.kw); got != c.want {
			t.Errorf("looksLikeKeywordTypo(%q,%q) = %v, want %v", c.ident, c.kw, got, c.want)
		}
	}
}

func TestEvalConst(t *testing.T) {
	env := ConstEnv{"W": 8}
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"W - 1", 7},
		{"(W * 2) - 1", 15},
		{"1 << 4", 16},
		{"W > 4 ? 100 : 200", 100},
		{"-3 + 5", 2},
	}
	for _, c := range cases {
		f, errs := Parse("module m(output [" + c.src + ":0] w); endmodule")
		if len(errs) != 0 {
			t.Fatalf("parse %q: %v", c.src, errs)
		}
		got, err := EvalConst(f.Modules[0].Ports[0].Range.MSB, env)
		if err != nil {
			t.Errorf("EvalConst(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalConst(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvalConstErrors(t *testing.T) {
	f, errs := Parse("module m(input x, output [7:0] w); assign w = x; endmodule")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	ca := f.Modules[0].Items[0].(*ContAssign)
	if _, err := EvalConst(ca.RHS, nil); err == nil {
		t.Error("EvalConst of non-constant should fail")
	}
}
