package sim

import (
	"crypto/sha256"

	"uvllm/internal/memo"
)

// Cache is a content-addressed compile cache: Programs keyed by
// (source hash, top module, backend). It exists because the verification
// pipeline is simulation-bound and compiles the same sources over and
// over — the golden module of every benchmark instance, every candidate
// across the repair loop's iterations, every baseline's re-checks. A hit
// returns the already-compiled immutable Program; callers create cheap
// Instances from it.
//
// The cache is safe for concurrent use and compilation is single-flight:
// two goroutines racing on the same key compile once and share the
// result. Compile errors (syntax, elaboration) are cached too — they are
// deterministic properties of the source, and negative hits are exactly
// what the repair loop's re-checks of a broken candidate need.
type Cache struct {
	m *memo.M[cacheKey, *Program]
}

type cacheKey struct {
	sum     [sha256.Size]byte
	top     string
	backend Backend
}

// DefaultCacheLimit bounds a cache built with NewCache. Fuzzers and long
// evaluation sweeps feed endless distinct sources; beyond the limit the
// oldest half of the entries is dropped.
const DefaultCacheLimit = 4096

// NewCache returns an empty cache with the default entry limit.
func NewCache() *Cache { return NewCacheLimit(DefaultCacheLimit) }

// NewCacheLimit returns an empty cache holding at most limit entries
// (limit <= 0 means the default).
func NewCacheLimit(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultCacheLimit
	}
	return &Cache{m: memo.New[cacheKey, *Program](limit)}
}

var sharedCache = NewCache()

// SharedCache returns the process-wide cache. The evaluation harness and
// the CLIs route every compile through it so the 331-instance benchmark
// compiles each of its 27 golden modules exactly once per backend.
func SharedCache() *Cache { return sharedCache }

func (c *Cache) key(src, top string, backend Backend) cacheKey {
	return cacheKey{sum: sha256.Sum256([]byte(src)), top: top, backend: backend}
}

// Compile returns the cached Program for (src, top, backend), compiling
// on first use. The returned Program is shared: treat it as immutable and
// create Instances for simulation.
func (c *Cache) Compile(src, top string, backend Backend) (*Program, error) {
	return c.m.Do(c.key(src, top, backend), func() (*Program, error) {
		return CompileSource(src, top, backend)
	})
}

// Instance is Compile followed by Program.NewInstance — the drop-in
// replacement for CompileAndNewBackend on a cache.
func (c *Cache) Instance(src, top string, backend Backend) (*Instance, error) {
	p, err := c.Compile(src, top, backend)
	if err != nil {
		return nil, err
	}
	return p.NewInstance()
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats = memo.Stats

// Stats returns the cache counters.
func (c *Cache) Stats() CacheStats { return c.m.Stats() }

// EntryStats reports whether (src, top, backend) is resident and how many
// hits it has served — the observability hook the evaluation tests use to
// assert each golden module was compiled exactly once.
func (c *Cache) EntryStats(src, top string, backend Backend) (hits int64, resident bool) {
	return c.m.EntryHits(c.key(src, top, backend))
}
