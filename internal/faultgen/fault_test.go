package faultgen

import (
	"fmt"
	"strings"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/lint"
)

func TestClassesTaxonomy(t *testing.T) {
	if len(Classes()) != 9 {
		t.Fatalf("want 9 classes, got %d", len(Classes()))
	}
	if len(SyntaxClasses()) != 5 || len(FunctionalClasses()) != 4 {
		t.Fatal("syntax/functional split wrong")
	}
	for _, c := range SyntaxClasses() {
		if !c.IsSyntax() || c.Fig5Category() == "" || c.Fig6Category() != "" {
			t.Errorf("syntax class %s misconfigured", c)
		}
	}
	for _, c := range FunctionalClasses() {
		if c.IsSyntax() || c.Fig6Category() == "" || c.Fig5Category() != "" {
			t.Errorf("functional class %s misconfigured", c)
		}
	}
}

func TestReplaceNth(t *testing.T) {
	s, ok := replaceNth("a b a b a", "a", "X", 1)
	if !ok || s != "a b X b a" {
		t.Errorf("replaceNth = %q, %v", s, ok)
	}
	if _, ok := replaceNth("abc", "z", "X", 0); ok {
		t.Error("replaceNth found missing substring")
	}
}

func TestGenerateSyntaxFaultsLintDirty(t *testing.T) {
	for _, m := range dataset.All() {
		for _, c := range SyntaxClasses() {
			for _, f := range Generate(m, c) {
				rep := lint.Lint(f.Source)
				if len(rep.Errors()) == 0 {
					t.Errorf("%s (%s): no lint error for syntax fault", f.ID, f.Descr)
				}
				if f.Source == f.Golden {
					t.Errorf("%s: fault identical to golden", f.ID)
				}
			}
		}
	}
}

func TestGenerateFunctionalFaultsParse(t *testing.T) {
	for _, m := range dataset.All() {
		for _, c := range FunctionalClasses() {
			for _, f := range Generate(m, c) {
				rep := lint.Lint(f.Source)
				if hasSyntax(rep) {
					t.Errorf("%s (%s): functional fault broke the syntax:\n%s",
						f.ID, f.Descr, rep.Format())
				}
			}
		}
	}
}

func TestBenchmarkSizeAndComposition(t *testing.T) {
	b := Benchmark()
	if len(b) != BenchmarkSize {
		t.Fatalf("benchmark has %d instances, want %d", len(b), BenchmarkSize)
	}
	ids := map[string]bool{}
	syn, fn := 0, 0
	for _, f := range b {
		if ids[f.ID] {
			t.Errorf("duplicate fault id %s", f.ID)
		}
		ids[f.ID] = true
		if f.Class.IsSyntax() {
			syn++
		} else {
			fn++
		}
	}
	if syn == 0 || fn == 0 {
		t.Fatalf("degenerate composition: %d syntax, %d functional", syn, fn)
	}
	t.Logf("benchmark: %d syntax + %d functional = %d", syn, fn, len(b))

	// Every module must contribute, and every category must be present.
	perMod := BenchmarkByModule()
	for _, m := range dataset.All() {
		if len(perMod[m.Name]) == 0 {
			t.Errorf("module %s contributes no instances", m.Name)
		}
	}
	perClass := BenchmarkByClass()
	for _, c := range Classes() {
		if len(perClass[c]) == 0 {
			t.Errorf("class %s contributes no instances", c)
		}
	}
}

func TestBenchmarkDeterministic(t *testing.T) {
	b := Benchmark()
	ids1 := make([]string, len(b))
	for i, f := range b {
		ids1[i] = f.ID
	}
	// Regenerate from scratch (bypassing the cache) and compare.
	var ids2 []string
	for _, m := range dataset.All() {
		for _, c := range Classes() {
			for _, f := range Generate(m, c) {
				ids2 = append(ids2, f.ID)
			}
		}
	}
	// ids1 must be a subsequence-preserving trim of ids2.
	j := 0
	for _, id := range ids1 {
		for j < len(ids2) && ids2[j] != id {
			j++
		}
		if j == len(ids2) {
			t.Fatalf("benchmark order not a stable trim: %s out of order", id)
		}
	}
}

func TestTemplateFixableFraction(t *testing.T) {
	// The pre-processing stage's contribution to functional repairs in the
	// paper is ~26% (Table II). That contribution comes from functional
	// faults that surface as focused lint warnings. Check the benchmark
	// composition puts this fraction in a plausible band.
	b := Benchmark()
	fn, fixable := 0, 0
	for _, f := range b {
		if f.Class.IsSyntax() {
			continue
		}
		fn++
		rep := lint.Lint(f.Source)
		if len(rep.FocusedWarnings()) > 0 || len(rep.Errors()) > 0 {
			fixable++
		}
	}
	frac := float64(fixable) / float64(fn)
	t.Logf("functional instances: %d, lint-visible: %d (%.1f%%)", fn, fixable, 100*frac)
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("lint-visible functional fraction %.2f outside plausible band [0.10, 0.45]", frac)
	}
}

func TestFig7CellApplicability(t *testing.T) {
	// Some cells must be inapplicable ("×" in Fig. 7) and most applicable.
	total, inapplicable := 0, 0
	for _, m := range dataset.All() {
		for _, c := range Classes() {
			total++
			if len(Generate(m, c)) == 0 {
				inapplicable++
			}
		}
	}
	t.Logf("cells: %d total, %d inapplicable", total, inapplicable)
	if inapplicable == 0 {
		t.Error("expected some inapplicable cells (the paper's × marks)")
	}
	if inapplicable > total/3 {
		t.Errorf("too many inapplicable cells: %d/%d", inapplicable, total)
	}
}

func TestSpecificMutations(t *testing.T) {
	src := dataset.ByName("counter_12bit").Source

	t.Run("missing semicolon", func(t *testing.T) {
		ms := mutate(src, SynMissingSemi)
		if len(ms) == 0 {
			t.Fatal("no mutations")
		}
		if strings.Count(ms[0].src, ";") != strings.Count(src, ";")-1 {
			t.Error("semicolon count unchanged")
		}
	})
	t.Run("keyword typo", func(t *testing.T) {
		ms := mutate(src, SynKeywordTypo)
		if len(ms) == 0 || !strings.Contains(ms[0].src, "alway @") {
			t.Fatalf("typo mutation missing: %v", describeAll(ms))
		}
	})
	t.Run("sensitivity removal", func(t *testing.T) {
		ms := mutate(src, FuncCondition)
		found := false
		for _, mu := range ms {
			if strings.Contains(mu.descr, "negedge rst_n") &&
				!strings.Contains(mu.src, "or negedge rst_n") {
				found = true
			}
		}
		if !found {
			t.Errorf("no sensitivity-removal variant: %v", describeAll(ms))
		}
	})
	t.Run("value misuse", func(t *testing.T) {
		ms := mutate(src, FuncLogic)
		if len(ms) == 0 {
			t.Fatal("no logic mutations")
		}
	})
}

func describeAll(ms []mutation) []string {
	var out []string
	for _, m := range ms {
		out = append(out, m.descr)
	}
	return out
}

func TestEffectiveRejectsBenignMutation(t *testing.T) {
	m := dataset.ByName("adder_8bit")
	f := &Fault{
		ID: "adder_8bit/benign", Module: "adder_8bit", Class: FuncLogic,
		Source: m.Source, // identical to golden: trivially benign
		Golden: m.Source,
	}
	if Effective(f) {
		t.Error("benign (identical) fault judged effective")
	}
}

func TestBenchmarkInstancesAllEffective(t *testing.T) {
	if testing.Short() {
		t.Skip("full effectiveness sweep in -short mode")
	}
	for _, f := range Benchmark() {
		if !Effective(f) {
			t.Errorf("%s (%s) is not effective", f.ID, f.Descr)
		}
	}
}

func ExampleGenerate() {
	m := dataset.ByName("accu")
	faults := Generate(m, FuncLogic)
	fmt.Println(len(faults) > 0)
	// Output: true
}
