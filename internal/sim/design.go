// Package sim is a two-backend, 2-state RTL simulator for the
// synthesizable Verilog subset parsed by internal/verilog. It plays the
// role the commercial simulators (VCS, Icarus, ModelSim) play in the UVLLM
// paper: the UVM testbench drives top-level ports, clocks the design and
// samples outputs cycle by cycle. The default compiled backend lowers the
// elaborated design into a levelized closure program (compile.go); the
// event-driven interpreter in this file and sim.go is the reference
// semantics both backends must match (see diff_test.go).
//
// Semantics notes (documented deviations from full IEEE 1364):
//   - 2-state simulation: every signal initializes to 0; x/z literals read
//     as 0 (the parser flags them so the linter can warn).
//   - Expressions are evaluated with context-determined widths per the
//     standard (operands stretched to max of self-determined and assignment
//     context), computed in 64-bit arithmetic with masking at each
//     context-width boundary. Vectors are limited to 64 bits.
//   - Non-blocking assignments are deferred to an NBA commit phase whether
//     they appear in sequential or combinational blocks, matching event
//     semantics (and making the COMBDLY defect observable as scheduling
//     skew rather than a crash).
package sim

import (
	"fmt"
	"sort"
	"strings"

	"uvllm/internal/verilog"
)

// sigInfo describes one elaborated signal (net, variable or memory).
type sigInfo struct {
	name  string // hierarchical name, e.g. "u1.sum"
	width int
	isMem bool
	depth int
}

type procKind int

const (
	procComb procKind = iota // continuous assign or level-sensitive always
	procSeq                  // edge-triggered always
	procInit                 // initial block
)

type edgeSpec struct {
	sig int
	pos bool
}

// process is an executable unit: an always/initial body or a synthesized
// connection assignment with distinct scopes for the two sides.
type process struct {
	idx  int
	kind procKind
	sc   *scope
	body verilog.Stmt

	// Port-connection processes use these instead of body.
	connLHS   verilog.Expr
	connLHSsc *scope
	connRHS   verilog.Expr
	connRHSsc *scope

	edges []edgeSpec
}

// scope resolves identifiers of one module instance to global signal
// indices and parameter values.
type scope struct {
	prefix string
	names  map[string]int
	env    verilog.ConstEnv
}

// Design is an elaborated, simulation-ready hierarchy.
type Design struct {
	sigs    []sigInfo
	byName  map[string]int
	procs   []*process
	combOf  [][]int       // signal -> comb processes to re-run
	edgeOf  [][]edgeSpec2 // signal -> edge-triggered processes
	inputs  []PortInfo
	outputs []PortInfo
}

type edgeSpec2 struct {
	proc int
	pos  bool
}

// PortInfo describes a top-level port.
type PortInfo struct {
	Name  string
	Width int
}

// Elaborate builds a Design for module top within file f, expanding the
// instance hierarchy. Parameter overrides in instantiations are honored.
func Elaborate(f *verilog.SourceFile, top string) (*Design, error) {
	m := f.Module(top)
	if m == nil {
		return nil, fmt.Errorf("sim: top module %q not found", top)
	}
	d := &Design{
		byName: map[string]int{},
	}
	e := &elaborator{f: f, d: d}
	sc, err := e.instantiate(m, "", nil, 0)
	if err != nil {
		return nil, err
	}
	for _, p := range m.Ports {
		idx, ok := sc.names[p.Name]
		if !ok {
			continue
		}
		pi := PortInfo{Name: p.Name, Width: d.sigs[idx].width}
		if p.Dir == verilog.DirInput {
			d.inputs = append(d.inputs, pi)
		} else if p.Dir == verilog.DirOutput {
			d.outputs = append(d.outputs, pi)
		}
	}
	d.indexDeps()
	return d, nil
}

// Inputs returns the top-level input ports in declaration order.
func (d *Design) Inputs() []PortInfo { return d.inputs }

// Outputs returns the top-level output ports in declaration order.
func (d *Design) Outputs() []PortInfo { return d.outputs }

// Constants returns the distinct literal values appearing in the
// design's process bodies, sorted ascending. The coverage-directed
// stimulus layer uses them as a value dictionary: inputs drawn from the
// constants a design compares against reach equality branches and case
// arms that uniform random vectors almost never hit.
func (d *Design) Constants() []uint64 {
	seen := map[uint64]bool{}
	collect := func(e verilog.Expr) {
		verilog.WalkExpr(e, func(x verilog.Expr) bool {
			if n, ok := x.(*verilog.Number); ok {
				seen[n.Value] = true
			}
			return true
		})
	}
	for _, p := range d.procs {
		if p.connRHS != nil {
			collect(p.connRHS)
			continue
		}
		verilog.WalkStmt(p.body, func(st verilog.Stmt) bool {
			switch v := st.(type) {
			case *verilog.Assign:
				collect(v.RHS)
			case *verilog.If:
				collect(v.Cond)
			case *verilog.Case:
				collect(v.Expr)
				for i := range v.Items {
					for _, ex := range v.Items[i].Exprs {
						collect(ex)
					}
				}
			case *verilog.For:
				if v.Init != nil {
					collect(v.Init.RHS)
				}
				collect(v.Cond)
				if v.Step != nil {
					collect(v.Step.RHS)
				}
			}
			return true
		})
	}
	out := make([]uint64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SignalNames returns all hierarchical signal names, sorted.
func (d *Design) SignalNames() []string {
	names := make([]string, 0, len(d.sigs))
	for _, s := range d.sigs {
		names = append(names, s.name)
	}
	sort.Strings(names)
	return names
}

type elaborator struct {
	f *verilog.SourceFile
	d *Design
}

const maxDepth = 16

func (e *elaborator) addSignal(name string, width int, isMem bool, depth int) int {
	idx := len(e.d.sigs)
	e.d.sigs = append(e.d.sigs, sigInfo{name: name, width: width, isMem: isMem, depth: depth})
	e.d.byName[name] = idx
	return idx
}

func (e *elaborator) addProc(p *process) *process {
	p.idx = len(e.d.procs)
	e.d.procs = append(e.d.procs, p)
	return p
}

// instantiate creates signals and processes for one instance of m with the
// hierarchical prefix and parameter overrides, returning its scope.
func (e *elaborator) instantiate(m *verilog.Module, prefix string, overrides verilog.ConstEnv, depth int) (*scope, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("sim: instance hierarchy deeper than %d (recursive instantiation?)", maxDepth)
	}
	sc := &scope{prefix: prefix, names: map[string]int{}}

	// Parameters: defaults evaluated in order, overrides applied first.
	env := verilog.ConstEnv{}
	for _, it := range m.Items {
		if pd, ok := it.(*verilog.ParamDecl); ok {
			if ov, ok := overrides[pd.Name]; ok && !pd.Local {
				env[pd.Name] = ov
				continue
			}
			v, err := verilog.EvalConst(pd.Value, env)
			if err != nil {
				return nil, fmt.Errorf("sim: %s: parameter %s: %w", m.Name, pd.Name, err)
			}
			env[pd.Name] = v
		}
	}
	sc.env = env

	declare := func(name string, rng *verilog.Range, isMem bool, arr *verilog.Range) error {
		if _, dup := sc.names[name]; dup {
			return nil // 1995-style port+body double declaration
		}
		w, err := verilog.RangeWidth(rng, env)
		if err != nil {
			return fmt.Errorf("sim: %s: signal %s: %w", m.Name, name, err)
		}
		dep := 0
		if isMem {
			lo, err1 := verilog.EvalConst(arr.MSB, env)
			hi, err2 := verilog.EvalConst(arr.LSB, env)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("sim: %s: memory %s has non-constant bounds", m.Name, name)
			}
			if lo > hi {
				lo, hi = hi, lo
			}
			dep = int(hi-lo) + 1
			if dep <= 0 || dep > 1<<20 {
				return fmt.Errorf("sim: %s: memory %s depth %d out of range", m.Name, name, dep)
			}
		}
		sc.names[name] = e.addSignal(prefix+name, w, isMem, dep)
		return nil
	}

	for _, p := range m.Ports {
		if err := declare(p.Name, p.Range, false, nil); err != nil {
			return nil, err
		}
	}
	for _, it := range m.Items {
		nd, ok := it.(*verilog.NetDecl)
		if !ok {
			continue
		}
		rng := nd.Range
		if nd.Kind == verilog.KindInteger {
			rng = &verilog.Range{
				MSB: &verilog.Number{Text: "31", Value: 31},
				LSB: &verilog.Number{Text: "0", Value: 0},
			}
		}
		for _, n := range nd.Names {
			if err := declare(n.Name, rng, n.ArrayRange != nil, n.ArrayRange); err != nil {
				return nil, err
			}
		}
	}

	// Processes.
	for _, it := range m.Items {
		switch v := it.(type) {
		case *verilog.NetDecl:
			for _, n := range v.Names {
				if n.Init != nil {
					e.addProc(&process{
						kind:      procComb,
						connLHS:   &verilog.Ident{Name: n.Name, Line: n.Line},
						connLHSsc: sc,
						connRHS:   n.Init,
						connRHSsc: sc,
					})
				}
			}
		case *verilog.ContAssign:
			e.addProc(&process{
				kind:      procComb,
				connLHS:   v.LHS,
				connLHSsc: sc,
				connRHS:   v.RHS,
				connRHSsc: sc,
			})
		case *verilog.AlwaysBlock:
			p := &process{sc: sc, body: v.Body}
			if v.Sens != nil && v.Sens.Edged() {
				p.kind = procSeq
				for _, item := range v.Sens.Items {
					idx, ok := sc.names[item.Signal]
					if !ok {
						return nil, fmt.Errorf("sim: %s: sensitivity signal %q not declared", m.Name, item.Signal)
					}
					if item.Edge != verilog.EdgeNone {
						p.edges = append(p.edges, edgeSpec{sig: idx, pos: item.Edge == verilog.EdgePos})
					}
				}
			} else {
				p.kind = procComb
				// Explicit level-sensitive lists are honored as written so
				// incomplete-sensitivity defects misbehave like real
				// event-driven simulation.
				if v.Sens != nil && !v.Sens.Star {
					for _, item := range v.Sens.Items {
						if idx, ok := sc.names[item.Signal]; ok {
							p.edges = append(p.edges, edgeSpec{sig: idx, pos: false})
						}
					}
				}
			}
			e.addProc(p)
		case *verilog.InitialBlock:
			e.addProc(&process{kind: procInit, sc: sc, body: v.Body})
		case *verilog.Instance:
			child := e.f.Module(v.ModName)
			if child == nil {
				return nil, fmt.Errorf("sim: module %q instantiated by %s not found", v.ModName, m.Name)
			}
			ov := verilog.ConstEnv{}
			for _, pc := range v.Params {
				val, err := verilog.EvalConst(pc.Expr, env)
				if err != nil {
					return nil, fmt.Errorf("sim: %s: parameter override %s: %w", v.InstName, pc.Port, err)
				}
				name := pc.Port
				if strings.HasPrefix(name, "$") {
					return nil, fmt.Errorf("sim: %s: ordinal parameter overrides unsupported", v.InstName)
				}
				ov[name] = val
			}
			childSc, err := e.instantiate(child, prefix+v.InstName+".", ov, depth+1)
			if err != nil {
				return nil, err
			}
			if err := e.connect(m, sc, child, childSc, v); err != nil {
				return nil, err
			}
		}
	}
	return sc, nil
}

// connect synthesizes the port-connection assignments for one instance.
func (e *elaborator) connect(parent *verilog.Module, psc *scope, child *verilog.Module, csc *scope, inst *verilog.Instance) error {
	for _, c := range inst.Conns {
		var port *verilog.Port
		if strings.HasPrefix(c.Port, "$") {
			var idx int
			fmt.Sscanf(c.Port, "$%d", &idx)
			if idx >= len(child.Ports) {
				return fmt.Errorf("sim: %s: too many ordinal connections", inst.InstName)
			}
			port = child.Ports[idx]
		} else {
			port = child.Port(c.Port)
			if port == nil {
				return fmt.Errorf("sim: %s: module %s has no port %q", inst.InstName, child.Name, c.Port)
			}
		}
		if c.Expr == nil {
			continue // unconnected pin
		}
		portRef := &verilog.Ident{Name: port.Name, Line: c.Line}
		switch port.Dir {
		case verilog.DirInput:
			e.addProc(&process{
				kind:      procComb,
				connLHS:   portRef,
				connLHSsc: csc,
				connRHS:   c.Expr,
				connRHSsc: psc,
			})
		case verilog.DirOutput:
			e.addProc(&process{
				kind:      procComb,
				connLHS:   c.Expr,
				connLHSsc: psc,
				connRHS:   portRef,
				connRHSsc: csc,
			})
		default:
			return fmt.Errorf("sim: %s: inout ports unsupported", inst.InstName)
		}
	}
	return nil
}

// indexDeps builds the signal -> process trigger tables (dense slices:
// they sit on the hot path of every signal store).
func (d *Design) indexDeps() {
	d.combOf = make([][]int, len(d.sigs))
	d.edgeOf = make([][]edgeSpec2, len(d.sigs))
	for _, p := range d.procs {
		switch p.kind {
		case procComb:
			for _, dep := range p.combDeps(d) {
				d.combOf[dep] = append(d.combOf[dep], p.idx)
			}
		case procSeq:
			for _, ed := range p.edges {
				d.edgeOf[ed.sig] = append(d.edgeOf[ed.sig], edgeSpec2{proc: p.idx, pos: ed.pos})
			}
		}
	}
}

// combDeps computes the signals whose changes re-trigger a combinational
// process.
func (p *process) combDeps(d *Design) []int {
	seen := map[int]bool{}
	var deps []int
	add := func(idx int) {
		if !seen[idx] {
			seen[idx] = true
			deps = append(deps, idx)
		}
	}
	collect := func(e verilog.Expr, sc *scope) {
		verilog.WalkExpr(e, func(x verilog.Expr) bool {
			if id, ok := x.(*verilog.Ident); ok {
				if _, isParam := sc.env[id.Name]; isParam {
					return true
				}
				if idx, ok := sc.names[id.Name]; ok {
					add(idx)
				}
			}
			return true
		})
	}
	if p.connRHS != nil {
		collect(p.connRHS, p.connRHSsc)
		// Dynamic selects on the LHS re-trigger too.
		switch v := p.connLHS.(type) {
		case *verilog.Index:
			collect(v.Index, p.connLHSsc)
		case *verilog.PartSelect:
			collect(v.MSB, p.connLHSsc)
			collect(v.LSB, p.connLHSsc)
		}
		return deps
	}
	if len(p.edges) > 0 {
		// Explicit level-sensitive list.
		for _, ed := range p.edges {
			add(ed.sig)
		}
		return deps
	}
	// @(*): every identifier read anywhere in the body.
	verilog.WalkStmt(p.body, func(s verilog.Stmt) bool {
		switch v := s.(type) {
		case *verilog.Assign:
			collect(v.RHS, p.sc)
			switch l := v.LHS.(type) {
			case *verilog.Index:
				collect(l.Index, p.sc)
			case *verilog.PartSelect:
				collect(l.MSB, p.sc)
				collect(l.LSB, p.sc)
			}
		case *verilog.If:
			collect(v.Cond, p.sc)
		case *verilog.Case:
			collect(v.Expr, p.sc)
			for _, it := range v.Items {
				for _, ex := range it.Exprs {
					collect(ex, p.sc)
				}
			}
		case *verilog.For:
			collect(v.Cond, p.sc)
			if v.Init != nil {
				collect(v.Init.RHS, p.sc)
			}
			if v.Step != nil {
				collect(v.Step.RHS, p.sc)
			}
		}
		return true
	})
	return deps
}
