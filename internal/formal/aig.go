// Package formal is the repository's third verification oracle, and the
// first exhaustive one: where the UVM testbench (internal/uvm) and the
// differential backends (internal/rtlgen) can only report "no divergence on
// the stimulus we ran", this package proves properties of the design over
// *all* stimulus up to a bounded depth. It is built from scratch on the
// standard library, like everything else here, in three layers:
//
//   - a bit-blaster (blast.go) that lowers a compiled, cleanly levelized
//     sim.Program — combinational closures, sequential next-state
//     functions, memories small enough to blast — into an and-inverter
//     graph (AIG) over per-bit variables, replaying the simulator's exact
//     phase schedule symbolically;
//   - Tseitin CNF conversion (cnf.go) and a CDCL SAT solver (sat.go) with
//     two-watched-literal propagation, VSIDS-lite decision ordering, phase
//     saving and Luby restarts;
//   - on top of those, bounded model checking (equiv.go): combinational
//     and k-depth sequential equivalence of two designs via a miter over
//     their unrolled transition relations, and bounded assertion proof /
//     refutation (prove.go) for the structural forms mined by
//     internal/assert. Refutations come back as concrete per-cycle input
//     vectors convertible into a uvm stimulus sequence, so every SAT
//     verdict is replayable on both simulation backends.
package formal

// Lit is an AIG literal: a node index shifted left once, with the low bit
// carrying negation. Node 0 is the constant-false node, so False is the
// literal 0 and True its negation.
type Lit uint32

// Constant literals.
const (
	False Lit = 0
	True  Lit = 1
)

// Not returns the negation of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Node returns the AIG node index the literal points at.
func (l Lit) Node() uint32 { return uint32(l) >> 1 }

// varSentinel marks the fanins of input-variable nodes.
const varSentinel = ^Lit(0)

// aigNode is one AIG node: an AND gate over two literals, or an input
// variable (both fanins varSentinel), or the constant node 0.
type aigNode struct {
	a, b Lit
}

// AIG is a structurally hashed and-inverter graph. Every combinational
// function the bit-blaster builds is a vector of literals into one shared
// AIG; structural hashing plus constant/idempotence simplification keep
// equal subcircuits equal literals, which is what makes golden-vs-golden
// miters collapse and shared unrollings cheap.
type AIG struct {
	nodes  []aigNode
	strash strashTable
	nVars  int
}

// NewAIG returns an empty graph containing only the constant node.
func NewAIG() *AIG {
	return &AIG{
		nodes:  []aigNode{{a: varSentinel, b: varSentinel}},
		strash: newStrashTable(1 << 10),
	}
}

// strashTable is an open-addressed (linear probing) hash table from the
// packed (a, b) fanin pair to the node literal. It sits on the single
// hottest path of bit-blasting — every AND construction probes it — where
// a plain Go map showed up as ~30% of the profile.
type strashTable struct {
	keys []uint64 // 0 = empty slot (the pair (False, False) never hashes: And folds it)
	vals []Lit
	n    int
}

func newStrashTable(size int) strashTable {
	return strashTable{keys: make([]uint64, size), vals: make([]Lit, size)}
}

func strashHash(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15
	return key ^ key>>29
}

// get looks up a packed fanin pair.
func (t *strashTable) get(key uint64) (Lit, bool) {
	mask := uint64(len(t.keys) - 1)
	for i := strashHash(key) & mask; ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			return t.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
	}
}

// put inserts a packed fanin pair, growing at 3/4 load.
func (t *strashTable) put(key uint64, val Lit) {
	if (t.n+1)*4 > len(t.keys)*3 {
		old := *t
		*t = newStrashTable(len(old.keys) * 2)
		t.n = old.n
		for i, k := range old.keys {
			if k != 0 {
				t.putNoGrow(k, old.vals[i])
			}
		}
	}
	t.putNoGrow(key, val)
	t.n++
}

func (t *strashTable) putNoGrow(key uint64, val Lit) {
	mask := uint64(len(t.keys) - 1)
	i := strashHash(key) & mask
	for t.keys[i] != 0 {
		i = (i + 1) & mask
	}
	t.keys[i] = key
	t.vals[i] = val
}

// NumNodes returns the node count (constant and variables included).
func (g *AIG) NumNodes() int { return len(g.nodes) }

// NumVars returns the number of input variables created so far.
func (g *AIG) NumVars() int { return g.nVars }

// NewVar allocates a fresh input variable and returns its positive
// literal.
func (g *AIG) NewVar() Lit {
	idx := uint32(len(g.nodes))
	g.nodes = append(g.nodes, aigNode{a: varSentinel, b: varSentinel})
	g.nVars++
	return Lit(idx << 1)
}

// Fanins returns node i's fanin literals and whether the node is an AND
// gate (false for the constant node and for input variables). Nodes are
// created in topological order, so a single pass over 1..NumNodes()-1
// visiting each AND's fanins is a complete evaluation order — the export
// that lets a word-level evaluator (internal/psim) compile the graph into
// a straight-line op list without re-walking construction.
func (g *AIG) Fanins(i uint32) (a, b Lit, isAnd bool) {
	n := g.nodes[i]
	if i == 0 || n.a == varSentinel {
		return 0, 0, false
	}
	return n.a, n.b, true
}

// IsVar reports whether the literal points at an input variable node.
func (g *AIG) IsVar(l Lit) bool {
	n := g.nodes[l.Node()]
	return l.Node() != 0 && n.a == varSentinel
}

// IsConst reports whether the literal is constant, and its value.
func (g *AIG) IsConst(l Lit) (isConst, val bool) {
	if l.Node() == 0 {
		return true, l.Neg()
	}
	return false, false
}

// And returns a literal for a AND b, simplifying trivial cases and
// reusing an existing node when the same (a, b) pair was built before.
func (g *AIG) And(a, b Lit) Lit {
	if a == False || b == False || a == b.Not() {
		return False
	}
	if a == True {
		return b
	}
	if b == True || a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := uint64(a)<<32 | uint64(b)
	if l, ok := g.strash.get(key); ok {
		return l
	}
	idx := uint32(len(g.nodes))
	g.nodes = append(g.nodes, aigNode{a: a, b: b})
	l := Lit(idx << 1)
	g.strash.put(key, l)
	return l
}

// Or returns a OR b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a XOR b.
func (g *AIG) Xor(a, b Lit) Lit {
	if ca, va := g.IsConst(a); ca {
		if va {
			return b.Not()
		}
		return b
	}
	if cb, vb := g.IsConst(b); cb {
		if vb {
			return a.Not()
		}
		return a
	}
	if a == b {
		return False
	}
	if a == b.Not() {
		return True
	}
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns c ? t : e.
func (g *AIG) Mux(c, t, e Lit) Lit {
	if c == True {
		return t
	}
	if c == False {
		return e
	}
	if t == e {
		return t
	}
	return g.Or(g.And(c, t), g.And(c.Not(), e))
}

// Eval computes each root literal's value under an assignment to the
// input variables (assign is called with the variable's node index;
// unconstrained variables should read false). It is how counterexample
// models are decoded back into concrete signal values.
func (g *AIG) Eval(assign func(node uint32) bool, roots []Lit) []bool {
	// Iterative post-order over the union cone of the roots.
	val := make([]int8, len(g.nodes)) // 0 unknown, 1 false, 2 true
	val[0] = 1
	var stack []uint32
	for _, r := range roots {
		stack = append(stack, r.Node())
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		if val[n] != 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		nd := g.nodes[n]
		if nd.a == varSentinel {
			if assign(n) {
				val[n] = 2
			} else {
				val[n] = 1
			}
			stack = stack[:len(stack)-1]
			continue
		}
		an, bn := nd.a.Node(), nd.b.Node()
		if val[an] == 0 {
			stack = append(stack, an)
			continue
		}
		if val[bn] == 0 {
			stack = append(stack, bn)
			continue
		}
		av := (val[an] == 2) != nd.a.Neg()
		bv := (val[bn] == 2) != nd.b.Neg()
		if av && bv {
			val[n] = 2
		} else {
			val[n] = 1
		}
		stack = stack[:len(stack)-1]
	}
	out := make([]bool, len(roots))
	for i, r := range roots {
		out[i] = (val[r.Node()] == 2) != r.Neg()
	}
	return out
}
