package main

import (
	"strings"
	"testing"
)

// TestValidateFlags is the table test for the up-front flag validation:
// nonsense values must be rejected with a clear message before any
// pipeline stage runs.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name        string
		variant     int
		formalDepth int
		mode        string
		backend     string
		wantErr     string // "" = valid
	}{
		{"defaults", 0, 0, "pair", "compiled", ""},
		{"complete mode", 3, 40, "complete", "event", ""},
		{"negative variant", -1, 0, "pair", "compiled", "-variant"},
		{"negative formal depth", 0, -5, "pair", "compiled", "-formal-depth"},
		{"unknown mode", 0, 0, "partial", "compiled", "-mode"},
		{"unknown backend", 0, 0, "pair", "quantum", "backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.variant, tc.formalDepth, tc.mode, tc.backend)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
