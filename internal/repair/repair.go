// Package repair implements the patch machinery of UVLLM's repair stage:
// applying the agent's original→patched pairs (or complete regenerations)
// to the DUT source, and the score-register rollback mechanism of paper
// Sec. III-C that reverts quality regressions and records them as "damage
// repairs" for future prompts.
package repair

import (
	"fmt"
	"strings"

	"uvllm/internal/llm"
)

// ApplyReply applies a parsed agent reply to src. In pair mode every
// original snippet must be located (exactly, or by whitespace-normalized
// line matching — LLMs routinely reproduce code with changed indentation);
// in complete mode the reply's full source replaces the DUT.
func ApplyReply(src string, reply *llm.RepairReply, mode llm.GenMode) (string, error) {
	if mode == llm.ModeComplete || (reply.Complete != "" && len(reply.Correct) == 0) {
		if !strings.Contains(reply.Complete, "module") {
			return "", fmt.Errorf("repair: complete-mode reply contains no module")
		}
		return reply.Complete, nil
	}
	if len(reply.Correct) == 0 {
		return "", fmt.Errorf("repair: reply contains no patches")
	}
	out := src
	applied := 0
	for _, p := range reply.Correct {
		next, err := applyPair(out, p)
		if err != nil {
			continue // skip unlocatable pairs, count what applied
		}
		out = next
		applied++
	}
	if applied == 0 {
		return "", fmt.Errorf("repair: none of %d patch pair(s) matched the source", len(reply.Correct))
	}
	return out, nil
}

func applyPair(src string, p llm.PatchPair) (string, error) {
	if p.Original == "" {
		return "", fmt.Errorf("repair: empty original snippet")
	}
	if strings.Contains(src, p.Original) {
		return strings.Replace(src, p.Original, p.Patched, 1), nil
	}
	// Whitespace-normalized line matching.
	want := normalizeLines(p.Original)
	srcLines := strings.Split(src, "\n")
	n := len(want)
	for i := 0; i+n <= len(srcLines); i++ {
		match := true
		for j := 0; j < n; j++ {
			if strings.TrimSpace(srcLines[i+j]) != want[j] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		indent := leadingWS(srcLines[i])
		var patched []string
		if p.Patched != "" {
			for _, ln := range strings.Split(p.Patched, "\n") {
				patched = append(patched, indent+strings.TrimSpace(ln))
			}
		}
		out := append([]string{}, srcLines[:i]...)
		out = append(out, patched...)
		out = append(out, srcLines[i+n:]...)
		return strings.Join(out, "\n"), nil
	}
	return "", fmt.Errorf("repair: original snippet not found: %q", firstLine(p.Original))
}

func normalizeLines(s string) []string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		out = append(out, strings.TrimSpace(ln))
	}
	return out
}

func leadingWS(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return s[:i]
		}
	}
	return s
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Version is one entry of the score register's history.
type Version struct {
	Source string
	Score  float64
	Pairs  []llm.PatchPair // the patches that produced this version
}

// ScoreRegister implements the rollback mechanism: it keeps the
// highest-scoring code version; offering a lower-scoring version is
// rejected, rolled back, and its patches are recorded as damage repairs.
type ScoreRegister struct {
	best    Version
	started bool
	History []Version
	Damage  []llm.PatchPair
	// Disabled turns rollback off (ablation): every offer is accepted.
	Disabled bool
}

// Init seeds the register with the starting version.
func (r *ScoreRegister) Init(source string, score float64) {
	r.best = Version{Source: source, Score: score}
	r.started = true
	r.History = append(r.History, r.best)
}

// Best returns the highest-scoring version seen.
func (r *ScoreRegister) Best() Version { return r.best }

// Offer presents a new candidate version. It returns the source to
// continue from: the candidate if it does not regress, or the rolled-back
// best version otherwise (recording the damage).
func (r *ScoreRegister) Offer(source string, score float64, pairs []llm.PatchPair) (string, bool) {
	if !r.started {
		r.Init(source, score)
		return source, true
	}
	r.History = append(r.History, Version{Source: source, Score: score, Pairs: pairs})
	if r.Disabled || score >= r.best.Score {
		if score >= r.best.Score {
			r.best = Version{Source: source, Score: score, Pairs: pairs}
		}
		return source, true
	}
	// Rollback: the alterations that decreased the score become damage
	// repairs (paper Fig. 4's "Knowledge" input).
	r.Damage = append(r.Damage, pairs...)
	return r.best.Source, false
}
