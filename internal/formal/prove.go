package formal

import (
	"fmt"

	"uvllm/internal/assert"
	"uvllm/internal/sim"
)

// Bounded assertion checking: the structural forms internal/assert mines
// (OneHot, Bound, Mutex) reference cycle-sampled port values, which is
// exactly what a Model's unrolled states provide. Forms carrying opaque
// Go predicates (Invariant, Implication) and the reset-conditioned
// ResetValue (vacuous under the frozen-reset protocol) cannot be blasted
// and are reported as skipped.

// AssertVerdict classifies one assertion after a bounded check.
type AssertVerdict int

// Assertion verdicts.
const (
	// AssertProved: the property holds on every post-reset stimulus up to
	// the requested depth.
	AssertProved AssertVerdict = iota
	// AssertRefuted: a concrete stimulus violates the property; the
	// counterexample replays in simulation.
	AssertRefuted
	// AssertSkipped: the assertion form is outside the blastable subset.
	AssertSkipped
)

// String implements fmt.Stringer.
func (v AssertVerdict) String() string {
	switch v {
	case AssertProved:
		return "proved"
	case AssertRefuted:
		return "refuted"
	case AssertSkipped:
		return "skipped"
	}
	return "verdict?"
}

// AssertResult is the outcome of one assertion's bounded check.
type AssertResult struct {
	Assertion assert.Assertion
	Verdict   AssertVerdict
	Unbounded bool            // InductionAssertions: the inductive step closed
	Depth     int             // depth proved (window size when Unbounded), or the violation cycle
	Cex       *Counterexample // refutation stimulus, nil otherwise
	Stats     BMCStats
}

// CheckAssertions bounded-checks each assertion against the design: the
// model is unrolled k cycles from the concrete reset state and each
// cycle's sampled values (inputs and outputs, the UVM monitor's view)
// instantiate the property. Unsupported designs return ErrUnsupported.
func CheckAssertions(prog *sim.Program, clock string, as []assert.Assertion, k int) ([]AssertResult, error) {
	m, err := newModelShared(NewAIG(), prog, Options{Clock: clock})
	if err != nil {
		return nil, err
	}
	var out []AssertResult
	for _, a := range as {
		res, err := m.checkOne(a, k)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// PromoteAssertions upgrades every provable assertion to its
// assert.Promoted form (held-on-trace → proved-to-depth-k), returning the
// upgraded list alongside the refuted and skipped subsets. The input
// order is preserved in the promoted list: callers can swap it directly
// into a uvm.Config.
func PromoteAssertions(prog *sim.Program, clock string, as []assert.Assertion, k int) (promoted []assert.Assertion, refuted []AssertResult, skipped int, err error) {
	results, err := CheckAssertions(prog, clock, as, k)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, r := range results {
		switch r.Verdict {
		case AssertProved:
			promoted = append(promoted, assert.Promote(r.Assertion, r.Depth))
		case AssertRefuted:
			refuted = append(refuted, r)
			promoted = append(promoted, r.Assertion)
		default:
			skipped++
			promoted = append(promoted, r.Assertion)
		}
	}
	return promoted, refuted, skipped, nil
}

// InductionAssertions checks each assertion with k-induction: the
// bounded base case of CheckAssertions plus an inductive step over an
// arbitrary-state window (the same scheme as InductionEquivOpts).
// Assertions whose step closes come back AssertProved with Unbounded set
// — the property holds at every cycle of every post-reset run, not just
// to depth k.
func InductionAssertions(prog *sim.Program, clock string, as []assert.Assertion, k int) ([]AssertResult, error) {
	m, err := newModelShared(NewAIG(), prog, Options{Clock: clock})
	if err != nil {
		return nil, err
	}
	var out []AssertResult
	for _, a := range as {
		res, err := m.checkOneInduction(a, k)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// PromoteAssertionsInduction is PromoteAssertions on top of
// InductionAssertions: assertions proved for all time are promoted with
// assert.DepthUnbounded instead of a finite depth.
func PromoteAssertionsInduction(prog *sim.Program, clock string, as []assert.Assertion, k int) (promoted []assert.Assertion, refuted []AssertResult, skipped int, err error) {
	results, err := InductionAssertions(prog, clock, as, k)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, r := range results {
		switch r.Verdict {
		case AssertProved:
			d := r.Depth
			if r.Unbounded {
				d = assert.DepthUnbounded
			}
			promoted = append(promoted, assert.Promote(r.Assertion, d))
		case AssertRefuted:
			refuted = append(refuted, r)
			promoted = append(promoted, r.Assertion)
		default:
			skipped++
			promoted = append(promoted, r.Assertion)
		}
	}
	return promoted, refuted, skipped, nil
}

// checkOneInduction runs one assertion through the interleaved
// base/step loop: an incremental BMC unrolling from the concrete reset
// state plus an induction window from a fully symbolic state, with the
// window's ¬bad and loop-free (register-distinctness) hypotheses
// accumulated as permanent unit clauses. See InductionEquivOpts for the
// soundness argument; a budget-exhausted step degrades to the bounded
// verdict instead of failing.
func (m *Model) checkOneInduction(a assert.Assertion, k int) (AssertResult, error) {
	res := AssertResult{Assertion: a}
	g := m.g
	stB, err := m.InitState()
	if err != nil {
		return res, err
	}
	stI := m.FreeState()
	sBase := NewSolver(0)
	sBase.MaxConflicts = m.maxConflicts
	tiB := NewIncTseitin(g, sBase)
	sInd := NewSolver(0)
	sInd.MaxConflicts = m.maxConflicts
	tiI := NewIncTseitin(g, sInd)
	sigs := m.StateSignals()
	win := []*State{stI}
	prevIndBad := False
	inductionAlive := true
	var inputsSoFar []map[string]Vec

	sample := func(in map[string]Vec, st *State) func(string) (Vec, bool) {
		return func(name string) (Vec, bool) {
			if v, ok := in[name]; ok {
				return v, true
			}
			if idx, ok := m.d.SignalIndex(name); ok {
				return st.vals[idx], true
			}
			return nil, false
		}
	}

	for t := 0; t < k; t++ {
		// ---- base case, depth t ----
		in := m.FreshInputs()
		inputsSoFar = append(inputsSoFar, in)
		if stB, err = m.Step(stB, in); err != nil {
			return res, err
		}
		holds, ok := m.blastAssertion(a, sample(in, stB))
		if !ok {
			res.Verdict = AssertSkipped
			return res, nil
		}
		bad := holds.Not()
		res.Stats.AIGNodes = g.NumNodes()
		if c, v := g.IsConst(bad); !c || v {
			badLit := tiB.Lit(bad)
			sat := sBase.SolveAssuming(badLit)
			res.Stats.Solves = append(res.Stats.Solves, sBase.CallStats())
			if sBase.Exhausted() {
				return res, fmt.Errorf("%w: assertion %s at depth %d", ErrBudget, a.Name(), t)
			}
			if sat {
				res.Verdict = AssertRefuted
				res.Depth = t
				res.Cex = extractCex(m, inputsSoFar, tiB.Vars(), sBase, nil, t)
				res.Cex.Signal = a.Name()
				return res, nil
			}
			sBase.AddClause(-badLit)
		}

		// ---- inductive step, window r = t+1 ----
		if !inductionAlive {
			continue
		}
		if t > 0 {
			if c, _ := g.IsConst(prevIndBad); !c {
				sInd.AddClause(-tiI.Lit(prevIndBad))
			}
			for i := 0; i < t; i++ {
				sInd.AddClause(tiI.Lit(stateDiff(g, m, win[i], win[t], sigs)))
			}
		}
		inI := m.FreshInputs()
		if stI, err = m.Step(stI, inI); err != nil {
			// Symbolic-start execution outside the supported subset (e.g. a
			// loop bound that is only constant from the reset state):
			// degrade to the bounded verdict.
			inductionAlive = false
			err = nil
			continue
		}
		win = append(win, stI)
		holdsI, ok := m.blastAssertion(a, sample(inI, stI))
		if !ok {
			inductionAlive = false
			continue
		}
		indBad := holdsI.Not()
		if c, v := g.IsConst(indBad); c {
			if v {
				inductionAlive = false
				continue
			}
			res.Verdict = AssertProved
			res.Unbounded = true
			res.Depth = t + 1
			return res, nil
		}
		indBadLit := tiI.Lit(indBad)
		sat := sInd.SolveAssuming(indBadLit)
		res.Stats.Solves = append(res.Stats.Solves, sInd.CallStats())
		if sInd.Exhausted() {
			inductionAlive = false
			continue
		}
		if !sat {
			res.Verdict = AssertProved
			res.Unbounded = true
			res.Depth = t + 1
			res.Stats.AIGNodes = g.NumNodes()
			return res, nil
		}
		prevIndBad = indBad
	}
	res.Verdict = AssertProved
	res.Depth = k
	res.Stats.AIGNodes = g.NumNodes()
	return res, nil
}

// checkOne unrolls the model and checks one assertion at every depth.
func (m *Model) checkOne(a assert.Assertion, k int) (AssertResult, error) {
	res := AssertResult{Assertion: a}
	st, err := m.InitState()
	if err != nil {
		return res, err
	}
	g := m.g
	var inputsSoFar []map[string]Vec
	for t := 0; t < k; t++ {
		in := m.FreshInputs()
		inputsSoFar = append(inputsSoFar, in)
		if st, err = m.Step(st, in); err != nil {
			return res, err
		}
		// The monitor samples inputs and outputs after the cycle.
		values := func(name string) (Vec, bool) {
			if v, ok := in[name]; ok {
				return v, true
			}
			if idx, ok := m.d.SignalIndex(name); ok {
				return st.vals[idx], true
			}
			return nil, false
		}
		holds, ok := m.blastAssertion(a, values)
		if !ok {
			res.Verdict = AssertSkipped
			return res, nil
		}
		bad := holds.Not()
		if c, v := g.IsConst(bad); c && !v {
			continue
		}
		cnf, vars := g.Tseitin([]Lit{bad})
		s := NewSolverCNF(cnf)
		s.MaxConflicts = m.maxConflicts
		sat := s.Solve()
		res.Stats.Solves = append(res.Stats.Solves, s.Stats())
		if s.Exhausted() {
			return res, fmt.Errorf("%w: assertion %s at depth %d", ErrBudget, a.Name(), t)
		}
		res.Stats.AIGNodes = g.NumNodes()
		if sat {
			res.Verdict = AssertRefuted
			res.Depth = t
			res.Cex = extractCex(m, inputsSoFar, vars, s, nil, t)
			res.Cex.Signal = a.Name()
			return res, nil
		}
	}
	res.Verdict = AssertProved
	res.Depth = k
	res.Stats.AIGNodes = g.NumNodes()
	return res, nil
}

// blastAssertion lowers one structural assertion over the sampled values
// into a single "holds" literal; ok=false marks unsupported forms.
func (m *Model) blastAssertion(a assert.Assertion, values func(string) (Vec, bool)) (Lit, bool) {
	g := m.g
	get := func(name string) Vec {
		if v, ok := values(name); ok {
			return v
		}
		return g.ConstVec(0, 1) // unknown signals sample as zero in the monitor
	}
	switch v := a.(type) {
	case assert.Bound:
		// x <= Limit over the sampled (<= 64-bit) value; an all-ones
		// limit folds to constant true inside UleVec.
		return g.UleVec(g.Resize(get(v.Signal), 64), g.ConstVec(v.Limit, 64)), true
	case assert.Mutex:
		return g.And(g.RedOr(get(v.A)), g.RedOr(get(v.B))).Not(), true
	case assert.OneHot:
		x := get(v.Signal)
		atLeastOne := g.RedOr(x)
		atMostOne := True
		for i := 0; i < len(x); i++ {
			for j := i + 1; j < len(x); j++ {
				atMostOne = g.And(atMostOne, g.And(x[i], x[j]).Not())
			}
		}
		if v.AllowZero {
			return atMostOne, true
		}
		return g.And(atLeastOne, atMostOne), true
	case assert.Promoted:
		return m.blastAssertion(v.Assertion, values)
	default:
		// ResetValue is vacuous under the frozen-reset protocol;
		// Invariant/Implication carry opaque Go predicates.
		return False, false
	}
}
