package cover

import (
	"bytes"
	"strings"
	"testing"
)

func TestPercentAndHit(t *testing.T) {
	m := New()
	if got := m.Percent(); got != 0 {
		t.Fatalf("empty map Percent = %v, want 0", got)
	}
	a := Point{KindStmt, "p0.s0"}
	b := Point{KindBranch, "p0.s1.then"}
	c := Point{KindToggle1, "x[0]"}
	m.Register(a)
	m.Register(b)
	m.Register(c)
	if got := m.Percent(); got != 0 {
		t.Fatalf("unhit Percent = %v, want 0", got)
	}
	m.Add(a, 2)
	m.Add(c, 1)
	if m.Hit() != 2 || m.Len() != 3 {
		t.Fatalf("Hit/Len = %d/%d, want 2/3", m.Hit(), m.Len())
	}
	if got := m.Percent(); got < 66.6 || got > 66.7 {
		t.Fatalf("Percent = %v, want ~66.67", got)
	}
	if pct, ok := m.KindPercent(KindStmt); !ok || pct != 100 {
		t.Fatalf("KindPercent(stmt) = %v,%v want 100,true", pct, ok)
	}
	if _, ok := m.KindPercent(KindState); ok {
		t.Fatal("KindPercent(state) reported a universe with no state points")
	}
}

func TestRegisterPreservesCount(t *testing.T) {
	m := New()
	p := Point{KindStmt, "p"}
	m.Add(p, 3)
	m.Register(p)
	if m.Count(p) != 3 {
		t.Fatalf("Register reset count to %d", m.Count(p))
	}
}

func TestMergeGainDiff(t *testing.T) {
	base := New()
	base.Register(Point{KindStmt, "a"})
	base.Add(Point{KindStmt, "b"}, 1)

	run := New()
	run.Add(Point{KindStmt, "a"}, 2)   // newly hit
	run.Add(Point{KindStmt, "b"}, 5)   // already hit in base
	run.Register(Point{KindStmt, "c"}) // registered but unhit
	run.Add(Point{KindBranch, "d"}, 1) // new point entirely

	if g := base.Gain(run); g != 2 {
		t.Fatalf("Gain = %d, want 2 (a and d)", g)
	}
	diff := base.Diff(run)
	if len(diff) != 2 || diff[0].Name != "a" || diff[1].Name != "d" {
		t.Fatalf("Diff = %v", diff)
	}

	base.Merge(run)
	if base.Count(Point{KindStmt, "a"}) != 2 || base.Count(Point{KindStmt, "b"}) != 6 {
		t.Fatalf("Merge counts wrong: a=%d b=%d", base.Count(Point{KindStmt, "a"}), base.Count(Point{KindStmt, "b"}))
	}
	if base.Len() != 4 {
		t.Fatalf("merged Len = %d, want 4", base.Len())
	}
	if g := base.Gain(run); g != 0 {
		t.Fatalf("Gain after merge = %d, want 0", g)
	}
	if base.Gain(nil) != 0 || len(base.Diff(nil)) != 0 {
		t.Fatal("nil other must be a no-op")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	build := func(order []Point) *Map {
		m := New()
		for i, p := range order {
			m.Add(p, uint64(i+1))
		}
		return m
	}
	pts := []Point{
		{KindTrans, "fsm:1->2"},
		{KindStmt, "p0.s0"},
		{KindToggle0, "x[3]"},
		{KindBranch, "p0.s1.else"},
	}
	rev := []Point{pts[3], pts[2], pts[1], pts[0]}
	m1 := build(pts)
	m2 := New()
	for i := range rev {
		// Same counts as m1, inserted in reverse order.
		m2.Add(rev[i], uint64(len(pts)-i))
	}
	// m1 counts: trans=1 stmt=2 tog0=3 branch=4; m2: branch=4 tog0=3 stmt=2 trans=1.
	if !bytes.Equal(m1.Encode(), m2.Encode()) {
		t.Fatalf("Encode not insertion-order independent:\n%s\nvs\n%s", m1.Encode(), m2.Encode())
	}
	enc := string(m1.Encode())
	if !strings.Contains(enc, "stmt:p0.s0=2") || !strings.Contains(enc, "trans:fsm:1->2=1") {
		t.Fatalf("Encode content wrong:\n%s", enc)
	}
	// Kind order: stmt before branch before tog0 before trans.
	if strings.Index(enc, "stmt:") > strings.Index(enc, "branch:") {
		t.Fatalf("kind order wrong:\n%s", enc)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Add(Point{KindStmt, "a"}, 1)
	c := m.Clone()
	c.Add(Point{KindStmt, "a"}, 1)
	if m.Count(Point{KindStmt, "a"}) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReport(t *testing.T) {
	m := New()
	m.Add(Point{KindStmt, "a"}, 1)
	m.Register(Point{KindStmt, "b"})
	m.Register(Point{KindBranch, "c"})
	r := m.Report(10)
	if !strings.Contains(r, "33.3%") {
		t.Fatalf("Report percent wrong:\n%s", r)
	}
	if !strings.Contains(r, "MISS stmt:b") || !strings.Contains(r, "MISS branch:c") {
		t.Fatalf("Report misses wrong:\n%s", r)
	}
	if strings.Contains(m.Report(0), "MISS") {
		t.Fatal("Report(0) must omit the miss list")
	}
	if !strings.Contains(m.Report(1), "more missed points") {
		t.Fatal("Report cap note missing")
	}
}
