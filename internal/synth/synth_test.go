package synth

import (
	"math/rand"
	"strings"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/sim"
)

// synthesizable lists the dataset modules within the synthesizer's scope
// (single module, no memories).
func synthesizable() []*dataset.Module {
	var out []*dataset.Module
	for _, m := range dataset.All() {
		if strings.Count(m.Source, "module ") > 1 {
			continue // hierarchical
		}
		if strings.Contains(m.Source, "] mem [") {
			continue // memory
		}
		out = append(out, m)
	}
	return out
}

func TestSynthesizableCount(t *testing.T) {
	n := len(synthesizable())
	if n < 20 {
		t.Fatalf("only %d of 27 modules synthesizable; scope regressed", n)
	}
	t.Logf("%d of 27 modules in synthesis scope", n)
}

func TestSynthesizeCombAdder(t *testing.T) {
	nl, err := SynthesizeSource(`module m(input [7:0] a, input [7:0] b, input cin, output [7:0] sum, output cout);
assign {cout, sum} = a + b + {7'd0, cin};
endmodule`, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Regs) != 0 {
		t.Errorf("combinational design has %d regs", len(nl.Regs))
	}
	outs, err := nl.EvalComb(map[string]uint64{"a": 200, "b": 100, "cin": 1})
	if err != nil {
		t.Fatal(err)
	}
	if outs["sum"] != (301&0xFF) || outs["cout"] != 1 {
		t.Errorf("outs = %v", outs)
	}
}

func TestSynthesizeSequentialCounter(t *testing.T) {
	nl, err := SynthesizeSource(`module c(input clk, input rst_n, input en, output reg [7:0] count);
always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
        count <= 8'd0;
    end else if (en) begin
        count <= count + 8'd1;
    end
end
endmodule`, "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Regs) != 1 || nl.Regs[0].Name != "count" {
		t.Fatalf("regs = %+v", nl.Regs)
	}
	st := nl.InitialState()
	var outs map[string]uint64
	in := map[string]uint64{"rst_n": 1, "en": 1}
	for i := 0; i < 5; i++ {
		var err error
		outs, st, err = nl.Step(st, in)
		if err != nil {
			t.Fatal(err)
		}
	}
	if outs["count"] != 5 {
		t.Errorf("count = %d, want 5", outs["count"])
	}
	// Hold when disabled.
	outs, st, _ = nl.Step(st, map[string]uint64{"rst_n": 1, "en": 0})
	if outs["count"] != 5 {
		t.Errorf("count after hold = %d", outs["count"])
	}
	// Reset.
	outs, _, _ = nl.Step(st, map[string]uint64{"rst_n": 0, "en": 1})
	if outs["count"] != 0 {
		t.Errorf("count after reset = %d", outs["count"])
	}
}

func TestSynthesizeRejectsUnsupported(t *testing.T) {
	if _, err := SynthesizeSource(`module m(input clk);
reg [7:0] mem [0:3];
always @(posedge clk) begin
    mem[0] <= 8'd1;
end
endmodule`, "m"); err == nil {
		t.Error("memory accepted")
	}
	if _, err := SynthesizeSource(`module s(input a, output b);
assign b = a;
endmodule
module t(input a, output b);
s u (.a(a), .b(b));
endmodule`, "t"); err == nil {
		t.Error("instance accepted")
	}
	if _, err := SynthesizeSource("module m(input a, output w); assign w = a\nendmodule", "m"); err == nil {
		t.Error("syntax error accepted")
	}
}

// TestEquivalenceAgainstSimulator is the sequential-equivalence smoke
// check: for every in-scope benchmark module, the synthesized netlist and
// the event-driven simulator must agree cycle by cycle on random stimulus.
func TestEquivalenceAgainstSimulator(t *testing.T) {
	for _, m := range synthesizable() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			nl, err := SynthesizeSource(m.Source, m.Top)
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			checkEquivalence(t, nl, m, 250)
		})
	}
}

// TestEquivalenceAfterOptimization re-checks after the optimization
// passes: transformations must be semantics-preserving.
func TestEquivalenceAfterOptimization(t *testing.T) {
	for _, m := range synthesizable() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			nl, err := SynthesizeSource(m.Source, m.Top)
			if err != nil {
				t.Fatal(err)
			}
			before := nl.CellCount()
			saved := nl.Optimize()
			if saved < 0 {
				t.Errorf("optimization grew the netlist by %d", -saved)
			}
			t.Logf("%s: %d -> %d cells", m.Name, before, nl.CellCount())
			checkEquivalence(t, nl, m, 250)
		})
	}
}

func checkEquivalence(t *testing.T, nl *Netlist, m *dataset.Module, cycles int) {
	t.Helper()
	s, err := sim.CompileAndNew(m.Source, m.Top)
	if err != nil {
		t.Fatal(err)
	}
	h := sim.NewHarness(s, m.Clock)
	st := nl.InitialState()
	rng := rand.New(rand.NewSource(21))
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]uint64{}
		for _, p := range s.Design().Inputs() {
			if p.Name == m.Clock {
				continue
			}
			in[p.Name] = rng.Uint64() & ((1 << uint(p.Width)) - 1)
		}
		if m.HasReset {
			if cyc < 2 || cyc%89 == 31 {
				in["rst_n"] = 0
			} else {
				in["rst_n"] = 1
			}
		}
		simOut, err := h.Cycle(in)
		if err != nil {
			t.Fatalf("sim cycle %d: %v", cyc, err)
		}
		var nlOut map[string]uint64
		if m.Clock == "" {
			nlOut, err = nl.EvalComb(in)
		} else {
			nlOut, st, err = nl.Step(st, in)
		}
		if err != nil {
			t.Fatalf("netlist cycle %d: %v", cyc, err)
		}
		for name, sv := range simOut {
			if nlOut[name] != sv {
				t.Fatalf("cycle %d: %s = netlist %d vs sim %d (inputs %v)",
					cyc, name, nlOut[name], sv, in)
			}
		}
	}
}

func TestOptimizePasses(t *testing.T) {
	nl, err := SynthesizeSource(`module m(input [7:0] a, output [7:0] y, output [7:0] z);
wire [7:0] t1;
wire [7:0] t2;
assign t1 = 8'd3 + 8'd4;
assign t2 = a + 8'd7;
assign y = t1 + t2;
assign z = a + 8'd7;
endmodule`, "m")
	if err != nil {
		t.Fatal(err)
	}
	folded := nl.ConstFold()
	if folded == 0 {
		t.Error("constant addition not folded")
	}
	merged := nl.CSE()
	if merged == 0 {
		t.Error("duplicate a+7 not merged")
	}
	removed := nl.DCE()
	if removed == 0 {
		t.Error("dead cells not removed")
	}
	outs, err := nl.EvalComb(map[string]uint64{"a": 10})
	if err != nil {
		t.Fatal(err)
	}
	if outs["y"] != 24 || outs["z"] != 17 {
		t.Errorf("post-optimization outputs wrong: %v", outs)
	}
}

func TestFormatStats(t *testing.T) {
	m := dataset.ByName("alu")
	nl, err := SynthesizeSource(m.Source, m.Top)
	if err != nil {
		t.Fatal(err)
	}
	rep := nl.FormatStats()
	if !strings.Contains(rep, "module alu") || !strings.Contains(rep, "logic cells") {
		t.Errorf("report malformed:\n%s", rep)
	}
}

func TestSynthesisDetectsFunctionalFaultViaEquivalence(t *testing.T) {
	// A bit like a formal EC flow: synthesize both golden and faulty
	// netlists and find a distinguishing input.
	m := dataset.ByName("gray_code")
	gold, err := SynthesizeSource(m.Source, m.Top)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := SynthesizeSource(strings.Replace(m.Source, "bin ^ (bin >> 1)", "bin ^ (bin >> 2)", 1), m.Top)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for v := uint64(0); v < 16; v++ {
		g, _ := gold.EvalComb(map[string]uint64{"bin": v})
		b, _ := bad.EvalComb(map[string]uint64{"bin": v})
		if g["gray"] != b["gray"] {
			found = true
			break
		}
	}
	if !found {
		t.Error("no distinguishing input found for a real fault")
	}
}
