package formal

import (
	"fmt"

	"uvllm/internal/sim"
	"uvllm/internal/verilog"
)

// Symbolic expression evaluation, a literal-by-literal mirror of the
// interpreter in internal/sim (eval, evalBinary, widthOf, widthOfLHS):
// the same context-width rules, the same unsigned 64-bit arithmetic with
// masking at each context boundary, the same out-of-range and
// division-by-zero conventions. Any divergence between this file and
// sim's evaluator is a bug the formal-vs-simulation agreement oracles
// (rtlgen's fourth oracle, FuzzFormalAgreesWithSim) are built to catch.

// widthOf is the self-determined width of an expression (sim.widthOf).
func (e *sexec) widthOf(x verilog.Expr, sc sim.ScopeView) int {
	switch v := x.(type) {
	case *verilog.Number:
		if v.Width > 0 {
			return v.Width
		}
		return 32
	case *verilog.Ident:
		if _, isParam := sc.Param(v.Name); isParam {
			return 32
		}
		if idx, ok := sc.Lookup(v.Name); ok {
			return e.m.sigs[idx].Width
		}
		return 1
	case *verilog.Unary:
		switch v.Op {
		case "!", "&", "|", "^", "~&", "~|", "~^":
			return 1
		}
		return e.widthOf(v.X, sc)
	case *verilog.Binary:
		switch v.Op {
		case "==", "!=", "===", "!==", "<", ">", "<=", ">=", "&&", "||":
			return 1
		case "<<", ">>", "<<<", ">>>":
			return e.widthOf(v.X, sc)
		}
		a, b := e.widthOf(v.X, sc), e.widthOf(v.Y, sc)
		if a > b {
			return a
		}
		return b
	case *verilog.Ternary:
		a, b := e.widthOf(v.Then, sc), e.widthOf(v.Else, sc)
		if a > b {
			return a
		}
		return b
	case *verilog.Index:
		if id, ok := v.X.(*verilog.Ident); ok {
			if idx, ok := sc.Lookup(id.Name); ok && e.m.sigs[idx].IsMem {
				return e.m.sigs[idx].Width
			}
		}
		return 1
	case *verilog.PartSelect:
		msb, lsb, ok := e.constRange(v.MSB, v.LSB, sc)
		if !ok {
			return 1
		}
		return int(msb-lsb) + 1
	case *verilog.Concat:
		total := 0
		for _, p := range v.Parts {
			total += e.widthOf(p, sc)
		}
		return total
	case *verilog.Repl:
		n, err := verilog.EvalConst(v.Count, sc.Params())
		if err != nil || n < 0 {
			return 1
		}
		return int(n) * e.widthOf(v.Value, sc)
	}
	return 1
}

// widthOfLHS is the declared width of an l-value (sim.widthOfLHS).
func (e *sexec) widthOfLHS(lhs verilog.Expr, sc sim.ScopeView) int {
	switch l := lhs.(type) {
	case *verilog.Ident:
		if idx, ok := sc.Lookup(l.Name); ok {
			return e.m.sigs[idx].Width
		}
		return 1
	case *verilog.Index:
		if id, ok := l.X.(*verilog.Ident); ok {
			if idx, ok := sc.Lookup(id.Name); ok && e.m.sigs[idx].IsMem {
				return e.m.sigs[idx].Width
			}
		}
		return 1
	case *verilog.PartSelect:
		msb, lsb, ok := e.constRange(l.MSB, l.LSB, sc)
		if !ok {
			return 1
		}
		return int(msb-lsb) + 1
	case *verilog.Concat:
		total := 0
		for _, p := range l.Parts {
			total += e.widthOfLHS(p, sc)
		}
		return total
	}
	return 1
}

// evalSelf evaluates x at its self-determined width.
func (e *sexec) evalSelf(x verilog.Expr, sc sim.ScopeView) Vec {
	return e.eval(x, sc, e.widthOf(x, sc))
}

// eval evaluates x in context width ctxW, returning a vector of exactly
// min(ctxW, 64) literals (the simulator computes in masked uint64s).
func (e *sexec) eval(x verilog.Expr, sc sim.ScopeView, ctxW int) Vec {
	g := e.g()
	w := vecW(ctxW)
	if e.err != nil {
		return g.ConstVec(0, w)
	}
	switch v := x.(type) {
	case *verilog.Number:
		return g.ConstVec(v.Value, w)

	case *verilog.Ident:
		if pv, isParam := sc.Param(v.Name); isParam {
			return g.ConstVec(uint64(pv), w)
		}
		idx, ok := sc.Lookup(v.Name)
		if !ok {
			e.fail(fmt.Errorf("formal: read of undeclared signal %q (line %d)", v.Name, v.Line))
			return g.ConstVec(0, w)
		}
		return g.Resize(e.st.vals[idx], w)

	case *verilog.Unary:
		switch v.Op {
		case "!":
			return g.Resize(g.BitLit(g.RedOr(e.evalSelf(v.X, sc)).Not()), w)
		case "-":
			return g.NegVec(e.eval(v.X, sc, ctxW))
		case "+":
			return e.eval(v.X, sc, ctxW)
		case "~":
			return g.NotVec(e.eval(v.X, sc, ctxW))
		case "&", "|", "^", "~&", "~|", "~^":
			xv := e.evalSelf(v.X, sc)
			var r Lit
			switch v.Op {
			case "&":
				r = g.RedAnd(xv)
			case "|":
				r = g.RedOr(xv)
			case "^":
				r = g.RedXor(xv)
			case "~&":
				r = g.RedAnd(xv).Not()
			case "~|":
				r = g.RedOr(xv).Not()
			default:
				r = g.RedXor(xv).Not()
			}
			return g.Resize(g.BitLit(r), w)
		}
		e.fail(unsupportedf("unary %q", v.Op))
		return g.ConstVec(0, w)

	case *verilog.Binary:
		return e.evalBinary(v, sc, ctxW)

	case *verilog.Ternary:
		c := g.RedOr(e.evalSelf(v.Cond, sc))
		return g.MuxVec(c, e.eval(v.Then, sc, ctxW), e.eval(v.Else, sc, ctxW))

	case *verilog.Index:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			e.fail(unsupportedf("select base at line %d", v.Line))
			return g.ConstVec(0, w)
		}
		sel := e.evalSelf(v.Index, sc)
		idx, ok := sc.Lookup(id.Name)
		if !ok {
			e.fail(fmt.Errorf("formal: read of undeclared signal %q (line %d)", id.Name, id.Line))
			return g.ConstVec(0, w)
		}
		si := e.m.sigs[idx]
		if si.IsMem {
			// Mux chain over the reachable words; out of range reads zero.
			words := e.st.mems[idx]
			out := g.ConstVec(0, vecW(si.Width))
			reach := wordsReachable(len(sel), len(words))
			for wi := 0; wi < reach; wi++ {
				hit := g.EqConst(sel, uint64(wi))
				if hit == False {
					continue
				}
				out = g.MuxVec(hit, words[wi], out)
			}
			return g.Resize(out, w)
		}
		// Bit select: OR over (sel == i) & x[i]; out of range reads zero.
		bit := False
		xv := e.st.vals[idx]
		reach := wordsReachable(len(sel), len(xv))
		for i := 0; i < reach; i++ {
			hit := g.EqConst(sel, uint64(i))
			if hit == False {
				continue
			}
			bit = g.Or(bit, g.And(hit, xv[i]))
		}
		return g.Resize(g.BitLit(bit), w)

	case *verilog.PartSelect:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			e.fail(unsupportedf("select base at line %d", v.Line))
			return g.ConstVec(0, w)
		}
		idx, ok := sc.Lookup(id.Name)
		if !ok {
			e.fail(fmt.Errorf("formal: read of undeclared signal %q (line %d)", id.Name, id.Line))
			return g.ConstVec(0, w)
		}
		msb, lsb, ok := e.constRange(v.MSB, v.LSB, sc)
		if !ok {
			e.fail(unsupportedf("non-constant part-select bounds (line %d)", v.Line))
			return g.ConstVec(0, w)
		}
		sw := int(msb-lsb) + 1
		xv := e.st.vals[idx]
		out := make(Vec, vecW(sw))
		for i := range out {
			if bi := int(lsb) + i; bi < len(xv) {
				out[i] = xv[bi]
			} else {
				out[i] = False
			}
		}
		return g.Resize(out, w)

	case *verilog.Concat:
		// MSB-first accumulation into a 64-bit word: parts shifted off the
		// top are dropped, exactly like the interpreter's uint64.
		acc := g.ConstVec(0, 64)
		for _, p := range v.Parts {
			pw := e.widthOf(p, sc)
			pv := e.eval(p, sc, pw)
			acc = g.shiftInto(acc, pv, vecW(pw))
		}
		return g.Resize(acc, w)

	case *verilog.Repl:
		n, err := verilog.EvalConst(v.Count, sc.Params())
		if err != nil || n < 0 {
			e.fail(unsupportedf("non-constant replication count (line %d)", v.Line))
			return g.ConstVec(0, w)
		}
		vw := e.widthOf(v.Value, sc)
		pv := e.eval(v.Value, sc, vw)
		acc := g.ConstVec(0, 64)
		for i := int64(0); i < n && i < 64; i++ {
			acc = g.shiftInto(acc, pv, vecW(vw))
		}
		return g.Resize(acc, w)
	}
	e.fail(unsupportedf("expression %T", x))
	return g.ConstVec(0, w)
}

// shiftInto is acc = (acc << pw) | part within a 64-bit accumulator.
func (g *AIG) shiftInto(acc Vec, part Vec, pw int) Vec {
	out := make(Vec, 64)
	for i := 0; i < 64; i++ {
		switch {
		case i < pw && i < len(part):
			out[i] = part[i]
		case i < pw:
			out[i] = False
		case i-pw < len(acc):
			out[i] = acc[i-pw]
		default:
			out[i] = False
		}
	}
	return out
}

func (e *sexec) evalBinary(v *verilog.Binary, sc sim.ScopeView, ctxW int) Vec {
	g := e.g()
	w := vecW(ctxW)
	switch v.Op {
	case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
		x := e.eval(v.X, sc, ctxW)
		y := e.eval(v.Y, sc, ctxW)
		switch v.Op {
		case "+":
			return g.AddVec(x, y)
		case "-":
			return g.SubVec(x, y)
		case "*":
			return g.MulVec(x, y)
		case "/":
			q, _ := g.DivModVec(x, y)
			return q
		case "%":
			_, r := g.DivModVec(x, y)
			return r
		case "&":
			return g.AndVec(x, y)
		case "|":
			return g.OrVec(x, y)
		case "^":
			return g.XorVec(x, y)
		default: // ~^ ^~ xnor
			return g.NotVec(g.XorVec(x, y))
		}

	case "==", "!=", "<", ">", "<=", ">=", "===", "!==":
		cw := e.widthOf(v.X, sc)
		if yw := e.widthOf(v.Y, sc); yw > cw {
			cw = yw
		}
		x := e.eval(v.X, sc, cw)
		y := e.eval(v.Y, sc, cw)
		var r Lit
		switch v.Op {
		case "==", "===":
			r = g.EqVec(x, y)
		case "!=", "!==":
			r = g.EqVec(x, y).Not()
		case "<":
			r = g.UltVec(x, y)
		case ">":
			r = g.UltVec(y, x)
		case "<=":
			r = g.UleVec(x, y)
		default:
			r = g.UleVec(y, x)
		}
		return g.Resize(g.BitLit(r), w)

	case "&&", "||":
		x := g.RedOr(e.evalSelf(v.X, sc))
		y := g.RedOr(e.evalSelf(v.Y, sc))
		if v.Op == "&&" {
			return g.Resize(g.BitLit(g.And(x, y)), w)
		}
		return g.Resize(g.BitLit(g.Or(x, y)), w)

	case "<<", "<<<":
		x := e.eval(v.X, sc, ctxW)
		n := e.evalSelf(v.Y, sc)
		return g.ShlVec(x, n)

	case ">>", ">>>":
		// Logical shift, operand at max(self, context) width so stray high
		// bits never leak in — then truncated to the context.
		cw := e.widthOf(v.X, sc)
		if ctxW > cw {
			cw = ctxW
		}
		x := e.eval(v.X, sc, cw)
		n := e.evalSelf(v.Y, sc)
		return g.Resize(g.ShrVec(x, n), w)
	}
	e.fail(unsupportedf("binary operator %q", v.Op))
	return g.ConstVec(0, w)
}
