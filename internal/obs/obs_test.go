package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrentDeterminism hammers one counter and one
// labelled counter family from many goroutines and checks the final
// snapshot is exact — the registry's lock-free increments lose
// nothing (run under -race in CI).
func TestCounterConcurrentDeterminism(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("jobs_total", "jobs")
			lc := r.Counter("by_status", "per status", L("status", "done"))
			h := r.Histogram("lat", "latency", []float64{1, 10, 100})
			for i := 0; i < perG; i++ {
				c.Inc()
				lc.Add(2)
				h.Observe(float64(i % 200))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("jobs_total", "jobs").Value(); got != goroutines*perG {
		t.Fatalf("jobs_total = %d, want %d", got, goroutines*perG)
	}
	if got := r.Counter("by_status", "per status", L("status", "done")).Value(); got != 2*goroutines*perG {
		t.Fatalf("by_status = %d, want %d", got, 2*goroutines*perG)
	}
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestRegistrySameHandle checks the registry returns the identical
// handle for the same (name, label set) regardless of label order.
func TestRegistrySameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", L("x", "1"), L("y", "2"))
	b := r.Counter("c", "h", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("same series returned distinct handles")
	}
	if a == r.Counter("c", "h", L("x", "1"), L("y", "3")) {
		t.Fatal("distinct label values shared a handle")
	}
}

// TestNilSafety checks that every handle obtained from a nil registry
// (the disabled fast path) is usable without panicking.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter reported a value")
	}
	g := r.Gauge("g", "h")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge reported a value")
	}
	r.GaugeFunc("gf", "h", func() float64 { return 1 })
	h := r.Histogram("hi", "h", []float64{1})
	h.Observe(2)
	if h.Count() != 0 || h.Sum() != 0 || h.Samples() != nil {
		t.Fatal("nil histogram recorded data")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramBuckets checks le-bucket placement, NaN rejection, and
// the bounded sample window.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 2, 5, 7, 50, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6 (NaN must be rejected)", h.Count())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "histogram" {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	s := snap[0].Series[0]
	// le=1: {0.5, 1}; le=5: +{2, 5}; le=10: +{7}; +Inf: +{50}.
	want := []uint64{2, 4, 5, 6}
	if len(s.Cumulative) != len(want) {
		t.Fatalf("cumulative len = %d, want %d", len(s.Cumulative), len(want))
	}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all: %v)", i, s.Cumulative[i], w, s.Cumulative)
		}
	}
	if s.Sum != 0.5+1+2+5+7+50 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

// TestHistogramSampleWindow checks the raw-sample ring stays bounded
// and keeps recent observations.
func TestHistogramSampleWindow(t *testing.T) {
	h := &Histogram{bounds: []float64{1}, counts: make([]uint64, 2), window: 4}
	for i := 0; i < 10; i++ {
		h.Observe(float64(i))
	}
	got := h.Samples()
	if len(got) != 4 {
		t.Fatalf("window len = %d, want 4", len(got))
	}
	var sum float64
	for _, v := range got {
		sum += v
	}
	if sum != 6+7+8+9 {
		t.Fatalf("window kept %v, want the last four observations", got)
	}
}

// TestGaugeAndFunc checks gauge set/read and snapshot-time GaugeFunc
// evaluation.
func TestGaugeAndFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	v := 3.0
	r.GaugeFunc("hits", "cache hits", func() float64 { return v })
	snap := r.Snapshot()
	byName := map[string]float64{}
	for _, m := range snap {
		byName[m.Name] = m.Series[0].Value
	}
	if byName["depth"] != 7 || byName["hits"] != 3 {
		t.Fatalf("snapshot values: %v", byName)
	}
	v = 9
	snap = r.Snapshot()
	for _, m := range snap {
		if m.Name == "hits" && m.Series[0].Value != 9 {
			t.Fatalf("GaugeFunc not re-evaluated: %v", m.Series[0].Value)
		}
	}
}

// TestWritePrometheus checks the text exposition: headers, label
// rendering/escaping, histogram bucket/sum/count expansion, and
// determinism across calls.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "total jobs").Add(3)
	r.Counter("jobs_by_status_total", "jobs by status", L("status", `we"ird\`)).Inc()
	r.Gauge("queue_depth", "depth").Set(2.5)
	h := r.Histogram("solver_conflicts", "conflicts per call", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`jobs_by_status_total{status="we\"ird\\"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 2.5",
		"# TYPE solver_conflicts histogram",
		`solver_conflicts_bucket{le="10"} 1`,
		`solver_conflicts_bucket{le="100"} 2`,
		`solver_conflicts_bucket{le="+Inf"} 3`,
		"solver_conflicts_sum 5055",
		"solver_conflicts_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("exposition output not deterministic")
	}
}

// TestExpBuckets checks the exponential bucket helper.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if b := ExpBuckets(0, 2, 3); len(b) != 1 {
		t.Fatalf("degenerate ExpBuckets = %v", b)
	}
}

// TestCounterKindConflict checks that re-registering a name under a
// different kind panics loudly rather than corrupting the family.
func TestCounterKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("m", "h")
}
