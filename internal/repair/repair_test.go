package repair

import (
	"strings"
	"testing"

	"uvllm/internal/llm"
)

const src = `module m(
    input [7:0] a,
    output [7:0] y
);
    assign y = a + 8'd1;
endmodule
`

func TestApplyReplyExactPair(t *testing.T) {
	out, err := ApplyReply(src, &llm.RepairReply{
		Correct: []llm.PatchPair{{Original: "a + 8'd1", Patched: "a + 8'd2"}},
	}, llm.ModePair)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a + 8'd2") {
		t.Errorf("patch not applied:\n%s", out)
	}
}

func TestApplyReplyWhitespaceNormalized(t *testing.T) {
	// The agent reproduces the line with different indentation.
	out, err := ApplyReply(src, &llm.RepairReply{
		Correct: []llm.PatchPair{{
			Original: "assign y = a + 8'd1;",
			Patched:  "assign y = a + 8'd3;",
		}},
	}, llm.ModePair)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "    assign y = a + 8'd3;") {
		t.Errorf("indentation not preserved:\n%s", out)
	}
}

func TestApplyReplyMultiLinePair(t *testing.T) {
	src2 := "module m(input a, output reg y);\nalways @(*) begin\n    y = a;\nend\nendmodule"
	out, err := ApplyReply(src2, &llm.RepairReply{
		Correct: []llm.PatchPair{{
			Original: "always @(*) begin\ny = a;",
			Patched:  "always @(*) begin\ny = ~a;",
		}},
	}, llm.ModePair)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "y = ~a;") {
		t.Errorf("multi-line patch failed:\n%s", out)
	}
}

func TestApplyReplyUnlocatable(t *testing.T) {
	_, err := ApplyReply(src, &llm.RepairReply{
		Correct: []llm.PatchPair{{Original: "nothing like this", Patched: "x"}},
	}, llm.ModePair)
	if err == nil {
		t.Error("unlocatable patch accepted")
	}
}

func TestApplyReplyEmpty(t *testing.T) {
	if _, err := ApplyReply(src, &llm.RepairReply{}, llm.ModePair); err == nil {
		t.Error("empty reply accepted")
	}
}

func TestApplyReplyCompleteMode(t *testing.T) {
	full := "module m(input a, output y);\nassign y = a;\nendmodule\n"
	out, err := ApplyReply(src, &llm.RepairReply{Complete: full}, llm.ModeComplete)
	if err != nil {
		t.Fatal(err)
	}
	if out != full {
		t.Error("complete mode did not replace source")
	}
	if _, err := ApplyReply(src, &llm.RepairReply{Complete: "garbage"}, llm.ModeComplete); err == nil {
		t.Error("complete reply without module accepted")
	}
}

func TestScoreRegisterRollback(t *testing.T) {
	var reg ScoreRegister
	reg.Init("v0", 0.5)
	// Improvement accepted.
	out, ok := reg.Offer("v1", 0.8, []llm.PatchPair{{Original: "a", Patched: "b"}})
	if !ok || out != "v1" {
		t.Fatalf("improvement rejected: %q %v", out, ok)
	}
	// Regression rolled back.
	pairs := []llm.PatchPair{{Original: "x", Patched: "y"}}
	out, ok = reg.Offer("v2", 0.3, pairs)
	if ok || out != "v1" {
		t.Fatalf("regression not rolled back: %q %v", out, ok)
	}
	if len(reg.Damage) != 1 || reg.Damage[0] != pairs[0] {
		t.Errorf("damage repairs not recorded: %+v", reg.Damage)
	}
	if reg.Best().Score != 0.8 {
		t.Errorf("best score = %f", reg.Best().Score)
	}
	// Equal score accepted (no regression).
	out, ok = reg.Offer("v3", 0.8, nil)
	if !ok || out != "v3" {
		t.Error("equal score should be accepted")
	}
	if len(reg.History) != 4 {
		t.Errorf("history length = %d, want 4", len(reg.History))
	}
}

func TestScoreRegisterDisabled(t *testing.T) {
	reg := ScoreRegister{Disabled: true}
	reg.Init("v0", 0.9)
	out, ok := reg.Offer("worse", 0.1, nil)
	if !ok || out != "worse" {
		t.Error("disabled rollback must accept regressions")
	}
	if len(reg.Damage) != 0 {
		t.Error("disabled rollback must not record damage")
	}
}
