// Package rtlgen is a seeded, deterministic generator of random
// synthesizable Verilog designs, in the Csmith tradition: it grows scenario
// coverage of the simulator without growing hand-written oracles, using the
// event-driven engine as a free golden model over an unbounded design
// space. Designs are built as verilog ASTs (never as text), so every
// generated source parses and elaborates by construction, and the generator
// is deliberately biased to land designs on both scheduling paths of the
// compiled backend: the levelized straight-line sweep, and the
// event-scheduler fallback (gated clocks, explicit sensitivity lists, NBAs
// in combinational code, latch-style self reads — exactly the constructs
// the clean-design analysis in internal/sim/compile.go must detect).
//
// The package also hosts the differential oracles (diff.go) shared by the
// TestSweep seed sweep, the native fuzz targets (fuzz_test.go) and the
// cmd/rtlgen CLI.
package rtlgen

import (
	"fmt"
	"math/rand"

	"uvllm/internal/verilog"
)

// Flavor names the scheduling path a generated design is constructed to
// exercise.
type Flavor string

// Flavors. Levelized designs are clean by construction; the others each
// inject one construct that must route the compiled backend onto the
// event-scheduler fallback.
const (
	FlavorLevelized    Flavor = "levelized"
	FlavorGatedClock   Flavor = "gated-clock"
	FlavorExplicitSens Flavor = "explicit-sens-list"
	FlavorCombNBA      Flavor = "comb-nba"
	FlavorSelfRead     Flavor = "comb-self-read"
)

// fallbackFlavors lists the event-fallback flavors in selection order.
var fallbackFlavors = []Flavor{FlavorGatedClock, FlavorExplicitSens, FlavorCombNBA, FlavorSelfRead}

// WantsFallback reports whether the flavor is constructed to trip the
// clean-design analysis.
func (fl Flavor) WantsFallback() bool { return fl != FlavorLevelized }

// Design is one generated DUT.
type Design struct {
	Seed   int64
	Name   string // == Top
	Top    string
	Clock  string // always "clk"
	Source string // canonical (printer-formatted) Verilog
	Flavor Flavor
}

// Config bounds the size and shape of generated designs.
type Config struct {
	MaxInputs    int     // extra data inputs beyond clk/rst_n (>=1)
	MaxWires     int     // combinational assign network size
	MaxRegs      int     // sequential state registers
	MaxCombRegs  int     // @(*) always-block targets
	MaxOutputs   int     // top-level outputs
	MaxExprDepth int     // expression tree depth
	MemProb      float64 // probability of a memory (write port + comb read)
	ResetProb    float64 // probability of an active-low rst_n
	FallbackBias float64 // probability of injecting an event-fallback construct
}

// DefaultConfig is sized so a design elaborates and simulates in well under
// a millisecond while still mixing every supported construct class.
func DefaultConfig() Config {
	return Config{
		MaxInputs:    4,
		MaxWires:     7,
		MaxRegs:      4,
		MaxCombRegs:  2,
		MaxOutputs:   3,
		MaxExprDepth: 3,
		MemProb:      0.45,
		ResetProb:    0.6,
		FallbackBias: 0.35,
	}
}

// Generate builds the design for one seed under DefaultConfig.
func Generate(seed int64) *Design { return GenerateCfg(DefaultConfig(), seed) }

// GenerateCfg builds the design for one seed. The same (cfg, seed) pair
// always yields byte-identical source.
func GenerateCfg(cfg Config, seed int64) *Design {
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	name := fmt.Sprintf("gen_%x", uint64(seed))
	mod := g.module(name)
	return &Design{
		Seed:   seed,
		Name:   name,
		Top:    name,
		Clock:  "clk",
		Source: verilog.PrintModule(mod),
		Flavor: g.flavor,
	}
}

// sig is one readable signal in the generator's pool.
type sig struct {
	name  string
	width int
}

type gen struct {
	cfg    Config
	rng    *rand.Rand
	flavor Flavor

	pool  []sig // signals usable as expression leaves (never clk)
	names int   // fresh-name counter
}

func (g *gen) fresh(prefix string) string {
	g.names++
	return fmt.Sprintf("%s%d", prefix, g.names)
}

func (g *gen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return g.rng.Intn(n)
}

// width draws a signal width biased toward narrow vectors, with occasional
// wide (up to 64-bit) ones to stress the masking boundaries.
func (g *gen) width() int {
	switch g.intn(10) {
	case 0, 1:
		return 1
	case 2, 3, 4:
		return 2 + g.intn(7) // 2..8
	case 5, 6, 7:
		return 8 + g.intn(17) // 8..24
	case 8:
		return 32
	default:
		return 33 + g.intn(32) // 33..64
	}
}

func rng(w int) *verilog.Range {
	return &verilog.Range{MSB: num64(uint64(w-1), 0), LSB: num64(0, 0)}
}

// num64 builds an unsized decimal literal (width 0) or a sized hex literal.
func num64(v uint64, width int) *verilog.Number {
	if width <= 0 {
		return &verilog.Number{Text: fmt.Sprintf("%d", v), Value: v}
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	return &verilog.Number{Text: fmt.Sprintf("%d'h%x", width, v), Width: width, Value: v}
}

func ident(name string) *verilog.Ident { return &verilog.Ident{Name: name} }

// module generates the full module body.
func (g *gen) module(name string) *verilog.Module {
	m := &verilog.Module{Name: name}

	// Decide the scheduling flavor up front so the seed fully determines it.
	g.flavor = FlavorLevelized
	if g.rng.Float64() < g.cfg.FallbackBias {
		g.flavor = fallbackFlavors[g.intn(len(fallbackFlavors))]
	}
	hasReset := g.rng.Float64() < g.cfg.ResetProb

	// Ports: clk, optional rst_n, then data inputs.
	m.Ports = append(m.Ports, &verilog.Port{Dir: verilog.DirInput, Name: "clk"})
	if hasReset {
		m.Ports = append(m.Ports, &verilog.Port{Dir: verilog.DirInput, Name: "rst_n"})
	}
	nIn := 2 + g.intn(g.cfg.MaxInputs)
	for i := 0; i < nIn; i++ {
		w := g.width()
		p := &verilog.Port{Dir: verilog.DirInput, Name: fmt.Sprintf("in%d", i)}
		if w > 1 {
			p.Range = rng(w)
		}
		m.Ports = append(m.Ports, p)
		g.pool = append(g.pool, sig{p.Name, w})
	}

	// Combinational wire network: each wire reads only earlier signals, so
	// the network is acyclic and single-driver by construction.
	nW := 2 + g.intn(g.cfg.MaxWires)
	for i := 0; i < nW; i++ {
		w := g.width()
		nm := g.fresh("w")
		m.Items = append(m.Items,
			&verilog.NetDecl{Kind: verilog.KindWire, Range: vecRange(w), Names: []verilog.DeclName{{Name: nm}}},
			&verilog.ContAssign{LHS: ident(nm), RHS: g.expr(g.cfg.MaxExprDepth, w)},
		)
		g.pool = append(g.pool, sig{nm, w})
	}

	// Optional memory: sequential write port, combinational read port.
	if g.rng.Float64() < g.cfg.MemProb {
		g.memory(m, hasReset)
	}

	// Sequential state: registers updated with NBAs under posedge clk.
	g.sequential(m, hasReset)

	// Combinational always blocks: full default assignment first, then
	// if/case refinement — definitely assigned, so they levelize.
	nC := g.intn(g.cfg.MaxCombRegs + 1)
	for i := 0; i < nC; i++ {
		g.combAlways(m)
	}

	// The flavor construct, inserted before outputs so they can observe it.
	switch g.flavor {
	case FlavorGatedClock:
		g.gatedClock(m)
	case FlavorExplicitSens:
		g.explicitSens(m)
	case FlavorCombNBA:
		g.combNBA(m)
	case FlavorSelfRead:
		g.selfRead(m)
	}

	// Outputs: wires assigned from the final signal pool.
	nOut := 1 + g.intn(g.cfg.MaxOutputs)
	for i := 0; i < nOut; i++ {
		w := g.width()
		p := &verilog.Port{Dir: verilog.DirOutput, Name: fmt.Sprintf("out%d", i)}
		if w > 1 {
			p.Range = rng(w)
		}
		m.Ports = append(m.Ports, p)
		m.Items = append(m.Items, &verilog.ContAssign{LHS: ident(p.Name), RHS: g.expr(g.cfg.MaxExprDepth, w)})
	}

	// Checksum output: XOR-reduce every pool signal so the whole design is
	// observable at the ports. Without it most internal signals are dead
	// code and injected faults (the third oracle) rarely reach an output.
	var chk verilog.Expr
	for _, s := range g.pool {
		red := verilog.Expr(&verilog.Unary{Op: "^", X: ident(s.name)})
		if chk == nil {
			chk = red
		} else {
			chk = &verilog.Binary{Op: "^", X: chk, Y: red}
		}
	}
	m.Ports = append(m.Ports, &verilog.Port{Dir: verilog.DirOutput, Name: "out_chk"})
	m.Items = append(m.Items, &verilog.ContAssign{LHS: ident("out_chk"), RHS: chk})
	return m
}

func vecRange(w int) *verilog.Range {
	if w <= 1 {
		return nil
	}
	return rng(w)
}

// memory emits `reg [w-1:0] mem [0:d-1]`, a guarded sequential write port
// and a combinational read wire.
func (g *gen) memory(m *verilog.Module, hasReset bool) {
	w := 4 + g.intn(13)     // 4..16
	depth := 4 << g.intn(4) // 4, 8, 16, 32
	abits := bitsFor(depth) // address width
	nm := g.fresh("mem")
	m.Items = append(m.Items, &verilog.NetDecl{
		Kind: verilog.KindReg, Range: rng(w),
		Names: []verilog.DeclName{{Name: nm, ArrayRange: &verilog.Range{MSB: num64(0, 0), LSB: num64(uint64(depth-1), 0)}}},
	})
	waddr := g.expr(2, abits)
	wdata := g.expr(2, w)
	wen := g.expr(2, 1)
	body := &verilog.Block{Stmts: []verilog.Stmt{
		&verilog.If{Cond: wen, Then: &verilog.Assign{
			LHS: &verilog.Index{X: ident(nm), Index: waddr}, RHS: wdata,
		}},
	}}
	m.Items = append(m.Items, &verilog.AlwaysBlock{
		Sens: &verilog.SensList{Items: []verilog.SensItem{{Edge: verilog.EdgePos, Signal: "clk"}}},
		Body: body,
	})
	_ = hasReset // memory contents are never reset (matches dataset idiom)

	rd := g.fresh("rd")
	m.Items = append(m.Items,
		&verilog.NetDecl{Kind: verilog.KindWire, Range: rng(w), Names: []verilog.DeclName{{Name: rd}}},
		&verilog.ContAssign{LHS: ident(rd), RHS: &verilog.Index{X: ident(nm), Index: g.expr(2, abits)}},
	)
	g.pool = append(g.pool, sig{rd, w})
}

func bitsFor(depth int) int {
	b := 1
	for (1 << uint(b)) < depth {
		b++
	}
	return b
}

// sequential emits one or two posedge-clk always blocks updating fresh
// registers with NBAs. Registers may read themselves (accumulator
// feedback), which is legal state, not a combinational hazard.
func (g *gen) sequential(m *verilog.Module, hasReset bool) {
	nR := 1 + g.intn(g.cfg.MaxRegs)
	type regInfo struct {
		name  string
		width int
	}
	var regs []regInfo
	for i := 0; i < nR; i++ {
		w := g.width()
		nm := g.fresh("r")
		m.Items = append(m.Items, &verilog.NetDecl{Kind: verilog.KindReg, Range: vecRange(w), Names: []verilog.DeclName{{Name: nm}}})
		regs = append(regs, regInfo{nm, w})
	}
	// State registers join the pool before their updates are generated, so
	// feedback (r <= r + x) and cross-register reads are possible.
	for _, r := range regs {
		g.pool = append(g.pool, sig{r.name, r.width})
	}

	// Split the registers over one or two blocks.
	nBlocks := 1
	if len(regs) > 2 && g.intn(2) == 1 {
		nBlocks = 2
	}
	per := (len(regs) + nBlocks - 1) / nBlocks
	for b := 0; b < nBlocks; b++ {
		lo, hi := b*per, (b+1)*per
		if hi > len(regs) {
			hi = len(regs)
		}
		if lo >= hi {
			continue
		}
		var updates []verilog.Stmt
		for _, r := range regs[lo:hi] {
			up := verilog.Stmt(&verilog.Assign{LHS: ident(r.name), RHS: g.expr(g.cfg.MaxExprDepth, r.width)})
			// Sometimes guard the update (enable-style) or branch it.
			switch g.intn(4) {
			case 0:
				up = &verilog.If{Cond: g.expr(2, 1), Then: up}
			case 1:
				up = &verilog.If{
					Cond: g.expr(2, 1),
					Then: up,
					Else: &verilog.Assign{LHS: ident(r.name), RHS: g.expr(2, r.width)},
				}
			}
			updates = append(updates, up)
		}
		sens := &verilog.SensList{Items: []verilog.SensItem{{Edge: verilog.EdgePos, Signal: "clk"}}}
		body := verilog.Stmt(&verilog.Block{Stmts: updates})
		if hasReset && g.intn(3) != 0 {
			sens.Items = append(sens.Items, verilog.SensItem{Edge: verilog.EdgeNeg, Signal: "rst_n"})
			var resets []verilog.Stmt
			for _, r := range regs[lo:hi] {
				resets = append(resets, &verilog.Assign{LHS: ident(r.name), RHS: num64(uint64(g.intn(4)), r.width)})
			}
			body = &verilog.If{
				Cond: &verilog.Unary{Op: "!", X: ident("rst_n")},
				Then: &verilog.Block{Stmts: resets},
				Else: body,
			}
		}
		m.Items = append(m.Items, &verilog.AlwaysBlock{Sens: sens, Body: nbaize(body)})
	}
}

// nbaize converts every assignment in a statement tree to non-blocking,
// the legal form for the sequential blocks the generator emits.
func nbaize(st verilog.Stmt) verilog.Stmt {
	verilog.WalkStmt(st, func(s verilog.Stmt) bool {
		if a, ok := s.(*verilog.Assign); ok {
			a.Blocking = false
		}
		return true
	})
	return st
}

// combAlways emits a definitely-assigned @(*) block: default assignment
// first, then an if or case refinement — the clean shape that levelizes.
func (g *gen) combAlways(m *verilog.Module) {
	w := g.width()
	nm := g.fresh("c")
	m.Items = append(m.Items, &verilog.NetDecl{Kind: verilog.KindReg, Range: vecRange(w), Names: []verilog.DeclName{{Name: nm}}})

	stmts := []verilog.Stmt{
		&verilog.Assign{LHS: ident(nm), RHS: g.expr(2, w), Blocking: true},
	}
	if g.intn(2) == 0 {
		stmts = append(stmts, &verilog.If{
			Cond: g.expr(2, 1),
			Then: &verilog.Assign{LHS: ident(nm), RHS: g.expr(g.cfg.MaxExprDepth, w), Blocking: true},
		})
	} else {
		selW := 2
		var items []verilog.CaseItem
		nArms := 2 + g.intn(2)
		for a := 0; a < nArms; a++ {
			items = append(items, verilog.CaseItem{
				Exprs: []verilog.Expr{num64(uint64(a), selW)},
				Body:  &verilog.Assign{LHS: ident(nm), RHS: g.expr(2, w), Blocking: true},
			})
		}
		items = append(items, verilog.CaseItem{ // default
			Body: &verilog.Assign{LHS: ident(nm), RHS: g.expr(2, w), Blocking: true},
		})
		stmts = append(stmts, &verilog.Case{Kind: "case", Expr: g.expr(2, selW), Items: items})
	}
	m.Items = append(m.Items, &verilog.AlwaysBlock{
		Sens: &verilog.SensList{Star: true},
		Body: &verilog.Block{Stmts: stmts},
	})
	g.pool = append(g.pool, sig{nm, w})
}

// ---------------------------------------------------------------------------
// Event-fallback constructs. Each must trip exactly one clause of the
// clean-design analysis so the compiled backend keeps the event scheduler.

// gatedClock derives a clock combinationally and clocks a register off it:
// "edge trigger on combinationally driven signal (glitch semantics)".
func (g *gen) gatedClock(m *verilog.Module) {
	en := g.expr(2, 1)
	q := g.fresh("gq")
	w := 1 + g.intn(8)
	m.Items = append(m.Items,
		&verilog.NetDecl{Kind: verilog.KindWire, Names: []verilog.DeclName{{Name: "gclk"}}},
		&verilog.ContAssign{LHS: ident("gclk"), RHS: &verilog.Binary{Op: "&", X: ident("clk"), Y: en}},
		&verilog.NetDecl{Kind: verilog.KindReg, Range: vecRange(w), Names: []verilog.DeclName{{Name: q}}},
		&verilog.AlwaysBlock{
			Sens: &verilog.SensList{Items: []verilog.SensItem{{Edge: verilog.EdgePos, Signal: "gclk"}}},
			Body: &verilog.Assign{LHS: ident(q), RHS: g.expr(2, w)},
		},
	)
	g.pool = append(g.pool, sig{q, w})
}

// explicitSens emits an always block with a deliberately incomplete
// level-sensitive list: "explicit level-sensitive list".
func (g *gen) explicitSens(m *verilog.Module) {
	if len(g.pool) < 2 {
		return
	}
	a := g.pool[g.intn(len(g.pool))]
	b := g.pool[g.intn(len(g.pool))]
	y := g.fresh("es")
	w := g.width()
	m.Items = append(m.Items,
		&verilog.NetDecl{Kind: verilog.KindReg, Range: vecRange(w), Names: []verilog.DeclName{{Name: y}}},
		&verilog.AlwaysBlock{
			Sens: &verilog.SensList{Items: []verilog.SensItem{{Signal: a.name}, {Signal: b.name}}},
			// The RHS may read signals missing from the list — that staleness
			// is the point; the event queue must emulate it on both backends.
			Body: &verilog.Assign{LHS: ident(y), RHS: g.expr(g.cfg.MaxExprDepth, w), Blocking: true},
		},
	)
	g.pool = append(g.pool, sig{y, w})
}

// combNBA emits a non-blocking assignment inside an @(*) block:
// "non-blocking assignment in combinational process".
func (g *gen) combNBA(m *verilog.Module) {
	y := g.fresh("nb")
	w := g.width()
	m.Items = append(m.Items,
		&verilog.NetDecl{Kind: verilog.KindReg, Range: vecRange(w), Names: []verilog.DeclName{{Name: y}}},
		&verilog.AlwaysBlock{
			Sens: &verilog.SensList{Star: true},
			Body: &verilog.Assign{LHS: ident(y), RHS: g.expr(g.cfg.MaxExprDepth, w), Blocking: false},
		},
	)
	g.pool = append(g.pool, sig{y, w})
}

// selfRead emits an @(*) block whose target reads its own pre-execution
// state ("y = y ^ expr" with no prior full write): "combinational process
// reads its own pre-execution state". Under event scheduling the block runs
// once per external trigger (never re-triggering on its own write), so the
// accumulation count is scheduler-defined — exactly what the levelized
// sweep cannot reproduce and must refuse.
func (g *gen) selfRead(m *verilog.Module) {
	y := g.fresh("sr")
	w := g.width()
	m.Items = append(m.Items,
		&verilog.NetDecl{Kind: verilog.KindReg, Range: vecRange(w), Names: []verilog.DeclName{{Name: y}}},
		&verilog.AlwaysBlock{
			Sens: &verilog.SensList{Star: true},
			Body: &verilog.Assign{
				LHS:      ident(y),
				RHS:      &verilog.Binary{Op: "^", X: ident(y), Y: g.expr(2, w)},
				Blocking: true,
			},
		},
	)
	g.pool = append(g.pool, sig{y, w})
}
