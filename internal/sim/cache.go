package sim

import (
	"crypto/sha256"
	"errors"

	"uvllm/internal/memo"
)

// Cache is a content-addressed compile cache: Programs keyed by
// (source hash, top module, backend). It exists because the verification
// pipeline is simulation-bound and compiles the same sources over and
// over — the golden module of every benchmark instance, every candidate
// across the repair loop's iterations, every baseline's re-checks. A hit
// returns the already-compiled immutable Program; callers create cheap
// Instances from it.
//
// The cache is safe for concurrent use and compilation is single-flight:
// two goroutines racing on the same key compile once and share the
// result. Compile errors (syntax, elaboration) are cached too — they are
// deterministic properties of the source, and negative hits are exactly
// what the repair loop's re-checks of a broken candidate need.
type Cache struct {
	m    *memo.M[cacheKey, *Program]
	disk *DiskCache // optional persistent tier; nil = memory only
}

type cacheKey struct {
	sum     [sha256.Size]byte
	top     string
	backend Backend
}

// DefaultCacheLimit bounds a cache built with NewCache. Fuzzers and long
// evaluation sweeps feed endless distinct sources; beyond the limit the
// oldest half of the entries is dropped.
const DefaultCacheLimit = 4096

// NewCache returns an empty cache with the default entry limit.
func NewCache() *Cache { return NewCacheLimit(DefaultCacheLimit) }

// NewCacheLimit returns an empty cache holding at most limit entries
// (limit <= 0 means the default).
func NewCacheLimit(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultCacheLimit
	}
	return &Cache{m: memo.New[cacheKey, *Program](limit)}
}

var sharedCache = NewCache()

// SharedCache returns the process-wide cache. The evaluation harness and
// the CLIs route every compile through it so the 331-instance benchmark
// compiles each of its 27 golden modules exactly once per backend.
func SharedCache() *Cache { return sharedCache }

func (c *Cache) key(src, top string, backend Backend) cacheKey {
	return cacheKey{sum: sha256.Sum256([]byte(src)), top: top, backend: backend}
}

// AttachDisk adds a persistent tier under the in-memory cache: every
// compile outcome is written through to disk, and a miss in memory
// consults disk before compiling (negative entries short-circuit with the
// persisted error; positive entries rehydrate by one compile of the
// persisted source). Attach before the first Compile — the field is not
// synchronized against in-flight calls.
func (c *Cache) AttachDisk(d *DiskCache) { c.disk = d }

// Disk returns the attached persistent tier, or nil.
func (c *Cache) Disk() *DiskCache { return c.disk }

// WarmFromDisk compiles every intact entry of the attached disk tier into
// the in-memory cache, so a restarted server serves its first request for
// a previously-seen design as a pure memory hit instead of a request-path
// compile. It returns the number of entries warmed (corrupt files are
// skipped and counted in DiskStats.Corrupt). No-op without a disk tier.
func (c *Cache) WarmFromDisk() int {
	if c.disk == nil {
		return 0
	}
	warmed := 0
	for _, e := range c.disk.entries() {
		b, err := ParseBackend(e.Backend)
		if err != nil {
			continue
		}
		c.m.Do(c.key(e.Source, e.Top, b), func() (*Program, error) {
			if e.Error != "" {
				return nil, errors.New(e.Error)
			}
			return CompileSource(e.Source, e.Top, b)
		})
		c.disk.count(func(st *DiskStats) { st.Hits++ })
		warmed++
	}
	return warmed
}

// Compile returns the cached Program for (src, top, backend), compiling
// on first use. The returned Program is shared: treat it as immutable and
// create Instances for simulation.
func (c *Cache) Compile(src, top string, backend Backend) (*Program, error) {
	return c.m.Do(c.key(src, top, backend), func() (*Program, error) {
		if c.disk != nil {
			if e, ok := c.disk.load(src, top, backend); ok {
				if e.Error != "" {
					return nil, errors.New(e.Error)
				}
				return CompileSource(src, top, backend)
			}
		}
		p, err := CompileSource(src, top, backend)
		if c.disk != nil {
			c.disk.store(src, top, backend, err)
		}
		return p, err
	})
}

// Instance is Compile followed by Program.NewInstance — the drop-in
// replacement for CompileAndNewBackend on a cache.
func (c *Cache) Instance(src, top string, backend Backend) (*Instance, error) {
	p, err := c.Compile(src, top, backend)
	if err != nil {
		return nil, err
	}
	return p.NewInstance()
}

// CacheStats is a point-in-time counter snapshot: the in-memory tier's
// hit/miss/eviction/occupancy counters plus, when a disk tier is
// attached, its persistence counters.
type CacheStats struct {
	memo.Stats
	// Disk holds the persistent-tier counters; all zero when no disk
	// tier is attached.
	Disk DiskStats
}

// Stats returns a copy of the cache counters, taken under the cache's
// internal locks. This snapshot is the only supported way to read the
// counters concurrently with cache traffic: the returned value is
// consistent at the instant it was taken (hits+misses always equals the
// number of Compile calls that had reached the counter at that point) and
// immediately stale afterwards — callers such as the server's metrics
// endpoint must re-call Stats per scrape rather than retain references.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{Stats: c.m.Stats()}
	if c.disk != nil {
		s.Disk = c.disk.Stats()
	}
	return s
}

// EntryStats reports whether (src, top, backend) is resident and how many
// hits it has served — the observability hook the evaluation tests use to
// assert each golden module was compiled exactly once.
func (c *Cache) EntryStats(src, top string, backend Backend) (hits int64, resident bool) {
	return c.m.EntryHits(c.key(src, top, backend))
}
