package uvllm_test

// These examples are the former examples/quickstart and
// examples/benchmark_sweep programs, converted to testable Example
// functions: `go test` compiles them and diffs their output on every
// run, so they cannot silently rot, and pkg.go.dev renders them as the
// package's usage documentation.

import (
	"fmt"
	"strings"

	"uvllm/internal/core"
	"uvllm/internal/dataset"
	"uvllm/internal/exp"
	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
)

// Example_quickstart injects a realistic human-style fault into a
// verified RTL module, then lets the UVLLM pipeline find and repair it.
func Example_quickstart() {
	// 1. Pick a verified benchmark module (an 8-bit accumulator).
	m := dataset.ByName("accu")

	// 2. Inject a logic error (paper Table I: operator/value/variable
	//    misuse) with the paradigm error generator.
	f := faultgen.Generate(m, faultgen.FuncLogic)[0]
	fmt.Printf("injected: %s\n", f.ID)

	// 3. The repair agent. Offline, the GPT-4-turbo stand-in is the
	//    calibrated oracle; with API access you would plug in any client
	//    implementing llm.Client here (the paper's modularity property).
	client := llm.NewOracle(llm.Knowledge{
		FaultID: f.ID, Golden: f.Golden, Class: string(f.Class),
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, llm.DefaultProfile(), 3)

	// 4. Run the four-stage pipeline: pre-processing, UVM testing,
	//    localization, repair — iterating with rollback.
	res := core.Verify(core.Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: client,
		Opts: core.Options{Seed: 3},
	})
	fmt.Printf("success=%v fixed-in=%s iterations=%d pass_rate=%.1f%%\n",
		res.Success, res.FixedStage, res.Iterations, res.PassRate*100)

	// 5. Show what changed.
	if res.Success {
		orig, patched, _ := llm.LineDiff(f.Source, res.Final)
		fmt.Printf("- %s\n+ %s\n", strings.TrimSpace(orig), strings.TrimSpace(patched))
	}

	// Output:
	// injected: accu/FuncLogic-0
	// success=true fixed-in=repair-ms iterations=2 pass_rate=100.0%
	// - sum <= sum - {8'd0, d};
	// + sum <= sum + {8'd0, d};
}

// Example_benchmarkSweep evaluates UVLLM and the MEIC baseline over a
// slice of the 331-instance error benchmark — the workload the paper's
// evaluation section is built on — and prints the aggregate fix counts.
func Example_benchmarkSweep() {
	// One instance of every fault class on the Control group modules.
	var subset []*faultgen.Fault
	seen := map[string]bool{}
	for _, f := range faultgen.Benchmark() {
		if f.Meta().Category != "Control" {
			continue
		}
		key := f.Module + "/" + string(f.Class)
		if seen[key] {
			continue
		}
		seen[key] = true
		subset = append(subset, f)
	}

	recs := exp.Run(exp.Config{Seed: 1, Instances: subset})

	uvllmFix, meicFix := 0, 0
	for _, r := range recs {
		if r.UVLLMFix {
			uvllmFix++
		}
		if r.MEICFix {
			meicFix++
		}
	}
	fmt.Printf("instances=%d\n", len(recs))
	fmt.Printf("UVLLM fixed %d, MEIC fixed %d\n", uvllmFix, meicFix)

	// Output:
	// instances=46
	// UVLLM fixed 35, MEIC fixed 22
}
