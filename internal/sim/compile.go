package sim

// Compiled simulation backend. Elaboration produces the same Design the
// event-driven engine runs; compilation lowers every process body into a
// tree of closures over the dense signal arena (identifier resolution, bit
// widths and masks are burned in at compile time instead of being looked up
// per evaluation) and topologically levelizes the combinational processes
// so that one straight-line sweep per delta round replaces the event
// queue's enqueue/dequeue walk. Non-blocking assignments stay batched in
// the shared NBA queue and commit once per round, exactly as in the
// reference engine.
//
// Semantics are guarded in two layers:
//
//  1. Per-construct: a statement or expression the compiler cannot prove it
//     lowers exactly (dynamic part-select widths, unsupported nodes) falls
//     back to the interpreter for that statement only.
//  2. Per-design: the levelized sweep is only valid for designs where it
//     provably reaches the same fixpoint as event-driven execution — @(*)
//     or assign-style combinational processes, acyclic, single-driver, no
//     NBAs in combinational code, no read-modify-write self state. Designs
//     outside that class (incomplete sensitivity lists, combinational
//     loops, COMBDLY-style defects — all injectable by faultgen) keep the
//     event scheduler and run compiled bodies under it, which preserves
//     event semantics bit for bit.
//
// The differential suite in diff_test.go asserts byte-identical port
// traces, VCD output and coverage counts across backends for every dataset
// module and a seeded sample of faultgen mutants.

import (
	"fmt"

	"uvllm/internal/verilog"
)

// Backend selects the simulation engine.
type Backend int

const (
	// BackendCompiled is the default fast path: process bodies lowered to
	// closures over the signal arena, combinational logic executed as a
	// levelized straight-line sweep (falling back to event scheduling with
	// compiled bodies when the design is not cleanly levelizable).
	BackendCompiled Backend = iota
	// BackendEventDriven is the reference event-queue interpreter.
	BackendEventDriven
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendCompiled:
		return "compiled"
	case BackendEventDriven:
		return "event"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend parses a backend name as used by command-line flags.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "compiled", "":
		return BackendCompiled, nil
	case "event", "event-driven":
		return BackendEventDriven, nil
	}
	return 0, fmt.Errorf("sim: unknown backend %q (want compiled or event)", name)
}

// evalFn is a compiled expression: all error paths of the interpreter's
// eval are compile-time detectable, so compiled expressions cannot fail.
type evalFn func(*Simulator) uint64

// writeFn stores a value into a compiled l-value.
type writeFn func(*Simulator, uint64)

// stmtFn is a compiled statement; only for-loop iteration limits (and
// interpreter fallback thunks) can error at runtime.
type stmtFn func(*Simulator) error

// program is the compiled form of a Design.
type program struct {
	run      []stmtFn // per process index; nil = run the interpreter
	order    []int    // combinational process indices in levelized order
	orderFns []stmtFn // executable aligned with order (compiled or interp)
	reason   string   // why the levelized sweep is disabled ("" = clean)
}

// clean reports whether the levelized straight-line sweep is active.
func (p *program) clean() bool { return p.reason == "" }

var errDynamic = fmt.Errorf("sim: construct not statically compilable")

type compiler struct {
	s *Simulator
}

// compileProgram lowers every process of s's design and levelizes the
// combinational ones. It never fails: anything uncompilable stays on the
// interpreter, any unlevelizable structure disables the sweep.
func compileProgram(s *Simulator) *program {
	c := &compiler{s: s}
	p := &program{run: make([]stmtFn, len(s.d.procs))}
	for _, pr := range s.d.procs {
		if pr.kind == procComb || pr.kind == procSeq {
			p.run[pr.idx] = c.compileProc(pr)
		}
	}
	p.order, p.reason = c.levelize()
	if p.clean() {
		p.orderFns = make([]stmtFn, len(p.order))
		for i, pi := range p.order {
			if fn := p.run[pi]; fn != nil {
				p.orderFns[i] = fn
			} else {
				pr := s.d.procs[pi]
				p.orderFns[i] = func(s *Simulator) error { return s.interpProc(pr) }
			}
		}
	}
	return p
}

// ---------------------------------------------------------------------------
// Process and statement compilation

func (c *compiler) compileProc(p *process) stmtFn {
	if p.connRHS != nil {
		fn, err := c.compileConn(p)
		if err != nil {
			return nil // interpreter
		}
		return fn
	}
	if p.body == nil {
		return nil
	}
	return c.compileStmt(p, p.body)
}

// compileConn lowers a continuous assignment / port connection, mirroring
// runProc's width rules: LHS declared width stretched by the RHS
// self-determined width.
func (c *compiler) compileConn(p *process) (stmtFn, error) {
	w, ok := c.staticWidthOfLHS(p.connLHS, p.connLHSsc)
	if !ok {
		return nil, errDynamic
	}
	rw, ok := c.staticWidthOf(p.connRHS, p.connRHSsc)
	if !ok {
		return nil, errDynamic
	}
	if rw > w {
		w = rw
	}
	rhs, err := c.compileExpr(p.connRHS, p.connRHSsc, w)
	if err != nil {
		return nil, err
	}
	wr, err := c.compileWrite(p.connLHS, p.connLHSsc, true)
	if err != nil {
		return nil, err
	}
	return func(s *Simulator) error {
		wr(s, rhs(s))
		return nil
	}, nil
}

// compileStmt never fails: statements the compiler cannot lower exactly
// become interpreter thunks, preserving reference semantics (including the
// interpreter's own runtime errors) for that statement only.
func (c *compiler) compileStmt(p *process, st verilog.Stmt) stmtFn {
	fn, err := c.tryStmt(p, st)
	if err != nil {
		return func(s *Simulator) error { return s.execStmt(p, st) }
	}
	return fn
}

func (c *compiler) tryStmt(p *process, st verilog.Stmt) (stmtFn, error) {
	switch v := st.(type) {
	case nil, *verilog.NullStmt:
		return func(*Simulator) error { return nil }, nil

	case *verilog.Block:
		fns := make([]stmtFn, len(v.Stmts))
		for i, sub := range v.Stmts {
			fns[i] = c.compileStmt(p, sub)
		}
		return func(s *Simulator) error {
			for _, fn := range fns {
				if err := fn(s); err != nil {
					return err
				}
			}
			return nil
		}, nil

	case *verilog.Assign:
		return c.compileAssign(p.sc, v)

	case *verilog.If:
		cond, err := c.compileSelf(v.Cond, p.sc)
		if err != nil {
			return nil, err
		}
		then := c.compileStmt(p, v.Then)
		var els stmtFn
		if v.Else != nil {
			els = c.compileStmt(p, v.Else)
		}
		return func(s *Simulator) error {
			if cond(s) != 0 {
				return then(s)
			}
			if els != nil {
				return els(s)
			}
			return nil
		}, nil

	case *verilog.Case:
		sel, err := c.compileSelf(v.Expr, p.sc)
		if err != nil {
			return nil, err
		}
		type caseArm struct {
			exprs []evalFn
			body  stmtFn
			def   bool
		}
		arms := make([]caseArm, len(v.Items))
		for i := range v.Items {
			it := &v.Items[i]
			arm := caseArm{body: c.compileStmt(p, it.Body), def: it.Exprs == nil}
			for _, ex := range it.Exprs {
				efn, err := c.compileSelf(ex, p.sc)
				if err != nil {
					return nil, err
				}
				arm.exprs = append(arm.exprs, efn)
			}
			arms[i] = arm
		}
		return func(s *Simulator) error {
			sv := sel(s)
			var def stmtFn
			for i := range arms {
				if arms[i].def {
					def = arms[i].body
					continue
				}
				for _, efn := range arms[i].exprs {
					if efn(s) == sv {
						return arms[i].body(s)
					}
				}
			}
			if def != nil {
				return def(s)
			}
			return nil
		}, nil

	case *verilog.For:
		var initFn, stepFn stmtFn
		var err error
		if v.Init != nil {
			if initFn, err = c.compileAssign(p.sc, v.Init); err != nil {
				return nil, err
			}
		}
		cond, err := c.compileSelf(v.Cond, p.sc)
		if err != nil {
			return nil, err
		}
		body := c.compileStmt(p, v.Body)
		if v.Step != nil {
			if stepFn, err = c.compileAssign(p.sc, v.Step); err != nil {
				return nil, err
			}
		}
		line := v.Line
		return func(s *Simulator) error {
			if initFn != nil {
				if err := initFn(s); err != nil {
					return err
				}
			}
			for iter := 0; ; iter++ {
				if iter > 1<<16 {
					return fmt.Errorf("sim: for loop at line %d exceeded %d iterations", line, 1<<16)
				}
				if cond(s) == 0 {
					return nil
				}
				if err := body(s); err != nil {
					return err
				}
				if stepFn != nil {
					if err := stepFn(s); err != nil {
						return err
					}
				}
			}
		}, nil
	}
	return nil, errDynamic
}

// compileAssign mirrors execAssign: context width is the LHS declared
// width stretched by the RHS self-determined width.
func (c *compiler) compileAssign(sc *scope, a *verilog.Assign) (stmtFn, error) {
	if a == nil {
		return func(*Simulator) error { return nil }, nil
	}
	w, ok := c.staticWidthOfLHS(a.LHS, sc)
	if !ok {
		return nil, errDynamic
	}
	rw, ok := c.staticWidthOf(a.RHS, sc)
	if !ok {
		return nil, errDynamic
	}
	if rw > w {
		w = rw
	}
	rhs, err := c.compileExpr(a.RHS, sc, w)
	if err != nil {
		return nil, err
	}
	wr, err := c.compileWrite(a.LHS, sc, a.Blocking)
	if err != nil {
		return nil, err
	}
	return func(s *Simulator) error {
		wr(s, rhs(s))
		return nil
	}, nil
}

// compileWrite lowers an l-value store, mirroring writeLHS (including its
// out-of-range and masking behavior). Part-select targets require constant
// bounds; dynamic ones fall back to the interpreter via the caller.
func (c *compiler) compileWrite(lhs verilog.Expr, sc *scope, blocking bool) (writeFn, error) {
	switch l := lhs.(type) {
	case *verilog.Ident:
		idx, ok := sc.names[l.Name]
		if !ok {
			return nil, errDynamic
		}
		wm := widthMask(c.s.d.sigs[idx].width)
		if blocking {
			return func(s *Simulator, v uint64) { s.set(idx, v) }, nil
		}
		return func(s *Simulator, v uint64) {
			s.nba = append(s.nba, nbaWrite{sig: idx, mask: wm, val: v & wm})
		}, nil

	case *verilog.Index:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			return nil, errDynamic
		}
		idx, ok := sc.names[id.Name]
		if !ok {
			return nil, errDynamic
		}
		sel, err := c.compileSelf(l.Index, sc)
		if err != nil {
			return nil, err
		}
		si := c.s.d.sigs[idx]
		if si.isMem {
			wm := widthMask(si.width)
			if blocking {
				return func(s *Simulator, v uint64) {
					sv := sel(s)
					mem := s.mems[idx]
					// Unsigned compare, mirroring writeLHS: bit-63 indices
					// fall out of range instead of wrapping negative.
					if sv < uint64(len(mem)) && mem[sv] != v&wm {
						mem[sv] = v & wm
						s.touchMem(idx)
					}
				}, nil
			}
			return func(s *Simulator, v uint64) {
				s.nba = append(s.nba, nbaWrite{sig: idx, isMem: true, memIdx: int(sel(s)), mask: wm, val: v & wm})
			}, nil
		}
		width := si.width
		if blocking {
			return func(s *Simulator, v uint64) {
				sv := sel(s)
				if int(sv) >= width {
					return
				}
				mask := uint64(1) << uint(sv)
				s.set(idx, (s.vals[idx]&^mask)|((v&1)<<uint(sv)))
			}, nil
		}
		return func(s *Simulator, v uint64) {
			sv := sel(s)
			if int(sv) >= width {
				return
			}
			mask := uint64(1) << uint(sv)
			s.nba = append(s.nba, nbaWrite{sig: idx, mask: mask, val: (v & 1) << uint(sv)})
		}, nil

	case *verilog.PartSelect:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			return nil, errDynamic
		}
		idx, ok := sc.names[id.Name]
		if !ok {
			return nil, errDynamic
		}
		msb, ok1 := c.staticEval(l.MSB, sc)
		lsb, ok2 := c.staticEval(l.LSB, sc)
		if !ok1 || !ok2 {
			return nil, errDynamic
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		w := int(msb-lsb) + 1
		mask := widthMask(w) << uint(lsb)
		wm := widthMask(w)
		shift := uint(lsb)
		if blocking {
			return func(s *Simulator, v uint64) {
				s.set(idx, (s.vals[idx]&^mask)|((v&wm)<<shift))
			}, nil
		}
		return func(s *Simulator, v uint64) {
			s.nba = append(s.nba, nbaWrite{sig: idx, mask: mask, val: (v & wm) << shift})
		}, nil

	case *verilog.Concat:
		total := 0
		widths := make([]int, len(l.Parts))
		parts := make([]writeFn, len(l.Parts))
		for i, part := range l.Parts {
			w, ok := c.staticWidthOfLHS(part, sc)
			if !ok {
				return nil, errDynamic
			}
			widths[i] = w
			total += w
			wfn, err := c.compileWrite(part, sc, blocking)
			if err != nil {
				return nil, err
			}
			parts[i] = wfn
		}
		return func(s *Simulator, v uint64) {
			shift := total
			for i, wfn := range parts {
				shift -= widths[i]
				wfn(s, (v>>uint(shift))&widthMask(widths[i]))
			}
		}, nil
	}
	return nil, errDynamic
}

// ---------------------------------------------------------------------------
// Expression compilation

// compileSelf compiles e at its self-determined width. Part selects and
// replications whose self width is value-dependent are compiled at context
// width 64, which is arithmetically identical because their intrinsic
// masking already bounds the result to the self width.
func (c *compiler) compileSelf(e verilog.Expr, sc *scope) (evalFn, error) {
	if w, ok := c.staticWidthOf(e, sc); ok {
		return c.compileExpr(e, sc, w)
	}
	switch e.(type) {
	case *verilog.PartSelect, *verilog.Repl:
		return c.compileExpr(e, sc, 64)
	}
	return nil, errDynamic
}

// compileExpr compiles e in context width ctxW, mirroring eval case by
// case (context-determined operands at ctxW, self-determined ones at their
// own width, result masked to ctxW).
func (c *compiler) compileExpr(e verilog.Expr, sc *scope, ctxW int) (evalFn, error) {
	m := widthMask(ctxW)
	switch v := e.(type) {
	case *verilog.Number:
		k := v.Value & m
		return func(*Simulator) uint64 { return k }, nil

	case *verilog.Ident:
		if pv, isParam := sc.env[v.Name]; isParam {
			k := uint64(pv) & m
			return func(*Simulator) uint64 { return k }, nil
		}
		idx, ok := sc.names[v.Name]
		if !ok {
			return nil, errDynamic
		}
		return func(s *Simulator) uint64 { return s.vals[idx] & m }, nil

	case *verilog.Unary:
		switch v.Op {
		case "!":
			x, err := c.compileSelf(v.X, sc)
			if err != nil {
				return nil, err
			}
			return func(s *Simulator) uint64 { return b2u(x(s) == 0) }, nil
		case "-":
			x, err := c.compileExpr(v.X, sc, ctxW)
			if err != nil {
				return nil, err
			}
			return func(s *Simulator) uint64 { return (-x(s)) & m }, nil
		case "+":
			return c.compileExpr(v.X, sc, ctxW)
		case "~":
			x, err := c.compileExpr(v.X, sc, ctxW)
			if err != nil {
				return nil, err
			}
			return func(s *Simulator) uint64 { return (^x(s)) & m }, nil
		case "&", "|", "^", "~&", "~|", "~^":
			w, ok := c.staticWidthOf(v.X, sc)
			if !ok {
				return nil, errDynamic
			}
			x, err := c.compileExpr(v.X, sc, w)
			if err != nil {
				return nil, err
			}
			op := v.Op
			return func(s *Simulator) uint64 { return reduce(op, x(s), w) }, nil
		}
		return nil, errDynamic

	case *verilog.Binary:
		return c.compileBinary(v, sc, ctxW)

	case *verilog.Ternary:
		cond, err := c.compileSelf(v.Cond, sc)
		if err != nil {
			return nil, err
		}
		then, err := c.compileExpr(v.Then, sc, ctxW)
		if err != nil {
			return nil, err
		}
		els, err := c.compileExpr(v.Else, sc, ctxW)
		if err != nil {
			return nil, err
		}
		return func(s *Simulator) uint64 {
			if cond(s) != 0 {
				return then(s)
			}
			return els(s)
		}, nil

	case *verilog.Index:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return nil, errDynamic
		}
		idx, ok := sc.names[id.Name]
		if !ok {
			return nil, errDynamic
		}
		sel, err := c.compileSelf(v.Index, sc)
		if err != nil {
			return nil, err
		}
		si := c.s.d.sigs[idx]
		if si.isMem {
			return func(s *Simulator) uint64 {
				sv := sel(s)
				mem := s.mems[idx]
				if sv >= uint64(len(mem)) {
					return 0
				}
				return mem[sv] & m
			}, nil
		}
		width := si.width
		return func(s *Simulator) uint64 {
			sv := sel(s)
			if int(sv) >= width {
				return 0
			}
			return (s.vals[idx] >> uint(sv)) & 1
		}, nil

	case *verilog.PartSelect:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return nil, errDynamic
		}
		idx, ok := sc.names[id.Name]
		if !ok {
			return nil, errDynamic
		}
		if msb, ok1 := c.staticEval(v.MSB, sc); ok1 {
			if lsb, ok2 := c.staticEval(v.LSB, sc); ok2 {
				if msb < lsb {
					msb, lsb = lsb, msb
				}
				w := int(msb-lsb) + 1
				k := widthMask(w) & m
				shift := uint(lsb)
				return func(s *Simulator) uint64 { return (s.vals[idx] >> shift) & k }, nil
			}
		}
		msbFn, err := c.compileSelf(v.MSB, sc)
		if err != nil {
			return nil, err
		}
		lsbFn, err := c.compileSelf(v.LSB, sc)
		if err != nil {
			return nil, err
		}
		return func(s *Simulator) uint64 {
			msb, lsb := msbFn(s), lsbFn(s)
			if msb < lsb {
				msb, lsb = lsb, msb
			}
			w := int(msb-lsb) + 1
			return (s.vals[idx] >> uint(lsb)) & widthMask(w) & m
		}, nil

	case *verilog.Concat:
		type part struct {
			fn evalFn
			w  int
		}
		parts := make([]part, len(v.Parts))
		for i, p := range v.Parts {
			w, ok := c.staticWidthOf(p, sc)
			if !ok {
				return nil, errDynamic
			}
			fn, err := c.compileExpr(p, sc, w)
			if err != nil {
				return nil, err
			}
			parts[i] = part{fn: fn, w: w}
		}
		return func(s *Simulator) uint64 {
			var out uint64
			for _, p := range parts {
				out = (out << uint(p.w)) | (p.fn(s) & widthMask(p.w))
			}
			return out & m
		}, nil

	case *verilog.Repl:
		count, err := c.compileSelf(v.Count, sc)
		if err != nil {
			return nil, err
		}
		w, ok := c.staticWidthOf(v.Value, sc)
		if !ok {
			return nil, errDynamic
		}
		val, err := c.compileExpr(v.Value, sc, w)
		if err != nil {
			return nil, err
		}
		return func(s *Simulator) uint64 {
			n := count(s)
			pv := val(s)
			var out uint64
			for i := uint64(0); i < n && i < 64; i++ {
				out = (out << uint(w)) | (pv & widthMask(w))
			}
			return out & m
		}, nil
	}
	return nil, errDynamic
}

func (c *compiler) compileBinary(v *verilog.Binary, sc *scope, ctxW int) (evalFn, error) {
	m := widthMask(ctxW)
	switch v.Op {
	case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
		x, err := c.compileExpr(v.X, sc, ctxW)
		if err != nil {
			return nil, err
		}
		y, err := c.compileExpr(v.Y, sc, ctxW)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "+":
			return func(s *Simulator) uint64 { return (x(s) + y(s)) & m }, nil
		case "-":
			return func(s *Simulator) uint64 { return (x(s) - y(s)) & m }, nil
		case "*":
			return func(s *Simulator) uint64 { return (x(s) * y(s)) & m }, nil
		case "/":
			return func(s *Simulator) uint64 {
				yv := y(s)
				if yv == 0 {
					return 0
				}
				return (x(s) / yv) & m
			}, nil
		case "%":
			return func(s *Simulator) uint64 {
				yv := y(s)
				if yv == 0 {
					return 0
				}
				return (x(s) % yv) & m
			}, nil
		case "&":
			return func(s *Simulator) uint64 { return x(s) & y(s) & m }, nil
		case "|":
			return func(s *Simulator) uint64 { return (x(s) | y(s)) & m }, nil
		case "^":
			return func(s *Simulator) uint64 { return (x(s) ^ y(s)) & m }, nil
		default: // ~^ ^~ xnor
			return func(s *Simulator) uint64 { return (^(x(s) ^ y(s))) & m }, nil
		}

	case "==", "!=", "<", ">", "<=", ">=", "===", "!==":
		w, ok := c.staticWidthOf(v.X, sc)
		if !ok {
			return nil, errDynamic
		}
		yw, ok := c.staticWidthOf(v.Y, sc)
		if !ok {
			return nil, errDynamic
		}
		if yw > w {
			w = yw
		}
		x, err := c.compileExpr(v.X, sc, w)
		if err != nil {
			return nil, err
		}
		y, err := c.compileExpr(v.Y, sc, w)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "==", "===":
			return func(s *Simulator) uint64 { return b2u(x(s) == y(s)) }, nil
		case "!=", "!==":
			return func(s *Simulator) uint64 { return b2u(x(s) != y(s)) }, nil
		case "<":
			return func(s *Simulator) uint64 { return b2u(x(s) < y(s)) }, nil
		case ">":
			return func(s *Simulator) uint64 { return b2u(x(s) > y(s)) }, nil
		case "<=":
			return func(s *Simulator) uint64 { return b2u(x(s) <= y(s)) }, nil
		default:
			return func(s *Simulator) uint64 { return b2u(x(s) >= y(s)) }, nil
		}

	case "&&", "||":
		x, err := c.compileSelf(v.X, sc)
		if err != nil {
			return nil, err
		}
		y, err := c.compileSelf(v.Y, sc)
		if err != nil {
			return nil, err
		}
		// The interpreter evaluates both operands (no short circuit);
		// expressions are side-effect free so only the value matters.
		if v.Op == "&&" {
			return func(s *Simulator) uint64 { return b2u(x(s) != 0 && y(s) != 0) }, nil
		}
		return func(s *Simulator) uint64 { return b2u(x(s) != 0 || y(s) != 0) }, nil

	case "<<", "<<<":
		x, err := c.compileExpr(v.X, sc, ctxW)
		if err != nil {
			return nil, err
		}
		n, err := c.compileSelf(v.Y, sc)
		if err != nil {
			return nil, err
		}
		return func(s *Simulator) uint64 {
			nv := n(s)
			if nv >= 64 {
				return 0
			}
			return (x(s) << uint(nv)) & m
		}, nil

	case ">>", ">>>":
		w, ok := c.staticWidthOf(v.X, sc)
		if !ok {
			return nil, errDynamic
		}
		if ctxW > w {
			w = ctxW
		}
		x, err := c.compileExpr(v.X, sc, w)
		if err != nil {
			return nil, err
		}
		n, err := c.compileSelf(v.Y, sc)
		if err != nil {
			return nil, err
		}
		return func(s *Simulator) uint64 {
			nv := n(s)
			if nv >= 64 {
				return 0
			}
			return (x(s) >> uint(nv)) & m
		}, nil
	}
	return nil, errDynamic
}

// ---------------------------------------------------------------------------
// Static width analysis

// staticEval evaluates a constant expression (numbers, parameters and
// operators over them) with the interpreter's own evaluator, so the value
// is exactly what the reference engine would compute at runtime.
func (c *compiler) staticEval(e verilog.Expr, sc *scope) (uint64, bool) {
	if !constOnly(e, sc) {
		return 0, false
	}
	v, err := c.s.evalSelf(e, sc)
	if err != nil {
		return 0, false
	}
	return v, true
}

// constOnly reports whether e references no signals (parameters and
// literals only) and uses only node types the evaluator supports.
func constOnly(e verilog.Expr, sc *scope) bool {
	ok := true
	verilog.WalkExpr(e, func(x verilog.Expr) bool {
		switch v := x.(type) {
		case *verilog.Ident:
			if _, isParam := sc.env[v.Name]; !isParam {
				ok = false
			}
		case *verilog.Number, *verilog.Unary, *verilog.Binary, *verilog.Ternary,
			*verilog.Concat, *verilog.Repl:
		default:
			ok = false
		}
		return ok
	})
	return ok
}

// staticWidthOf mirrors widthOf for expressions whose self-determined
// width does not depend on signal values.
func (c *compiler) staticWidthOf(e verilog.Expr, sc *scope) (int, bool) {
	switch v := e.(type) {
	case *verilog.Number:
		if v.Width > 0 {
			return v.Width, true
		}
		return 32, true
	case *verilog.Ident:
		if _, isParam := sc.env[v.Name]; isParam {
			return 32, true
		}
		if idx, ok := sc.names[v.Name]; ok {
			return c.s.d.sigs[idx].width, true
		}
		return 1, true
	case *verilog.Unary:
		switch v.Op {
		case "!", "&", "|", "^", "~&", "~|", "~^":
			return 1, true
		}
		return c.staticWidthOf(v.X, sc)
	case *verilog.Binary:
		switch v.Op {
		case "==", "!=", "===", "!==", "<", ">", "<=", ">=", "&&", "||":
			return 1, true
		case "<<", ">>", "<<<", ">>>":
			return c.staticWidthOf(v.X, sc)
		}
		a, ok1 := c.staticWidthOf(v.X, sc)
		b, ok2 := c.staticWidthOf(v.Y, sc)
		if !ok1 || !ok2 {
			return 0, false
		}
		if a > b {
			return a, true
		}
		return b, true
	case *verilog.Ternary:
		a, ok1 := c.staticWidthOf(v.Then, sc)
		b, ok2 := c.staticWidthOf(v.Else, sc)
		if !ok1 || !ok2 {
			return 0, false
		}
		if a > b {
			return a, true
		}
		return b, true
	case *verilog.Index:
		if id, ok := v.X.(*verilog.Ident); ok {
			if idx, ok := sc.names[id.Name]; ok && c.s.d.sigs[idx].isMem {
				return c.s.d.sigs[idx].width, true
			}
		}
		return 1, true
	case *verilog.PartSelect:
		msb, ok1 := c.staticEval(v.MSB, sc)
		lsb, ok2 := c.staticEval(v.LSB, sc)
		if !ok1 || !ok2 {
			return 0, false
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		return int(msb-lsb) + 1, true
	case *verilog.Concat:
		total := 0
		for _, p := range v.Parts {
			w, ok := c.staticWidthOf(p, sc)
			if !ok {
				return 0, false
			}
			total += w
		}
		return total, true
	case *verilog.Repl:
		n, ok := c.staticEval(v.Count, sc)
		if !ok {
			return 0, false
		}
		w, ok := c.staticWidthOf(v.Value, sc)
		if !ok {
			return 0, false
		}
		return int(n) * w, true
	}
	return 1, true
}

// staticWidthOfLHS mirrors widthOfLHS for statically sized l-values.
func (c *compiler) staticWidthOfLHS(lhs verilog.Expr, sc *scope) (int, bool) {
	switch l := lhs.(type) {
	case *verilog.Ident:
		if idx, ok := sc.names[l.Name]; ok {
			return c.s.d.sigs[idx].width, true
		}
		return 1, true
	case *verilog.Index:
		if id, ok := l.X.(*verilog.Ident); ok {
			if idx, ok := sc.names[id.Name]; ok && c.s.d.sigs[idx].isMem {
				return c.s.d.sigs[idx].width, true
			}
		}
		return 1, true
	case *verilog.PartSelect:
		msb, ok1 := c.staticEval(l.MSB, sc)
		lsb, ok2 := c.staticEval(l.LSB, sc)
		if !ok1 || !ok2 {
			return 0, false
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		return int(msb-lsb) + 1, true
	case *verilog.Concat:
		total := 0
		for _, p := range l.Parts {
			w, ok := c.staticWidthOfLHS(p, sc)
			if !ok {
				return 0, false
			}
			total += w
		}
		return total, true
	}
	return 1, true
}

// ---------------------------------------------------------------------------
// Levelization and the clean-design analysis

// levelize topologically orders the combinational processes and decides
// whether the levelized sweep provably reaches the event-driven fixpoint.
// Any violation returns a reason and the design keeps the event scheduler
// (with compiled bodies).
func (c *compiler) levelize() (order []int, reason string) {
	d := c.s.d
	var comb []int
	seqWritten := map[int]bool{}
	for _, p := range d.procs {
		switch p.kind {
		case procComb:
			if p.body != nil {
				if len(p.edges) > 0 {
					return nil, "explicit level-sensitive list (incomplete-sensitivity semantics)"
				}
				if hasNBA(p.body) {
					return nil, "non-blocking assignment in combinational process"
				}
				if !selfStable(p) {
					return nil, "combinational process reads its own pre-execution state"
				}
			}
			comb = append(comb, p.idx)
		case procSeq:
			for _, sig := range writeSet(p) {
				seqWritten[sig] = true
			}
		}
	}

	// Combinational drivers may share a signal only on provably disjoint
	// bit ranges (ripple-carry style part-select connections); any overlap
	// is order-dependent. Driven signals must also be disjoint from
	// sequential drivers and from externally driven top-level inputs.
	writers := map[int][]int{}      // signal -> comb writer procs
	writtenBits := map[int]uint64{} // signal -> union of written bit masks
	for _, pi := range comb {
		// Merge this process's writes per signal first: overlap within one
		// process (y = 0; y[0] = x) is ordinary sequential execution, only
		// overlap between processes is order-dependent.
		var merged []sigMask
		index := map[int]int{}
		for _, wr := range c.maskedWriteSet(d.procs[pi]) {
			if j, ok := index[wr.sig]; ok {
				merged[j].mask |= wr.mask
			} else {
				index[wr.sig] = len(merged)
				merged = append(merged, wr)
			}
		}
		for _, wr := range merged {
			if writtenBits[wr.sig]&wr.mask != 0 {
				return nil, "signal bits with multiple combinational drivers"
			}
			writtenBits[wr.sig] |= wr.mask
			writers[wr.sig] = append(writers[wr.sig], pi)
			if seqWritten[wr.sig] {
				return nil, "signal driven by both combinational and sequential processes"
			}
		}
	}
	for _, in := range d.inputs {
		if idx, ok := d.byName[in.Name]; ok {
			if _, w := writers[idx]; w {
				return nil, "combinationally driven top-level input"
			}
		}
	}

	// Edge triggers are the one observer of *intermediate* states: under
	// event scheduling a derived/gated clock can glitch — a transient
	// pulse between two fixpoints fires a posedge that the settled values
	// never show — while the topological sweep computes fixpoints only and
	// produces no glitches. Designs clocking anything off a combinationally
	// driven signal therefore keep the event scheduler.
	for _, p := range d.procs {
		if p.kind != procSeq {
			continue
		}
		for _, ed := range p.edges {
			if _, comb := writers[ed.sig]; comb {
				return nil, "edge trigger on combinationally driven signal (glitch semantics)"
			}
		}
	}

	// Dependency edges: the drivers of every signal a process reads must
	// run first. Self-edges of always bodies are legal (a block does not
	// re-trigger on its own writes); self-edges of continuous assignments
	// are genuine combinational loops.
	succ := make(map[int][]int, len(comb))
	indeg := make(map[int]int, len(comb))
	for _, pi := range comb {
		indeg[pi] += 0
	}
	for _, pi := range comb {
		p := d.procs[pi]
		for _, dep := range p.combDeps(d) {
			for _, w := range writers[dep] {
				if w == pi && p.body != nil {
					continue
				}
				succ[w] = append(succ[w], pi)
				indeg[pi]++
			}
		}
	}
	frontier := make([]int, 0, len(comb))
	for _, pi := range comb {
		if indeg[pi] == 0 {
			frontier = append(frontier, pi)
		}
	}
	for len(frontier) > 0 {
		var next []int
		for _, pi := range frontier {
			order = append(order, pi)
			for _, q := range succ[pi] {
				indeg[q]--
				if indeg[q] == 0 {
					next = append(next, q)
				}
			}
		}
		frontier = next
	}
	if len(order) != len(comb) {
		return nil, "combinational cycle"
	}
	return order, ""
}

// hasNBA reports whether a statement tree contains a non-blocking
// assignment.
func hasNBA(body verilog.Stmt) bool {
	found := false
	verilog.WalkStmt(body, func(st verilog.Stmt) bool {
		if a, ok := st.(*verilog.Assign); ok && !a.Blocking {
			found = true
		}
		return !found
	})
	return found
}

// sigMask identifies the bits of one signal a process may write. Memories
// are tracked whole (mask = all ones).
type sigMask struct {
	sig  int
	mask uint64
}

// maskedWriteSet returns the bits each combinational process may write,
// at bit granularity where the l-value is statically resolvable and
// conservatively whole-signal otherwise.
func (c *compiler) maskedWriteSet(p *process) []sigMask {
	var out []sigMask
	var addLHS func(e verilog.Expr, sc *scope)
	addLHS = func(e verilog.Expr, sc *scope) {
		switch l := e.(type) {
		case *verilog.Ident:
			if idx, ok := sc.names[l.Name]; ok {
				out = append(out, sigMask{idx, widthMask(c.s.d.sigs[idx].width)})
			}
		case *verilog.Index:
			id, ok := l.X.(*verilog.Ident)
			if !ok {
				return
			}
			idx, ok := sc.names[id.Name]
			if !ok {
				return
			}
			si := c.s.d.sigs[idx]
			if si.isMem {
				out = append(out, sigMask{idx, ^uint64(0)})
				return
			}
			if sel, selOK := c.staticEval(l.Index, sc); selOK {
				if int(sel) < si.width {
					out = append(out, sigMask{idx, 1 << uint(sel)})
				}
				return // constant out-of-range bit writes are dropped
			}
			out = append(out, sigMask{idx, widthMask(si.width)})
		case *verilog.PartSelect:
			id, ok := l.X.(*verilog.Ident)
			if !ok {
				return
			}
			idx, ok := sc.names[id.Name]
			if !ok {
				return
			}
			msb, ok1 := c.staticEval(l.MSB, sc)
			lsb, ok2 := c.staticEval(l.LSB, sc)
			if ok1 && ok2 {
				if msb < lsb {
					msb, lsb = lsb, msb
				}
				w := int(msb-lsb) + 1
				out = append(out, sigMask{idx, widthMask(w) << uint(lsb)})
				return
			}
			out = append(out, sigMask{idx, widthMask(c.s.d.sigs[idx].width)})
		case *verilog.Concat:
			for _, part := range l.Parts {
				addLHS(part, sc)
			}
		}
	}
	if p.connRHS != nil {
		addLHS(p.connLHS, p.connLHSsc)
		return out
	}
	verilog.WalkStmt(p.body, func(st verilog.Stmt) bool {
		switch v := st.(type) {
		case *verilog.Assign:
			addLHS(v.LHS, p.sc)
		case *verilog.For:
			if v.Init != nil {
				addLHS(v.Init.LHS, p.sc)
			}
			if v.Step != nil {
				addLHS(v.Step.LHS, p.sc)
			}
		}
		return true
	})
	return out
}

// writeSet returns the global indices of every signal a process may write
// (blocking or non-blocking, full or partial).
func writeSet(p *process) []int {
	seen := map[int]bool{}
	var out []int
	add := func(e verilog.Expr, sc *scope) {
		for _, name := range verilog.LHSTargets(e) {
			if idx, ok := sc.names[name]; ok && !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
		}
	}
	if p.connRHS != nil {
		add(p.connLHS, p.connLHSsc)
		return out
	}
	verilog.WalkStmt(p.body, func(st verilog.Stmt) bool {
		switch v := st.(type) {
		case *verilog.Assign:
			add(v.LHS, p.sc)
		case *verilog.For:
			// WalkStmt does not descend into the init/step assignments.
			if v.Init != nil {
				add(v.Init.LHS, p.sc)
			}
			if v.Step != nil {
				add(v.Step.LHS, p.sc)
			}
		}
		return true
	})
	return out
}

// selfStable reports whether re-executing a combinational always body with
// unchanged inputs is a provable no-op. The one hazard is a
// read-modify-write of the block's own state (e.g. "x = x + 1" without a
// prior definite assignment): event-driven execution runs such a block
// once per external trigger, while the levelized sweep would run it once
// per delta round. Loop counters are fine — the for-init assigns them
// before the first read.
func selfStable(p *process) bool {
	own := map[int]bool{}
	for _, sig := range writeSet(p) {
		own[sig] = true
	}
	pre := map[int]bool{}
	scanStmt(p.body, p.sc, map[int]bool{}, pre)
	for sig := range pre {
		if own[sig] {
			return false
		}
	}
	return true
}

// scanStmt walks a body in execution order tracking definitely-assigned
// signals; any signal whose pre-execution value may be observed (read, or
// partially overwritten, before a definite full assignment) lands in pre.
func scanStmt(st verilog.Stmt, sc *scope, written, pre map[int]bool) {
	switch v := st.(type) {
	case nil, *verilog.NullStmt:
	case *verilog.Block:
		for _, sub := range v.Stmts {
			scanStmt(sub, sc, written, pre)
		}
	case *verilog.Assign:
		scanAssign(v, sc, written, pre)
	case *verilog.If:
		scanReads(v.Cond, sc, written, pre)
		tw := copySet(written)
		scanStmt(v.Then, sc, tw, pre)
		ew := copySet(written)
		if v.Else != nil {
			scanStmt(v.Else, sc, ew, pre)
		}
		for k := range tw {
			if ew[k] {
				written[k] = true
			}
		}
	case *verilog.Case:
		scanReads(v.Expr, sc, written, pre)
		hasDefault := false
		var branchWrites []map[int]bool
		for i := range v.Items {
			it := &v.Items[i]
			if it.Exprs == nil {
				hasDefault = true
			}
			for _, ex := range it.Exprs {
				scanReads(ex, sc, written, pre)
			}
			bw := copySet(written)
			scanStmt(it.Body, sc, bw, pre)
			branchWrites = append(branchWrites, bw)
		}
		if hasDefault && len(branchWrites) > 0 {
			inter := branchWrites[0]
			for _, bw := range branchWrites[1:] {
				for k := range inter {
					if !bw[k] {
						delete(inter, k)
					}
				}
			}
			for k := range inter {
				written[k] = true
			}
		}
	case *verilog.For:
		if v.Init != nil {
			scanAssign(v.Init, sc, written, pre)
		}
		scanReads(v.Cond, sc, written, pre)
		// Zero iterations possible: body/step writes are not definite.
		bw := copySet(written)
		scanStmt(v.Body, sc, bw, pre)
		if v.Step != nil {
			scanAssign(v.Step, sc, bw, pre)
		}
	default:
		// Unsupported statement: treat as opaque — everything it mentions
		// may be a pre-execution read (it will error at runtime anyway).
		verilog.WalkStmt(st, func(sub verilog.Stmt) bool {
			if a, ok := sub.(*verilog.Assign); ok {
				scanReads(a.RHS, sc, written, pre)
				scanReads(a.LHS, sc, written, pre)
			}
			return true
		})
	}
}

func scanAssign(a *verilog.Assign, sc *scope, written, pre map[int]bool) {
	if a == nil {
		return
	}
	scanReads(a.RHS, sc, written, pre)
	scanLHS(a.LHS, sc, written, pre)
}

func scanLHS(lhs verilog.Expr, sc *scope, written, pre map[int]bool) {
	switch l := lhs.(type) {
	case *verilog.Ident:
		if idx, ok := sc.names[l.Name]; ok {
			written[idx] = true
		}
	case *verilog.Index:
		scanReads(l.Index, sc, written, pre)
		markPartial(l.X, sc, written, pre)
	case *verilog.PartSelect:
		scanReads(l.MSB, sc, written, pre)
		scanReads(l.LSB, sc, written, pre)
		markPartial(l.X, sc, written, pre)
	case *verilog.Concat:
		for _, p := range l.Parts {
			scanLHS(p, sc, written, pre)
		}
	}
}

// markPartial records a bit/part/memory-word write: the store merges with
// the target's pre-execution bits unless the target was fully assigned
// earlier in the body.
func markPartial(base verilog.Expr, sc *scope, written, pre map[int]bool) {
	id, ok := base.(*verilog.Ident)
	if !ok {
		return
	}
	if idx, ok := sc.names[id.Name]; ok && !written[idx] {
		pre[idx] = true
	}
}

func scanReads(e verilog.Expr, sc *scope, written, pre map[int]bool) {
	verilog.WalkExpr(e, func(x verilog.Expr) bool {
		if id, ok := x.(*verilog.Ident); ok {
			if _, isParam := sc.env[id.Name]; isParam {
				return true
			}
			if idx, ok := sc.names[id.Name]; ok && !written[idx] {
				pre[idx] = true
			}
		}
		return true
	})
}

func copySet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
