package synth

import (
	"fmt"

	"uvllm/internal/verilog"
)

// selfWidth mirrors the simulator's self-determined width rules so that
// the netlist computes bit-identical results.
func (b *builder) selfWidth(e verilog.Expr, env *symEnv) int {
	switch v := e.(type) {
	case *verilog.Number:
		if v.Width > 0 {
			return v.Width
		}
		return 32
	case *verilog.Ident:
		if _, ok := env.concrete[v.Name]; ok {
			return 32
		}
		if _, ok := b.params[v.Name]; ok {
			return 32
		}
		if w, ok := b.widths[v.Name]; ok {
			return w
		}
		return 1
	case *verilog.Unary:
		switch v.Op {
		case "!", "&", "|", "^", "~&", "~|", "~^":
			return 1
		}
		return b.selfWidth(v.X, env)
	case *verilog.Binary:
		switch v.Op {
		case "==", "!=", "===", "!==", "<", ">", "<=", ">=", "&&", "||":
			return 1
		case "<<", ">>", "<<<", ">>>":
			return b.selfWidth(v.X, env)
		}
		a, c := b.selfWidth(v.X, env), b.selfWidth(v.Y, env)
		if a > c {
			return a
		}
		return c
	case *verilog.Ternary:
		a, c := b.selfWidth(v.Then, env), b.selfWidth(v.Else, env)
		if a > c {
			return a
		}
		return c
	case *verilog.Index:
		return 1
	case *verilog.PartSelect:
		msb, e1 := verilog.EvalConst(v.MSB, env.constEnv())
		lsb, e2 := verilog.EvalConst(v.LSB, env.constEnv())
		if e1 != nil || e2 != nil {
			return 1
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		return int(msb-lsb) + 1
	case *verilog.Concat:
		t := 0
		for _, p := range v.Parts {
			t += b.selfWidth(p, env)
		}
		return t
	case *verilog.Repl:
		n, err := verilog.EvalConst(v.Count, env.constEnv())
		if err != nil {
			return 1
		}
		return int(n) * b.selfWidth(v.Value, env)
	}
	return 1
}

// lhsWidth is the declared width of an assignment target.
func (b *builder) lhsWidth(lhs verilog.Expr, env *symEnv) int {
	switch l := lhs.(type) {
	case *verilog.Ident:
		if w, ok := b.widths[l.Name]; ok {
			return w
		}
		return 1
	case *verilog.Index:
		return 1
	case *verilog.PartSelect:
		msb, e1 := verilog.EvalConst(l.MSB, env.constEnv())
		lsb, e2 := verilog.EvalConst(l.LSB, env.constEnv())
		if e1 != nil || e2 != nil {
			return 1
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		return int(msb-lsb) + 1
	case *verilog.Concat:
		t := 0
		for _, p := range l.Parts {
			t += b.lhsWidth(p, env)
		}
		return t
	}
	return 1
}

var binOpKinds = map[string]OpKind{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"&": OpAnd, "|": OpOr, "^": OpXor, "~^": OpXnor, "^~": OpXnor,
	"==": OpEq, "===": OpEq, "!=": OpNe, "!==": OpNe,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	"&&": OpLogAnd, "||": OpLogOr,
	"<<": OpShl, "<<<": OpShl, ">>": OpShr, ">>>": OpShr,
}

// synthExpr builds netlist nodes for e evaluated at context width ctxW,
// following the same context/self-determined width split as the simulator.
func (b *builder) synthExpr(e verilog.Expr, env *symEnv, ctxW int) (int, error) {
	nl := b.nl
	switch v := e.(type) {
	case *verilog.Number:
		return nl.konst(v.Value, ctxW), nil

	case *verilog.Ident:
		id, err := env.read(v.Name, v.Line)
		if err != nil {
			return 0, err
		}
		return b.fitWidth(id, max(ctxW, 1)), nil

	case *verilog.Unary:
		switch v.Op {
		case "!":
			x, err := b.synthExpr(v.X, env, b.selfWidth(v.X, env))
			if err != nil {
				return 0, err
			}
			return nl.add(&Node{Kind: OpLogNot, Width: 1, Args: []int{x}}), nil
		case "-":
			x, err := b.synthExpr(v.X, env, ctxW)
			if err != nil {
				return 0, err
			}
			return nl.add(&Node{Kind: OpNeg, Width: ctxW, Args: []int{x}}), nil
		case "+":
			return b.synthExpr(v.X, env, ctxW)
		case "~":
			x, err := b.synthExpr(v.X, env, ctxW)
			if err != nil {
				return 0, err
			}
			return nl.add(&Node{Kind: OpNot, Width: ctxW, Args: []int{x}}), nil
		case "&", "|", "^", "~&", "~|", "~^":
			w := b.selfWidth(v.X, env)
			x, err := b.synthExpr(v.X, env, w)
			if err != nil {
				return 0, err
			}
			var k OpKind
			neg := false
			switch v.Op {
			case "&":
				k = OpRedAnd
			case "|":
				k = OpRedOr
			case "^":
				k = OpRedXor
			case "~&":
				k, neg = OpRedAnd, true
			case "~|":
				k, neg = OpRedOr, true
			case "~^":
				k, neg = OpRedXor, true
			}
			id := nl.add(&Node{Kind: k, Width: 1, Args: []int{x}})
			if neg {
				id = nl.add(&Node{Kind: OpLogNot, Width: 1, Args: []int{id}})
			}
			return id, nil
		}
		return 0, fmt.Errorf("synth: unsupported unary %q", v.Op)

	case *verilog.Binary:
		kind, ok := binOpKinds[v.Op]
		if !ok {
			return 0, fmt.Errorf("synth: unsupported operator %q", v.Op)
		}
		switch v.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			x, err := b.synthExpr(v.X, env, ctxW)
			if err != nil {
				return 0, err
			}
			y, err := b.synthExpr(v.Y, env, ctxW)
			if err != nil {
				return 0, err
			}
			return nl.add(&Node{Kind: kind, Width: ctxW, Args: []int{x, y}}), nil
		case "==", "!=", "===", "!==", "<", ">", "<=", ">=":
			w := b.selfWidth(v.X, env)
			if yw := b.selfWidth(v.Y, env); yw > w {
				w = yw
			}
			x, err := b.synthExpr(v.X, env, w)
			if err != nil {
				return 0, err
			}
			y, err := b.synthExpr(v.Y, env, w)
			if err != nil {
				return 0, err
			}
			return nl.add(&Node{Kind: kind, Width: 1, Args: []int{x, y}}), nil
		case "&&", "||":
			x, err := b.synthExpr(v.X, env, b.selfWidth(v.X, env))
			if err != nil {
				return 0, err
			}
			y, err := b.synthExpr(v.Y, env, b.selfWidth(v.Y, env))
			if err != nil {
				return 0, err
			}
			return nl.add(&Node{Kind: kind, Width: 1, Args: []int{b.boolNode(x), b.boolNode(y)}}), nil
		default: // shifts
			w := ctxW
			if v.Op == ">>" || v.Op == ">>>" {
				if xw := b.selfWidth(v.X, env); xw > w {
					w = xw
				}
			}
			x, err := b.synthExpr(v.X, env, w)
			if err != nil {
				return 0, err
			}
			y, err := b.synthExpr(v.Y, env, b.selfWidth(v.Y, env))
			if err != nil {
				return 0, err
			}
			id := nl.add(&Node{Kind: kind, Width: w, Args: []int{x, y}})
			return b.fitWidth(id, ctxW), nil
		}

	case *verilog.Ternary:
		c, err := b.synthExpr(v.Cond, env, b.selfWidth(v.Cond, env))
		if err != nil {
			return 0, err
		}
		t, err := b.synthExpr(v.Then, env, ctxW)
		if err != nil {
			return 0, err
		}
		el, err := b.synthExpr(v.Else, env, ctxW)
		if err != nil {
			return 0, err
		}
		return nl.add(&Node{Kind: OpMux, Width: ctxW, Args: []int{b.boolNode(c), t, el}}), nil

	case *verilog.Index:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return 0, fmt.Errorf("synth: unsupported select base (line %d)", v.Line)
		}
		base, err := env.read(id.Name, id.Line)
		if err != nil {
			return 0, err
		}
		if sel, cerr := verilog.EvalConst(v.Index, env.constEnv()); cerr == nil {
			w := b.nl.Nodes[base].Width
			if int(sel) >= w {
				return nl.konst(0, 1), nil
			}
			return nl.add(&Node{Kind: OpSlice, Width: 1, Args: []int{base}, Lo: int(sel), Hi: int(sel)}), nil
		}
		// Dynamic bit select: (base >> idx) & 1.
		idx, err := b.synthExpr(v.Index, env, b.selfWidth(v.Index, env))
		if err != nil {
			return 0, err
		}
		sh := nl.add(&Node{Kind: OpShr, Width: b.nl.Nodes[base].Width, Args: []int{base, idx}})
		return b.fitWidth(sh, 1), nil

	case *verilog.PartSelect:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return 0, fmt.Errorf("synth: unsupported select base (line %d)", v.Line)
		}
		base, err := env.read(id.Name, id.Line)
		if err != nil {
			return 0, err
		}
		msb, e1 := verilog.EvalConst(v.MSB, env.constEnv())
		lsb, e2 := verilog.EvalConst(v.LSB, env.constEnv())
		if e1 != nil || e2 != nil {
			return 0, fmt.Errorf("synth: non-constant part select of %q", id.Name)
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		return nl.add(&Node{Kind: OpSlice, Width: int(msb-lsb) + 1, Args: []int{base},
			Lo: int(lsb), Hi: int(msb)}), nil

	case *verilog.Concat:
		var args []int
		total := 0
		for _, p := range v.Parts {
			w := b.selfWidth(p, env)
			a, err := b.synthExpr(p, env, w)
			if err != nil {
				return 0, err
			}
			args = append(args, b.fitWidth(a, w))
			total += w
		}
		return nl.add(&Node{Kind: OpConcat, Width: total, Args: args}), nil

	case *verilog.Repl:
		n, err := verilog.EvalConst(v.Count, env.constEnv())
		if err != nil {
			return 0, fmt.Errorf("synth: non-constant replication count")
		}
		w := b.selfWidth(v.Value, env)
		a, aerr := b.synthExpr(v.Value, env, w)
		if aerr != nil {
			return 0, aerr
		}
		a = b.fitWidth(a, w)
		var args []int
		for i := int64(0); i < n; i++ {
			args = append(args, a)
		}
		return nl.add(&Node{Kind: OpConcat, Width: int(n) * w, Args: args}), nil
	}
	return 0, fmt.Errorf("synth: unsupported expression %T", e)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
