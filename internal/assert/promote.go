package assert

import "fmt"

// DepthUnbounded is the Promoted.Depth sentinel for an unbounded proof:
// the formal engine closed a k-induction step, so the property holds at
// every cycle of every post-reset run — the third rung of the assertion
// lifecycle (held-on-trace → proved-to-depth-k → proved-for-all-time).
const DepthUnbounded = -1

// Promoted wraps a mined assertion with a proof certificate: the
// property did not merely hold on the observed trace, it was proved by
// the formal engine (internal/formal) to hold on every post-reset input
// sequence up to Depth cycles — or, when Depth is DepthUnbounded, for
// all time via k-induction. Promotion upgrades the assertion lifecycle
// rung by rung; the wrapper still checks cycle by cycle inside the UVM
// monitor (defense in depth even for proved properties), but its
// description carries the certificate.
type Promoted struct {
	Assertion
	Depth int // proved for all stimulus up to this many cycles; DepthUnbounded = forever
}

// Promote attaches a proof certificate to an assertion (depth
// DepthUnbounded for an inductive, unbounded proof).
func Promote(a Assertion, depth int) Promoted {
	return Promoted{Assertion: a, Depth: depth}
}

// Unbounded reports whether the certificate is an unbounded (k-induction)
// proof rather than a bounded one.
func (p Promoted) Unbounded() bool { return p.Depth == DepthUnbounded }

// Describe implements Assertion, appending the proof certificate to the
// wrapped description.
func (p Promoted) Describe() string {
	if p.Unbounded() {
		return fmt.Sprintf("%s  // proved for all time (k-induction)", p.Assertion.Describe())
	}
	return fmt.Sprintf("%s  // proved to depth %d", p.Assertion.Describe(), p.Depth)
}
