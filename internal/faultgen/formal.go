package faultgen

import (
	"errors"

	"uvllm/internal/formal"
	"uvllm/internal/sim"
)

// FormalVerdict classifies a benchmark fault by bounded equivalence
// against its golden module: the formal companion to Effective's
// simulation-based triggerability check. Where Effective asks "did some
// stimulus we ran observe the fault", the classifier asks the exhaustive
// question "can any k-cycle post-reset stimulus observe it".
type FormalVerdict string

// Classifier verdicts.
const (
	// FormalDetectable: the SAT solver found a k-cycle stimulus on which
	// mutant and golden observably diverge (a replayable counterexample).
	FormalDetectable FormalVerdict = "detectable"
	// FormalKEquivalent: no stimulus of up to k cycles can distinguish
	// the mutant from the golden — the fault is invisible to any
	// bounded testbench of that depth.
	FormalKEquivalent FormalVerdict = "k-equivalent"
	// FormalUnsupported: the pair is outside the bit-blastable subset
	// (does not elaborate, non-levelizable construct, or the miter
	// exhausted its solver budget).
	FormalUnsupported FormalVerdict = "unsupported"
)

// classifyBudget bounds each classification solve; the benchmark's
// multiplier/divider modules can otherwise produce miters whose UNSAT
// proofs dominate a test run.
var classifyBudget = 20000

// ClassifyBounded classifies one fault by k-depth bounded equivalence,
// returning the counterexample for detectable faults. Syntax-class
// faults (which do not parse) and designs outside the blastable subset
// report FormalUnsupported.
func ClassifyBounded(f *Fault, k int) (FormalVerdict, *formal.Counterexample) {
	m := f.Meta()
	if m == nil {
		return FormalUnsupported, nil
	}
	return ClassifySourceBounded(f.Golden, f.Source, m.Top, m.Clock, k)
}

// ClassifySourceBounded is ClassifyBounded over raw sources: golden vs
// mutant on module top with the given clock.
func ClassifySourceBounded(golden, mutant, top, clock string, k int) (FormalVerdict, *formal.Counterexample) {
	pg, err := sim.SharedCache().Compile(golden, top, sim.BackendCompiled)
	if err != nil {
		return FormalUnsupported, nil
	}
	pm, err := sim.SharedCache().Compile(mutant, top, sim.BackendCompiled)
	if err != nil {
		return FormalUnsupported, nil
	}
	res, err := formal.BMCEquivOpts(pg, pm, clock, k, formal.Options{MaxConflicts: classifyBudget})
	if err != nil {
		if errors.Is(err, formal.ErrUnsupported) || errors.Is(err, formal.ErrBudget) {
			return FormalUnsupported, nil
		}
		return FormalUnsupported, nil
	}
	if res.Cex != nil {
		return FormalDetectable, res.Cex
	}
	return FormalKEquivalent, nil
}
