package exp

import (
	"strings"
	"testing"

	"uvllm/internal/sim"
)

// TestBitSimAmortizationStudyShape validates the study's structure (not
// its timings, which are machine-dependent): every hot-loop module gets
// a row with positive per-lane-cycle costs on all three paths and
// computed speedup factors, and the formatter renders one line per row
// plus the mean. It also pins the study's contract that the whole module
// mix lives inside the bit-parallel subset — a module falling out would
// silently turn the table into a batch-vs-batch comparison.
func TestBitSimAmortizationStudyShape(t *testing.T) {
	s := SharedSession(sim.BackendCompiled)
	rows, err := s.BitSimAmortizationStudy(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(batchAmortModules) {
		t.Fatalf("got %d rows, want %d", len(rows), len(batchAmortModules))
	}
	for _, r := range rows {
		if r.Cycles != 100 {
			t.Fatalf("%s: cycles not threaded: %+v", r.Module, r)
		}
		if r.SeqNsPerLC <= 0 || r.BatchNsPerLC <= 0 || r.BitNsPerLC <= 0 {
			t.Fatalf("%s: non-positive timing: %+v", r.Module, r)
		}
		if r.VsBatch <= 0 || r.VsSeq <= 0 {
			t.Fatalf("%s: speedup factors not computed: %+v", r.Module, r)
		}
	}
	out := FormatBitSimAmortization(rows)
	if strings.Count(out, "\n") != len(rows)+3 {
		t.Fatalf("table malformed:\n%s", out)
	}
	for _, r := range rows {
		if !strings.Contains(out, r.Module) {
			t.Fatalf("table missing %s:\n%s", r.Module, out)
		}
	}
}
