package uvm

import (
	"bytes"
	"testing"

	"uvllm/internal/sim"
)

// needleSrc hides coverage behind an equality needle: uniform random
// 16-bit vectors hit in==16'd12345 with probability 2^-16 per cycle,
// while the constant dictionary hands the directed generator the value.
const needleSrc = `
module needle(clk, rst_n, in, out);
  input clk;
  input rst_n;
  input [15:0] in;
  output out;
  reg out;
  reg armed;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      armed <= 1'b0;
      out <= 1'b0;
    end
    else begin
      if (in == 16'd12345) armed <= 1'b1;
      if (armed) out <= 1'b1;
    end
  end
endmodule
`

func compileNeedle(t *testing.T) *sim.Program {
	t.Helper()
	p, err := sim.CompileSource(needleSrc, "needle", sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDesignConstantsHarvest(t *testing.T) {
	p := compileNeedle(t)
	consts := p.Design().Constants()
	found := false
	for _, c := range consts {
		if c == 12345 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Constants() = %v, missing the 12345 needle", consts)
	}
}

func TestCoverageDirectedBeatsRandomOnNeedle(t *testing.T) {
	p := compileNeedle(t)
	cfg := StimConfig{Clock: "clk", Cycles: 120, Seed: 5}
	mr, err := CoverageRandom(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	md, corpus, err := CoverageDirected(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if md.Percent() <= mr.Percent() {
		t.Fatalf("directed %.2f%% must beat random %.2f%% on the needle design\nrandom:\n%s\ndirected:\n%s",
			md.Percent(), mr.Percent(), mr.Report(20), md.Report(20))
	}
	if len(corpus.Entries) == 0 {
		t.Fatal("directed run saved no coverage-raising snippets")
	}
	for _, e := range corpus.Entries {
		if e.Gain <= 0 {
			t.Fatalf("corpus entry with non-positive gain %d", e.Gain)
		}
		if len(e.Vectors) == 0 {
			t.Fatal("corpus entry with no vectors")
		}
	}
}

func TestCoverageDirectedDeterministic(t *testing.T) {
	p := compileNeedle(t)
	cfg := StimConfig{Clock: "clk", Cycles: 60, Seed: 9}
	m1, c1, err := CoverageDirected(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, c2, err := CoverageDirected(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Encode(), m2.Encode()) {
		t.Fatal("directed run is not deterministic for a fixed seed")
	}
	if len(c1.Entries) != len(c2.Entries) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(c1.Entries), len(c2.Entries))
	}
}

func TestCoverageBudgetIsRespected(t *testing.T) {
	p := compileNeedle(t)
	// The directed loop must drive exactly Cycles cycles after the
	// 2-cycle reset phase, same as the random baseline: statement points
	// are sampled once per cycle, so the top-level statement count equals
	// reset+budget on both.
	cfg := StimConfig{Clock: "clk", Cycles: 37, Seed: 1, SnippetLen: 5}
	mr, err := CoverageRandom(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	md, _, err := CoverageDirected(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var randomSamples, directedSamples uint64
	for _, pt := range mr.Points() {
		if pt.Name == "p0.s1" { // the always block's outer if
			randomSamples = mr.Count(pt)
			directedSamples = md.Count(pt)
		}
	}
	if randomSamples == 0 || randomSamples != directedSamples {
		t.Fatalf("cycle budgets differ: random sampled %d, directed %d", randomSamples, directedSamples)
	}
}

func TestCoverageDirectedBatchNeedle(t *testing.T) {
	p := compileNeedle(t)
	cfg := StimConfig{Clock: "clk", Cycles: 120, Seed: 5, Lanes: 4}
	mr, err := CoverageRandom(p, StimConfig{Clock: "clk", Cycles: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	md, corpus, err := CoverageDirected(p, cfg) // dispatches to the batch scorer
	if err != nil {
		t.Fatal(err)
	}
	if md.Percent() <= mr.Percent() {
		t.Fatalf("batched directed %.2f%% must beat random %.2f%% on the needle design",
			md.Percent(), mr.Percent())
	}
	if len(corpus.Entries) == 0 {
		t.Fatal("batched directed run saved no coverage-raising snippets")
	}
	for _, e := range corpus.Entries {
		if e.Gain <= 0 || len(e.Vectors) == 0 {
			t.Fatalf("bad corpus entry: gain=%d vectors=%d", e.Gain, len(e.Vectors))
		}
	}
}

func TestCoverageDirectedBatchDeterministic(t *testing.T) {
	p := compileNeedle(t)
	cfg := StimConfig{Clock: "clk", Cycles: 60, Seed: 9, Lanes: 3}
	m1, c1, err := CoverageDirectedBatch(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, c2, err := CoverageDirectedBatch(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Encode(), m2.Encode()) {
		t.Fatal("batched directed run is not deterministic for a fixed seed")
	}
	if len(c1.Entries) != len(c2.Entries) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(c1.Entries), len(c2.Entries))
	}
}

func TestCoverageDirectedBatchBudget(t *testing.T) {
	p := compileNeedle(t)
	// Same statement-sample accounting as the sequential loop: the merged
	// map must carry exactly reset + Cycles samples of the always block's
	// outer statement — L lanes of k-cycle snippets consume L·k budget.
	cfg := StimConfig{Clock: "clk", Cycles: 37, Seed: 1, SnippetLen: 5, Lanes: 4}
	mr, err := CoverageRandom(p, StimConfig{Clock: "clk", Cycles: 37, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	md, _, err := CoverageDirectedBatch(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var randomSamples, batchSamples uint64
	for _, pt := range mr.Points() {
		if pt.Name == "p0.s1" {
			randomSamples = mr.Count(pt)
			batchSamples = md.Count(pt)
		}
	}
	if randomSamples == 0 || randomSamples != batchSamples {
		t.Fatalf("cycle budgets differ: random sampled %d, batch sampled %d", randomSamples, batchSamples)
	}
}
