package verilog

import (
	"fmt"
)

// SyntaxError is a parse diagnostic with position information, shaped like
// the error records a linter such as Verilator emits.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: syntax error: %s", e.Line, e.Col, e.Msg)
}

// Parser is a recursive-descent parser with panic-free error recovery: on a
// syntax error it records a SyntaxError and resynchronizes at the next
// statement boundary so that one broken line does not hide the rest of the
// module from the linter.
type Parser struct {
	toks []Token
	pos  int
	errs []SyntaxError
}

// Parse parses src and returns the AST along with all syntax errors found.
// The AST is best-effort when errors are present.
func Parse(src string) (*SourceFile, []SyntaxError) {
	p := &Parser{toks: Lex(src)}
	f := &SourceFile{}
	for !p.at(TokEOF) {
		if p.atKeyword("module") {
			if m := p.parseModule(); m != nil {
				f.Modules = append(f.Modules, m)
			}
			continue
		}
		t := p.next()
		if t.Kind == TokIdent && looksLikeKeywordTypo(t.Text, "module") {
			p.errorf(t, "expected 'module', found %q (possible keyword typo)", t.Text)
			// Treat it as module and continue parsing.
			p.pos--
			p.toks[p.pos] = Token{Kind: TokKeyword, Text: "module", Line: t.Line, Col: t.Col}
			continue
		}
		p.errorf(t, "expected 'module', found %q", t.Text)
	}
	return f, p.errs
}

// MustParse parses src and panics on any syntax error. Intended for the
// embedded golden benchmark sources, which are known-correct.
func MustParse(src string) *SourceFile {
	f, errs := Parse(src)
	if len(errs) > 0 {
		panic(fmt.Sprintf("verilog.MustParse: %v", errs[0]))
	}
	return f
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *Parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) atPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) atOp(s string) bool {
	t := p.cur()
	return t.Kind == TokOp && t.Text == s
}

func (p *Parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) acceptOp(s string) bool {
	if p.atOp(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) Token {
	t := p.cur()
	if p.atPunct(s) {
		p.advance()
		return t
	}
	p.errorf(t, "expected %q, found %q", s, tokenDesc(t))
	return t
}

func (p *Parser) expectIdent() (string, Token) {
	t := p.cur()
	if t.Kind == TokIdent {
		p.advance()
		return t.Text, t
	}
	p.errorf(t, "expected identifier, found %q", tokenDesc(t))
	return "", t
}

func (p *Parser) errorf(t Token, format string, args ...interface{}) {
	// Cap error count so pathological input cannot blow up memory.
	if len(p.errs) < 200 {
		p.errs = append(p.errs, SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)})
	}
}

func tokenDesc(t Token) string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return t.Text
}

// looksLikeKeywordTypo reports whether ident is a small edit of keyword —
// the shape of error the fault generator's SynKeywordTypo class produces.
func looksLikeKeywordTypo(ident, keyword string) bool {
	if ident == keyword {
		return false
	}
	la, lb := len(ident), len(keyword)
	if la == 0 || lb == 0 {
		return false
	}
	d := la - lb
	if d < -1 || d > 1 {
		return false
	}
	// Levenshtein distance <= 1 via direct scan.
	i, j, edits := 0, 0, 0
	for i < la && j < lb {
		if ident[i] == keyword[j] {
			i++
			j++
			continue
		}
		edits++
		if edits > 1 {
			return false
		}
		switch {
		case la == lb:
			i++
			j++
		case la > lb:
			i++
		default:
			j++
		}
	}
	edits += (la - i) + (lb - j)
	return edits <= 1
}

// sync skips tokens until one of the given keywords/puncts, or EOF. The
// stopping token is not consumed.
func (p *Parser) sync(stops ...string) {
	for !p.at(TokEOF) {
		t := p.cur()
		for _, s := range stops {
			if t.Text == s && (t.Kind == TokKeyword || t.Kind == TokPunct) {
				return
			}
		}
		p.advance()
	}
}

// ---------------------------------------------------------------------------
// Module structure

func (p *Parser) parseModule() *Module {
	modTok := p.cur()
	p.acceptKeyword("module")
	name, _ := p.expectIdent()
	m := &Module{Name: name, Line: modTok.Line}

	// Optional parameter port list: #(parameter N = 8, ...)
	if p.atPunct("#") {
		p.advance()
		p.expectPunct("(")
		for !p.atPunct(")") && !p.at(TokEOF) {
			if p.acceptKeyword("parameter") {
				pd := p.parseParamAssign(false)
				if pd != nil {
					m.Items = append(m.Items, pd)
				}
			} else {
				p.errorf(p.cur(), "expected 'parameter' in parameter port list")
				p.sync(")", ";")
				break
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct(")")
	}

	// Port list.
	if p.acceptPunct("(") {
		p.parsePortList(m)
		p.expectPunct(")")
	}
	p.expectPunct(";")

	// Body items until endmodule.
	for !p.at(TokEOF) {
		if p.acceptKeyword("endmodule") {
			return m
		}
		t := p.cur()
		if t.Kind == TokKeyword && t.Text == "module" {
			p.errorf(t, "missing 'endmodule' before next module")
			return m
		}
		if it := p.parseItem(m); it != nil {
			m.Items = append(m.Items, it)
		}
	}
	p.errorf(p.cur(), "missing 'endmodule' at end of file")
	return m
}

// parsePortList parses an ANSI port list. Non-ANSI lists (bare names with
// directions declared in the body) are also accepted; the body declarations
// then fill in direction and width.
func (p *Parser) parsePortList(m *Module) {
	if p.atPunct(")") {
		return
	}
	var lastDir = DirInput
	var haveDir bool
	for {
		t := p.cur()
		switch {
		case p.atKeyword("input") || p.atKeyword("output") || p.atKeyword("inout"):
			dir := DirInput
			switch t.Text {
			case "output":
				dir = DirOutput
			case "inout":
				dir = DirInout
			}
			p.advance()
			lastDir, haveDir = dir, true
			isReg := p.acceptKeyword("reg")
			p.acceptKeyword("wire")
			signed := p.acceptKeyword("signed")
			var rng *Range
			if p.atPunct("[") {
				rng = p.parseRange()
			}
			name, nt := p.expectIdent()
			if name != "" {
				m.Ports = append(m.Ports, &Port{Dir: dir, IsReg: isReg, Signed: signed, Range: rng, Name: name, Line: nt.Line})
			}
		case t.Kind == TokIdent:
			p.advance()
			if haveDir {
				// Continuation of previous direction group with same range is
				// not tracked; treat as scalar of the last direction. Body
				// declarations may refine.
				m.Ports = append(m.Ports, &Port{Dir: lastDir, Name: t.Text, Line: t.Line})
			} else {
				// Non-ANSI: direction comes later in the body.
				m.Ports = append(m.Ports, &Port{Dir: DirInput, Name: t.Text, Line: t.Line})
			}
		case t.Kind == TokKeyword && looksLikeTypoOfAny(t.Text, "input", "output", "inout"):
			p.errorf(t, "unexpected keyword %q in port list", t.Text)
			p.advance()
		case t.Kind == TokIdent:
			p.advance()
		default:
			p.errorf(t, "unexpected %q in port list", tokenDesc(t))
			p.sync(")", ";")
			return
		}
		if !p.acceptPunct(",") {
			return
		}
	}
}

func looksLikeTypoOfAny(s string, kws ...string) bool {
	for _, k := range kws {
		if looksLikeKeywordTypo(s, k) {
			return true
		}
	}
	return false
}

func (p *Parser) parseRange() *Range {
	p.expectPunct("[")
	msb := p.parseExpr()
	p.expectPunct(":")
	lsb := p.parseExpr()
	p.expectPunct("]")
	return &Range{MSB: msb, LSB: lsb}
}

func (p *Parser) parseParamAssign(local bool) *ParamDecl {
	// Optional range on parameter is parsed and discarded.
	if p.atPunct("[") {
		p.parseRange()
	}
	name, nt := p.expectIdent()
	if name == "" {
		p.sync(",", ";", ")")
		return nil
	}
	if !p.acceptOp("=") {
		p.errorf(p.cur(), "expected '=' after parameter name %q", name)
		p.sync(",", ";", ")")
		return nil
	}
	v := p.parseExpr()
	return &ParamDecl{Local: local, Name: name, Value: v, Line: nt.Line}
}

// parseItem parses one module body item.
func (p *Parser) parseItem(m *Module) Item {
	t := p.cur()
	switch {
	case p.atKeyword("parameter"), p.atKeyword("localparam"):
		local := t.Text == "localparam"
		p.advance()
		pd := p.parseParamAssign(local)
		p.expectPunct(";")
		return pd

	case p.atKeyword("input"), p.atKeyword("output"), p.atKeyword("inout"):
		p.parseBodyPortDecl(m)
		return nil

	case p.atKeyword("wire"), p.atKeyword("reg"), p.atKeyword("integer"), p.atKeyword("genvar"):
		return p.parseNetDecl()

	case p.atKeyword("assign"):
		p.advance()
		lhs := p.parseExpr()
		if !p.acceptOp("=") {
			p.errorf(p.cur(), "expected '=' in continuous assignment")
			p.sync(";", "endmodule")
			p.acceptPunct(";")
			return nil
		}
		rhs := p.parseExpr()
		p.expectSemi("continuous assignment")
		return &ContAssign{LHS: lhs, RHS: rhs, Line: t.Line}

	case p.atKeyword("always"):
		p.advance()
		sens := p.parseSensList()
		body := p.parseStmt()
		return &AlwaysBlock{Sens: sens, Body: body, Line: t.Line}

	case p.atKeyword("initial"):
		p.advance()
		body := p.parseStmt()
		return &InitialBlock{Body: body, Line: t.Line}

	case t.Kind == TokIdent:
		// Could be a module instantiation: Ident Ident ( ... ) ; or with
		// a parameter override: Ident #( ... ) Ident ( ... ) ;
		if (p.toks[p.pos+1].Kind == TokIdent && p.toks[p.pos+2].Text == "(") ||
			p.toks[p.pos+1].Text == "#" {
			return p.parseInstance()
		}
		if looksLikeTypoOfAny(t.Text, "assign", "always", "wire", "reg", "endmodule", "output", "input", "parameter", "initial") {
			p.errorf(t, "unknown construct %q (possible keyword typo)", t.Text)
		} else {
			p.errorf(t, "unexpected identifier %q at module level", t.Text)
		}
		p.sync(";", "endmodule")
		p.acceptPunct(";")
		return nil

	case p.atPunct(";"):
		p.advance()
		return nil

	default:
		p.errorf(t, "unexpected %q at module level", tokenDesc(t))
		p.advance()
		p.sync(";", "endmodule", "assign", "always", "wire", "reg")
		p.acceptPunct(";")
		return nil
	}
}

// expectSemi reports a missing semicolon with a premature-termination
// flavored message, matching the fault class that drops semicolons.
func (p *Parser) expectSemi(ctx string) {
	if p.acceptPunct(";") {
		return
	}
	p.errorf(p.cur(), "missing ';' after %s", ctx)
	// Do not consume: the current token likely starts the next item.
}

// parseBodyPortDecl handles non-ANSI direction declarations in the body:
// input [7:0] a, b; They update the existing port entries.
func (p *Parser) parseBodyPortDecl(m *Module) {
	t := p.next()
	dir := DirInput
	switch t.Text {
	case "output":
		dir = DirOutput
	case "inout":
		dir = DirInout
	}
	isReg := p.acceptKeyword("reg")
	p.acceptKeyword("wire")
	signed := p.acceptKeyword("signed")
	var rng *Range
	if p.atPunct("[") {
		rng = p.parseRange()
	}
	for {
		name, nt := p.expectIdent()
		if name == "" {
			p.sync(";", "endmodule")
			break
		}
		if pt := m.Port(name); pt != nil {
			pt.Dir = dir
			pt.IsReg = pt.IsReg || isReg
			pt.Signed = signed
			pt.Range = rng
		} else {
			m.Ports = append(m.Ports, &Port{Dir: dir, IsReg: isReg, Signed: signed, Range: rng, Name: name, Line: nt.Line})
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectSemi("port declaration")
}

func (p *Parser) parseNetDecl() Item {
	t := p.next()
	kind := KindWire
	switch t.Text {
	case "reg":
		kind = KindReg
	case "integer", "genvar":
		kind = KindInteger
	}
	signed := p.acceptKeyword("signed")
	var rng *Range
	if p.atPunct("[") {
		rng = p.parseRange()
	}
	d := &NetDecl{Kind: kind, Signed: signed, Range: rng, Line: t.Line}
	for {
		name, nt := p.expectIdent()
		if name == "" {
			p.sync(";", "endmodule")
			break
		}
		dn := DeclName{Name: name, Line: nt.Line}
		if p.atPunct("[") {
			dn.ArrayRange = p.parseRange()
		}
		if p.acceptOp("=") {
			dn.Init = p.parseExpr()
		}
		d.Names = append(d.Names, dn)
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectSemi(kind.String() + " declaration")
	return d
}

func (p *Parser) parseSensList() *SensList {
	s := &SensList{}
	if !p.atPunct("@") {
		p.errorf(p.cur(), "expected '@' after 'always'")
		return s
	}
	p.advance()
	if p.atOp("*") {
		p.advance()
		s.Star = true
		return s
	}
	p.expectPunct("(")
	if p.atOp("*") {
		p.advance()
		s.Star = true
		p.expectPunct(")")
		return s
	}
	for {
		t := p.cur()
		edge := EdgeNone
		if p.acceptKeyword("posedge") {
			edge = EdgePos
		} else if p.acceptKeyword("negedge") {
			edge = EdgeNeg
		}
		name, nt := p.expectIdent()
		if name == "" {
			p.sync(")", ";")
			break
		}
		_ = t
		s.Items = append(s.Items, SensItem{Edge: edge, Signal: name, Line: nt.Line})
		if p.acceptKeyword("or") || p.acceptPunct(",") {
			continue
		}
		break
	}
	p.expectPunct(")")
	return s
}

func (p *Parser) parseInstance() Item {
	modTok := p.next() // module name
	inst := &Instance{ModName: modTok.Text, Line: modTok.Line}
	if p.acceptPunct("#") {
		p.expectPunct("(")
		inst.Params = p.parseConnList()
		p.expectPunct(")")
	}
	name, _ := p.expectIdent()
	inst.InstName = name
	p.expectPunct("(")
	inst.Conns = p.parseConnList()
	p.expectPunct(")")
	p.expectSemi("module instantiation")
	return inst
}

func (p *Parser) parseConnList() []PortConn {
	var conns []PortConn
	if p.atPunct(")") {
		return conns
	}
	ordinal := 0
	for {
		t := p.cur()
		if p.acceptPunct(".") {
			pname, pt := p.expectIdent()
			p.expectPunct("(")
			var e Expr
			if !p.atPunct(")") {
				e = p.parseExpr()
			}
			p.expectPunct(")")
			conns = append(conns, PortConn{Port: pname, Expr: e, Line: pt.Line})
		} else {
			e := p.parseExpr()
			conns = append(conns, PortConn{Port: fmt.Sprintf("$%d", ordinal), Expr: e, Line: t.Line})
		}
		ordinal++
		if !p.acceptPunct(",") {
			return conns
		}
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	switch {
	case p.atKeyword("begin"):
		p.advance()
		// Optional block label ": name".
		if p.acceptPunct(":") {
			p.expectIdent()
		}
		b := &Block{Line: t.Line}
		for !p.atKeyword("end") && !p.at(TokEOF) {
			if p.atKeyword("endmodule") {
				p.errorf(p.cur(), "missing 'end' before 'endmodule'")
				return b
			}
			s := p.parseStmt()
			if s != nil {
				b.Stmts = append(b.Stmts, s)
			}
		}
		if !p.acceptKeyword("end") {
			p.errorf(p.cur(), "missing 'end' for block starting at line %d", t.Line)
		}
		return b

	case p.atKeyword("if"):
		p.advance()
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		then := p.parseStmt()
		var els Stmt
		if p.acceptKeyword("else") {
			els = p.parseStmt()
		}
		return &If{Cond: cond, Then: then, Else: els, Line: t.Line}

	case p.atKeyword("case"), p.atKeyword("casez"), p.atKeyword("casex"):
		kind := t.Text
		p.advance()
		p.expectPunct("(")
		sw := p.parseExpr()
		p.expectPunct(")")
		c := &Case{Kind: kind, Expr: sw, Line: t.Line}
		for !p.atKeyword("endcase") && !p.at(TokEOF) {
			if p.atKeyword("endmodule") {
				p.errorf(p.cur(), "missing 'endcase' before 'endmodule'")
				return c
			}
			it := CaseItem{Line: p.cur().Line}
			if p.acceptKeyword("default") {
				p.acceptPunct(":")
			} else {
				for {
					it.Exprs = append(it.Exprs, p.parseExpr())
					if !p.acceptPunct(",") {
						break
					}
				}
				p.expectPunct(":")
			}
			it.Body = p.parseStmt()
			c.Items = append(c.Items, it)
		}
		if !p.acceptKeyword("endcase") {
			p.errorf(p.cur(), "missing 'endcase' for case at line %d", t.Line)
		}
		return c

	case p.atKeyword("for"):
		p.advance()
		p.expectPunct("(")
		init := p.parseAssignNoSemi()
		p.expectPunct(";")
		cond := p.parseExpr()
		p.expectPunct(";")
		step := p.parseAssignNoSemi()
		p.expectPunct(")")
		body := p.parseStmt()
		return &For{Init: init, Cond: cond, Step: step, Body: body, Line: t.Line}

	case p.atPunct(";"):
		p.advance()
		return &NullStmt{Line: t.Line}

	case p.atPunct("#"):
		// Delay control "#10" — parse and ignore (non-synthesizable).
		p.advance()
		p.parsePrimary()
		return p.parseStmt()

	case t.Kind == TokIdent || p.atPunct("{"):
		a := p.parseAssignNoSemi()
		p.expectSemi("assignment")
		if a == nil {
			return &NullStmt{Line: t.Line}
		}
		return a

	case t.Kind == TokKeyword:
		if looksLikeTypoOfAny(t.Text, "begin", "end", "if", "else", "case", "endcase", "for") {
			p.errorf(t, "unknown statement keyword %q", t.Text)
		} else {
			p.errorf(t, "unexpected keyword %q in statement", t.Text)
		}
		p.advance()
		p.sync(";", "end", "endmodule")
		p.acceptPunct(";")
		return &NullStmt{Line: t.Line}

	default:
		p.errorf(t, "unexpected %q in statement", tokenDesc(t))
		p.advance()
		p.sync(";", "end", "endmodule")
		p.acceptPunct(";")
		return &NullStmt{Line: t.Line}
	}
}

// parseAssignNoSemi parses "lhs = rhs" or "lhs <= rhs" without the
// trailing semicolon (shared by statements and for-loop headers). The LHS
// is parsed as an l-value (no binary operators) so that "sum <= a" is an
// assignment rather than a comparison expression.
func (p *Parser) parseAssignNoSemi() *Assign {
	t := p.cur()
	lhs := p.parsePostfix()
	blocking := true
	switch {
	case p.atOp("=") && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "<" &&
		p.toks[p.pos+1].Line == p.cur().Line && p.toks[p.pos+1].Col == p.cur().Col+1:
		// "=<" lexes as two adjacent tokens; report the fault-generator's
		// malformed-operator class explicitly.
		p.errorf(p.cur(), "malformed assignment operator '=<' (did you mean '<=')")
		p.advance()
		p.advance()
		blocking = false
	case p.acceptOp("="):
		blocking = true
	case p.acceptOp("<="):
		blocking = false
	default:
		p.errorf(p.cur(), "expected assignment operator, found %q", tokenDesc(p.cur()))
		p.sync(";", ")", "end", "endmodule")
		return nil
	}
	rhs := p.parseExpr()
	return &Assign{LHS: lhs, RHS: rhs, Blocking: blocking, Line: t.Line}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4, "~^": 4, "^~": 4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseExpr() Expr { return p.parseTernary() }

func (p *Parser) parseTernary() Expr {
	cond := p.parseBinary(1)
	if p.atPunct("?") {
		t := p.next()
		then := p.parseTernary()
		p.expectPunct(":")
		els := p.parseTernary()
		return &Ternary{Cond: cond, Then: then, Else: els, Line: t.Line}
	}
	return cond
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		t := p.cur()
		if t.Kind != TokOp {
			return lhs
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs
		}
		p.advance()
		rhs := p.parseBinary(prec + 1)
		lhs = &Binary{Op: t.Text, X: lhs, Y: rhs, Line: t.Line}
	}
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	if t.Kind == TokOp {
		switch t.Text {
		case "!", "~", "-", "+", "&", "|", "^", "~&", "~|", "~^":
			p.advance()
			x := p.parseUnary()
			return &Unary{Op: t.Text, X: x, Line: t.Line}
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	e := p.parsePrimary()
	for p.atPunct("[") {
		open := p.next()
		idx := p.parseExpr()
		if p.acceptPunct(":") {
			lsb := p.parseExpr()
			p.expectPunct("]")
			e = &PartSelect{X: e, MSB: idx, LSB: lsb, Line: open.Line}
		} else {
			p.expectPunct("]")
			e = &Index{X: e, Index: idx, Line: open.Line}
		}
	}
	return e
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		w, v, xz, err := ParseNumberLiteral(t.Text)
		if err != nil {
			p.errorf(t, "malformed number literal %q", t.Text)
		}
		return &Number{Text: t.Text, Width: w, Value: v, HasXZ: xz, Line: t.Line}

	case t.Kind == TokIdent:
		p.advance()
		return &Ident{Name: t.Text, Line: t.Line}

	case p.atPunct("("):
		p.advance()
		e := p.parseExpr()
		p.expectPunct(")")
		return e

	case p.atPunct("{"):
		p.advance()
		first := p.parseExpr()
		// Replication: { N { expr } }
		if p.atPunct("{") {
			p.advance()
			val := p.parseExpr()
			// Replication may contain a concatenation list.
			if p.atPunct(",") {
				parts := []Expr{val}
				for p.acceptPunct(",") {
					parts = append(parts, p.parseExpr())
				}
				val = &Concat{Parts: parts, Line: t.Line}
			}
			p.expectPunct("}")
			p.expectPunct("}")
			return &Repl{Count: first, Value: val, Line: t.Line}
		}
		parts := []Expr{first}
		for p.acceptPunct(",") {
			parts = append(parts, p.parseExpr())
		}
		p.expectPunct("}")
		return &Concat{Parts: parts, Line: t.Line}

	case t.Kind == TokError:
		p.advance()
		p.errorf(t, "malformed token %q", t.Text)
		return &Number{Text: t.Text, Line: t.Line}

	default:
		p.errorf(t, "expected expression, found %q", tokenDesc(t))
		// Do not consume structural tokens; return a placeholder.
		if t.Kind == TokOp {
			p.advance()
		}
		return &Number{Text: "0", Line: t.Line}
	}
}
