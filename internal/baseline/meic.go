package baseline

import (
	"fmt"
	"strings"

	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
	"uvllm/internal/metrics"
)

// MEIC reimplements the MEIC framework's structure (Xu et al. 2024, the
// paper's main comparison): an iterative loop with a fix agent and a
// review agent, driven by minimally-processed simulation logs and a
// finite directed testbench. No pre-processing stage, no localization
// engine, no score-register rollback.
type MEIC struct {
	Client  llm.Client
	Cost    metrics.CostModel
	MaxIter int         // paper-era MEIC iterates up to 10
	Sim     SimServices // engine + shared compile cache + trace memo
}

// NewMEIC builds the baseline with defaults.
func NewMEIC(client llm.Client) *MEIC {
	return &MEIC{Client: client, Cost: defaultCost, MaxIter: 10}
}

// Repair runs MEIC on one benchmark instance.
func (x *MEIC) Repair(f *faultgen.Fault) Outcome {
	m := f.Meta()
	out := Outcome{Final: f.Source}
	design, err := elaborateFor(m, x.Sim)
	if err != nil {
		return out
	}
	vectors := WeakBench(m, design)
	cur := f.Source
	var history []string // MEIC carries its whole conversation forward
	for iter := 1; iter <= x.MaxIter; iter++ {
		pass, log, n := RunOwnBench(cur, m, vectors, x.Sim)
		out.Seconds += x.Cost.Sim(n)
		if pass {
			// The finite testbench is satisfied — MEIC accepts, whether
			// or not the code is actually correct (the overfitting the
			// UVLLM paper measures as the HR−FR gap).
			out.Hit = true
			out.Final = cur
			return out
		}
		if iter == x.MaxIter {
			break
		}
		// Fix agent: raw log as error information, plus the growing
		// conversation history MEIC-style loops drag along — the token
		// inefficiency UVLLM's localization engine eliminates.
		errInfo := verboseLog(log)
		if len(history) > 0 {
			errInfo += "\nPrevious attempts:\n" + strings.Join(history, "\n---\n")
		}
		req := llm.BuildRepairRequest(llm.RepairContext{
			ModuleName: m.Name,
			Spec:       m.Spec,
			Source:     cur,
			Stage:      llm.StageMEIC,
			ErrorInfo:  errInfo,
			Iteration:  iter,
		})
		resp, err := x.Client.Complete(req)
		if err != nil {
			break
		}
		out.Usage.Add(resp)
		out.Seconds += x.Cost.LLMCall(resp.InputTokens, resp.OutputTokens)

		// Review agent: MEIC's second LLM consults on repair quality; it
		// costs a call but has no quantitative acceptance metric (the gap
		// the score register fills in UVLLM).
		review := llm.Request{
			Model: "gpt-4-turbo",
			Messages: []llm.Message{
				{Role: "system", Content: "You review proposed Verilog repairs."},
				{Role: "user", Content: "Review this repair proposal:\n" + truncate(resp.Content, 2000)},
			},
		}
		rresp, rerr := x.Client.Complete(review)
		if rerr == nil {
			out.Usage.Add(rresp)
			out.Seconds += x.Cost.LLMCall(rresp.InputTokens, rresp.OutputTokens)
		}
		history = append(history, truncate(resp.Content, 1200))

		reply, err := llm.ParseRepairReply(resp.Content)
		if err != nil {
			continue
		}
		cand, err := applyLoose(cur, reply)
		if err != nil {
			continue
		}
		cur = cand
	}
	// Final check.
	pass, _, n := RunOwnBench(cur, m, vectors, x.Sim)
	out.Seconds += x.Cost.Sim(n)
	out.Hit = pass
	out.Final = cur
	return out
}

// verboseLog pads the raw UVM log the way MEIC feeds it to the model —
// low information density, high token count (the inefficiency UVLLM's
// localization engine removes).
func verboseLog(log string) string {
	var b strings.Builder
	b.WriteString("Full simulation log follows.\n")
	lines := strings.Split(log, "\n")
	for i, ln := range lines {
		fmt.Fprintf(&b, "[%04d] %s\n", i, ln)
	}
	// MEIC also repeats the tail of the log in its prompt template.
	tail := lines
	if len(tail) > 20 {
		tail = tail[len(tail)-20:]
	}
	b.WriteString("Log tail (repeated):\n")
	b.WriteString(strings.Join(tail, "\n"))
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// applyLoose applies a reply in pair mode, falling back to complete mode.
func applyLoose(src string, reply *llm.RepairReply) (string, error) {
	if len(reply.Correct) > 0 {
		out := src
		applied := 0
		for _, p := range reply.Correct {
			if p.Original == "" || !strings.Contains(out, p.Original) {
				continue
			}
			out = strings.Replace(out, p.Original, p.Patched, 1)
			applied++
		}
		if applied > 0 {
			return out, nil
		}
	}
	if strings.Contains(reply.Complete, "module") {
		return reply.Complete, nil
	}
	return "", fmt.Errorf("baseline: MEIC reply not applicable")
}

// RawLLM is the one-shot GPT-4-turbo baseline: a single repair request
// with no tool-derived error information, checked against the same weak
// bench.
type RawLLM struct {
	Client llm.Client
	Cost   metrics.CostModel
	Sim    SimServices
}

// NewRawLLM builds the baseline with defaults.
func NewRawLLM(client llm.Client) *RawLLM {
	return &RawLLM{Client: client, Cost: defaultCost}
}

// Repair runs the one-shot baseline on one benchmark instance.
func (x *RawLLM) Repair(f *faultgen.Fault) Outcome {
	m := f.Meta()
	out := Outcome{Final: f.Source}
	design, err := elaborateFor(m, x.Sim)
	if err != nil {
		return out
	}
	vectors := WeakBench(m, design)

	req := llm.BuildRepairRequest(llm.RepairContext{
		ModuleName: m.Name,
		Spec:       m.Spec,
		Source:     f.Source,
		Stage:      llm.StageRaw,
		ErrorInfo:  "The design does not meet its specification. Find and fix the bug.",
		Iteration:  1,
	})
	resp, err := x.Client.Complete(req)
	if err == nil {
		out.Usage.Add(resp)
		out.Seconds += x.Cost.LLMCall(resp.InputTokens, resp.OutputTokens)
		if reply, perr := llm.ParseRepairReply(resp.Content); perr == nil {
			if cand, aerr := applyLoose(f.Source, reply); aerr == nil {
				out.Final = cand
			}
		}
	}
	pass, _, n := RunOwnBench(out.Final, m, vectors, x.Sim)
	out.Seconds += x.Cost.Sim(n)
	out.Hit = pass
	return out
}
