package exp

import (
	"strings"
	"testing"

	"uvllm/internal/sim"
)

// TestBatchAmortizationStudyShape validates the study's structure (not
// its timings, which are machine-dependent): every hot-loop module gets
// a row with positive per-lane-cycle costs and a computed factor, and
// the formatter renders one line per row plus the mean.
func TestBatchAmortizationStudyShape(t *testing.T) {
	s := SharedSession(sim.BackendCompiled)
	rows, err := s.BatchAmortizationStudy(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(batchAmortModules) {
		t.Fatalf("got %d rows, want %d", len(rows), len(batchAmortModules))
	}
	for _, r := range rows {
		if r.Lanes != 4 || r.Cycles != 100 {
			t.Fatalf("%s: lanes/cycles not threaded: %+v", r.Module, r)
		}
		if r.SeqNsPerLC <= 0 || r.BatchNsPerLC <= 0 || r.PerLaneFactor <= 0 {
			t.Fatalf("%s: non-positive timing: %+v", r.Module, r)
		}
	}
	out := FormatBatchAmortization(rows)
	if strings.Count(out, "\n") != len(rows)+3 {
		t.Fatalf("table malformed:\n%s", out)
	}
	for _, r := range rows {
		if !strings.Contains(out, r.Module) {
			t.Fatalf("table missing %s:\n%s", r.Module, out)
		}
	}
}
