package sim

// Multi-lane batch simulation. A Batch runs K Instances of one Program
// through the harness cycle protocol in lockstep, amortizing everything
// per-cycle work shares across lanes: the schedule decode (port and
// waveform arena indices are resolved once, not once per lane), the
// levelized combinational sweep (one walk of the topological order runs
// every dirty lane's closure at each position, so the order array and the
// closure code stay hot in cache), and the signal arenas (one contiguous
// pooled slab, sliced per lane). Stimulus enters as flat rows aligned
// with the non-clock input declaration order — no per-cycle map
// allocation or name hashing — or as per-lane maps with exactly the
// standalone Harness application semantics.
//
// Byte-identity is the design constraint, not an aspiration: lane k of a
// Batch must produce the same trace, VCD rendering, coverage map and
// error (at the same cycle, with the same message) as a standalone
// Harness driving a fresh Instance with the same stimulus. The fused
// sweep preserves the per-lane state machine of settleLevelized exactly —
// same phase order, same per-lane delta accounting, same self-trigger
// guard — and the rtlgen differential gate (DiffBatchLanes) enforces the
// equivalence over generated designs.

import (
	"fmt"
	"sync"

	"uvllm/internal/cover"
)

// Batch drives K lanes — K Instances of one Program — through the cycle
// protocol in lockstep. Lanes are independent simulations: they share the
// immutable Program, the decoded schedule and one pooled signal arena,
// but never observe each other's state. A lane that errors (oscillation,
// unknown stimulus signal) goes inert at that cycle — exactly where the
// standalone harness run would have stopped — and the remaining lanes
// continue; Err reports per-lane outcomes.
//
// A Batch is not safe for concurrent use by multiple goroutines; lane
// parallelism inside one Batch is opted into with Workers.
type Batch struct {
	prog  *Program
	d     *Design
	clock string

	lanes []*Instance
	waves []*Waveform
	errs  []error

	// Workers, when >= 2, distributes per-lane cycle work across that many
	// goroutines instead of running the single-threaded fused sweep. The
	// results are byte-identical (lanes are independent); the fused path is
	// usually faster for small designs, the parallel path for large K on
	// expensive designs. Mutate only between Cycle calls.
	Workers int

	inPorts  []portRef // non-clock inputs, declaration order — the row layout
	outPorts []portRef
	recIdx   []int // arena index per recorded name, in Waveform Names() order
	inputSet map[string]bool
	cycle    int

	recRow     []uint64 // scratch row shared by all lanes (single-threaded path)
	sweepLanes []int    // scratch: lanes participating in the current fused sweep
	steps      []int    // scratch: per-lane delta counter of the current settle
	skip       []bool   // scratch: lanes masked out of the current cycle
}

// NewBatch allocates a batch of `lanes` fresh Instances of p, pooled in
// one contiguous signal arena, with the given clock input ("" for
// combinational designs). Each lane is reset and settled exactly like
// Program.NewInstance.
func NewBatch(p *Program, lanes int, clock string) (*Batch, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("sim: batch needs at least 1 lane, got %d", lanes)
	}
	b := &Batch{prog: p, d: p.Design(), clock: clock, inputSet: map[string]bool{}}
	n := len(b.d.sigs)
	slab := make([]uint64, lanes*n)
	var names []string
	for _, pt := range b.d.Inputs() {
		names = append(names, pt.Name)
		b.inputSet[pt.Name] = true
		if pt.Name == clock {
			continue
		}
		if idx, ok := b.d.byName[pt.Name]; ok {
			b.inPorts = append(b.inPorts, portRef{name: pt.Name, idx: idx})
		}
	}
	for _, pt := range b.d.Outputs() {
		names = append(names, pt.Name)
		if idx, ok := b.d.byName[pt.Name]; ok {
			b.outPorts = append(b.outPorts, portRef{name: pt.Name, idx: idx})
		}
	}
	for k := 0; k < lanes; k++ {
		inst, err := p.newInstanceArena(slab[k*n : (k+1)*n : (k+1)*n])
		if err != nil {
			return nil, err
		}
		b.lanes = append(b.lanes, inst)
		w := NewWaveform(names)
		b.waves = append(b.waves, w)
		if b.recIdx == nil {
			for _, rn := range w.Names() {
				idx := -1
				if i, ok := b.d.byName[rn]; ok {
					idx = i
				}
				b.recIdx = append(b.recIdx, idx)
			}
		}
	}
	b.errs = make([]error, lanes)
	b.recRow = make([]uint64, len(b.recIdx))
	b.steps = make([]int, lanes)
	b.skip = make([]bool, lanes)
	return b, nil
}

// Lanes returns the number of lanes.
func (b *Batch) Lanes() int { return len(b.lanes) }

// Lane returns lane k's Instance — a real Instance of the shared Program,
// so Snapshot, Restore, Get, GetMem and EnableCover all work per lane.
func (b *Batch) Lane(k int) *Instance { return b.lanes[k] }

// Wave returns lane k's recorded waveform (same names and layout as a
// standalone Harness waveform).
func (b *Batch) Wave(k int) *Waveform { return b.waves[k] }

// Err returns the error that made lane k inert, or nil while it is live.
func (b *Batch) Err(k int) error { return b.errs[k] }

// CycleCount returns the number of batch cycles driven so far.
func (b *Batch) CycleCount() int { return b.cycle }

// Ports returns the row stimulus layout: the non-clock inputs in
// declaration order. Cycle rows must align with this slice.
func (b *Batch) Ports() []PortInfo {
	out := make([]PortInfo, 0, len(b.inPorts))
	for _, pr := range b.inPorts {
		out = append(out, PortInfo{Name: pr.name, Width: b.d.sigs[pr.idx].width})
	}
	return out
}

// EnableCover enables structural coverage on every lane, excluding the
// batch clock from the toggle universe exactly like Harness.EnableCover.
func (b *Batch) EnableCover(opts CoverOptions) error {
	for k := range b.lanes {
		if err := b.EnableCoverLane(k, opts); err != nil {
			return err
		}
	}
	return nil
}

// EnableCoverLane enables (or, with a zero CoverOptions, disables)
// structural coverage on one lane, excluding the batch clock like
// Harness.EnableCover. The directed-stimulus scorer uses this to give
// each speculative lane a fresh per-round map.
func (b *Batch) EnableCoverLane(k int, opts CoverOptions) error {
	if opts.Any() && b.clock != "" {
		opts.ExcludeSignals = append(append([]string(nil), opts.ExcludeSignals...), b.clock)
	}
	return b.lanes[k].EnableCover(opts)
}

// Coverage returns lane k's accumulated coverage map, or nil when
// coverage is off.
func (b *Batch) Coverage(k int) *cover.Map { return b.lanes[k].Coverage() }

// Outputs samples lane k's top-level outputs without advancing time.
func (b *Batch) Outputs(k int) map[string]uint64 {
	s := b.lanes[k]
	outs := make(map[string]uint64, len(b.outPorts))
	for _, pr := range b.outPorts {
		outs[pr.name] = s.vals[pr.idx]
	}
	return outs
}

// OutputRow samples lane k's outputs into buf (grown as needed) in the
// output declaration order — the allocation-free counterpart of Outputs.
func (b *Batch) OutputRow(k int, buf []uint64) []uint64 {
	s := b.lanes[k]
	buf = buf[:0]
	for _, pr := range b.outPorts {
		buf = append(buf, s.vals[pr.idx])
	}
	return buf
}

// Cycle drives one cycle on every live lane: rows[k] holds lane k's
// stimulus aligned with Ports() (every non-clock input is applied). A nil
// rows[k] masks lane k out of this cycle entirely — it neither advances
// nor records. The protocol per lane is exactly Harness.Cycle: apply
// inputs, settle, sample exec coverage, pulse the clock with settles,
// sample state coverage, record the waveform row. Per-lane simulation
// errors do not fail the call; they park in Err(k).
func (b *Batch) Cycle(rows [][]uint64) error {
	if len(rows) != len(b.lanes) {
		return fmt.Errorf("sim: batch cycle: %d rows for %d lanes", len(rows), len(b.lanes))
	}
	for k, row := range rows {
		b.skip[k] = row == nil
		if row != nil && len(row) != len(b.inPorts) {
			return fmt.Errorf("sim: batch cycle: lane %d row has %d values, want %d", k, len(row), len(b.inPorts))
		}
	}
	if b.Workers >= 2 {
		return b.cycleParallel(rows, nil)
	}
	for k, s := range b.lanes {
		if b.errs[k] != nil || b.skip[k] {
			continue
		}
		row := rows[k]
		for i, pr := range b.inPorts {
			s.set(pr.idx, row[i])
		}
	}
	return b.finishCycle()
}

// CycleMaps drives one cycle with per-lane map stimulus under exactly the
// standalone Harness.Cycle application semantics: declared inputs present
// in the map are applied in declaration order, leftover keys in sorted
// order, absent inputs keep their values. A nil ins[k] masks lane k out
// of this cycle. Per-lane errors park in Err(k).
func (b *Batch) CycleMaps(ins []map[string]uint64) error {
	if len(ins) != len(b.lanes) {
		return fmt.Errorf("sim: batch cycle: %d stimulus maps for %d lanes", len(ins), len(b.lanes))
	}
	for k, in := range ins {
		b.skip[k] = in == nil
	}
	if b.Workers >= 2 {
		return b.cycleParallel(nil, ins)
	}
	for k := range b.lanes {
		if b.errs[k] != nil || b.skip[k] {
			continue
		}
		if err := b.applyMap(k, ins[k]); err != nil {
			b.errs[k] = err
		}
	}
	return b.finishCycle()
}

// applyMap replicates Harness.Cycle's stimulus application for one lane.
func (b *Batch) applyMap(k int, in map[string]uint64) error {
	s := b.lanes[k]
	applied := 0
	for _, p := range b.d.Inputs() {
		v, ok := in[p.Name]
		if !ok || p.Name == b.clock {
			continue
		}
		applied++
		if err := s.Set(p.Name, v); err != nil {
			return err
		}
	}
	expect := len(in)
	if b.clock != "" {
		if _, ok := in[b.clock]; ok {
			expect--
		}
	}
	if applied != expect {
		for _, name := range sortedExtraKeys(in, b.inputSet, b.clock) {
			if err := s.Set(name, in[name]); err != nil {
				return err
			}
		}
	}
	return nil
}

// finishCycle runs the shared post-apply protocol on the single-threaded
// fused path: settle, exec-coverage sample, clock pulse, state-coverage
// sample, waveform row.
func (b *Batch) finishCycle() error {
	b.settleAll()
	for k, s := range b.lanes {
		if b.errs[k] == nil && !b.skip[k] && s.cov != nil {
			s.coverSampleExec()
		}
	}
	if b.clock != "" {
		clockIdx, haveClock := b.d.byName[b.clock]
		if haveClock {
			for k, s := range b.lanes {
				if b.errs[k] == nil && !b.skip[k] {
					s.set(clockIdx, 1)
				}
			}
			b.settleAll()
			for k, s := range b.lanes {
				if b.errs[k] == nil && !b.skip[k] {
					s.set(clockIdx, 0)
				}
			}
			b.settleAll()
		} else {
			// Unknown clock name: fail each live lane with the Harness's
			// error surface for the same stimulus.
			for k := range b.lanes {
				if b.errs[k] == nil && !b.skip[k] {
					b.errs[k] = fmt.Errorf("sim: unknown signal %q", b.clock)
				}
			}
		}
	}
	for k, s := range b.lanes {
		if b.errs[k] != nil || b.skip[k] {
			continue
		}
		if s.cov != nil {
			s.coverSampleState()
		}
		for i, idx := range b.recIdx {
			if idx >= 0 {
				b.recRow[i] = s.vals[idx]
			} else {
				b.recRow[i] = 0
			}
		}
		b.waves[k].recordRow(b.recRow)
	}
	b.cycle++
	return nil
}

// settleAll settles every live, unmasked lane. On levelized programs the
// combinational phase is fused: one walk of the shared topological order
// per delta round runs every sweeping lane's closure at each position.
// The per-lane state machine — sweep if needed, then NBA commits, then
// sequential processes, loop until quiet, per-lane delta accounting
// against DeltaLimit — is exactly settleLevelized's; lanes that go quiet
// simply sit out later rounds. Non-levelized programs settle lane by
// lane (nothing to fuse in an event-queue walk).
func (b *Batch) settleAll() {
	if !b.prog.levelized {
		for k, s := range b.lanes {
			if b.errs[k] != nil || b.skip[k] {
				continue
			}
			if err := s.Settle(); err != nil {
				b.errs[k] = err
			}
		}
		return
	}
	code := b.prog.code
	for k := range b.steps {
		b.steps[k] = 0
	}
	for {
		// Combinational phase, fused across lanes.
		b.sweepLanes = b.sweepLanes[:0]
		for k, s := range b.lanes {
			if b.errs[k] != nil || b.skip[k] || !s.needSweep {
				continue
			}
			b.steps[k]++
			if b.steps[k] > s.DeltaLimit {
				b.errs[k] = fmt.Errorf("sim: combinational logic did not converge after %d deltas (oscillation)", s.DeltaLimit)
				continue
			}
			s.needSweep = false
			s.inSweep = true
			b.sweepLanes = append(b.sweepLanes, k)
		}
		if len(b.sweepLanes) > 0 {
			for i, pi := range code.order {
				fn := code.orderFns[i]
				for _, k := range b.sweepLanes {
					s := b.lanes[k]
					if b.errs[k] != nil || !s.dirty[pi] {
						continue
					}
					s.dirty[pi] = false
					s.running = pi
					err := fn(s)
					s.running = -1
					if err != nil {
						s.inSweep = false
						b.errs[k] = err
					}
				}
			}
			for _, k := range b.sweepLanes {
				s := b.lanes[k]
				if b.errs[k] != nil {
					continue
				}
				s.inSweep = false
				// Same defense in depth as settleLevelized: a re-dirtied
				// process means another sweep (and ultimately the delta
				// limit) instead of silent divergence.
				for _, pi := range code.order {
					if s.dirty[pi] {
						s.needSweep = true
						break
					}
				}
			}
		}
		// NBA / sequential phase, per lane (NBA commits take priority and
		// send the lane back through the sweep check, exactly like the
		// standalone loop's continue).
		work := false
		for k, s := range b.lanes {
			if b.errs[k] != nil || b.skip[k] {
				continue
			}
			if len(s.nba) > 0 {
				writes := s.nba
				s.nba = nil
				for _, w := range writes {
					s.commitNBA(w)
				}
				work = true
				continue
			}
			if len(s.seqQueue) > 0 {
				procs := s.seqQueue
				s.seqQueue = nil
				for _, pi := range procs {
					s.inSeq[pi] = false
					if err := s.runProc(s.d.procs[pi]); err != nil {
						b.errs[k] = err
						break
					}
				}
				work = true
				continue
			}
			if s.needSweep {
				work = true
			}
		}
		if !work {
			return
		}
	}
}

// cycleParallel is the Workers>=2 path: each goroutine runs complete,
// independent lanes through the standalone per-lane protocol (apply,
// Settle, coverage samples, clock pulse, record). Lanes never share
// mutable state, so the only coordination is the WaitGroup; results are
// byte-identical to the fused path.
func (b *Batch) cycleParallel(rows [][]uint64, ins []map[string]uint64) error {
	workers := b.Workers
	if workers > len(b.lanes) {
		workers = len(b.lanes)
	}
	clockIdx, haveClock := -1, false
	if b.clock != "" {
		clockIdx, haveClock = b.d.byName[b.clock]
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			row := make([]uint64, len(b.recIdx))
			for k := range next {
				b.laneCycle(k, rows, ins, clockIdx, haveClock, row)
			}
		}()
	}
	for k := range b.lanes {
		if b.errs[k] == nil && !b.skip[k] {
			next <- k
		}
	}
	close(next)
	wg.Wait()
	b.cycle++
	return nil
}

// laneCycle runs one lane's full cycle (parallel path). recRow is the
// calling worker's private scratch.
func (b *Batch) laneCycle(k int, rows [][]uint64, ins []map[string]uint64, clockIdx int, haveClock bool, recRow []uint64) {
	s := b.lanes[k]
	if rows != nil {
		for i, pr := range b.inPorts {
			s.set(pr.idx, rows[k][i])
		}
	} else if err := b.applyMap(k, ins[k]); err != nil {
		b.errs[k] = err
		return
	}
	if err := s.Settle(); err != nil {
		b.errs[k] = err
		return
	}
	if s.cov != nil {
		s.coverSampleExec()
	}
	if b.clock != "" {
		if !haveClock {
			b.errs[k] = fmt.Errorf("sim: unknown signal %q", b.clock)
			return
		}
		s.set(clockIdx, 1)
		if err := s.Settle(); err != nil {
			b.errs[k] = err
			return
		}
		s.set(clockIdx, 0)
		if err := s.Settle(); err != nil {
			b.errs[k] = err
			return
		}
	}
	if s.cov != nil {
		s.coverSampleState()
	}
	for i, idx := range b.recIdx {
		if idx >= 0 {
			recRow[i] = s.vals[idx]
		} else {
			recRow[i] = 0
		}
	}
	b.waves[k].recordRow(recRow)
}

// ApplyReset drives the conventional reset sequence on every lane —
// assert for `cycles` clock edges, then deassert and settle — mirroring
// Harness.ApplyReset (including its "sim: reset:" error wrapping for
// failures inside the reset cycles). Designs without a recognized reset
// input are untouched.
func (b *Batch) ApplyReset(cycles int) error {
	name, activeLow := FindReset(b.d)
	if name == "" {
		return nil
	}
	assert, deassert := uint64(1), uint64(0)
	if activeLow {
		assert, deassert = 0, 1
	}
	before := make([]bool, len(b.lanes))
	for k := range b.lanes {
		before[k] = b.errs[k] != nil
	}
	in := map[string]uint64{name: assert}
	ins := make([]map[string]uint64, len(b.lanes))
	for k := range ins {
		ins[k] = in
	}
	for i := 0; i < cycles; i++ {
		if err := b.CycleMaps(ins); err != nil {
			return err
		}
	}
	for k := range b.lanes {
		if !before[k] && b.errs[k] != nil {
			b.errs[k] = fmt.Errorf("sim: reset: %w", b.errs[k])
		}
	}
	for k, s := range b.lanes {
		if b.errs[k] != nil {
			continue
		}
		if err := s.Set(name, deassert); err != nil {
			b.errs[k] = err
			continue
		}
	}
	b.settleAllPostReset()
	return nil
}

// settleAllPostReset settles the deassert edge without the cycle masking
// scratch state (ApplyReset runs outside a cycle).
func (b *Batch) settleAllPostReset() {
	for k := range b.skip {
		b.skip[k] = false
	}
	b.settleAll()
}
