package rtlgen

// Bit-parallel differential gate, the fifth oracle. DiffBatchLanes pins
// the fused batch scheduler to standalone harnesses; DiffBitSim pins the
// bit-parallel lane simulator (internal/psim) to both: K lanes evaluated
// one-bit-per-word over the blasted cycle AIG must be byte-identical —
// per-cycle outputs, waveform, VCD rendering and final internal state
// (memories included) — to a sim.Batch and to K standalone Harness runs
// under the same per-lane stimulus streams. Lanes get different stream
// lengths so mid-run retirement (frozen state, truncated waveform) is on
// the differential path too. Designs outside the bit-parallel subset
// exercise psim's sim.Batch fallback instead — the gate then checks the
// fallback is transparent, so "one API, always correct" is itself under
// test.

import (
	"bytes"
	"fmt"
	"math/rand"

	"uvllm/internal/psim"
	"uvllm/internal/sim"
)

// DiffBitSim runs `lanes` lanes of src, lane k for cycles-(k%3) cycles
// under its own seeded stimulus stream (seed+lane), through psim.Lanes, a
// sim.Batch and standalone harnesses, and compares every observable per
// lane. Sources that do not elaborate are vacuously fine (DiffBackends
// owns construction errors). It reports whether the bit-parallel path was
// taken; a non-nil error is a genuine divergence.
func DiffBitSim(src, top, clock string, lanes, cycles int, seed int64) (bool, error) {
	p, err := diffCache.Compile(src, top, sim.BackendCompiled)
	if err != nil {
		return false, nil
	}
	l, err := psim.NewLanes(p, lanes, clock)
	if err != nil {
		return false, fmt.Errorf("psim construction: %v", err)
	}
	b, err := sim.NewBatch(p, lanes, clock)
	if err != nil {
		return false, fmt.Errorf("batch construction: %v", err)
	}
	refs := make([]*sim.Harness, lanes)
	refErrs := make([]error, lanes)
	for k := range refs {
		inst, err := p.NewInstance()
		if err != nil {
			return false, fmt.Errorf("lane %d standalone instance: %v", k, err)
		}
		refs[k] = sim.NewHarness(inst, clock)
	}

	if err := l.ApplyReset(2); err != nil {
		return false, fmt.Errorf("psim reset: %v", err)
	}
	if err := b.ApplyReset(2); err != nil {
		return false, fmt.Errorf("batch reset: %v", err)
	}
	for k, h := range refs {
		refErrs[k] = h.ApplyReset(2)
		if !errEqual(refErrs[k], b.Err(k)) {
			return false, fmt.Errorf("lane %d reset diverged: batch=%v standalone=%v", k, b.Err(k), refErrs[k])
		}
		if l.BitParallel() && refErrs[k] != nil {
			// Bit-parallel lanes cannot error: a design whose harness run
			// errors must have been rejected into the fallback.
			return false, fmt.Errorf("lane %d reset diverged: psim=<nil> standalone=%v", k, refErrs[k])
		}
	}

	// Per-lane stimulus streams: deterministic per lane, row-layout (every
	// port driven each cycle), with staggered lengths so the longer lanes
	// keep running after the shorter ones retire.
	ports := l.Ports()
	rngs := make([]*rand.Rand, lanes)
	length := make([]int, lanes)
	for k := range rngs {
		rngs[k] = rand.New(rand.NewSource(seed + int64(k)))
		length[k] = cycles - k%3
		if length[k] < 1 {
			length[k] = 1
		}
	}
	rows := make([][]uint64, lanes)
	ins := make([]map[string]uint64, lanes)
	for cyc := 0; cyc < cycles; cyc++ {
		for k := range rows {
			rows[k], ins[k] = nil, nil
			if refErrs[k] != nil || cyc >= length[k] {
				continue // dead or retired lane: masked everywhere
			}
			row := make([]uint64, len(ports))
			in := make(map[string]uint64, len(ports))
			for i, pt := range ports {
				row[i] = rngs[k].Uint64() & maskW(pt.Width)
				in[pt.Name] = row[i]
			}
			rows[k], ins[k] = row, in
		}
		if err := l.Cycle(rows); err != nil {
			return false, fmt.Errorf("psim cycle %d: %v", cyc, err)
		}
		if err := b.Cycle(rows); err != nil {
			return false, fmt.Errorf("batch cycle %d: %v", cyc, err)
		}
		for k, h := range refs {
			if ins[k] == nil {
				continue
			}
			out, cerr := h.Cycle(ins[k])
			refErrs[k] = cerr
			if !errEqual(cerr, b.Err(k)) {
				return false, fmt.Errorf("lane %d cycle %d diverged: batch=%v standalone=%v", k, cyc, b.Err(k), cerr)
			}
			if cerr != nil {
				if l.BitParallel() {
					return false, fmt.Errorf("lane %d cycle %d diverged: psim=<nil> standalone=%v", k, cyc, cerr)
				}
				continue
			}
			gotP, gotB := l.Outputs(k), b.Outputs(k)
			for sigName, v := range out {
				if gotP[sigName] != v {
					return false, fmt.Errorf("lane %d cycle %d signal %s: psim=0x%x standalone=0x%x",
						k, cyc, sigName, gotP[sigName], v)
				}
				if gotB[sigName] != v {
					return false, fmt.Errorf("lane %d cycle %d signal %s: batch=0x%x standalone=0x%x",
						k, cyc, sigName, gotB[sigName], v)
				}
			}
		}
	}

	d := p.Design()
	for k, h := range refs {
		pw, bw, hw := l.Wave(k), b.Wave(k), h.Wave
		if pw.Cycles() != hw.Cycles() || bw.Cycles() != hw.Cycles() {
			return false, fmt.Errorf("lane %d waveform length: psim=%d batch=%d standalone=%d",
				k, pw.Cycles(), bw.Cycles(), hw.Cycles())
		}
		for _, n := range hw.Names() {
			for cyc := 0; cyc < hw.Cycles(); cyc++ {
				if pw.At(n, cyc) != hw.At(n, cyc) {
					return false, fmt.Errorf("lane %d waveform %s@%d: psim=0x%x standalone=0x%x",
						k, n, cyc, pw.At(n, cyc), hw.At(n, cyc))
				}
				if bw.At(n, cyc) != hw.At(n, cyc) {
					return false, fmt.Errorf("lane %d waveform %s@%d: batch=0x%x standalone=0x%x",
						k, n, cyc, bw.At(n, cyc), hw.At(n, cyc))
				}
			}
		}
		var vcdP, vcdH bytes.Buffer
		if err := sim.WriteVCD(&vcdP, pw, d, top); err != nil {
			return false, fmt.Errorf("lane %d vcd: %v", k, err)
		}
		if err := sim.WriteVCD(&vcdH, hw, h.Sim.Design(), top); err != nil {
			return false, fmt.Errorf("lane %d vcd: %v", k, err)
		}
		if !bytes.Equal(vcdP.Bytes(), vcdH.Bytes()) {
			return false, fmt.Errorf("lane %d VCD output differs", k)
		}
		if refErrs[k] != nil {
			continue // dead lanes: trace prefix and error already compared
		}
		for i := 0; i < d.NumSignals(); i++ {
			sv := d.Signal(i)
			if l.Get(k, sv.Name) != h.Sim.Get(sv.Name) {
				return false, fmt.Errorf("lane %d internal signal %s: psim=0x%x standalone=0x%x",
					k, sv.Name, l.Get(k, sv.Name), h.Sim.Get(sv.Name))
			}
			if sv.IsMem {
				for w := 0; w < sv.Depth; w++ {
					if l.GetMem(k, sv.Name, w) != h.Sim.GetMem(sv.Name, w) {
						return false, fmt.Errorf("lane %d memory %s[%d]: psim=0x%x standalone=0x%x",
							k, sv.Name, w, l.GetMem(k, sv.Name, w), h.Sim.GetMem(sv.Name, w))
					}
				}
			}
		}
	}
	return l.BitParallel(), nil
}
