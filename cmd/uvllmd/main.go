// Command uvllmd is the long-running verification-as-a-service front-end:
// an HTTP/JSON server over the UVLLM pipeline. Clients submit designs or
// repair jobs against the benchmark modules, poll status, and stream
// per-iteration progress; a bounded worker pool executes jobs through the
// same service.Execute path as cmd/uvllm, so a job submitted over HTTP
// produces exactly the verdict the CLI would print.
//
//	uvllmd -addr :8080                      # serve
//	uvllmd -addr :8080 -cache-dir /var/cache/uvllm   # + persistent compile cache
//
//	curl -s localhost:8080/v1/modules                # catalog
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"module":"adder_8bit","inject":"FuncLogic","tenant":"alice"}'
//	curl -s localhost:8080/v1/jobs/job-1             # status + result
//	curl -sN localhost:8080/v1/jobs/job-1/events     # SSE progress stream
//	curl -s localhost:8080/v1/metrics                # queue depth, latency
//	                                                 # percentiles, cache hit rates
//
// The queue applies backpressure (429 + Retry-After when full) and fair
// round-robin scheduling across tenants. SIGTERM/SIGINT starts a graceful
// drain: new submissions get 503, queued jobs end in the "drained" state,
// in-flight jobs finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uvllm/internal/obs"
	"uvllm/internal/service"
	"uvllm/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		queue    = flag.Int("queue", service.DefaultQueueLimit, "job queue bound: submissions beyond this get 429 + Retry-After")
		cacheDir = flag.String("cache-dir", "", "directory for the persistent compile-cache tier (empty = memory only)")
		cacheMB  = flag.Int64("cache-budget-mb", 0, "LRU byte budget for the disk cache tier in MiB (0 = unbounded)")
		drainSec = flag.Int("drain-timeout", 60, "seconds to wait for in-flight jobs on SIGTERM before exiting anyway")
		ttlSec   = flag.Int("result-ttl", 0, "seconds a finished job's result stays addressable before GC (0 = forever)")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/")
		slowSpan = flag.Duration("slowspan", 0, "trace every job and log spans at least this long (0 = off), e.g. -slowspan 250ms")
	)
	knobs := service.Bind(flag.CommandLine, service.FlagAll)
	flag.Parse()
	opts, err := knobs.Options()
	if err != nil {
		fatalf("%v", err)
	}
	if *queue < 1 {
		fatalf("-queue must be >= 1, got %d", *queue)
	}
	if *drainSec < 0 {
		fatalf("-drain-timeout must be >= 0, got %d", *drainSec)
	}
	if *cacheMB < 0 {
		fatalf("-cache-budget-mb must be >= 0, got %d", *cacheMB)
	}
	if *ttlSec < 0 {
		fatalf("-result-ttl must be >= 0, got %d", *ttlSec)
	}
	if *slowSpan < 0 {
		fatalf("-slowspan must be >= 0, got %v", *slowSpan)
	}

	svc := service.DefaultServices()
	if *cacheDir != "" {
		disk, err := sim.NewDiskCache(*cacheDir)
		if err != nil {
			fatalf("open cache dir: %v", err)
		}
		if *cacheMB > 0 {
			disk.SetBudget(*cacheMB << 20)
		}
		svc.Cache.AttachDisk(disk)
		if n := svc.Cache.WarmFromDisk(); n > 0 {
			log.Printf("uvllmd: warmed %d compiled designs from %s", n, *cacheDir)
		}
	}

	srv := service.NewServer(service.RunnerConfig{
		Workers:    opts.Workers,
		QueueLimit: *queue,
		Services:   svc,
		Defaults:   opts,
		ResultTTL:  time.Duration(*ttlSec) * time.Second,
		SlowSpan:   *slowSpan,
		OnSlowSpan: func(jobID string, sp obs.SpanInfo) {
			log.Printf("uvllmd: slow span: job=%s span=%s dur=%s", jobID, sp.Name, sp.Dur.Round(time.Microsecond))
		},
	})
	var handler http.Handler = srv
	if *pprofOn {
		// The service API keeps its own mux; pprof mounts beside it so
		// profiling never shadows an API route.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		log.Printf("uvllmd: pprof enabled at %s/debug/pprof/", *addr)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("uvllmd: %v: draining (in-flight jobs finish, queued jobs end drained, new submissions get 503)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSec)*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("uvllmd: drain incomplete: %v", err)
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		httpSrv.Shutdown(shutCtx)
	}()

	log.Printf("uvllmd: serving on %s (workers=%d queue=%d backend=%s)",
		*addr, srv.Runner().Workers(), *queue, opts.SimBackend())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	<-done
	log.Printf("uvllmd: drained, bye")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "uvllmd: "+format+"\n", args...)
	os.Exit(2)
}
