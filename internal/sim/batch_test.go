package sim

// Batch tests: per-lane byte-identity against the standalone Harness
// (traces, VCD bytes, encoded coverage, final state, errors), per-lane
// snapshot/restore, lane masking, error isolation, and — under -race —
// the Workers path plus concurrent Batches of one shared Program.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// batchStim builds deterministic per-lane stimulus for memDUT.
func batchStim(lane, cycle int) map[string]uint64 {
	return map[string]uint64{
		"rst_n": 1,
		"we":    uint64((cycle + lane) % 2),
		"addr":  uint64((cycle*7 + lane*3) % 16),
		"din":   uint64(lane*41+cycle*13) & 0xff,
	}
}

// harnessRef runs one standalone harness lane of memDUT and returns the
// harness (for wave/coverage/final-state inspection) and per-cycle
// outputs.
func harnessRef(t *testing.T, p *Program, lane, cycles int, withCover bool) (*Harness, []map[string]uint64) {
	t.Helper()
	inst, err := p.NewInstance()
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(inst, "clk")
	if withCover {
		if err := h.EnableCover(CoverAll()); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	var outs []map[string]uint64
	for c := 0; c < cycles; c++ {
		o, err := h.Cycle(batchStim(lane, c))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, o)
	}
	return h, outs
}

// wavesEqual compares two waveforms cell by cell.
func wavesEqual(a, b *Waveform) error {
	if a.Cycles() != b.Cycles() {
		return fmt.Errorf("cycles %d vs %d", a.Cycles(), b.Cycles())
	}
	for _, n := range a.Names() {
		for c := 0; c < a.Cycles(); c++ {
			if a.At(n, c) != b.At(n, c) {
				return fmt.Errorf("%s@%d: 0x%x vs 0x%x", n, c, a.At(n, c), b.At(n, c))
			}
		}
	}
	return nil
}

// checkLaneIdentity asserts lane k of the batch matches its standalone
// harness reference on every observable.
func checkLaneIdentity(t *testing.T, b *Batch, k int, h *Harness, refOuts []map[string]uint64, gotOuts []map[string]uint64, top string) {
	t.Helper()
	if err := b.Err(k); err != nil {
		t.Fatalf("lane %d errored: %v", k, err)
	}
	for c, want := range refOuts {
		for n, v := range want {
			if gotOuts[c][n] != v {
				t.Fatalf("lane %d cycle %d %s: batch=0x%x harness=0x%x", k, c, n, gotOuts[c][n], v)
			}
		}
	}
	if err := wavesEqual(h.Wave, b.Wave(k)); err != nil {
		t.Fatalf("lane %d waveform: %v", k, err)
	}
	var vb, vh bytes.Buffer
	if err := WriteVCD(&vb, b.Wave(k), b.Lane(k).Design(), top); err != nil {
		t.Fatal(err)
	}
	if err := WriteVCD(&vh, h.Wave, h.Sim.Design(), top); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vb.Bytes(), vh.Bytes()) {
		t.Fatalf("lane %d VCD bytes differ", k)
	}
	if hc, bc := h.Coverage(), b.Coverage(k); (hc == nil) != (bc == nil) {
		t.Fatalf("lane %d coverage enabled mismatch", k)
	} else if hc != nil && !bytes.Equal(hc.Encode(), bc.Encode()) {
		t.Fatalf("lane %d coverage maps differ:\n--- batch ---\n%s--- harness ---\n%s", k, bc.Encode(), hc.Encode())
	}
	for _, n := range h.Sim.Design().SignalNames() {
		if h.Sim.Get(n) != b.Lane(k).Get(n) {
			t.Fatalf("lane %d final %s: batch=0x%x harness=0x%x", k, n, b.Lane(k).Get(n), h.Sim.Get(n))
		}
	}
}

// runBatch drives a batch over the shared stimulus via the row API and
// returns per-lane per-cycle outputs.
func runBatch(t *testing.T, b *Batch, cycles int) [][]map[string]uint64 {
	t.Helper()
	ports := b.Ports()
	if err := b.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	outs := make([][]map[string]uint64, b.Lanes())
	rows := make([][]uint64, b.Lanes())
	for k := range rows {
		rows[k] = make([]uint64, len(ports))
	}
	for c := 0; c < cycles; c++ {
		for k := range rows {
			in := batchStim(k, c)
			for i, pt := range ports {
				rows[k][i] = in[pt.Name]
			}
		}
		if err := b.Cycle(rows); err != nil {
			t.Fatal(err)
		}
		for k := range rows {
			outs[k] = append(outs[k], b.Outputs(k))
		}
	}
	return outs
}

// TestBatchMatchesHarness is the core byte-identity gate: 8 lanes of a
// memory-bearing sequential design in one Batch (row stimulus, coverage
// on) against 8 standalone Harness runs, on both backends.
func TestBatchMatchesHarness(t *testing.T) {
	const lanes, cycles = 8, 40
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			p, err := CompileSource(memDUT, "memdut", be)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewBatch(p, lanes, "clk")
			if err != nil {
				t.Fatal(err)
			}
			if err := b.EnableCover(CoverAll()); err != nil {
				t.Fatal(err)
			}
			outs := runBatch(t, b, cycles)
			for k := 0; k < lanes; k++ {
				h, refOuts := harnessRef(t, p, k, cycles, true)
				checkLaneIdentity(t, b, k, h, refOuts, outs[k], "memdut")
			}
		})
	}
}

// TestBatchCycleMapsMatchesHarness drives the map API with partial maps
// (absent ports keep their values — the Harness semantics ApplyReset and
// the UVM layer rely on).
func TestBatchCycleMapsMatchesHarness(t *testing.T) {
	const lanes, cycles = 4, 24
	p, err := CompileSource(memDUT, "memdut", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(p, lanes, "clk")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	stim := func(lane, c int) map[string]uint64 {
		in := map[string]uint64{"rst_n": 1, "din": uint64(lane*17 + c)}
		if c%3 == 0 {
			in["we"] = uint64(c % 2)
			in["addr"] = uint64((lane + c) % 16)
		}
		return in
	}
	ins := make([]map[string]uint64, lanes)
	for c := 0; c < cycles; c++ {
		for k := range ins {
			ins[k] = stim(k, c)
		}
		if err := b.CycleMaps(ins); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < lanes; k++ {
		inst, err := p.NewInstance()
		if err != nil {
			t.Fatal(err)
		}
		h := NewHarness(inst, "clk")
		if err := h.ApplyReset(2); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < cycles; c++ {
			if _, err := h.Cycle(stim(k, c)); err != nil {
				t.Fatal(err)
			}
		}
		if err := wavesEqual(h.Wave, b.Wave(k)); err != nil {
			t.Fatalf("lane %d: %v", k, err)
		}
	}
}

// TestBatchLaneMasking checks a nil row freezes a lane — no state
// advance, no waveform row — while the other lanes proceed.
func TestBatchLaneMasking(t *testing.T) {
	p, err := CompileSource(memDUT, "memdut", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(p, 2, "clk")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	ports := b.Ports()
	row := make([]uint64, len(ports))
	in := batchStim(0, 5)
	for i, pt := range ports {
		row[i] = in[pt.Name]
	}
	before := b.Lane(1).Get("acc")
	if err := b.Cycle([][]uint64{row, nil}); err != nil {
		t.Fatal(err)
	}
	if got := b.Wave(1).Cycles(); got != 2 {
		t.Fatalf("masked lane recorded %d cycles, want 2 (reset only)", got)
	}
	if b.Wave(0).Cycles() != 3 {
		t.Fatal("live lane did not record")
	}
	if b.Lane(1).Get("acc") != before {
		t.Fatal("masked lane advanced")
	}
}

// oscDUT oscillates combinationally whenever en is high; cnt keeps the
// sequential side alive for the surviving lanes.
const oscDUT = `module osc(input clk, input en, output w, output reg [3:0] cnt);
  assign w = en ? ~w : 1'b0;
  always @(posedge clk) cnt <= cnt + 1;
endmodule`

// TestBatchLaneErrorIsolation drives one lane into combinational
// oscillation: it must die with exactly the standalone harness's error
// while the other lanes keep cycling and recording.
func TestBatchLaneErrorIsolation(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			p, err := CompileSource(oscDUT, "osc", be)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewBatch(p, 3, "clk")
			if err != nil {
				t.Fatal(err)
			}
			ports := b.Ports()
			mkRow := func(en uint64) []uint64 {
				row := make([]uint64, len(ports))
				for i, pt := range ports {
					if pt.Name == "en" {
						row[i] = en
					}
				}
				return row
			}
			const badLane, badCycle, cycles = 1, 3, 8
			for c := 0; c < cycles; c++ {
				rows := [][]uint64{mkRow(0), mkRow(0), mkRow(0)}
				if c == badCycle {
					rows[badLane] = mkRow(1)
				}
				if err := b.Cycle(rows); err != nil {
					t.Fatal(err)
				}
			}
			if b.Err(0) != nil || b.Err(2) != nil {
				t.Fatalf("healthy lanes errored: %v / %v", b.Err(0), b.Err(2))
			}
			if b.Err(badLane) == nil {
				t.Fatal("oscillating lane did not error")
			}
			if got := b.Wave(badLane).Cycles(); got != badCycle {
				t.Fatalf("dead lane recorded %d cycles, want %d", got, badCycle)
			}
			if got := b.Wave(0).Cycles(); got != cycles {
				t.Fatalf("live lane recorded %d cycles, want %d", got, cycles)
			}
			if got := b.Lane(0).Get("cnt"); got != cycles {
				t.Fatalf("live lane cnt=%d, want %d", got, cycles)
			}
			// Standalone reference: same stimulus, same error, same cycle.
			inst, err := p.NewInstance()
			if err != nil {
				t.Fatal(err)
			}
			h := NewHarness(inst, "clk")
			var refErr error
			for c := 0; c <= badCycle; c++ {
				en := uint64(0)
				if c == badCycle {
					en = 1
				}
				if _, refErr = h.Cycle(map[string]uint64{"en": en}); refErr != nil {
					break
				}
			}
			if refErr == nil {
				t.Fatal("standalone reference did not oscillate")
			}
			if b.Err(badLane).Error() != refErr.Error() {
				t.Fatalf("error mismatch:\n batch:    %v\n harness:  %v", b.Err(badLane), refErr)
			}
		})
	}
}

// TestBatchPerLaneSnapshotRestore rewinds one lane mid-batch and checks
// the replayed trajectory matches, while the untouched lanes' histories
// are unaffected.
func TestBatchPerLaneSnapshotRestore(t *testing.T) {
	const lanes, half = 4, 10
	p, err := CompileSource(memDUT, "memdut", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(p, lanes, "clk")
	if err != nil {
		t.Fatal(err)
	}
	runBatch(t, b, half)
	sn := b.Lane(2).Snapshot()
	mid := stateFingerprint(b.Lane(2))

	ports := b.Ports()
	rows := make([][]uint64, lanes)
	for k := range rows {
		rows[k] = make([]uint64, len(ports))
	}
	drive := func(c int) {
		for k := range rows {
			in := batchStim(k, c)
			for i, pt := range ports {
				rows[k][i] = in[pt.Name]
			}
		}
		if err := b.Cycle(rows); err != nil {
			t.Fatal(err)
		}
	}
	var firstRun []string
	for c := half; c < 2*half; c++ {
		drive(c)
		firstRun = append(firstRun, stateFingerprint(b.Lane(2)))
	}
	if err := b.Lane(2).Restore(sn); err != nil {
		t.Fatal(err)
	}
	if got := stateFingerprint(b.Lane(2)); got != mid {
		t.Fatal("restore did not rewind the lane")
	}
	other := stateFingerprint(b.Lane(0))
	for c := half; c < 2*half; c++ {
		drive(c)
		if got := stateFingerprint(b.Lane(2)); got != firstRun[c-half] {
			t.Fatalf("cycle %d diverged after in-batch restore", c)
		}
	}
	if stateFingerprint(b.Lane(0)) == other {
		t.Fatal("lane 0 did not advance during the replay")
	}
}

// TestBatchWorkersByteIdentical is the -race gate for in-batch lane
// parallelism: the Workers path must reproduce the fused single-threaded
// result bit for bit (waveforms and coverage), and concurrent Batches of
// one shared Program must not interfere.
func TestBatchWorkersByteIdentical(t *testing.T) {
	const lanes, cycles = 8, 30
	p, err := CompileSource(memDUT, "memdut", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Batch {
		b, err := NewBatch(p, lanes, "clk")
		if err != nil {
			t.Fatal(err)
		}
		b.Workers = workers
		if err := b.EnableCover(CoverAll()); err != nil {
			t.Fatal(err)
		}
		runBatch(t, b, cycles)
		return b
	}
	ref := run(0)
	var wg sync.WaitGroup
	got := make([]*Batch, 3)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = run(2 + i) // 2, 3, 4 workers, concurrently
		}(i)
	}
	wg.Wait()
	for i, b := range got {
		for k := 0; k < lanes; k++ {
			if err := wavesEqual(ref.Wave(k), b.Wave(k)); err != nil {
				t.Fatalf("workers batch %d lane %d waveform: %v", i, k, err)
			}
			if !bytes.Equal(ref.Coverage(k).Encode(), b.Coverage(k).Encode()) {
				t.Fatalf("workers batch %d lane %d coverage differs", i, k)
			}
		}
	}
}

// TestBatchRejectsBadShapes pins the usage-error surface.
func TestBatchRejectsBadShapes(t *testing.T) {
	p, err := CompileSource(memDUT, "memdut", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatch(p, 0, "clk"); err == nil {
		t.Fatal("0-lane batch accepted")
	}
	b, err := NewBatch(p, 2, "clk")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Cycle([][]uint64{nil}); err == nil {
		t.Fatal("wrong row count accepted")
	}
	if err := b.Cycle([][]uint64{{1}, {2}}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := b.CycleMaps([]map[string]uint64{nil}); err == nil {
		t.Fatal("wrong map count accepted")
	}
}

// TestBatchRandomizedAgainstHarness fuzzes the identity over random
// per-lane streams on both backends (short, deterministic).
func TestBatchRandomizedAgainstHarness(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			p, err := CompileSource(coverFSMSrc, "cfsm", be)
			if err != nil {
				t.Fatal(err)
			}
			const lanes, cycles = 6, 50
			b, err := NewBatch(p, lanes, "clk")
			if err != nil {
				t.Fatal(err)
			}
			if err := b.EnableCover(CoverAll()); err != nil {
				t.Fatal(err)
			}
			if err := b.ApplyReset(2); err != nil {
				t.Fatal(err)
			}
			stim := func(lane int) []map[string]uint64 {
				rng := rand.New(rand.NewSource(int64(1000 + lane)))
				out := make([]map[string]uint64, cycles)
				for c := range out {
					out[c] = map[string]uint64{"rst_n": 1, "in": rng.Uint64() & 1}
				}
				return out
			}
			all := make([][]map[string]uint64, lanes)
			for k := range all {
				all[k] = stim(k)
			}
			ins := make([]map[string]uint64, lanes)
			for c := 0; c < cycles; c++ {
				for k := range ins {
					ins[k] = all[k][c]
				}
				if err := b.CycleMaps(ins); err != nil {
					t.Fatal(err)
				}
			}
			for k := 0; k < lanes; k++ {
				inst, err := p.NewInstance()
				if err != nil {
					t.Fatal(err)
				}
				h := NewHarness(inst, "clk")
				if err := h.EnableCover(CoverAll()); err != nil {
					t.Fatal(err)
				}
				if err := h.ApplyReset(2); err != nil {
					t.Fatal(err)
				}
				for c := 0; c < cycles; c++ {
					if _, err := h.Cycle(all[k][c]); err != nil {
						t.Fatal(err)
					}
				}
				if err := wavesEqual(h.Wave, b.Wave(k)); err != nil {
					t.Fatalf("lane %d: %v", k, err)
				}
				if !bytes.Equal(h.Coverage().Encode(), b.Coverage(k).Encode()) {
					t.Fatalf("lane %d coverage differs", k)
				}
			}
		})
	}
}
