// Command experiments regenerates every table and figure of the UVLLM
// paper's evaluation section from the 331-instance benchmark:
//
//	experiments -all        # everything (default)
//	experiments -fig5       # syntax HR vs FR comparison
//	experiments -fig6       # functional HR vs FR comparison
//	experiments -fig7       # 27x9 fix-rate heat map
//	experiments -table2     # segmented stage contributions + MEIC speedup
//	experiments -table3     # pair-vs-complete ablation
//	experiments -ablation   # extension ablations (rollback, localization)
//	experiments -formal     # bounded-equivalence study (formal engine)
//
// All numbers are deterministic (seeded) and independent of -workers; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison. With -v
// the run also prints the amortization counters of the shared compile
// cache and golden-trace memo.
package main

import (
	"flag"
	"fmt"
	"os"

	"uvllm/internal/exp"
	"uvllm/internal/obs"
	"uvllm/internal/service"
)

func main() {
	var (
		verbose  = flag.Bool("v", false, "print compile-cache and golden-trace-memo statistics")
		fig5     = flag.Bool("fig5", false, "print Fig. 5")
		fig6     = flag.Bool("fig6", false, "print Fig. 6")
		fig7     = flag.Bool("fig7", false, "print Fig. 7")
		table2   = flag.Bool("table2", false, "print Table II")
		table3   = flag.Bool("table3", false, "print Table III")
		ablation = flag.Bool("ablation", false, "print extension ablations")
		passk    = flag.Bool("passk", false, "print the pass@k multi-seed study")
		cov      = flag.Bool("cover", false, "print the random-vs-directed structural coverage study")
		form     = flag.Bool("formal", false, "print the bounded-equivalence study (formal engine over the 27 modules)")
		batch    = flag.Bool("batch", false, "print the batch-vs-sequential per-lane amortization study")
		bitlanes = flag.Bool("bitlanes", false, "print the 64-lane bit-parallel amortization study (psim vs batch vs sequential)")
		all      = flag.Bool("all", false, "print everything")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON of the study sections to this file (load at chrome://tracing)")
	)
	knobs := service.Bind(flag.CommandLine, service.FlagBackend|service.FlagWorkers|service.FlagLanes)
	flag.Parse()
	opts, err := knobs.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	cfg := opts.Exp(exp.Config{})
	sess := exp.SharedSession(cfg.Backend)
	sess.Workers = cfg.Workers
	lanes := opts.Lanes
	if !*fig5 && !*fig6 && !*fig7 && !*table2 && !*table3 && !*ablation && !*passk && !*cov && !*form && !*batch && !*bitlanes {
		*all = true
	}

	// When -trace is set, every study section runs under a child span of
	// one root span, so the resulting Chrome trace shows where the
	// regeneration time goes. With tracing off, root is nil and every
	// section() call degrades to the nil-span no-op path.
	var tracer *obs.Tracer
	var root *obs.Span
	if *traceOut != "" {
		tracer = obs.NewTracer("experiments")
		root = tracer.Start("experiments")
	}

	if *all {
		section(root, "full_report", func() { fmt.Print(sess.FullReport()) })
		section(root, "ablations", func() { printAblations(sess) })
		section(root, "coverage", func() { printCoverage(sess) })
		section(root, "batch", func() { printBatch(sess, lanes) })
		section(root, "bitlanes", func() { printBitLanes(sess) })
		section(root, "formal", func() { printFormal(sess, *verbose) })
		printStats(sess, *verbose)
		finishTrace(*traceOut, tracer, root)
		return
	}
	recs := sess.Records()
	if *fig5 {
		section(root, "fig5", func() { fmt.Print(exp.FormatFig5(exp.Fig5(recs))) })
	}
	if *fig6 {
		section(root, "fig6", func() { fmt.Print(exp.FormatFig6(exp.Fig6(recs))) })
	}
	if *fig7 {
		section(root, "fig7", func() { fmt.Print(exp.FormatFig7(exp.Fig7(recs))) })
	}
	if *table2 {
		section(root, "table2", func() {
			fmt.Print(exp.FormatTable2(exp.Table2(recs)))
			fmt.Println()
			fmt.Print(exp.FormatHeadline(sess.ComputeHeadline()))
		})
	}
	if *table3 {
		section(root, "table3", func() { fmt.Print(exp.FormatTable3(sess.Table3())) })
	}
	if *ablation {
		section(root, "ablations", func() { printAblations(sess) })
	}
	if *passk {
		section(root, "passk", func() { fmt.Print(exp.FormatPassAtK(sess.PassAtKStudy(100, 5))) })
	}
	if *cov {
		section(root, "coverage", func() { printCoverage(sess) })
	}
	if *batch {
		section(root, "batch", func() { printBatch(sess, lanes) })
	}
	if *bitlanes {
		section(root, "bitlanes", func() { printBitLanes(sess) })
	}
	if *form {
		section(root, "formal", func() { printFormal(sess, *verbose) })
	}
	printStats(sess, *verbose)
	finishTrace(*traceOut, tracer, root)
}

// section runs f inside a child span of root; a nil root (tracing off)
// makes the span a no-op.
func section(root *obs.Span, name string, f func()) {
	sp := root.Child(name)
	defer sp.End()
	f()
}

// finishTrace closes the root span and writes the tracer's spans as
// Chrome trace_event JSON. No-op when tracing is off.
func finishTrace(path string, tracer *obs.Tracer, root *obs.Span) {
	if tracer == nil {
		return
	}
	root.End()
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: write trace:", err)
		os.Exit(1)
	}
	if err := tracer.WriteChromeTrace(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: write trace:", err)
		os.Exit(1)
	}
	fmt.Printf("trace: %d spans written to %s\n", len(tracer.Spans()), path)
}

func printBatch(sess *exp.Session, lanes int) {
	fmt.Println()
	rows, err := sess.BatchAmortizationStudy(lanes, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: batch study:", err)
		os.Exit(1)
	}
	fmt.Print(exp.FormatBatchAmortization(rows))
}

func printBitLanes(sess *exp.Session) {
	fmt.Println()
	rows, err := sess.BitSimAmortizationStudy(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: bitlanes study:", err)
		os.Exit(1)
	}
	fmt.Print(exp.FormatBitSimAmortization(rows))
}

func printFormal(sess *exp.Session, verbose bool) {
	fmt.Println()
	st, err := sess.EquivStudy(0, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: bounded-equivalence study:", err)
		os.Exit(1)
	}
	fmt.Print(exp.FormatEquiv(st))
	if verbose {
		fmt.Print(exp.FormatEquivStats(st))
	}
}

func printCoverage(sess *exp.Session) {
	fmt.Println()
	rows, err := sess.CoverageStudy(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: coverage study:", err)
		os.Exit(1)
	}
	fmt.Print(exp.FormatCoverage(rows, 0))
}

func printAblations(sess *exp.Session) {
	fmt.Println("\nExtension ablations (first 120 instances)")
	withRB, withoutRB, wq, woq := sess.AblationRollback(120)
	fmt.Printf("  rollback:      FR %.2f%% with vs %.2f%% without; delivered-code pass rate on failures %.1f%% with vs %.1f%% without\n",
		withRB, withoutRB, wq, woq)
	escFR, slFR, escT, slT := sess.AblationLocalization(120)
	fmt.Printf("  localization:  MS->SL escalation FR %.2f%% / %.2fs, immediate SL FR %.2f%% / %.2fs\n",
		escFR, escT, slFR, slT)
}

func printStats(sess *exp.Session, verbose bool) {
	if !verbose {
		return
	}
	fmt.Println()
	fmt.Print(sess.StatsReport())
}
