package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCostModelLLMCall(t *testing.T) {
	c := DefaultCostModel()
	base := c.LLMCall(0, 0)
	if base != c.LLMBaseSeconds {
		t.Errorf("zero-token call = %f", base)
	}
	if c.LLMCall(1000, 0) != c.LLMBaseSeconds+c.LLMPerKInputTok {
		t.Error("input token pricing wrong")
	}
	if c.LLMCall(0, 1000) != c.LLMBaseSeconds+c.LLMPerKOutputTok {
		t.Error("output token pricing wrong")
	}
	if c.Lint(3) != 3*c.LintSeconds || c.Sim(100) != 100*c.SimSecondsPerVector {
		t.Error("tool pricing wrong")
	}
}

func TestHitFixRates(t *testing.T) {
	outs := []Outcome{
		{Hit: true, Fix: true},
		{Hit: true, Fix: false},
		{Hit: false, Fix: false},
		{Hit: true, Fix: true},
	}
	if hr := HitRate(outs); hr != 75 {
		t.Errorf("HR = %f", hr)
	}
	if fr := FixRate(outs); fr != 50 {
		t.Errorf("FR = %f", fr)
	}
	if HitRate(nil) != 0 || FixRate(nil) != 0 {
		t.Error("empty set must score 0")
	}
}

func TestQuickRatesBounded(t *testing.T) {
	prop := func(bits []bool) bool {
		outs := make([]Outcome, len(bits))
		for i, b := range bits {
			outs[i] = Outcome{Hit: b, Fix: b && i%2 == 0}
		}
		hr, fr := HitRate(outs), FixRate(outs)
		// Bounds and dominance: FR counts a subset of HR's instances here.
		return hr >= 0 && hr <= 100 && fr >= 0 && fr <= 100 && fr <= hr
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPassAtK(t *testing.T) {
	// k == n means guaranteed inclusion when any sample passed.
	if got := PassAtK(5, 1, 5); got != 1 {
		t.Errorf("pass@5 of 1/5 = %f, want 1", got)
	}
	// No passing samples: probability 0.
	if got := PassAtK(5, 0, 1); got != 0 {
		t.Errorf("pass@1 of 0/5 = %f, want 0", got)
	}
	// c == n: always 1.
	if got := PassAtK(5, 5, 1); got != 1 {
		t.Errorf("pass@1 of 5/5 = %f", got)
	}
	// pass@1 equals c/n.
	if got := PassAtK(10, 3, 1); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("pass@1 of 3/10 = %f, want 0.3", got)
	}
}

func TestQuickPassAtKMonotonic(t *testing.T) {
	prop := func(n8, c8, k8 uint8) bool {
		n := int(n8%20) + 1
		c := int(c8) % (n + 1)
		k := int(k8%uint8(n)) + 1
		p := PassAtK(n, c, k)
		if p < 0 || p > 1 {
			return false
		}
		// Monotonic in c.
		if c < n && PassAtK(n, c+1, k) < p-1e-12 {
			return false
		}
		// Monotonic in k.
		if k < n && PassAtK(n, c, k+1) < p-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %f", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Fatalf("Median(nil) = %v", got)
	}
	if got := Median([]float64{3}); got != 3 {
		t.Fatalf("Median single = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatal("Median mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty input must return 0")
	}
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {-5, 1}, {150, 4},
		{50, 2.5},  // halfway between 2 and 3
		{25, 1.75}, // rank 0.75
		{75, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%v, %v) = %v, want %v", xs, c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 || xs[3] != 2 {
		t.Fatal("Percentile modified its input")
	}
	// Median and the 50th percentile agree on both parities.
	for _, n := range []int{5, 6} {
		var ys []float64
		for i := n; i > 0; i-- {
			ys = append(ys, float64(i))
		}
		if m, p := Median(ys), Percentile(ys, 50); math.Abs(m-p) > 1e-12 {
			t.Fatalf("n=%d: median %v != p50 %v", n, m, p)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Samples != 7 || h.Under != 1 || h.Over != 2 {
		t.Fatalf("counters: %+v", h)
	}
	want := []int{2, 1, 0, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, c, want[i], h)
		}
	}
	out := h.Format(20)
	if out == "" || !strings.Contains(out, "#") {
		t.Fatalf("Format produced no bars:\n%s", out)
	}
	if !strings.Contains(out, "below") || !strings.Contains(out, "at or above") {
		t.Fatalf("Format must report out-of-range samples:\n%s", out)
	}
	// Degenerate construction collapses safely.
	d := NewHistogram(3, 3, 0)
	d.Add(3)
	if len(d.Counts) != 1 || d.Counts[0] != 1 {
		t.Fatalf("degenerate histogram: %+v", d)
	}
}

// TestPercentileEdgeCases pins the degenerate inputs the metrics
// endpoints feed in practice: empty windows, single samples, all-equal
// series, and series polluted by NaN (which must be dropped, not allowed
// to poison the sort).
func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("Percentile([7], %v) = %v, want 7", p, got)
		}
		if got := Percentile([]float64{3, 3, 3, 3}, p); got != 3 {
			t.Fatalf("Percentile(all-equal, %v) = %v, want 3", p, got)
		}
	}
	// Clamping beyond the [0, 100] domain.
	xs := []float64{1, 2, 3}
	if got := Percentile(xs, -10); got != 1 {
		t.Fatalf("Percentile(p<0) = %v, want min", got)
	}
	if got := Percentile(xs, 200); got != 3 {
		t.Fatalf("Percentile(p>100) = %v, want max", got)
	}
	// NaN samples are dropped; the remaining series ranks normally.
	nan := math.NaN()
	if got := Percentile([]float64{nan, 1, nan, 3}, 100); got != 3 {
		t.Fatalf("Percentile with NaNs = %v, want 3", got)
	}
	if got := Percentile([]float64{nan, nan}, 50); got != 0 {
		t.Fatalf("Percentile(all-NaN) = %v, want 0", got)
	}
	if got := Percentile([]float64{nan, 5}, 50); math.IsNaN(got) {
		t.Fatal("NaN leaked through Percentile")
	}
}

// TestHistogramEdgeCases covers the ASCII histogram's degenerate
// construction parameters and NaN rejection: a NaN sample must not
// count, not land in a bucket, and above all not panic via the int
// conversion in bucket placement.
func TestHistogramEdgeCases(t *testing.T) {
	// Degenerate range and bucket count collapse to one usable bin.
	h := NewHistogram(5, 5, 0)
	if len(h.Counts) != 1 || h.Hi <= h.Lo {
		t.Fatalf("degenerate histogram = %+v", h)
	}
	h.Add(5.5) // inside the repaired [5, 6) range
	if h.Counts[0] != 1 {
		t.Fatalf("counts = %v, want the sample in the single bin", h.Counts)
	}

	h = NewHistogram(0, 10, 4)
	h.Add(math.NaN())
	if h.Samples != 0 || h.Under != 0 || h.Over != 0 {
		t.Fatalf("NaN was counted: %+v", h)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(2.5)
	if h.Under != 1 || h.Over != 1 || h.Samples != 3 || h.Counts[1] != 1 {
		t.Fatalf("boundary accounting wrong: %+v", h)
	}
	// Formatting a histogram that saw only out-of-range samples must not
	// divide by a zero max.
	if out := NewHistogram(0, 1, 2).Format(10); out == "" || strings.Contains(out, "#") {
		t.Fatalf("empty histogram format = %q", out)
	}
}
