package formal

import "sort"

// minimizeModel greedily shrinks the solver's captured SAT model toward a
// low-weight counterexample, using the incremental interface: the miter
// divergence stays assumed (badLit) while each stimulus bit is probed
// with an assumption forcing it to zero. Bits already zero in the model
// are frozen for free; a bit at one is re-solved with the zero assumption
// and frozen at whichever value the solver can still justify. Cycles are
// visited latest-first (suffix cycles rarely matter for an earliest-cycle
// divergence and zero out en masse), names in sorted order, bits
// LSB-first, so the result is deterministic.
//
// The invariant throughout is that the captured model satisfies badLit
// and every frozen literal so far: zero-freezes only restate model
// values, successful probes re-capture a model under the extended
// assumption set, and failed or exhausted probes freeze the bit at its
// current model value. The caller therefore decodes the final model
// directly — no closing solve is needed, and an exhausted probe degrades
// to "bit stays as-is" instead of an error.
func minimizeModel(s *Solver, ti *IncTseitin, badLit int, inputs []map[string]Vec) {
	fixed := []int{badLit}
	for t := len(inputs) - 1; t >= 0; t-- {
		names := make([]string, 0, len(inputs[t]))
		for n := range inputs[t] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			for _, bit := range inputs[t][n] {
				if c, _ := ti.g.IsConst(bit); c {
					continue
				}
				v, ok := ti.vars[bit.Node()]
				if !ok {
					continue // outside every solved cone: decodes to zero already
				}
				lit := v
				if bit.Neg() {
					lit = -v
				}
				if s.Value(v) == bit.Neg() {
					// Already zero in the model: freeze without solving.
					fixed = append(fixed, -lit)
					continue
				}
				if s.SolveAssuming(append(fixed, -lit)...) {
					fixed = append(fixed, -lit)
				} else {
					fixed = append(fixed, lit)
				}
			}
		}
	}
}
