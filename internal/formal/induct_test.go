package formal

import (
	"testing"

	"uvllm/internal/assert"
	"uvllm/internal/sim"
)

// accAdd and accSub are an equivalent-but-structurally-different
// accumulator pair: q+d versus q-(0-d). BMC alone can only ever bound
// their equivalence; the inductive step closes at window 2 (equal
// registers stay equal), so k-induction proves them equivalent for all
// time — and the subtraction tree keeps the miter from structurally
// collapsing, so the proof is real solver work.
const accAdd = `module acc(input clk, input rst_n, input en, input [7:0] d, output reg [7:0] q);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 8'd0;
        else if (en) q <= q + d;
    end
endmodule
`

const accSub = `module acc(input clk, input rst_n, input en, input [7:0] d, output reg [7:0] q);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 8'd0;
        else if (en) q <= q - (8'd0 - d);
    end
endmodule
`

// TestInductionEquivUnbounded is the tentpole's headline path: the
// accumulator pair is proved equivalent for all time by a closing
// inductive step, where plain BMC reports only a bounded verdict.
func TestInductionEquivUnbounded(t *testing.T) {
	a := mustCompile(t, accAdd, "acc")
	b := mustCompile(t, accSub, "acc")

	res, err := InductionEquiv(a, b, "clk", DefaultBMCDepth)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || !res.Unbounded {
		t.Fatalf("induction must prove the accumulator pair for all time: %+v", res)
	}
	if res.Depth > 3 {
		t.Fatalf("equal-registers-stay-equal should close within a short window, closed at %d", res.Depth)
	}
	if len(res.Stats.Solves) == 0 {
		t.Fatal("proof established without a SAT solve: the miter collapsed, the inductive step went untested")
	}

	bmc, err := BMCEquiv(a, b, "clk", DefaultBMCDepth)
	if err != nil {
		t.Fatal(err)
	}
	if !bmc.Equivalent || bmc.Unbounded {
		t.Fatalf("plain BMC must stay bounded: %+v", bmc)
	}
}

// TestInductionEquivSoundOnDeepBug is the soundness gate: the counter
// pair diverges only after 13 cycles, so a shallow induction run must
// return a *bounded* verdict (never Unbounded — states just past the
// divergence threshold are counterexamples to induction at every window),
// and a deep run must refute at exactly the BMC depth with a replayable
// counterexample.
func TestInductionEquivSoundOnDeepBug(t *testing.T) {
	golden := mustCompile(t, cntGolden, "cnt")
	bug := mustCompile(t, cntBug, "cnt")

	res, err := InductionEquiv(golden, bug, "clk", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("divergence needs >= 13 cycles, refuted at depth %d", res.Depth)
	}
	if res.Unbounded {
		t.Fatal("UNSOUND: induction claimed an unbounded proof for a pair that diverges at depth 13")
	}

	res, err = InductionEquiv(golden, bug, "clk", 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("induction run to depth 16 must refute the deep counter bug")
	}
	if res.Depth < 12 {
		t.Fatalf("earliest divergence should need >= 13 cycles, got depth %d", res.Depth)
	}
	div, cyc, err := ReplayCex(cntGolden, cntBug, "cnt", "clk", res.Cex, sim.BackendCompiled)
	if err != nil || !div || cyc != res.Cex.Cycle {
		t.Fatalf("induction-path cex replay: diverged=%v cycle=%d (want %d) err=%v", div, cyc, res.Cex.Cycle, err)
	}
}

// TestInductionEquivSelf checks the self-miter through induction. The
// base case collapses structurally (both sides share every node), but
// the window starts both sides in *independent* free states, so the step
// is real work: round 1 is a counterexample-to-induction (arbitrary
// unequal registers), and the equal-outputs hypothesis closes it at
// window 2.
func TestInductionEquivSelf(t *testing.T) {
	golden := mustCompile(t, cntGolden, "cnt")
	res, err := InductionEquiv(golden, golden, "clk", 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || !res.Unbounded {
		t.Fatalf("self-equivalence must be unbounded: %+v", res)
	}
	if res.Depth > 2 {
		t.Fatalf("equal-outputs-imply-equal-registers should close at window 2, got %d", res.Depth)
	}
}

// TestInductionMemoryEquiv runs the memory pair through induction.
// Register-file equivalence is genuinely *not* k-inductive under output
// observation — the ¬bad hypotheses constrain only the word the read
// port happened to sample, never the whole memories, so a sound engine
// must stay bounded on the self pair (this is the memory-side soundness
// gate; an Unbounded verdict here would be a bug). The write-enable
// polarity bug must still refute through the interleaved loop, with the
// memories participating in the free window state.
func TestInductionMemoryEquiv(t *testing.T) {
	golden := `module rf(input clk, input we, input [2:0] wa, input [2:0] ra, input [7:0] wd, output [7:0] rd);
    reg [7:0] mem [0:7];
    assign rd = mem[ra];
    always @(posedge clk) begin
        if (we) mem[wa] <= wd;
    end
endmodule
`
	bug := `module rf(input clk, input we, input [2:0] wa, input [2:0] ra, input [7:0] wd, output [7:0] rd);
    reg [7:0] mem [0:7];
    assign rd = mem[ra];
    always @(posedge clk) begin
        if (!we) mem[wa] <= wd;
    end
endmodule
`
	g, b := mustCompile(t, golden, "rf"), mustCompile(t, bug, "rf")
	res, err := InductionEquiv(g, g, "clk", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("register file must be self-equivalent: %+v", res)
	}
	if res.Unbounded {
		t.Fatal("UNSOUND: memory equivalence is not k-inductive under output observation, yet the step closed")
	}
	res, err = InductionEquiv(g, b, "clk", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("write-enable polarity bug must be refuted through the induction path")
	}
	div, _, err := ReplayCex(golden, bug, "rf", "clk", res.Cex, sim.BackendCompiled)
	if err != nil || !div {
		t.Fatalf("memory cex replay: diverged=%v err=%v", div, err)
	}
}

// TestIncrementalMatchesScratch is the differential gate over the solver
// rewrite: the incremental default and the FromScratch reference loop
// must agree on verdict and depth across the fixture pairs, and SAT
// counterexamples from both paths must replay.
func TestIncrementalMatchesScratch(t *testing.T) {
	golden := mustCompile(t, cntGolden, "cnt")
	bug := mustCompile(t, cntBug, "cnt")
	cases := []struct {
		name string
		a, b *sim.Program
		k    int
	}{
		{"self", golden, golden, 6},
		{"shallow", golden, bug, 5},
		{"deep-bug", golden, bug, 16},
	}
	for _, tc := range cases {
		inc, err := BMCEquivOpts(tc.a, tc.b, "clk", tc.k, Options{})
		if err != nil {
			t.Fatalf("%s incremental: %v", tc.name, err)
		}
		scr, err := BMCEquivOpts(tc.a, tc.b, "clk", tc.k, Options{FromScratch: true})
		if err != nil {
			t.Fatalf("%s scratch: %v", tc.name, err)
		}
		if inc.Equivalent != scr.Equivalent || inc.Depth != scr.Depth {
			t.Fatalf("%s: incremental (eq=%v depth=%d) disagrees with scratch (eq=%v depth=%d)",
				tc.name, inc.Equivalent, inc.Depth, scr.Equivalent, scr.Depth)
		}
		if !inc.Equivalent {
			div, cyc, err := ReplayCex(cntGolden, cntBug, "cnt", "clk", inc.Cex, sim.BackendCompiled)
			if err != nil || !div || cyc != inc.Cex.Cycle {
				t.Fatalf("%s: incremental cex replay diverged=%v cycle=%d err=%v", tc.name, div, cyc, err)
			}
		}
	}
}

// TestMinimizeCex pins counterexample minimization: the minimized trace
// still replays at the predicted cycle on both backends, its weight never
// exceeds the raw trace's, and its length is unchanged (minimization
// zeroes bits, it does not drop cycles — the divergence depth is already
// minimal by iterative deepening).
func TestMinimizeCex(t *testing.T) {
	golden := mustCompile(t, cntGolden, "cnt")
	bug := mustCompile(t, cntBug, "cnt")
	res, err := BMCEquivOpts(golden, bug, "clk", 16, Options{MinimizeCex: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("depth 16 must refute the deep counter bug")
	}
	if res.RawCex == nil {
		t.Fatal("MinimizeCex must preserve the unminimized trace in RawCex")
	}
	if len(res.Cex.Inputs) != len(res.RawCex.Inputs) {
		t.Fatalf("minimization changed the trace length: %d vs %d", len(res.Cex.Inputs), len(res.RawCex.Inputs))
	}
	if res.Cex.Weight() > res.RawCex.Weight() {
		t.Fatalf("minimized weight %d exceeds raw weight %d", res.Cex.Weight(), res.RawCex.Weight())
	}
	// The counter bug needs en held every cycle but never needs d, and the
	// frozen rst_n=1 bit is protocol, not stimulus: a genuinely minimized
	// trace carries about two set bits per cycle (en and rst_n) and a
	// fully zeroed d bus.
	if res.Cex.Weight() > 2*len(res.Cex.Inputs)+2 {
		t.Fatalf("minimized weight %d for a %d-cycle trace: minimization is not biting", res.Cex.Weight(), len(res.Cex.Inputs))
	}
	for c, in := range res.Cex.Inputs {
		if in["d"] != 0 {
			t.Fatalf("cycle %d: d=%#x survived minimization of a d-independent divergence", c, in["d"])
		}
	}
	for _, backend := range []sim.Backend{sim.BackendCompiled, sim.BackendEventDriven} {
		div, cyc, err := ReplayCex(cntGolden, cntBug, "cnt", "clk", res.Cex, backend)
		if err != nil {
			t.Fatalf("replay on %v: %v", backend, err)
		}
		if !div || cyc != res.Cex.Cycle {
			t.Fatalf("backend %v: minimized cex diverged=%v at cycle %d, predicted %d", backend, div, cyc, res.Cex.Cycle)
		}
	}
}

// TestInductionAssertions covers the assertion side of the tentpole: the
// saturating counter's true bound is 1-inductive (q<=9 is preserved by
// the transition), so it must come back proved *unbounded*, while the
// too-tight bound still refutes and opaque forms still skip. The
// promotion wrapper must carry the DepthUnbounded certificate.
func TestInductionAssertions(t *testing.T) {
	prog := mustCompile(t, modSaturate, "sat9")
	as := []assert.Assertion{
		assert.Bound{Signal: "q", Limit: 9},
		assert.Bound{Signal: "q", Limit: 4},
		assert.OneHot{Signal: "phase"},
		assert.Mutex{A: "lo", B: "hi"},
		assert.Invariant{Label: "opaque", Pred: func(map[string]uint64) bool { return true }},
	}
	results, err := InductionAssertions(prog, "clk", as, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts := []AssertVerdict{AssertProved, AssertRefuted, AssertProved, AssertProved, AssertSkipped}
	for i, r := range results {
		if r.Verdict != wantVerdicts[i] {
			t.Fatalf("assertion %s: verdict %v, want %v", r.Assertion.Name(), r.Verdict, wantVerdicts[i])
		}
	}
	if !results[0].Unbounded {
		t.Fatalf("bound q<=9 is inductive and must prove unbounded: %+v", results[0])
	}
	if results[1].Unbounded {
		t.Fatal("a refuted assertion cannot be unbounded")
	}

	promoted, refuted, skipped, err := PromoteAssertionsInduction(prog, "clk", as, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(promoted) != len(as) || len(refuted) != 1 || skipped != 1 {
		t.Fatalf("promotion shape: %d promoted, %d refuted, %d skipped", len(promoted), len(refuted), skipped)
	}
	p, ok := promoted[0].(assert.Promoted)
	if !ok || !p.Unbounded() {
		t.Fatalf("inductively proved bound must carry the DepthUnbounded certificate: %#v", promoted[0])
	}
	if p.Describe() == assert.Promote(p.Assertion, 8).Describe() {
		t.Fatal("unbounded certificate must be visible in the description")
	}
}
