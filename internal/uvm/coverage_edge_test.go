package uvm

import (
	"testing"

	"uvllm/internal/sim"
)

// TestCoveragePercentNoSamples pins the empty-collector contract: a
// collector that never sampled (and one for a design with no ports at
// all) reports 0%, not NaN.
func TestCoveragePercentNoSamples(t *testing.T) {
	d := designFor(t, "adder_8bit")
	c := NewCoverage(d)
	if got := c.Percent(); got != 0 {
		t.Fatalf("Percent with no samples = %v, want 0", got)
	}
	if got := c.Percent(); got != got { // NaN check
		t.Fatal("Percent is NaN")
	}

	// A collector over an empty port list divides by a zero total.
	empty := &Coverage{
		bins:  map[string][4]bool{},
		seen0: map[string]uint64{},
		seen1: map[string]uint64{},
	}
	if got := empty.Percent(); got != 0 {
		t.Fatalf("empty-universe Percent = %v, want 0", got)
	}
}

// TestCoverageZeroWidthPort checks that a port recorded with width 0
// (the defensive case for pathological elaborations) contributes nothing
// to the toggle denominator and does not panic the sampler.
func TestCoverageZeroWidthPort(t *testing.T) {
	c := &Coverage{
		inputs:  []sim.PortInfo{{Name: "in", Width: 8}},
		outputs: []sim.PortInfo{{Name: "z", Width: 0}, {Name: "y", Width: 1}},
		bins:    map[string][4]bool{},
		seen0:   map[string]uint64{},
		seen1:   map[string]uint64{},
	}
	c.Sample(map[string]uint64{"in": 0}, map[string]uint64{"z": 1, "y": 1})
	c.Sample(map[string]uint64{"in": 255}, map[string]uint64{"z": 0, "y": 0})
	// in: all four bins hit (0, max, low, high) = 4/4; y: both polarities
	// = 2/2; z contributes 0 to both numerator and denominator.
	if got := c.Percent(); got != 100 {
		t.Fatalf("Percent = %v, want 100 (zero-width port must not dilute)", got)
	}
}

// TestCoverage64BitMask checks the popcount masking on full-width
// signals: a 64-bit output toggled both ways is exactly 128 toggle
// points, and the wrap-around mask (1<<64) must not zero it out.
func TestCoverage64BitMask(t *testing.T) {
	c := &Coverage{
		outputs: []sim.PortInfo{{Name: "wide", Width: 64}},
		bins:    map[string][4]bool{},
		seen0:   map[string]uint64{},
		seen1:   map[string]uint64{},
	}
	c.Sample(nil, map[string]uint64{"wide": 0})
	if got := c.Percent(); got != 50 {
		t.Fatalf("all-zeros 64-bit sample = %v%%, want 50 (64 of 128 points)", got)
	}
	c.Sample(nil, map[string]uint64{"wide": ^uint64(0)})
	if got := c.Percent(); got != 100 {
		t.Fatalf("both polarities on 64 bits = %v%%, want 100", got)
	}

	// 64-bit input bins: max detection must use the full-width mask.
	c2 := &Coverage{
		inputs: []sim.PortInfo{{Name: "din", Width: 64}},
		bins:   map[string][4]bool{},
		seen0:  map[string]uint64{},
		seen1:  map[string]uint64{},
	}
	c2.Sample(map[string]uint64{"din": ^uint64(0)}, nil)
	b := c2.bins["din"]
	if !b[1] {
		t.Fatal("all-ones 64-bit input did not hit the max bin")
	}
	if !b[3] {
		t.Fatal("all-ones 64-bit input did not land in the high-half bin")
	}
}

// TestCoverageReportIdenticalAcrossBackends drives the same seeded
// stimulus through both simulator backends and requires byte-identical
// port-coverage reports — the port-level analogue of the structural
// coverage gate in the rtlgen differential suite.
func TestCoverageReportIdenticalAcrossBackends(t *testing.T) {
	run := func(backend sim.Backend) string {
		env, err := NewEnv(Config{
			Source: needleSrc, Top: "needle", Clock: "clk",
			RefName: "accu", // any model: the scoreboard is irrelevant here
			Seed:    11, Backend: backend,
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Run(&RandomSequence{
			Ports: stimPorts(env.DUT.Sim.Design(), "clk"),
			N:     40, ResetName: "rst_n",
		})
		return env.Cov.Report()
	}
	repC := run(sim.BackendCompiled)
	repE := run(sim.BackendEventDriven)
	if repC != repE {
		t.Fatalf("coverage reports differ across backends:\n--- compiled ---\n%s--- event ---\n%s", repC, repE)
	}
	if repC == "" {
		t.Fatal("empty coverage report")
	}
}
