package formal

import (
	"errors"
	"math/rand"
	"testing"

	"uvllm/internal/sim"
)

// stepConcrete drives the model with constant vectors and returns the
// fully folded output values, failing the test if any output bit stayed
// symbolic (with constant inputs the AIG's constant propagation must
// collapse the entire cycle).
func stepConcrete(t *testing.T, m *Model, st *State, in map[string]uint64) (*State, map[string]uint64) {
	t.Helper()
	sym := map[string]Vec{}
	for _, p := range m.FreeInputs() {
		sym[p.Name] = m.AIG().ConstVec(in[p.Name], vecW(p.Width))
	}
	st2, err := m.Step(st, sym)
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	outs := map[string]uint64{}
	for i, p := range m.Outputs() {
		v, ok := m.AIG().ConstVal(m.OutputVec(st2, i))
		if !ok {
			t.Fatalf("output %s did not fold to a constant under constant inputs", p.Name)
		}
		outs[p.Name] = v
	}
	return st2, outs
}

// crossValidate runs the model and a concrete simulator side by side
// under the same random stimulus (the formal protocol: reset preamble,
// then reset held deasserted) and requires identical outputs every cycle
// and an identical full arena at the end.
func crossValidate(t *testing.T, src, top, clock string, cycles int, seed int64) {
	t.Helper()
	prog, err := sim.CompileSource(src, top, sim.BackendCompiled)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := NewModelOpts(prog, Options{Clock: clock})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	st, err := m.InitState()
	if err != nil {
		t.Fatalf("InitState: %v", err)
	}
	inst, err := prog.NewInstance()
	if err != nil {
		t.Fatal(err)
	}
	h := sim.NewHarness(inst, clock)
	if err := h.ApplyReset(ResetCycles); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	frozen := m.FrozenInputs()
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]uint64{}
		simIn := map[string]uint64{}
		for _, p := range m.FreeInputs() {
			v := rng.Uint64()
			if p.Width < 64 {
				v &= 1<<uint(p.Width) - 1
			}
			in[p.Name] = v
			simIn[p.Name] = v
		}
		for name, v := range frozen {
			simIn[name] = v
		}
		var fOut map[string]uint64
		st, fOut = stepConcrete(t, m, st, in)
		sOut, err := h.Cycle(simIn)
		if err != nil {
			t.Fatalf("sim cycle %d: %v", cyc, err)
		}
		for name, v := range sOut {
			if fOut[name] != v {
				t.Fatalf("cycle %d output %s: formal=%#x sim=%#x\n%s", cyc, name, fOut[name], v, src)
			}
		}
	}
	// Full-arena check: every signal of the folded symbolic state must
	// match the simulator's arena.
	d := prog.Design()
	for i := 0; i < d.NumSignals(); i++ {
		sv := d.Signal(i)
		got, ok := m.AIG().ConstVal(st.vals[i])
		if !ok {
			t.Fatalf("signal %s stayed symbolic under constant stimulus", sv.Name)
		}
		want := inst.Get(sv.Name)
		if sv.Width > 64 {
			continue
		}
		if got != want {
			t.Fatalf("final state %s: formal=%#x sim=%#x", sv.Name, got, want)
		}
		if sv.IsMem {
			for w := 0; w < sv.Depth; w++ {
				gw, _ := m.AIG().ConstVal(st.mems[i][w])
				if ww := inst.GetMem(sv.Name, w); gw != ww {
					t.Fatalf("final mem %s[%d]: formal=%#x sim=%#x", sv.Name, w, gw, ww)
				}
			}
		}
	}
}

// TestBlastMatchesSimHandwritten cross-validates the symbolic executor
// against the simulator on hand-written designs covering the construct
// classes: sequential state, async reset folding, memories with symbolic
// addresses, case/if guards, part selects, concats, for loops, division,
// shifts and bit writes.
func TestBlastMatchesSimHandwritten(t *testing.T) {
	cases := []struct {
		name, src, top, clock string
	}{
		{"counter", `module c(input clk, input rst_n, input en, output reg [7:0] q);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 8'd0;
        else if (en) q <= q + 8'd1;
    end
endmodule
`, "c", "clk"},
		{"comb_ops", `module m(input [7:0] a, input [7:0] b, output [7:0] y, output [7:0] z, output p);
    assign y = (a + b) * 8'd3 - (a ^ b);
    assign z = (b == 8'd0) ? 8'd255 : a / b + a % b;
    assign p = ^a & (a < b) | &b;
endmodule
`, "m", ""},
		{"mem_rw", `module m(input clk, input we, input [2:0] wa, input [2:0] ra, input [7:0] wd, output [7:0] rd);
    reg [7:0] mem [0:7];
    assign rd = mem[ra];
    always @(posedge clk) begin
        if (we) mem[wa] <= wd;
    end
endmodule
`, "m", "clk"},
		{"case_fsm", `module f(input clk, input rst_n, input [1:0] cmd, output reg [3:0] state, output [3:0] nxt);
    reg [3:0] ns;
    always @(*) begin
        ns = state;
        case (cmd)
            2'd0: ns = 4'd1;
            2'd1: if (state < 4'd8) ns = state + 4'd2;
            2'd2: ns = {state[2:0], state[3]};
            default: ns = 4'd0;
        endcase
    end
    assign nxt = ns;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) state <= 4'd0;
        else state <= ns;
    end
endmodule
`, "f", "clk"},
		{"for_shift", `module m(input [7:0] a, input [2:0] n, output [7:0] y, output [7:0] w);
    integer i;
    reg [7:0] acc;
    always @(*) begin
        acc = 8'd0;
        for (i = 0; i < 8; i = i + 1) begin
            acc = acc + (a >> i);
        end
    end
    assign y = acc;
    assign w = (a << n) | (a >> n);
endmodule
`, "m", ""},
		{"bit_writes", `module m(input clk, input [2:0] sel, input d, output reg [7:0] q, output [3:0] part);
    always @(posedge clk) begin
        q[sel] <= d;
        q[7] <= ~d;
    end
    assign part = q[5:2];
endmodule
`, "m", "clk"},
		{"concat_lhs", `module m(input [7:0] a, input [7:0] b, output [7:0] s, output c);
    assign {c, s} = a + b;
endmodule
`, "m", ""},
		{"negedge_proc", `module m(input clk, input [3:0] d, output reg [3:0] qp, output reg [3:0] qn);
    always @(posedge clk) qp <= d;
    always @(negedge clk) qn <= qp + 4'd1;
endmodule
`, "m", "clk"},
		{"hierarchy", `module add4(input [3:0] x, input [3:0] y, output [3:0] s);
    assign s = x + y;
endmodule
module m(input clk, input [3:0] a, input [3:0] b, output reg [3:0] r);
    wire [3:0] s1;
    add4 u1(.x(a), .y(b), .s(s1));
    always @(posedge clk) r <= s1;
endmodule
`, "m", "clk"},
		{"blocking_seq", `module m(input clk, input [3:0] d, output reg [3:0] q, output reg [3:0] r);
    reg [3:0] tmp;
    always @(posedge clk) begin
        tmp = d + 4'd1;
        q <= tmp;
        r <= tmp + q;
    end
endmodule
`, "m", "clk"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			crossValidate(t, tc.src, tc.top, tc.clock, 24, 42)
		})
	}
}

// TestBlastUnsupported pins the support gate: event-backend programs,
// fallback designs and oversized memories are refused with
// ErrUnsupported, not mis-modeled.
func TestBlastUnsupported(t *testing.T) {
	src := `module m(input clk, input d, output reg q);
    always @(posedge clk) q <= d;
endmodule
`
	pe, err := sim.CompileSource(src, "m", sim.BackendEventDriven)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(pe); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("event backend: err = %v, want ErrUnsupported", err)
	}

	fallback := `module m(input clk, input a, input b, output reg q);
    wire g = clk & a;
    always @(posedge g) q <= b;
endmodule
`
	pf, err := sim.CompileSource(fallback, "m", sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Levelized() {
		t.Fatal("gated-clock fixture unexpectedly levelized")
	}
	if _, err := NewModel(pf); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("fallback design: err = %v, want ErrUnsupported", err)
	}

	bigmem := `module m(input clk, input [9:0] wa, input [63:0] wd, output [63:0] rd);
    reg [63:0] mem [0:1023];
    assign rd = mem[wa];
    always @(posedge clk) mem[wa] <= wd;
endmodule
`
	pm, err := sim.CompileSource(bigmem, "m", sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(pm); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("oversized memory: err = %v, want ErrUnsupported", err)
	}

	dataEdge := `module m(input clk, input go, input d, output reg q);
    always @(posedge go) q <= d;
endmodule
`
	pd, err := sim.CompileSource(dataEdge, "m", sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(pd); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("data-input edge trigger: err = %v, want ErrUnsupported", err)
	}
}
