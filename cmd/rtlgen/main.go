// Command rtlgen generates random synthesizable Verilog designs with the
// internal/rtlgen generator and optionally runs the differential oracles
// on them:
//
//	rtlgen -seed 1 -n 1                  # print one design to stdout
//	rtlgen -seed 1 -n 50 -out designs/   # write gen_*.v files + index.tsv
//	rtlgen -seed 1 -n 300 -check         # diff backends + round-trip each
//
// -check exits non-zero on the first divergence and prints the offending
// design, making the command usable as a standalone fuzz sweep in scripts
// and CI. -cycles bounds the per-design stimulus length.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uvllm/internal/rtlgen"
	"uvllm/internal/service"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "first generation seed")
		n      = flag.Int("n", 1, "number of designs (seeds seed..seed+n-1)")
		out    = flag.String("out", "", "output directory (write gen_*.v files)")
		check  = flag.Bool("check", false, "run the differential oracles on each design")
		cov    = flag.Bool("cover", false, "coverage-directed sweep: compare random vs directed stimulus, keep coverage-raising designs")
		cycles = flag.Int("cycles", 60, "stimulus cycles per design in -check and -cover modes")
	)
	knobs := service.Bind(flag.CommandLine, service.FlagLanes)
	flag.Parse()
	opts, err := knobs.Options()
	if err != nil {
		fatal(err)
	}
	lanes := &opts.Lanes
	if *n < 1 {
		fatal(fmt.Errorf("-n must be >= 1, got %d", *n))
	}
	if *cycles < 1 {
		fatal(fmt.Errorf("-cycles must be >= 1, got %d", *cycles))
	}

	if *cov {
		runs, cum, err := rtlgen.CoverSweepLanes(*seed, *n, *cycles, *lanes)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rtlgen.FormatCoverSweep(runs, cum))
		return
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	var index strings.Builder
	index.WriteString("seed\tmodule\tflavor\tlevelized\n")
	levelized, fallback := 0, 0
	for i := 0; i < *n; i++ {
		d := rtlgen.Generate(*seed + int64(i))

		if *check {
			rep, err := rtlgen.DiffBackends(d.Source, d.Top, d.Clock, *cycles, d.Seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtlgen: seed %d (%s): backends diverged: %v\n%s\n",
					d.Seed, d.Flavor, err, d.Source)
				os.Exit(1)
			}
			if err := rtlgen.RoundTrip(d.Source); err != nil {
				fmt.Fprintf(os.Stderr, "rtlgen: seed %d: %v\n", d.Seed, err)
				os.Exit(1)
			}
			if *lanes > 1 {
				if err := rtlgen.DiffBatchLanes(d.Source, d.Top, d.Clock, *lanes, *cycles, d.Seed); err != nil {
					fmt.Fprintf(os.Stderr, "rtlgen: seed %d (%s): batch diverged: %v\n%s\n",
						d.Seed, d.Flavor, err, d.Source)
					os.Exit(1)
				}
			}
			if rep.Levelized {
				levelized++
			} else {
				fallback++
			}
			if *out != "" {
				fmt.Fprintf(&index, "%d\t%s\t%s\t%v\n", d.Seed, d.Name, d.Flavor, rep.Levelized)
			}
		} else if *out != "" {
			fmt.Fprintf(&index, "%d\t%s\t%s\t-\n", d.Seed, d.Name, d.Flavor)
		}

		switch {
		case *out != "":
			if err := os.WriteFile(filepath.Join(*out, d.Name+".v"), []byte(d.Source), 0o644); err != nil {
				fatal(err)
			}
		case !*check:
			fmt.Print(d.Source)
		}
	}

	if *out != "" {
		if err := os.WriteFile(filepath.Join(*out, "index.tsv"), []byte(index.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("rtlgen: wrote %d designs under %s\n", *n, *out)
	}
	if *check {
		fmt.Printf("rtlgen: %d designs checked, 0 divergences (%d levelized, %d event-fallback)\n",
			*n, levelized, fallback)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtlgen:", err)
	os.Exit(1)
}
