package formal

import (
	"testing"

	"uvllm/internal/assert"
	"uvllm/internal/sim"
)

// modSaturate saturates at 9 and exposes a one-hot phase vector, giving
// one provable Bound, one refutable Bound, one provable OneHot and one
// provable Mutex.
const modSaturate = `module sat9(input clk, input rst_n, input en, output reg [3:0] q, output [3:0] phase, output lo, output hi);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 4'd0;
        else if (en && q < 4'd9) q <= q + 4'd1;
    end
    assign phase = (q[1:0] == 2'd0) ? 4'b0001 :
                   (q[1:0] == 2'd1) ? 4'b0010 :
                   (q[1:0] == 2'd2) ? 4'b0100 : 4'b1000;
    assign lo = (q < 4'd3);
    assign hi = (q > 4'd6);
endmodule
`

// TestCheckAssertions covers all three verdicts: a true bound proves, a
// too-tight bound refutes with a counterexample the UVM checker confirms,
// structural one-hot/mutex invariants prove, and opaque forms skip.
func TestCheckAssertions(t *testing.T) {
	prog := mustCompile(t, modSaturate, "sat9")
	as := []assert.Assertion{
		assert.Bound{Signal: "q", Limit: 9},
		assert.Bound{Signal: "q", Limit: 4},
		assert.OneHot{Signal: "phase"},
		assert.Mutex{A: "lo", B: "hi"},
		assert.Invariant{Label: "opaque", Pred: func(map[string]uint64) bool { return true }},
	}
	const k = 8
	results, err := CheckAssertions(prog, "clk", as, k)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts := []AssertVerdict{AssertProved, AssertRefuted, AssertProved, AssertProved, AssertSkipped}
	for i, r := range results {
		if r.Verdict != wantVerdicts[i] {
			t.Fatalf("assertion %s: verdict %v, want %v", r.Assertion.Name(), r.Verdict, wantVerdicts[i])
		}
	}

	// The refuted bound's counterexample must violate the assertion when
	// replayed through the UVM checker on both backends.
	ref := results[1]
	if ref.Cex == nil || ref.Cex.Signal != ref.Assertion.Name() {
		t.Fatalf("refutation carries no usable cex: %+v", ref.Cex)
	}
	vectors := ref.Cex.Vectors()
	for _, backend := range []sim.Backend{sim.BackendCompiled, sim.BackendEventDriven} {
		s, err := sim.CompileAndNewBackend(modSaturate, "sat9", backend)
		if err != nil {
			t.Fatal(err)
		}
		h := sim.NewHarness(s, "clk")
		if err := h.ApplyReset(ResetCycles); err != nil {
			t.Fatal(err)
		}
		checker := assert.NewChecker([]assert.Assertion{ref.Assertion})
		for _, in := range vectors {
			out, err := h.Cycle(in)
			if err != nil {
				t.Fatal(err)
			}
			all := map[string]uint64{}
			for k2, v := range in {
				all[k2] = v
			}
			for k2, v := range out {
				all[k2] = v
			}
			checker.Sample(all)
		}
		if checker.Passed() {
			t.Fatalf("backend %v: refutation cex did not violate %s in simulation", backend, ref.Assertion.Name())
		}
		if got := checker.Violations[0].Cycle; got != ref.Cex.Cycle {
			t.Fatalf("backend %v: violation at cycle %d, formal predicted %d", backend, got, ref.Cex.Cycle)
		}
	}
}

// TestPromoteAssertions pins the held-on-trace -> proved-to-depth-k
// upgrade path end to end.
func TestPromoteAssertions(t *testing.T) {
	prog := mustCompile(t, modSaturate, "sat9")
	as := []assert.Assertion{
		assert.Bound{Signal: "q", Limit: 9},
		assert.Bound{Signal: "q", Limit: 4},
		assert.Invariant{Label: "opaque", Pred: func(map[string]uint64) bool { return true }},
	}
	promoted, refuted, skipped, err := PromoteAssertions(prog, "clk", as, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(promoted) != len(as) {
		t.Fatalf("promoted list must preserve length: %d vs %d", len(promoted), len(as))
	}
	if _, ok := promoted[0].(assert.Promoted); !ok {
		t.Fatalf("true bound not promoted: %T", promoted[0])
	}
	if _, ok := promoted[1].(assert.Promoted); ok {
		t.Fatal("refuted bound must not be promoted")
	}
	if len(refuted) != 1 || refuted[0].Assertion.Name() != "bound_q" {
		t.Fatalf("refuted = %+v", refuted)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
}

// TestCheckAssertionsHugeBound is the regression test for the large-
// limit bound path: a 64-bit passthrough register can exceed any limit
// below all-ones, including limits with the top bit set — those must
// refute, while the all-ones limit is genuinely unviolable and proves.
func TestCheckAssertionsHugeBound(t *testing.T) {
	src := `module pass(input clk, input [63:0] d, output reg [63:0] q);
    always @(posedge clk) q <= d;
endmodule
`
	prog := mustCompile(t, src, "pass")
	results, err := CheckAssertions(prog, "clk", []assert.Assertion{
		assert.Bound{Signal: "q", Limit: 1 << 63},
		assert.Bound{Signal: "q", Limit: ^uint64(0)},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Verdict != AssertRefuted {
		t.Fatalf("limit 2^63 on a free 64-bit register: verdict %v, want refuted", results[0].Verdict)
	}
	if v, ok := results[0].Cex.Inputs[results[0].Cex.Cycle]["d"]; !ok || v <= 1<<63 {
		t.Fatalf("cex does not violate the bound: d=%#x", v)
	}
	if results[1].Verdict != AssertProved {
		t.Fatalf("all-ones limit: verdict %v, want proved", results[1].Verdict)
	}
}
