// Package metrics implements the evaluation metrics of paper Sec. IV-A —
// Hit Rate (Eq. 1), Fix Rate (Eq. 2), pass@k — and the deterministic
// execution-time cost model that stands in for wall-clock Texec. The
// paper's times are dominated by OpenAI API latency on their testbed; the
// cost model preserves the structure (per-stage split, method ratios)
// rather than absolute seconds.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CostModel converts counted work into modeled seconds.
type CostModel struct {
	LintSeconds         float64 // one linter pass
	SimSecondsPerVector float64 // one UVM transaction (simulate + compare)
	LLMBaseSeconds      float64 // request overhead per LLM call
	LLMPerKInputTok     float64 // seconds per 1000 prompt tokens
	LLMPerKOutputTok    float64 // seconds per 1000 completion tokens
}

// DefaultCostModel is calibrated against GPT-4-turbo-era API behavior
// (~0.9 s connection + prompt ingest at ~1 s/ktok + generation at ~33
// tok/s) and local tool costs on the paper's EPYC host.
func DefaultCostModel() CostModel {
	return CostModel{
		LintSeconds:         0.08,
		SimSecondsPerVector: 0.004,
		LLMBaseSeconds:      1.5,
		LLMPerKInputTok:     1.2,
		LLMPerKOutputTok:    45.0,
	}
}

// LLMCall returns the modeled latency of one chat completion.
func (c CostModel) LLMCall(inputTokens, outputTokens int) float64 {
	return c.LLMBaseSeconds +
		c.LLMPerKInputTok*float64(inputTokens)/1000 +
		c.LLMPerKOutputTok*float64(outputTokens)/1000
}

// Lint returns the modeled latency of n linter passes.
func (c CostModel) Lint(n int) float64 { return c.LintSeconds * float64(n) }

// Sim returns the modeled latency of simulating n UVM transactions.
func (c CostModel) Sim(n int) float64 { return c.SimSecondsPerVector * float64(n) }

// Outcome is one benchmark instance's evaluation result.
type Outcome struct {
	Hit bool // passed the method's own testbench (HR, Eq. 1)
	Fix bool // passed the independent expert validation suite (FR, Eq. 2)
}

// HitRate computes HR over a set of outcomes, in percent.
func HitRate(outs []Outcome) float64 {
	if len(outs) == 0 {
		return 0
	}
	n := 0
	for _, o := range outs {
		if o.Hit {
			n++
		}
	}
	return 100 * float64(n) / float64(len(outs))
}

// FixRate computes FR over a set of outcomes, in percent.
func FixRate(outs []Outcome) float64 {
	if len(outs) == 0 {
		return 0
	}
	n := 0
	for _, o := range outs {
		if o.Fix {
			n++
		}
	}
	return 100 * float64(n) / float64(len(outs))
}

// PassAtK estimates pass@k (Chen et al. 2021) given n samples per problem
// of which c passed, using the unbiased estimator 1 - C(n-c,k)/C(n,k).
func PassAtK(n, c, k int) float64 {
	if n-c < k {
		return 1
	}
	// 1 - prod_{i=n-c+1..n} (1 - k/i)
	p := 1.0
	for i := n - c + 1; i <= n; i++ {
		p *= 1 - float64(k)/float64(i)
	}
	return 1 - p
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for empty; the mean of the two
// middle elements for even lengths). The input slice is not modified.
// The coverage studies compare stimulus generators by median rather
// than mean so one saturated or degenerate design cannot carry the
// verdict.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Percentile returns the p-th percentile of xs (p in [0, 100]) with
// linear interpolation between closest ranks, the convention numpy calls
// "linear". Empty input returns 0; p is clamped to [0, 100]; NaN samples
// are dropped before ranking (a NaN has no rank, and letting one into
// the sort would poison every percentile of the series). The input
// slice is not modified. The formal engine's solver statistics
// (conflicts per BMC depth) report p50/p90/p99 through this.
func Percentile(xs []float64, p float64) float64 {
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram is a fixed-range, equal-width bucket count of sample values,
// the ASCII companion to Percentile for -v solver statistics.
type Histogram struct {
	Lo, Hi  float64 // value range covered by the buckets
	Counts  []int   // per-bucket counts
	Under   int     // samples below Lo
	Over    int     // samples at or above Hi
	Samples int     // total Add calls
}

// NewHistogram builds an empty histogram of `buckets` equal-width bins
// over [lo, hi). Degenerate ranges or bucket counts collapse to one bin.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one sample. NaN is rejected without counting: it belongs
// to no bucket, and the int conversion in bucket placement is undefined
// for NaN (an out-of-range index panic on most platforms).
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.Samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Format renders the histogram as one line per bucket with a bar scaled
// to barWidth characters (bars scale to the fullest bucket).
func (h *Histogram) Format(barWidth int) string {
	if barWidth < 1 {
		barWidth = 40
	}
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*barWidth/max)
		fmt.Fprintf(&b, "  [%8.1f, %8.1f) %6d %s\n", h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, bar)
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "  below %.1f: %d\n", h.Lo, h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "  at or above %.1f: %d\n", h.Hi, h.Over)
	}
	return b.String()
}
