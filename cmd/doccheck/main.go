// Command doccheck enforces the repository's documentation contract: a
// package must have a package comment, and every exported top-level
// identifier (type, function, method, constant, variable) must carry a
// doc comment. CI runs it over the packages whose API surface the
// coverage subsystem exposes; it accepts any list of package directories.
//
//	doccheck                      # check the default set (see defaultDirs)
//	doccheck ./internal/...       # check every package under internal
//	doccheck ./internal/sim       # check one package
//
// The exit status is non-zero when any identifier is undocumented, and
// each offender is printed as file:line: message, so editors and CI logs
// link straight to the declaration.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs is the enforced documentation surface: the simulator and
// coverage APIs every other layer builds on, the UVM components, the
// formal engine, and the service layer (the API of cmd/uvllmd).
var defaultDirs = []string{
	"./internal/sim",
	"./internal/cover",
	"./internal/uvm",
	"./internal/formal",
	"./internal/service",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	seen := map[string]bool{}
	var expanded []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			expanded = append(expanded, dir)
		}
	}
	for _, d := range dirs {
		if strings.HasSuffix(d, "...") {
			root := strings.TrimSuffix(strings.TrimSuffix(d, "..."), "/")
			err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if de.IsDir() && hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				fatal(err)
			}
			continue
		}
		add(d)
	}
	sort.Strings(expanded)

	bad := 0
	for _, dir := range expanded {
		probs, err := checkDir(dir)
		if err != nil {
			fatal(err)
		}
		for _, p := range probs {
			fmt.Println(p)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented identifiers\n", bad)
		os.Exit(1)
	}
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// checkDir parses the non-test files of one package directory and
// returns one formatted problem line per undocumented exported
// identifier (plus one for a missing package comment).
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %s: %w", dir, err)
	}
	var probs []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			probs = append(probs, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			probs = append(probs, checkFile(fset, name, f)...)
		}
	}
	sort.Strings(probs)
	return probs, nil
}

func checkFile(fset *token.FileSet, filename string, f *ast.File) []string {
	var probs []string
	report := func(pos token.Pos, format string, args ...interface{}) {
		probs = append(probs, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && !isMethodOfUnexported(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), "exported %s %s is undocumented", kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "exported type %s is undocumented", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A group comment ("// Stages." over a const block)
					// documents every member, matching godoc behavior.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "exported value %s is undocumented", n.Name)
						}
					}
				}
			}
		}
	}
	return probs
}

// isMethodOfUnexported reports whether the method's receiver type is
// unexported: its methods never appear in godoc, so they are exempt.
func isMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiations (T[P]).
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return !id.IsExported()
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(1)
}
