package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// DiskCache is the on-disk content-addressed tier under Cache: one file
// per compile outcome, named by the hex sha256 of (source, top, backend),
// so warm compile state survives process restarts. A long-running server
// attaches one (Cache.AttachDisk) and calls Cache.WarmFromDisk at startup;
// after that, designs the previous process compiled are served from the
// in-memory tier without a cold request-path compile.
//
// What is persisted is the compile *outcome envelope*, not machine state:
// compiled Programs are closures and cannot be serialized, so a positive
// entry stores the canonical source text and is rehydrated by replaying it
// through the compiler once per process (at warm-up or on the first miss),
// while a negative entry stores the deterministic compile error and
// short-circuits with zero compile work. Every read is corruption
// tolerant: a truncated, garbled or checksum-mismatched file counts in
// Stats().DiskCorrupt and degrades to an ordinary miss — it is never
// surfaced as an error to the caller, and the entry is rewritten after
// the fresh compile.
//
// DiskCache is safe for concurrent use. Writes go through a temp file +
// rename so readers never observe a partial entry; per-key serialization
// is inherited from the single-flight memory tier above it.
type DiskCache struct {
	dir string

	hits    atomic.Int64 // entries loaded intact
	misses  atomic.Int64 // consulted, no entry on disk
	corrupt atomic.Int64 // entries present but unreadable or checksum-broken
	writes  atomic.Int64 // entries stored
}

// NewDiskCache opens (creating if needed) the on-disk tier rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the directory backing this tier.
func (d *DiskCache) Dir() string { return d.dir }

// DiskStats is a point-in-time snapshot of the disk-tier counters. Like
// CacheStats it is a plain value copy: read it and let it go stale.
type DiskStats struct {
	Hits    int64 // entries loaded intact from disk
	Misses  int64 // lookups that found no entry
	Corrupt int64 // entries dropped as corrupt (degraded to misses)
	Writes  int64 // entries written
}

// Stats returns the disk-tier counters.
func (d *DiskCache) Stats() DiskStats {
	return DiskStats{
		Hits:    d.hits.Load(),
		Misses:  d.misses.Load(),
		Corrupt: d.corrupt.Load(),
		Writes:  d.writes.Load(),
	}
}

// diskEntry is the JSON envelope of one persisted compile outcome. Sum is
// the hex sha256 over (Source, Top, Backend, Error) and is what makes
// reads corruption-evident: any bit flip in the payload (or a stale
// rename of a different key's file) fails the checksum and the entry is
// treated as absent.
type diskEntry struct {
	Top     string `json:"top"`
	Backend string `json:"backend"`
	Source  string `json:"source"`
	Error   string `json:"error,omitempty"`
	Sum     string `json:"sum"`
}

func (e *diskEntry) checksum() string {
	h := sha256.New()
	for _, s := range []string{e.Source, e.Top, e.Backend, e.Error} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entryName is the content address: hex sha256 over the same triple that
// keys the in-memory tier.
func entryName(src, top string, backend Backend) string {
	h := sha256.New()
	for _, s := range []string{src, top, backend.String()} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)) + ".json"
}

// load returns the persisted outcome for (src, top, backend). ok is false
// on a miss or a corrupt entry; corrupt entries are deleted so the
// rewrite after recompilation starts clean.
func (d *DiskCache) load(src, top string, backend Backend) (e diskEntry, ok bool) {
	path := filepath.Join(d.dir, entryName(src, top, backend))
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		d.misses.Add(1)
		return diskEntry{}, false
	}
	if err != nil {
		d.corrupt.Add(1)
		return diskEntry{}, false
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Sum != e.checksum() {
		d.corrupt.Add(1)
		os.Remove(path)
		return diskEntry{}, false
	}
	d.hits.Add(1)
	return e, true
}

// store persists one compile outcome. Failures are silent by design: the
// disk tier is an accelerator, and a full or read-only disk must never
// fail a compile that already succeeded in memory.
func (d *DiskCache) store(src, top string, backend Backend, compileErr error) {
	e := diskEntry{Top: top, Backend: backend.String(), Source: src}
	if compileErr != nil {
		e.Error = compileErr.Error()
	}
	e.Sum = e.checksum()
	data, err := json.Marshal(&e)
	if err != nil {
		return
	}
	path := filepath.Join(d.dir, entryName(src, top, backend))
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.writes.Add(1)
}

// entries walks the tier and decodes every intact entry, skipping (and
// counting) corrupt ones. Used by WarmFromDisk.
func (d *DiskCache) entries() []diskEntry {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var out []diskEntry
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(d.dir, de.Name()))
		if err != nil {
			d.corrupt.Add(1)
			continue
		}
		var e diskEntry
		if err := json.Unmarshal(data, &e); err != nil || e.Sum != e.checksum() {
			d.corrupt.Add(1)
			os.Remove(filepath.Join(d.dir, de.Name()))
			continue
		}
		out = append(out, e)
	}
	return out
}
