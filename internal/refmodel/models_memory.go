package refmodel

func init() {
	register("ram_sp", func() Model { return &ramModel{} })
	register("fifo_sync", func() Model { return &fifoModel{} })
	register("lifo_stack", func() Model { return &lifoModel{} })
	register("shift_register", func() Model { return &shiftRegModel{} })
}

type ramModel struct {
	mem  [16]uint64
	dout uint64
}

func (m *ramModel) Reset() {
	m.mem = [16]uint64{}
	m.dout = 0
}

func (m *ramModel) Step(in map[string]uint64) map[string]uint64 {
	addr := in["addr"] & 15
	// Read-before-write: the registered read sees the pre-edge contents.
	next := m.mem[addr]
	if in["we"] != 0 {
		m.mem[addr] = mask(in["din"], 8)
	}
	m.dout = next
	return map[string]uint64{"dout": m.dout}
}

type fifoModel struct {
	mem  [8]uint64
	wptr uint64
	rptr uint64
}

func (m *fifoModel) Reset() {
	m.mem = [8]uint64{}
	m.wptr, m.rptr = 0, 0
}

func (m *fifoModel) full() bool {
	return (m.wptr>>3) != (m.rptr>>3) && (m.wptr&7) == (m.rptr&7)
}

func (m *fifoModel) empty() bool { return m.wptr == m.rptr }

func (m *fifoModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.wptr, m.rptr = 0, 0
	} else {
		wasFull, wasEmpty := m.full(), m.empty()
		if in["wr_en"] != 0 && !wasFull {
			m.mem[m.wptr&7] = mask(in["din"], 8)
			m.wptr = mask(m.wptr+1, 4)
		}
		if in["rd_en"] != 0 && !wasEmpty {
			m.rptr = mask(m.rptr+1, 4)
		}
	}
	return map[string]uint64{
		"dout":  m.mem[m.rptr&7],
		"full":  b2u(m.full()),
		"empty": b2u(m.empty()),
	}
}

type lifoModel struct {
	mem [8]uint64
	sp  uint64
}

func (m *lifoModel) Reset() {
	m.mem = [8]uint64{}
	m.sp = 0
}

func (m *lifoModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.sp = 0
	} else {
		if in["push"] != 0 && m.sp != 8 {
			m.mem[m.sp&7] = mask(in["din"], 8)
			m.sp = mask(m.sp+1, 4)
		} else if in["pop"] != 0 && m.sp != 0 {
			m.sp = mask(m.sp-1, 4)
		}
	}
	out := map[string]uint64{
		"full":  b2u(m.sp == 8),
		"empty": b2u(m.sp == 0),
	}
	if m.sp == 0 {
		out["dout"] = 0
	} else {
		out["dout"] = m.mem[(m.sp-1)&7]
	}
	return out
}

type shiftRegModel struct {
	q uint64
}

func (m *shiftRegModel) Reset() { m.q = 0 }

func (m *shiftRegModel) Step(in map[string]uint64) map[string]uint64 {
	switch {
	case in["rst_n"] == 0:
		m.q = 0
	case in["en"] != 0:
		if in["dir"] != 0 {
			m.q = (in["sin"]&1)<<7 | m.q>>1
		} else {
			m.q = mask(m.q<<1, 8) | in["sin"]&1
		}
	}
	return map[string]uint64{"q": m.q}
}
