// Package service is the verification-as-a-service layer: the unified
// job/options surface shared by the HTTP server (cmd/uvllmd) and the
// batch CLIs (cmd/uvllm, cmd/experiments), a bounded fair-scheduled job
// runner over core.Verify, and the server front-end itself. Before this
// layer, the backend/coverage/formal/lanes/workers knobs were triplicated
// across uvm.Config, core.Options and exp.Config with per-command flag
// parsing; Options is now the single definition and Validate the single
// validation path, so a job means the same thing everywhere it is
// submitted.
package service

import (
	"fmt"

	"uvllm/internal/core"
	"uvllm/internal/exp"
	"uvllm/internal/formal"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// Options is the one composable knob set of the verification stack: the
// five settings that used to be re-declared (and re-validated, and
// allowed to drift) across uvm.Config, core.Options, exp.Config and
// every command's flag block. The old structs keep their fields — they
// are the thin adapter surface the Core/Exp/UVM/Stim methods fill in —
// so existing call sites and the differential gates are byte-identical.
//
// The zero value is valid and means: compiled backend, coverage off,
// formal off, sequential (no batch lanes), default worker count. Backend
// is a string rather than a sim.Backend so the same struct is the wire
// format of the server's JSON API and the target of CLI flag parsing;
// Validate is the one place it is checked.
type Options struct {
	// Backend selects the simulation engine: "compiled" (default, also
	// "") or "event".
	Backend string `json:"backend,omitempty"`
	// Cover enables structural coverage collection (statements,
	// branches, toggles, FSM occupancy) during UVM runs.
	Cover bool `json:"cover,omitempty"`
	// Formal requests a bounded equivalence proof of the delivered
	// source against the golden after a successful verification.
	Formal bool `json:"formal,omitempty"`
	// Induction runs the equivalence proof through k-induction instead
	// of plain BMC: the same bounded base, plus an inductive step that
	// can upgrade the verdict to unbounded ("equivalent for all time").
	// Implies Formal.
	Induction bool `json:"induction,omitempty"`
	// FormalDepth is the proof unrolling depth in cycles (0 = the formal
	// engine's default).
	FormalDepth int `json:"formal_depth,omitempty"`
	// Lanes selects batched lane simulation where a consumer supports it
	// (coverage-directed candidate scoring, sweep oracles); 0 or 1 keeps
	// the sequential path.
	Lanes int `json:"lanes,omitempty"`
	// Workers sizes the worker pool of whatever runs the job set — the
	// evaluation harness or the server's runner (0 = NumCPU).
	Workers int `json:"workers,omitempty"`
	// Trace streams hierarchical trace spans for the job: the runner
	// traces every pipeline phase (preprocess, iterations, uvm
	// compile/run, formal depths) and emits each span as a "span" event
	// on the job's SSE stream as it closes. Off (the default) costs one
	// nil check per phase.
	Trace bool `json:"trace,omitempty"`
}

// Validate is the single validation path for the shared knobs: both CLIs
// and the server route every submission through it, so a value rejected
// on the command line is rejected identically over HTTP.
func (o Options) Validate() error {
	if _, err := sim.ParseBackend(o.Backend); err != nil {
		return err
	}
	if o.FormalDepth < 0 {
		return fmt.Errorf("formal-depth must be >= 0, got %d", o.FormalDepth)
	}
	if o.Lanes < 0 {
		return fmt.Errorf("lanes must be >= 0, got %d", o.Lanes)
	}
	if o.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", o.Workers)
	}
	return nil
}

// SimBackend returns the parsed simulation backend. Unknown names fall
// back to the compiled default — call Validate first to reject them.
func (o Options) SimBackend() sim.Backend {
	b, err := sim.ParseBackend(o.Backend)
	if err != nil {
		return sim.BackendCompiled
	}
	return b
}

// CoverOptions returns the sim coverage selection the Cover knob stands
// for: everything on, or the zero (free) value.
func (o Options) CoverOptions() sim.CoverOptions {
	if o.Cover {
		return sim.CoverAll()
	}
	return sim.CoverOptions{}
}

// BMCDepth returns the effective formal unrolling depth.
func (o Options) BMCDepth() int {
	if o.FormalDepth > 0 {
		return o.FormalDepth
	}
	return formal.DefaultBMCDepth
}

// Core fills the shared knobs into a core.Options, leaving every
// job-specific field of base untouched.
func (o Options) Core(base core.Options) core.Options {
	base.Backend = o.SimBackend()
	base.Cover = o.CoverOptions()
	return base
}

// Exp fills the shared knobs into an exp.Config, leaving every
// study-specific field of base untouched.
func (o Options) Exp(base exp.Config) exp.Config {
	base.Backend = o.SimBackend()
	base.Workers = o.Workers
	return base
}

// UVM fills the shared knobs into a uvm.Config, leaving every
// testbench-specific field of base untouched.
func (o Options) UVM(base uvm.Config) uvm.Config {
	base.Backend = o.SimBackend()
	base.Cover = o.CoverOptions()
	return base
}

// Stim fills the shared knobs into a uvm.StimConfig, leaving every
// stimulus-specific field of base untouched.
func (o Options) Stim(base uvm.StimConfig) uvm.StimConfig {
	base.Lanes = o.Lanes
	base.Cover = o.CoverOptions()
	return base
}

// merge fills zero-valued knobs from the server-level defaults; booleans
// combine with or-semantics (a server started with -cover collects
// coverage for every job, and a job can still opt in on its own).
func (o Options) merge(def Options) Options {
	if o.Backend == "" {
		o.Backend = def.Backend
	}
	o.Cover = o.Cover || def.Cover
	o.Formal = o.Formal || def.Formal
	o.Induction = o.Induction || def.Induction
	o.Trace = o.Trace || def.Trace
	if o.FormalDepth == 0 {
		o.FormalDepth = def.FormalDepth
	}
	if o.Lanes == 0 {
		o.Lanes = def.Lanes
	}
	if o.Workers == 0 {
		o.Workers = def.Workers
	}
	return o
}
