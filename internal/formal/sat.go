package formal

// CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
// analysis with clause learning, VSIDS-lite decision ordering (activity
// heap with exponential decay), phase saving and Luby restarts. Standard
// library only, like every engine in this repository; sized for the
// bit-blasted miters of small RTL designs (thousands of variables).

// SolveStats counts solver work for the BMC depth / conflict statistics
// reported by cmd/experiments -v.
type SolveStats struct {
	Vars         int
	Clauses      int
	Conflicts    int
	Decisions    int
	Propagations int
	Restarts     int
	Learned      int
}

// Solver is a single-use CDCL SAT solver: add clauses, call Solve once,
// read the model with Value.
type Solver struct {
	// MaxConflicts, when positive, bounds the search: Solve gives up
	// after that many conflicts and reports false with Exhausted() set.
	// The cutoff is deterministic, so budgeted callers (the differential
	// oracles) skip the same hard instances on every run.
	MaxConflicts int
	exhausted    bool

	nVars   int
	clauses []*satClause
	watches [][]*satClause // per internal literal

	assign   []int8 // per var: 0 unassigned, 1 true, -1 false
	level    []int
	reason   []*satClause
	trail    []int // internal literals in assignment order
	trailLim []int // trail length at each decision level
	qhead    int

	activity []float64
	varInc   float64
	heap     []int // binary max-heap of vars by activity
	heapPos  []int // var -> heap index, -1 when absent
	phase    []bool

	seen  []bool
	unsat bool
	stats SolveStats
}

// NewSolver creates a solver over variables 1..numVars.
func NewSolver(numVars int) *Solver {
	s := &Solver{
		nVars:    numVars,
		watches:  make([][]*satClause, 2*numVars+2),
		assign:   make([]int8, numVars+1),
		level:    make([]int, numVars+1),
		reason:   make([]*satClause, numVars+1),
		activity: make([]float64, numVars+1),
		varInc:   1.0,
		heapPos:  make([]int, numVars+1),
		phase:    make([]bool, numVars+1),
		seen:     make([]bool, numVars+1),
	}
	for v := 1; v <= numVars; v++ {
		s.heapPos[v] = -1
		s.heapPush(v)
	}
	s.stats.Vars = numVars
	return s
}

// NewSolverCNF creates a solver preloaded with a clause set.
func NewSolverCNF(c *CNF) *Solver {
	s := NewSolver(c.NumVars)
	for _, cl := range c.Clauses {
		s.AddClause(cl...)
	}
	return s
}

type satClause struct {
	lits    []int32 // internal encoding: var<<1 | sign (sign 1 = negated)
	learned bool
}

// intLit converts a DIMACS-style literal to the internal encoding.
func intLit(l int) int32 {
	if l < 0 {
		return int32(-l)<<1 | 1
	}
	return int32(l) << 1
}

func litVar(l int32) int   { return int(l >> 1) }
func litNeg(l int32) int32 { return l ^ 1 }

// value returns 1/-1/0 for an internal literal under the current
// assignment.
func (s *Solver) value(l int32) int8 {
	v := s.assign[litVar(l)]
	if l&1 == 1 {
		return -v
	}
	return v
}

// AddClause adds one clause in DIMACS-style literals. Adding an empty (or
// all-false) clause marks the instance unsatisfiable.
func (s *Solver) AddClause(lits ...int) {
	if s.unsat {
		return
	}
	// Deduplicate and drop tautologies with a linear scan: clauses are
	// short (Tseitin emits 2-3 literals) and this path loads every
	// clause of every solve, so a per-clause map would be pure overhead.
	var ls []int32
	for _, l := range lits {
		dup := false
		for _, prev := range ls {
			if prev == intLit(l) {
				dup = true
				break
			}
			if prev == litNeg(intLit(l)) {
				return // tautology
			}
		}
		if !dup {
			ls = append(ls, intLit(l))
		}
	}
	s.stats.Clauses++
	switch len(ls) {
	case 0:
		s.unsat = true
	case 1:
		if !s.enqueue(ls[0], nil) {
			s.unsat = true
		}
	default:
		c := &satClause{lits: ls}
		s.clauses = append(s.clauses, c)
		s.watch(c)
	}
}

func (s *Solver) watch(c *satClause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], c)
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
}

// enqueue assigns a literal true (with an optional reason clause),
// returning false on conflict with the existing assignment.
func (s *Solver) enqueue(l int32, from *satClause) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := litVar(l)
	if l&1 == 1 {
		s.assign[v] = -1
		s.phase[v] = false
	} else {
		s.assign[v] = 1
		s.phase[v] = true
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, int(l))
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate runs unit propagation to fixpoint, returning a conflicting
// clause or nil.
func (s *Solver) propagate() *satClause {
	for s.qhead < len(s.trail) {
		l := int32(s.trail[s.qhead])
		s.qhead++
		s.stats.Propagations++
		neg := litNeg(l) // watch lists to service: clauses watching ~l
		ws := s.watches[neg]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is at position 1.
			if c.lits[0] == neg {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			// Look for a replacement watch.
			found := false
			for j := 2; j < len(c.lits); j++ {
				if s.value(c.lits[j]) != -1 {
					c.lits[1], c.lits[j] = c.lits[j], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				copy(ws[len(kept):], ws[i+1:])
				s.watches[neg] = ws[:len(kept)+len(ws)-i-1]
				return c
			}
		}
		s.watches[neg] = kept
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *satClause) ([]int32, int) {
	learned := []int32{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p int32 = -1
	idx := len(s.trail) - 1

	bump := func(v int) {
		s.activity[v] += s.varInc
		if s.activity[v] > 1e100 {
			for i := 1; i <= s.nVars; i++ {
				s.activity[i] *= 1e-100
			}
			s.varInc *= 1e-100
		}
		s.heapFix(v)
	}

	for {
		for _, q := range confl.lits {
			if p >= 0 && q == p {
				continue
			}
			v := litVar(q)
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			bump(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Walk the trail back to the next seen literal.
		for {
			p = int32(s.trail[idx])
			idx--
			if s.seen[litVar(p)] {
				break
			}
		}
		v := litVar(p)
		s.seen[v] = false
		counter--
		if counter == 0 {
			learned[0] = litNeg(p)
			break
		}
		confl = s.reason[v]
	}

	// Backjump level: the highest level among the non-asserting literals.
	back := 0
	for i := 1; i < len(learned); i++ {
		if lv := s.level[litVar(learned[i])]; lv > back {
			back = lv
		}
	}
	// Move a literal of the backjump level into the second watch slot.
	for i := 1; i < len(learned); i++ {
		if s.level[litVar(learned[i])] == back {
			learned[1], learned[i] = learned[i], learned[1]
			break
		}
	}
	for i := 1; i < len(learned); i++ {
		s.seen[litVar(learned[i])] = false
	}
	s.varInc /= 0.95
	return learned, back
}

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	lim := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := litVar(int32(s.trail[i]))
		s.assign[v] = 0
		s.reason[v] = nil
		if s.heapPos[v] < 0 {
			s.heapPush(v)
		}
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = lim
}

// pickBranch pops the highest-activity unassigned variable.
func (s *Solver) pickBranch() int32 {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == 0 {
			if s.phase[v] {
				return int32(v) << 1
			}
			return int32(v)<<1 | 1
		}
	}
	return -1
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int) int {
	// Find the finite subsequence containing i.
	k := 1
	for (1<<uint(k))-1 < i {
		k++
	}
	for (1<<uint(k))-1 != i {
		i -= (1 << uint(k-1)) - 1
		k = 1
		for (1<<uint(k))-1 < i {
			k++
		}
	}
	return 1 << uint(k-1)
}

// Solve runs the CDCL loop and reports satisfiability. It must be called
// at most once per Solver.
func (s *Solver) Solve() bool {
	if s.unsat {
		return false
	}
	if confl := s.propagate(); confl != nil {
		s.unsat = true
		return false
	}
	restart := 1
	budget := 64 * luby(restart)
	conflictsHere := 0
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictsHere++
			if s.MaxConflicts > 0 && s.stats.Conflicts >= s.MaxConflicts {
				s.exhausted = true
				return false
			}
			if s.decisionLevel() == 0 {
				s.unsat = true
				return false
			}
			learned, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learned) == 1 {
				s.enqueue(learned[0], nil)
			} else {
				c := &satClause{lits: learned, learned: true}
				s.clauses = append(s.clauses, c)
				s.stats.Learned++
				s.watch(c)
				s.enqueue(learned[0], c)
			}
			continue
		}
		if conflictsHere >= budget {
			// Restart: keep learned clauses and phases, drop assignments.
			s.stats.Restarts++
			restart++
			budget = 64 * luby(restart)
			conflictsHere = 0
			s.cancelUntil(0)
			continue
		}
		l := s.pickBranch()
		if l < 0 {
			return true // all variables assigned, no conflict
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(l, nil)
	}
}

// Value reports the model value of a variable after a satisfiable Solve.
// Variables the solver never saw read false.
func (s *Solver) Value(v int) bool {
	if v <= 0 || v > s.nVars {
		return false
	}
	return s.assign[v] == 1
}

// Stats returns the work counters of the solve.
func (s *Solver) Stats() SolveStats { return s.stats }

// Exhausted reports whether Solve gave up on the MaxConflicts budget
// (in which case its false return is "unknown", not UNSAT).
func (s *Solver) Exhausted() bool { return s.exhausted }

// --- activity heap -----------------------------------------------------

func (s *Solver) heapLess(a, b int) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapPush(v int) {
	s.heap = append(s.heap, v)
	s.heapPos[v] = len(s.heap) - 1
	s.heapUp(len(s.heap) - 1)
}

func (s *Solver) heapPop() int {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heapPos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *Solver) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Solver) heapDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.heap) && s.heapLess(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < len(s.heap) && s.heapLess(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heapSwap(i, smallest)
		i = smallest
	}
}

func (s *Solver) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heapPos[s.heap[i]] = i
	s.heapPos[s.heap[j]] = j
}

// heapFix restores heap order after an activity bump of v.
func (s *Solver) heapFix(v int) {
	if i := s.heapPos[v]; i >= 0 {
		s.heapUp(i)
	}
}
