//go:build !race

package rtlgen

// formalSweepStride selects which levelized TestSweep seeds get the
// formal fourth-oracle check: every Nth. Race-enabled builds use a
// sparser stride (stride_on_test.go) — the solver is single-threaded
// and deterministic, so the detector finds nothing there and would only
// multiply the sweep's wall time.
const formalSweepStride = 7
