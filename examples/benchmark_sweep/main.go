// benchmark_sweep: evaluate UVLLM and the MEIC baseline over a slice of
// the 331-instance error benchmark and print a miniature Table II — the
// workload the paper's evaluation section is built on.
//
//	go run ./examples/benchmark_sweep
package main

import (
	"fmt"

	"uvllm/internal/exp"
	"uvllm/internal/faultgen"
)

func main() {
	// One instance of every class on the Control group modules.
	var subset []*faultgen.Fault
	seen := map[string]bool{}
	for _, f := range faultgen.Benchmark() {
		m := f.Meta()
		if m.Category != "Control" {
			continue
		}
		key := f.Module + "/" + string(f.Class)
		if seen[key] {
			continue
		}
		seen[key] = true
		subset = append(subset, f)
	}
	fmt.Printf("sweeping %d Control-group instances (UVLLM + MEIC)...\n\n", len(subset))

	recs := exp.Run(exp.Config{Seed: 1, Instances: subset})

	fmt.Printf("%-34s %-10s %-8s %-8s %-8s\n", "instance", "kind", "UVLLM", "stage", "MEIC")
	for _, r := range recs {
		kind := "func"
		if r.Fault.Class.IsSyntax() {
			kind = "syntax"
		}
		fmt.Printf("%-34s %-10s %-8v %-8s %-8v\n",
			r.Fault.ID, kind, r.UVLLMFix, shortStage(string(r.UVLLM.FixedStage)), r.MEICFix)
	}

	rows := exp.Table2(recs)
	fmt.Println()
	fmt.Print(exp.FormatTable2(rows))
}

func shortStage(s string) string {
	switch s {
	case "pre-processing":
		return "pre"
	case "repair-ms":
		return "ms"
	case "repair-sl":
		return "sl"
	}
	return "-"
}
