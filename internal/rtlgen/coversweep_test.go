package rtlgen

import (
	"strings"
	"testing"

	"uvllm/internal/cover"
	"uvllm/internal/metrics"
)

// TestDirectedBeatsRandomMedian is the acceptance gate for the
// coverage-directed stimulus layer: over a fixed population of seeded
// generated designs, directed stimulus must reach strictly higher median
// structural coverage than uniform random stimulus at the same cycle
// budget. Everything is seeded, so the comparison is deterministic.
func TestDirectedBeatsRandomMedian(t *testing.T) {
	const (
		nDesigns = 24 // well above the required >=10
		budget   = 48 // cycles per design per method
	)
	runs, _, err := CoverSweep(1, nDesigns, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 10 {
		t.Fatalf("only %d designs evaluated", len(runs))
	}
	var random, directed []float64
	wins, losses := 0, 0
	for _, r := range runs {
		random = append(random, r.RandomPct)
		directed = append(directed, r.DirectedPct)
		switch {
		case r.DirectedPct > r.RandomPct:
			wins++
		case r.DirectedPct < r.RandomPct:
			losses++
		}
	}
	mr, md := metrics.Median(random), metrics.Median(directed)
	if md <= mr {
		t.Fatalf("directed median %.3f%% must be strictly higher than random median %.3f%% (wins=%d losses=%d)",
			md, mr, wins, losses)
	}
	if wins <= losses {
		t.Fatalf("directed should win more designs than it loses: wins=%d losses=%d", wins, losses)
	}
	t.Logf("median coverage: random %.2f%%, directed %.2f%% (wins=%d ties=%d losses=%d)",
		mr, md, wins, len(runs)-wins-losses, losses)
}

// TestCoverSweepKeepLogic checks the corpus-retention rule: a design is
// kept exactly when its directed run hits generator-shape points the
// cumulative map has not absorbed, so replaying the same seeds against
// the already-merged map keeps nothing.
func TestCoverSweepKeepLogic(t *testing.T) {
	cum := cover.New()
	first, err := coverSweepInto(cum, 1, 4, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range first {
		if r.Kept != (r.NewPoints > 0) {
			t.Fatalf("seed %d: Kept=%v with NewPoints=%d", r.Design.Seed, r.Kept, r.NewPoints)
		}
	}
	if !first[0].Kept {
		t.Fatal("the first design against an empty map must be kept")
	}
	replay, err := coverSweepInto(cum, 1, 4, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range replay {
		if r.Kept || r.NewPoints != 0 {
			t.Fatalf("replayed seed %d still reported %d new points", r.Design.Seed, r.NewPoints)
		}
	}
}

func TestCoverSweepCorporaRecorded(t *testing.T) {
	runs, cum, err := CoverSweep(5, 3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if cum.Hit() == 0 {
		t.Fatal("cumulative map empty after a sweep")
	}
	for _, r := range runs {
		if r.Corpus == nil {
			t.Fatalf("seed %d: nil corpus", r.Design.Seed)
		}
		if r.RandomPct <= 0 || r.DirectedPct <= 0 {
			t.Fatalf("seed %d: degenerate coverage %v/%v", r.Design.Seed, r.RandomPct, r.DirectedPct)
		}
	}
	out := FormatCoverSweep(runs, cum)
	if !strings.Contains(out, "kept") || !strings.Contains(out, "cumulative shape coverage") {
		t.Fatalf("FormatCoverSweep output malformed:\n%s", out)
	}
}
