package service

import (
	"context"
	"fmt"

	"uvllm/internal/core"
	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/formal"
	"uvllm/internal/llm"
	"uvllm/internal/obs"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// JobSpec is one verification job as submitted — over HTTP to cmd/uvllmd
// or assembled from flags by cmd/uvllm. Both front-ends build the same
// spec, validate it through the same Validate, and execute it through the
// same Execute, so a job means the same thing (and produces the same
// verdict) everywhere.
type JobSpec struct {
	// Module names the benchmark module supplying the specification,
	// reference model and clocking. Required.
	Module string `json:"module"`
	// Source, when set, is the DUT Verilog to verify (a submit-design
	// job). Empty means verify the module's golden source, or the
	// injected fault when Inject is set.
	Source string `json:"source,omitempty"`
	// Inject, when set, names a fault class to inject into the module (a
	// submit-repair job); Variant picks the instance.
	Inject string `json:"inject,omitempty"`
	// Variant is the fault variant index for Inject.
	Variant int `json:"variant,omitempty"`
	// Seed is the deterministic seed (0 = 1, the CLI default).
	Seed int64 `json:"seed,omitempty"`
	// Mode is the repair generation form: "pair" (default) or "complete".
	Mode string `json:"mode,omitempty"`
	// Vectors is the UVM transactions per evaluation (0 = pipeline
	// default).
	Vectors int `json:"vectors,omitempty"`
	// MaxIterations is the repair-loop budget (0 = pipeline default).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Tenant labels the submitter for fair scheduling; empty is the
	// anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
	// Options carries the shared verification knobs.
	Options Options `json:"options"`
}

// Validate checks the spec without doing any pipeline work. It is the
// one validation path shared by the server (400 on failure) and the CLIs
// (usage error on failure).
func (s JobSpec) Validate() error {
	if s.Module == "" {
		return fmt.Errorf("module is required")
	}
	if dataset.ByName(s.Module) == nil {
		return fmt.Errorf("unknown module %q", s.Module)
	}
	if s.Source != "" && s.Inject != "" {
		return fmt.Errorf("source and inject are mutually exclusive")
	}
	if s.Variant < 0 {
		return fmt.Errorf("variant must be >= 0, got %d", s.Variant)
	}
	if s.Inject != "" {
		known := false
		for _, c := range faultgen.Classes() {
			if string(c) == s.Inject {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown fault class %q", s.Inject)
		}
	}
	if s.Mode != "" && s.Mode != "pair" && s.Mode != "complete" {
		return fmt.Errorf("mode must be %q or %q, got %q", "pair", "complete", s.Mode)
	}
	if s.Vectors < 0 {
		return fmt.Errorf("vectors must be >= 0, got %d", s.Vectors)
	}
	if s.MaxIterations < 0 {
		return fmt.Errorf("max_iterations must be >= 0, got %d", s.MaxIterations)
	}
	return s.Options.Validate()
}

// Input is the resolved DUT of a validated spec: the source to verify,
// the golden it is measured against, and the oracle-knowledge fields.
type Input struct {
	// Source is the DUT as it enters the pipeline.
	Source string
	// Golden is the verified reference source.
	Golden string
	// Class is the fault class for the repair oracle's knowledge.
	Class string
	// FaultID identifies the benchmark instance ("<module>/cli" for
	// user-submitted sources).
	FaultID string
	// Descr is a human-readable description of what is being verified.
	Descr string
}

// Resolve materializes the spec's DUT: the raw module, the submitted
// source, or the injected fault variant. It assumes a validated spec and
// reports fault-expressibility errors (the one check that needs the
// generator to run).
func (s JobSpec) Resolve() (Input, error) {
	m := dataset.ByName(s.Module)
	if m == nil {
		return Input{}, fmt.Errorf("unknown module %q", s.Module)
	}
	in := Input{
		Source: m.Source, Golden: m.Source,
		Class: "FuncLogic", FaultID: m.Name + "/cli", Descr: "(user input)",
	}
	switch {
	case s.Source != "":
		in.Source = s.Source
	case s.Inject != "":
		fs := faultgen.Generate(m, faultgen.Class(s.Inject))
		if len(fs) == 0 {
			return Input{}, fmt.Errorf("class %s is not expressible on %s", s.Inject, m.Name)
		}
		if s.Variant >= len(fs) {
			return Input{}, fmt.Errorf("module %s has %d %s variants", m.Name, len(fs), s.Inject)
		}
		f := fs[s.Variant]
		in = Input{Source: f.Source, Golden: f.Golden, Class: string(f.Class), FaultID: f.ID, Descr: f.Descr}
	}
	return in, nil
}

// Services is the process-wide simulation state a job executes against:
// the compile cache (with its optional disk tier), the golden-trace
// memo and the metrics registry. The zero value is not usable; resolve
// with DefaultServices or supply test-local instances.
type Services struct {
	// Cache is the content-addressed compile cache.
	Cache *sim.Cache
	// Memo is the golden-trace memo.
	Memo *uvm.TraceMemo
	// Obs is the metrics registry jobs report into (solver-work
	// histograms, cancellation counters). nil disables metric recording
	// at the cost of one nil check per site — the CLI default; the
	// runner fills it in so the server always observes.
	Obs *obs.Registry
}

// DefaultServices returns the process-wide shared cache and memo — what
// both CLIs and the server use, so every front-end amortizes the same
// compiled state. The registry is left nil (metrics off) — the runner
// supplies one.
func DefaultServices() Services {
	return Services{Cache: sim.SharedCache(), Memo: uvm.SharedTraceMemo()}
}

// Result is the terminal outcome of one job. Every field is
// deterministic for a given (JobSpec, oracle profile): the load gate
// compares concurrently-served Results byte-for-byte against sequential
// execution.
type Result struct {
	// Success reports whether the final UVM testbench passed.
	Success bool `json:"success"`
	// Stage is the pipeline segment that produced the passing code.
	Stage string `json:"stage"`
	// Iterations is the number of repair iterations consumed.
	Iterations int `json:"iterations"`
	// PassRate is the best scoreboard pass rate reached (0..1).
	PassRate float64 `json:"pass_rate"`
	// FinalScore is the scoreboard pass rate of the delivered source.
	FinalScore float64 `json:"final_score"`
	// Coverage is the best port-level coverage percent.
	Coverage float64 `json:"coverage"`
	// StructCoverage is the best structural coverage percent (0 unless
	// the cover knob was on).
	StructCoverage float64 `json:"struct_coverage,omitempty"`
	// Formal is the proof outcome when the formal knob was on: "proved",
	// "refuted" or "unsupported". Empty when formal was off or the UVM
	// verdict already failed.
	Formal string `json:"formal,omitempty"`
	// FormalDetail is the human-readable proof summary or counterexample.
	FormalDetail string `json:"formal_detail,omitempty"`
	// Descr describes what was verified (the injected fault or "(user
	// input)").
	Descr string `json:"descr,omitempty"`
	// Times is the modeled execution-time split.
	Times core.StageTimes `json:"times"`
	// Usage is the LLM token accounting.
	Usage llm.Usage `json:"usage"`
	// Final is the delivered source.
	Final string `json:"final,omitempty"`
	// Cancelled reports the job's context was cancelled and the pipeline
	// stopped at an iteration boundary; the other fields carry whatever
	// progress was made.
	Cancelled bool `json:"cancelled,omitempty"`
	// Log is the pipeline log.
	Log []string `json:"log,omitempty"`
	// Error is set when the job could not run at all (bad spec caught
	// late, inexpressible fault class); the job lands in the failed
	// state.
	Error string `json:"error,omitempty"`
}

// Failed reports whether the job should land in the failed terminal
// state: it could not run, the testbench verdict is negative, or a
// requested proof was refuted — the same condition under which cmd/uvllm
// exits non-zero.
func (r Result) Failed() bool {
	return r.Error != "" || !r.Success || r.Formal == "refuted"
}

// Execute runs one job synchronously under a background context — the
// CLI entry point. See ExecuteCtx.
func Execute(spec JobSpec, svc Services, emit func(Event)) Result {
	return ExecuteCtx(context.Background(), spec, svc, emit)
}

// ExecuteCtx runs one job synchronously: fault injection or source
// intake, the full core.Verify pipeline, and the optional bounded
// equivalence proof. Progress is streamed through emit (which may be
// nil); the events carry per-iteration verdicts from
// core.Options.OnProgress and a final formal status. Cancelling ctx
// stops the repair loop and the formal check at the next iteration or
// depth boundary, returning a Result with Cancelled set; a span carried
// by ctx (obs.ContextWith) roots the job's phase trace. ExecuteCtx is
// safe for concurrent use — all mutable state is job-local or behind
// the Services' own synchronization.
func ExecuteCtx(ctx context.Context, spec JobSpec, svc Services, emit func(Event)) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if emit == nil {
		emit = func(Event) {}
	}
	setupSp := obs.FromContext(ctx).Child("setup")
	if err := spec.Validate(); err != nil {
		setupSp.End()
		return Result{Error: err.Error()}
	}
	m := dataset.ByName(spec.Module)
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	in, err := spec.Resolve()
	if err != nil {
		setupSp.End()
		return Result{Error: err.Error()}
	}

	genMode := llm.ModePair
	if spec.Mode == "complete" {
		genMode = llm.ModeComplete
	}
	client := llm.NewOracle(llm.Knowledge{
		FaultID: in.FaultID, Golden: in.Golden, Class: in.Class,
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, llm.DefaultProfile(), seed)
	setupSp.End()

	opts := spec.Options.Core(core.Options{
		Seed: seed, Mode: genMode,
		UVMVectors:    spec.Vectors,
		MaxIterations: spec.MaxIterations,
		Cache:         svc.Cache, Memo: svc.Memo,
	})
	opts.OnProgress = func(p core.Progress) {
		emit(Event{
			Kind: EventIteration, Iteration: p.Iteration, Stage: string(p.Stage),
			Score: p.Score, Best: p.Best, Coverage: p.Coverage,
			StructCoverage: p.StructCoverage, Rollback: p.Rollback,
		})
	}

	res := core.Verify(ctx, core.Input{
		Source: in.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: client, Opts: opts,
	})
	out := Result{
		Success: res.Success, Stage: string(res.FixedStage),
		Iterations: res.Iterations, PassRate: res.PassRate,
		FinalScore: res.FinalScore, Coverage: res.Coverage,
		StructCoverage: res.StructCoverage, Descr: in.Descr,
		Times: res.Times, Usage: res.Usage, Final: res.Final,
		Cancelled: res.Cancelled, Log: res.Log,
	}

	if (spec.Options.Formal || spec.Options.Induction) && res.Success {
		out.Formal, out.FormalDetail = prove(ctx, res.Final, in.Golden, m, spec.Options.BMCDepth(), spec.Options.Induction, svc)
		emit(Event{Kind: EventFormal, Formal: out.Formal, Message: out.FormalDetail})
	}
	return out
}

// prove checks the delivered source against the golden — the
// service-layer twin of cmd/uvllm's formal gate: plain BMC, or
// k-induction when the induction knob is on (a closed inductive step
// upgrades the detail to "for all time"; the status strings stay the
// same three values either way). Designs outside the blastable subset
// report "unsupported": the simulation verdict stands alone, exactly as
// in the CLI. The check honours ctx at depth boundaries, traces under
// the ctx span, and records per-call solver work into the registry's
// histograms.
func prove(ctx context.Context, final, golden string, m *dataset.Module, depth int, induction bool, svc Services) (status, detail string) {
	cache := svc.Cache
	sp := obs.FromContext(ctx).Child("formal")
	defer sp.End()
	g, err := cache.Compile(golden, m.Top, sim.BackendCompiled)
	if err != nil {
		return "unsupported", fmt.Sprintf("golden does not compile: %v", err)
	}
	c, err := cache.Compile(final, m.Top, sim.BackendCompiled)
	if err != nil {
		return "refuted", fmt.Sprintf("delivered source does not compile: %v", err)
	}
	fopts := formal.Options{Ctx: ctx, Span: sp}
	var res formal.EquivResult
	if induction {
		res, err = formal.InductionEquivOpts(g, c, m.Clock, depth, fopts)
	} else {
		res, err = formal.BMCEquivOpts(g, c, m.Clock, depth, fopts)
	}
	recordSolves(svc.Obs, res.Stats.Solves)
	if err != nil {
		return "unsupported", fmt.Sprintf("not checked: %v", err)
	}
	if res.Equivalent {
		if res.Unbounded {
			return "proved", fmt.Sprintf("equivalent to golden for all time — k-induction closed at window %d (%d AIG nodes, %d conflicts)",
				res.Depth, res.Stats.AIGNodes, res.Stats.Conflicts())
		}
		return "proved", fmt.Sprintf("equivalent to golden for every stimulus up to %d cycles (%d AIG nodes, %d conflicts)",
			depth, res.Stats.AIGNodes, res.Stats.Conflicts())
	}
	div, cyc, rerr := formal.ReplayCex(golden, final, m.Top, m.Clock, res.Cex, sim.BackendCompiled)
	return "refuted", fmt.Sprintf("diverges from golden at post-reset cycle %d on %s (replay: diverged=%v at cycle %d, err=%v); stimulus: %v",
		res.Cex.Cycle, res.Cex.Signal, div, cyc, rerr, res.Cex.Inputs)
}

// solverWorkBuckets bound the solver histograms: exponential, wide
// enough for the deep multiplier cones.
var (
	conflictBuckets    = obs.ExpBuckets(1, 4, 10)
	propagationBuckets = obs.ExpBuckets(16, 4, 10)
	restartBuckets     = obs.ExpBuckets(1, 2, 10)
)

// recordSolves folds one formal check's per-depth solver stats into the
// registry's solver-work histograms. No-op on a nil registry.
func recordSolves(reg *obs.Registry, solves []formal.SolveStats) {
	if reg == nil || len(solves) == 0 {
		return
	}
	conflicts := reg.Histogram("solver_conflicts", "SAT conflicts per solver call", conflictBuckets)
	props := reg.Histogram("solver_propagations", "SAT propagations per solver call", propagationBuckets)
	restarts := reg.Histogram("solver_restarts", "SAT restarts per solver call", restartBuckets)
	for _, s := range solves {
		conflicts.Observe(float64(s.Conflicts))
		props.Observe(float64(s.Propagations))
		restarts.Observe(float64(s.Restarts))
	}
}
