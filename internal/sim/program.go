package sim

import (
	"fmt"

	"uvllm/internal/verilog"
)

// Program is the immutable product of elaboration and compilation: the
// design tables, the compiled closure program (on the compiled backend),
// the levelization schedule and the fallback reason. A Program carries no
// simulation state and is safe to share between goroutines; per-run state
// lives in the Instances it creates. Compiling once and instantiating many
// times is the amortization lever of the whole pipeline — every UVM run,
// repair iteration, baseline and differential check re-simulates sources
// it has already compiled.
type Program struct {
	d         *Design
	backend   Backend
	code      *program // compiled closures; nil on the event-driven backend
	levelized bool

	coverOnceState // lazily built structural-coverage plan (cover.go)
}

// Compile elaborates top in f and, on the compiled backend, lowers the
// design into the closure program. No simulation state is created and no
// initial blocks run; use NewInstance for that.
func Compile(f *verilog.SourceFile, top string, backend Backend) (*Program, error) {
	d, err := Elaborate(f, top)
	if err != nil {
		return nil, err
	}
	p := &Program{d: d, backend: backend}
	if backend == BackendCompiled {
		// The compiler only needs the design tables and a zeroed arena for
		// constant folding (constOnly guards every staticEval, so no signal
		// value is ever read); the scratch instance never simulates.
		scratch := &Instance{d: d, vals: make([]uint64, len(d.sigs))}
		p.code = compileProgram(scratch)
		p.levelized = p.code.clean()
	}
	return p, nil
}

// CompileSource parses src and compiles module top. It returns an error
// for syntax errors, making it usable as the pipeline's "does it compile"
// gate exactly like CompileAndNew, without creating simulation state.
func CompileSource(src, top string, backend Backend) (*Program, error) {
	f, errs := verilog.Parse(src)
	if len(errs) > 0 {
		return nil, fmt.Errorf("sim: %s", errs[0].Error())
	}
	return Compile(f, top, backend)
}

// Design returns the elaborated design.
func (p *Program) Design() *Design { return p.d }

// Backend returns the engine the program was compiled for.
func (p *Program) Backend() Backend { return p.backend }

// Levelized reports whether instances of this program run the levelized
// straight-line sweep.
func (p *Program) Levelized() bool { return p.levelized }

// FallbackReason explains why instances are not running the levelized
// sweep ("" when they are, or on the event-driven backend).
func (p *Program) FallbackReason() string {
	if p.code == nil {
		return ""
	}
	return p.code.reason
}

// NewInstance allocates fresh simulation state for the program (signal
// arena, memories, event queues, NBA buffer), runs the initial blocks and
// settles. Instances of one Program are independent: any number may run
// concurrently on separate goroutines.
func (p *Program) NewInstance() (*Instance, error) {
	return p.newInstanceArena(make([]uint64, len(p.d.sigs)))
}

// newInstanceArena is NewInstance over a caller-provided signal arena
// (len(vals) must equal the design's signal count). Batch passes per-lane
// sub-slices of one contiguous pooled slab so K lanes share allocation
// and cache locality; the zeroed slab is ready to use because Reset
// rewrites every word anyway.
func (p *Program) newInstanceArena(vals []uint64) (*Instance, error) {
	s := &Instance{
		program:    p,
		d:          p.d,
		code:       p.code,
		levelized:  p.levelized,
		backend:    p.backend,
		vals:       vals,
		mems:       make([][]uint64, len(p.d.sigs)),
		inQueue:    make([]bool, len(p.d.procs)),
		inSeq:      make([]bool, len(p.d.procs)),
		running:    -1,
		DeltaLimit: 10000,
	}
	for i, si := range p.d.sigs {
		if si.isMem {
			s.mems[i] = make([]uint64, si.depth)
		}
	}
	if s.levelized {
		s.dirty = make([]bool, len(p.d.procs))
	}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// Snapshot is a point-in-time copy of one Instance's complete mutable
// state: signal arena, memories, pending event queues and the NBA buffer.
// Snapshots are deep copies — restoring one multiple times, or after the
// instance has moved on, always reproduces the captured state.
//
// Coverage contract: the accumulated coverage map is NOT part of a
// snapshot — coverage is observational, and rewinding an instance does
// not un-observe its history. The FSM sampler's transition history (the
// previous sampled state per inferred FSM) IS captured: it describes the
// trajectory being rewound, and restoring it keeps the first post-restore
// sample from recording a phantom transition out of the pre-restore
// state. A snapshot taken while coverage was off restores into a covering
// instance by clearing that history instead (the next sample records
// occupancy only, never a fabricated transition).
type Snapshot struct {
	program   *Program
	vals      []uint64
	mems      [][]uint64
	combQueue []int
	inQueue   []bool
	seqQueue  []int
	inSeq     []bool
	nba       []nbaWrite
	dirty     []bool
	needSweep bool

	covPrev []uint64 // FSM sampler history; nil when coverage was off
	covSeen []bool
	covOn   bool // coverage (with FSM model) was enabled at capture time
}

// Snapshot captures the instance's state. Call it between Settle
// boundaries (not from inside a running process). See the Snapshot type
// for the coverage contract.
func (s *Instance) Snapshot() *Snapshot {
	sn := &Snapshot{
		program:   s.program,
		vals:      append([]uint64(nil), s.vals...),
		mems:      make([][]uint64, len(s.mems)),
		combQueue: append([]int(nil), s.combQueue...),
		inQueue:   append([]bool(nil), s.inQueue...),
		seqQueue:  append([]int(nil), s.seqQueue...),
		inSeq:     append([]bool(nil), s.inSeq...),
		nba:       append([]nbaWrite(nil), s.nba...),
		dirty:     append([]bool(nil), s.dirty...),
		needSweep: s.needSweep,
	}
	for i, mem := range s.mems {
		if mem != nil {
			sn.mems[i] = append([]uint64(nil), mem...)
		}
	}
	if ic := s.cov; ic != nil && ic.fsmSeen != nil {
		sn.covOn = true
		sn.covPrev = append([]uint64(nil), ic.fsmPrev...)
		sn.covSeen = append([]bool(nil), ic.fsmSeen...)
	}
	return sn
}

// Restore rewinds the instance to a previously captured snapshot. The
// snapshot must come from an instance of the same Program.
func (s *Instance) Restore(sn *Snapshot) error {
	if sn == nil {
		return fmt.Errorf("sim: nil snapshot")
	}
	if sn.program != s.program || len(sn.vals) != len(s.vals) {
		return fmt.Errorf("sim: snapshot belongs to a different program")
	}
	copy(s.vals, sn.vals)
	for i, mem := range sn.mems {
		if mem != nil {
			copy(s.mems[i], mem)
		}
	}
	s.combQueue = append(s.combQueue[:0], sn.combQueue...)
	copy(s.inQueue, sn.inQueue)
	s.seqQueue = append(s.seqQueue[:0], sn.seqQueue...)
	copy(s.inSeq, sn.inSeq)
	s.nba = append(s.nba[:0], sn.nba...)
	copy(s.dirty, sn.dirty)
	s.needSweep = sn.needSweep
	s.inSweep = false
	s.running = -1
	if ic := s.cov; ic != nil && len(ic.fsmSeen) > 0 {
		if sn.covOn && len(sn.covSeen) == len(ic.fsmSeen) {
			copy(ic.fsmPrev, sn.covPrev)
			copy(ic.fsmSeen, sn.covSeen)
		} else {
			// The snapshot predates coverage (or was taken under a different
			// FSM universe): the transition history along the restored
			// trajectory is unknowable, so restart it rather than fabricate
			// a transition out of the pre-restore state.
			for i := range ic.fsmSeen {
				ic.fsmSeen[i] = false
			}
		}
	}
	return nil
}
