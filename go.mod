module uvllm

go 1.22
