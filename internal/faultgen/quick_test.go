package faultgen

import (
	"strings"
	"testing"

	"uvllm/internal/llm"
)

// TestEveryFaultIsRepairableByLineDiff pins the contract between the fault
// generator and the repair oracle: for every benchmark instance, the
// minimal line diff against the golden source must produce a patch pair
// that — applied as a single string replacement — reconstructs the golden
// source exactly. If this breaks, "solvable" oracle draws silently stop
// producing working repairs.
func TestEveryFaultIsRepairableByLineDiff(t *testing.T) {
	for _, f := range Benchmark() {
		orig, patched, nd := llm.LineDiff(f.Source, f.Golden)
		if nd == 0 {
			t.Errorf("%s: no diff against golden", f.ID)
			continue
		}
		if strings.TrimSpace(orig) == "" {
			t.Errorf("%s: unlocatable (whitespace-only) original %q", f.ID, orig)
			continue
		}
		if !strings.Contains(f.Source, orig) {
			t.Errorf("%s: diff original not present in faulty source: %q", f.ID, orig)
			continue
		}
		if got := strings.Replace(f.Source, orig, patched, 1); got != f.Golden {
			t.Errorf("%s (%s): applying the diff does not reach golden", f.ID, f.Descr)
		}
	}
}

// TestFaultsSingleRegion documents that the generator produces localized
// (single-region) defects, matching Table I's single-site error patterns.
func TestFaultsSingleRegion(t *testing.T) {
	multi := 0
	for _, f := range Benchmark() {
		if _, _, nd := llm.LineDiff(f.Source, f.Golden); nd > 3 {
			multi++
		}
	}
	if multi > len(Benchmark())/10 {
		t.Errorf("%d instances have wide diffs (> 3 lines); generator not localized", multi)
	}
}

// TestMutationsDeterministic: regenerating a module's faults yields
// byte-identical sources.
func TestMutationsDeterministic(t *testing.T) {
	b := Benchmark()
	for _, f := range b[:25] {
		again := Generate(f.Meta(), f.Class)
		found := false
		for _, g := range again {
			if g.ID == f.ID {
				found = true
				if g.Source != f.Source || g.Descr != f.Descr {
					t.Errorf("%s: regeneration differs", f.ID)
				}
			}
		}
		if !found {
			t.Errorf("%s: instance vanished on regeneration", f.ID)
		}
	}
}
