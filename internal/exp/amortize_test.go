package exp

import (
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// TestGoldenModulesCompileOnce is the end-to-end amortization guarantee:
// a full-benchmark evaluation through one shared cache compiles every
// distinct source — in particular each golden module, which hundreds of
// expert validations reference — exactly once, and the golden-trace memo
// serves repeat reference streams from memory.
func TestGoldenModulesCompileOnce(t *testing.T) {
	cache := sim.NewCache()
	memo := uvm.NewTraceMemo()
	recs := Run(Config{Seed: 1, Cache: cache, Memo: memo})
	if len(recs) != len(faultgen.Benchmark()) {
		t.Fatalf("got %d records, want the full benchmark", len(recs))
	}

	// Every golden module the benchmark exercises is resident and was
	// reused (ExpertPass alone references it once per evaluated method).
	modules := map[string]*dataset.Module{}
	for _, f := range faultgen.Benchmark() {
		m := f.Meta()
		modules[m.Name] = m
	}
	for name, m := range modules {
		hits, resident := cache.EntryStats(m.Source, m.Top, sim.BackendCompiled)
		if !resident {
			t.Errorf("golden %s missing from the compile cache", name)
			continue
		}
		if hits == 0 {
			t.Errorf("golden %s was compiled but never reused", name)
		}
	}

	// Misses == entries means no source was ever compiled twice: each
	// distinct (source, top, backend) cost exactly one compilation.
	st := cache.Stats()
	if st.Evictions != 0 {
		t.Fatalf("cache evicted %d entries; the benchmark must fit (limit %d)", st.Evictions, sim.DefaultCacheLimit)
	}
	if st.Misses != int64(st.Entries) {
		t.Errorf("misses %d != resident entries %d: some source compiled more than once", st.Misses, st.Entries)
	}
	if st.Hits == 0 {
		t.Error("compile cache served no hits across the full benchmark")
	}

	ms := memo.Stats()
	if ms.Hits == 0 {
		t.Error("golden-trace memo served no hits across the full benchmark")
	}
	t.Logf("cache: %d hits / %d misses (%d programs); memo: %d hits / %d misses (%d traces)",
		st.Hits, st.Misses, st.Entries, ms.Hits, ms.Misses, ms.Entries)
}

// TestSessionsAreKeyedPerBackend pins the replacement for the old
// RecordsBackend global: sessions for different backends coexist and the
// shared lookup is stable.
func TestSessionsAreKeyedPerBackend(t *testing.T) {
	c := SharedSession(sim.BackendCompiled)
	e := SharedSession(sim.BackendEventDriven)
	if c == e {
		t.Fatal("compiled and event sessions must be distinct")
	}
	if SharedSession(sim.BackendCompiled) != c {
		t.Fatal("SharedSession is not stable per backend")
	}
	if c.Backend != sim.BackendCompiled || e.Backend != sim.BackendEventDriven {
		t.Fatal("session backend mismatch")
	}
}
