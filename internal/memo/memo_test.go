package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSingleFlight: concurrent callers on one key run compute once and
// share the value.
func TestSingleFlight(t *testing.T) {
	m := New[int, int](8)
	var computes int32
	var wg sync.WaitGroup
	const workers = 16
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do(7, func() (int, error) {
				atomic.AddInt32(&computes, 1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != workers-1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if hits, ok := m.EntryHits(7); !ok || hits != workers-1 {
		t.Fatalf("EntryHits = (%d, %v)", hits, ok)
	}
}

// TestErrorsAreMemoized: a failing compute is cached like a value.
func TestErrorsAreMemoized(t *testing.T) {
	m := New[string, int](8)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		if _, err := m.Do("k", func() (int, error) { calls++; return 0, boom }); err != boom {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1", calls)
	}
}

// TestEviction: the table stays bounded and counts evictions.
func TestEviction(t *testing.T) {
	m := New[int, int](4)
	for i := 0; i < 10; i++ {
		if _, err := m.Do(i, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Entries > 4 {
		t.Fatalf("grew to %d entries past limit 4", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if _, ok := m.EntryHits(0); ok {
		t.Fatal("oldest entry survived eviction")
	}
}
