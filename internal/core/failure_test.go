package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
)

// Failure-injection tests: the pipeline must degrade gracefully when the
// LLM misbehaves — API errors, garbage output, malformed JSON, unusable
// patches — because robustness to model unreliability is one of the
// paper's core motivations.

// errClient always fails, like a dead API endpoint.
type errClient struct{ calls int }

func (c *errClient) Complete(llm.Request) (llm.Response, error) {
	c.calls++
	return llm.Response{}, fmt.Errorf("api: connection reset")
}

// garbageClient returns non-JSON prose.
type garbageClient struct{}

func (garbageClient) Complete(req llm.Request) (llm.Response, error) {
	content := "I am sorry, but I cannot help with that request."
	return llm.Response{
		Content:      content,
		InputTokens:  llm.CountTokens(req.Text()),
		OutputTokens: llm.CountTokens(content),
	}, nil
}

// badPatchClient returns well-formed JSON whose patches never match.
type badPatchClient struct{}

func (badPatchClient) Complete(req llm.Request) (llm.Response, error) {
	content := llm.FormatReply(&llm.RepairReply{
		ModuleName: "x", Analysis: "confused",
		Correct: []llm.PatchPair{{Original: "line that does not exist anywhere", Patched: "still nothing"}},
	})
	return llm.Response{Content: content, InputTokens: 10, OutputTokens: 20}, nil
}

// breakerClient returns patches that destroy the syntax every time.
type breakerClient struct{}

func (breakerClient) Complete(req llm.Request) (llm.Response, error) {
	content := llm.FormatReply(&llm.RepairReply{
		ModuleName: "x", Analysis: "let me remove this",
		Correct: []llm.PatchPair{{Original: "endmodule", Patched: "endmodul ((("}},
	})
	return llm.Response{Content: content, InputTokens: 10, OutputTokens: 20}, nil
}

func funcFault(t *testing.T) (*faultgen.Fault, *dataset.Module) {
	t.Helper()
	f := pickFault(t, "counter_12bit", faultgen.FuncLogic)
	return f, dataset.ByName("counter_12bit")
}

func runWith(t *testing.T, client llm.Client) Result {
	t.Helper()
	f, m := funcFault(t)
	return Verify(context.Background(), Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: client,
		Opts: core0(),
	})
}

func core0() Options { return Options{Seed: 1, UVMVectors: 100} }

func TestPipelineSurvivesDeadAPI(t *testing.T) {
	c := &errClient{}
	res := runWith(t, c)
	if res.Success {
		t.Fatal("cannot succeed with a dead API")
	}
	if res.Iterations != 5 {
		t.Errorf("iterations = %d, want full budget", res.Iterations)
	}
	if c.calls == 0 {
		t.Error("client never consulted")
	}
	joined := strings.Join(res.Log, "\n")
	if !strings.Contains(joined, "LLM error") {
		t.Errorf("log does not mention the API failure:\n%s", joined)
	}
	// The best (original) source must survive.
	if res.Final == "" {
		t.Error("final source lost")
	}
}

func TestPipelineSurvivesGarbageOutput(t *testing.T) {
	res := runWith(t, garbageClient{})
	if res.Success {
		t.Fatal("cannot succeed on refusal prose")
	}
	joined := strings.Join(res.Log, "\n")
	if !strings.Contains(joined, "unparseable") {
		t.Errorf("log does not mention unparseable replies:\n%s", joined)
	}
}

func TestPipelineSurvivesUnusablePatches(t *testing.T) {
	res := runWith(t, badPatchClient{})
	if res.Success {
		t.Fatal("cannot succeed with unmatchable patches")
	}
	if res.PassRate >= 1.0 {
		t.Error("pass rate inconsistent")
	}
}

func TestPipelineSurvivesSyntaxBreakingPatches(t *testing.T) {
	// Every repair attempt breaks the syntax; the synthesis check plus
	// pre-processing must discard the candidates and keep the best code.
	res := runWith(t, breakerClient{})
	if res.Success {
		t.Fatal("cannot succeed when every patch breaks the code")
	}
	// Final code must still parse (it is the pre-repair best version).
	if strings.Contains(res.Final, "endmodul (((") {
		t.Error("broken candidate leaked into the final source")
	}
}

func TestPreprocSurvivesDeadAPIOnSyntaxFault(t *testing.T) {
	f := pickFault(t, "adder_8bit", faultgen.SynKeywordTypo)
	m := dataset.ByName("adder_8bit")
	res := Verify(context.Background(), Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: &errClient{},
		Opts: core0(),
	})
	if res.Success {
		t.Fatal("syntax fault cannot be fixed with a dead API")
	}
	if res.Times.Pre <= 0 {
		t.Error("preprocessing time missing")
	}
}
