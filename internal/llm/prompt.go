package llm

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Stage labels the kind of error information a repair prompt carries; the
// paper's segmented strategy feeds richer information as repair attempts
// escalate (Sec. III-C).
type Stage string

// Stages.
const (
	StageLint Stage = "lint"             // pre-processing: linter findings
	StageMS   Stage = "mismatch-signals" // repair with scoreboard signals
	StageSL   Stage = "suspicious-lines" // repair with dynamic slice lines
	StageMEIC Stage = "meic-log"         // MEIC baseline: raw sim log
	StageRaw  Stage = "raw"              // raw-LLM baseline: no error info
)

// GenMode selects the output representation of the repair agent — the
// ablation axis of paper Table III.
type GenMode int

// Generation modes.
const (
	ModePair     GenMode = iota // original→patched code pairs (default)
	ModeComplete                // regenerate the entire module
)

// PatchPair is one original→patched snippet pair from the "correct" field
// of the agent's JSON reply.
type PatchPair struct {
	Original string
	Patched  string
}

// RepairContext carries everything the prompt of Fig. 4 includes.
type RepairContext struct {
	ModuleName    string
	Spec          string
	Source        string
	Stage         Stage
	ErrorInfo     string // stage-dependent: lint log / mismatch list / lines
	DamageRepairs []PatchPair
	Iteration     int
	Mode          GenMode
}

const systemPrompt = `You are an expert in Verilog verification and RTL
repair. You analyze a design under test against its specification and the
provided error information, and produce minimal, correct repairs.`

// BuildRepairRequest renders the repair prompt in the paper's input format
// (Fig. 4): specification, DUT, error information, damage repairs to avoid,
// and the Structured-Outputs instruction.
func BuildRepairRequest(ctx RepairContext) Request {
	var b strings.Builder
	fmt.Fprintf(&b, "Module under repair: %s (iteration %d)\n\n", ctx.ModuleName, ctx.Iteration)
	b.WriteString("=== Specification ===\n")
	b.WriteString(strings.TrimSpace(ctx.Spec))
	b.WriteString("\n\n=== DUT ===\n")
	b.WriteString(ctx.Source)
	fmt.Fprintf(&b, "\n=== Error Information (%s) ===\n", ctx.Stage)
	if strings.TrimSpace(ctx.ErrorInfo) == "" {
		b.WriteString("(none provided)\n")
	} else {
		b.WriteString(strings.TrimSpace(ctx.ErrorInfo))
		b.WriteString("\n")
	}
	if len(ctx.DamageRepairs) > 0 {
		b.WriteString("\n=== Damage Repairs (previously tried, made things worse; do NOT repeat) ===\n")
		for _, p := range ctx.DamageRepairs {
			fmt.Fprintf(&b, "- original: %q patched: %q\n", p.Original, p.Patched)
		}
	}
	b.WriteString("\n=== Instructions ===\n")
	switch ctx.Mode {
	case ModeComplete:
		b.WriteString(`Respond with JSON only, following this schema:
{"module name": "<name>", "analysis": "<root cause>", "complete": "<the full corrected Verilog source>"}`)
	default:
		b.WriteString(`Respond with JSON only, following this schema:
{"module name": "<name>", "analysis": "<root cause>", "correct": [["<original code>", "<patched code>"], ...]}
Each pair must quote the original code exactly as it appears in the DUT.`)
	}
	return Request{
		Model:          "gpt-4-turbo",
		ResponseFormat: "json_object",
		Temperature:    0.2,
		Messages: []Message{
			{Role: "system", Content: systemPrompt},
			{Role: "user", Content: b.String()},
		},
	}
}

// RepairReply is the parsed agent response of Fig. 4.
type RepairReply struct {
	ModuleName string
	Analysis   string
	Correct    []PatchPair
	Complete   string // full source, ModeComplete only
}

// rawReply tolerates the loose JSON field naming LLMs produce.
type rawReply struct {
	ModuleNameA string          `json:"module name"`
	ModuleNameB string          `json:"module_name"`
	Analysis    string          `json:"analysis"`
	Correct     [][]string      `json:"correct"`
	Complete    string          `json:"complete"`
	Extra       json.RawMessage `json:"-"`
}

// ParseRepairReply extracts the JSON object from an agent response —
// tolerating surrounding prose and markdown fences, which real models emit
// even under structured-output instructions — and decodes it.
func ParseRepairReply(content string) (*RepairReply, error) {
	blob, err := extractJSONObject(content)
	if err != nil {
		return nil, err
	}
	var raw rawReply
	if err := json.Unmarshal([]byte(blob), &raw); err != nil {
		return nil, fmt.Errorf("llm: response JSON invalid: %w", err)
	}
	out := &RepairReply{
		ModuleName: raw.ModuleNameA,
		Analysis:   raw.Analysis,
		Complete:   raw.Complete,
	}
	if out.ModuleName == "" {
		out.ModuleName = raw.ModuleNameB
	}
	for _, pair := range raw.Correct {
		if len(pair) != 2 {
			return nil, fmt.Errorf("llm: 'correct' entry has %d elements, want 2", len(pair))
		}
		out.Correct = append(out.Correct, PatchPair{Original: pair[0], Patched: pair[1]})
	}
	return out, nil
}

// extractJSONObject returns the first balanced top-level {...} in s,
// respecting string literals and escapes.
func extractJSONObject(s string) (string, error) {
	start := strings.IndexByte(s, '{')
	if start < 0 {
		return "", fmt.Errorf("llm: no JSON object in response")
	}
	depth := 0
	inStr := false
	esc := false
	for i := start; i < len(s); i++ {
		c := s[i]
		if inStr {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return s[start : i+1], nil
			}
		}
	}
	return "", fmt.Errorf("llm: unterminated JSON object in response")
}

// FormatReply renders a RepairReply back to the canonical JSON the agents
// are asked for; the Oracle uses it to emit well-formed responses.
func FormatReply(r *RepairReply) string {
	type pairList [][]string
	obj := map[string]interface{}{
		"module name": r.ModuleName,
		"analysis":    r.Analysis,
	}
	if r.Complete != "" {
		obj["complete"] = r.Complete
	} else {
		pl := pairList{}
		for _, p := range r.Correct {
			pl = append(pl, []string{p.Original, p.Patched})
		}
		obj["correct"] = pl
	}
	blob, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(blob)
}

// BuildRefModelRequest is the prompt that asks for a reference model from
// the specification (Sec. III-B, "Reference Model Generation"). In this
// repository reference models are provided by internal/refmodel; the
// request exists so the pipeline's call structure matches the paper and so
// clients can be swapped in a deployment with a live API.
func BuildRefModelRequest(moduleName, spec string) Request {
	var b strings.Builder
	fmt.Fprintf(&b, "Write a cycle-accurate C++ reference model for module %s.\n\n", moduleName)
	b.WriteString("=== Specification ===\n")
	b.WriteString(strings.TrimSpace(spec))
	b.WriteString("\n\nRespond with the complete C++ source only.")
	return Request{
		Model:       "gpt-4-turbo",
		Temperature: 0.0,
		Messages: []Message{
			{Role: "system", Content: systemPrompt},
			{Role: "user", Content: b.String()},
		},
	}
}

// DetectStage recovers the stage marker from a rendered request, which the
// Oracle uses to decide how much the error information helps.
func DetectStage(req Request) Stage {
	text := req.Text()
	for _, st := range []Stage{StageLint, StageMS, StageSL, StageMEIC, StageRaw} {
		if strings.Contains(text, fmt.Sprintf("=== Error Information (%s) ===", st)) {
			return st
		}
	}
	return StageRaw
}
