package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const diskTestSrc = `module inc(input clk, input [3:0] a, output reg [3:0] y);
  always @(posedge clk) y <= a + 1;
endmodule
`

// TestDiskCacheRestartWarm is the restart contract: a second process (a
// fresh Cache over the same directory) re-serves a previously compiled
// design without a request-path compile — WarmFromDisk pre-populates the
// memory tier, so the request itself is a pure memory hit.
func TestDiskCacheRestartWarm(t *testing.T) {
	dir := t.TempDir()

	// Process 1: compile once, writing through to disk.
	d1, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCache()
	c1.AttachDisk(d1)
	if _, err := c1.Compile(diskTestSrc, "inc", BackendCompiled); err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	if got := c1.Stats().Disk.Writes; got != 1 {
		t.Fatalf("disk writes = %d, want 1", got)
	}

	// Process 2: same directory, fresh memory tier.
	d2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCache()
	c2.AttachDisk(d2)
	if n := c2.WarmFromDisk(); n != 1 {
		t.Fatalf("warmed %d entries, want 1", n)
	}
	pre := c2.Stats()
	p, err := c2.Compile(diskTestSrc, "inc", BackendCompiled)
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	if _, err := p.NewInstance(); err != nil {
		t.Fatalf("rehydrated program unusable: %v", err)
	}
	post := c2.Stats()
	if post.Hits != pre.Hits+1 || post.Misses != pre.Misses {
		t.Fatalf("restart request was not a memory hit: pre %+v post %+v", pre.Stats, post.Stats)
	}
	if post.Disk.Hits == 0 {
		t.Fatalf("disk tier served no hits across restart: %+v", post.Disk)
	}
}

// TestDiskCacheNegativeEntry pins that deterministic compile errors are
// persisted and short-circuit on the next process with zero compile work.
func TestDiskCacheNegativeEntry(t *testing.T) {
	dir := t.TempDir()
	bad := "module broken(input clk; endmodule"

	d1, _ := NewDiskCache(dir)
	c1 := NewCache()
	c1.AttachDisk(d1)
	_, err1 := c1.Compile(bad, "broken", BackendCompiled)
	if err1 == nil {
		t.Fatal("broken source compiled")
	}

	d2, _ := NewDiskCache(dir)
	c2 := NewCache()
	c2.AttachDisk(d2)
	_, err2 := c2.Compile(bad, "broken", BackendCompiled)
	if err2 == nil {
		t.Fatal("persisted negative entry lost")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("persisted error drifted: %q vs %q", err1, err2)
	}
	if got := c2.Stats().Disk.Hits; got != 1 {
		t.Fatalf("disk hits = %d, want 1", got)
	}
}

// TestDiskCacheCorruptionDegradesToMiss is the corruption contract: a
// garbled entry is never surfaced as an error — the read degrades to a
// miss, the source recompiles, and the entry is rewritten intact.
func TestDiskCacheCorruptionDegradesToMiss(t *testing.T) {
	for name, corrupt := range map[string]func(path string) error{
		"truncated": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"bitflip": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			// Flip a byte inside the source payload, keeping valid JSON.
			flipped := strings.Replace(string(data), "posedge", "p0sedge", 1)
			return os.WriteFile(path, []byte(flipped), 0o644)
		},
		"empty": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d1, _ := NewDiskCache(dir)
			c1 := NewCache()
			c1.AttachDisk(d1)
			if _, err := c1.Compile(diskTestSrc, "inc", BackendCompiled); err != nil {
				t.Fatal(err)
			}

			ents, err := os.ReadDir(dir)
			if err != nil || len(ents) != 1 {
				t.Fatalf("want exactly one entry file, got %d (%v)", len(ents), err)
			}
			path := filepath.Join(dir, ents[0].Name())
			if err := corrupt(path); err != nil {
				t.Fatal(err)
			}

			d2, _ := NewDiskCache(dir)
			c2 := NewCache()
			c2.AttachDisk(d2)
			if _, err := c2.Compile(diskTestSrc, "inc", BackendCompiled); err != nil {
				t.Fatalf("corrupt entry surfaced as error: %v", err)
			}
			st := c2.Stats().Disk
			if st.Corrupt == 0 {
				t.Fatalf("corruption not counted: %+v", st)
			}
			if st.Hits != 0 {
				t.Fatalf("corrupt entry served as hit: %+v", st)
			}
			// The recompile rewrote the entry; a third process reads it intact.
			d3, _ := NewDiskCache(dir)
			c3 := NewCache()
			c3.AttachDisk(d3)
			if _, err := c3.Compile(diskTestSrc, "inc", BackendCompiled); err != nil {
				t.Fatal(err)
			}
			if got := c3.Stats().Disk.Hits; got != 1 {
				t.Fatalf("rewritten entry not served: %+v", c3.Stats().Disk)
			}
		})
	}
}

// TestDiskCacheWarmSkipsCorrupt pins that WarmFromDisk walks past corrupt
// files instead of aborting the warm-up.
func TestDiskCacheWarmSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	d1, _ := NewDiskCache(dir)
	c1 := NewCache()
	c1.AttachDisk(d1)
	if _, err := c1.Compile(diskTestSrc, "inc", BackendCompiled); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("0", 64)+".json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, _ := NewDiskCache(dir)
	c2 := NewCache()
	c2.AttachDisk(d2)
	if n := c2.WarmFromDisk(); n != 1 {
		t.Fatalf("warmed %d, want 1 (corrupt file should be skipped)", n)
	}
	if got := c2.Stats().Disk.Corrupt; got != 1 {
		t.Fatalf("corrupt = %d, want 1", got)
	}
}

// TestDiskEntryChecksumCoversAllFields guards the checksum definition: two
// entries differing only in the error field must not share a checksum, or
// a stale rename could flip a verdict.
func TestDiskEntryChecksumCoversAllFields(t *testing.T) {
	base := diskEntry{Top: "t", Backend: "compiled", Source: "s"}
	withErr := base
	withErr.Error = "boom"
	if base.checksum() == withErr.checksum() {
		t.Fatal("checksum ignores the error field")
	}
	b, _ := json.Marshal(base)
	if !json.Valid(b) {
		t.Fatal("entry does not marshal to valid JSON")
	}
}

// TestDiskCacheBudgetEviction pins the LRU byte-budget policy: when the
// tier exceeds its budget the least-recently-used entries (mtime clock,
// refreshed by loads) are removed first, survivors still serve hits, and
// the eviction counters account for every removed byte.
func TestDiskCacheBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := func(i int) string {
		return strings.Replace(diskTestSrc, "a + 1", "a + "+string(rune('2'+i)), 1)
	}
	for i := 0; i < 4; i++ {
		d.store(src(i), "inc", BackendCompiled, nil)
	}
	if got := d.Stats().Writes; got != 4 {
		t.Fatalf("writes = %d, want 4", got)
	}
	// Stagger recency explicitly: entry i last used i hours ago, except
	// entry 0 which a load below touches back to "now".
	sizes := make([]int64, 4)
	for i := 0; i < 4; i++ {
		path := filepath.Join(dir, entryName(src(i), "inc", BackendCompiled))
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = info.Size()
		when := time.Now().Add(-time.Duration(i) * time.Hour)
		if err := os.Chtimes(path, when, when); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := d.load(src(0), "inc", BackendCompiled); !ok {
		t.Fatal("entry 0 missing before eviction")
	}

	// Budget for exactly two entries: the stalest two (3, then 2) go.
	d.SetBudget(sizes[0] + sizes[1] + 1)
	st := d.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (%+v)", st.Evictions, st)
	}
	if st.EvictedBytes != sizes[2]+sizes[3] {
		t.Fatalf("evicted bytes = %d, want %d", st.EvictedBytes, sizes[2]+sizes[3])
	}
	for i, want := range []bool{true, true, false, false} {
		if _, ok := d.load(src(i), "inc", BackendCompiled); ok != want {
			t.Fatalf("entry %d present=%v after eviction, want %v", i, ok, want)
		}
	}
	if got := d.SizeBytes(); got > sizes[0]+sizes[1]+1 {
		t.Fatalf("tier still holds %d bytes over budget", got)
	}

	// Stores keep enforcing the budget: age entry 1 back out so it is
	// unambiguously the LRU, then let a newcomer push it out.
	stale := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, entryName(src(1), "inc", BackendCompiled)), stale, stale); err != nil {
		t.Fatal(err)
	}
	d.store(src(4), "inc", BackendCompiled, nil)
	if _, ok := d.load(src(1), "inc", BackendCompiled); ok {
		t.Fatal("LRU entry survived a store over budget")
	}
	if _, ok := d.load(src(4), "inc", BackendCompiled); !ok {
		t.Fatal("fresh store evicted itself")
	}
}

// TestDiskCacheStatsHammer pounds the cache's counters from many
// goroutines — disk loads (hits, misses, corrupt), write-through
// stores, budget evictions and concurrent Stats() scrapes — and then
// checks the final snapshot is exactly consistent with the work done.
// Run under -race this is the proof that every counter update and read
// goes through the stats lock; the closing invariant is the one torn
// multi-atomic snapshots used to violate.
func TestDiskCacheStatsHammer(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		rounds  = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf("module m%d(input clk); endmodule\n", w)
			for i := 0; i < rounds; i++ {
				d.load(src, "m", BackendCompiled) // miss first, hits after the store
				d.store(src, "m", BackendCompiled, nil)
				d.load(src, "m", BackendCompiled)
			}
		}(w)
	}
	// Concurrent scrapes: every snapshot must satisfy the inherent
	// invariants (no negative counters, eviction bytes only with
	// evictions) even while writers are mid-flight.
	stop := make(chan struct{})
	var scr sync.WaitGroup
	scr.Add(1)
	go func() {
		defer scr.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := d.Stats()
			if s.Hits < 0 || s.Misses < 0 || s.Corrupt < 0 || s.Writes < 0 {
				t.Error("negative counter in snapshot")
				return
			}
			if s.Evictions == 0 && s.EvictedBytes != 0 {
				t.Errorf("torn snapshot: %d evicted bytes with 0 evictions", s.EvictedBytes)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	scr.Wait()

	s := d.Stats()
	// Each worker: every load either hits or misses, and every store
	// writes. No corruption was injected.
	if got, want := s.Hits+s.Misses, int64(workers*rounds*2); got != want {
		t.Fatalf("hits+misses = %d, want %d (loads performed)", got, want)
	}
	if got, want := s.Writes, int64(workers*rounds); got != want {
		t.Fatalf("writes = %d, want %d", got, want)
	}
	if s.Corrupt != 0 || s.Evictions != 0 {
		t.Fatalf("unexpected corrupt/evictions: %+v", s)
	}
	// Only the very first load of each key can miss: every load after a
	// store must hit.
	if s.Misses > int64(workers) {
		t.Fatalf("misses = %d, want <= %d (first load per key only)", s.Misses, workers)
	}
}
