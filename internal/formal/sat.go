package formal

import "sort"

// CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
// analysis with clause learning, VSIDS-lite decision ordering (activity
// heap with exponential decay), phase saving and Luby restarts, plus the
// MiniSat incremental interface — assumption-based solving with
// final-conflict (unsat core) extraction, on-the-fly variable and clause
// addition, and learned-clause retention across calls. Standard library
// only, like every engine in this repository; sized for the bit-blasted
// miters of small RTL designs (thousands of variables).

// SolveStats counts solver work for the BMC depth / conflict statistics
// reported by cmd/experiments -v.
type SolveStats struct {
	Vars         int
	Clauses      int
	Conflicts    int
	Decisions    int
	Propagations int
	Restarts     int
	Learned      int
}

// Solver is an incremental CDCL SAT solver: add clauses (and variables)
// at any point between calls, solve under per-call assumptions with
// SolveAssuming, read the model of a satisfiable call with Value and the
// final-conflict core of an assumption-failed call with UnsatCore.
// Learned clauses, variable activity and saved phases persist across
// calls — the clause set only ever grows, so everything learned stays
// valid and later calls over the same instance start warm.
type Solver struct {
	// MaxConflicts, when positive, bounds the search: each call gives up
	// after that many conflicts of its own and reports false with
	// Exhausted() set. The budget is per call — calling again after an
	// exhausted give-up resumes the search (learned clauses and activity
	// intact) under a fresh budget, while Stats() keeps lifetime totals.
	// The cutoff is deterministic, so budgeted callers (the differential
	// oracles) skip the same hard instances on every run.
	MaxConflicts int
	exhausted    bool

	nVars   int
	clauses []*satClause
	watches [][]*satClause // per internal literal

	assign   []int8 // per var: 0 unassigned, 1 true, -1 false
	level    []int
	reason   []*satClause
	trail    []int // internal literals in assignment order
	trailLim []int // trail length at each decision level
	qhead    int

	activity []float64
	varInc   float64
	heap     []int // binary max-heap of vars by activity
	heapPos  []int // var -> heap index, -1 when absent
	phase    []bool

	seen  []bool
	unsat bool
	stats SolveStats

	model    []int8  // captured assignment of the last satisfiable call
	assume   []int32 // the current call's assumptions, internal form
	lastCore []int   // final-conflict core of the last assumption failure
	callBase SolveStats
}

// NewSolver creates a solver over variables 1..numVars.
func NewSolver(numVars int) *Solver {
	s := &Solver{
		nVars:    numVars,
		watches:  make([][]*satClause, 2*numVars+2),
		assign:   make([]int8, numVars+1),
		level:    make([]int, numVars+1),
		reason:   make([]*satClause, numVars+1),
		activity: make([]float64, numVars+1),
		varInc:   1.0,
		heapPos:  make([]int, numVars+1),
		phase:    make([]bool, numVars+1),
		seen:     make([]bool, numVars+1),
	}
	for v := 1; v <= numVars; v++ {
		s.heapPos[v] = -1
		s.heapPush(v)
	}
	s.stats.Vars = numVars
	return s
}

// NewSolverCNF creates a solver preloaded with a clause set.
func NewSolverCNF(c *CNF) *Solver {
	s := NewSolver(c.NumVars)
	for _, cl := range c.Clauses {
		s.AddClause(cl...)
	}
	return s
}

type satClause struct {
	lits    []int32 // internal encoding: var<<1 | sign (sign 1 = negated)
	learned bool
}

// intLit converts a DIMACS-style literal to the internal encoding.
func intLit(l int) int32 {
	if l < 0 {
		return int32(-l)<<1 | 1
	}
	return int32(l) << 1
}

func litVar(l int32) int   { return int(l >> 1) }
func litNeg(l int32) int32 { return l ^ 1 }

// extLit converts an internal literal back to DIMACS form.
func extLit(l int32) int {
	if l&1 == 1 {
		return -litVar(l)
	}
	return litVar(l)
}

// NewVar allocates one fresh variable and returns it. The solver grows in
// place: incremental loaders (IncTseitin) interleave NewVar and AddClause
// with solve calls, and everything learned over the old variables stays
// valid because the instance only ever gains variables and clauses.
func (s *Solver) NewVar() int {
	s.nVars++
	v := s.nVars
	s.watches = append(s.watches, nil, nil)
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.heapPos = append(s.heapPos, -1)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.heapPush(v)
	s.stats.Vars = s.nVars
	return v
}

// ensure grows the solver to cover variable v.
func (s *Solver) ensure(v int) {
	for s.nVars < v {
		s.NewVar()
	}
}

// value returns 1/-1/0 for an internal literal under the current
// assignment.
func (s *Solver) value(l int32) int8 {
	v := s.assign[litVar(l)]
	if l&1 == 1 {
		return -v
	}
	return v
}

// AddClause adds one clause in DIMACS-style literals, growing the solver
// to cover any variable it has not seen. Adding an empty (or all-false)
// clause marks the instance unsatisfiable. Clauses may be added between
// solve calls (the solver is always at decision level 0 there): literals
// already false at the root are dropped and clauses already satisfied at
// the root are skipped, which keeps the two-watched-literal invariant
// intact on an instance that carries root-level facts from earlier calls.
func (s *Solver) AddClause(lits ...int) {
	if s.unsat {
		return
	}
	// Deduplicate and drop tautologies with a linear scan: clauses are
	// short (Tseitin emits 2-3 literals) and this path loads every
	// clause of every solve, so a per-clause map would be pure overhead.
	var ls []int32
	for _, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		s.ensure(v)
		il := intLit(l)
		// Root-level simplification (all current assignments are level 0).
		switch s.value(il) {
		case 1:
			return // satisfied at the root: nothing to add
		case -1:
			continue // false at the root: drop the literal
		}
		dup := false
		for _, prev := range ls {
			if prev == il {
				dup = true
				break
			}
			if prev == litNeg(il) {
				return // tautology
			}
		}
		if !dup {
			ls = append(ls, il)
		}
	}
	s.stats.Clauses++
	switch len(ls) {
	case 0:
		s.unsat = true
	case 1:
		if !s.enqueue(ls[0], nil) {
			s.unsat = true
		}
	default:
		c := &satClause{lits: ls}
		s.clauses = append(s.clauses, c)
		s.watch(c)
	}
}

func (s *Solver) watch(c *satClause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], c)
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
}

// enqueue assigns a literal true (with an optional reason clause),
// returning false on conflict with the existing assignment.
func (s *Solver) enqueue(l int32, from *satClause) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := litVar(l)
	if l&1 == 1 {
		s.assign[v] = -1
		s.phase[v] = false
	} else {
		s.assign[v] = 1
		s.phase[v] = true
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, int(l))
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate runs unit propagation to fixpoint, returning a conflicting
// clause or nil.
func (s *Solver) propagate() *satClause {
	for s.qhead < len(s.trail) {
		l := int32(s.trail[s.qhead])
		s.qhead++
		s.stats.Propagations++
		neg := litNeg(l) // watch lists to service: clauses watching ~l
		ws := s.watches[neg]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is at position 1.
			if c.lits[0] == neg {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			// Look for a replacement watch.
			found := false
			for j := 2; j < len(c.lits); j++ {
				if s.value(c.lits[j]) != -1 {
					c.lits[1], c.lits[j] = c.lits[j], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				copy(ws[len(kept):], ws[i+1:])
				s.watches[neg] = ws[:len(kept)+len(ws)-i-1]
				return c
			}
		}
		s.watches[neg] = kept
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *satClause) ([]int32, int) {
	learned := []int32{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p int32 = -1
	idx := len(s.trail) - 1

	bump := func(v int) {
		s.activity[v] += s.varInc
		if s.activity[v] > 1e100 {
			for i := 1; i <= s.nVars; i++ {
				s.activity[i] *= 1e-100
			}
			s.varInc *= 1e-100
		}
		s.heapFix(v)
	}

	for {
		for _, q := range confl.lits {
			if p >= 0 && q == p {
				continue
			}
			v := litVar(q)
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			bump(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Walk the trail back to the next seen literal.
		for {
			p = int32(s.trail[idx])
			idx--
			if s.seen[litVar(p)] {
				break
			}
		}
		v := litVar(p)
		s.seen[v] = false
		counter--
		if counter == 0 {
			learned[0] = litNeg(p)
			break
		}
		confl = s.reason[v]
	}

	// Backjump level: the highest level among the non-asserting literals.
	back := 0
	for i := 1; i < len(learned); i++ {
		if lv := s.level[litVar(learned[i])]; lv > back {
			back = lv
		}
	}
	// Move a literal of the backjump level into the second watch slot.
	for i := 1; i < len(learned); i++ {
		if s.level[litVar(learned[i])] == back {
			learned[1], learned[i] = learned[i], learned[1]
			break
		}
	}
	for i := 1; i < len(learned); i++ {
		s.seen[litVar(learned[i])] = false
	}
	s.varInc /= 0.95
	return learned, back
}

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	lim := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := litVar(int32(s.trail[i]))
		s.assign[v] = 0
		s.reason[v] = nil
		if s.heapPos[v] < 0 {
			s.heapPush(v)
		}
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = lim
}

// pickBranch pops the highest-activity unassigned variable.
func (s *Solver) pickBranch() int32 {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == 0 {
			if s.phase[v] {
				return int32(v) << 1
			}
			return int32(v)<<1 | 1
		}
	}
	return -1
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int) int {
	// Find the finite subsequence containing i.
	k := 1
	for (1<<uint(k))-1 < i {
		k++
	}
	for (1<<uint(k))-1 != i {
		i -= (1 << uint(k-1)) - 1
		k = 1
		for (1<<uint(k))-1 < i {
			k++
		}
	}
	return 1 << uint(k-1)
}

// Solve runs the CDCL loop with no assumptions and reports
// satisfiability. Calls are resumable: a false return with Exhausted()
// set is "unknown", and calling again continues the search (learned
// clauses, activity and phases intact) under a fresh MaxConflicts budget.
func (s *Solver) Solve() bool { return s.SolveAssuming() }

// SolveAssuming runs the CDCL loop with the given DIMACS-style literals
// taken as temporary decisions (the MiniSat assumption interface): a true
// return means the clause set is satisfiable with every assumption true
// (read the model with Value), a false return with a non-nil UnsatCore()
// means the assumptions themselves are to blame, and a false return with
// a nil core means the clause set is unsatisfiable outright (or the call
// exhausted its MaxConflicts budget — check Exhausted()). Assumptions
// leave no trace: they are backtracked before the call returns, so the
// same solver instance answers any sequence of assumption sets while
// retaining everything it learned.
func (s *Solver) SolveAssuming(assumptions ...int) bool {
	s.exhausted = false
	s.lastCore = nil
	s.callBase = s.stats
	if s.unsat {
		return false
	}
	s.assume = s.assume[:0]
	for _, a := range assumptions {
		v := a
		if v < 0 {
			v = -v
		}
		if v == 0 {
			continue
		}
		s.ensure(v)
		s.assume = append(s.assume, intLit(a))
	}
	s.cancelUntil(0)
	if confl := s.propagate(); confl != nil {
		s.unsat = true
		return false
	}
	restart := 1
	budget := 64 * luby(restart)
	conflictsHere := 0
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictsHere++
			if s.MaxConflicts > 0 && s.stats.Conflicts-s.callBase.Conflicts >= s.MaxConflicts {
				s.exhausted = true
				s.cancelUntil(0)
				return false
			}
			if s.decisionLevel() == 0 {
				s.unsat = true
				return false
			}
			learned, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learned) == 1 {
				s.enqueue(learned[0], nil)
			} else {
				c := &satClause{lits: learned, learned: true}
				s.clauses = append(s.clauses, c)
				s.stats.Learned++
				s.watch(c)
				s.enqueue(learned[0], c)
			}
			continue
		}
		if conflictsHere >= budget {
			// Restart: keep learned clauses and phases, drop assignments.
			s.stats.Restarts++
			restart++
			budget = 64 * luby(restart)
			conflictsHere = 0
			s.cancelUntil(0)
			continue
		}
		if s.decisionLevel() < len(s.assume) {
			// Take the next assumption as a decision.
			a := s.assume[s.decisionLevel()]
			switch s.value(a) {
			case 1:
				// Already implied: push an empty level to keep the
				// level-per-assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case -1:
				// The assumptions conflict with what is implied so far:
				// extract the final-conflict core and fail the call.
				s.lastCore = s.analyzeFinal(a)
				s.cancelUntil(0)
				return false
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, nil)
			continue
		}
		l := s.pickBranch()
		if l < 0 {
			// All variables assigned, no conflict: capture the model and
			// backtrack the assumptions away.
			s.model = append(s.model[:0], s.assign...)
			s.cancelUntil(0)
			return true
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(l, nil)
	}
}

// analyzeFinal walks the implication trail backwards from a failed
// assumption p (whose negation is implied by the clauses plus the
// assumptions taken so far) and collects the subset of assumptions the
// failure actually depends on — the MiniSat final-conflict analysis. The
// returned core is in DIMACS form and includes p itself.
func (s *Solver) analyzeFinal(p int32) []int {
	core := []int{extLit(p)}
	if s.decisionLevel() == 0 {
		return core // ~p is a root-level fact: p alone is inconsistent
	}
	s.seen[litVar(p)] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		l := int32(s.trail[i])
		v := litVar(l)
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			// A decision — at this point every decision is an assumption.
			if s.level[v] > 0 {
				core = append(core, extLit(l))
			}
		} else {
			for _, q := range s.reason[v].lits {
				if qv := litVar(q); qv != v && s.level[qv] > 0 {
					s.seen[qv] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[litVar(p)] = false
	return core
}

// UnsatCore returns the final-conflict clause of the most recent call: a
// subset of its assumptions that is jointly unsatisfiable with the clause
// set, in the caller's DIMACS form. It is nil when the last call did not
// fail on its assumptions (satisfiable, exhausted, or the clause set is
// unsatisfiable with no assumptions needed).
func (s *Solver) UnsatCore() []int {
	if s.lastCore == nil {
		return nil
	}
	return append([]int(nil), s.lastCore...)
}

// MinimizeCore shrinks the most recent UnsatCore to a locally minimal one
// by deletion: literals are dropped one at a time and each candidate
// subset re-solved, so in the returned core dropping any single literal
// makes the remainder satisfiable (budget-exhausted probes count as
// "cannot drop"). The result is sorted by variable for determinism and
// becomes the solver's current core.
func (s *Solver) MinimizeCore() []int {
	core := append([]int(nil), s.lastCore...)
	for {
		dropped := false
		for i := 0; i < len(core); i++ {
			trial := make([]int, 0, len(core)-1)
			trial = append(trial, core[:i]...)
			trial = append(trial, core[i+1:]...)
			if !s.SolveAssuming(trial...) && !s.Exhausted() {
				// Still UNSAT without core[i]: adopt the (possibly even
				// smaller) final conflict of the probe and rescan.
				core = append([]int(nil), s.UnsatCore()...)
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
	}
	sort.Slice(core, func(i, j int) bool {
		ai, aj := core[i], core[j]
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		return ai < aj
	})
	s.lastCore = core
	return append([]int(nil), core...)
}

// Value reports the model value of a variable under the model captured by
// the most recent satisfiable call. Variables the solver never saw (or
// that were allocated after that call) read false.
func (s *Solver) Value(v int) bool {
	if v <= 0 || v >= len(s.model) {
		return false
	}
	return s.model[v] == 1
}

// Stats returns the lifetime work counters of the solver, accumulated
// across every call. Use CallStats for the most recent call alone.
func (s *Solver) Stats() SolveStats { return s.stats }

// CallStats returns the work of the most recent Solve/SolveAssuming call:
// Conflicts, Decisions, Propagations, Restarts and Learned are per-call
// deltas, while Vars and Clauses report the instance size (totals) at the
// end of the call.
func (s *Solver) CallStats() SolveStats {
	return SolveStats{
		Vars:         s.nVars,
		Clauses:      s.stats.Clauses,
		Conflicts:    s.stats.Conflicts - s.callBase.Conflicts,
		Decisions:    s.stats.Decisions - s.callBase.Decisions,
		Propagations: s.stats.Propagations - s.callBase.Propagations,
		Restarts:     s.stats.Restarts - s.callBase.Restarts,
		Learned:      s.stats.Learned - s.callBase.Learned,
	}
}

// Exhausted reports whether the most recent call gave up on its
// MaxConflicts budget (in which case its false return is "unknown", not
// UNSAT). Calling Solve or SolveAssuming again resumes the search under a
// fresh budget.
func (s *Solver) Exhausted() bool { return s.exhausted }

// --- activity heap -----------------------------------------------------

func (s *Solver) heapLess(a, b int) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapPush(v int) {
	s.heap = append(s.heap, v)
	s.heapPos[v] = len(s.heap) - 1
	s.heapUp(len(s.heap) - 1)
}

func (s *Solver) heapPop() int {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heapPos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *Solver) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Solver) heapDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.heap) && s.heapLess(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < len(s.heap) && s.heapLess(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heapSwap(i, smallest)
		i = smallest
	}
}

func (s *Solver) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heapPos[s.heap[i]] = i
	s.heapPos[s.heap[j]] = j
}

// heapFix restores heap order after an activity bump of v.
func (s *Solver) heapFix(v int) {
	if i := s.heapPos[v]; i >= 0 {
		s.heapUp(i)
	}
}
