package exp

import (
	"fmt"
	"strings"

	"uvllm/internal/core"
	"uvllm/internal/dataset"
)

// Table2Row is one row of paper Table II: the segmented stage
// contributions to fix rate and execution time for a module group and an
// error kind, alongside the MEIC comparison.
type Table2Row struct {
	Group   string // "Arithmetic s", "Control f", "Syntax", "Overall", ...
	N       int
	PreFR   float64
	PreT    float64
	MSFR    float64
	MST     float64
	SLFR    float64
	SLT     float64
	FR      float64 // UVLLM total FR
	T       float64 // UVLLM total Texec (s)
	MEICFR  float64
	MEICT   float64
	Speedup float64
}

// Table2 computes the full segmented table from the evaluation records.
func Table2(recs []*Record) []Table2Row {
	var rows []Table2Row
	kindRecs := map[string][]*Record{}
	for _, cat := range dataset.Categories() {
		for _, kind := range []string{"s", "f"} {
			var grp []*Record
			for _, r := range recs {
				if groupOf(r.Fault) != cat {
					continue
				}
				if (kind == "s") != r.Fault.Class.IsSyntax() {
					continue
				}
				grp = append(grp, r)
			}
			rows = append(rows, table2Row(fmt.Sprintf("%s %s", cat, kind), grp))
			kindRecs[kind] = append(kindRecs[kind], grp...)
		}
	}
	rows = append(rows, table2Row("Syntax", kindRecs["s"]))
	rows = append(rows, table2Row("Function", kindRecs["f"]))
	rows = append(rows, table2Row("Overall", append(append([]*Record{}, kindRecs["s"]...), kindRecs["f"]...)))
	return rows
}

func table2Row(name string, recs []*Record) Table2Row {
	row := Table2Row{Group: name, N: len(recs)}
	if len(recs) == 0 {
		return row
	}
	nf := float64(len(recs))
	for _, r := range recs {
		if r.UVLLMFix {
			switch r.UVLLM.FixedStage {
			case core.StagePre:
				row.PreFR++
			case core.StageMS:
				row.MSFR++
			case core.StageSL:
				row.SLFR++
			}
			row.FR++
		}
		row.PreT += r.UVLLM.Times.Pre
		row.MST += r.UVLLM.Times.MS
		row.SLT += r.UVLLM.Times.SL
		if r.MEICFix {
			row.MEICFR++
		}
		row.MEICT += r.MEIC.Seconds
	}
	row.PreFR = 100 * row.PreFR / nf
	row.MSFR = 100 * row.MSFR / nf
	row.SLFR = 100 * row.SLFR / nf
	row.FR = 100 * row.FR / nf
	row.MEICFR = 100 * row.MEICFR / nf
	row.PreT /= nf
	row.MST /= nf
	row.SLT /= nf
	row.T = row.PreT + row.MST + row.SLT
	row.MEICT /= nf
	if row.T > 0 {
		row.Speedup = row.MEICT / row.T
	}
	return row
}

// FormatTable2 renders the table in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II — segmented stage contributions (FR %, Texec s)\n")
	fmt.Fprintf(&b, "%-16s %4s | %6s %6s | %6s %6s | %6s %6s | %6s %7s | %6s %8s | %8s\n",
		"Group", "N",
		"PreFR", "PreT", "MSFR", "MST", "SLFR", "SLT",
		"FR", "Texec", "MEICFR", "MEICT", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %4d | %6.2f %6.2f | %6.2f %6.2f | %6.2f %6.2f | %6.2f %7.2f | %6.2f %8.2f | %7.2fx\n",
			r.Group, r.N,
			r.PreFR, r.PreT, r.MSFR, r.MST, r.SLFR, r.SLT,
			r.FR, r.T, r.MEICFR, r.MEICT, r.Speedup)
	}
	return b.String()
}

// Table3Row is one row of the ablation study (paper Table III): the
// repair-generation form.
type Table3Row struct {
	Variant string
	SynFR   float64
	FuncFR  float64
	SynT    float64
	FuncT   float64
}

func table3Row(name string, recs []*Record) Table3Row {
	row := Table3Row{Variant: name}
	var synN, funcN, synFix, funcFix int
	var synT, funcT float64
	for _, r := range recs {
		if r.Fault.Class.IsSyntax() {
			synN++
			synT += r.UVLLM.Times.Total()
			if r.UVLLMFix {
				synFix++
			}
		} else {
			funcN++
			funcT += r.UVLLM.Times.Total()
			if r.UVLLMFix {
				funcFix++
			}
		}
	}
	if synN > 0 {
		row.SynFR = 100 * float64(synFix) / float64(synN)
		row.SynT = synT / float64(synN)
	}
	if funcN > 0 {
		row.FuncFR = 100 * float64(funcFix) / float64(funcN)
		row.FuncT = funcT / float64(funcN)
	}
	return row
}

// FormatTable3 renders the ablation table.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table III — ablation: repair generation form\n")
	fmt.Fprintf(&b, "%-12s | %9s %9s | %9s %9s\n", "Framework", "FR-Syn%", "FR-Func%", "T-Syn s", "T-Func s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s | %9.2f %9.2f | %9.2f %9.2f\n", r.Variant, r.SynFR, r.FuncFR, r.SynT, r.FuncT)
	}
	return b.String()
}
