package formal

// CNF is a clause set in near-DIMACS form: variables are 1-based ints, a
// negative literal is the negation of its variable.
type CNF struct {
	NumVars int
	Clauses [][]int
}

// AddClause appends one clause.
func (c *CNF) AddClause(lits ...int) {
	c.Clauses = append(c.Clauses, lits)
}

// Tseitin converts the cone of influence of the given roots into CNF,
// asserting every root literal true. It returns the clause set and the
// mapping from AIG node index to CNF variable (only nodes inside the cone
// are mapped; the caller uses the map to decode SAT models back into AIG
// variable assignments).
func (g *AIG) Tseitin(roots []Lit) (*CNF, map[uint32]int) {
	cnf := &CNF{}
	vars := map[uint32]int{}
	newVar := func(n uint32) int {
		if v, ok := vars[n]; ok {
			return v
		}
		cnf.NumVars++
		vars[n] = cnf.NumVars
		return cnf.NumVars
	}
	lit := func(l Lit) int {
		v := vars[l.Node()]
		if l.Neg() {
			return -v
		}
		return v
	}

	// Collect the cone bottom-up.
	visited := map[uint32]bool{0: true}
	var order []uint32
	var stack []uint32
	for _, r := range roots {
		if n := r.Node(); !visited[n] {
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		if visited[n] {
			stack = stack[:len(stack)-1]
			continue
		}
		nd := g.nodes[n]
		if nd.a == varSentinel {
			visited[n] = true
			order = append(order, n)
			stack = stack[:len(stack)-1]
			continue
		}
		an, bn := nd.a.Node(), nd.b.Node()
		if !visited[an] {
			stack = append(stack, an)
			continue
		}
		if !visited[bn] {
			stack = append(stack, bn)
			continue
		}
		visited[n] = true
		order = append(order, n)
		stack = stack[:len(stack)-1]
	}

	for _, n := range order {
		v := newVar(n)
		nd := g.nodes[n]
		if nd.a == varSentinel {
			continue // free input variable: no defining clauses
		}
		a, b := lit(nd.a), lit(nd.b)
		// v <-> a AND b
		cnf.AddClause(-v, a)
		cnf.AddClause(-v, b)
		cnf.AddClause(v, -a, -b)
	}
	for _, r := range roots {
		if c, val := g.IsConst(r); c {
			if !val {
				// Root is constant false: the formula is trivially UNSAT.
				cnf.AddClause()
			}
			continue
		}
		cnf.AddClause(lit(r))
	}
	return cnf, vars
}
