package rtlgen

import (
	"testing"

	"uvllm/internal/dataset"
)

// TestDiffBitSimOverStridedSeeds is the bit-parallel byte-identity gate
// over generated designs: a strided subset of the rtlgen seed space must
// produce identical traces, VCD bytes and final state whether the lanes
// run one-bit-per-word over the blasted AIG, fused in a sim.Batch, or as
// standalone harnesses. Both psim paths must be exercised: levelized
// designs take the bit-parallel engines, event-fallback flavors take the
// transparent sim.Batch fallback.
func TestDiffBitSimOverStridedSeeds(t *testing.T) {
	const stride, count = 17, 12
	bit := 0
	for i := 0; i < count; i++ {
		d := Generate(int64(1 + i*stride))
		bp, err := DiffBitSim(d.Source, d.Top, d.Clock, 6, 30, d.Seed)
		if err != nil {
			t.Fatalf("seed %d (%s): bit-parallel diverged: %v\n%s", d.Seed, d.Flavor, err, d.Source)
		}
		if bp {
			bit++
		}
	}
	if bit == 0 {
		t.Fatal("no strided seed took the bit-parallel path")
	}
	if bit == count {
		t.Fatal("no strided seed exercised the sim.Batch fallback")
	}
	t.Logf("bit-parallel path on %d/%d strided seeds", bit, count)
}

// TestDiffBitSimDataset requires zero divergences across every dataset
// module — the designs the verification pipeline actually runs on — and
// pins the subset floor: the overwhelming majority must take the
// bit-parallel path (sync and async-reset sequential designs included),
// not the fallback.
func TestDiffBitSimDataset(t *testing.T) {
	mods := dataset.All()
	bit := 0
	for _, m := range mods {
		bp, err := DiffBitSim(m.Source, m.Top, m.Clock, 8, 30, 0x5eed)
		if err != nil {
			t.Fatalf("%s: bit-parallel diverged: %v", m.Name, err)
		}
		if bp {
			bit++
		}
	}
	if bit < len(mods)*3/4 {
		t.Fatalf("only %d/%d dataset modules took the bit-parallel path (want >= 3/4)", bit, len(mods))
	}
	t.Logf("bit-parallel path on %d/%d dataset modules", bit, len(mods))
}

// TestDiffBitSimSkipsUnelaborable pins the vacuous path: sources the
// compiler rejects are DiffBackends' case, not a psim divergence.
func TestDiffBitSimSkipsUnelaborable(t *testing.T) {
	if _, err := DiffBitSim("module broken(", "broken", "clk", 4, 10, 1); err != nil {
		t.Fatalf("unelaborable source must be vacuously fine, got %v", err)
	}
}
