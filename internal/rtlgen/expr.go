package rtlgen

import "uvllm/internal/verilog"

// expr generates a random expression tree of at most the given depth whose
// result feeds a ctxW-bit context. Only constructs both simulator backends
// support exactly are emitted, and shapes the printer cannot round-trip
// unambiguously (unary directly nesting unary, e.g. "&(&x)" printing as the
// "&&x" token) are avoided at the source.
func (g *gen) expr(depth, ctxW int) verilog.Expr {
	if depth <= 0 || len(g.pool) == 0 {
		return g.leaf(ctxW)
	}
	switch g.intn(14) {
	case 0, 1, 2:
		return g.leaf(ctxW)
	case 3:
		return g.unary(depth)
	case 4, 5, 6, 7:
		return g.arith(depth, ctxW)
	case 8:
		return g.compare(depth)
	case 9:
		return g.shift(depth, ctxW)
	case 10:
		return &verilog.Ternary{Cond: g.expr(depth-1, 1), Then: g.expr(depth-1, ctxW), Else: g.expr(depth-1, ctxW)}
	case 11:
		return g.concat()
	case 12:
		return g.repl()
	default:
		return g.selectExpr()
	}
}

// leaf draws a pool signal or a literal sized for the context.
func (g *gen) leaf(ctxW int) verilog.Expr {
	if len(g.pool) > 0 && g.intn(4) != 0 {
		s := g.pool[g.intn(len(g.pool))]
		return ident(s.name)
	}
	w := ctxW
	if w < 1 {
		w = 1
	}
	if w > 16 {
		w = 16
	}
	return num64(uint64(g.rng.Int63())&((1<<uint(w))-1), w)
}

// nonUnary generates an operand that is never itself a Unary node (the
// printer does not parenthesize unary-in-unary, and "& &x" would print as
// the "&&" token).
func (g *gen) nonUnary(depth, ctxW int) verilog.Expr {
	e := g.expr(depth, ctxW)
	if _, ok := e.(*verilog.Unary); ok {
		return g.leaf(ctxW)
	}
	return e
}

var unaryOps = []string{"~", "-", "!", "&", "|", "^", "~&", "~|", "~^"}

func (g *gen) unary(depth int) verilog.Expr {
	op := unaryOps[g.intn(len(unaryOps))]
	return &verilog.Unary{Op: op, X: g.nonUnary(depth-1, 8)}
}

var arithOps = []string{"+", "+", "-", "-", "&", "|", "^", "*", "/", "%", "~^"}

func (g *gen) arith(depth, ctxW int) verilog.Expr {
	op := arithOps[g.intn(len(arithOps))]
	return &verilog.Binary{Op: op, X: g.expr(depth-1, ctxW), Y: g.expr(depth-1, ctxW)}
}

var cmpOps = []string{"==", "!=", "<", ">", "<=", ">=", "&&", "||"}

func (g *gen) compare(depth int) verilog.Expr {
	op := cmpOps[g.intn(len(cmpOps))]
	return &verilog.Binary{Op: op, X: g.expr(depth-1, 8), Y: g.expr(depth-1, 8)}
}

func (g *gen) shift(depth, ctxW int) verilog.Expr {
	op := "<<"
	if g.intn(2) == 1 {
		op = ">>"
	}
	// Shift amounts stay small constants or narrow signals so results are
	// usually non-degenerate; >=64 shifts are still exercised occasionally.
	var n verilog.Expr
	if g.intn(3) == 0 && len(g.pool) > 0 {
		s := g.pool[g.intn(len(g.pool))]
		n = ident(s.name)
	} else {
		n = num64(uint64(g.intn(9)), 0)
	}
	return &verilog.Binary{Op: op, X: g.expr(depth-1, ctxW), Y: n}
}

// concat joins two or three pool signals, bounded to 64 total bits.
func (g *gen) concat() verilog.Expr {
	var parts []verilog.Expr
	total := 0
	n := 2 + g.intn(2)
	for i := 0; i < n; i++ {
		s := g.pool[g.intn(len(g.pool))]
		if total+s.width > 64 {
			continue
		}
		total += s.width
		parts = append(parts, ident(s.name))
	}
	if len(parts) < 2 {
		return g.leaf(8)
	}
	return &verilog.Concat{Parts: parts}
}

// repl replicates a narrow signal or literal a small constant number of
// times, bounded to 64 total bits.
func (g *gen) repl() verilog.Expr {
	count := 2 + g.intn(3) // 2..4
	var val verilog.Expr
	if g.intn(2) == 0 {
		// Narrow pool signal.
		for try := 0; try < 4; try++ {
			s := g.pool[g.intn(len(g.pool))]
			if s.width*count <= 64 {
				val = ident(s.name)
				break
			}
		}
	}
	if val == nil {
		val = num64(uint64(g.rng.Int63()), 1+g.intn(4))
	}
	return &verilog.Repl{Count: num64(uint64(count), 0), Value: val}
}

// selectExpr draws a bit select or constant part select on a pool signal.
func (g *gen) selectExpr() verilog.Expr {
	s := g.pool[g.intn(len(g.pool))]
	if s.width <= 1 {
		return ident(s.name)
	}
	if g.intn(3) == 0 {
		// Part select with in-range constant bounds.
		lsb := g.intn(s.width)
		msb := lsb + g.intn(s.width-lsb)
		return &verilog.PartSelect{X: ident(s.name), MSB: num64(uint64(msb), 0), LSB: num64(uint64(lsb), 0)}
	}
	if g.intn(4) == 0 && len(g.pool) > 1 {
		// Variable bit select; out-of-range indices read 0 on both backends.
		idx := g.pool[g.intn(len(g.pool))]
		return &verilog.Index{X: ident(s.name), Index: ident(idx.name)}
	}
	return &verilog.Index{X: ident(s.name), Index: num64(uint64(g.intn(s.width)), 0)}
}
