package verilog_test

// Printer round-trip coverage over the full dataset: until now only the
// parser had direct tests; the printer was exercised indirectly through
// the pre-processing repairs. Every golden benchmark module must survive
// parse -> print -> parse with no errors, an identical second print
// (canonical-form fixpoint) and a structurally identical AST.

import (
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/verilog"
)

func TestPrinterRoundTripDatasetModules(t *testing.T) {
	for _, m := range dataset.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			f, errs := verilog.Parse(m.Source)
			if len(errs) > 0 {
				t.Fatalf("golden source does not parse: %v", errs[0])
			}
			p1 := verilog.Print(f)
			f1, errs := verilog.Parse(p1)
			if len(errs) > 0 {
				t.Fatalf("printed form does not reparse: %v\n--- printed ---\n%s", errs[0], p1)
			}
			p2 := verilog.Print(f1)
			if p1 != p2 {
				t.Fatalf("print is not a fixpoint\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
			}
			checkSameShape(t, f, f1)
		})
	}
}

// checkSameShape asserts the round-tripped AST matches the original in
// module structure: names, port lists and item counts, and identical
// canonical rendering of every port and item.
func checkSameShape(t *testing.T, a, b *verilog.SourceFile) {
	t.Helper()
	if len(a.Modules) != len(b.Modules) {
		t.Fatalf("module count changed: %d -> %d", len(a.Modules), len(b.Modules))
	}
	for i, ma := range a.Modules {
		mb := b.Modules[i]
		if ma.Name != mb.Name {
			t.Fatalf("module %d renamed: %q -> %q", i, ma.Name, mb.Name)
		}
		if len(ma.Ports) != len(mb.Ports) {
			t.Fatalf("%s: port count changed: %d -> %d", ma.Name, len(ma.Ports), len(mb.Ports))
		}
		for j, pa := range ma.Ports {
			pb := mb.Ports[j]
			if pa.Name != pb.Name || pa.Dir != pb.Dir || pa.IsReg != pb.IsReg || pa.Signed != pb.Signed {
				t.Fatalf("%s: port %d changed: %+v -> %+v", ma.Name, j, pa, pb)
			}
			if (pa.Range == nil) != (pb.Range == nil) {
				t.Fatalf("%s: port %s range presence changed", ma.Name, pa.Name)
			}
			if pa.Range != nil {
				if verilog.ExprString(pa.Range.MSB) != verilog.ExprString(pb.Range.MSB) ||
					verilog.ExprString(pa.Range.LSB) != verilog.ExprString(pb.Range.LSB) {
					t.Fatalf("%s: port %s range changed", ma.Name, pa.Name)
				}
			}
		}
		if len(ma.Items) != len(mb.Items) {
			t.Fatalf("%s: item count changed: %d -> %d", ma.Name, len(ma.Items), len(mb.Items))
		}
	}
}

// TestPrinterParenthesizesSelectBases pins the fix for non-identifier
// select bases: (a + b)[0] must not print as a + b[0].
func TestPrinterParenthesizesSelectBases(t *testing.T) {
	src := `module m(input [7:0] a, input [7:0] b, output o, output [1:0] p);
assign o = (a + b) >> 1;
endmodule`
	f, errs := verilog.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	// Build the select-of-expression shapes directly (the parser only
	// produces them from parenthesized sources).
	mod := f.Modules[0]
	sum := &verilog.Binary{Op: "+", X: &verilog.Ident{Name: "a"}, Y: &verilog.Ident{Name: "b"}}
	mod.Items = append(mod.Items,
		&verilog.ContAssign{LHS: &verilog.Ident{Name: "o"}, RHS: &verilog.Index{X: sum, Index: &verilog.Number{Text: "0", Value: 0}}},
		&verilog.ContAssign{LHS: &verilog.Ident{Name: "p"}, RHS: &verilog.PartSelect{
			X:   sum,
			MSB: &verilog.Number{Text: "1", Value: 1},
			LSB: &verilog.Number{Text: "0", Value: 0},
		}},
	)
	p1 := verilog.Print(f)
	f1, errs := verilog.Parse(p1)
	if len(errs) > 0 {
		t.Fatalf("printed form does not reparse: %v\n%s", errs[0], p1)
	}
	if p2 := verilog.Print(f1); p1 != p2 {
		t.Fatalf("select-base printing unstable\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
	}
}
