package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanInfo is the immutable record of a finished span, the unit both
// exporters consume: WriteChromeTrace renders a slice of them as a
// trace_event JSON file, and uvllmd forwards them per-job over the SSE
// event stream.
type SpanInfo struct {
	// ID is the span's tracer-unique identifier.
	ID int64 `json:"id"`
	// Parent is the parent span's ID, 0 for a root span.
	Parent int64 `json:"parent,omitempty"`
	// Name is the operation name (e.g. "iteration", "formal.bmc").
	Name string `json:"name"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// Dur is the span's duration.
	Dur time.Duration `json:"dur_ns"`
	// Args are optional span annotations.
	Args map[string]string `json:"args,omitempty"`
}

// Tracer collects a tree of spans for one run or job. It is safe for
// concurrent use. A nil *Tracer is the disabled fast path: Start
// returns a nil *Span and every span method no-ops.
type Tracer struct {
	mu    sync.Mutex
	runID string
	next  int64
	done  []SpanInfo

	// SlowSpan, when > 0, is the duration at or above which a finished
	// span is reported through OnSlow — the sampling slow-span log.
	SlowSpan time.Duration
	// OnSlow is called synchronously for each finished span whose
	// duration is >= SlowSpan (ignored when SlowSpan is 0).
	OnSlow func(SpanInfo)
	// OnEnd, when set, is called synchronously for every finished span;
	// uvllmd uses it to stream spans over SSE as they close.
	OnEnd func(SpanInfo)
}

// NewTracer returns a tracer for the given run identifier (propagated
// into every span's args as run_id when non-empty).
func NewTracer(runID string) *Tracer { return &Tracer{runID: runID} }

// RunID returns the tracer's run identifier ("" on a nil receiver).
func (t *Tracer) RunID() string {
	if t == nil {
		return ""
	}
	return t.runID
}

// Span is one timed operation in a tracer's span tree. Spans are
// strictly nested (a child ends before its parent), so the Chrome
// export renders as a flame graph. A nil *Span is a valid no-op
// handle, which is what instrumented code holds when tracing is off.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu   sync.Mutex
	args map[string]string
	done bool
}

// Start opens a root span. Nil tracer returns a nil (no-op) span.
func (t *Tracer) Start(name string) *Span { return t.start(name, 0) }

func (t *Tracer) start(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.next++
	id := t.next
	t.mu.Unlock()
	return &Span{t: t, id: id, parent: parent, name: name, start: time.Now()}
}

// Child opens a sub-span of s. Safe on a nil receiver (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id)
}

// SetArg attaches a key/value annotation to the span. Safe on a nil
// receiver (no-op).
func (s *Span) SetArg(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[key] = value
	s.mu.Unlock()
}

// End closes the span, recording it with its tracer and firing the
// OnEnd / slow-span hooks. End is idempotent and safe on a nil
// receiver, so `defer sp.End()` is always correct.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	args := s.args
	s.mu.Unlock()

	t := s.t
	if t.runID != "" {
		if args == nil {
			args = map[string]string{}
		}
		if _, ok := args["run_id"]; !ok {
			args["run_id"] = t.runID
		}
	}
	info := SpanInfo{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Dur: now.Sub(s.start), Args: args}
	t.mu.Lock()
	t.done = append(t.done, info)
	onEnd, onSlow, slow := t.OnEnd, t.OnSlow, t.SlowSpan
	t.mu.Unlock()
	if onEnd != nil {
		onEnd(info)
	}
	if slow > 0 && info.Dur >= slow && onSlow != nil {
		onSlow(info)
	}
}

// Spans returns the finished spans recorded so far, ordered by start
// time (nil on a nil receiver).
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanInfo(nil), t.done...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// chromeEvent is one Chrome trace_event "complete" ("ph":"X") record.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the tracer's finished spans as Chrome
// trace_event JSON (the array form loadable by chrome://tracing and
// Perfetto). All spans are emitted as complete events on one
// pid/tid, so strict nesting renders as a flame graph; the parent span
// ID is carried in args. Safe on a nil receiver (writes an empty
// trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}
	for _, s := range spans {
		args := make(map[string]string, len(s.Args)+2)
		for k, v := range s.Args {
			args[k] = v
		}
		args["span"] = fmt.Sprintf("%d", s.ID)
		if s.Parent != 0 {
			args["parent_span"] = fmt.Sprintf("%d", s.Parent)
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// ctxKey is the context key type for span propagation.
type ctxKey struct{}

// ContextWith returns ctx carrying sp; FromContext on the result (or
// any derived context) returns sp. Attaching a nil span is allowed and
// equivalent to no span.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil if none — the
// nil result is a valid no-op span, so callers chain
// obs.FromContext(ctx).Child("phase") unconditionally.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
