// Command uvllm runs the UVLLM verification pipeline on one DUT: it lints,
// pre-processes, tests under the UVM environment and repairs iteratively,
// printing the verdict and the stage log.
//
// The repository is offline, so the LLM agent is the calibrated oracle
// described in DESIGN.md. Two usage modes:
//
//	uvllm -module counter_12bit -inject FuncLogic     # inject + repair
//	uvllm -module counter_12bit -file my_counter.v    # verify your file
//
// In both modes the specification, reference model and clocking come from
// the named benchmark module. With -formal, a successful verification is
// additionally checked by the formal engine: the delivered source must be
// provably equivalent to the golden for every post-reset stimulus up to
// -formal-depth cycles (refutations print a replayable counterexample and
// fail the run). With -induction the proof runs through k-induction: the
// same bounded base, plus an inductive step that can close the proof for
// all time rather than just to the unrolling depth.
//
// The command assembles a service.JobSpec and executes it through the
// same service.Execute path as the cmd/uvllmd server, so a job submitted
// here and a job submitted over HTTP produce identical verdicts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"uvllm/internal/dataset"
	"uvllm/internal/lint"
	"uvllm/internal/obs"
	"uvllm/internal/service"
	"uvllm/internal/sim"
	"uvllm/internal/synth"
	"uvllm/internal/uvm"
)

func main() {
	var (
		modName  = flag.String("module", "counter_12bit", "benchmark module name (see -list)")
		inject   = flag.String("inject", "", "fault class to inject (e.g. FuncLogic, SynKeywordTypo)")
		variant  = flag.Int("variant", 0, "fault variant index")
		file     = flag.String("file", "", "verify this Verilog file instead of injecting")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		mode     = flag.String("mode", "pair", "repair generation form: pair or complete")
		list     = flag.Bool("list", false, "list benchmark modules and exit")
		lintOnly = flag.Bool("lint", false, "lint the input and exit")
		synthRpt = flag.Bool("synth", false, "synthesize the input, print the cell report and exit")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (load at chrome://tracing)")
		verbose  = flag.Bool("v", false, "print the pipeline log")
	)
	knobs := service.Bind(flag.CommandLine, service.FlagBackend|service.FlagCover|service.FlagFormal)
	flag.Parse()

	if *list {
		for _, m := range dataset.All() {
			fmt.Printf("%-18s %-14s complexity=%d clock=%q fsm=%v\n",
				m.Name, m.Category, m.Complexity, m.Clock, m.IsFSM)
		}
		return
	}

	spec, err := buildSpec(knobs, *modName, *inject, *variant, *file, *seed, *mode)
	if err != nil {
		fatalf("%v", err)
	}
	m := dataset.ByName(spec.Module)
	in, err := spec.Resolve()
	if err != nil {
		fatalf("%v", err)
	}

	if *synthRpt {
		nl, err := synth.SynthesizeSource(in.Source, m.Top)
		if err != nil {
			fatalf("synthesis failed: %v", err)
		}
		fmt.Print(nl.FormatStats())
		saved := nl.Optimize()
		fmt.Printf("after optimization (-%d cells):\n", saved)
		fmt.Print(nl.FormatStats())
		return
	}

	if *lintOnly {
		rep := lint.Lint(in.Source)
		fmt.Print(rep.Format())
		if !rep.Clean() {
			os.Exit(1)
		}
		fmt.Println("lint: clean")
		return
	}

	fmt.Printf("UVLLM: verifying %s (%s)\n", m.Name, in.Descr)
	ctx := context.Background()
	var tracer *obs.Tracer
	var root *obs.Span
	if *traceOut != "" {
		tracer = obs.NewTracer(spec.Module)
		root = tracer.Start("job")
		ctx = obs.ContextWith(ctx, root)
	}
	res := service.ExecuteCtx(ctx, spec, service.DefaultServices(), nil)
	if root != nil {
		root.End()
		if err := writeTrace(*traceOut, tracer); err != nil {
			fatalf("write trace: %v", err)
		}
		fmt.Printf("trace: %d spans written to %s\n", len(tracer.Spans()), *traceOut)
	}
	if res.Error != "" {
		fatalf("%s", res.Error)
	}

	fmt.Printf("result: success=%v stage=%s iterations=%d pass_rate=%.2f%% coverage=%.1f%%\n",
		res.Success, res.Stage, res.Iterations, res.PassRate*100, res.Coverage)
	if spec.Options.Cover {
		fmt.Printf("structural coverage: %.1f%% (best across UVM runs)\n", res.StructCoverage)
	}
	fmt.Printf("modeled time: pre=%.2fs ms=%.2fs sl=%.2fs total=%.2fs; LLM calls=%d (%d in / %d out tokens)\n",
		res.Times.Pre, res.Times.MS, res.Times.SL, res.Times.Total(),
		res.Usage.Calls, res.Usage.InputTokens, res.Usage.OutputTokens)

	switch res.Formal {
	case "proved":
		fmt.Printf("formal: PROVED %s\n", res.FormalDetail)
	case "refuted":
		fmt.Printf("formal: REFUTED — %s\n", res.FormalDetail)
	case "unsupported":
		fmt.Printf("formal: %s\n", res.FormalDetail)
	}
	if *verbose {
		cs := sim.SharedCache().Stats()
		ms := uvm.SharedTraceMemo().Stats()
		fmt.Printf("amortization: compile cache %d hits / %d misses; golden-trace memo %d hits / %d misses\n",
			cs.Hits, cs.Misses, ms.Hits, ms.Misses)
		fmt.Println("--- pipeline log ---")
		fmt.Println(strings.Join(res.Log, "\n"))
		fmt.Println("--- final source ---")
		fmt.Println(res.Final)
	}
	if res.Failed() {
		os.Exit(1)
	}
}

// buildSpec assembles and validates the job spec from the parsed flags —
// the same service-layer validation path the uvllmd server applies to
// HTTP submissions, so a value rejected here is rejected identically
// there.
func buildSpec(knobs *service.Flags, module, inject string, variant int, file string, seed int64, mode string) (service.JobSpec, error) {
	opts, err := knobs.Options()
	if err != nil {
		return service.JobSpec{}, err
	}
	spec := service.JobSpec{
		Module: module, Inject: inject, Variant: variant,
		Seed: seed, Mode: mode, Options: opts,
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return service.JobSpec{}, fmt.Errorf("read %s: %v", file, err)
		}
		spec.Source = string(data)
		spec.Inject = ""
	}
	if err := spec.Validate(); err != nil {
		if dataset.ByName(spec.Module) == nil {
			return service.JobSpec{}, fmt.Errorf("%v (use -list)", err)
		}
		return service.JobSpec{}, err
	}
	return spec, nil
}

// writeTrace dumps the tracer's finished spans as Chrome trace_event
// JSON, loadable at chrome://tracing or https://ui.perfetto.dev.
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "uvllm: "+format+"\n", args...)
	os.Exit(2)
}
