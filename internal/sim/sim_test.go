package sim

import (
	"testing"

	"uvllm/internal/verilog"
)

func mustSim(t *testing.T, src, top string) *Simulator {
	t.Helper()
	s, err := CompileAndNew(src, top)
	if err != nil {
		t.Fatalf("CompileAndNew: %v", err)
	}
	return s
}

func settle(t *testing.T, s *Simulator) {
	t.Helper()
	if err := s.Settle(); err != nil {
		t.Fatalf("Settle: %v", err)
	}
}

func TestCombinationalAssign(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input [7:0] b, output [7:0] y);
assign y = a + b;
endmodule`, "m")
	s.Set("a", 30)
	s.Set("b", 12)
	settle(t, s)
	if got := s.Get("y"); got != 42 {
		t.Errorf("y = %d, want 42", got)
	}
	// Truncation at declared width.
	s.Set("a", 200)
	s.Set("b", 100)
	settle(t, s)
	if got := s.Get("y"); got != (300 & 0xFF) {
		t.Errorf("y = %d, want %d", got, 300&0xFF)
	}
}

func TestCarryOutViaConcatLHS(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input [7:0] b, output [7:0] sum, output co);
assign {co, sum} = a + b;
endmodule`, "m")
	s.Set("a", 200)
	s.Set("b", 100)
	settle(t, s)
	if got := s.Get("sum"); got != 44 {
		t.Errorf("sum = %d, want 44", got)
	}
	if got := s.Get("co"); got != 1 {
		t.Errorf("co = %d, want 1", got)
	}
}

func TestContextWidthExtension(t *testing.T) {
	// 9-bit LHS must see the carry of an 8-bit + 8-bit addition.
	s := mustSim(t, `module m(input [7:0] a, input [7:0] b, output [8:0] full);
assign full = a + b;
endmodule`, "m")
	s.Set("a", 255)
	s.Set("b", 255)
	settle(t, s)
	if got := s.Get("full"); got != 510 {
		t.Errorf("full = %d, want 510", got)
	}
}

func TestSubtractionWrapsAtContextWidth(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input [7:0] b, output [7:0] d, output eq);
assign d = a - b;
assign eq = (a - b) == 8'hFF;
endmodule`, "m")
	s.Set("a", 1)
	s.Set("b", 2)
	settle(t, s)
	if got := s.Get("d"); got != 255 {
		t.Errorf("d = %d, want 255", got)
	}
	if got := s.Get("eq"); got != 1 {
		t.Errorf("eq = %d, want 1 (8-bit wraparound)", got)
	}
}

func TestBitwiseNotMasked(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, output [7:0] y, output z);
assign y = ~a;
assign z = (~a == 8'hF0);
endmodule`, "m")
	s.Set("a", 0x0F)
	settle(t, s)
	if got := s.Get("y"); got != 0xF0 {
		t.Errorf("y = %#x, want 0xF0", got)
	}
	if got := s.Get("z"); got != 1 {
		t.Errorf("z = %d, want 1", got)
	}
}

func TestReductions(t *testing.T) {
	s := mustSim(t, `module m(input [3:0] a, output rand_, output ror_, output rxor_);
assign rand_ = &a;
assign ror_ = |a;
assign rxor_ = ^a;
endmodule`, "m")
	cases := []struct{ a, and, or, xor uint64 }{
		{0b0000, 0, 0, 0},
		{0b1111, 1, 1, 0},
		{0b1010, 0, 1, 0},
		{0b1000, 0, 1, 1},
	}
	for _, c := range cases {
		s.Set("a", c.a)
		settle(t, s)
		if s.Get("rand_") != c.and || s.Get("ror_") != c.or || s.Get("rxor_") != c.xor {
			t.Errorf("a=%04b: (&,|,^) = (%d,%d,%d), want (%d,%d,%d)", c.a,
				s.Get("rand_"), s.Get("ror_"), s.Get("rxor_"), c.and, c.or, c.xor)
		}
	}
}

func TestSequentialCounter(t *testing.T) {
	src := `module counter(input clk, input rst_n, input en, output reg [7:0] count);
always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
        count <= 8'd0;
    end else if (en) begin
        count <= count + 8'd1;
    end
end
endmodule`
	s := mustSim(t, src, "counter")
	h := NewHarness(s, "clk")
	if err := h.ApplyReset(2); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("count"); got != 0 {
		t.Fatalf("count after reset = %d", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := h.Cycle(map[string]uint64{"en": 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Get("count"); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	// Disabled: holds value.
	if _, err := h.Cycle(map[string]uint64{"en": 0}); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("count"); got != 5 {
		t.Errorf("count after hold = %d, want 5", got)
	}
}

func TestAsyncResetMidOperation(t *testing.T) {
	src := `module r(input clk, input rst_n, output reg [3:0] q);
always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else q <= q + 4'd1;
end
endmodule`
	s := mustSim(t, src, "r")
	h := NewHarness(s, "clk")
	h.ApplyReset(1)
	for i := 0; i < 3; i++ {
		h.Cycle(nil)
	}
	if got := s.Get("q"); got != 3 {
		t.Fatalf("q = %d, want 3", got)
	}
	// Async reset asserts without a clock edge.
	s.Set("rst_n", 0)
	settle(t, s)
	if got := s.Get("q"); got != 0 {
		t.Errorf("q after async reset = %d, want 0", got)
	}
}

func TestNonBlockingSwap(t *testing.T) {
	src := `module swap(input clk, output reg [3:0] x, output reg [3:0] y);
initial begin
    x = 4'd1;
    y = 4'd2;
end
always @(posedge clk) begin
    x <= y;
    y <= x;
end
endmodule`
	s := mustSim(t, src, "swap")
	h := NewHarness(s, "clk")
	if s.Get("x") != 1 || s.Get("y") != 2 {
		t.Fatalf("initial x,y = %d,%d", s.Get("x"), s.Get("y"))
	}
	h.Cycle(nil)
	if s.Get("x") != 2 || s.Get("y") != 1 {
		t.Errorf("after swap x,y = %d,%d, want 2,1", s.Get("x"), s.Get("y"))
	}
}

func TestBlockingInSeqBlockOrder(t *testing.T) {
	// Blocking assignments in sequential code propagate within the cycle.
	src := `module b(input clk, input [3:0] d, output reg [3:0] q);
reg [3:0] tmp;
always @(posedge clk) begin
    tmp = d + 4'd1;
    q <= tmp;
end
endmodule`
	s := mustSim(t, src, "b")
	h := NewHarness(s, "clk")
	h.Cycle(map[string]uint64{"d": 4})
	if got := s.Get("q"); got != 5 {
		t.Errorf("q = %d, want 5", got)
	}
}

func TestCaseStatement(t *testing.T) {
	src := `module mux4(input [1:0] sel, input [3:0] d, output reg y);
always @(*) begin
    case (sel)
        2'd0: y = d[0];
        2'd1: y = d[1];
        2'd2: y = d[2];
        default: y = d[3];
    endcase
end
endmodule`
	s := mustSim(t, src, "mux4")
	s.Set("d", 0b0110)
	for sel, want := range []uint64{0, 1, 1, 0} {
		s.Set("sel", uint64(sel))
		settle(t, s)
		if got := s.Get("y"); got != want {
			t.Errorf("sel=%d: y = %d, want %d", sel, got, want)
		}
	}
}

func TestForLoopUnrolledAtRuntime(t *testing.T) {
	src := `module p(input [7:0] a, output reg par);
integer i;
always @(*) begin
    par = 1'b0;
    for (i = 0; i < 8; i = i + 1) begin
        par = par ^ a[i];
    end
end
endmodule`
	s := mustSim(t, src, "p")
	s.Set("a", 0b10110100)
	settle(t, s)
	if got := s.Get("par"); got != 0 {
		t.Errorf("par = %d, want 0", got)
	}
	s.Set("a", 0b10110101)
	settle(t, s)
	if got := s.Get("par"); got != 1 {
		t.Errorf("par = %d, want 1", got)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	src := `module ram(input clk, input we, input [3:0] addr, input [7:0] din, output reg [7:0] dout);
reg [7:0] mem [0:15];
always @(posedge clk) begin
    if (we) mem[addr] <= din;
    dout <= mem[addr];
end
endmodule`
	s := mustSim(t, src, "ram")
	h := NewHarness(s, "clk")
	h.Cycle(map[string]uint64{"we": 1, "addr": 3, "din": 99})
	if got := s.GetMem("mem", 3); got != 99 {
		t.Fatalf("mem[3] = %d, want 99", got)
	}
	// Read-after-write: dout sees the old value on the write cycle (NBA),
	// the new value one cycle later.
	h.Cycle(map[string]uint64{"we": 0, "addr": 3})
	if got := s.Get("dout"); got != 99 {
		t.Errorf("dout = %d, want 99", got)
	}
}

func TestHierarchicalInstance(t *testing.T) {
	src := `module half_adder(input a, input b, output s, output c);
assign s = a ^ b;
assign c = a & b;
endmodule
module full_adder(input a, input b, input cin, output sum, output cout);
wire s1, c1, c2;
half_adder ha1 (.a(a), .b(b), .s(s1), .c(c1));
half_adder ha2 (.a(s1), .b(cin), .s(sum), .c(c2));
assign cout = c1 | c2;
endmodule`
	s := mustSim(t, src, "full_adder")
	for v := uint64(0); v < 8; v++ {
		a, b, cin := v&1, (v>>1)&1, (v>>2)&1
		s.Set("a", a)
		s.Set("b", b)
		s.Set("cin", cin)
		settle(t, s)
		total := a + b + cin
		if got := s.Get("sum"); got != total&1 {
			t.Errorf("a=%d b=%d cin=%d: sum=%d", a, b, cin, got)
		}
		if got := s.Get("cout"); got != total>>1 {
			t.Errorf("a=%d b=%d cin=%d: cout=%d", a, b, cin, got)
		}
	}
	// Internal hierarchical signals visible.
	if !s.Has("ha1.s") {
		t.Error("hierarchical name ha1.s missing")
	}
}

func TestParameterOverride(t *testing.T) {
	src := `module inc(input [7:0] a, output [7:0] y);
parameter STEP = 1;
assign y = a + STEP;
endmodule
module top(input [7:0] a, output [7:0] y);
inc #(.STEP(5)) u (.a(a), .y(y));
endmodule`
	s := mustSim(t, src, "top")
	s.Set("a", 10)
	settle(t, s)
	if got := s.Get("y"); got != 15 {
		t.Errorf("y = %d, want 15", got)
	}
}

func TestIncompleteSensitivityMisbehaves(t *testing.T) {
	// always @(a) with y = a & b must NOT react to b-only changes: the
	// simulator honors buggy sensitivity lists so the fault is observable.
	src := `module m(input a, input b, output reg y);
always @(a) begin
    y = a & b;
end
endmodule`
	s := mustSim(t, src, "m")
	s.Set("a", 1)
	s.Set("b", 1)
	settle(t, s)
	if got := s.Get("y"); got != 1 {
		t.Fatalf("y = %d, want 1", got)
	}
	s.Set("b", 0) // y should stay stale at 1
	settle(t, s)
	if got := s.Get("y"); got != 1 {
		t.Errorf("y = %d after b change; buggy list should keep it stale", got)
	}
	s.Set("a", 0)
	settle(t, s)
	if got := s.Get("y"); got != 0 {
		t.Errorf("y = %d after a change, want 0", got)
	}
}

func TestOscillationDetected(t *testing.T) {
	// Stable while a=0; a ring oscillator once a=1.
	src := `module osc(input a, output w);
wire x;
assign x = a ? ~x : 1'b0;
assign w = x;
endmodule`
	s, err := CompileAndNew(src, "osc")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s.Set("a", 1)
	if err := s.Settle(); err == nil {
		t.Error("oscillating design settled without error")
	}
}

func TestCompileErrorSurfaces(t *testing.T) {
	if _, err := CompileAndNew("module m(input a, output w);\nassign w = a\nendmodule", "m"); err == nil {
		t.Error("syntax error not reported by CompileAndNew")
	}
	if _, err := CompileAndNew("module m(input a, output w);\nassign w = a;\nendmodule", "nosuch"); err == nil {
		t.Error("unknown top module not reported")
	}
}

func TestTernaryAndShifts(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input s, output [7:0] y, output [7:0] l, output [7:0] r);
assign y = s ? a : 8'hAA;
assign l = a << 2;
assign r = a >> 2;
endmodule`, "m")
	s.Set("a", 0x81)
	s.Set("s", 0)
	settle(t, s)
	if got := s.Get("y"); got != 0xAA {
		t.Errorf("y = %#x, want 0xAA", got)
	}
	s.Set("s", 1)
	settle(t, s)
	if got := s.Get("y"); got != 0x81 {
		t.Errorf("y = %#x, want 0x81", got)
	}
	if got := s.Get("l"); got != 0x04 {
		t.Errorf("l = %#x, want 0x04 (shift truncates at 8 bits)", got)
	}
	if got := s.Get("r"); got != 0x20 {
		t.Errorf("r = %#x, want 0x20", got)
	}
}

func TestReplicationAndPartSelect(t *testing.T) {
	s := mustSim(t, `module m(input [3:0] a, output [7:0] y, output [1:0] hi);
assign y = {2{a}};
assign hi = a[3:2];
endmodule`, "m")
	s.Set("a", 0b1011)
	settle(t, s)
	if got := s.Get("y"); got != 0b10111011 {
		t.Errorf("y = %#b, want 10111011", got)
	}
	if got := s.Get("hi"); got != 0b10 {
		t.Errorf("hi = %#b, want 10", got)
	}
}

func TestDivModByZero(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, input [7:0] b, output [7:0] q, output [7:0] r);
assign q = a / b;
assign r = a % b;
endmodule`, "m")
	s.Set("a", 42)
	s.Set("b", 0)
	settle(t, s)
	if s.Get("q") != 0 || s.Get("r") != 0 {
		t.Errorf("div/mod by zero = %d,%d, want 0,0", s.Get("q"), s.Get("r"))
	}
	s.Set("b", 5)
	settle(t, s)
	if s.Get("q") != 8 || s.Get("r") != 2 {
		t.Errorf("42/5 = %d rem %d", s.Get("q"), s.Get("r"))
	}
}

func TestWaveformRecording(t *testing.T) {
	src := `module c(input clk, input rst_n, output reg [3:0] q);
always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else q <= q + 4'd1;
end
endmodule`
	s := mustSim(t, src, "c")
	h := NewHarness(s, "clk")
	h.ApplyReset(1)
	for i := 0; i < 3; i++ {
		h.Cycle(nil)
	}
	if h.Wave.Cycles() != 4 {
		t.Fatalf("wave cycles = %d, want 4", h.Wave.Cycles())
	}
	if got := h.Wave.At("q", 3); got != 3 {
		t.Errorf("wave q@3 = %d, want 3", got)
	}
	vals := h.Wave.ValuesAt(2)
	if vals["q"] != 2 {
		t.Errorf("ValuesAt(2)[q] = %d, want 2", vals["q"])
	}
}

func TestFindClockAndReset(t *testing.T) {
	f := verilog.MustParse(`module m(input clk, input rst_n, input d, output reg q);
always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= d;
end
endmodule`)
	d, err := Elaborate(f, "m")
	if err != nil {
		t.Fatal(err)
	}
	if got := FindClock(d); got != "clk" {
		t.Errorf("FindClock = %q", got)
	}
	name, low := FindReset(d)
	if name != "rst_n" || !low {
		t.Errorf("FindReset = %q,%v", name, low)
	}
}

func TestSignalNamesAndPorts(t *testing.T) {
	s := mustSim(t, `module m(input [7:0] a, output [7:0] y);
wire [7:0] mid;
assign mid = a;
assign y = mid;
endmodule`, "m")
	d := s.Design()
	if len(d.Inputs()) != 1 || d.Inputs()[0].Width != 8 {
		t.Errorf("Inputs = %+v", d.Inputs())
	}
	if len(d.Outputs()) != 1 || d.Outputs()[0].Name != "y" {
		t.Errorf("Outputs = %+v", d.Outputs())
	}
	names := d.SignalNames()
	if len(names) != 3 {
		t.Errorf("SignalNames = %v", names)
	}
}
