// Package faultgen is UVLLM's paradigm error generator (paper Sec. III-E):
// it injects the human-style defect classes of Table I into the verified
// benchmark modules and validates that every injected error is actually
// triggerable — either the linter reports it or the UVM testbench observes
// a mismatch — so that no benchmark instance can "pass without repair".
package faultgen

// Class is one of the nine injected error classes (paper Fig. 7 uses nine
// distinct types per module).
type Class string

// The nine fault classes. Syn* are syntax errors (Fig. 5's five
// categories); Func* are functional errors (Fig. 6's four categories).
const (
	SynMissingSemi      Class = "SynMissingSemi"      // dropped ';' / 'end' / 'endmodule'
	SynUndeclared       Class = "SynUndeclared"       // deleted declaration
	SynBadOperator      Class = "SynBadOperator"      // malformed operator, e.g. '=<'
	SynKeywordTypo      Class = "SynKeywordTypo"      // 'alway', 'asign', ...
	SynMalformedLiteral Class = "SynMalformedLiteral" // 8'q3-style literal
	FuncDeclType        Class = "FuncDeclType"        // declaration type/bitwidth misuse
	FuncCondition       Class = "FuncCondition"       // wrong judgment value / sensitivity / timing
	FuncBitwidth        Class = "FuncBitwidth"        // expression part-select truncation
	FuncLogic           Class = "FuncLogic"           // operator/value/variable misuse
)

// Classes lists all nine classes in Fig. 7 order (syntax first).
func Classes() []Class {
	return []Class{
		SynMissingSemi, SynUndeclared, SynBadOperator, SynKeywordTypo,
		SynMalformedLiteral, FuncDeclType, FuncCondition, FuncBitwidth,
		FuncLogic,
	}
}

// SyntaxClasses lists the five syntax classes.
func SyntaxClasses() []Class { return Classes()[:5] }

// FunctionalClasses lists the four functional classes.
func FunctionalClasses() []Class { return Classes()[5:] }

// IsSyntax reports whether the class is a syntax error class.
func (c Class) IsSyntax() bool {
	switch c {
	case SynMissingSemi, SynUndeclared, SynBadOperator, SynKeywordTypo, SynMalformedLiteral:
		return true
	}
	return false
}

// Fig5Category maps a syntax class to its category axis in paper Fig. 5.
func (c Class) Fig5Category() string {
	switch c {
	case SynMissingSemi:
		return "Premature termination"
	case SynUndeclared:
		return "Scope issues"
	case SynBadOperator:
		return "Operator misuses"
	case SynKeywordTypo:
		return "Incorrect coding"
	case SynMalformedLiteral:
		return "Data handling"
	}
	return ""
}

// Fig6Category maps a functional class to its category axis in paper Fig. 6.
func (c Class) Fig6Category() string {
	switch c {
	case FuncDeclType:
		return "Declaration errors"
	case FuncCondition:
		return "Flawed conditions"
	case FuncBitwidth:
		return "Incorrect bitwidth"
	case FuncLogic:
		return "Logic errors"
	}
	return ""
}
