// Package uvm re-creates the Universal Verification Methodology testbench
// structure of paper Fig. 3 in Go: Sequences feed a Sequencer, a Driver
// applies transactions to the DUT through the cycle harness, Monitors
// sample both the DUT and the reference model, and a Scoreboard compares
// them, producing the pass rate that drives UVLLM's rollback mechanism and
// a UVM-format text log that the post-processing stage parses.
package uvm

import (
	"fmt"
	"math/rand"
	"strings"

	"uvllm/internal/assert"
	"uvllm/internal/cover"
	"uvllm/internal/refmodel"
	"uvllm/internal/sim"
)

// Transaction is one cycle of stimulus at the DUT boundary.
type Transaction struct {
	Cycle  int
	Inputs map[string]uint64
}

// Sequence produces transactions, simulating real-world operation patterns
// (paper Fig. 3's "Case (Sequence)").
type Sequence interface {
	// Next returns the next stimulus vector, or ok=false when exhausted.
	Next(rng *rand.Rand) (map[string]uint64, bool)
	// Len returns the total number of transactions the sequence produces.
	Len() int
}

// RandomSequence drives n constrained-random vectors across the given
// input ports, with the reset held inactive (reset is exercised separately
// by the environment's reset phase and periodic reset pulses).
type RandomSequence struct {
	Ports      []sim.PortInfo
	N          int
	ResetName  string
	ResetEvery int // assert reset for one cycle every k transactions; 0 = never
	emitted    int
}

// Next implements Sequence.
func (s *RandomSequence) Next(rng *rand.Rand) (map[string]uint64, bool) {
	if s.emitted >= s.N {
		return nil, false
	}
	s.emitted++
	in := map[string]uint64{}
	for _, p := range s.Ports {
		in[p.Name] = rng.Uint64() & maskW(p.Width)
	}
	if s.ResetName != "" {
		if s.ResetEvery > 0 && s.emitted%s.ResetEvery == 0 {
			in[s.ResetName] = 0
		} else {
			in[s.ResetName] = 1
		}
	}
	return in, true
}

// Len implements Sequence.
func (s *RandomSequence) Len() int { return s.N }

// DirectedSequence plays back a fixed vector list — the style of finite
// testbench the MEIC baseline uses (and the source of its overfitting).
type DirectedSequence struct {
	Vectors []map[string]uint64
	pos     int
}

// Next implements Sequence.
func (s *DirectedSequence) Next(_ *rand.Rand) (map[string]uint64, bool) {
	if s.pos >= len(s.Vectors) {
		return nil, false
	}
	v := s.Vectors[s.pos]
	s.pos++
	return v, true
}

// Len implements Sequence.
func (s *DirectedSequence) Len() int { return len(s.Vectors) }

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// Mismatch is one scoreboard discrepancy: the UVM_ERROR record that the
// localization engine consumes (mismatch timestamp MT, signal MS).
type Mismatch struct {
	Time     int // cycle number
	Signal   string
	Expected uint64
	Actual   uint64
}

// Scoreboard accumulates per-transaction comparisons.
type Scoreboard struct {
	Total      int
	Passed     int
	Mismatches []Mismatch

	// MaxMismatches caps the recorded mismatch list (the log would
	// otherwise explode for badly broken DUTs). Counting continues.
	MaxMismatches int
}

// Compare records one transaction's expected-vs-actual outputs and reports
// whether the transaction passed.
func (sb *Scoreboard) Compare(cycle int, expected, actual map[string]uint64) bool {
	sb.Total++
	pass := true
	for sig, ev := range expected {
		av := actual[sig]
		if av != ev {
			pass = false
			if sb.MaxMismatches == 0 || len(sb.Mismatches) < sb.MaxMismatches {
				sb.Mismatches = append(sb.Mismatches, Mismatch{
					Time: cycle, Signal: sig, Expected: ev, Actual: av,
				})
			}
		}
	}
	if pass {
		sb.Passed++
	}
	return pass
}

// PassRate is the fraction of passing transactions in [0,1]; an empty run
// scores 0.
func (sb *Scoreboard) PassRate() float64 {
	if sb.Total == 0 {
		return 0
	}
	return float64(sb.Passed) / float64(sb.Total)
}

// Agent bundles the sequencer/driver/monitor roles of a UVM agent. The
// in-agent drives DUT inputs; the out-agent's monitor is realized by the
// harness output sampling.
type Agent struct {
	Name string
	rng  *rand.Rand
}

// Env is the UVM environment: DUT harness, reference model, scoreboard and
// coverage collector. An optional assertion checker (the paper's
// extensibility hook, Sec. III-B) is sampled on every transaction.
type Env struct {
	DUT      *sim.Harness
	Ref      refmodel.Model
	Score    *Scoreboard
	Cov      *Coverage
	InAgent  *Agent
	OutAgent *Agent
	Asserts  *assert.Checker // nil when no assertions attached

	log     strings.Builder
	fatal   error
	seed    int64
	refName string
	memo    *TraceMemo
}

// Config selects how an Env is built.
type Config struct {
	Source    string // DUT Verilog source
	Top       string // top module name
	Clock     string // clock input, "" for combinational
	RefName   string // reference model name (dataset module name)
	Seed      int64
	ResetLen  int // reset cycles before the sequence (default 2)
	MaxErrors int // mismatch record cap (default 64)
	// Backend selects the simulation engine (zero value: compiled).
	Backend sim.Backend
	// Cover enables structural coverage collection on the DUT instance
	// (statements, branches, toggles, FSM occupancy — see
	// sim.CoverOptions). The zero value keeps coverage off, which costs
	// nothing on the simulation hot path.
	Cover sim.CoverOptions
	// Assertions are checked against the DUT's port values each cycle.
	Assertions []assert.Assertion

	// Program, when set, is the pre-compiled DUT: Source/Top/Backend are
	// not consulted for compilation and the environment only allocates an
	// Instance. One testbench run per DUT compiles once this way.
	Program *sim.Program
	// Cache, when set (and Program is not), routes compilation through the
	// content-addressed compile cache.
	Cache *sim.Cache
	// Memo, when set, serves the scoreboard's expected outputs from the
	// golden-trace memo instead of stepping a fresh reference model.
	Memo *TraceMemo
}

// NewEnv elaborates the DUT and builds the environment. Elaboration
// failures (syntax errors, unsupported constructs, oscillation at time 0)
// are returned as errors; the caller treats them as simulation failures.
func NewEnv(cfg Config) (*Env, error) {
	var s *sim.Simulator
	var err error
	switch {
	case cfg.Program != nil:
		s, err = cfg.Program.NewInstance()
	case cfg.Cache != nil:
		s, err = cfg.Cache.Instance(cfg.Source, cfg.Top, cfg.Backend)
	default:
		s, err = sim.CompileAndNewBackend(cfg.Source, cfg.Top, cfg.Backend)
	}
	if err != nil {
		return nil, err
	}
	ref, err := refmodel.New(cfg.RefName)
	if err != nil {
		return nil, err
	}
	maxErr := cfg.MaxErrors
	if maxErr == 0 {
		maxErr = 64
	}
	env := &Env{
		DUT:      sim.NewHarness(s, cfg.Clock),
		Ref:      ref,
		Score:    &Scoreboard{MaxMismatches: maxErr},
		InAgent:  &Agent{Name: "in_agt"},
		OutAgent: &Agent{Name: "out_agt"},
		seed:     cfg.Seed,
		refName:  cfg.RefName,
		memo:     cfg.Memo,
	}
	env.Cov = NewCoverage(s.Design())
	if cfg.Cover.Any() {
		if err := env.DUT.EnableCover(cfg.Cover); err != nil {
			return nil, err
		}
	}
	if len(cfg.Assertions) > 0 {
		env.Asserts = assert.NewChecker(cfg.Assertions)
	}
	env.logf("UVM_INFO @ 0: uvm_test_top.env [RNTST] running test on %s (seed %d)", cfg.Top, cfg.Seed)
	return env, nil
}

// Run drives the sequence to completion (or until the DUT dies), filling
// the scoreboard, coverage and log. It returns the final pass rate.
//
// The stimulus is materialized up front (identical vectors to the lazy
// walk: the sequence sees the same seeded RNG stream). When the
// environment carries a golden-trace memo, the expected outputs for the
// whole stream come from the memo — computed once per distinct (model,
// stimulus) anywhere in the process — instead of stepping the reference
// model again.
func (e *Env) Run(seq Sequence) float64 {
	vectors := Materialize(seq, e.seed)
	resetName, _ := sim.FindReset(e.DUT.Sim.Design())

	// Reset phase.
	if resetName != "" {
		if err := e.DUT.ApplyReset(2); err != nil {
			e.fatalf("reset phase: %v", err)
			return 0
		}
		e.Ref.Reset()
	}

	// The shared (uncopied) trace is deliberate: Run only reads the rows
	// it compares against, so the canonical memoized maps stay untouched.
	var expected []map[string]uint64
	if e.memo != nil {
		if exp, err := e.memo.expectedShared(e.refName, resetName != "", vectors); err == nil {
			expected = exp
		}
	}

	for i, in := range vectors {
		cycle := e.DUT.CycleCount()
		got, err := e.DUT.Cycle(in)
		if err != nil {
			e.fatalf("cycle %d: %v", cycle, err)
			return e.Score.PassRate()
		}
		var want map[string]uint64
		if expected != nil {
			want = expected[i]
		} else {
			want = e.Ref.Step(in)
		}
		e.Cov.Sample(in, got)
		if e.Asserts != nil {
			all := map[string]uint64{}
			for k, v := range in {
				all[k] = v
			}
			for k, v := range got {
				all[k] = v
			}
			before := len(e.Asserts.Violations)
			e.Asserts.Sample(all)
			for _, v := range e.Asserts.Violations[before:] {
				e.logf("UVM_ERROR @ %d: uvm_test_top.env.assert [ASRT] violation %s: %s",
					cycle, v.Assertion, v.Detail)
			}
		}
		if !e.Score.Compare(cycle, want, got) {
			for _, mm := range e.mismatchesAt(cycle) {
				e.logf("UVM_ERROR @ %d: uvm_test_top.env.scoreboard [SCBD] mismatch signal=%s expected=0x%x actual=0x%x",
					mm.Time, mm.Signal, mm.Expected, mm.Actual)
			}
		}
	}
	e.logf("UVM_INFO @ %d: uvm_test_top.env.scoreboard [SCBD] pass_rate=%.2f%% (%d/%d) coverage=%.1f%%",
		e.DUT.CycleCount(), e.Score.PassRate()*100, e.Score.Passed, e.Score.Total, e.Cov.Percent())
	if m := e.DUT.Coverage(); m != nil {
		e.logf("UVM_INFO @ %d: uvm_test_top.env.cover [COV] structural=%.1f%% (%d/%d points)",
			e.DUT.CycleCount(), m.Percent(), m.Hit(), m.Len())
	}
	return e.Score.PassRate()
}

func (e *Env) mismatchesAt(cycle int) []Mismatch {
	var out []Mismatch
	for i := len(e.Score.Mismatches) - 1; i >= 0; i-- {
		if e.Score.Mismatches[i].Time == cycle {
			out = append([]Mismatch{e.Score.Mismatches[i]}, out...)
		} else {
			break
		}
	}
	return out
}

func (e *Env) logf(format string, args ...interface{}) {
	fmt.Fprintf(&e.log, format+"\n", args...)
}

func (e *Env) fatalf(format string, args ...interface{}) {
	err := fmt.Errorf(format, args...)
	e.fatal = err
	e.logf("UVM_FATAL @ %d: uvm_test_top.env [SIM] %v", e.DUT.CycleCount(), err)
}

// Log returns the UVM-format text log of the run.
func (e *Env) Log() string { return e.log.String() }

// Fatal returns the simulation error that aborted the run, if any.
func (e *Env) Fatal() error { return e.fatal }

// Waveform exposes the recorded DUT waveform for the localization engine.
func (e *Env) Waveform() *sim.Waveform { return e.DUT.Wave }

// StructCoverage returns the structural coverage map accumulated by the
// run, or nil when Config.Cover left structural coverage off.
func (e *Env) StructCoverage() *cover.Map { return e.DUT.Coverage() }
