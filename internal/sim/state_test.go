package sim

// Lifecycle tests for the Program/Instance split: snapshot round-trips
// mid-simulation (both backends, including memories and pending NBA
// writes), instance independence, and the content-addressed compile
// cache. These live in-package so they can stage pending scheduler state
// (NBA buffer, event queues) that no external call sequence can observe
// between Settle boundaries.

import (
	"fmt"
	"sync"
	"testing"
)

const memDUT = `module memdut(input clk, input rst_n, input we, input [3:0] addr, input [7:0] din, output reg [7:0] dout, output [7:0] peek);
  reg [7:0] mem [15:0];
  reg [7:0] acc;
  assign peek = acc ^ dout;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      dout <= 0;
      acc <= 0;
    end else begin
      if (we) mem[addr] <= din;
      dout <= mem[addr];
      acc <= acc + din;
    end
  end
endmodule`

func backends() []Backend { return []Backend{BackendCompiled, BackendEventDriven} }

// driveCycle applies inputs, settles, and pulses the clock. It returns
// errors rather than failing the test so goroutines can use it too.
func driveCycle(s *Instance, in map[string]uint64) error {
	for k, v := range in {
		if err := s.Set(k, v); err != nil {
			return err
		}
	}
	if err := s.Settle(); err != nil {
		return err
	}
	for _, clk := range []uint64{1, 0} {
		if err := s.Set("clk", clk); err != nil {
			return err
		}
		if err := s.Settle(); err != nil {
			return err
		}
	}
	return nil
}

// mustCycle is driveCycle for test-goroutine callers.
func mustCycle(t *testing.T, s *Instance, in map[string]uint64) {
	t.Helper()
	if err := driveCycle(s, in); err != nil {
		t.Fatal(err)
	}
}

// stateFingerprint renders every scalar signal and every memory word.
func stateFingerprint(s *Instance) string {
	out := ""
	for _, n := range s.Design().SignalNames() {
		out += fmt.Sprintf("%s=%x;", n, s.Get(n))
	}
	for i := 0; i < 16; i++ {
		out += fmt.Sprintf("m%d=%x;", i, s.GetMem("mem", i))
	}
	return out
}

// TestSnapshotRestoreRoundTrip drives a memory-bearing sequential design
// half way, snapshots, finishes the run, restores and re-runs the second
// half: the continuation must reproduce the identical state trajectory on
// both backends.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.String(), func(t *testing.T) {
			p, err := CompileSource(memDUT, "memdut", b)
			if err != nil {
				t.Fatal(err)
			}
			s, err := p.NewInstance()
			if err != nil {
				t.Fatal(err)
			}
			stim := func(c int) map[string]uint64 {
				return map[string]uint64{
					"rst_n": 1, "we": uint64(c % 2), "addr": uint64(c % 16), "din": uint64(0x30 + c),
				}
			}
			mustCycle(t, s, map[string]uint64{"rst_n": 0})
			for c := 0; c < 8; c++ {
				mustCycle(t, s, stim(c))
			}
			sn := s.Snapshot()
			mid := stateFingerprint(s)

			var firstRun []string
			for c := 8; c < 16; c++ {
				mustCycle(t, s, stim(c))
				firstRun = append(firstRun, stateFingerprint(s))
			}

			if err := s.Restore(sn); err != nil {
				t.Fatal(err)
			}
			if got := stateFingerprint(s); got != mid {
				t.Fatalf("restore did not rewind state:\n got %s\nwant %s", got, mid)
			}
			for c := 8; c < 16; c++ {
				mustCycle(t, s, stim(c))
				if got := stateFingerprint(s); got != firstRun[c-8] {
					t.Fatalf("cycle %d diverged after restore:\n got %s\nwant %s", c, got, firstRun[c-8])
				}
			}

			// The snapshot is a deep copy: restoring it a second time after
			// the replay still lands on the captured state.
			if err := s.Restore(sn); err != nil {
				t.Fatal(err)
			}
			if got := stateFingerprint(s); got != mid {
				t.Fatal("second restore from the same snapshot diverged")
			}
		})
	}
}

// TestSnapshotCapturesPendingNBA stages a non-blocking write in the NBA
// buffer (scalar and memory word), snapshots, lets it commit, restores
// and commits again: the pending write must survive the round trip.
func TestSnapshotCapturesPendingNBA(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.String(), func(t *testing.T) {
			p, err := CompileSource(memDUT, "memdut", b)
			if err != nil {
				t.Fatal(err)
			}
			s, err := p.NewInstance()
			if err != nil {
				t.Fatal(err)
			}
			doutIdx := s.d.byName["dout"]
			memIdx := s.d.byName["mem"]
			s.nba = append(s.nba,
				nbaWrite{sig: doutIdx, mask: 0xff, val: 0x5a},
				nbaWrite{sig: memIdx, isMem: true, memIdx: 7, mask: 0xff, val: 0xa5},
			)
			sn := s.Snapshot()
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			if got := s.Get("dout"); got != 0x5a {
				t.Fatalf("pending NBA not committed: dout=%x", got)
			}
			if got := s.GetMem("mem", 7); got != 0xa5 {
				t.Fatalf("pending memory NBA not committed: mem[7]=%x", got)
			}

			if err := s.Restore(sn); err != nil {
				t.Fatal(err)
			}
			if got := s.Get("dout"); got == 0x5a {
				t.Fatal("restore did not rewind the committed NBA value")
			}
			if len(s.nba) != 2 {
				t.Fatalf("restored NBA buffer has %d writes, want 2", len(s.nba))
			}
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			if s.Get("dout") != 0x5a || s.GetMem("mem", 7) != 0xa5 {
				t.Fatal("restored pending NBA did not recommit")
			}
		})
	}
}

// TestSnapshotCapturesPendingEvents snapshots with an un-settled input
// edge pending in the scheduler (comb queue / dirty flags / seq queue)
// and checks the settle outcome is reproduced after restore.
func TestSnapshotCapturesPendingEvents(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.String(), func(t *testing.T) {
			p, err := CompileSource(memDUT, "memdut", b)
			if err != nil {
				t.Fatal(err)
			}
			s, err := p.NewInstance()
			if err != nil {
				t.Fatal(err)
			}
			mustCycle(t, s, map[string]uint64{"rst_n": 0})
			mustCycle(t, s, map[string]uint64{"rst_n": 1, "we": 1, "addr": 3, "din": 0x11})
			// Posedge staged but not settled: the edge-triggered process is
			// queued, nothing has run.
			if err := s.Set("din", 0x7f); err != nil {
				t.Fatal(err)
			}
			if err := s.Set("clk", 1); err != nil {
				t.Fatal(err)
			}
			sn := s.Snapshot()
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			want := stateFingerprint(s)

			if err := s.Restore(sn); err != nil {
				t.Fatal(err)
			}
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			if got := stateFingerprint(s); got != want {
				t.Fatalf("pending-event settle diverged:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestRestoreRejectsForeignSnapshot pins the shape check: a snapshot from
// one program cannot be restored into an instance of another.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	pa, err := CompileSource(memDUT, "memdut", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := CompileSource("module tiny(input a, output w);\nassign w = ~a;\nendmodule", "tiny", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pa.NewInstance()
	bI, _ := pb.NewInstance()
	if err := bI.Restore(a.Snapshot()); err == nil {
		t.Fatal("restore accepted a snapshot from a different program")
	}
	if err := a.Restore(nil); err == nil {
		t.Fatal("restore accepted a nil snapshot")
	}
}

// TestInstancesAreIndependent runs many instances of one shared Program
// concurrently with per-goroutine stimulus and checks every instance
// reaches the exact state a fresh serial run reaches. Under -race this is
// the concurrency-safety gate for the shared Program (design tables,
// compiled closures, levelization order).
func TestInstancesAreIndependent(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.String(), func(t *testing.T) {
			p, err := CompileSource(memDUT, "memdut", b)
			if err != nil {
				t.Fatal(err)
			}
			run := func(salt int) string {
				s, err := p.NewInstance()
				if err != nil {
					t.Error(err)
					return ""
				}
				if err := driveCycle(s, map[string]uint64{"rst_n": 0}); err != nil {
					t.Error(err)
					return ""
				}
				for c := 0; c < 24; c++ {
					err := driveCycle(s, map[string]uint64{
						"rst_n": 1, "we": uint64((c + salt) % 2),
						"addr": uint64((c * salt) % 16), "din": uint64(salt*31+c) & 0xff,
					})
					if err != nil {
						t.Error(err)
						return ""
					}
				}
				return stateFingerprint(s)
			}
			const workers = 16
			want := make([]string, workers)
			for i := range want {
				want[i] = run(i + 1) // serial reference
			}
			var wg sync.WaitGroup
			got := make([]string, workers)
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = run(i + 1)
				}(i)
			}
			wg.Wait()
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("concurrent instance %d diverged from serial reference", i)
				}
			}
		})
	}
}

// TestCacheSingleCompile asserts the cache's single-flight behavior and
// counters: many concurrent requests for one source cost one miss, and
// every caller shares the identical Program.
func TestCacheSingleCompile(t *testing.T) {
	c := NewCache()
	const workers = 8
	progs := make([]*Program, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Compile(memDUT, "memdut", BackendCompiled)
			if err != nil {
				t.Error(err)
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent callers got distinct Programs for one key")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != workers-1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits / 1 entry", st, workers-1)
	}
	hits, resident := c.EntryStats(memDUT, "memdut", BackendCompiled)
	if !resident || hits != workers-1 {
		t.Fatalf("EntryStats = (%d, %v)", hits, resident)
	}
}

// TestCacheKeysAndNegativeEntries pins the key dimensions (source, top,
// backend) and error caching.
func TestCacheKeysAndNegativeEntries(t *testing.T) {
	c := NewCache()
	pc, err := c.Compile(memDUT, "memdut", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := c.Compile(memDUT, "memdut", BackendEventDriven)
	if err != nil {
		t.Fatal(err)
	}
	if pc == pe {
		t.Fatal("different backends must not share a cache entry")
	}
	if pc.Backend() != BackendCompiled || pe.Backend() != BackendEventDriven {
		t.Fatal("cached program has the wrong backend")
	}

	if _, err := c.Compile("module broken(", "broken", BackendCompiled); err == nil {
		t.Fatal("broken source compiled")
	}
	if _, err := c.Compile("module broken(", "broken", BackendCompiled); err == nil {
		t.Fatal("cached negative entry lost the error")
	}
	st := c.Stats()
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (two backends + one broken source)", st.Misses)
	}

	// Instance() is the CompileAndNewBackend drop-in.
	s, err := c.Instance(memDUT, "memdut", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if s.Program() != pc {
		t.Fatal("Instance did not reuse the cached Program")
	}
}

// TestCacheEviction checks the bounded cache drops old entries instead of
// growing without limit (the fuzzing workload).
func TestCacheEviction(t *testing.T) {
	c := NewCacheLimit(4)
	for i := 0; i < 12; i++ {
		src := fmt.Sprintf("module m(input a, output w);\nassign w = a ^ %d'd%d;\nendmodule", 1+i%3, i%2)
		if _, err := c.Compile(src, "m", BackendCompiled); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > 4 {
		t.Fatalf("cache grew to %d entries past its limit of 4", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
}
