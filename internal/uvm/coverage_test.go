package uvm

import (
	"strings"
	"testing"

	"uvllm/internal/assert"
	"uvllm/internal/dataset"
	"uvllm/internal/sim"
)

func designFor(t *testing.T, name string) *sim.Design {
	t.Helper()
	m := dataset.ByName(name)
	s, err := sim.CompileAndNew(m.Source, m.Top)
	if err != nil {
		t.Fatal(err)
	}
	return s.Design()
}

func TestCoverageBins(t *testing.T) {
	d := designFor(t, "adder_8bit")
	c := NewCoverage(d)
	if c.Percent() != 0 {
		t.Error("fresh collector must be 0%")
	}
	// Hit zero bin only.
	c.Sample(map[string]uint64{"a": 0, "b": 0, "cin": 0}, map[string]uint64{"sum": 0, "cout": 0})
	p1 := c.Percent()
	if p1 <= 0 {
		t.Fatal("no coverage after a sample")
	}
	// Max values raise coverage further.
	c.Sample(map[string]uint64{"a": 255, "b": 255, "cin": 1}, map[string]uint64{"sum": 0xFF, "cout": 1})
	if c.Percent() <= p1 {
		t.Error("coverage did not grow with new bins")
	}
}

func TestCoverageToggleBothPolarities(t *testing.T) {
	d := designFor(t, "gray_code")
	c := NewCoverage(d)
	// Same output twice: only one polarity of each bit seen.
	c.Sample(map[string]uint64{"bin": 0}, map[string]uint64{"gray": 0})
	c.Sample(map[string]uint64{"bin": 0}, map[string]uint64{"gray": 0})
	half := c.Percent()
	c.Sample(map[string]uint64{"bin": 15}, map[string]uint64{"gray": 0xF})
	if c.Percent() <= half {
		t.Error("toggling the other polarity must raise coverage")
	}
}

func TestCoverageReportFormat(t *testing.T) {
	d := designFor(t, "mux4")
	c := NewCoverage(d)
	c.Sample(map[string]uint64{"sel": 0, "d0": 0, "d1": 0, "d2": 0, "d3": 0}, map[string]uint64{"y": 0})
	rep := c.Report()
	if !strings.Contains(rep, "coverage:") || !strings.Contains(rep, "input sel") {
		t.Errorf("report malformed:\n%s", rep)
	}
}

func TestEnvWithAssertions(t *testing.T) {
	m := dataset.ByName("ring_counter")
	env, err := NewEnv(Config{
		Source: m.Source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 3,
		Assertions: []assert.Assertion{assert.OneHot{Signal: "q"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := env.Run(&RandomSequence{N: 60, ResetName: "rst_n"})
	if rate != 1.0 {
		t.Fatalf("golden ring counter failed: %.2f", rate)
	}
	if env.Asserts == nil || !env.Asserts.Passed() {
		t.Errorf("assertion failed on golden DUT: %v", env.Asserts.Failed())
	}
}

func TestEnvAssertionViolationInLog(t *testing.T) {
	m := dataset.ByName("ring_counter")
	buggy := strings.Replace(m.Source, "4'b0001", "4'b0101", 1)
	env, err := NewEnv(Config{
		Source: buggy, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 3,
		Assertions: []assert.Assertion{assert.OneHot{Signal: "q"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Run(&RandomSequence{N: 30, ResetName: "rst_n"})
	if env.Asserts.Passed() {
		t.Fatal("one-hot violation missed")
	}
	if !strings.Contains(env.Log(), "[ASRT] violation onehot_q") {
		t.Errorf("assertion violation not logged:\n%s", env.Log())
	}
}
