package exp

import (
	"strings"
	"testing"

	"uvllm/internal/baseline"
	"uvllm/internal/dataset"
	"uvllm/internal/sim"
)

// TestEquivStudyAgreesWithSimulation is the acceptance gate of the
// formal engine over the 27 golden modules: every supported module must
// be provably self-equivalent to the study depth, every SAT verdict on a
// benchmark mutant must replay as a concrete simulation divergence at
// the predicted cycle, and every UNSAT verdict must survive random
// simulation probes — zero formal-vs-simulation mismatches. (EquivStudy
// returns an error on the first mismatch, so the gate is the nil error.)
func TestEquivStudyAgreesWithSimulation(t *testing.T) {
	sess := SharedSession(sim.BackendCompiled)
	st, err := sess.EquivStudy(0, 0)
	if err != nil {
		t.Fatalf("formal-vs-simulation mismatch: %v", err)
	}
	if len(st.Rows) != len(dataset.All()) {
		t.Fatalf("study covered %d modules, want %d", len(st.Rows), len(dataset.All()))
	}
	supported, detected, keq, unbounded := 0, 0, 0, 0
	for _, r := range st.Rows {
		if !r.Supported {
			t.Logf("unsupported: %-18s %s", r.Module, r.Reason)
			continue
		}
		supported++
		if !r.SelfEquiv {
			t.Errorf("%s: golden not self-equivalent", r.Module)
		}
		detected += r.Detected
		keq += r.KEquiv
		unbounded += r.Unbounded
	}
	// The subset must be substantial for the oracle to mean anything:
	// most of the benchmark is small clean RTL.
	if supported < 18 {
		t.Fatalf("only %d/27 modules inside the blastable subset", supported)
	}
	if detected < 10 {
		t.Fatalf("only %d benchmark mutants refuted: the SAT/replay path is under-exercised", detected)
	}
	// The induction outcome column must be live: at least one benchmark
	// mutant pair proved equivalent for all time by a closing step (the
	// study probes those verdicts with deeper random runs).
	if unbounded < 1 {
		t.Fatal("no mutant pair proved unbounded by k-induction: the step path is dead in the study")
	}
	t.Logf("supported %d/%d modules; mutants: %d refuted (replayed), %d proved %d-cycle equivalent (%d unbounded)",
		supported, len(st.Rows), detected, keq, st.Depth, unbounded)

	// The table and stats renderers must cover every row.
	table := FormatEquiv(st)
	for _, m := range dataset.All() {
		if !strings.Contains(table, m.Name) {
			t.Fatalf("FormatEquiv dropped module %s:\n%s", m.Name, table)
		}
	}
	if stats := FormatEquivStats(st); !strings.Contains(stats, "p50") {
		t.Fatalf("FormatEquivStats missing percentiles:\n%s", stats)
	}
}

// TestExpertPassFormal pins the bounded-proof validation mode: the
// golden source proves, a subtly buggy variant that plain ExpertPass
// logic would need luck to catch is rejected by the proof, and the
// verdict degrades gracefully (to plain ExpertPass) off the subset.
func TestExpertPassFormal(t *testing.T) {
	m := dataset.ByName("counter_12bit")
	if m == nil {
		t.Skip("counter_12bit not in dataset")
	}
	svc := baseline.SimServices{}
	pass, proved, err := ExpertPassFormal(m.Source, m, svc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pass || !proved {
		t.Fatalf("golden source: pass=%v proved=%v, want proved pass", pass, proved)
	}
	if pass, _, _ := ExpertPassFormal("", m, svc, 0); pass {
		t.Fatal("empty source must fail")
	}
	if pass, _, _ := ExpertPassFormal("module counter_12bit(input clk; endmodule", m, svc, 0); pass {
		t.Fatal("syntax-broken source must fail")
	}
}
