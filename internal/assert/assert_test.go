package assert

import (
	"strings"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/sim"
)

func TestOneHot(t *testing.T) {
	a := OneHot{Signal: "q"}
	if !a.Check(nil, map[string]uint64{"q": 0b0100}) {
		t.Error("single bit rejected")
	}
	if a.Check(nil, map[string]uint64{"q": 0b0110}) {
		t.Error("two bits accepted")
	}
	if a.Check(nil, map[string]uint64{"q": 0}) {
		t.Error("zero accepted without AllowZero")
	}
	az := OneHot{Signal: "q", AllowZero: true}
	if !az.Check(nil, map[string]uint64{"q": 0}) {
		t.Error("zero rejected with AllowZero")
	}
	if !strings.Contains(a.Describe(), "$onehot") {
		t.Error("describe not SVA-flavored")
	}
}

func TestBoundMutexResetValue(t *testing.T) {
	b := Bound{Signal: "s", Limit: 10}
	if !b.Check(nil, map[string]uint64{"s": 10}) || b.Check(nil, map[string]uint64{"s": 11}) {
		t.Error("bound check wrong")
	}
	m := Mutex{A: "x", B: "y"}
	if !m.Check(nil, map[string]uint64{"x": 1, "y": 0}) {
		t.Error("mutex rejects exclusive")
	}
	if m.Check(nil, map[string]uint64{"x": 1, "y": 1}) {
		t.Error("mutex accepts both high")
	}
	r := ResetValue{Reset: "rst_n", Signal: "q", Value: 0}
	if !r.Check(nil, map[string]uint64{"rst_n": 1, "q": 99}) {
		t.Error("reset assertion must be vacuous when reset inactive")
	}
	if r.Check(nil, map[string]uint64{"rst_n": 0, "q": 99}) {
		t.Error("reset value violation accepted")
	}
}

func TestCheckerAccumulates(t *testing.T) {
	c := NewChecker([]Assertion{Bound{Signal: "s", Limit: 5}})
	c.Sample(map[string]uint64{"s": 3})
	c.Sample(map[string]uint64{"s": 9})
	c.Sample(map[string]uint64{"s": 9})
	if c.Passed() {
		t.Fatal("violations missed")
	}
	if len(c.Violations) != 2 || c.Violations[0].Cycle != 1 {
		t.Errorf("violations = %+v", c.Violations)
	}
	if got := c.Failed(); len(got) != 1 || got[0] != "bound_s" {
		t.Errorf("Failed = %v", got)
	}
}

func TestCheckerViolationCap(t *testing.T) {
	c := NewChecker([]Assertion{Bound{Signal: "s", Limit: 0}})
	c.Max = 3
	for i := 0; i < 10; i++ {
		c.Sample(map[string]uint64{"s": 1})
	}
	if len(c.Violations) != 3 {
		t.Errorf("cap not respected: %d", len(c.Violations))
	}
}

func portsOf(t *testing.T, m *dataset.Module) []PortShape {
	t.Helper()
	s, err := sim.CompileAndNew(m.Source, m.Top)
	if err != nil {
		t.Fatal(err)
	}
	var ports []PortShape
	for _, p := range s.Design().Inputs() {
		if p.Name == m.Clock {
			continue
		}
		ports = append(ports, PortShape{Name: p.Name, Width: p.Width, Input: true})
	}
	for _, p := range s.Design().Outputs() {
		ports = append(ports, PortShape{Name: p.Name, Width: p.Width})
	}
	return ports
}

func TestMineRingCounterFindsOneHot(t *testing.T) {
	m := dataset.ByName("ring_counter")
	mined, err := Miner{}.Mine(m.Name, portsOf(t, m), m.HasReset, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range mined {
		if a.Name() == "onehot_q" {
			found = true
		}
	}
	if !found {
		t.Errorf("one-hot invariant of the ring counter not mined: %s", Describe(mined))
	}
}

func TestMineTrafficLightFindsMutex(t *testing.T) {
	m := dataset.ByName("traffic_light")
	mined, err := Miner{}.Mine(m.Name, portsOf(t, m), m.HasReset, 1)
	if err != nil {
		t.Fatal(err)
	}
	mutexes := 0
	for _, a := range mined {
		if strings.HasPrefix(a.Name(), "mutex_") {
			mutexes++
		}
	}
	// green/yellow/red pairwise exclusive: 3 mutex invariants.
	if mutexes != 3 {
		t.Errorf("mined %d mutex invariants, want 3:\n%s", mutexes, Describe(mined))
	}
}

func TestMinedAssertionsHoldOnGoldenDUT(t *testing.T) {
	// Every mined assertion must hold when checked against the *DUT*
	// (not the model it was mined from) under fresh stimulus.
	for _, name := range []string{"ring_counter", "traffic_light", "counter_12bit", "alu"} {
		m := dataset.ByName(name)
		mined, err := Miner{}.Mine(m.Name, portsOf(t, m), m.HasReset, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(mined) == 0 {
			continue
		}
		chk := NewChecker(mined)
		s, err := sim.CompileAndNew(m.Source, m.Top)
		if err != nil {
			t.Fatal(err)
		}
		h := sim.NewHarness(s, m.Clock)
		h.ApplyReset(2)
		rng := newRng(99)
		for cyc := 0; cyc < 400; cyc++ {
			in := map[string]uint64{}
			for _, p := range s.Design().Inputs() {
				if p.Name == m.Clock {
					continue
				}
				in[p.Name] = rng() & mask(p.Width)
			}
			if m.HasReset {
				in["rst_n"] = 1
				if cyc%113 == 57 {
					in["rst_n"] = 0
				}
			}
			got, err := h.Cycle(in)
			if err != nil {
				t.Fatal(err)
			}
			all := map[string]uint64{}
			for k, v := range in {
				all[k] = v
			}
			for k, v := range got {
				all[k] = v
			}
			chk.Sample(all)
		}
		if !chk.Passed() {
			t.Errorf("%s: mined assertions fail on the golden DUT: %v", name, chk.Failed())
		}
	}
}

func TestMinedAssertionsCatchInjectedBug(t *testing.T) {
	// A broken ring counter (loads 0011 on reset) must violate the mined
	// one-hot property even though... the scoreboard would catch it too;
	// assertions catch it *with a named property*.
	m := dataset.ByName("ring_counter")
	mined, err := Miner{}.Mine(m.Name, portsOf(t, m), m.HasReset, 1)
	if err != nil {
		t.Fatal(err)
	}
	buggy := strings.Replace(m.Source, "4'b0001", "4'b0011", 1)
	s, err := sim.CompileAndNew(buggy, m.Top)
	if err != nil {
		t.Fatal(err)
	}
	chk := NewChecker(mined)
	h := sim.NewHarness(s, m.Clock)
	h.ApplyReset(2)
	for cyc := 0; cyc < 20; cyc++ {
		got, err := h.Cycle(map[string]uint64{"rst_n": 1})
		if err != nil {
			t.Fatal(err)
		}
		all := map[string]uint64{"rst_n": 1}
		for k, v := range got {
			all[k] = v
		}
		chk.Sample(all)
	}
	if chk.Passed() {
		t.Fatal("one-hot violation not caught on buggy ring counter")
	}
	foundOneHot := false
	for _, n := range chk.Failed() {
		if strings.HasPrefix(n, "onehot_") {
			foundOneHot = true
		}
	}
	if !foundOneHot {
		t.Errorf("failures %v do not include the one-hot property", chk.Failed())
	}
}

func newRng(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
}

func TestImplicationAndInvariant(t *testing.T) {
	imp := Implication{
		Label:      "full_not_empty",
		Antecedent: func(v map[string]uint64) bool { return v["full"] != 0 },
		Consequent: func(v map[string]uint64) bool { return v["empty"] == 0 },
		Text:       "assert property (full |-> !empty);",
	}
	if !imp.Check(nil, map[string]uint64{"full": 0, "empty": 1}) {
		t.Error("vacuous case rejected")
	}
	if imp.Check(nil, map[string]uint64{"full": 1, "empty": 1}) {
		t.Error("violation accepted")
	}
	inv := Invariant{
		Label: "parity", Text: "assert property (^data == p);",
		Pred: func(v map[string]uint64) bool { return v["p"] < 2 },
	}
	if !inv.Check(nil, map[string]uint64{"p": 1}) || inv.Check(nil, map[string]uint64{"p": 2}) {
		t.Error("invariant predicate wrong")
	}
}
