package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/metrics"
)

// loadSpecs builds n distinct job specs cycling over every benchmark
// module that can express a FuncLogic fault, varying the variant so the
// fleet is heterogeneous (different faults, different repair depths).
func loadSpecs(n int) []JobSpec {
	var eligible []*dataset.Module
	for _, m := range dataset.All() {
		if len(faultgen.Generate(m, faultgen.Class("FuncLogic"))) > 0 {
			eligible = append(eligible, m)
		}
	}
	specs := make([]JobSpec, n)
	for i := range specs {
		m := eligible[i%len(eligible)]
		variant := (i / len(eligible)) % len(faultgen.Generate(m, faultgen.Class("FuncLogic")))
		specs[i] = JobSpec{
			Module: m.Name, Inject: "FuncLogic", Variant: variant,
			Tenant: fmt.Sprintf("tenant-%d", i%4),
		}
	}
	return specs
}

// TestLoadConcurrentClients is the load gate of the service layer: 32
// concurrent HTTP clients submit heterogeneous jobs through httptest and
// every verdict must be byte-identical to a sequential Execute of the
// same spec against fresh simulation state — shared caches and the
// worker pool may change speed, never results. The run also records
// submit-to-terminal latency percentiles through metrics.Percentile and
// runs under -race in CI, so any cross-job interference (shared mutable
// state, event cross-talk) fails the build.
func TestLoadConcurrentClients(t *testing.T) {
	const clients = 32
	specs := loadSpecs(clients)

	// Sequential ground truth, each job against its own fresh services:
	// no cache sharing, no concurrency, nothing to interfere.
	want := make([][]byte, clients)
	for i, spec := range specs {
		res := Execute(spec, testServices(), nil)
		if res.Error != "" {
			t.Fatalf("sequential baseline %d (%s) errored: %s", i, spec.Module, res.Error)
		}
		want[i], _ = json.Marshal(res)
	}

	_, ts := testServer(t, RunnerConfig{Workers: 4, QueueLimit: clients}, nil)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []float64
		failures  []string
	)
	fail := func(format string, args ...interface{}) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := specs[i]
			body, _ := json.Marshal(spec)
			start := time.Now()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				fail("client %d: submit: %v", i, err)
				return
			}
			var sub submitResponse
			err = json.NewDecoder(resp.Body).Decode(&sub)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusAccepted {
				fail("client %d: HTTP %d (%v)", i, resp.StatusCode, err)
				return
			}
			var view JobView
			for deadline := time.Now().Add(60 * time.Second); ; {
				r2, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
				if err != nil {
					fail("client %d: poll: %v", i, err)
					return
				}
				err = json.NewDecoder(r2.Body).Decode(&view)
				r2.Body.Close()
				if err != nil {
					fail("client %d: decode: %v", i, err)
					return
				}
				if view.Status.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					fail("client %d: job %s never finished", i, sub.ID)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			mu.Lock()
			latencies = append(latencies, time.Since(start).Seconds()*1000)
			mu.Unlock()

			got, _ := json.Marshal(view.Result)
			if !bytes.Equal(got, want[i]) {
				fail("client %d (%s variant %d): concurrent result diverges from sequential baseline:\n got %s\nwant %s",
					i, spec.Module, spec.Variant, got, want[i])
			}
		}(i)
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
	if len(latencies) == clients {
		t.Logf("load gate: %d clients, submit-to-terminal p50=%.1fms p95=%.1fms p99=%.1fms",
			clients,
			metrics.Percentile(latencies, 50),
			metrics.Percentile(latencies, 95),
			metrics.Percentile(latencies, 99))
	}
}

// TestLoadSharedCacheConsistency re-runs a subset of the fleet against a
// single shared Services through the Runner directly (no HTTP) and
// checks results again match the isolated baseline — the cache layers
// (compile cache, golden-trace memo) must be invisible to verdicts.
func TestLoadSharedCacheConsistency(t *testing.T) {
	specs := loadSpecs(8)
	shared := testServices()
	r := NewRunner(RunnerConfig{Workers: 4, QueueLimit: 8, Services: shared})
	defer r.Drain(context.Background())

	jobs := make([]*Job, len(specs))
	for i, spec := range specs {
		j, err := r.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if _, err := j.WaitTerminal(context.Background()); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		res, ok := j.Result()
		if !ok {
			t.Fatalf("job %d has no result", i)
		}
		baseline := Execute(specs[i], testServices(), nil)
		got, _ := json.Marshal(res)
		want, _ := json.Marshal(baseline)
		if !bytes.Equal(got, want) {
			t.Fatalf("job %d: shared-cache result diverges:\n got %s\nwant %s", i, got, want)
		}
	}
	cs := shared.Cache.Stats()
	if cs.Hits == 0 {
		t.Fatal("shared compile cache saw no hits across 8 jobs; amortization broken")
	}
}
